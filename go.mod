module autosec

go 1.22
