// Command killchain explores the Fig. 8 telemetry-cloud kill chain:
// run the attack against a chosen defence configuration and print the
// stage-by-stage trace.
//
// Usage:
//
//	killchain [-fleet N] [-points N] [-seed N] [-defend a,b,...]
//
// Defences: enumeration, heapdump, secrets, leastpriv, minimize, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autosec/internal/killchain"
	"autosec/internal/sim"
	"autosec/internal/telemetry"
)

func main() {
	fleet := flag.Int("fleet", 800, "vehicles in the synthetic fleet")
	points := flag.Int("points", 50, "telemetry points per vehicle")
	seed := flag.Int64("seed", 42, "deterministic seed")
	defend := flag.String("defend", "", "comma-separated defences (enumeration,heapdump,secrets,leastpriv,minimize,all)")
	flag.Parse()

	var defs []killchain.Defence
	for _, name := range strings.Split(*defend, ",") {
		switch strings.TrimSpace(name) {
		case "":
		case "enumeration":
			defs = append(defs, killchain.DefendEnumeration)
		case "heapdump":
			defs = append(defs, killchain.DisableHeapDump)
		case "secrets":
			defs = append(defs, killchain.ScrubSecrets)
		case "leastpriv":
			defs = append(defs, killchain.LeastPrivilege)
		case "minimize":
			defs = append(defs, killchain.MinimizeData)
		case "all":
			defs = killchain.Defences()
		default:
			fmt.Fprintf(os.Stderr, "killchain: unknown defence %q\n", name)
			os.Exit(2)
		}
	}

	cloud := telemetry.NewCloud(killchain.Apply(defs...), *fleet, *points, sim.NewRNG(*seed))
	fmt.Printf("fleet: %d vehicles, %d records; defences: %v\n\n", cloud.Fleet(), cloud.TotalRecords(), defs)
	fmt.Print(killchain.Run(cloud))
}
