package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/scenario"
	"autosec/internal/sim"
)

// writeScenario materialises one spec as dir/<name>/scenario.ini.
func writeScenario(t *testing.T, dir string, sp *scenario.Spec) {
	t.Helper()
	folder := filepath.Join(dir, sp.Name)
	if err := os.MkdirAll(folder, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(folder, scenario.SpecFile), sp.MarshalINI(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFindExperimentResolvesScenarios: scn-* ids resolve from the
// corpus dir through the same lookup registry experiments use.
func TestFindExperimentResolvesScenarios(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, scenario.DefaultSpec("replay-probe"))

	e, err := findExperiment("scn-replay-probe", dir)
	if err != nil {
		t.Fatalf("scenario id did not resolve: %v", err)
	}
	if e.Source != "scenario" {
		t.Errorf("Source = %q, want scenario", e.Source)
	}
	if _, err := findExperiment("fig8", dir); err != nil {
		t.Errorf("registry id stopped resolving: %v", err)
	}
	if _, err := findExperiment("fig8", filepath.Join(dir, "missing")); err != nil {
		t.Errorf("missing scenarios dir must not break registry lookup: %v", err)
	}
}

// TestUnknownIDSuggestsScenarioNames is the satellite: a typoed
// scenario id gets a did-you-mean pointing at the corpus, alongside
// the registry suggestions that already existed.
func TestUnknownIDSuggestsScenarioNames(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, scenario.DefaultSpec("replay-probe"))

	_, err := findExperiment("scn-replay-prob", dir)
	if err == nil {
		t.Fatal("typoed scenario id must fail")
	}
	msg := err.Error()
	for _, want := range []string{`unknown experiment "scn-replay-prob"`, "did you mean", "scn-replay-probe", "avsec scenarios"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not contain %q", msg, want)
		}
	}

	// Registry typos still suggest registry ids with scenarios loaded.
	_, err = findExperiment("fig88", dir)
	if err == nil || !strings.Contains(err.Error(), "fig8") {
		t.Errorf("registry typo lost its suggestion: %v", err)
	}
}

// TestCampaignScenarioCellsJobsInvariant pins the corpus-golden
// contract at the aggregation layer: a campaign over scenario cells
// renders byte-identical summaries at -jobs 1 and -jobs 4.
func TestCampaignScenarioCellsJobsInvariant(t *testing.T) {
	dir := t.TempDir()
	for _, typ := range []string{scenario.AttackReplay, scenario.AttackFlood, scenario.AttackKillChain} {
		sp := scenario.DefaultSpec("cell-" + typ)
		sp.Attacker.Type = typ
		sp.Title = scenario.AutoTitle(sp)
		writeScenario(t, dir, sp)
	}
	exps, err := scenario.CompileDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]core.Experiment)
	var ids []string
	for _, e := range exps {
		byID[e.ID] = e
		ids = append(ids, e.ID)
	}
	render := func(jobs int) string {
		pool := sim.NewWorkerPool(jobs)
		res, err := campaign.Run(campaign.Spec{
			IDs:      ids,
			Seeds:    campaign.Seeds(42, 2),
			Jobs:     jobs,
			Pool:     pool,
			RunTyped: typedRunWith(pool, byID),
			CostHint: costHint(byID),
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return res.RenderSummary()
	}
	if a, b := render(1), render(4); a != b {
		t.Error("campaign summary over scenario cells differs between -jobs 1 and -jobs 4")
	}
}
