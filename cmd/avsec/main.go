// Command avsec is the umbrella experiment runner: it regenerates any
// figure or table of the paper from the autosec simulations.
//
// Usage:
//
//	avsec list                 # show all experiments
//	avsec run <id> [flags]     # run one experiment (e.g. fig8, scn-gen-0042)
//	avsec all [flags]          # run everything in paper order
//	avsec campaign [flags]     # multi-seed statistical campaign
//	avsec fleet [flags]        # shard one campaign across avsecd workers
//	avsec gen [flags]          # grow/check the scenario corpus (scenarios/)
//	avsec scenarios            # list the declarative scenario corpus
//
// Observability: `run` accepts -trace=<file> (JSONL structured trace of
// every scheduled/executed event, metric sample, and RNG checkpoint),
// -json/-csv=<file> (the run's typed metrics), and -cpuprofile /
// -memprofile (pprof). `all` and `campaign` accept -json=<file> for
// machine-readable results. All of it is deterministic: the same seed
// produces byte-identical traces, metrics, and reports.
//
// Both `all` and `campaign` fan work out over a bounded worker pool and
// re-execute a fraction of (experiment, seed) cells to enforce the sim
// kernel's determinism contract; stdout stays byte-identical for any
// -jobs value because every table is a pure function of the reports.
//
// For long-running, fleet-scale use the same campaigns are served over
// HTTP by the avsecd daemon (cmd/avsecd, docs/DAEMON.md), whose output
// is byte-identical to `avsec campaign` for the same spec.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/docs"
	"autosec/internal/scenario"
	"autosec/internal/sim"
	"autosec/internal/sos"

	// The demo drop-in extensions (noop-mac suite, jam attack) register
	// at init, proving the one-file extension property end to end; their
	// scenarios live under internal/ext/demo/scenario.
	_ "autosec/internal/ext/demo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Printf("%-13s %-10s %s\n", e.ID, e.Source, e.Title)
		}
	case "run":
		runOne(os.Args[2:])
	case "dot":
		// Emit the Fig. 9 system-of-systems model as Graphviz for
		// rendering: avsec dot | dot -Tsvg > fig9.svg
		m, err := sos.BuildMaaS()
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsec:", err)
			os.Exit(1)
		}
		fmt.Print(m.DOT())
	case "all":
		runAll(os.Args[2:])
	case "expmd":
		runExpmd()
	case "campaign":
		runCampaign(os.Args[2:])
	case "fleet":
		runFleet(os.Args[2:])
	case "gen":
		runGen(os.Args[2:])
	case "scenarios":
		runScenarios(os.Args[2:])
	case "ext":
		runExt(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

// fail prints an error and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "avsec:", err)
	os.Exit(1)
}

// runOne executes a single experiment with optional structured
// observability and profiling sinks.
func runOne(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "deterministic simulation seed")
	jobs := fs.Int("jobs", 0, "replicate worker pool size (0 = GOMAXPROCS, 1 = serial)")
	scnDir := fs.String("scenarios", "scenarios", "scenario corpus directory (scn-* ids; missing dir = none)")
	traceFile := fs.String("trace", "", "write the structured JSONL trace to this file")
	jsonFile := fs.String("json", "", "write the run's typed metrics as JSON to this file")
	csvFile := fs.String("csv", "", "write the run's typed metrics as CSV to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	// Accept flags on either side of the id ("run -seed 7 fig2" and
	// "run fig2 -trace=t.jsonl"): the flag package stops at the first
	// positional, so parse the remainder again past the id.
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "avsec run: need exactly one experiment id (try 'avsec list')")
		os.Exit(2)
	}
	id := fs.Arg(0)
	if fs.NArg() > 1 {
		rest := fs.Args()[1:]
		if err := fs.Parse(rest); err != nil {
			os.Exit(2)
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "avsec run: need exactly one experiment id (try 'avsec list')")
			os.Exit(2)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var opt core.RunOptions
	opt.Pool = sim.NewWorkerPool(resolveJobs(*jobs))
	var traceOut *os.File
	var traceBuf *bufio.Writer
	var tracer *sim.JSONLTracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fail(err)
		}
		traceOut = f
		traceBuf = bufio.NewWriter(f)
		tracer = sim.NewJSONLTracer(traceBuf)
		opt.Tracer = tracer
	}

	e, err := findExperiment(id, *scnDir)
	if err != nil {
		fail(err)
	}
	res, err := core.RunResultOf(e, *seed, opt)
	if err != nil {
		fail(err)
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		if err := traceBuf.Flush(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		if err := traceOut.Close(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
	}
	if *jsonFile != "" {
		if err := writeFileWith(*jsonFile, res.WriteJSON); err != nil {
			fail(err)
		}
	}
	if *csvFile != "" {
		err := writeFileWith(*csvFile, func(w io.Writer) error {
			return sim.WriteMetricsCSV(w, res.Metrics)
		})
		if err != nil {
			fail(err)
		}
	}
	fmt.Println(res.Report)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// findExperiment resolves an id against the registry and the scenario
// corpus under scnDir. Unknown ids error with did-you-mean suggestions
// drawn from BOTH namespaces, so a typoed scenario name is as
// self-diagnosing as a typoed registry id.
func findExperiment(id, scnDir string) (core.Experiment, error) {
	for _, e := range core.Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	scns, err := scenario.CompileDir(scnDir)
	if err != nil {
		return core.Experiment{}, err
	}
	for _, e := range scns {
		if e.ID == id {
			return e, nil
		}
	}
	return core.Experiment{}, unknownIDError(id, scns)
}

// unknownIDError builds the merged-namespace did-you-mean error.
func unknownIDError(id string, scns []core.Experiment) error {
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	for _, e := range scns {
		ids = append(ids, e.ID)
	}
	msg := fmt.Sprintf("unknown experiment %q", id)
	if sug := core.SuggestIDs(id, ids, 3); len(sug) > 0 {
		msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(sug, ", "))
	}
	return fmt.Errorf("%s — run 'avsec list' or 'avsec scenarios' for all ids", msg)
}

// writeFileWith creates path and streams write's output into it.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveJobs maps the -jobs flag to a concrete pool size: 0 (or any
// non-positive value) means GOMAXPROCS.
func resolveJobs(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// typedRunWith adapts the registry's structured entry point to the
// campaign pool, so aggregation consumes typed metrics. The campaign's
// shared worker pool is routed into every run, so intra-experiment
// replicate fan-out and cell-level parallelism spend one -jobs budget.
// extra maps non-registry experiment ids (compiled scenarios) to their
// runnable form; they go through the identical observability path.
func typedRunWith(pool *sim.WorkerPool, extra map[string]core.Experiment) campaign.TypedRunFunc {
	return func(id string, seed int64) (string, []campaign.Metric, error) {
		var r *core.RunResult
		var err error
		if e, ok := extra[id]; ok {
			r, err = core.RunResultOf(e, seed, core.RunOptions{Pool: pool})
		} else {
			r, err = core.RunExperimentResult(id, seed, core.RunOptions{Pool: pool})
		}
		if err != nil {
			return "", nil, err
		}
		return r.Report, r.Metrics, nil
	}
}

// costHint exposes the registry's measured cost ranks to the campaign
// scheduler so the slow experiments dispatch first.
func costHint(byID map[string]core.Experiment) func(string) int {
	return func(id string) int { return byID[id].Cost }
}

// runExpmd regenerates EXPERIMENTS.md on stdout: every experiment runs
// once at the documented seed (42), and the typed metric stream feeds
// the template in internal/docs. CI regenerates and diffs this, so the
// checked-in document cannot drift from the registry.
func runExpmd() {
	const seed = 42
	metrics := make(docs.Metrics)
	for _, e := range core.Experiments() {
		r, err := core.RunExperimentResult(e.ID, seed, core.RunOptions{Pool: sim.DefaultPool()})
		if err != nil {
			fail(err)
		}
		m := make(map[string]float64, len(r.Metrics))
		for _, mt := range r.Metrics {
			m[mt.Name] = mt.Value
		}
		metrics[e.ID] = m
	}
	out, err := docs.ExperimentsMarkdown(metrics)
	if err != nil {
		fail(err)
	}
	fmt.Print(out)
}

// runAll executes every experiment at one seed through the campaign
// pool, streaming reports in paper order as each experiment (and all
// its predecessors) completes.
func runAll(args []string) {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "deterministic simulation seed")
	jobs := fs.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS)")
	recheck := fs.Float64("recheck", 0, "fraction of runs double-executed as a determinism self-check")
	jsonFile := fs.String("json", "", "write every run's typed metrics as one JSON document to this file")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	byID := make(map[string]core.Experiment)
	var ids []string
	for _, e := range core.Experiments() {
		byID[e.ID] = e
		ids = append(ids, e.ID)
	}
	pool := sim.NewWorkerPool(resolveJobs(*jobs))
	res, err := campaign.Run(campaign.Spec{
		IDs:      ids,
		Seeds:    []int64{*seed},
		Jobs:     *jobs,
		Pool:     pool,
		Recheck:  *recheck,
		RunTyped: typedRunWith(pool, nil),
		CostHint: costHint(byID),
		OnCell: func(c campaign.CellResult) {
			e := byID[c.ID]
			fmt.Printf("═══ %s (%s) — %s ═══\n", e.ID, e.Source, e.Title)
			if c.Err != nil {
				fmt.Fprintln(os.Stderr, "avsec:", c.Err)
				return
			}
			fmt.Println(c.Report)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avsec:", err)
		os.Exit(1)
	}
	if *jsonFile != "" {
		if err := writeFileWith(*jsonFile, func(w io.Writer) error { return writeAllJSON(w, res, byID) }); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "avsec: %d experiments (%d rechecked) in %v\n",
		len(res.Cells), res.Rechecked(), res.Elapsed.Round(1e6))
	fmt.Fprint(os.Stderr, "avsec: "+res.RenderTimings(3))
}

// writeAllJSON renders an `avsec all` result as a JSON array of runs,
// one element per experiment in paper order, carrying the typed metrics.
func writeAllJSON(w io.Writer, res *campaign.Result, byID map[string]core.Experiment) error {
	type runDoc struct {
		ID      string            `json:"id"`
		Title   string            `json:"title"`
		Source  string            `json:"source"`
		Seed    int64             `json:"seed"`
		Metrics []campaign.Metric `json:"metrics"`
	}
	docs := make([]runDoc, 0, len(res.Cells))
	for _, c := range res.Cells {
		e := byID[c.ID]
		m := c.Metrics
		if m == nil {
			m = []campaign.Metric{}
		}
		docs = append(docs, runDoc{ID: c.ID, Title: e.Title, Source: e.Source, Seed: c.Seed, Metrics: m})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}

// runCampaign executes the multi-seed (experiment × seed) grid and
// prints the aggregate min/mean/max tables.
func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	seeds := fs.Int("seeds", 8, "number of consecutive seeds, starting at -seed")
	base := fs.Int64("seed", 42, "base simulation seed")
	jobs := fs.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS)")
	recheck := fs.Float64("recheck", 0.25, "fraction of cells double-executed as a determinism self-check")
	jsonFile := fs.String("json", "", "write the aggregate results as JSON to this file")
	timings := fs.Bool("timings", false, "include per-cell wall-clock timings in the -json document (non-deterministic)")
	scnDir := fs.String("scenarios", "scenarios", "scenario corpus directory (scn-* ids; missing dir = none)")
	corpus := fs.Bool("corpus", false, "run every scenario in the -scenarios corpus instead of the registry")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	scns, err := scenario.CompileDir(*scnDir)
	if err != nil {
		fail(err)
	}
	byID := make(map[string]core.Experiment)
	scnByID := make(map[string]core.Experiment, len(scns))
	var ids []string
	for _, e := range core.Experiments() {
		byID[e.ID] = e
		ids = append(ids, e.ID)
	}
	if *corpus {
		if len(scns) == 0 {
			fmt.Fprintf(os.Stderr, "avsec campaign: -corpus set but no scenarios under %s\n", *scnDir)
			os.Exit(2)
		}
		ids = nil
	}
	for _, e := range scns {
		byID[e.ID] = e
		scnByID[e.ID] = e
		if *corpus {
			ids = append(ids, e.ID)
		}
	}
	if fs.NArg() > 0 {
		ids = fs.Args()
		for _, id := range ids {
			if _, ok := byID[id]; !ok {
				fmt.Fprintln(os.Stderr, "avsec campaign:", unknownIDError(id, scns))
				os.Exit(2)
			}
		}
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "avsec campaign: -seeds must be >= 1")
		os.Exit(2)
	}
	pool := sim.NewWorkerPool(resolveJobs(*jobs))
	res, err := campaign.Run(campaign.Spec{
		IDs:      ids,
		Seeds:    campaign.Seeds(*base, *seeds),
		Jobs:     *jobs,
		Pool:     pool,
		Recheck:  *recheck,
		RunTyped: typedRunWith(pool, scnByID),
		CostHint: costHint(byID),
	})
	if err != nil {
		if res != nil {
			// Aggregates of the healthy cells still help diagnosis.
			fmt.Print(res.RenderSummary())
		}
		fmt.Fprintln(os.Stderr, "avsec:", err)
		os.Exit(1)
	}
	if *jsonFile != "" {
		writeJSON := res.WriteJSON
		if *timings {
			writeJSON = res.WriteJSONWithTimings
		}
		if err := writeFileWith(*jsonFile, writeJSON); err != nil {
			fail(err)
		}
	}
	fmt.Print(res.RenderSummary())
	fmt.Fprintf(os.Stderr, "avsec: %d cells (%d rechecked, 0 divergences) in %v\n",
		len(res.Cells), res.Rechecked(), res.Elapsed.Round(1e6))
	fmt.Fprint(os.Stderr, "avsec: "+res.RenderTimings(3))
}

// runGen drives the coverage-guided scenario generator: it grows a
// corpus from one recorded seed (writing MANIFEST.ini, INDEX.md, and
// one folder per scenario), or with -check regenerates the committed
// corpus from its manifest and fails on any byte difference — the CI
// freshness gate for scenarios/.
func runGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "scenarios", "corpus directory")
	seed := fs.Int64("seed", 7, "generator seed (recorded in the manifest)")
	target := fs.Int("target", 112, "number of scenarios to generate")
	maxIters := fs.Int("max-iters", 0, "mutation-search iteration bound (0 = 64×target)")
	check := fs.Bool("check", false, "regenerate from -out/MANIFEST.ini and fail on any byte difference")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *check {
		if err := scenario.CheckCorpus(*out); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "avsec gen: corpus %s matches its manifest byte for byte\n", *out)
		return
	}
	c, err := scenario.Generate(scenario.GenConfig{Seed: *seed, Target: *target, MaxIters: *maxIters})
	if err != nil {
		fail(err)
	}
	if err := c.WriteCorpus(*out); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "avsec gen: wrote %d scenarios (%d coverage keys, %d search iterations) to %s\n",
		len(c.Specs), len(c.Keys), c.Iters, *out)
}

// runScenarios lists the loaded scenario corpus in `avsec list` format.
func runScenarios(args []string) {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	dir := fs.String("scenarios", "scenarios", "scenario corpus directory")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	specs, err := scenario.LoadDir(*dir)
	if err != nil {
		fail(err)
	}
	for _, sp := range specs {
		title := sp.Title
		if title == "" {
			title = scenario.AutoTitle(sp)
		}
		fmt.Printf("%-13s %-10s %s\n", scenario.IDPrefix+sp.Name, sp.Attacker.Type, title)
	}
	fmt.Fprintf(os.Stderr, "avsec: %d scenarios under %s\n", len(specs), *dir)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  avsec list                                     list experiments
  avsec run <id> [-seed N] [-jobs K] [-trace F] [-json F] [-csv F] [-cpuprofile F] [-memprofile F]
                                                 run one experiment with optional structured
                                                 trace, typed metrics, and pprof output;
                                                 -jobs bounds replicate fan-out (output is
                                                 byte-identical for any value)
  avsec all [-seed N] [-jobs K] [-recheck F] [-json F]
                                                 run every experiment (pooled, ordered output;
                                                 cells and replicates share the -jobs budget)
  avsec campaign [-seeds N] [-seed B] [-jobs K] [-recheck F] [-json F] [-timings] [ids...]
                                                 multi-seed campaign with aggregate stats,
                                                 determinism self-check, and slowest-cell
                                                 timing diagnostics on stderr
  avsec fleet -workers URL[,URL...] [-seeds N] [-seed B] [-chunk N] [-inflight K]
              [-recheck F] [-deadline-ms N] [-max-attempts N] [-no-cache] [-json F] [ids...]
                                                 shard one campaign across avsecd workers;
                                                 stdout is byte-identical to avsec campaign
                                                 for the same grid (docs/FLEET.md)
  avsec expmd                                    regenerate EXPERIMENTS.md on stdout from
                                                 the registry and a seed-42 typed run
  avsec gen [-out D] [-seed N] [-target N] [-max-iters N] [-check]
                                                 grow the coverage-guided scenario corpus
                                                 (-check: regenerate from D/MANIFEST.ini and
                                                 fail on any byte difference)
  avsec scenarios [-scenarios D]                 list the scenario corpus (run with
                                                 'avsec run scn-<name>')
  avsec ext [-kind K] [-json]                    list registered extensions by kind —
                                                 suites, attacks, defences, detectors,
                                                 coverage dims, experiments — with the
                                                 extension-set fingerprint on stderr
  avsec dot                                      emit the Fig. 9 model as Graphviz

run and campaign also resolve scn-* scenario ids from -scenarios
(default "scenarios"); campaign -corpus runs the whole corpus.
campaigns are also served over HTTP by the avsecd daemon (go run
./cmd/avsecd, API reference in docs/DAEMON.md) with byte-identical
output and a content-addressed result cache.`)
}
