// Command avsec is the umbrella experiment runner: it regenerates any
// figure or table of the paper from the autosec simulations.
//
// Usage:
//
//	avsec list                 # show all experiments
//	avsec run <id> [-seed N]   # run one experiment (e.g. fig8)
//	avsec all [-seed N]        # run everything in paper order
package main

import (
	"flag"
	"fmt"
	"os"

	"autosec/internal/core"
	"autosec/internal/sos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Printf("%-13s %-10s %s\n", e.ID, e.Source, e.Title)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "deterministic simulation seed")
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "avsec run: need exactly one experiment id (try 'avsec list')")
			os.Exit(2)
		}
		out, err := core.RunExperiment(fs.Arg(0), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsec:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	case "dot":
		// Emit the Fig. 9 system-of-systems model as Graphviz for
		// rendering: avsec dot | dot -Tsvg > fig9.svg
		m, err := sos.BuildMaaS()
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsec:", err)
			os.Exit(1)
		}
		fmt.Print(m.DOT())
	case "all":
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "deterministic simulation seed")
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		for _, e := range core.Experiments() {
			fmt.Printf("═══ %s (%s) — %s ═══\n", e.ID, e.Source, e.Title)
			out, err := e.Run(*seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "avsec:", err)
				os.Exit(1)
			}
			fmt.Println(out)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  avsec list                 list experiments
  avsec run <id> [-seed N]   run one experiment
  avsec all [-seed N]        run every experiment
  avsec dot                  emit the Fig. 9 model as Graphviz`)
}
