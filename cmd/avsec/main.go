// Command avsec is the umbrella experiment runner: it regenerates any
// figure or table of the paper from the autosec simulations.
//
// Usage:
//
//	avsec list                 # show all experiments
//	avsec run <id> [-seed N]   # run one experiment (e.g. fig8)
//	avsec all [flags]          # run everything in paper order
//	avsec campaign [flags]     # multi-seed statistical campaign
//
// Both `all` and `campaign` fan work out over a bounded worker pool and
// re-execute a fraction of (experiment, seed) cells to enforce the sim
// kernel's determinism contract; stdout stays byte-identical for any
// -jobs value because every table is a pure function of the reports.
package main

import (
	"flag"
	"fmt"
	"os"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/sos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range core.Experiments() {
			fmt.Printf("%-13s %-10s %s\n", e.ID, e.Source, e.Title)
		}
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		seed := fs.Int64("seed", 42, "deterministic simulation seed")
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "avsec run: need exactly one experiment id (try 'avsec list')")
			os.Exit(2)
		}
		out, err := core.RunExperiment(fs.Arg(0), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsec:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	case "dot":
		// Emit the Fig. 9 system-of-systems model as Graphviz for
		// rendering: avsec dot | dot -Tsvg > fig9.svg
		m, err := sos.BuildMaaS()
		if err != nil {
			fmt.Fprintln(os.Stderr, "avsec:", err)
			os.Exit(1)
		}
		fmt.Print(m.DOT())
	case "all":
		runAll(os.Args[2:])
	case "campaign":
		runCampaign(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

// runAll executes every experiment at one seed through the campaign
// pool, streaming reports in paper order as each experiment (and all
// its predecessors) completes.
func runAll(args []string) {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "deterministic simulation seed")
	jobs := fs.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS)")
	recheck := fs.Float64("recheck", 0, "fraction of runs double-executed as a determinism self-check")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	byID := make(map[string]core.Experiment)
	var ids []string
	for _, e := range core.Experiments() {
		byID[e.ID] = e
		ids = append(ids, e.ID)
	}
	res, err := campaign.Run(campaign.Spec{
		IDs:     ids,
		Seeds:   []int64{*seed},
		Jobs:    *jobs,
		Recheck: *recheck,
		Run:     core.RunExperiment,
		OnCell: func(c campaign.CellResult) {
			e := byID[c.ID]
			fmt.Printf("═══ %s (%s) — %s ═══\n", e.ID, e.Source, e.Title)
			if c.Err != nil {
				fmt.Fprintln(os.Stderr, "avsec:", c.Err)
				return
			}
			fmt.Println(c.Report)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avsec:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "avsec: %d experiments (%d rechecked) in %v\n",
		len(res.Cells), res.Rechecked(), res.Elapsed.Round(1e6))
}

// runCampaign executes the multi-seed (experiment × seed) grid and
// prints the aggregate min/mean/max tables.
func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	seeds := fs.Int("seeds", 8, "number of consecutive seeds, starting at -seed")
	base := fs.Int64("seed", 42, "base simulation seed")
	jobs := fs.Int("jobs", 0, "worker pool size (0 = GOMAXPROCS)")
	recheck := fs.Float64("recheck", 0.25, "fraction of cells double-executed as a determinism self-check")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	known := make(map[string]bool)
	var ids []string
	for _, e := range core.Experiments() {
		known[e.ID] = true
		ids = append(ids, e.ID)
	}
	if fs.NArg() > 0 {
		ids = fs.Args()
		for _, id := range ids {
			if !known[id] {
				fmt.Fprintf(os.Stderr, "avsec campaign: unknown experiment %q (try 'avsec list')\n", id)
				os.Exit(2)
			}
		}
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "avsec campaign: -seeds must be >= 1")
		os.Exit(2)
	}
	res, err := campaign.Run(campaign.Spec{
		IDs:     ids,
		Seeds:   campaign.Seeds(*base, *seeds),
		Jobs:    *jobs,
		Recheck: *recheck,
		Run:     core.RunExperiment,
	})
	if err != nil {
		if res != nil {
			// Aggregates of the healthy cells still help diagnosis.
			fmt.Print(res.RenderSummary())
		}
		fmt.Fprintln(os.Stderr, "avsec:", err)
		os.Exit(1)
	}
	fmt.Print(res.RenderSummary())
	fmt.Fprintf(os.Stderr, "avsec: %d cells (%d rechecked, 0 divergences) in %v\n",
		len(res.Cells), res.Rechecked(), res.Elapsed.Round(1e6))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  avsec list                                     list experiments
  avsec run <id> [-seed N]                       run one experiment
  avsec all [-seed N] [-jobs K] [-recheck F]     run every experiment (pooled, ordered output)
  avsec campaign [-seeds N] [-seed B] [-jobs K] [-recheck F] [ids...]
                                                 multi-seed campaign with aggregate stats
                                                 and determinism self-check
  avsec dot                                      emit the Fig. 9 model as Graphviz`)
}
