package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"autosec/internal/ext"
)

// runExt lists the binary's registered extensions — every pluggable
// unit of every kind, including drop-ins linked into this build. The
// catalog and its JSON shape are exactly what the avsecd daemon serves
// at GET /api/v1/extensions, so the two listings cannot drift.
func runExt(args []string) {
	fs := flag.NewFlagSet("ext", flag.ExitOnError)
	kind := fs.String("kind", "", "list only this extension kind")
	jsonOut := fs.Bool("json", false, "emit the catalog as JSON (the daemon's /api/v1/extensions shape)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	metas := ext.All()
	if *kind != "" {
		known := false
		for _, k := range ext.Kinds() {
			if k == *kind {
				known = true
				break
			}
		}
		if !known {
			fail(fmt.Errorf("ext: unknown kind %q — kinds: %v", *kind, ext.Kinds()))
		}
		var keep []ext.Meta
		for _, m := range metas {
			if m.Kind == *kind {
				keep = append(keep, m)
			}
		}
		metas = keep
	}

	if *jsonOut {
		doc := ext.Catalog()
		if metas != nil {
			doc.Extensions = metas
		} else {
			doc.Extensions = []ext.Meta{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fail(err)
		}
		return
	}

	last := ""
	for _, m := range metas {
		if m.Kind != last {
			if last != "" {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", m.Kind)
			last = m.Kind
		}
		caps := "-"
		if len(m.Caps) > 0 {
			caps = ""
			for i, c := range m.Caps {
				if i > 0 {
					caps += ","
				}
				caps += c
			}
		}
		fmt.Printf("%-18s %-18s %s\n", m.Name, caps, m.Description)
		if m.Paper != "" {
			fmt.Printf("%-18s %-18s ↳ %s\n", "", "", m.Paper)
		}
	}
	fmt.Fprintf(os.Stderr, "avsec: %d extensions across %d kinds; fingerprint %s\n",
		len(metas), len(ext.Kinds()), ext.Fingerprint())
}
