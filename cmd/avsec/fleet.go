package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/fleet"
)

// runFleet shards one campaign across N avsecd workers through the
// internal/fleet coordinator. stdout is byte-identical to `avsec
// campaign` for the same grid — the whole point of the coordinator —
// while stderr carries the fleet-only diagnostics (per-worker share,
// dispatch/steal counters).
func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated avsecd base URLs (required), e.g. http://127.0.0.1:8787,http://10.0.0.2:8787")
	seeds := fs.Int("seeds", 8, "number of consecutive seeds, starting at -seed")
	base := fs.Int64("seed", 42, "base simulation seed")
	recheck := fs.Float64("recheck", 0.25, "fraction of cells double-executed as a determinism self-check (re-dispatched, usually to a different worker)")
	chunkSize := fs.Int("chunk", 4, "seeds per dispatched chunk (scheduling only; output bytes never depend on it)")
	inflight := fs.Int("inflight", 0, "concurrent chunk requests per worker (0 = derive from each worker's advertised capacity)")
	jobs := fs.Int("jobs", 0, "per-chunk worker pool size forwarded to each daemon (0 = each worker's default)")
	deadline := fs.Int("deadline-ms", 0, "per-chunk deadline in milliseconds, enforced client-side and forwarded as deadline_ms (0 = none)")
	attempts := fs.Int("max-attempts", 3, "dispatch attempts per chunk before its cells fail")
	noCache := fs.Bool("no-cache", false, "ask workers to bypass their result caches")
	jsonFile := fs.String("json", "", "write the aggregate results as JSON to this file")
	timings := fs.Bool("timings", false, "include per-cell coordinator-observed timings in the -json document (non-deterministic)")
	verbose := fs.Bool("v", false, "log scheduling events (dispatches, retries, steals, worker deaths) to stderr")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *workers == "" {
		fmt.Fprintln(os.Stderr, "avsec fleet: -workers is required (comma-separated avsecd base URLs)")
		os.Exit(2)
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "avsec fleet: -seeds must be >= 1")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// Default grid: the registry in paper order, exactly like `avsec
	// campaign`. Explicit ids (including scn-* ids) are validated by the
	// workers against their own corpus at dispatch time.
	byID := make(map[string]core.Experiment)
	var ids []string
	for _, e := range core.Experiments() {
		byID[e.ID] = e
		ids = append(ids, e.ID)
	}
	if fs.NArg() > 0 {
		ids = fs.Args()
	}

	cfg := fleet.Config{
		Workers:      urls,
		IDs:          ids,
		Seeds:        campaign.Seeds(*base, *seeds),
		ChunkSize:    *chunkSize,
		InFlight:     *inflight,
		Jobs:         *jobs,
		Recheck:      *recheck,
		ChunkTimeout: time.Duration(*deadline) * time.Millisecond,
		MaxAttempts:  *attempts,
		CostHint:     costHint(byID),
	}
	if *noCache {
		f := false
		cfg.Cache = &f
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "avsec fleet: "+format+"\n", args...)
		}
	}

	rep, err := fleet.Run(context.Background(), cfg)
	if err != nil && rep == nil {
		fail(err)
	}
	res := rep.Result
	if err != nil {
		// Aggregates of the healthy cells still help diagnosis.
		fmt.Print(res.RenderSummary())
		fmt.Fprintln(os.Stderr, "avsec:", err)
		os.Exit(1)
	}
	if *jsonFile != "" {
		writeJSON := res.WriteJSON
		if *timings {
			writeJSON = res.WriteJSONWithTimings
		}
		if err := writeFileWith(*jsonFile, writeJSON); err != nil {
			fail(err)
		}
	}
	fmt.Print(res.RenderSummary())
	st := rep.Stats
	fmt.Fprintf(os.Stderr, "avsec: %d cells (%d rechecked, 0 divergences) across %d workers in %v\n",
		st.Cells, st.Rechecks, len(rep.Workers), res.Elapsed.Round(1e6))
	fmt.Fprintf(os.Stderr, "avsec: %d chunks, %d dispatches (%d re-dispatched, %d straggler re-issues, %d duplicate deliveries)\n",
		st.Chunks, st.Dispatches, st.Redispatches, st.Steals, st.Duplicates)
	for _, w := range rep.Workers {
		note := ""
		if w.Dead {
			note = "  [retired]"
		}
		fmt.Fprintf(os.Stderr, "avsec:   %s  slots %d  chunks %d  cells %d  fails %d%s\n",
			w.URL, w.Slots, w.Chunks, w.Cells, w.Fails, note)
	}
}
