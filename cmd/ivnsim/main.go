// Command ivnsim runs the in-vehicle-network security scenarios of the
// paper's §III (Figs. 3–6) with a configurable workload and prints the
// comparison table.
//
// Usage:
//
//	ivnsim [-seed N] [-messages N] [-payload BYTES] [-forgeries N] [-replays N]
package main

import (
	"flag"
	"fmt"
	"os"

	"autosec/internal/ivn"
)

func main() {
	seed := flag.Int64("seed", 42, "deterministic simulation seed")
	messages := flag.Int("messages", 200, "legitimate end-to-end messages")
	payload := flag.Int("payload", 4, "application payload bytes")
	forgeries := flag.Int("forgeries", 50, "attacker forgery attempts")
	replays := flag.Int("replays", 50, "attacker replay attempts")
	flag.Parse()

	cfg := ivn.Config{
		Seed: *seed, Messages: *messages, PeriodUs: 500,
		PayloadBytes: *payload, Forgeries: *forgeries, Replays: *replays,
	}
	results, err := ivn.RunAll(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivnsim:", err)
		os.Exit(1)
	}
	fmt.Println("scenario      delivered  latency(p50)  overhead  zone-controller-cost  attacks")
	for _, r := range results {
		fmt.Println(" ", r)
	}
}
