// Command avsecd is the fleet-scale campaign daemon: a single-binary,
// stdlib-only HTTP service that runs experiment campaigns on demand
// instead of one CLI invocation at a time. It accepts campaign specs
// over HTTP/JSON, shards cells and replicates across worker goroutines
// through the same two-level budget `avsec campaign` uses, streams
// results back incrementally as NDJSON, and serves repeated sweeps
// from a content-addressed result cache keyed by (experiment, seed,
// binary content hash) — so a repeat sweep of an unchanged build is
// free and byte-identical.
//
// Usage:
//
//	avsecd [-config avsecd.json] [-addr HOST:PORT] [-jobs N]
//	       [-scenarios DIR] [-cache-dir DIR] [-no-cache]
//
// Flags override the config file. On startup the daemon announces the
// resolved listen address on stdout as
//
//	avsecd: listening on http://127.0.0.1:8787
//
// which is how scripts find the port when -addr ends in :0. SIGINT or
// SIGTERM drains in-flight campaigns and exits. The HTTP API —
// endpoints, campaign-spec schema, NDJSON stream format, cache
// semantics, and the determinism contract — is documented in
// docs/DAEMON.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autosec/internal/config"
	"autosec/internal/server"

	// The demo drop-in extensions register at init so the daemon can
	// compile and serve the scenarios under internal/ext/demo/scenario;
	// avsec carries the same import, keeping the fleet fingerprint equal
	// across the CLI and daemon builds.
	_ "autosec/internal/ext/demo"
)

func main() {
	fs := flag.NewFlagSet("avsecd", flag.ExitOnError)
	cfgPath := fs.String("config", "", "JSON configuration file (absent fields keep defaults)")
	addr := fs.String("addr", "", "listen address, host:port (port 0 = kernel-assigned; overrides config)")
	jobs := fs.Int("jobs", -1, "default campaign worker-pool size, 0 = GOMAXPROCS (overrides config)")
	scnDir := fs.String("scenarios", "", "scenario corpus directory (overrides config)")
	cacheDir := fs.String("cache-dir", "", "result cache directory (overrides config)")
	noCache := fs.Bool("no-cache", false, "disable the result cache entirely")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "avsecd: unexpected argument %q\n", fs.Arg(0))
		os.Exit(2)
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fail(err)
		}
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *jobs >= 0 {
		cfg.Jobs = *jobs
	}
	if *scnDir != "" {
		cfg.ScenarioDir = *scnDir
	}
	if *cacheDir != "" {
		cfg.Cache.Dir = *cacheDir
	}
	if *noCache {
		cfg.Cache.Disabled = true
	}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}

	srv, err := server.New(cfg)
	if err != nil {
		fail(err)
	}

	// Listen before announcing, so the printed address is the resolved
	// one (meaningful when the configured port is 0).
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("avsecd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: time.Duration(cfg.ReadHeaderTimeoutMS) * time.Millisecond,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "avsecd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			// In-flight campaigns outlasted the grace period; close
			// their connections rather than hang forever.
			hs.Close()
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "avsecd:", err)
	os.Exit(1)
}
