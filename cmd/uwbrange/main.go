// Command uwbrange is the UWB ranging/attack laboratory of the paper's
// §II: sweep attacker power and advance against the naive and secure
// HRP receivers and print success statistics.
//
// Usage:
//
//	uwbrange [-distance M] [-pulses N] [-trials N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"autosec/internal/sim"
	"autosec/internal/uwb"
)

func main() {
	distance := flag.Float64("distance", 60, "true distance in metres")
	pulses := flag.Int("pulses", 256, "STS length in pulses")
	trials := flag.Int("trials", 50, "trials per configuration")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	rng := sim.NewRNG(*seed)
	tb := sim.NewTable(fmt.Sprintf("ghost-peak sweep at %.0f m, %d-pulse STS", *distance, *pulses),
		"advance-m", "power", "naive-reduced", "secure-reduced")
	for _, advanceM := range []float64{10, 20, 40} {
		for _, power := range []float64{1, 2, 4, 8} {
			att := &uwb.GhostPeakAttacker{AdvanceSamples: uwb.MetresToSamples(advanceM), Power: power}
			var reduced [2]int
			for mode := 0; mode < 2; mode++ {
				for i := 0; i < *trials; i++ {
					s := uwb.Session{
						Key: []byte("uwbrange-cli-key"), Session: uint32(i), Pulses: *pulses,
						Channel: uwb.Channel{DistanceM: *distance, NoiseStd: 0.2},
						Secure:  mode == 1, Config: uwb.DefaultSecureConfig(),
						NaiveThreshold: 0.3,
					}
					m, err := s.Measure(att, rng)
					if err != nil {
						fmt.Fprintln(os.Stderr, "uwbrange:", err)
						os.Exit(1)
					}
					if m.Accepted && m.ErrorM() < -5 {
						reduced[mode]++
					}
				}
			}
			tb.AddRow(advanceM, power,
				fmt.Sprintf("%d/%d", reduced[0], *trials),
				fmt.Sprintf("%d/%d", reduced[1], *trials))
		}
	}
	fmt.Print(tb.String())
}
