// Quickstart: build the layered security model of an autonomous
// vehicle, deploy a partial set of defences, and ask the framework the
// paper's central question — which cross-layer attack paths remain, and
// which deployed defences are silently ineffective because a synergy
// dependency is missing?
package main

import (
	"fmt"
	"log"

	"autosec/internal/core"
)

func main() {
	catalog, err := core.DefaultCatalog()
	if err != nil {
		log.Fatal(err)
	}

	posture := core.NewPosture(catalog)
	// A typical real-world deployment: strong network crypto, a
	// hardened cloud — but no vehicle key management and nothing at the
	// physical or collaboration layers.
	if err := posture.Deploy(
		"D-secoc", "D-macsec", // network crypto ... without D-key-mgmt
		"D-no-debug", "D-secret-store", "D-least-priv", // data layer
	); err != nil {
		log.Fatal(err)
	}

	fmt.Println("coverage by layer:")
	for _, cov := range posture.CoverageByLayer() {
		fmt.Printf("  %-18s %d/%d threats mitigated\n", cov.Layer, cov.Mitigated, cov.Threats)
	}

	fmt.Println("\ndeployed but INEFFECTIVE (missing synergy dependency):")
	for _, id := range posture.IneffectiveDeployments() {
		d := catalog.Defence(id)
		fmt.Printf("  %-10s %s (requires %v)\n", d.ID, d.Name, d.Requires)
	}

	paths := posture.AttackPaths()
	fmt.Printf("\n%d attack paths to safety impact remain, for example:\n", len(paths))
	for i, p := range paths {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", p)
	}

	// Fix the synergy gap and re-assess.
	if err := posture.Deploy("D-key-mgmt"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deploying key management: %d paths remain, %d defences ineffective\n",
		len(posture.AttackPaths()), len(posture.IneffectiveDeployments()))
}
