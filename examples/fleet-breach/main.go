// fleet-breach recreates the §V incident end-to-end: a synthetic fleet
// telemetry cloud with the real misconfiguration classes, the Fig. 8
// kill chain run against it, and then the same attack against each
// hardening measure — showing that any single broken link stops the
// breach, and data minimization bounds the damage even when it happens.
package main

import (
	"fmt"

	"autosec/internal/killchain"
	"autosec/internal/sim"
	"autosec/internal/telemetry"
)

func main() {
	rng := sim.NewRNG(2024)

	fmt.Println("=== the incident configuration ===")
	cloud := telemetry.NewCloud(telemetry.WorstCase(), 800, 60, rng.Fork())
	fmt.Printf("fleet: %d vehicles, %d geolocation records\n\n", cloud.Fleet(), cloud.TotalRecords())
	report := killchain.Run(cloud)
	fmt.Print(report)

	fmt.Println("\n=== one defence at a time ===")
	for _, d := range killchain.Defences() {
		c := telemetry.NewCloud(killchain.Apply(d), 800, 60, rng.Fork())
		r := killchain.Run(c)
		outcome := fmt.Sprintf("chain broken at %q", r.Stages[len(r.Stages)-1].Stage)
		if r.Breached {
			outcome = fmt.Sprintf("still breached — %d records at %.0f m precision", r.RecordsExfiltrated, r.PrecisionM)
		}
		fmt.Printf("  %-22s → %s\n", d, outcome)
	}

	fmt.Println("\ntakeaway (§V-B): every link was individually mundane; any one fix stops the chain,")
	fmt.Println("and data minimization is the only measure that helps after all else fails.")
}
