// collaborative-perception demonstrates §VII: four vehicles share object
// lists to jointly see a pedestrian; an external attacker injects a
// ghost (stopped by channel authentication); an insider with valid
// credentials fabricates one (stopped only by redundancy checking and,
// over time, by trust tracking).
package main

import (
	"fmt"
	"log"

	"autosec/internal/collab"
	"autosec/internal/sim"
	"autosec/internal/world"
)

func main() {
	rng := sim.NewRNG(7)

	build := func() (*world.World, map[string]*collab.Participant) {
		w := world.New()
		members := map[string]*collab.Participant{}
		for i, x := range []float64{0, 20, 40, 60} {
			id := fmt.Sprintf("av-%d", i+1)
			if err := w.Add(&world.Actor{ID: id, Pos: world.Vec2{X: x}, Radius: 1}); err != nil {
				log.Fatal(err)
			}
			members[id] = &collab.Participant{ID: id, SensorRange: 50, NoiseStd: 0.1}
		}
		if err := w.Add(&world.Actor{ID: "pedestrian", Pos: world.Vec2{X: 30, Y: 4}, Radius: 0.4}); err != nil {
			log.Fatal(err)
		}
		return w, members
	}
	share := func(w *world.World, members map[string]*collab.Participant) []collab.Message {
		var msgs []collab.Message
		for i := 1; i <= 4; i++ {
			msgs = append(msgs, members[fmt.Sprintf("av-%d", i)].Share(w, rng))
		}
		return msgs
	}

	// Round 1: benign.
	w, members := build()
	out := collab.Fuse(w, share(w, members), members, collab.FusionConfig{RequireAuth: true, RedundancyK: 2})
	fmt.Printf("benign round: %d real objects fused (pedestrian seen by %d vehicles), %d fakes\n",
		out.RealCount, out.Accepted[0].Support, out.FakeCount)

	// Round 2: external injection.
	msgs := share(w, members)
	msgs = append(msgs, collab.Message{Sender: "roadside-rogue", Authenticated: false,
		Claims: []collab.Claim{{Sender: "roadside-rogue", Pos: world.Vec2{X: 25}}}})
	open := collab.Fuse(w, msgs, members, collab.FusionConfig{})
	auth := collab.Fuse(w, msgs, members, collab.FusionConfig{RequireAuth: true})
	fmt.Printf("external injection: open channel accepts %d fakes; authenticated channel accepts %d\n",
		open.FakeCount, auth.FakeCount)

	// Round 3: insider fabrication.
	fake := world.Vec2{X: 35}
	members["av-2"].Fabricate = &fake
	msgs = share(w, members)
	authOnly := collab.Fuse(w, msgs, members, collab.FusionConfig{RequireAuth: true})
	redundant := collab.Fuse(w, msgs, members, collab.FusionConfig{RequireAuth: true, RedundancyK: 2})
	fmt.Printf("insider fabrication: auth-only accepts %d fakes; redundancy-2 accepts %d\n",
		authOnly.FakeCount, redundant.FakeCount)

	// Trust tracking converges on the insider.
	tracker := collab.NewTrustTracker()
	rounds := 0
	for !tracker.Excluded("av-2") && rounds < 50 {
		tracker.Observe(w, share(w, members), members, collab.FusionConfig{RedundancyK: 2})
		rounds++
	}
	fmt.Printf("trust tracking excludes av-2 after %d rounds (score %.2f)\n\n", rounds, tracker.Score("av-2"))

	// The competition story (§VII-A).
	fmt.Println("intersection with 30 vehicles:")
	for _, p := range []collab.Policy{collab.Cooperative, collab.SelfInterested, collab.Regulated} {
		res, err := collab.RunIntersection(collab.DefaultIntersection(p, 30), rng.Fork())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s crossed=%d collisions=%d ticks=%d mean-wait=%.1f\n",
			p, res.Crossed, res.Collisions, res.Ticks, res.MeanWait)
	}
}
