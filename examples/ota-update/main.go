// ota-update walks an ECU through the §IV-A update lifecycle: a
// legitimate release, a forged one, a corrupted download, a signed
// downgrade to a vulnerable version, and a release that fails its boot
// health check — showing which layer of the pipeline stops each.
package main

import (
	"fmt"
	"log"

	"autosec/internal/ota"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func main() {
	vendor, err := ota.NewSigner(seed(1))
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := ota.NewSigner(seed(66))
	if err != nil {
		log.Fatal(err)
	}

	factoryImg := []byte("brake-ctrl firmware 1.0")
	dev, err := ota.NewDevice("brake-ctrl", vendor.PublicKey(),
		vendor.Release("brake-ctrl", "1.0", 1, factoryImg), factoryImg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device provisioned, running %s\n\n", dev.ActiveVersion())

	step := func(name string, m *ota.Manifest, img []byte, healthy bool) {
		err := dev.Install(m, img)
		if err != nil {
			fmt.Printf("%-34s rejected at install: %v\n", name, err)
			return
		}
		dev.Boot(func([]byte) bool { return healthy })
		fmt.Printf("%-34s installed; running %s\n", name, dev.ActiveVersion())
	}

	img2 := []byte("brake-ctrl firmware 2.0")
	step("vendor release 2.0", vendor.Release("brake-ctrl", "2.0", 2, img2), img2, true)

	malware := []byte("totally legitimate firmware")
	step("attacker-signed 6.6", attacker.Release("brake-ctrl", "6.6", 99, malware), malware, true)

	corrupt := append([]byte(nil), img2...)
	corrupt[5] ^= 0xFF
	step("corrupted download of 2.1", vendor.Release("brake-ctrl", "2.1", 3, img2), corrupt, true)

	oldImg := []byte("brake-ctrl firmware 1.5")
	step("signed downgrade to 1.5", vendor.Release("brake-ctrl", "1.5", 1, oldImg), oldImg, true)

	loopImg := []byte("brake-ctrl firmware 3.0 (bootloops)")
	step("release 3.0 that fails health", vendor.Release("brake-ctrl", "3.0", 4, loopImg), loopImg, false)

	fixedImg := []byte("brake-ctrl firmware 3.1")
	step("fixed release 3.1", vendor.Release("brake-ctrl", "3.1", 5, fixedImg), fixedImg, true)

	fmt.Println("\ndevice audit log:")
	for _, l := range dev.Log {
		fmt.Println(" ", l)
	}
}
