// pkes-relay reproduces the §II-A motivation: the same relay rig that
// steals a car with legacy RSSI-based keyless entry is useless against
// UWB time-of-flight ranging and distance bounding — even though the
// data-layer cryptography is identical and verifies in all three cases.
package main

import (
	"fmt"
	"log"

	"autosec/internal/pkes"
	"autosec/internal/sim"
)

func main() {
	key := []byte("pkes-example-key")
	relay := &pkes.Relay{LinkDelayNs: 400} // ~80 m of extra cable/RF path

	fmt.Println("thief's relay rig: one antenna at the car, one near the owner's house,")
	fmt.Println("fob is 80 m away; unlock policy: fob within 2 m")
	fmt.Println()

	for _, sys := range []pkes.System{pkes.LegacyRSSI, pkes.UWBSecureHRP, pkes.UWBLRPBounding} {
		vehicle, fob, err := pkes.NewPair(sys, key, 2.0, sim.NewRNG(1))
		if err != nil {
			log.Fatal(err)
		}
		// Sanity: the owner can still unlock normally.
		near, err := vehicle.Attempt(fob, pkes.Scenario{FobDistanceM: 1.0})
		if err != nil {
			log.Fatal(err)
		}
		// The attack.
		attack, err := vehicle.Attempt(fob, pkes.Scenario{FobDistanceM: 80, Relay: relay})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "CAR STOLEN"
		if !attack.Unlocked {
			verdict = "attack defeated"
		}
		fmt.Printf("%-18s owner-unlock=%v  relay: identity-verified=%v measured=%.1fm unlocked=%v → %s\n",
			sys, near.Unlocked, attack.IdentityVerified, attack.MeasuredDistanceM, attack.Unlocked, verdict)
		if attack.Reason != "" {
			fmt.Printf("%-18s reason: %s\n", "", attack.Reason)
		}
	}

	fmt.Println("\nthe crypto never failed — proximity is a physical-layer property, which is the paper's point.")
}
