// plug-and-charge walks through the §IV-C use case: an EV authorizes a
// charging session against a charge point using (a) an ISO-15118-style
// certificate chain and (b) an SSI verifiable credential — including the
// roaming-cost comparison and the offline scenario where the station has
// no backend connectivity.
package main

import (
	"fmt"
	"log"

	"autosec/internal/charging"
	"autosec/internal/ssi"
)

func key(b byte) *ssi.KeyPair {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	k, err := ssi.GenerateKeyPair(s)
	if err != nil {
		log.Fatal(err)
	}
	return k
}

func main() {
	// --- design A: hierarchical PKI (ISO 15118 style) ---
	root := charging.NewRootCA("v2g-root", key(1), 100000)
	emspCA := root.IssueSubCA("emsp-green-energy", key(2), 50000)
	carKey := key(3)
	contractCert := emspCA.IssueLeaf("contract-0x42", carKey, 20000)

	pkiStation := &charging.Station{
		ID: "cp-highway-12", Mode: charging.PKIMode,
		Roots: map[string]*charging.Certificate{"v2g-root": root.Cert},
	}
	err := pkiStation.AuthorizePKI(&charging.PKIRequest{
		Contract:      contractCert,
		Intermediates: []*charging.Certificate{emspCA.Cert},
		Key:           carKey,
	}, 1000)
	fmt.Printf("PKI flow: authorized=%v (chain contract → eMSP sub-CA → V2G root)\n", err == nil)

	// --- design B: SSI verifiable credential ---
	emsp := key(4)
	car := key(5)
	reg := ssi.NewRegistry()
	for _, k := range []*ssi.KeyPair{emsp, car} {
		if err := reg.Register(ssi.NewDocument(k)); err != nil {
			log.Fatal(err)
		}
	}
	trust := ssi.NewTrustRegistry()
	trust.AddAnchor(charging.ContractCredentialType, emsp.DID)
	verifier := ssi.NewVerifier(reg, trust)

	contract, err := ssi.Issue(emsp, &ssi.Credential{
		ID: "contract-ssi-7", Type: charging.ContractCredentialType,
		Issuer: emsp.DID, Subject: car.DID,
		Claims: map[string]string{"tariff": "green-night"}, IssuedAt: 0, ExpiresAt: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}

	ssiStation := &charging.Station{ID: "cp-city-3", Mode: charging.SSIMode, Verifier: verifier}
	receipt, err := ssiStation.AuthorizeSSI(car, contract, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SSI flow: authorized=true, billing receipt for %.1f kWh verifies=%v\n",
		receipt.EnergyKWh, charging.VerifyReceipt(receipt, reg) == nil)

	// --- offline: the station loses its uplink ---
	bundle, err := ssi.NewOfflineBundle(verifier, []*ssi.Credential{contract}, 1000, 86400)
	if err != nil {
		log.Fatal(err)
	}
	offlineStation := &charging.Station{ID: "cp-rural-9", Mode: charging.SSIMode, Offline: bundle}
	_, err = offlineStation.AuthorizeSSI(car, contract, 2000)
	fmt.Printf("offline SSI authorization (no backend): authorized=%v\n", err == nil)

	// --- the roaming interoperability argument ---
	fmt.Println("\nroaming setup actions for N CPOs × M eMSPs:")
	for _, n := range []int{5, 20, 100} {
		fmt.Printf("  N=M=%-4d PKI(cross-load roots)=%-6d SSI(registry anchors)=%d\n",
			n, charging.RoamingSetupSteps(charging.PKIMode, n, n),
			charging.RoamingSetupSteps(charging.SSIMode, n, n))
	}
}
