// zonal-network builds the Fig. 3 topology and runs all §III-A security
// scenarios (baseline, S1, S2 end-to-end, S2 point-to-point, S3 with
// CANAL) against the same workload and the same masquerade/replay
// attacker, printing the trade-off table the paper discusses.
package main

import (
	"fmt"
	"log"

	"autosec/internal/ivn"
)

func main() {
	cfg := ivn.DefaultConfig(42)
	fmt.Printf("workload: %d messages of %d B every %d µs; attacker: %d forgeries + %d replays\n\n",
		cfg.Messages, cfg.PayloadBytes, cfg.PeriodUs, cfg.Forgeries, cfg.Replays)

	results, err := ivn.RunAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  baseline  — every attack succeeds: CAN has no sender authentication (§III)")
	fmt.Println("  S1        — secure, but the zone controller stores keys and does per-frame crypto")
	fmt.Println("  S2-e2e    — keyless zone controller; intermediate cannot touch protected headers")
	fmt.Println("  S2-p2p    — double crypto work and two keys at the zone controller")
	fmt.Println("  S3        — CANAL carries MACsec+MKA end-to-end onto the CAN XL leg")
}
