package ids

import (
	"testing"

	"autosec/internal/canbus"
	"autosec/internal/sim"
)

func structuredPayload(i int) []byte {
	// Counter + slowly varying "physical" value: low entropy.
	return []byte{byte(i), byte(i >> 8), 0x10, 0x27, byte(40 + i%3), 0, 0, 0}
}

func TestEntropyDetectorFlagsFuzzing(t *testing.T) {
	d := NewEntropyDetector()
	rng := sim.NewRNG(1)
	now := sim.Time(0)
	// Training on structured payloads.
	for i := 0; i < 200; i++ {
		now += sim.Millisecond
		f := &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: structuredPayload(i)}
		if a := d.Observe(now, f); a != nil {
			t.Fatalf("alert in training: %+v", a)
		}
	}
	d.EndTraining()
	// Normal traffic stays quiet.
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		f := &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: structuredPayload(i)}
		if a := d.Observe(now, f); a != nil {
			t.Fatalf("false positive on structured payload: %+v", a)
		}
	}
	// Fuzzing campaign: uniform random payloads.
	alerted := false
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		p := make([]byte, 8)
		rng.Bytes(p)
		f := &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: p}
		if a := d.Observe(now, f); a != nil {
			alerted = true
			if a.Detector != "entropy" {
				t.Errorf("detector %q", a.Detector)
			}
		}
	}
	if !alerted {
		t.Error("random-payload campaign never flagged")
	}
}

func TestEntropyDetectorIgnoresUntrainedIDs(t *testing.T) {
	d := NewEntropyDetector()
	d.EndTraining()
	rng := sim.NewRNG(2)
	for i := 0; i < 200; i++ {
		p := make([]byte, 8)
		rng.Bytes(p)
		if a := d.Observe(sim.Time(i), &canbus.Frame{ID: 0x7FF, Format: canbus.Classic, Payload: p}); a != nil {
			t.Fatal("entropy detector alerted on an ID it has no baseline for")
		}
	}
}

func TestByteEntropyBounds(t *testing.T) {
	if e := byteEntropy(nil); e != 0 {
		t.Errorf("empty entropy %v", e)
	}
	same := make([]byte, 256)
	if e := byteEntropy(same); e != 0 {
		t.Errorf("constant entropy %v", e)
	}
	uniform := make([]byte, 256)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if e := byteEntropy(uniform); e < 7.99 || e > 8.01 {
		t.Errorf("uniform entropy %v, want 8", e)
	}
}

func TestLoadDetectorFlagsFlood(t *testing.T) {
	d := NewLoadDetector()
	now := sim.Time(0)
	f := &canbus.Frame{ID: 0x200, Format: canbus.Classic, Payload: []byte{1}}
	// Training: 1 frame per ms = 10 per window.
	for i := 0; i < 500; i++ {
		now += sim.Millisecond
		if a := d.Observe(now, f); a != nil {
			t.Fatalf("alert during training: %+v", a)
		}
	}
	d.EndTraining()
	// Normal load stays quiet.
	for i := 0; i < 200; i++ {
		now += sim.Millisecond
		if a := d.Observe(now, f); a != nil {
			t.Fatalf("false positive at learned rate: %+v", a)
		}
	}
	// Flood: 10 frames per ms.
	alerted := false
	for i := 0; i < 2000; i++ {
		now += sim.Millisecond / 10
		if a := d.Observe(now, f); a != nil {
			alerted = true
			if a.Detector != "busload" {
				t.Errorf("detector %q", a.Detector)
			}
			break
		}
	}
	if !alerted {
		t.Error("10× flood never flagged")
	}
}

func TestLoadDetectorHandlesIdleGaps(t *testing.T) {
	d := NewLoadDetector()
	f := &canbus.Frame{ID: 0x200, Format: canbus.Classic, Payload: []byte{1}}
	now := sim.Time(sim.Millisecond)
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		d.Observe(now, f)
	}
	d.EndTraining()
	// A long silence then normal traffic must not alert.
	now += 5 * sim.Second
	for i := 0; i < 100; i++ {
		now += sim.Millisecond
		if a := d.Observe(now, f); a != nil {
			t.Fatalf("false positive after idle gap: %+v", a)
		}
	}
}
