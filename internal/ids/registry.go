package ids

import (
	"autosec/internal/canbus"
	"autosec/internal/ext"
	"autosec/internal/sim"
)

// Detector is the uniform interface registered detector constructors
// return: observe bus arrivals, freeze any learned baseline when the
// training window closes. Detectors without a training phase implement
// EndTraining as a no-op.
type Detector interface {
	Observe(now sim.Time, f *canbus.Frame) *Alert
	EndTraining()
}

// Enroller is the optional provisioning interface a detector exposes
// when it authenticates transmitters by enrolled identity (the
// EASI-style sender identifier). Callers type-assert for it.
type Enroller interface {
	Enroll(frameID uint32, nodeID string)
	KnowNode(nodeID string)
}

// DetectorParams carries every knob any registered constructor reads;
// each constructor picks the fields it understands and ignores the
// rest, so one params struct configures the whole tap chain.
type DetectorParams struct {
	// Tolerance is the interval detector's anomaly fraction.
	Tolerance float64
	// MinSamples before a learned per-ID model is trusted.
	MinSamples int
	// MatchRadius is the sender identifier's fingerprint acceptance
	// radius; NoiseStd its analog measurement noise.
	MatchRadius float64
	NoiseStd    float64
	// RNG is the detector's random stream; only set for constructors
	// whose registration claims CapRNG, so building a detector chain
	// consumes parent-RNG forks deterministically.
	RNG *sim.RNG
}

// CapRNG marks a detector constructor that consumes DetectorParams.RNG
// — the builder forks the replicate RNG once per claiming detector and
// never otherwise, keeping the draw stream independent of how many
// RNG-free detectors sit in the chain.
const CapRNG = "rng"

// Detectors is the detector-constructor extension registry (ext kind
// "detector"). The §VIII built-ins register below; drop-in detectors
// register from their own file and become addressable by name.
var Detectors = ext.NewRegistry[func(DetectorParams) Detector]("detector")

func init() {
	Detectors.Register(ext.Meta{
		Name:        "interval",
		Description: "learned inter-arrival baseline per CAN id; flags period-halving injections",
		Paper:       "§VIII frequency/interval anomaly detection",
		Caps:        []string{ext.CapCore},
		Rank:        1,
	}, func(p DetectorParams) Detector {
		return NewIntervalDetectorWith(p.Tolerance, p.MinSamples)
	})
	Detectors.Register(ext.Meta{
		Name:        "sender-id",
		Description: "EASI-style analog-fingerprint sender identification with attribution",
		Paper:       "§VIII physical fingerprinting, ref [52]",
		Caps:        []string{ext.CapCore, CapRNG},
		Rank:        2,
	}, func(p DetectorParams) Detector {
		s := NewSenderIdentifier(p.RNG)
		s.MatchRadius = p.MatchRadius
		s.NoiseStd = p.NoiseStd
		return s
	})
	Detectors.Register(ext.Meta{
		Name:        "entropy",
		Description: "per-id payload entropy baseline; flags fuzzing and ciphertext stuffing",
		Paper:       "§VIII payload anomaly detection",
		Caps:        []string{ext.CapCore},
		Rank:        3,
	}, func(DetectorParams) Detector { return NewEntropyDetector() })
	Detectors.Register(ext.Meta{
		Name:        "busload",
		Description: "aggregate frame-rate watcher; flags sustained flooding",
		Paper:       "§VIII denial-of-service signature",
		Caps:        []string{ext.CapCore},
		Rank:        4,
	}, func(DetectorParams) Detector { return NewLoadDetector() })
}
