package ids

import (
	"fmt"
	"sort"

	"autosec/internal/canbus"
	"autosec/internal/sim"
)

// ResponseAction enumerates what the response engine can do, following
// the REACT taxonomy (ref [56]): alert only, isolate the attributed
// node, or isolate and trigger a session rekey of the affected channel.
type ResponseAction int

const (
	AlertOnly ResponseAction = iota
	Isolate
	IsolateAndRekey
)

func (a ResponseAction) String() string {
	switch a {
	case AlertOnly:
		return "alert"
	case Isolate:
		return "isolate"
	case IsolateAndRekey:
		return "isolate+rekey"
	default:
		return "unknown"
	}
}

// Engine combines detectors with automated response. It is attached to
// a bus as a tap; detections above the alert threshold trigger the
// configured action.
type Engine struct {
	Action ResponseAction
	// AlertThreshold is how many alerts attributed to one source are
	// needed before responding (debounces fingerprint noise).
	AlertThreshold int

	interval *IntervalDetector
	senderID *SenderIdentifier

	alerts     []Alert
	perSource  map[string]int
	isolated   map[string]bool
	rekeyCount int
	kernel     *sim.Kernel
	// ContainedAt records when each source was isolated.
	ContainedAt map[string]sim.Time
}

// NewEngine builds a response engine with both detectors.
func NewEngine(action ResponseAction, k *sim.Kernel) *Engine {
	return &Engine{
		Action:         action,
		AlertThreshold: 3,
		interval:       NewIntervalDetector(),
		senderID:       NewSenderIdentifier(k.RNG().Fork()),
		perSource:      make(map[string]int),
		isolated:       make(map[string]bool),
		ContainedAt:    make(map[string]sim.Time),
		kernel:         k,
	}
}

// Interval exposes the interval detector for training control.
func (e *Engine) Interval() *IntervalDetector { return e.interval }

// SenderID exposes the fingerprint detector for enrolment.
func (e *Engine) SenderID() *SenderIdentifier { return e.senderID }

// Attach registers the engine on a bus. The returned gate function
// should be installed in nodes that honor isolation (the zone
// controller refusing to forward an isolated ECU's traffic).
func (e *Engine) Attach(b *canbus.Bus) {
	b.Tap(func(f *canbus.Frame) { e.observe(f) })
}

// Isolated reports whether a node has been cut off.
func (e *Engine) Isolated(nodeID string) bool { return e.isolated[nodeID] }

// Alerts returns all raised alerts.
func (e *Engine) Alerts() []Alert { return e.alerts }

// Rekeys returns how many rekey operations were triggered.
func (e *Engine) Rekeys() int { return e.rekeyCount }

// observe runs both detectors on a delivered frame.
func (e *Engine) observe(f *canbus.Frame) {
	now := e.kernel.Now()
	if a := e.interval.Observe(now, f); a != nil {
		e.raise(*a)
	}
	if a := e.senderID.Observe(now, f); a != nil {
		e.raise(*a)
	}
}

func (e *Engine) raise(a Alert) {
	e.alerts = append(e.alerts, a)
	e.kernel.Metrics().Inc("ids.alerts."+a.Detector, 1)
	src := a.Source
	if src == "" {
		return // cannot respond without attribution
	}
	e.perSource[src]++
	if e.perSource[src] < e.AlertThreshold || e.isolated[src] {
		return
	}
	switch e.Action {
	case AlertOnly:
	case Isolate, IsolateAndRekey:
		e.isolated[src] = true
		e.ContainedAt[src] = a.At
		e.kernel.Metrics().Inc("ids.isolations", 1)
		if e.Action == IsolateAndRekey {
			e.rekeyCount++
			e.kernel.Metrics().Inc("ids.rekeys", 1)
		}
	}
}

// Summary renders the engine state for reports.
func (e *Engine) Summary() string {
	var isolated []string
	for id := range e.isolated {
		isolated = append(isolated, id)
	}
	sort.Strings(isolated)
	return fmt.Sprintf("alerts=%d isolated=%v rekeys=%d", len(e.alerts), isolated, e.rekeyCount)
}
