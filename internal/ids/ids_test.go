package ids

import (
	"testing"

	"autosec/internal/canbus"
	"autosec/internal/sim"
)

func frame(id uint32, src string) *canbus.Frame {
	return &canbus.Frame{ID: id, Format: canbus.Classic, Payload: []byte{1}, SourceID: src}
}

func TestIntervalDetectorLearnsAndFlagsInjection(t *testing.T) {
	d := NewIntervalDetector()
	period := sim.Time(10 * sim.Millisecond)
	now := sim.Time(0)
	// Training: 20 periodic arrivals.
	for i := 0; i < 20; i++ {
		now += period
		if a := d.Observe(now, frame(0x100, "engine")); a != nil {
			t.Fatalf("alert during training: %+v", a)
		}
	}
	d.EndTraining()
	// Normal traffic stays quiet.
	for i := 0; i < 10; i++ {
		now += period
		if a := d.Observe(now, frame(0x100, "engine")); a != nil {
			t.Fatalf("false positive on periodic traffic: %+v", a)
		}
	}
	// Injection: an extra frame 1 ms after the legitimate one.
	now += period
	if a := d.Observe(now, frame(0x100, "engine")); a != nil {
		t.Fatalf("false positive: %+v", a)
	}
	now += sim.Time(1 * sim.Millisecond)
	if a := d.Observe(now, frame(0x100, "attacker")); a == nil {
		t.Error("injected frame at 10% of period not flagged")
	}
}

func TestIntervalDetectorUnknownID(t *testing.T) {
	d := NewIntervalDetector()
	d.Observe(1, frame(0x100, "engine"))
	d.EndTraining()
	if a := d.Observe(2, frame(0x7FF, "attacker")); a == nil {
		t.Error("unknown identifier after training not flagged")
	}
}

func TestIntervalDetectorToleratesJitter(t *testing.T) {
	d := NewIntervalDetector()
	rng := sim.NewRNG(1)
	period := float64(10 * sim.Millisecond)
	now := sim.Time(0)
	for i := 0; i < 30; i++ {
		now += sim.Time(period * (0.9 + 0.2*rng.Float64()))
		d.Observe(now, frame(0x200, "ecu"))
	}
	d.EndTraining()
	fp := 0
	for i := 0; i < 100; i++ {
		now += sim.Time(period * (0.9 + 0.2*rng.Float64()))
		if a := d.Observe(now, frame(0x200, "ecu")); a != nil {
			fp++
		}
	}
	if fp > 0 {
		t.Errorf("%d false positives under ±10%% jitter", fp)
	}
}

func TestFingerprintsAreStableAndDistinct(t *testing.T) {
	a1 := NodeFingerprint("engine")
	a2 := NodeFingerprint("engine")
	b := NodeFingerprint("infotainment")
	if a1 != a2 {
		t.Error("fingerprint not deterministic")
	}
	if a1.dist(b) < 0.3 {
		t.Errorf("distinct nodes too close: %.3f", a1.dist(b))
	}
}

func TestSenderIdentifierCatchesMasquerade(t *testing.T) {
	rng := sim.NewRNG(2)
	s := NewSenderIdentifier(rng)
	s.Enroll(0x0C0, "engine")
	s.KnowNode("infotainment")

	// Legitimate frames pass.
	for i := 0; i < 50; i++ {
		if a := s.Observe(sim.Time(i), frame(0x0C0, "engine")); a != nil {
			t.Fatalf("false positive on legitimate sender: %+v", a)
		}
	}
	// Masquerade: same identifier, different physical transmitter.
	caught := 0
	for i := 0; i < 50; i++ {
		if a := s.Observe(sim.Time(i), frame(0x0C0, "infotainment")); a != nil {
			caught++
			if a.Source != "infotainment" {
				t.Errorf("attributed to %q", a.Source)
			}
		}
	}
	if caught < 45 {
		t.Errorf("caught only %d/50 masquerade frames", caught)
	}
}

func TestSenderIdentifierIgnoresUnprotectedIDs(t *testing.T) {
	s := NewSenderIdentifier(sim.NewRNG(3))
	if a := s.Observe(1, frame(0x300, "anyone")); a != nil {
		t.Error("unprotected identifier flagged")
	}
}

func TestEngineIsolatesMasquerader(t *testing.T) {
	k := sim.NewKernel(5)
	bus := canbus.NewBus("zone", canbus.DefaultBitRates(), k)
	bus.Attach(&canbus.NodeFunc{ID: "rx"})

	engine := NewEngine(IsolateAndRekey, k)
	engine.SenderID().Enroll(0x0C0, "engine")
	engine.SenderID().KnowNode("infotainment")
	engine.Interval().EndTraining()
	engine.Attach(bus)

	// Legitimate periodic traffic plus a masquerade campaign.
	for i := 0; i < 20; i++ {
		at := sim.Time(i+1) * 10 * sim.Millisecond
		k.Schedule(at, "legit", func(k *sim.Kernel) {
			_ = bus.Send("engine", frame(0x0C0, "engine"))
		})
		k.Schedule(at+3*sim.Millisecond, "masq", func(k *sim.Kernel) {
			_ = bus.Send("infotainment", frame(0x0C0, "infotainment"))
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !engine.Isolated("infotainment") {
		t.Fatalf("masquerader not isolated: %s", engine.Summary())
	}
	if engine.Isolated("engine") {
		t.Error("legitimate sender isolated")
	}
	if engine.Rekeys() == 0 {
		t.Error("rekey not triggered")
	}
	if at, ok := engine.ContainedAt["infotainment"]; !ok || at == 0 {
		t.Error("containment time not recorded")
	}
	if k.Metrics().Counter("ids.isolations") != 1 {
		t.Error("isolation metric missing")
	}
}

func TestEngineAlertOnlyDoesNotIsolate(t *testing.T) {
	k := sim.NewKernel(6)
	bus := canbus.NewBus("zone", canbus.DefaultBitRates(), k)
	bus.Attach(&canbus.NodeFunc{ID: "rx"})
	engine := NewEngine(AlertOnly, k)
	engine.SenderID().Enroll(0x0C0, "engine")
	engine.SenderID().KnowNode("infotainment")
	engine.Interval().EndTraining()
	engine.Attach(bus)
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * sim.Millisecond
		k.Schedule(at, "masq", func(k *sim.Kernel) {
			_ = bus.Send("infotainment", frame(0x0C0, "infotainment"))
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(engine.Alerts()) == 0 {
		t.Error("no alerts raised")
	}
	if engine.Isolated("infotainment") {
		t.Error("alert-only mode isolated a node")
	}
}

func TestResponseActionStrings(t *testing.T) {
	if AlertOnly.String() != "alert" || Isolate.String() != "isolate" || IsolateAndRekey.String() != "isolate+rekey" {
		t.Error("action strings")
	}
}

func TestIntervalDetectorWithExplicitTolerance(t *testing.T) {
	// The scenario DSL sweeps the detection boundary: an arrival at
	// half the period is flagged at tolerance 0.7 but tolerated at 0.3,
	// and the defaults constructor is exactly With(0.5, 8).
	run := func(tolerance float64) bool {
		d := NewIntervalDetectorWith(tolerance, 8)
		period := sim.Time(10 * sim.Millisecond)
		now := sim.Time(0)
		for i := 0; i < 20; i++ {
			now += period
			if a := d.Observe(now, frame(0x100, "engine")); a != nil {
				t.Fatalf("alert during training: %+v", a)
			}
		}
		d.EndTraining()
		now += period / 2
		return d.Observe(now, frame(0x100, "attacker")) != nil
	}
	if !run(0.7) {
		t.Error("half-period arrival not flagged at tolerance 0.7")
	}
	if run(0.3) {
		t.Error("half-period arrival flagged at tolerance 0.3")
	}
	d := NewIntervalDetector()
	if d.Tolerance != 0.5 || d.MinSamples != 8 {
		t.Errorf("defaults = (%v, %d), want (0.5, 8)", d.Tolerance, d.MinSamples)
	}
}
