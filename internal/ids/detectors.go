package ids

import (
	"fmt"
	"math"

	"autosec/internal/canbus"
	"autosec/internal/sim"
)

// EntropyDetector flags identifiers whose payload byte distribution
// shifts abruptly. Periodic control frames carry highly structured,
// low-entropy payloads (counters, slowly-varying physical values);
// fuzzing campaigns and ciphertext-stuffing inject near-uniform bytes.
type EntropyDetector struct {
	// Window is the number of payloads per estimate.
	Window int
	// Threshold is the entropy jump (bits/byte) that raises an alert.
	Threshold float64

	history  map[uint32][]float64 // recent per-window entropies
	buffer   map[uint32][]byte
	baseline map[uint32]float64
	training bool
}

// NewEntropyDetector returns a detector in training mode.
func NewEntropyDetector() *EntropyDetector {
	return &EntropyDetector{
		Window:    16,
		Threshold: 1.5,
		history:   map[uint32][]float64{},
		buffer:    map[uint32][]byte{},
		baseline:  map[uint32]float64{},
		training:  true,
	}
}

// EndTraining freezes per-identifier baselines.
func (d *EntropyDetector) EndTraining() {
	d.training = false
	for id, es := range d.history {
		sum := 0.0
		for _, e := range es {
			sum += e
		}
		if len(es) > 0 {
			d.baseline[id] = sum / float64(len(es))
		}
	}
}

// Observe feeds one frame; it may return an alert after a window
// boundary.
func (d *EntropyDetector) Observe(now sim.Time, f *canbus.Frame) *Alert {
	d.buffer[f.ID] = append(d.buffer[f.ID], f.Payload...)
	if len(d.buffer[f.ID]) < d.Window*8 {
		return nil
	}
	e := byteEntropy(d.buffer[f.ID])
	d.buffer[f.ID] = nil
	if d.training {
		d.history[f.ID] = append(d.history[f.ID], e)
		return nil
	}
	base, known := d.baseline[f.ID]
	if !known {
		return nil // interval detector owns the unknown-ID case
	}
	if e-base > d.Threshold {
		return &Alert{
			At: now, Detector: "entropy", FrameID: f.ID,
			Reason: fmt.Sprintf("payload entropy %.2f b/B vs baseline %.2f", e, base),
		}
	}
	return nil
}

// byteEntropy computes Shannon entropy in bits per byte.
func byteEntropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// LoadDetector watches aggregate bus load and flags flooding: a
// sustained frame rate far above the learned level is the
// denial-of-service signature regardless of payload or identifier.
type LoadDetector struct {
	// WindowNs is the measurement window.
	WindowNs sim.Time
	// Multiplier over the learned rate that raises an alert.
	Multiplier float64

	windowStart sim.Time
	count       int
	learnedRate float64 // frames per window
	windows     int
	training    bool
}

// NewLoadDetector returns a detector in training mode with a 10 ms
// window.
func NewLoadDetector() *LoadDetector {
	return &LoadDetector{WindowNs: 10 * sim.Millisecond, Multiplier: 3, training: true}
}

// EndTraining freezes the learned rate.
func (d *LoadDetector) EndTraining() { d.training = false }

// Observe counts one frame; it returns an alert when a window closes
// hot.
func (d *LoadDetector) Observe(now sim.Time, f *canbus.Frame) *Alert {
	if d.windowStart == 0 {
		d.windowStart = now
	}
	for now-d.windowStart >= d.WindowNs {
		// Close the window.
		rate := float64(d.count)
		var alert *Alert
		if d.training {
			d.learnedRate += (rate - d.learnedRate) / float64(d.windows+1)
			d.windows++
		} else if d.learnedRate > 0 && rate > d.Multiplier*d.learnedRate {
			alert = &Alert{
				At: now, Detector: "busload", FrameID: f.ID,
				Reason: fmt.Sprintf("%d frames/window vs learned %.1f", d.count, d.learnedRate),
			}
		}
		d.windowStart += d.WindowNs
		d.count = 0
		if alert != nil {
			d.count++
			return alert
		}
	}
	d.count++
	return nil
}
