// Package ids implements the defence-in-depth detection layer of the
// paper's §VIII: a frequency/interval anomaly detector for CAN traffic,
// an EASI-style physical-fingerprint sender identifier (ref [52]) that
// catches masquerade frames whose analog signature does not match the
// identifier's legitimate transmitter, and a REACT-style response engine
// (ref [56]) that contains detected intrusions by isolating the
// offending node and alerting.
//
// Exercised by experiments exp-ids and ablate-ids.
package ids

import (
	"crypto/sha256"
	"fmt"
	"math"

	"autosec/internal/canbus"
	"autosec/internal/sim"
)

// Alert is one detection event.
type Alert struct {
	At       sim.Time
	Detector string
	FrameID  uint32
	Reason   string
	// Source is the physical-fingerprint attribution ("" if the
	// detector cannot attribute).
	Source string
}

// IntervalDetector learns the inter-arrival statistics of periodic CAN
// identifiers and flags bursts that violate them — the classic
// injection signature (a masquerader adds frames on top of the victim's
// own periodic transmission, halving the observed interval).
type IntervalDetector struct {
	// Tolerance is the fraction of the learned interval below which an
	// arrival is anomalous (0.5 = arrival at <50% of the period).
	Tolerance float64
	// MinSamples before an ID's model is trusted.
	MinSamples int

	learned  map[uint32]*arrivalModel
	training bool
}

type arrivalModel struct {
	last  sim.Time
	mean  float64
	count int
}

// NewIntervalDetector returns a detector in training mode.
func NewIntervalDetector() *IntervalDetector {
	return NewIntervalDetectorWith(0.5, 8)
}

// NewIntervalDetectorWith returns a training-mode detector with an
// explicit anomaly tolerance and per-ID sample requirement — the
// entry point for declarative scenarios that sweep the detection
// boundary instead of using the defaults.
func NewIntervalDetectorWith(tolerance float64, minSamples int) *IntervalDetector {
	return &IntervalDetector{Tolerance: tolerance, MinSamples: minSamples, learned: make(map[uint32]*arrivalModel), training: true}
}

// EndTraining freezes the learned baseline; unknown identifiers become
// reportable from now on.
func (d *IntervalDetector) EndTraining() { d.training = false }

// Observe feeds one frame arrival; it returns a non-nil alert when the
// frame is anomalous.
func (d *IntervalDetector) Observe(now sim.Time, f *canbus.Frame) *Alert {
	m, known := d.learned[f.ID]
	if !known {
		if d.training {
			d.learned[f.ID] = &arrivalModel{last: now}
			return nil
		}
		return &Alert{At: now, Detector: "interval", FrameID: f.ID, Reason: "unknown identifier"}
	}
	gap := float64(now - m.last)
	m.last = now
	if m.count < d.MinSamples || d.training {
		// Still learning this ID's period.
		m.mean += (gap - m.mean) / float64(m.count+1)
		m.count++
		return nil
	}
	if gap < d.Tolerance*m.mean {
		return &Alert{
			At: now, Detector: "interval", FrameID: f.ID,
			Reason: fmt.Sprintf("inter-arrival %.0fns below %.0f%% of learned period %.0fns", gap, d.Tolerance*100, m.mean),
		}
	}
	// Slowly adapt to drift.
	m.mean += (gap - m.mean) / 32
	return nil
}

// Fingerprint is the simulated analog signature of one physical
// transmitter: in EASI this is a vector of voltage-edge features; here
// it is a deterministic per-node vector plus per-frame measurement
// noise. Receivers can measure it, transmitters cannot forge another
// node's — it is physics, not bits.
type Fingerprint [8]float64

// NodeFingerprint derives the stable signature of a physical node.
func NodeFingerprint(nodeID string) Fingerprint {
	sum := sha256.Sum256([]byte("analog:" + nodeID))
	var f Fingerprint
	for i := range f {
		f[i] = float64(sum[i]) / 255
	}
	return f
}

// MeasureFingerprint simulates the receiver's per-frame measurement of
// the transmitter's signature with Gaussian noise.
func MeasureFingerprint(f *canbus.Frame, noiseStd float64, rng *sim.RNG) Fingerprint {
	fp := NodeFingerprint(f.SourceID)
	for i := range fp {
		fp[i] += noiseStd * rng.NormFloat64()
	}
	return fp
}

func (a Fingerprint) dist(b Fingerprint) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SenderIdentifier is the EASI-style detector: it enrolls the legitimate
// transmitter's fingerprint per identifier and flags frames whose
// measured signature is too far from the enrolled one.
type SenderIdentifier struct {
	// MatchRadius is the maximum fingerprint distance accepted.
	MatchRadius float64
	// NoiseStd is the measurement noise of the analog front end.
	NoiseStd float64

	enrolled map[uint32]Fingerprint
	names    map[uint32]string
	nodes    map[string]Fingerprint // every known physical node
	rng      *sim.RNG
}

// NewSenderIdentifier creates the detector.
func NewSenderIdentifier(rng *sim.RNG) *SenderIdentifier {
	return &SenderIdentifier{
		MatchRadius: 0.25,
		NoiseStd:    0.03,
		enrolled:    make(map[uint32]Fingerprint),
		names:       make(map[uint32]string),
		nodes:       make(map[string]Fingerprint),
		rng:         rng,
	}
}

// Enroll registers the legitimate transmitter of an identifier (done in
// a trusted provisioning phase).
func (s *SenderIdentifier) Enroll(frameID uint32, nodeID string) {
	s.enrolled[frameID] = NodeFingerprint(nodeID)
	s.names[frameID] = nodeID
	s.KnowNode(nodeID)
}

// EndTraining is a no-op: the identifier has no learning phase —
// enrollment is explicit provisioning. It exists so the identifier
// satisfies the uniform Detector interface of the registry.
func (s *SenderIdentifier) EndTraining() {}

// KnowNode registers a physical node's signature for attribution (all
// in-vehicle ECUs get profiled at provisioning, including ones that
// never legitimately send protected identifiers).
func (s *SenderIdentifier) KnowNode(nodeID string) {
	s.nodes[nodeID] = NodeFingerprint(nodeID)
}

// Observe measures a frame's analog signature and flags mismatches.
func (s *SenderIdentifier) Observe(now sim.Time, f *canbus.Frame) *Alert {
	want, ok := s.enrolled[f.ID]
	if !ok {
		return nil // not a protected identifier
	}
	got := MeasureFingerprint(f, s.NoiseStd, s.rng)
	if d := got.dist(want); d > s.MatchRadius {
		return &Alert{
			At: now, Detector: "sender-id", FrameID: f.ID,
			Reason: fmt.Sprintf("fingerprint distance %.3f exceeds %.3f: not %s", d, s.MatchRadius, s.names[f.ID]),
			Source: s.attribute(got),
		}
	}
	return nil
}

// attribute finds the nearest known node signature (best effort).
func (s *SenderIdentifier) attribute(fp Fingerprint) string {
	best, bestD := "", math.Inf(1)
	for name, sig := range s.nodes {
		if d := sig.dist(fp); d < bestD {
			best, bestD = name, d
		}
	}
	if bestD > 0.5 {
		return ""
	}
	return best
}
