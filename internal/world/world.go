// Package world provides the shared 2-D kinematic ground truth that the
// sensing (§II-B) and collaboration (§VII) layers observe: actors with
// position, velocity, and extent, stepped deterministically. Sensors
// *sample* this world with noise and adversarial distortion; having an
// exact ground truth is what lets the experiments score attacks and
// defences objectively.
//
// Exercised by experiments exp-ca, exp-collab, exp-v2x, and ablate-k
// (the shared 2-D world).
package world

import (
	"fmt"
	"math"
	"sort"
)

// Vec2 is a 2-D vector in metres (or metres/second for velocities).
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v − o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v·s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Norm returns the Euclidean length.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the distance between two points.
func Dist(a, b Vec2) float64 { return a.Sub(b).Norm() }

// Actor is one physical object: a vehicle, pedestrian, or obstacle.
type Actor struct {
	ID     string
	Pos    Vec2
	Vel    Vec2
	Radius float64 // bounding circle for collision checks
	// Transponder marks actors that carry a cooperative ranging radio
	// (UWB/5G-PRS); only these can be verified by two-way ranging.
	Transponder bool
}

// World holds the actors.
type World struct {
	actors map[string]*Actor
	order  []string // stable iteration order
	sorted []string // order sorted by ID, maintained incrementally
	time   float64
}

// New returns an empty world.
func New() *World {
	return &World{actors: make(map[string]*Actor)}
}

// Add inserts an actor; the ID must be unique.
func (w *World) Add(a *Actor) error {
	if a.ID == "" {
		return fmt.Errorf("world: actor needs an ID")
	}
	if _, dup := w.actors[a.ID]; dup {
		return fmt.Errorf("world: duplicate actor %q", a.ID)
	}
	w.actors[a.ID] = a
	w.order = append(w.order, a.ID)
	// Keep the by-ID index sorted on insert: collision checks run every
	// world step, so they must not re-sort the whole ID set each call.
	at := sort.SearchStrings(w.sorted, a.ID)
	w.sorted = append(w.sorted, "")
	copy(w.sorted[at+1:], w.sorted[at:])
	w.sorted[at] = a.ID
	return nil
}

// Remove deletes an actor; unknown IDs are a no-op.
func (w *World) Remove(id string) {
	if _, ok := w.actors[id]; !ok {
		return
	}
	delete(w.actors, id)
	for i, v := range w.order {
		if v == id {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	if at := sort.SearchStrings(w.sorted, id); at < len(w.sorted) && w.sorted[at] == id {
		w.sorted = append(w.sorted[:at], w.sorted[at+1:]...)
	}
}

// Get returns the actor or nil.
func (w *World) Get(id string) *Actor { return w.actors[id] }

// Actors returns all actors in insertion order.
func (w *World) Actors() []*Actor {
	out := make([]*Actor, 0, len(w.order))
	for _, id := range w.order {
		out = append(out, w.actors[id])
	}
	return out
}

// Time returns the accumulated simulated seconds.
func (w *World) Time() float64 { return w.time }

// Step advances every actor by dt seconds of straight-line motion.
func (w *World) Step(dt float64) {
	for _, a := range w.actors {
		a.Pos = a.Pos.Add(a.Vel.Scale(dt))
	}
	w.time += dt
}

// Collisions returns all overlapping actor pairs, ordered by ID. The
// pair order is pinned by TestCollisionsPairOrder: it walks the
// incrementally maintained sorted index, which must enumerate exactly
// as the historical copy-and-sort implementation did.
func (w *World) Collisions() [][2]string {
	var out [][2]string
	ids := w.sorted
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := w.actors[ids[i]], w.actors[ids[j]]
			if Dist(a.Pos, b.Pos) < a.Radius+b.Radius {
				out = append(out, [2]string{a.ID, b.ID})
			}
		}
	}
	return out
}

// Neighbors returns actors other than excludeID within radius of pos,
// in insertion order.
func (w *World) Neighbors(pos Vec2, radius float64, excludeID string) []*Actor {
	return w.NeighborsAppend(nil, pos, radius, excludeID)
}

// NeighborsAppend is Neighbors with a caller-provided scratch slice:
// the result is appended to dst (which may be nil) and returned, so
// per-tick callers can reuse one backing array instead of allocating a
// fresh slice for every query. Order matches Neighbors exactly.
func (w *World) NeighborsAppend(dst []*Actor, pos Vec2, radius float64, excludeID string) []*Actor {
	for _, id := range w.order {
		a := w.actors[id]
		if a.ID == excludeID {
			continue
		}
		if Dist(pos, a.Pos) <= radius {
			dst = append(dst, a)
		}
	}
	return dst
}
