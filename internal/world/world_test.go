package world

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := Vec2{3, 4}
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if got := a.Add(Vec2{1, 1}); got != (Vec2{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(Vec2{1, 1}); got != (Vec2{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if Dist(Vec2{0, 0}, Vec2{0, 7}) != 7 {
		t.Error("Dist wrong")
	}
}

func TestAddRemoveGet(t *testing.T) {
	w := New()
	if err := w.Add(&Actor{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&Actor{ID: "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := w.Add(&Actor{}); err == nil {
		t.Error("empty ID accepted")
	}
	if w.Get("a") == nil {
		t.Error("Get failed")
	}
	w.Remove("a")
	if w.Get("a") != nil {
		t.Error("Remove failed")
	}
	w.Remove("missing") // no-op
	if len(w.Actors()) != 0 {
		t.Error("Actors not empty")
	}
}

func TestStepIntegratesVelocity(t *testing.T) {
	w := New()
	_ = w.Add(&Actor{ID: "v", Pos: Vec2{0, 0}, Vel: Vec2{10, -2}})
	w.Step(0.5)
	a := w.Get("v")
	if a.Pos != (Vec2{5, -1}) {
		t.Errorf("Pos = %v", a.Pos)
	}
	if w.Time() != 0.5 {
		t.Errorf("Time = %v", w.Time())
	}
}

func TestCollisions(t *testing.T) {
	w := New()
	_ = w.Add(&Actor{ID: "a", Pos: Vec2{0, 0}, Radius: 1})
	_ = w.Add(&Actor{ID: "b", Pos: Vec2{1.5, 0}, Radius: 1})
	_ = w.Add(&Actor{ID: "c", Pos: Vec2{10, 0}, Radius: 1})
	cols := w.Collisions()
	if len(cols) != 1 || cols[0] != [2]string{"a", "b"} {
		t.Errorf("Collisions = %v", cols)
	}
}

// TestCollisionsPairOrder pins Collisions' enumeration order to the
// historical copy-and-sort behaviour: pairs come out in sorted-ID
// order regardless of insertion order, removals, and re-adds, so the
// incrementally maintained index must stay an exact sorted view.
func TestCollisionsPairOrder(t *testing.T) {
	w := New()
	// Insert out of order, with everyone overlapping everyone.
	for _, id := range []string{"m", "z", "a", "q", "b"} {
		if err := w.Add(&Actor{ID: id, Radius: 10}); err != nil {
			t.Fatal(err)
		}
	}
	w.Remove("q")
	if err := w.Add(&Actor{ID: "c", Radius: 10}); err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"a", "b"}, {"a", "c"}, {"a", "m"}, {"a", "z"},
		{"b", "c"}, {"b", "m"}, {"b", "z"},
		{"c", "m"}, {"c", "z"},
		{"m", "z"},
	}
	got := w.Collisions()
	if len(got) != len(want) {
		t.Fatalf("Collisions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestNeighborsAppendReusesScratch pins NeighborsAppend to Neighbors'
// order while confirming the scratch slice is actually reused.
func TestNeighborsAppendReusesScratch(t *testing.T) {
	w := New()
	for i, id := range []string{"ego", "n1", "n2", "n3"} {
		if err := w.Add(&Actor{ID: id, Pos: Vec2{X: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	scratch := make([]*Actor, 0, 8)
	got := w.NeighborsAppend(scratch[:0], Vec2{}, 10, "ego")
	want := w.Neighbors(Vec2{}, 10, "ego")
	if len(got) != len(want) {
		t.Fatalf("NeighborsAppend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbor %d = %v, want %v", i, got[i].ID, want[i].ID)
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("NeighborsAppend did not reuse the caller's scratch backing array")
	}
}

func TestNeighborsExcludesSelfAndFar(t *testing.T) {
	w := New()
	_ = w.Add(&Actor{ID: "ego", Pos: Vec2{0, 0}})
	_ = w.Add(&Actor{ID: "near", Pos: Vec2{5, 0}})
	_ = w.Add(&Actor{ID: "far", Pos: Vec2{100, 0}})
	ns := w.Neighbors(Vec2{0, 0}, 10, "ego")
	if len(ns) != 1 || ns[0].ID != "near" {
		t.Errorf("Neighbors = %v", ns)
	}
}

func TestActorsStableOrder(t *testing.T) {
	w := New()
	for _, id := range []string{"z", "a", "m"} {
		_ = w.Add(&Actor{ID: id})
	}
	got := w.Actors()
	want := []string{"z", "a", "m"}
	for i := range want {
		if got[i].ID != want[i] {
			t.Fatalf("order %v", got)
		}
	}
}

func TestStepLinearityProperty(t *testing.T) {
	f := func(px, py, vx, vy int8, steps uint8) bool {
		w := New()
		a := &Actor{ID: "p", Pos: Vec2{float64(px), float64(py)}, Vel: Vec2{float64(vx), float64(vy)}}
		_ = w.Add(a)
		n := int(steps%20) + 1
		for i := 0; i < n; i++ {
			w.Step(0.1)
		}
		wantX := float64(px) + float64(vx)*0.1*float64(n)
		wantY := float64(py) + float64(vy)*0.1*float64(n)
		return math.Abs(a.Pos.X-wantX) < 1e-9 && math.Abs(a.Pos.Y-wantY) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
