package killchain

import (
	"testing"

	"autosec/internal/sim"
	"autosec/internal/telemetry"
)

func monitoredCloud(t *testing.T) *telemetry.Cloud {
	t.Helper()
	cloud := telemetry.NewCloud(telemetry.WorstCase(), 60, 10, sim.NewRNG(3))
	cloud.AttachMonitor(telemetry.DefaultMonitor())
	return cloud
}

func TestBulkExfilDetected(t *testing.T) {
	cloud := monitoredCloud(t)
	rep, err := RunStealthExfil(cloud, BulkExfil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsExfiltrated != 600 || rep.VehiclesAffected != 60 {
		t.Errorf("exfiltrated %d records / %d vehicles", rep.RecordsExfiltrated, rep.VehiclesAffected)
	}
	if !rep.Detected {
		t.Error("bulk exfiltration not detected by monitoring")
	}
	// Both the fleet-scope mint and the bulk fetch should alarm.
	if len(rep.Alerts) < 2 {
		t.Errorf("alerts: %v", rep.Alerts)
	}
}

func TestLowAndSlowEvadesDetection(t *testing.T) {
	cloud := monitoredCloud(t)
	rep, err := RunStealthExfil(cloud, LowAndSlow)
	if err != nil {
		t.Fatal(err)
	}
	// The same data is gone...
	if rep.RecordsExfiltrated != 600 || rep.VehiclesAffected != 60 {
		t.Errorf("exfiltrated %d records / %d vehicles", rep.RecordsExfiltrated, rep.VehiclesAffected)
	}
	// ...without a single alert: §V-B takeaway 1 made concrete.
	if rep.Detected {
		t.Errorf("patient exfiltration detected: %v", rep.Alerts)
	}
	// Patience costs time.
	if rep.StepsTaken <= 60 {
		t.Errorf("low-and-slow finished in %d steps; should be spread out", rep.StepsTaken)
	}
}

func TestLowAndSlowWithoutPatienceWouldTrip(t *testing.T) {
	// Sanity: the rate alarm is real — minting the same per-VIN tokens
	// back to back (no AdvanceTime) fires it.
	cloud := monitoredCloud(t)
	const masterKey = "AKIA-MASTER-0xFLEET"
	for _, vin := range cloud.VINs() {
		if _, err := cloud.MintToken(masterKey, vin); err != nil {
			t.Fatal(err)
		}
	}
	if !cloud.Monitor().Detected() {
		t.Error("60 rapid mints did not trip the rate alarm")
	}
}

func TestLeastPrivilegeStopsBulkButNotLowAndSlow(t *testing.T) {
	// With least privilege, fleet-scope minting fails (bulk impossible)
	// but per-VIN minting is the app's legitimate operation — the
	// patient attacker still wins. Defence in depth, not silver bullet.
	cfg := telemetry.WorstCase()
	cfg.MasterKeyOverPrivileged = false
	cloud := telemetry.NewCloud(cfg, 20, 5, sim.NewRNG(4))
	cloud.AttachMonitor(telemetry.DefaultMonitor())

	if _, err := RunStealthExfil(cloud, BulkExfil); err == nil {
		t.Error("bulk exfiltration succeeded despite least privilege")
	}
	rep, err := RunStealthExfil(cloud, LowAndSlow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsExfiltrated != 100 {
		t.Errorf("low-and-slow under least privilege exfiltrated %d", rep.RecordsExfiltrated)
	}
}

func TestUnmonitoredCloudReportsNothing(t *testing.T) {
	cloud := telemetry.NewCloud(telemetry.WorstCase(), 10, 5, sim.NewRNG(5))
	rep, err := RunStealthExfil(cloud, BulkExfil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected || len(rep.Alerts) != 0 {
		t.Error("alerts without a monitor")
	}
}

func TestStrategyString(t *testing.T) {
	if BulkExfil.String() != "bulk" || LowAndSlow.String() != "low-and-slow" {
		t.Error("strategy strings")
	}
}
