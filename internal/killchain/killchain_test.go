package killchain

import (
	"strings"
	"testing"

	"autosec/internal/sim"
	"autosec/internal/telemetry"
)

func cloudWith(cfg telemetry.Config) *telemetry.Cloud {
	return telemetry.NewCloud(cfg, 40, 10, sim.NewRNG(7))
}

func TestFullChainSucceedsAgainstWorstCase(t *testing.T) {
	rep := Run(cloudWith(telemetry.WorstCase()))
	if !rep.Breached {
		t.Fatalf("chain failed against the incident configuration:\n%s", rep)
	}
	if rep.FailedAt() != -1 {
		t.Errorf("failed at %d", rep.FailedAt())
	}
	if rep.RecordsExfiltrated != 400 || rep.VehiclesAffected != 40 {
		t.Errorf("exfiltrated %d records / %d vehicles", rep.RecordsExfiltrated, rep.VehiclesAffected)
	}
	if !rep.PersonalData {
		t.Error("personal data flag not set")
	}
	if rep.PrecisionM != 10 {
		t.Errorf("precision %v", rep.PrecisionM)
	}
	if len(rep.Stages) != 6 {
		t.Errorf("%d stages", len(rep.Stages))
	}
}

func TestEachDefenceBreaksItsLink(t *testing.T) {
	cases := []struct {
		def        Defence
		breakStage Stage
	}{
		{DefendEnumeration, DirectoryEnumeration},
		{DisableHeapDump, HeapDump},
		{ScrubSecrets, KeyExtraction},
		{LeastPrivilege, DataExtraction},
	}
	for _, tc := range cases {
		t.Run(tc.def.String(), func(t *testing.T) {
			rep := Run(cloudWith(Apply(tc.def)))
			if rep.Breached {
				t.Fatalf("breach despite %v:\n%s", tc.def, rep)
			}
			failed := rep.Stages[len(rep.Stages)-1]
			if failed.Stage != tc.breakStage || failed.Success {
				t.Errorf("chain broke at %v, want %v", failed.Stage, tc.breakStage)
			}
		})
	}
}

func TestDataMinimizationLimitsDamage(t *testing.T) {
	// Minimization alone does not stop the breach, but the stolen data
	// is 1 km coarse — defence in depth for the data layer.
	rep := Run(cloudWith(Apply(MinimizeData)))
	if !rep.Breached {
		t.Fatal("minimization alone should not break the chain")
	}
	if rep.PrecisionM != 1000 {
		t.Errorf("stolen precision %v, want 1000", rep.PrecisionM)
	}
}

func TestAllDefencesChainBreaksEarly(t *testing.T) {
	rep := Run(cloudWith(Apply(Defences()...)))
	if rep.Breached {
		t.Fatal("breach despite all defences")
	}
	if rep.FailedAt() > 1 {
		t.Errorf("chain survived to stage %d with all defences", rep.FailedAt())
	}
}

func TestDefenceCombinationsMonotone(t *testing.T) {
	// Adding a defence never makes the outcome worse: enumerate all 16
	// combinations of the four chain-breaking defences.
	defs := []Defence{DefendEnumeration, DisableHeapDump, ScrubSecrets, LeastPrivilege}
	for mask := 0; mask < 16; mask++ {
		var applied []Defence
		for i, d := range defs {
			if mask&(1<<i) != 0 {
				applied = append(applied, d)
			}
		}
		rep := Run(cloudWith(Apply(applied...)))
		wantBreach := mask == 0
		if rep.Breached != wantBreach {
			t.Errorf("mask %04b: breached=%v, want %v", mask, rep.Breached, wantBreach)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Run(cloudWith(telemetry.WorstCase()))
	s := rep.String()
	for _, want := range []string{"traffic-analysis", "heap-dump", "BREACH"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	broken := Run(cloudWith(Apply(DisableHeapDump)))
	if !strings.Contains(broken.String(), "chain broken") {
		t.Error("broken chain not reported")
	}
}

func TestStageAndDefenceStrings(t *testing.T) {
	if len(Stages()) != 6 || len(Defences()) != 5 {
		t.Fatal("enumeration sizes")
	}
	for _, s := range Stages() {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Errorf("missing name for stage %d", int(s))
		}
	}
	for _, d := range Defences() {
		if strings.HasPrefix(d.String(), "Defence(") {
			t.Errorf("missing name for defence %d", int(d))
		}
	}
}

func TestParseDefenceRoundTrip(t *testing.T) {
	for _, d := range Defences() {
		got, err := ParseDefence(d.String())
		if err != nil {
			t.Errorf("ParseDefence(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDefence(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if names := DefenceNames(); len(names) != len(Defences()) {
		t.Errorf("DefenceNames has %d entries, want %d", len(names), len(Defences()))
	}
	_, err := ParseDefence("moat")
	if err == nil {
		t.Fatal("ParseDefence accepted an unknown name")
	}
	if !strings.Contains(err.Error(), "disable-heapdump") {
		t.Errorf("error %q does not list the vocabulary", err)
	}
}
