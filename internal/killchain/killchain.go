// Package killchain implements the Fig. 8 attack kill chain against the
// telemetry cloud of package telemetry: traffic analysis → directory
// enumeration → supply-chain identification → heap dump → key extraction
// → data extraction. Each stage has explicit preconditions (what the
// attacker must already hold) and effects (what it yields), so the
// experiment can show precisely which defence breaks which link — the
// paper's point that one hardening step anywhere in the chain stops the
// breach.
//
// Exercised by experiments fig8 and exp-stealth.
package killchain

import (
	"fmt"
	"regexp"
	"strings"

	"autosec/internal/ext"
	"autosec/internal/telemetry"
)

// Stage identifies one link of the chain.
type Stage int

const (
	TrafficAnalysis Stage = iota
	DirectoryEnumeration
	SupplyChainIdentification
	HeapDump
	KeyExtraction
	DataExtraction
	stageCount
)

// Stages lists the chain in order.
func Stages() []Stage {
	out := make([]Stage, stageCount)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

func (s Stage) String() string {
	switch s {
	case TrafficAnalysis:
		return "traffic-analysis"
	case DirectoryEnumeration:
		return "directory-enumeration"
	case SupplyChainIdentification:
		return "supply-chain-identification"
	case HeapDump:
		return "heap-dump"
	case KeyExtraction:
		return "key-extraction"
	case DataExtraction:
		return "data-extraction"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// StageResult records one stage's outcome.
type StageResult struct {
	Stage   Stage
	Success bool
	Detail  string
}

// Report is the complete chain outcome.
type Report struct {
	Stages []StageResult
	// Breached is true when data extraction succeeded.
	Breached bool
	// RecordsExfiltrated counts stolen data points.
	RecordsExfiltrated int
	// VehiclesAffected counts distinct VINs stolen.
	VehiclesAffected int
	// PrecisionM is the geolocation precision of the stolen data.
	PrecisionM float64
	// PersonalData is true when names/emails were included.
	PersonalData bool
}

// FailedAt returns the first failed stage, or -1 if all succeeded.
func (r *Report) FailedAt() int {
	for i, s := range r.Stages {
		if !s.Success {
			return i
		}
	}
	return -1
}

// String renders a stage-by-stage trace.
func (r *Report) String() string {
	var b strings.Builder
	for _, s := range r.Stages {
		mark := "✗"
		if s.Success {
			mark = "✓"
		}
		fmt.Fprintf(&b, "%s %-28s %s\n", mark, s.Stage.String(), s.Detail)
	}
	if r.Breached {
		fmt.Fprintf(&b, "BREACH: %d records, %d vehicles, ~%.0f m precision, personal data: %v\n",
			r.RecordsExfiltrated, r.VehiclesAffected, r.PrecisionM, r.PersonalData)
	} else {
		fmt.Fprintf(&b, "chain broken at stage %d\n", r.FailedAt())
	}
	return b.String()
}

// attacker state accumulated across stages.
type attacker struct {
	endpoint  bool
	paths     []string
	framework string
	dump      string
	iamKey    string
	token     string
}

var keyPattern = regexp.MustCompile(`accessKey="([^"]+)"`)

// Run executes the chain against the cloud and reports the outcome. The
// chain stops at the first failed stage (later stages lack their
// preconditions by construction).
func Run(cloud *telemetry.Cloud) *Report {
	rep := &Report{}
	att := &attacker{}

	add := func(stage Stage, ok bool, detail string) bool {
		rep.Stages = append(rep.Stages, StageResult{Stage: stage, Success: ok, Detail: detail})
		return ok
	}

	// 1. Traffic analysis: vehicles talk to the backend over the air;
	// observing any connected car reveals the endpoint. Always works —
	// the paper's "increasing attack surface" premise.
	att.endpoint = true
	if !add(TrafficAnalysis, true, "telemetry endpoint identified from vehicle traffic") {
		return rep
	}

	// 2. Directory enumeration (gobuster) against the web API.
	att.paths = cloud.EnumeratePaths(64)
	enumOK := len(att.paths) > 1
	if !add(DirectoryEnumeration, enumOK, fmt.Sprintf("%d paths discovered", len(att.paths))) {
		return rep
	}

	// 3. Supply-chain identification: the /actuator tree identifies the
	// Spring framework and therefore the heap-dump facility.
	for _, p := range att.paths {
		if strings.HasPrefix(p, "/actuator") {
			att.framework = "spring"
			break
		}
	}
	if !add(SupplyChainIdentification, att.framework != "", "framework: "+att.framework) {
		return rep
	}

	// 4. Heap dump via the debug endpoint.
	status, body := cloud.Probe("/actuator/heapdump")
	att.dump = body
	if !add(HeapDump, status == 200 && body != "", fmt.Sprintf("GET /actuator/heapdump → %d (%d bytes)", status, len(body))) {
		return rep
	}

	// 5. Key extraction: grep the dump for credentials.
	if m := keyPattern.FindStringSubmatch(att.dump); m != nil {
		att.iamKey = m[1]
	}
	if !add(KeyExtraction, att.iamKey != "", "IAM credential recovered from heap") {
		return rep
	}

	// 6. Data extraction: mint a fleet-wide token and pull everything.
	tok, err := cloud.MintToken(att.iamKey, "")
	if err != nil {
		add(DataExtraction, false, "token minting refused: "+err.Error())
		return rep
	}
	att.token = tok
	recs, err := cloud.Fetch(att.token)
	if err != nil || len(recs) == 0 {
		add(DataExtraction, false, "fetch failed")
		return rep
	}
	add(DataExtraction, true, fmt.Sprintf("%d records exfiltrated", len(recs)))

	rep.Breached = true
	rep.RecordsExfiltrated = len(recs)
	vins := map[string]bool{}
	for _, r := range recs {
		vins[r.VIN] = true
		if r.OwnerName != "" || r.Email != "" {
			rep.PersonalData = true
		}
	}
	rep.VehiclesAffected = len(vins)
	rep.PrecisionM = telemetry.LocationPrecisionM(recs)
	return rep
}

// Defence identifies a single hardening measure.
type Defence int

const (
	DefendEnumeration Defence = iota
	DisableHeapDump
	ScrubSecrets
	LeastPrivilege
	MinimizeData
	defenceCount
)

func (d Defence) String() string {
	switch d {
	case DefendEnumeration:
		return "enumeration-defence"
	case DisableHeapDump:
		return "disable-heapdump"
	case ScrubSecrets:
		return "secret-scrubbing"
	case LeastPrivilege:
		return "least-privilege"
	case MinimizeData:
		return "data-minimization"
	default:
		return fmt.Sprintf("Defence(%d)", int(d))
	}
}

// Defences lists all hardening measures.
func Defences() []Defence {
	out := make([]Defence, defenceCount)
	for i := range out {
		out[i] = Defence(i)
	}
	return out
}

// DefenceSpec is the registered form of one hardening measure (ext
// kind "defence"): a mutator that deploys the defence onto a telemetry
// cloud config. Drop-in defences register a spec from their own file
// and become deployable from scenario.ini [killchain] sections like
// built-ins; they never enter the Fig. 8 sweep, which iterates the
// core-capped enum.
type DefenceSpec struct {
	// Harden deploys the defence on the config.
	Harden func(*telemetry.Config)
}

// Extensions is the defence extension registry. The built-in Fig. 8
// defences register at init from the Defence enum, so the registry and
// the enum cannot drift apart.
var Extensions = ext.NewRegistry[DefenceSpec]("defence")

func init() {
	descs := map[Defence]string{
		DefendEnumeration: "rate-limit and 404-harden path probing, breaking gobuster recon",
		DisableHeapDump:   "remove the actuator heap-dump endpoint from production",
		ScrubSecrets:      "keep long-lived credentials out of process memory",
		LeastPrivilege:    "scope IAM keys so none can mint a fleet-wide token",
		MinimizeData:      "store coarse locations only, shrinking a breach's blast radius",
	}
	for i, d := range Defences() {
		d := d
		Extensions.Register(ext.Meta{
			Name:        d.String(),
			Description: descs[d],
			Paper:       fmt.Sprintf("Fig. 8 kill chain, defence breaking stage %d", i+1),
			Caps:        []string{ext.CapCore},
			Rank:        i + 1,
		}, DefenceSpec{Harden: func(cfg *telemetry.Config) { applyOne(cfg, d) }})
	}
}

// DefenceNames lists every built-in defence's canonical name in
// Defences order — the core-capped slice of the extension registry,
// and the vocabulary the scenario corpus generator mutates over.
func DefenceNames() []string {
	return Extensions.NamesWith(ext.CapCore)
}

// ParseDefence resolves a canonical defence name (the String form, e.g.
// "disable-heapdump") back to its Defence. Unknown names error with the
// full vocabulary so declarative callers get a self-diagnosing message.
func ParseDefence(name string) (Defence, error) {
	for _, d := range Defences() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("killchain: unknown defence %q (known: %s)", name, strings.Join(DefenceNames(), ", "))
}

// ConfigFor returns the worst-case config with the named defences
// deployed, resolving every name — built-in or drop-in — through the
// extension registry. This is the scenario DSL's deployment path.
func ConfigFor(names []string) (telemetry.Config, error) {
	cfg := telemetry.WorstCase()
	for _, n := range names {
		spec, err := Extensions.Lookup(n)
		if err != nil {
			return cfg, fmt.Errorf("killchain: %w", err)
		}
		spec.Harden(&cfg)
	}
	return cfg, nil
}

// Apply returns the worst-case config with the given defences applied.
func Apply(defs ...Defence) telemetry.Config {
	cfg := telemetry.WorstCase()
	for _, d := range defs {
		applyOne(&cfg, d)
	}
	return cfg
}

func applyOne(cfg *telemetry.Config, d Defence) {
	switch d {
	case DefendEnumeration:
		cfg.EnumerationDefended = true
	case DisableHeapDump:
		cfg.HeapDumpExposed = false
	case ScrubSecrets:
		cfg.SecretsInMemory = false
	case LeastPrivilege:
		cfg.MasterKeyOverPrivileged = false
	case MinimizeData:
		cfg.CoarseLocation = true
	}
}
