package killchain

import (
	"fmt"

	"autosec/internal/telemetry"
)

// This file operationalizes §V-B's first takeaway — "lack of incidents
// is not an indication of security": the same data theft, performed
// noisily or patiently, against a cloud with monitoring enabled. The
// noisy variant trips every alarm; the patient variant exfiltrates the
// same fleet without raising one.

// ExfilStrategy selects how the attacker extracts data once it holds
// the master credential.
type ExfilStrategy int

const (
	// BulkExfil mints one fleet-scope token and pulls everything at
	// once — the fast, loud approach.
	BulkExfil ExfilStrategy = iota
	// LowAndSlow mints per-VIN tokens, spaced in time below the
	// monitoring thresholds, and drains the fleet vehicle by vehicle.
	LowAndSlow
)

func (s ExfilStrategy) String() string {
	if s == BulkExfil {
		return "bulk"
	}
	return "low-and-slow"
}

// StealthReport is the outcome of a monitored exfiltration.
type StealthReport struct {
	Strategy           ExfilStrategy
	RecordsExfiltrated int
	VehiclesAffected   int
	// Detected reports whether the cloud's monitor raised anything.
	Detected bool
	Alerts   []string
	// StepsTaken is the logical time the attack consumed (patience has
	// a cost).
	StepsTaken int
}

// RunStealthExfil performs the data-extraction stage under monitoring.
// It presumes the credential theft already succeeded (the Fig. 8 chain
// through stage 5); the master key here is the one the heap dump leaks.
func RunStealthExfil(cloud *telemetry.Cloud, strategy ExfilStrategy) (*StealthReport, error) {
	const masterKey = "AKIA-MASTER-0xFLEET"
	rep := &StealthReport{Strategy: strategy}
	startStep := stepNow(cloud)

	switch strategy {
	case BulkExfil:
		tok, err := cloud.MintToken(masterKey, "")
		if err != nil {
			return nil, fmt.Errorf("killchain: bulk mint: %w", err)
		}
		recs, err := cloud.Fetch(tok)
		if err != nil {
			return nil, err
		}
		rep.RecordsExfiltrated = len(recs)
		rep.VehiclesAffected = cloud.Fleet()
	case LowAndSlow:
		// Per-VIN tokens, each mint separated by more than the
		// monitor's rate window; each fetch is one vehicle's worth —
		// far below any volume alarm.
		for _, vin := range cloud.VINs() {
			tok, err := cloud.MintToken(masterKey, vin)
			if err != nil {
				return nil, fmt.Errorf("killchain: mint for %s: %w", vin, err)
			}
			recs, err := cloud.Fetch(tok)
			if err != nil {
				return nil, err
			}
			rep.RecordsExfiltrated += len(recs)
			rep.VehiclesAffected++
			cloud.AdvanceTime(150) // patience: stay under the rate window
		}
	default:
		return nil, fmt.Errorf("killchain: unknown strategy %d", int(strategy))
	}

	if m := cloud.Monitor(); m != nil {
		rep.Detected = m.Detected()
		rep.Alerts = append(rep.Alerts, m.Alerts()...)
	}
	rep.StepsTaken = stepNow(cloud) - startStep
	return rep, nil
}

// stepNow reads the cloud's logical clock via its event log length plus
// advanced idle time; the Events slice carries the last step.
func stepNow(cloud *telemetry.Cloud) int {
	evs := cloud.Events()
	if len(evs) == 0 {
		return 0
	}
	return evs[len(evs)-1].Step
}
