package secchan

import "testing"

func TestWindowStrictOrder(t *testing.T) {
	w := &Window{Size: 64}
	for seq := uint64(1); seq <= 10; seq++ {
		if !w.Check(seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
		w.Mark(seq)
	}
	if w.High() != 10 {
		t.Fatalf("high = %d, want 10", w.High())
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if w.Check(seq) {
			t.Errorf("duplicate seq %d accepted", seq)
		}
	}
}

func TestWindowZeroNeverAcceptable(t *testing.T) {
	w := &Window{Size: 64}
	if w.Check(0) {
		t.Error("seq 0 accepted on a fresh window")
	}
	w.Mark(5)
	if w.Check(0) {
		t.Error("seq 0 accepted after marking")
	}
}

func TestWindowReorderWithinSize(t *testing.T) {
	w := &Window{Size: 8}
	w.Mark(20)
	for _, tc := range []struct {
		seq  uint64
		want bool
	}{
		{19, true},  // within window, unseen
		{13, true},  // exactly at the window edge (diff 7 < 8)
		{12, false}, // one past the edge (diff 8)
		{21, true},  // future always fresh
		{20, false}, // the high itself is marked
	} {
		if got := w.Check(tc.seq); got != tc.want {
			t.Errorf("Check(%d) with high=20 size=8 = %v, want %v", tc.seq, got, tc.want)
		}
	}
}

func TestWindowFarFutureResetsBitmap(t *testing.T) {
	w := &Window{Size: 64}
	w.Mark(1)
	w.Mark(2)
	w.Mark(200) // jump > 64 ahead: bitmap history is discarded
	if w.Check(200) {
		t.Error("new high still acceptable after Mark")
	}
	// 199..137 are inside the new window and were never seen.
	if !w.Check(199) || !w.Check(137) {
		t.Error("unseen sequences inside the slid window rejected")
	}
	// 1 and 2 fell out of the window entirely.
	if w.Check(2) {
		t.Error("sequence below the slid window accepted")
	}
}

func TestWindowSizeCapsAt64(t *testing.T) {
	w := &Window{Size: 1 << 30}
	w.Mark(100)
	if w.Check(36) {
		t.Error("diff 64 accepted: the bitmap cannot track past 64 entries")
	}
	if !w.Check(37) {
		t.Error("diff 63 rejected despite oversized Size")
	}
}

func TestCounterStrictWindow(t *testing.T) {
	c := &Counter{Window: 4}
	for _, tc := range []struct {
		seq  uint64
		want bool
	}{
		{0, false}, // not above last (0)
		{1, true},
		{4, true},
		{5, false}, // beyond window above last=0
	} {
		if got := c.Accept(tc.seq); got != tc.want {
			t.Errorf("Accept(%d) from last=0 window=4 = %v, want %v", tc.seq, got, tc.want)
		}
	}
	c.Commit(4)
	if c.Accept(4) {
		t.Error("duplicate of committed sequence accepted")
	}
	if c.Accept(3) {
		t.Error("reordered (stale) sequence accepted")
	}
	if !c.Accept(8) || c.Accept(9) {
		t.Error("window edge from last=4 wrong")
	}
	if c.Last() != 4 {
		t.Errorf("Last = %d, want 4", c.Last())
	}
}

// TestCounterNoOverflowNearWrap pins the uint64 widening: with last
// near the top of a 32-bit counter space (as CANsec's widened values
// can be), last+Window overflows uint32 but the seq-last comparison
// stays exact.
func TestCounterNoOverflowNearWrap(t *testing.T) {
	const top = uint64(^uint32(0))
	c := &Counter{Window: 16}
	c.Commit(top - 4)
	if !c.Accept(top) {
		t.Error("fresh sequence near 32-bit wrap rejected")
	}
	if c.Accept(top - 4) {
		t.Error("duplicate near wrap accepted")
	}
}

func TestLenientAccept(t *testing.T) {
	const max32 = uint64(^uint32(0))
	for _, tc := range []struct {
		high, seq, window uint64
		want              bool
	}{
		{10, 11, 0, true},            // strict: above high
		{10, 10, 0, false},           // strict: replay
		{10, 7, 4, true},             // in window
		{10, 6, 4, false},            // below window
		{10, 0, 4, false},            // zero never valid
		{max32 - 5, max32, 10, true}, // the uint32-wrap regression
	} {
		if got := LenientAccept(tc.high, tc.seq, tc.window); got != tc.want {
			t.Errorf("LenientAccept(high=%d, seq=%d, window=%d) = %v, want %v",
				tc.high, tc.seq, tc.window, got, tc.want)
		}
	}
}

func TestVerifyTrunc(t *testing.T) {
	if !VerifyTrunc([]byte{1, 2, 3}, []byte{1, 2, 3}) {
		t.Error("equal MACs rejected")
	}
	if VerifyTrunc([]byte{1, 2, 3}, []byte{1, 2, 4}) {
		t.Error("unequal MACs accepted")
	}
	if VerifyTrunc([]byte{1, 2, 3}, []byte{1, 2}) {
		t.Error("length mismatch accepted")
	}
	if !VerifyTrunc(nil, nil) {
		t.Error("empty MACs should compare equal")
	}
}
