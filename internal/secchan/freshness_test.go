package secchan

import "testing"

// tryExact returns a predicate accepting exactly the given full value —
// the shape a real MAC check has when the sender's counter is known.
func tryExact(want uint64) func(uint64) bool {
	return func(c uint64) bool { return c == want }
}

func TestFreshnessReconstructInOrder(t *testing.T) {
	f := &Freshness{Bits: 8, Window: 64}
	for want := uint64(1); want <= 5; want++ {
		got, ok := f.Reconstruct(want&0xff, tryExact(want))
		if !ok || got != want {
			t.Fatalf("Reconstruct(%d) = %d, %v", want, got, ok)
		}
	}
	if f.Last() != 5 {
		t.Fatalf("Last = %d, want 5", f.Last())
	}
}

func TestFreshnessToleratesLossWithinWindow(t *testing.T) {
	f := &Freshness{Bits: 8, Window: 64}
	// Sender is at 40; everything before was lost.
	got, ok := f.Reconstruct(40, tryExact(40))
	if !ok || got != 40 {
		t.Fatalf("lossy Reconstruct = %d, %v", got, ok)
	}
	// Truncation wrap: sender crosses a multiple of 2^8.
	f2 := &Freshness{Bits: 8, Window: 300}
	for _, want := range []uint64{250, 260} {
		got, ok := f2.Reconstruct(want&0xff, tryExact(want))
		if !ok || got != want {
			t.Fatalf("Reconstruct across truncation wrap: got %d, %v want %d", got, ok, want)
		}
	}
}

func TestFreshnessRejectsStaleAndBeyondWindow(t *testing.T) {
	f := &Freshness{Bits: 8, Window: 16}
	if _, ok := f.Reconstruct(5, tryExact(5)); !ok {
		t.Fatal("setup accept failed")
	}
	// Replay of 5: its truncation matches candidate 5+256 > window.
	if _, ok := f.Reconstruct(5, tryExact(5)); ok {
		t.Error("replayed value reconstructed")
	}
	// Sender jumped beyond the window.
	if _, ok := f.Reconstruct(40, tryExact(40)); ok {
		t.Error("beyond-window value reconstructed")
	}
	if f.Last() != 5 {
		t.Errorf("failed reconstructions moved Last to %d", f.Last())
	}
}

// TestFreshnessCandidateOrder pins the search order: candidates are
// tried smallest-first, so when several in-window values share a
// truncation the earliest MAC match wins — the SECOC receiver rule the
// ablate-fv experiment depends on.
func TestFreshnessCandidateOrder(t *testing.T) {
	f := &Freshness{Bits: 2, Window: 16} // truncation repeats every 4
	var tried []uint64
	f.Reconstruct(3, func(c uint64) bool {
		tried = append(tried, c)
		return false
	})
	want := []uint64{3, 7, 11, 15}
	if len(tried) != len(want) {
		t.Fatalf("tried %v, want %v", tried, want)
	}
	for i := range want {
		if tried[i] != want[i] {
			t.Fatalf("tried %v, want %v", tried, want)
		}
	}
}

func TestFreshnessMask(t *testing.T) {
	for _, tc := range []struct {
		bits int
		want uint64
	}{
		{8, 0xff}, {16, 0xffff}, {64, ^uint64(0)},
	} {
		f := &Freshness{Bits: tc.bits}
		if got := f.Mask(); got != tc.want {
			t.Errorf("Mask(%d bits) = %#x, want %#x", tc.bits, got, tc.want)
		}
	}
}

// TestFreshnessWindowWrapIsEmpty pins the documented wrap rule: when
// last+Window would overflow the counter space the candidate range is
// empty and everything is rejected.
func TestFreshnessWindowWrapIsEmpty(t *testing.T) {
	f := &Freshness{Bits: 8, Window: 64}
	f.last = ^uint64(0) - 3
	if _, ok := f.Reconstruct(0xfe, func(uint64) bool { return true }); ok {
		t.Error("reconstruction succeeded in a wrapped window")
	}
}
