package secchan

// Batched secure-channel fast path. The per-frame experiments (Table I,
// the fig4-6 IVN overhead curves, the MAC ablation's forgery sweeps)
// are millions of Protect/Verify calls; batching amortizes the per-call
// fixed costs — key-state lookup, stats updates, header/tag scratch —
// across N frames and lets suites reach kernels that only pay off in
// bulk (the AES-NI batched CMAC in vcrypto pipelines 8 MAC chains per
// call).
//
// The contract is strict serial equivalence, byte for byte: a suite's
// ProtectBatch must produce exactly the wires, stats, and first-error
// behaviour of calling Protect in a loop, and VerifyBatch exactly the
// verdicts and receiver-state transitions of calling Verify in wire
// order. Batching is therefore invisible in every golden output; the
// differential fuzzers in secchan/suites and the stats-identity tests
// enforce it.

// Verdict is one frame's VerifyBatch outcome: the authenticated payload
// or the error the single-frame Verify would have returned. A batch
// implementation may build Payload in the caller's existing backing
// array (verdicts are caller-owned scratch), so a payload is valid
// until its Verdict slot is reused.
type Verdict struct {
	Payload []byte
	Err     error
}

// BatchSuite is optionally implemented by suites with a native batched
// fast path. Third-party suites that only implement Suite keep working:
// the package-level ProtectBatch/VerifyBatch helpers fall back to a
// frame-at-a-time loop with identical semantics.
type BatchSuite interface {
	Suite
	// ProtectBatch protects payloads in order. dst is optional reusable
	// backing: when len(dst) >= len(payloads), wire i is built in
	// dst[i][:0], so a warmed dst makes the protect path
	// allocation-free. It returns the protected wires (resliced dst
	// elements or fresh buffers) and stops at the first error exactly
	// as a Protect loop would, returning the wires protected so far.
	ProtectBatch(payloads, dst [][]byte) ([][]byte, error)
	// VerifyBatch verifies wires in order, writing one Verdict per
	// frame into verdicts (grown as needed) and returning the used
	// prefix. Frame errors are per-verdict, never batch-fatal, and
	// receiver state advances exactly as a Verify loop would.
	VerifyBatch(wires [][]byte, verdicts []Verdict) []Verdict
}

// ProtectBatch protects payloads through s, taking the suite's native
// batch path when it implements BatchSuite and an equivalent
// frame-at-a-time loop otherwise. See BatchSuite.ProtectBatch for the
// dst and error contract.
func ProtectBatch(s Suite, payloads, dst [][]byte) ([][]byte, error) {
	if bs, ok := s.(BatchSuite); ok {
		return bs.ProtectBatch(payloads, dst)
	}
	out := SizeWires(dst, len(payloads))
	for i, p := range payloads {
		wire, err := s.Protect(p)
		if err != nil {
			return out[:i], err
		}
		out[i] = wire
	}
	return out, nil
}

// VerifyBatch verifies wires through s, taking the suite's native batch
// path when it implements BatchSuite and an equivalent frame-at-a-time
// loop otherwise. See BatchSuite.VerifyBatch for the verdict contract.
func VerifyBatch(s Suite, wires [][]byte, verdicts []Verdict) []Verdict {
	if bs, ok := s.(BatchSuite); ok {
		return bs.VerifyBatch(wires, verdicts)
	}
	verdicts = SizeVerdicts(verdicts, len(wires))
	for i, w := range wires {
		verdicts[i].Payload, verdicts[i].Err = s.Verify(w)
	}
	return verdicts
}

// SizeWires reslices dst to n elements, reallocating only when the
// backing array is too small — the reuse that keeps warmed batch
// protect paths allocation-free.
func SizeWires(dst [][]byte, n int) [][]byte {
	if cap(dst) < n {
		grown := make([][]byte, n)
		copy(grown, dst[:cap(dst)])
		return grown
	}
	return dst[:n]
}

// SizeVerdicts reslices verdicts to n elements, reallocating only when
// the backing array is too small. Existing payload backings survive the
// reslice, so batch verify paths can append into them.
func SizeVerdicts(verdicts []Verdict, n int) []Verdict {
	if cap(verdicts) < n {
		grown := make([]Verdict, n)
		copy(grown, verdicts[:cap(verdicts)])
		return grown
	}
	return verdicts[:n]
}
