package secchan

// Window is a sliding-bitmap anti-replay window in the style of
// RFC 4303 §3.4.3: it tracks the highest sequence number seen and a
// 64-entry bitmap of the sequence numbers at and below it, accepting a
// sequence exactly once as long as it is not more than Size (nor 64)
// below the highest. Sequence zero is never acceptable — every
// protocol on this kernel starts its counter at one, so zero is either
// an uninitialised sender or a crafted packet.
//
// Check and Mark are split so the caller can authenticate between
// them: a forged sequence number must not advance the window, so the
// receive path is Check → verify MAC → Mark, the order RFC 4303
// prescribes.
//
// Sequences are uint64 and never wrap inside the window; protocols
// with 32-bit counters widen before calling in and rekey at counter
// exhaustion, so the top of the uint64 space is unreachable.
type Window struct {
	// Size is the accepted depth below the highest sequence seen.
	// The bitmap caps the effective depth at 64 (the RFC's common
	// choice; its minimum is 32).
	Size uint32

	high   uint64
	bitmap uint64 // bit d set ⇒ high-d already seen (bit 0 = high)
}

// Check reports whether seq would be acceptable: unseen and within the
// window. It does not change any state.
func (w *Window) Check(seq uint64) bool {
	if seq == 0 {
		return false
	}
	if seq > w.high {
		return true
	}
	diff := w.high - seq
	if diff >= uint64(w.Size) || diff >= 64 {
		return false
	}
	return w.bitmap&(1<<diff) == 0
}

// Mark records seq as seen, sliding the window forward when seq is a
// new highest. Call only after Check accepted the sequence and the
// packet authenticated.
func (w *Window) Mark(seq uint64) {
	if seq > w.high {
		shift := seq - w.high
		if shift >= 64 {
			w.bitmap = 0
		} else {
			w.bitmap <<= shift
		}
		w.bitmap |= 1 // bit 0 = the new high itself
		w.high = seq
		return
	}
	w.bitmap |= 1 << (w.high - seq)
}

// High returns the highest sequence number marked so far.
func (w *Window) High() uint64 { return w.high }

// CheckBatch screens a burst of sequence numbers against the current
// window state, writing Check(seqs[i]) into ok[i]. It is the
// word-at-a-time form of calling Check per frame *without interleaved
// Marks*: the window does not advance mid-batch, so two in-window
// duplicates of the same unseen sequence both screen as acceptable —
// batch verify paths that must match serial Check→verify→Mark
// interleaving exactly pair this with AscendingAbove, under which the
// two interleavings coincide. The loop body is branch-free (masked
// shifts and boolean arithmetic, no per-frame state), so the compiler
// can keep the whole window in registers and unroll or vectorize it.
func (w *Window) CheckBatch(seqs []uint64, ok []bool) {
	high, bitmap := w.high, w.bitmap
	depth := uint64(w.Size)
	if depth > 64 {
		depth = 64
	}
	for i, seq := range seqs {
		diff := high - seq // wraps huge for seq > high
		inWin := diff < depth
		unseen := bitmap&(1<<(diff&63)) == 0
		ok[i] = seq != 0 && (seq > high || (inWin && unseen))
	}
}

// MarkBatch records a burst of authenticated sequence numbers, exactly
// equivalent to calling Mark per frame in order but folding the window
// state through registers instead of memory.
func (w *Window) MarkBatch(seqs []uint64) {
	high, bitmap := w.high, w.bitmap
	for _, seq := range seqs {
		if seq > high {
			shift := seq - high
			if shift >= 64 {
				bitmap = 0
			} else {
				bitmap <<= shift
			}
			bitmap |= 1
			high = seq
		} else {
			bitmap |= 1 << (high - seq)
		}
	}
	w.high, w.bitmap = high, bitmap
}

// AscendingAbove reports whether seqs are strictly increasing and all
// above high — the in-order honest-traffic shape. Under it, a batched
// CheckBatch screen followed by per-frame Marks of the authenticated
// frames is byte-equivalent to the serial Check→verify→Mark
// interleaving: marking can only raise the high mark, and every later
// sequence stays strictly above it. The comparison chain is branch-free
// so the scan vectorizes.
func AscendingAbove(high uint64, seqs []uint64) bool {
	prev := high
	good := true
	for _, seq := range seqs {
		good = good && seq > prev
		prev = seq
	}
	return good
}

// Counter is a strictly-increasing freshness counter with an
// acceptance window: sequence seq is acceptable iff
// last < seq ≤ last+Window. Unlike Window it keeps no bitmap — once a
// sequence commits, everything at or below it is stale — which is the
// CANsec (CiA 613-2) freshness rule: tolerate bounded loss ahead,
// never accept reordering behind.
//
// The comparison is computed as seq-last ≤ Window in uint64, so it is
// exact even when last+Window would overflow the sequence space.
type Counter struct {
	// Window is how far above the last accepted sequence a new one
	// may land (tolerates lost frames).
	Window uint64

	last uint64
}

// Accept reports whether seq is fresh: strictly above the last
// committed sequence and within the acceptance window.
func (c *Counter) Accept(seq uint64) bool {
	return seq > c.last && seq-c.last <= c.Window
}

// Commit records seq as the new highest accepted sequence. Call only
// after the frame authenticated.
func (c *Counter) Commit(seq uint64) { c.last = seq }

// Last returns the last committed sequence.
func (c *Counter) Last() uint64 { return c.last }

// LenientAccept is the 802.1AE replay check: with window zero only
// strictly increasing sequences pass; with a window, any non-zero
// sequence above high-window passes — including duplicates, which
// MACsec leaves to the ICV-protected upper layers. Computed entirely
// in uint64 so seq+window cannot wrap for 32-bit packet numbers near
// exhaustion (the overflow bug fixed in package macsec).
func LenientAccept(high, seq, window uint64) bool {
	if window == 0 {
		return seq > high
	}
	return seq+window > high && seq != 0
}
