package secchan

import (
	"fmt"

	"autosec/internal/sim"
)

// Properties are the comparison axes of the paper's Table I: what a
// protocol guarantees per protected message.
type Properties struct {
	Auth   bool // authenticity + integrity
	Conf   bool // confidentiality
	Replay bool // replay protection
}

// YesNo renders the three axes the way Table I prints them.
func (p Properties) YesNo() (auth, conf, replay string) {
	return yn(p.Auth), yn(p.Conf), yn(p.Replay)
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Stats is the per-endpoint-pair accounting every suite keeps: how
// many messages each side processed, how many verifies failed (forgery,
// replay, or malformed input), and the payload-vs-wire byte totals
// behind the overhead ratios the IVN experiments report.
type Stats struct {
	Protected    uint64
	Verified     uint64 // successful verifies
	VerifyFailed uint64

	PayloadBytes int64 // application bytes submitted to Protect
	WireBytes    int64 // protected bytes Protect produced
}

// RecordProtect accounts one successful Protect call.
func (s *Stats) RecordProtect(payloadLen, wireLen int) {
	s.Protected++
	s.PayloadBytes += int64(payloadLen)
	s.WireBytes += int64(wireLen)
}

// RecordVerify accounts one Verify call by outcome.
func (s *Stats) RecordVerify(ok bool) {
	if ok {
		s.Verified++
	} else {
		s.VerifyFailed++
	}
}

// OverheadRatio is wire bytes per payload byte over everything this
// endpoint protected (0 until something was).
func (s *Stats) OverheadRatio() float64 {
	if s.PayloadBytes == 0 {
		return 0
	}
	return float64(s.WireBytes) / float64(s.PayloadBytes)
}

// Suite is one protected channel between a sending and a receiving
// endpoint, viewed generically: bytes in, protected bytes out, and
// back. Each Table I protocol provides an adapter (package
// secchan/suites); the experiment harness compares them without
// knowing any wire format.
//
// Suites are not safe for concurrent use — like the protocol endpoints
// they wrap, each belongs to one simulated task.
type Suite interface {
	// Name is the Table I protocol name, e.g. "SECOC" or "IPsec ESP".
	Name() string
	// Layer is the ISO-OSI layer label as Table I prints it, e.g.
	// "2 data link".
	Layer() string
	// Media names the transmission media the protocol protects.
	Media() string
	// Protect wraps an application payload into its protected wire
	// form, consuming one freshness value / sequence number.
	Protect(payload []byte) ([]byte, error)
	// Verify checks a protected wire message and returns the
	// authenticated payload; replayed, stale, or forged input errors.
	Verify(wire []byte) ([]byte, error)
	// OverheadBytes is the bytes the suite adds to each payload on its
	// lowest protected layer (the measured Table I column).
	OverheadBytes() int
	// Properties reports the Table I guarantee axes.
	Properties() Properties
	// Stats exposes the live per-endpoint accounting.
	Stats() *Stats
}

// Params parameterises suite construction. Key is required; the
// remaining fields have suite-specific defaults.
type Params struct {
	// Key is the 16-byte pre-shared/root key material the suite keys
	// itself from.
	Key []byte
	// RNG is consumed only by suites with a randomised handshake
	// ((D)TLS nonces); pass the experiment's root RNG so draws land in
	// the deterministic stream.
	RNG *sim.RNG
	// MACBits overrides the SECOC MAC truncation (0 = profile
	// default). Ignored by suites with fixed-size tags.
	MACBits int
}

// Entry describes one registered suite: the Table I metadata plus a
// constructor. Entries carry the paper mapping so docs and experiment
// tables render from the registry rather than hand-kept lists.
type Entry struct {
	Name  string
	Layer string
	Media string
	// Paper cites the paper artefact the suite reproduces (Table I
	// row, section reference).
	Paper string
	Props Properties
	New   func(Params) (Suite, error)
}

// Registry is an ordered list of suite entries — paper order, so
// iterating it reproduces Table I's rows. Adding a protocol to the
// comparison means appending one Entry (see secchan/suites).
type Registry []Entry

// Find returns the entry with the given protocol name.
func (r Registry) Find(name string) (Entry, error) {
	for _, e := range r {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("secchan: no suite %q in registry", name)
}

// Names lists the registered protocol names in registry order.
func (r Registry) Names() []string {
	out := make([]string, len(r))
	for i, e := range r {
		out[i] = e.Name
	}
	return out
}
