package secchan

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestCheckBatchMatchesCheck drives random window states and bursts,
// requiring CheckBatch to agree with a serial Check loop (no marks —
// the screening semantics CheckBatch documents).
func TestCheckBatchMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := &Window{Size: uint32(rng.Intn(80))}
		for i := 0; i < rng.Intn(40); i++ {
			w.Mark(uint64(rng.Intn(200)) + 1)
		}
		seqs := make([]uint64, rng.Intn(33))
		for i := range seqs {
			seqs[i] = uint64(rng.Intn(260)) // includes 0 and out-of-window
		}
		ok := make([]bool, len(seqs))
		w.CheckBatch(seqs, ok)
		for i, seq := range seqs {
			if want := w.Check(seq); ok[i] != want {
				t.Fatalf("trial %d: seq %d: batch %v, serial %v (high %d)", trial, seq, ok[i], want, w.High())
			}
		}
	}
}

// TestMarkBatchMatchesMark folds random bursts through MarkBatch and a
// serial Mark loop on a twin window, comparing the full state via
// subsequent Checks.
func TestMarkBatchMatchesMark(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a := &Window{Size: 64}
		b := &Window{Size: 64}
		seqs := make([]uint64, 1+rng.Intn(32))
		for i := range seqs {
			seqs[i] = uint64(rng.Intn(300)) + 1
		}
		a.MarkBatch(seqs)
		for _, s := range seqs {
			b.Mark(s)
		}
		if a.High() != b.High() {
			t.Fatalf("trial %d: high %d vs %d", trial, a.High(), b.High())
		}
		for probe := uint64(1); probe <= 310; probe++ {
			if a.Check(probe) != b.Check(probe) {
				t.Fatalf("trial %d: probe %d diverges after %v", trial, probe, seqs)
			}
		}
	}
}

func TestAscendingAbove(t *testing.T) {
	cases := []struct {
		high uint64
		seqs []uint64
		want bool
	}{
		{0, nil, true},
		{0, []uint64{1, 2, 3}, true},
		{5, []uint64{6, 7, 9}, true},
		{5, []uint64{5, 6}, false}, // not above high
		{5, []uint64{7, 7}, false}, // duplicate
		{5, []uint64{8, 6}, false}, // reordered
		{5, []uint64{6, 0}, false}, // zero after
		{^uint64(0), []uint64{1}, false},
	}
	for _, c := range cases {
		if got := AscendingAbove(c.high, c.seqs); got != c.want {
			t.Errorf("AscendingAbove(%d, %v) = %v, want %v", c.high, c.seqs, got, c.want)
		}
	}
}

// TestFirstCandidateAfterMatchesIterator compares the O(1) predictor
// against the scanning iterator across bit widths, windows, and last
// values, including the window edges.
func TestFirstCandidateAfterMatchesIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		bits := 1 + rng.Intn(16)
		f := &Freshness{Bits: bits, Window: uint64(rng.Intn(300))}
		f.last = uint64(rng.Intn(1 << 18))
		trunc := uint64(rng.Intn(1 << bits))

		it := f.Candidates(trunc)
		wantV, wantOK := uint64(0), it.Next()
		if wantOK {
			wantV = it.Value()
		}
		gotV, gotOK := f.FirstCandidateAfter(f.last, trunc)
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("bits=%d window=%d last=%d trunc=%d: predictor (%d,%v), iterator (%d,%v)",
				bits, f.Window, f.last, trunc, gotV, gotOK, wantV, wantOK)
		}
	}
	// 64-bit truncation sends the full counter on the wire.
	f := &Freshness{Bits: 64, Window: 10}
	f.last = 100
	if v, ok := f.FirstCandidateAfter(100, 105); !ok || v != 105 {
		t.Fatalf("full-width candidate: got %d,%v", v, ok)
	}
	if _, ok := f.FirstCandidateAfter(100, 90); ok {
		t.Fatal("stale full-width counter must have no candidate")
	}
	if _, ok := f.FirstCandidateAfter(100, 200); ok {
		t.Fatal("out-of-window full-width counter must have no candidate")
	}
}

// loopSuite is a minimal third-party Suite (no BatchSuite) used to
// exercise the generic adapters.
type loopSuite struct {
	stats   Stats
	counter uint64
	failAt  uint64 // Protect fails when counter reaches this
}

func (l *loopSuite) Name() string           { return "loop" }
func (l *loopSuite) Layer() string          { return "7 application" }
func (l *loopSuite) Media() string          { return "test" }
func (l *loopSuite) OverheadBytes() int     { return 1 }
func (l *loopSuite) Properties() Properties { return Properties{Auth: true} }
func (l *loopSuite) Stats() *Stats          { return &l.stats }

func (l *loopSuite) Protect(payload []byte) ([]byte, error) {
	l.counter++
	if l.failAt != 0 && l.counter >= l.failAt {
		return nil, errors.New("loop: exhausted")
	}
	wire := append(append([]byte(nil), payload...), byte(l.counter))
	l.stats.RecordProtect(len(payload), len(wire))
	return wire, nil
}

func (l *loopSuite) Verify(wire []byte) ([]byte, error) {
	if len(wire) == 0 || wire[len(wire)-1] == 0 {
		l.stats.RecordVerify(false)
		return nil, errors.New("loop: bad frame")
	}
	l.stats.RecordVerify(true)
	return wire[:len(wire)-1], nil
}

// TestGenericBatchAdapters checks the frame-at-a-time fallback: wires
// and verdicts equal the serial loop, and a mid-batch Protect error
// stops the batch with the already-protected prefix.
func TestGenericBatchAdapters(t *testing.T) {
	payloads := [][]byte{{1}, {2}, {3}, {4}}

	s := &loopSuite{}
	wires, err := ProtectBatch(s, payloads, nil)
	if err != nil || len(wires) != 4 {
		t.Fatalf("ProtectBatch: %v (%d wires)", err, len(wires))
	}
	ref := &loopSuite{}
	for i, p := range payloads {
		want, _ := ref.Protect(p)
		if fmt.Sprint(want) != fmt.Sprint(wires[i]) {
			t.Fatalf("wire %d: batch %v, serial %v", i, wires[i], want)
		}
	}

	bad := append([][]byte{}, wires...)
	bad[2] = []byte{9, 0} // trailing zero fails Verify
	verdicts := VerifyBatch(s, bad, nil)
	if len(verdicts) != 4 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for i, v := range verdicts {
		if (v.Err == nil) != (i != 2) {
			t.Fatalf("verdict %d: err=%v", i, v.Err)
		}
	}
	if s.stats.Verified != 3 || s.stats.VerifyFailed != 1 {
		t.Fatalf("stats: %+v", s.stats)
	}

	failing := &loopSuite{failAt: 3}
	wires, err = ProtectBatch(failing, payloads, nil)
	if err == nil {
		t.Fatal("want mid-batch protect error")
	}
	if len(wires) != 2 {
		t.Fatalf("want 2 protected frames before the error, got %d", len(wires))
	}
	if failing.stats.Protected != 2 {
		t.Fatalf("stats counted %d protects", failing.stats.Protected)
	}
}
