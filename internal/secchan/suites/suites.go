// Package suites adapts each in-vehicle security protocol onto the
// secchan.Suite interface and registers them in the order of the
// paper's Table I rows. The experiment harness (RunTable1, the MAC
// ablation, the IVN scaling model) iterates the registry instead of
// hand-wiring protocol packages: adding a protocol to every comparison
// means appending one Entry here.
//
// Each suite bundles one protecting endpoint and one verifying
// endpoint of its protocol into a loopback channel, so Protect→Verify
// round-trips exercise the real wire format, replay discipline, and
// key schedule of the underlying package — nothing is re-implemented
// at this layer.
package suites

import (
	"fmt"

	"autosec/internal/canbus"
	"autosec/internal/cansec"
	"autosec/internal/ethernet"
	"autosec/internal/ext"
	"autosec/internal/ipsec"
	"autosec/internal/macsec"
	"autosec/internal/secchan"
	"autosec/internal/secoc"
	"autosec/internal/tlslite"
)

// Capability flags the suite kind uses on top of ext.CapCore.
const (
	// CapTable1 marks a paper Table I row; Registry() is exactly the
	// table1-capped entries in rank order.
	CapTable1 = "table1"
	// CapBatch marks a suite whose constructor yields a
	// secchan.BatchSuite, so the campaign fast path can amortise MAC
	// setup across a whole frame batch.
	CapBatch = "batch"
)

// Suites is the extension registry of channel suites (ext kind
// "suite"). Built-ins register below at init; drop-in suites register
// themselves from their own file (see internal/ext/demo) and become
// addressable from scenario.ini, the CLI, and the daemon by name —
// without entering Table I or the corpus generator's vocabulary.
var Suites = ext.NewRegistry[secchan.Entry]("suite")

func init() {
	reg := func(rank int, e secchan.Entry, desc string, ctor func(secchan.Params) (secchan.Suite, error), caps ...string) {
		e.New = ctor
		Suites.Register(ext.Meta{Name: e.Name, Description: desc, Paper: e.Paper, Caps: caps, Rank: rank}, e)
	}
	reg(1, secocMeta, "AUTOSAR SecOC: truncated-MAC + freshness at the application layer",
		newSECOC, ext.CapCore, CapTable1, CapBatch)
	reg(2, tlsMeta, "(D)TLS-style transport records with AEAD and handshake key schedule",
		newTLS, ext.CapCore, CapTable1, CapBatch)
	reg(3, ipsecMeta, "IPsec ESP tunnel: encrypt-then-MAC with an anti-replay window",
		newIPsec, ext.CapCore, CapTable1, CapBatch)
	reg(4, macsecMeta, "IEEE 802.1AE MACsec SecY in confidential mode (SecTAG + ICV)",
		newMACsec, ext.CapCore, CapTable1, CapBatch)
	reg(5, cansecMeta, "CiA 613-2 CANsec zones on CAN XL with authenticated encryption",
		newCANsec, ext.CapCore, CapTable1, CapBatch)
	integ := macsecMeta
	integ.Name = "MACsec-integ"
	integ.Paper = "Table I row 4 variant; 802.1AE integrity-only mode (E=0)"
	integ.Props.Conf = false
	reg(6, integ, "802.1AE MACsec integrity-only variant (authenticated, plaintext payload)",
		NewMACsecIntegrityOnly, ext.CapCore, CapBatch)
}

// Registry returns the Table I suites in paper row order: SECOC,
// (D)TLS, IPsec ESP, MACsec, CANsec — the table1-capped slice of the
// extension registry, which keeps this canonical list stable no matter
// what drop-in suites a binary links in. Constructors that randomise a
// handshake consume Params.RNG in this order, so iterating the
// registry preserves the deterministic draw stream of the experiments.
func Registry() secchan.Registry {
	names := Suites.NamesWith(CapTable1)
	out := make(secchan.Registry, 0, len(names))
	for _, n := range names {
		e, _, _ := Suites.Get(n)
		out = append(out, e)
	}
	return out
}

// Lookup resolves any registered suite — Table I row, built-in
// variant, or drop-in — by name, with did-you-mean on a miss.
func Lookup(name string) (secchan.Entry, error) {
	return Suites.Lookup(name)
}

// base carries the Table I metadata and accounting shared by every
// adapter; each suite embeds it and adds Protect/Verify.
type base struct {
	name, layer, media string
	props              secchan.Properties
	overhead           int
	stats              secchan.Stats
}

func (b *base) Name() string                   { return b.name }
func (b *base) Layer() string                  { return b.layer }
func (b *base) Media() string                  { return b.media }
func (b *base) OverheadBytes() int             { return b.overhead }
func (b *base) Properties() secchan.Properties { return b.props }
func (b *base) Stats() *secchan.Stats          { return &b.stats }

func baseFrom(e secchan.Entry, overhead int) base {
	return base{name: e.Name, layer: e.Layer, media: e.Media, props: e.Props, overhead: overhead}
}

// --- SECOC (application layer, Table I row 1) ---

var secocMeta = secchan.Entry{
	Name:  "SECOC",
	Layer: "7 application",
	Media: "CAN + Ethernet",
	Paper: "Table I row 1; scenario S1 of §III (AUTOSAR SECOC [18])",
	Props: secchan.Properties{Auth: true, Conf: false, Replay: true},
}

type secocSuite struct {
	base
	send *secoc.Sender
	recv *secoc.Receiver
}

func newSECOC(p secchan.Params) (secchan.Suite, error) {
	cfg := secoc.DefaultConfig(1)
	if p.MACBits != 0 {
		cfg.MACBits = p.MACBits
	}
	send, err := secoc.NewSender(cfg, p.Key)
	if err != nil {
		return nil, err
	}
	recv, err := secoc.NewReceiver(cfg, p.Key)
	if err != nil {
		return nil, err
	}
	return &secocSuite{base: baseFrom(secocMeta, cfg.Overhead()), send: send, recv: recv}, nil
}

func (s *secocSuite) Protect(payload []byte) ([]byte, error) {
	wire, err := s.send.Protect(payload)
	if err != nil {
		return nil, err
	}
	s.stats.RecordProtect(len(payload), len(wire))
	return wire, nil
}

func (s *secocSuite) Verify(wire []byte) ([]byte, error) {
	pt, err := s.recv.Verify(wire)
	s.stats.RecordVerify(err == nil)
	return pt, err
}

// --- (D)TLS (transport layer, Table I row 2) ---

var tlsMeta = secchan.Entry{
	Name:  "(D)TLS",
	Layer: "4 transport",
	Media: "Ethernet/IP",
	Paper: "Table I row 2; §III transport alternative (DTLS-style records)",
	Props: secchan.Properties{Auth: true, Conf: true, Replay: true},
}

type tlsSuite struct {
	base
	client *tlslite.Session
	server *tlslite.Session
}

func newTLS(p secchan.Params) (secchan.Suite, error) {
	if p.RNG == nil {
		return nil, fmt.Errorf("suites: (D)TLS needs Params.RNG for handshake nonces")
	}
	client, server, err := tlslite.Handshake(p.Key, p.Key, p.RNG)
	if err != nil {
		return nil, err
	}
	return &tlsSuite{base: baseFrom(tlsMeta, tlslite.RecordOverhead), client: client, server: server}, nil
}

func (s *tlsSuite) Protect(payload []byte) ([]byte, error) {
	wire, err := s.client.Seal(payload)
	if err != nil {
		return nil, err
	}
	s.stats.RecordProtect(len(payload), len(wire))
	return wire, nil
}

func (s *tlsSuite) Verify(wire []byte) ([]byte, error) {
	pt, err := s.server.Open(wire)
	s.stats.RecordVerify(err == nil)
	return pt, err
}

// --- IPsec ESP (network layer, Table I row 3) ---

var ipsecMeta = secchan.Entry{
	Name:  "IPsec ESP",
	Layer: "3 network",
	Media: "Ethernet/IP",
	Paper: "Table I row 3; §III network alternative (ESP tunnel, RFC 4303 shape)",
	Props: secchan.Properties{Auth: true, Conf: true, Replay: true},
}

type ipsecSuite struct {
	base
	send *ipsec.SA
	recv *ipsec.SA
}

func newIPsec(p secchan.Params) (secchan.Suite, error) {
	send, err := ipsec.NewSA(1, p.Key)
	if err != nil {
		return nil, err
	}
	recv, err := ipsec.NewSA(1, p.Key)
	if err != nil {
		return nil, err
	}
	return &ipsecSuite{base: baseFrom(ipsecMeta, ipsec.Overhead), send: send, recv: recv}, nil
}

func (s *ipsecSuite) Protect(payload []byte) ([]byte, error) {
	wire, err := s.send.Encapsulate(payload)
	if err != nil {
		return nil, err
	}
	s.stats.RecordProtect(len(payload), len(wire))
	return wire, nil
}

func (s *ipsecSuite) Verify(wire []byte) ([]byte, error) {
	pt, err := s.recv.Decapsulate(wire)
	s.stats.RecordVerify(err == nil)
	return pt, err
}

// --- MACsec (data link on Ethernet, Table I row 4) ---

var macsecMeta = secchan.Entry{
	Name:  "MACsec",
	Layer: "2 data link",
	Media: "Ethernet",
	Paper: "Table I row 4; scenarios S2/S3 of §III (IEEE 802.1AE [20])",
	Props: secchan.Properties{Auth: true, Conf: true, Replay: true},
}

// Fixed station addresses for the loopback channel; overheads and
// replay behaviour do not depend on them.
var (
	macsecSrcMAC = ethernet.MAC{0x02, 0, 0, 0, 0, 0x01}
	macsecDstMAC = ethernet.MAC{0x02, 0, 0, 0, 0, 0x02}
)

type macsecSuite struct {
	base
	tx *macsec.SecY
	rx *macsec.SecY
}

func newMACsec(p secchan.Params) (secchan.Suite, error) {
	return newMACsecMode(macsec.Confidential, macsecMeta, p)
}

// NewMACsecIntegrityOnly builds the 802.1AE integrity-only variant
// (E=0: authenticated, plaintext payload). It is not a Table I row —
// the table's MACsec entry is the confidential mode — but the
// benchmark suite measures both.
func NewMACsecIntegrityOnly(p secchan.Params) (secchan.Suite, error) {
	e := macsecMeta
	e.Name = "MACsec-integ"
	e.Props.Conf = false
	return newMACsecMode(macsec.IntegrityOnly, e, p)
}

func newMACsecMode(mode macsec.Mode, e secchan.Entry, p secchan.Params) (secchan.Suite, error) {
	sciTx := macsec.SCIFromMAC(macsecSrcMAC, 1)
	tx, err := macsec.NewSecY(mode, sciTx, p.Key, 0)
	if err != nil {
		return nil, err
	}
	rx, err := macsec.NewSecY(mode, macsec.SCIFromMAC(macsecDstMAC, 1), p.Key, 0)
	if err != nil {
		return nil, err
	}
	if err := rx.AddPeer(sciTx, p.Key, 0); err != nil {
		return nil, err
	}
	// SecTAG plus ICV plus the 2-byte inner EtherType the encapsulation
	// moves into the protected body.
	return &macsecSuite{base: baseFrom(e, macsec.Overhead+2), tx: tx, rx: rx}, nil
}

func (s *macsecSuite) Protect(payload []byte) ([]byte, error) {
	f := &ethernet.Frame{Dst: macsecDstMAC, Src: macsecSrcMAC, EtherType: ethernet.EtherTypeApp, Payload: payload}
	sec, err := s.tx.Protect(f)
	if err != nil {
		return nil, err
	}
	s.stats.RecordProtect(len(payload), len(sec.Payload))
	return sec.Payload, nil
}

func (s *macsecSuite) Verify(wire []byte) ([]byte, error) {
	f := &ethernet.Frame{Dst: macsecDstMAC, Src: macsecSrcMAC, EtherType: ethernet.EtherTypeMACsec, Payload: wire}
	inner, err := s.rx.Verify(f)
	s.stats.RecordVerify(err == nil)
	if err != nil {
		return nil, err
	}
	return inner.Payload, nil
}

// --- CANsec (data link on CAN XL, Table I row 5) ---

var cansecMeta = secchan.Entry{
	Name:  "CANsec",
	Layer: "2 data link",
	Media: "CAN XL",
	Paper: "Table I row 5; §III CAN XL zones (CiA 613-2 [19])",
	Props: secchan.Properties{Auth: true, Conf: true, Replay: true},
}

type cansecSuite struct {
	base
	send *cansec.Endpoint
	recv *cansec.Endpoint
}

func newCANsec(p secchan.Params) (secchan.Suite, error) {
	zone, err := cansec.NewZone(1, cansec.AuthEncrypt, p.Key)
	if err != nil {
		return nil, err
	}
	return &cansecSuite{
		base: baseFrom(cansecMeta, cansec.Overhead),
		send: cansec.NewEndpoint(zone, 1),
		recv: cansec.NewEndpoint(zone, 2),
	}, nil
}

func (s *cansecSuite) Protect(payload []byte) ([]byte, error) {
	f, err := s.send.Protect(0x100, payload)
	if err != nil {
		return nil, err
	}
	s.stats.RecordProtect(len(payload), len(f.Payload))
	return f.Payload, nil
}

func (s *cansecSuite) Verify(wire []byte) ([]byte, error) {
	f := &canbus.Frame{ID: 0x100, Format: canbus.XL, SDUType: canbus.SDUCANsec, Payload: wire}
	pt, err := s.recv.Verify(f)
	s.stats.RecordVerify(err == nil)
	return pt, err
}
