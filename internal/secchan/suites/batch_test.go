package suites

import (
	"bytes"
	"testing"

	"autosec/internal/secchan"
	"autosec/internal/sim"
)

// batchEntries returns every suite with a native batch path, including
// the integrity-only MACsec variant that is not a registry row.
func batchEntries() []secchan.Entry {
	entries := append(secchan.Registry{}, Registry()...)
	integ := macsecMeta
	integ.Name = "MACsec-integ"
	integ.Props.Conf = false
	integ.New = NewMACsecIntegrityOnly
	return append(entries, integ)
}

// newTwin builds two identically-keyed instances of a suite: one driven
// through the batch APIs, one through the single-frame APIs, so tests
// can require byte- and stats-identical behaviour.
func newTwin(t *testing.T, e secchan.Entry) (batch, serial secchan.Suite) {
	t.Helper()
	b, err := e.New(secchan.Params{Key: testKey, RNG: sim.NewRNG(7)})
	if err != nil {
		t.Fatalf("%s: New: %v", e.Name, err)
	}
	s, err := e.New(secchan.Params{Key: testKey, RNG: sim.NewRNG(7)})
	if err != nil {
		t.Fatalf("%s: New: %v", e.Name, err)
	}
	return b, s
}

// TestBatchMatchesSingleFrame drives every native batch suite and its
// single-frame twin through the same traffic — honest frames, a
// corrupted frame, a truncated frame, and a replayed frame mid-batch —
// and requires identical wires, per-frame verdicts, payloads, and
// Stats. This is the serial-equivalence contract of secchan/batch.go,
// including the error frames.
func TestBatchMatchesSingleFrame(t *testing.T) {
	for _, e := range batchEntries() {
		t.Run(e.Name, func(t *testing.T) {
			bs, ss := newTwin(t, e)

			payloads := [][]byte{
				{1, 2, 3, 4}, {}, {5}, bytes.Repeat([]byte{0xA5}, 64),
				{9, 8, 7}, bytes.Repeat([]byte{0x11}, 200),
			}
			wires, err := secchan.ProtectBatch(bs, payloads, nil)
			if err != nil {
				t.Fatalf("ProtectBatch: %v", err)
			}
			serialWires := make([][]byte, len(payloads))
			for i, p := range payloads {
				serialWires[i], err = ss.Protect(p)
				if err != nil {
					t.Fatalf("Protect #%d: %v", i, err)
				}
				if !bytes.Equal(wires[i], serialWires[i]) {
					t.Fatalf("wire %d: batch %x, serial %x", i, wires[i], serialWires[i])
				}
			}

			// Mixed delivery: in-order frames with a corrupted MAC, a
			// truncated frame, and a replay in the middle.
			corrupt := append([]byte(nil), wires[1]...)
			corrupt[len(corrupt)-1] ^= 0xFF
			delivery := [][]byte{
				wires[0], corrupt, wires[1], wires[0], // wires[0] again = replay
				wires[2][:1], wires[3], wires[4], wires[5],
			}
			verdicts := secchan.VerifyBatch(bs, delivery, nil)
			if len(verdicts) != len(delivery) {
				t.Fatalf("got %d verdicts for %d wires", len(verdicts), len(delivery))
			}
			for i, w := range delivery {
				pt, serr := ss.Verify(w)
				if gotOK, wantOK := verdicts[i].Err == nil, serr == nil; gotOK != wantOK {
					t.Fatalf("frame %d: batch err=%v, serial err=%v", i, verdicts[i].Err, serr)
				}
				if serr == nil && !bytes.Equal(verdicts[i].Payload, pt) {
					t.Fatalf("frame %d payload: batch %x, serial %x", i, verdicts[i].Payload, pt)
				}
			}
			if *bs.Stats() != *ss.Stats() {
				t.Fatalf("stats diverge:\nbatch  %+v\nserial %+v", *bs.Stats(), *ss.Stats())
			}

			// Warmed-buffer second round must stay byte-identical.
			wires2, err := secchan.ProtectBatch(bs, payloads, wires)
			if err != nil {
				t.Fatalf("warmed ProtectBatch: %v", err)
			}
			for i, p := range payloads {
				want, err := ss.Protect(p)
				if err != nil {
					t.Fatalf("Protect round 2 #%d: %v", i, err)
				}
				if !bytes.Equal(wires2[i], want) {
					t.Fatalf("warmed wire %d: batch %x, serial %x", i, wires2[i], want)
				}
			}
			if *bs.Stats() != *ss.Stats() {
				t.Fatalf("stats diverge after warmed round:\nbatch  %+v\nserial %+v", *bs.Stats(), *ss.Stats())
			}
		})
	}
}

// TestProtectBatchZeroAlloc pins the batch protect path's steady-state
// allocation behaviour: once the suite scratch and the caller's wire
// buffers have grown to size, protecting a burst must not allocate at
// all, for every native batch suite.
func TestProtectBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under the race detector, so the nonce pool allocates")
	}
	for _, e := range batchEntries() {
		t.Run(e.Name, func(t *testing.T) {
			s, err := e.New(secchan.Params{Key: testKey, RNG: sim.NewRNG(7)})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			payloads := make([][]byte, 64)
			for i := range payloads {
				payloads[i] = bytes.Repeat([]byte{byte(i)}, 64)
			}
			var wires [][]byte
			wires, err = secchan.ProtectBatch(s, payloads, wires)
			if err != nil {
				t.Fatalf("warmup ProtectBatch: %v", err)
			}
			avg := testing.AllocsPerRun(50, func() {
				wires, err = secchan.ProtectBatch(s, payloads, wires)
			})
			if err != nil {
				t.Fatalf("ProtectBatch: %v", err)
			}
			if avg != 0 {
				t.Fatalf("warmed ProtectBatch allocates %.2f times per burst, want 0", avg)
			}
		})
	}
}

// FuzzBatchVerifyEquivalence differentially fuzzes every suite's native
// batch path against its single-frame twin: the fuzzer picks a delivery
// schedule over protected frames — reorderings, duplicates, corruptions
// — and an arbitrary batch segmentation, and the batched verdicts,
// payloads, and Stats must equal the serial loop's. Wired into the CI
// fuzz-smoke job.
func FuzzBatchVerifyEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Add([]byte{5, 3, 4, 1, 2})
	f.Add([]byte{0x80, 1, 0x82, 3, 4})  // corruptions mixed in
	f.Add([]byte{0, 90, 1, 91, 2, 255}) // window jumps
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, e := range batchEntries() {
			bs, ss := newTwin(t, e)
			const maxSeq = 96
			payloads := make([][]byte, maxSeq)
			for i := range payloads {
				payloads[i] = []byte{byte(i), byte(i >> 8)}
			}
			wires, err := secchan.ProtectBatch(bs, payloads, nil)
			if err != nil {
				t.Fatalf("%s: ProtectBatch: %v", e.Name, err)
			}
			for i, p := range payloads {
				want, err := ss.Protect(p)
				if err != nil {
					t.Fatalf("%s: Protect #%d: %v", e.Name, i, err)
				}
				if !bytes.Equal(wires[i], want) {
					t.Fatalf("%s: wire %d: batch %x, serial %x", e.Name, i, wires[i], want)
				}
			}

			// Decode deliveries: low bits pick the frame, the high bit
			// corrupts a copy of it.
			delivery := make([][]byte, 0, len(data))
			for _, b := range data {
				w := wires[int(b&0x7F)%maxSeq]
				if b&0x80 != 0 {
					c := append([]byte(nil), w...)
					c[len(c)-1] ^= 0x55
					w = c
				}
				delivery = append(delivery, w)
			}
			// Arbitrary batch segmentation, sizes cycling with the data.
			var verdicts []secchan.Verdict
			for start, k := 0, 0; start < len(delivery); k++ {
				size := 1 + (int(data[k%len(data)])+k)%7
				endAt := start + size
				if endAt > len(delivery) {
					endAt = len(delivery)
				}
				chunk := delivery[start:endAt]
				verdicts = secchan.VerifyBatch(bs, chunk, verdicts)
				for i, w := range chunk {
					pt, serr := ss.Verify(w)
					if gotOK, wantOK := verdicts[i].Err == nil, serr == nil; gotOK != wantOK {
						t.Fatalf("%s: frame %d: batch err=%v, serial err=%v",
							e.Name, start+i, verdicts[i].Err, serr)
					}
					if serr == nil && !bytes.Equal(verdicts[i].Payload, pt) {
						t.Fatalf("%s: frame %d payload mismatch", e.Name, start+i)
					}
				}
				start = endAt
			}
			if *bs.Stats() != *ss.Stats() {
				t.Fatalf("%s: stats diverge:\nbatch  %+v\nserial %+v", e.Name, *bs.Stats(), *ss.Stats())
			}
		}
	})
}
