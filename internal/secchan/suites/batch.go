package suites

import (
	"autosec/internal/ethernet"
	"autosec/internal/secchan"
)

// Native batch fast paths: every registry suite implements
// secchan.BatchSuite by delegating to its protocol's batched endpoints
// and then replaying the exact per-frame stats updates the single-frame
// adapters perform — so batched runs leave Stats, state, and wires
// byte-identical to frame-at-a-time runs (the contract secchan/batch.go
// documents and the differential fuzzers enforce).
var (
	_ secchan.BatchSuite = (*secocSuite)(nil)
	_ secchan.BatchSuite = (*tlsSuite)(nil)
	_ secchan.BatchSuite = (*ipsecSuite)(nil)
	_ secchan.BatchSuite = (*macsecSuite)(nil)
	_ secchan.BatchSuite = (*cansecSuite)(nil)
)

// recordProtects replays the per-frame protect accounting for the
// successfully protected prefix.
func recordProtects(st *secchan.Stats, payloads, wires [][]byte) {
	for i, w := range wires {
		st.RecordProtect(len(payloads[i]), len(w))
	}
}

// recordVerifies replays the per-frame verify accounting.
func recordVerifies(st *secchan.Stats, verdicts []secchan.Verdict) {
	for i := range verdicts {
		st.RecordVerify(verdicts[i].Err == nil)
	}
}

func (s *secocSuite) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	wires, err := s.send.ProtectBatch(payloads, dst)
	recordProtects(&s.stats, payloads, wires)
	return wires, err
}

func (s *secocSuite) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = s.recv.VerifyBatch(wires, verdicts)
	recordVerifies(&s.stats, verdicts)
	return verdicts
}

func (s *tlsSuite) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	wires, err := s.client.SealBatch(payloads, dst)
	recordProtects(&s.stats, payloads, wires)
	return wires, err
}

func (s *tlsSuite) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = s.server.OpenBatch(wires, verdicts)
	recordVerifies(&s.stats, verdicts)
	return verdicts
}

func (s *ipsecSuite) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	wires, err := s.send.EncapsulateBatch(payloads, dst)
	recordProtects(&s.stats, payloads, wires)
	return wires, err
}

func (s *ipsecSuite) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = s.recv.DecapsulateBatch(wires, verdicts)
	recordVerifies(&s.stats, verdicts)
	return verdicts
}

func (s *macsecSuite) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	out := secchan.SizeWires(dst, len(payloads))
	f := ethernet.Frame{Dst: macsecDstMAC, Src: macsecSrcMAC, EtherType: ethernet.EtherTypeApp}
	for i, p := range payloads {
		f.Payload = p
		w, err := s.tx.ProtectPayload(out[i], &f)
		if err != nil {
			return out[:i], err
		}
		out[i] = w
		s.stats.RecordProtect(len(p), len(w))
	}
	return out, nil
}

func (s *macsecSuite) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = secchan.SizeVerdicts(verdicts, len(wires))
	for i, w := range wires {
		pt, err := s.rx.VerifyPayload(verdicts[i].Payload[:0], macsecDstMAC, macsecSrcMAC, w)
		if err != nil {
			pt = nil
		}
		verdicts[i].Payload, verdicts[i].Err = pt, err
		s.stats.RecordVerify(err == nil)
	}
	return verdicts
}

func (s *cansecSuite) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	wires, err := s.send.ProtectBatch(0x100, payloads, dst)
	recordProtects(&s.stats, payloads, wires)
	return wires, err
}

func (s *cansecSuite) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = s.recv.VerifyBatch(wires, verdicts)
	recordVerifies(&s.stats, verdicts)
	return verdicts
}
