//go:build race

package suites

// raceEnabled reports whether the race detector is active; see
// TestProtectBatchZeroAlloc.
const raceEnabled = true
