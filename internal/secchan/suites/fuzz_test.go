package suites

import (
	"testing"

	"autosec/internal/secchan"
	"autosec/internal/sim"
)

// Differential fuzzing of every suite against a naive model of its
// replay discipline: the fuzzer picks an arbitrary delivery schedule
// (reorderings, duplicates, window-boundary jumps) over genuinely
// protected messages, and each delivery's accept/reject through the
// full suite — wire parsing, crypto, and the secchan kernel — must
// match the model's prediction. The models are deliberately naive
// restatements of each protocol's pre-kernel acceptance rule, not
// calls back into secchan.
//
// Counter-wrap behaviour (sequence numbers near 2^32/2^64) cannot be
// reached by protecting messages one at a time; it is covered
// differentially at the kernel layer (package secchan's reference
// fuzz tests, which replay the same streams with a wrapping decoder)
// and white-box in package macsec's PN-wrap tests.

// deliverySchedule decodes fuzz data into 1-based sequence numbers in
// [1, maxSeq], one delivery per input byte (two bytes when maxSeq
// needs them).
func deliverySchedule(data []byte, maxSeq int) []int {
	var seqs []int
	if maxSeq <= 256 {
		for _, b := range data {
			seqs = append(seqs, 1+int(b)%maxSeq)
		}
		return seqs
	}
	for i := 0; i+1 < len(data); i += 2 {
		v := int(data[i])<<8 | int(data[i+1])
		seqs = append(seqs, 1+v%maxSeq)
	}
	return seqs
}

// runDifferential protects maxSeq messages through the suite, then
// delivers them in the fuzz-chosen order, comparing each verify
// outcome with the reference acceptor. ref must return whether seq is
// acceptable and commit its own state when it is.
func runDifferential(t *testing.T, data []byte, e secchan.Entry, maxSeq int, ref func(seq int) bool) {
	t.Helper()
	s, err := e.New(secchan.Params{Key: testKey, RNG: sim.NewRNG(7)})
	if err != nil {
		t.Fatalf("%s: New: %v", e.Name, err)
	}
	wires := make([][]byte, maxSeq+1)
	for seq := 1; seq <= maxSeq; seq++ {
		wires[seq], err = s.Protect([]byte{byte(seq), byte(seq >> 8)})
		if err != nil {
			t.Fatalf("%s: Protect #%d: %v", e.Name, seq, err)
		}
	}
	for i, seq := range deliverySchedule(data, maxSeq) {
		_, err := s.Verify(wires[seq])
		got := err == nil
		if want := ref(seq); got != want {
			t.Fatalf("%s: delivery %d of seq %d: suite accepted=%v, reference %v (err: %v)",
				e.Name, i, seq, got, want, err)
		}
	}
}

// bitmapRef is the naive RFC 4303-style sliding window both tlslite
// and ipsec used before the kernel refactor.
type bitmapRef struct {
	size   int
	high   int
	bitmap uint64
}

func (r *bitmapRef) accept(seq int) bool {
	if seq == 0 {
		return false
	}
	if seq > r.high {
		shift := seq - r.high
		if shift >= 64 {
			r.bitmap = 0
		} else {
			r.bitmap <<= shift
		}
		r.bitmap |= 1
		r.high = seq
		return true
	}
	diff := r.high - seq
	if diff >= r.size || diff >= 64 || r.bitmap&(1<<diff) != 0 {
		return false
	}
	r.bitmap |= 1 << diff
	return true
}

// counterRef is the strict-increasing accept-window rule of SECOC
// freshness and CANsec: no reordering behind, bounded loss ahead.
type counterRef struct {
	window int
	last   int
}

func (r *counterRef) accept(seq int) bool {
	if seq <= r.last || seq > r.last+r.window {
		return false
	}
	r.last = seq
	return true
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})         // in order
	f.Add([]byte{0, 0, 1, 1, 2, 2})         // duplicates
	f.Add([]byte{5, 3, 4, 1, 2})            // reordered
	f.Add([]byte{0, 90, 1, 91, 2})          // window-boundary jumps
	f.Add([]byte{95, 0, 95, 0})             // stale after far-future
	f.Add([]byte{0, 4, 1, 4, 2, 4, 8, 255}) // mixed
}

func FuzzSECOCSuiteVsReference(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Registry().Find("SECOC")
		if err != nil {
			t.Fatal(err)
		}
		// SECOC: accept window 64 above the counter. A genuine PDU's
		// MAC only matches its true freshness value, so candidate
		// reconstruction succeeds exactly when that value is in-window.
		ref := &counterRef{window: 64}
		runDifferential(t, data, e, 96, ref.accept)
	})
}

func FuzzTLSSuiteVsReference(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Registry().Find("(D)TLS")
		if err != nil {
			t.Fatal(err)
		}
		ref := &bitmapRef{size: 64}
		runDifferential(t, data, e, 96, ref.accept)
	})
}

func FuzzIPsecSuiteVsReference(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Registry().Find("IPsec ESP")
		if err != nil {
			t.Fatal(err)
		}
		ref := &bitmapRef{size: 64}
		runDifferential(t, data, e, 96, ref.accept)
	})
}

func FuzzMACsecSuiteVsReference(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Registry().Find("MACsec")
		if err != nil {
			t.Fatal(err)
		}
		// The suite's SecY runs the 802.1AE default: replay window 0,
		// strictly increasing PNs.
		high := 0
		runDifferential(t, data, e, 96, func(seq int) bool {
			if seq <= high {
				return false
			}
			high = seq
			return true
		})
	})
}

func FuzzCANsecSuiteVsReference(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Registry().Find("CANsec")
		if err != nil {
			t.Fatal(err)
		}
		// 1100 protected frames spans the 1024-frame acceptance window,
		// so schedules can jump past it.
		ref := &counterRef{window: 1024}
		runDifferential(t, data, e, 1100, ref.accept)
	})
}
