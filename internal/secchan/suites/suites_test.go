package suites

import (
	"bytes"
	"testing"

	"autosec/internal/secchan"
	"autosec/internal/sim"
)

var testKey = []byte("0123456789abcdef")

func newSuite(t *testing.T, e secchan.Entry) secchan.Suite {
	t.Helper()
	s, err := e.New(secchan.Params{Key: testKey, RNG: sim.NewRNG(1)})
	if err != nil {
		t.Fatalf("%s: New: %v", e.Name, err)
	}
	return s
}

func TestRegistryMatchesTableI(t *testing.T) {
	want := []struct {
		name, layer, media string
		overhead           int
		auth, conf, replay bool
	}{
		{"SECOC", "7 application", "CAN + Ethernet", 4, true, false, true},
		{"(D)TLS", "4 transport", "Ethernet/IP", 29, true, true, true},
		{"IPsec ESP", "3 network", "Ethernet/IP", 24, true, true, true},
		{"MACsec", "2 data link", "Ethernet", 32, true, true, true},
		{"CANsec", "2 data link", "CAN XL", 24, true, true, true},
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d suites, want %d", len(reg), len(want))
	}
	for i, w := range want {
		e := reg[i]
		if e.Name != w.name || e.Layer != w.layer || e.Media != w.media {
			t.Errorf("row %d: %s/%s/%s, want %s/%s/%s", i, e.Name, e.Layer, e.Media, w.name, w.layer, w.media)
		}
		if e.Paper == "" {
			t.Errorf("%s: no paper mapping", e.Name)
		}
		s := newSuite(t, e)
		if s.OverheadBytes() != w.overhead {
			t.Errorf("%s: OverheadBytes = %d, want %d", e.Name, s.OverheadBytes(), w.overhead)
		}
		p := s.Properties()
		if p.Auth != w.auth || p.Conf != w.conf || p.Replay != w.replay {
			t.Errorf("%s: properties %+v, want auth=%v conf=%v replay=%v", e.Name, p, w.auth, w.conf, w.replay)
		}
		// The registered overhead must match the measured wire expansion.
		payload := make([]byte, 16)
		wire, err := s.Protect(payload)
		if err != nil {
			t.Fatalf("%s: Protect: %v", e.Name, err)
		}
		if got := len(wire) - len(payload); got != s.OverheadBytes() {
			t.Errorf("%s: measured overhead %d != registered %d", e.Name, got, s.OverheadBytes())
		}
	}
}

func TestSuiteRoundTripAndStats(t *testing.T) {
	for _, e := range Registry() {
		t.Run(e.Name, func(t *testing.T) {
			s := newSuite(t, e)
			payload := []byte("steer left 3 deg")
			for i := 0; i < 3; i++ {
				wire, err := s.Protect(payload)
				if err != nil {
					t.Fatalf("Protect: %v", err)
				}
				got, err := s.Verify(wire)
				if err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("round-trip payload %q, want %q", got, payload)
				}
				// A replayed wire image must fail and be accounted.
				if _, err := s.Verify(wire); err == nil {
					t.Fatal("replayed wire accepted")
				}
			}
			st := s.Stats()
			if st.Protected != 3 || st.Verified != 3 || st.VerifyFailed != 3 {
				t.Errorf("stats %+v, want 3 protected / 3 verified / 3 failed", *st)
			}
			wantRatio := float64(len(payload)+s.OverheadBytes()) / float64(len(payload))
			if r := st.OverheadRatio(); r != wantRatio {
				t.Errorf("OverheadRatio = %v, want %v", r, wantRatio)
			}
		})
	}
}

// TestReplayWindowEdgeCases drives every suite through the same
// delivery schedules and pins where their replay disciplines agree and
// diverge. Sequence numbers are protect order (1-based); warmup
// deliveries establish receiver state, then the probe's accept/reject
// is checked per suite. The window arithmetic behind each expectation:
// SECOC accepts within 64 above its counter (no reordering), (D)TLS
// and IPsec keep a 64-deep bitmap below the highest seen (reordering
// ok), MACsec here runs strict-increasing (window 0), CANsec accepts
// within 1024 above its counter.
func TestReplayWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		warmup []int
		probe  int
		want   map[string]bool
	}{
		{
			name: "duplicate-in-window", warmup: []int{1, 2, 3, 4, 5}, probe: 3,
			want: map[string]bool{"SECOC": false, "(D)TLS": false, "IPsec ESP": false, "MACsec": false, "CANsec": false},
		},
		{
			// 4 was skipped, then arrives late: only the bitmap
			// disciplines accept reordering behind the highest.
			name: "reorder-unseen-in-window", warmup: []int{1, 2, 3, 5}, probe: 4,
			want: map[string]bool{"SECOC": false, "(D)TLS": true, "IPsec ESP": true, "MACsec": false, "CANsec": false},
		},
		{
			// 69 = 5+64: exactly at SECOC's window edge, future for the
			// rest.
			name: "exactly-at-window-edge", warmup: []int{5}, probe: 69,
			want: map[string]bool{"SECOC": true, "(D)TLS": true, "IPsec ESP": true, "MACsec": true, "CANsec": true},
		},
		{
			// 70 = 5+65: one past SECOC's window; a counter that far
			// ahead desynchronizes SECOC but nobody else.
			name: "far-future-past-secoc-window", warmup: []int{5}, probe: 70,
			want: map[string]bool{"SECOC": false, "(D)TLS": true, "IPsec ESP": true, "MACsec": true, "CANsec": true},
		},
		{
			// 1030 = 5+1025: past CANsec's 1024 window too; only the
			// bitmap/lenient disciplines treat any future as fresh.
			name: "far-future-past-cansec-window", warmup: []int{5}, probe: 1030,
			want: map[string]bool{"SECOC": false, "(D)TLS": true, "IPsec ESP": true, "MACsec": true, "CANsec": false},
		},
		{
			// 1 is 65 below the highest: below every bitmap and counter.
			name: "stale-below-window", warmup: []int{2, 66}, probe: 1,
			want: map[string]bool{"SECOC": false, "(D)TLS": false, "IPsec ESP": false, "MACsec": false, "CANsec": false},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			maxSeq := tc.probe
			for _, w := range tc.warmup {
				if w > maxSeq {
					maxSeq = w
				}
			}
			for _, e := range Registry() {
				want, ok := tc.want[e.Name]
				if !ok {
					t.Fatalf("case has no expectation for suite %s", e.Name)
				}
				s := newSuite(t, e)
				wires := make([][]byte, maxSeq+1)
				for seq := 1; seq <= maxSeq; seq++ {
					wire, err := s.Protect([]byte{byte(seq), byte(seq >> 8)})
					if err != nil {
						t.Fatalf("%s: Protect #%d: %v", e.Name, seq, err)
					}
					wires[seq] = wire
				}
				for _, w := range tc.warmup {
					if _, err := s.Verify(wires[w]); err != nil {
						t.Fatalf("%s: warmup delivery %d rejected: %v", e.Name, w, err)
					}
				}
				_, err := s.Verify(wires[tc.probe])
				if accepted := err == nil; accepted != want {
					t.Errorf("%s: probe %d accepted=%v, want %v (err: %v)", e.Name, tc.probe, accepted, want, err)
				}
			}
		})
	}
}

func TestMACsecIntegrityOnlyVariant(t *testing.T) {
	s, err := NewMACsecIntegrityOnly(secchan.Params{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "MACsec-integ" || s.Properties().Conf {
		t.Errorf("variant %s props %+v, want integrity-only", s.Name(), s.Properties())
	}
	payload := []byte("plaintext on the wire")
	wire, err := s.Protect(payload)
	if err != nil {
		t.Fatal(err)
	}
	// E=0: the payload must be visible in the protected frame.
	if !bytes.Contains(wire, payload) {
		t.Error("integrity-only frame does not carry the plaintext payload")
	}
	got, err := s.Verify(wire)
	if err != nil || !bytes.Equal(got, payload) {
		t.Errorf("round-trip: %q, %v", got, err)
	}
}
