package secchan

// Differential fuzzing of the kernel against the naive per-protocol
// implementations it replaced, in the style of the UWB bit-equivalence
// fuzzers: the original replay/freshness logic of ipsec, tlslite,
// cansec, and secoc is retained here verbatim as the reference, and
// fuzzed operation streams (reorder, duplicates, window boundaries,
// counter wrap) must produce identical accept/reject decisions and
// identical state.

import (
	"encoding/binary"
	"testing"
)

// --- retained naive references (pre-refactor protocol code) ---

// refIPsecWindow is the original ipsec.SA anti-replay state machine
// (uint32 sequences, RFC 4303 bitmap).
type refIPsecWindow struct {
	recvHigh   uint32
	window     uint64
	WindowSize uint32
}

func (sa *refIPsecWindow) replayOK(seq uint32) bool {
	if seq == 0 {
		return false
	}
	if seq > sa.recvHigh {
		return true
	}
	diff := sa.recvHigh - seq
	if diff >= sa.WindowSize || diff >= 64 {
		return false
	}
	return sa.window&(1<<diff) == 0
}

func (sa *refIPsecWindow) markSeen(seq uint32) {
	if seq > sa.recvHigh {
		shift := seq - sa.recvHigh
		if shift >= 64 {
			sa.window = 0
		} else {
			sa.window <<= shift
		}
		sa.window |= 1
		sa.recvHigh = seq
		return
	}
	sa.window |= 1 << (sa.recvHigh - seq)
}

// refTLSWindow is the original tlslite.Session replay state machine
// (uint64 sequences, fixed 64-deep bitmap).
type refTLSWindow struct {
	recvHigh uint64
	window   uint64
}

func (s *refTLSWindow) replayOK(seq uint64) bool {
	if seq == 0 {
		return false
	}
	if seq > s.recvHigh {
		return true
	}
	diff := s.recvHigh - seq
	if diff >= 64 {
		return false
	}
	return s.window&(1<<diff) == 0
}

func (s *refTLSWindow) markSeen(seq uint64) {
	if seq > s.recvHigh {
		shift := seq - s.recvHigh
		if shift >= 64 {
			s.window = 0
		} else {
			s.window <<= shift
		}
		s.window |= 1
		s.recvHigh = seq
		return
	}
	s.window |= 1 << (s.recvHigh - seq)
}

// refCansecAccept is the original cansec.Endpoint freshness rule:
// reject iff fv <= last || fv > last+window (uint32 arithmetic as the
// original map held uint32 values; the fuzzer keeps inputs below the
// uint32 wrap where the original was well-defined).
func refCansecAccept(last, fv, window uint32) bool {
	return !(fv <= last || fv > last+window)
}

// refSecocReconstruct is the original secoc.Receiver candidate search:
// the smallest values > lastFV whose low bits match the received
// truncation, within the window, first MAC match wins.
func refSecocReconstruct(lastFV uint64, bits int, window uint64, trunc uint64, try func(uint64) bool) (uint64, bool) {
	mask := uint64(1)<<bits - 1
	if bits == 64 {
		mask = ^uint64(0)
	}
	base := lastFV + 1
	for candidate := base; candidate <= lastFV+window; candidate++ {
		if candidate&mask != trunc&mask {
			continue
		}
		if try(candidate) {
			return candidate, true
		}
	}
	return 0, false
}

// --- fuzz drivers ---

// seqStream decodes the fuzz payload into a sequence-number stream:
// each 16-bit chunk is a delta applied to a walking base, producing
// clustered sequences with duplicates, reordering, window-edge hits,
// and occasional far jumps.
func seqStream(data []byte, wrapAt uint64) []uint64 {
	var out []uint64
	base := uint64(1)
	for i := 0; i+1 < len(data); i += 2 {
		d := binary.BigEndian.Uint16(data[i : i+2])
		switch d % 5 {
		case 0: // repeat the previous sequence (duplicate)
		case 1:
			base += uint64(d%70) + 1 // forward, often past the 64 window
		case 2:
			if back := uint64(d % 70); back < base {
				base -= back // reorder into / below the window
			}
		case 3:
			base += uint64(d) // far-future jump
		case 4:
			base = wrapAt - uint64(d%100) // near counter wrap
		}
		seq := base
		if wrapAt != 0 {
			seq %= wrapAt
		}
		out = append(out, seq)
	}
	return out
}

func FuzzWindowMatchesIPsecReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3}, uint8(64))
	f.Add([]byte{0, 4, 1, 200, 2, 10, 0, 4}, uint8(8))
	f.Add([]byte{3, 255, 255, 255, 4, 1}, uint8(32))
	f.Fuzz(func(t *testing.T, data []byte, size uint8) {
		winSize := uint32(size%64) + 1
		ref := &refIPsecWindow{WindowSize: winSize}
		w := &Window{Size: winSize}
		for i, seq64 := range seqStream(data, uint64(^uint32(0))+1) {
			seq := uint32(seq64)
			refOK := ref.replayOK(seq)
			gotOK := w.Check(uint64(seq))
			if refOK != gotOK {
				t.Fatalf("op %d: Check(%d) = %v, ipsec reference = %v (high=%d)", i, seq, gotOK, refOK, w.High())
			}
			if refOK {
				ref.markSeen(seq)
				w.Mark(uint64(seq))
			}
			if uint64(ref.recvHigh) != w.High() || ref.window != w.bitmap {
				t.Fatalf("op %d: state diverged: ref (high=%d bitmap=%#x) vs kernel (high=%d bitmap=%#x)",
					i, ref.recvHigh, ref.window, w.High(), w.bitmap)
			}
		}
	})
}

func FuzzWindowMatchesTLSReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 3})
	f.Add([]byte{3, 255, 0, 0, 2, 63, 2, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		ref := &refTLSWindow{}
		w := &Window{Size: 64}
		for i, seq := range seqStream(data, 0) {
			refOK := ref.replayOK(seq)
			gotOK := w.Check(seq)
			if refOK != gotOK {
				t.Fatalf("op %d: Check(%d) = %v, tlslite reference = %v", i, seq, gotOK, refOK)
			}
			if refOK {
				ref.markSeen(seq)
				w.Mark(seq)
			}
			if ref.recvHigh != w.High() || ref.window != w.bitmap {
				t.Fatalf("op %d: state diverged", i)
			}
		}
	})
}

func FuzzCounterMatchesCansecReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 2, 1, 50}, uint16(1024))
	f.Add([]byte{1, 3, 2, 2, 0, 0}, uint16(4))
	f.Fuzz(func(t *testing.T, data []byte, win uint16) {
		window := uint32(win%4096) + 1
		var refLast uint32
		c := &Counter{Window: uint64(window)}
		// Stay clear of the uint32 wrap, where the retained reference's
		// last+window overflowed and the kernel is deliberately exact
		// rather than bug-compatible.
		for i, seq64 := range seqStream(data, uint64(^uint32(0))-uint64(window)) {
			seq := uint32(seq64)
			refOK := refCansecAccept(refLast, seq, window)
			gotOK := c.Accept(uint64(seq))
			if refOK != gotOK {
				t.Fatalf("op %d: Accept(%d) = %v, cansec reference = %v (last=%d window=%d)",
					i, seq, gotOK, refOK, refLast, window)
			}
			if refOK {
				refLast = seq
				c.Commit(uint64(seq))
			}
			if uint64(refLast) != c.Last() {
				t.Fatalf("op %d: committed state diverged", i)
			}
		}
	})
}

func FuzzFreshnessMatchesSecocReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 0, 2, 1, 50}, uint8(8), uint8(64), uint16(3))
	f.Add([]byte{1, 3, 2, 2, 3, 200}, uint8(16), uint8(255), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, bitsIn, winIn uint8, senderFV uint16) {
		bits := []int{8, 16, 24, 32, 64}[int(bitsIn)%5]
		window := uint64(winIn%128) + 1
		// The "MAC" accepts exactly the sender's counter value — the
		// shape a real CMAC check has — and the fuzzed stream feeds
		// both reconstructors the same truncations.
		var refLast uint64
		fr := &Freshness{Bits: bits, Window: window}
		mask := fr.Mask()
		sender := uint64(senderFV)
		for i, op := range seqStream(data, 1<<20) {
			switch op % 3 {
			case 0:
				sender++ // genuine next PDU
			case 1: // replay: sender unchanged
			case 2:
				sender += op%(2*window) + 1 // loss burst, maybe past window
			}
			trunc := sender & mask
			refVal, refOK := refSecocReconstruct(refLast, bits, window, trunc, tryExact(sender))
			gotVal, gotOK := fr.Reconstruct(trunc, tryExact(sender))
			if refOK != gotOK || (refOK && refVal != gotVal) {
				t.Fatalf("op %d: Reconstruct(trunc=%#x) = (%d,%v), secoc reference = (%d,%v)",
					i, trunc, gotVal, gotOK, refVal, refOK)
			}
			if refOK {
				refLast = refVal
			}
			if refLast != fr.Last() {
				t.Fatalf("op %d: last diverged: ref %d vs kernel %d", i, refLast, fr.Last())
			}
		}
	})
}

// TestLenientAcceptVsBuggyUint32 documents the macsec bug the kernel
// fixes: the original uint32 expression diverges from LenientAccept
// exactly for fresh PNs within window of 2^32.
func TestLenientAcceptVsBuggyUint32(t *testing.T) {
	buggy := func(high, pn, window uint32) bool {
		if window == 0 {
			return pn > high
		}
		return pn+window > high && pn != 0 // uint32 wrap
	}
	const max = ^uint32(0)
	high, pn, window := max-5, max, uint32(10)
	if buggy(high, pn, window) {
		t.Fatal("expected the retained buggy formula to reject a fresh near-wrap PN")
	}
	if !LenientAccept(uint64(high), uint64(pn), uint64(window)) {
		t.Fatal("kernel rejected the fresh near-wrap PN")
	}
	// Away from the wrap the two agree everywhere the fuzzer samples.
	for high := uint32(0); high < 200; high += 7 {
		for pn := uint32(0); pn < 200; pn += 3 {
			for _, win := range []uint32{0, 1, 4, 64} {
				if buggy(high, pn, win) != LenientAccept(uint64(high), uint64(pn), uint64(win)) {
					t.Fatalf("divergence away from wrap: high=%d pn=%d window=%d", high, pn, win)
				}
			}
		}
	}
}
