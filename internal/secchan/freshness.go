package secchan

// Freshness reconstructs full freshness values from the truncated
// low-order bits that travel on the wire — the AUTOSAR SECOC receiver
// algorithm, generalised. The receiver holds the last authenticated
// full value; a PDU carries only the low Bits of the sender's counter,
// and Reconstruct searches the candidates in (last, last+Window] whose
// truncation matches, letting the caller's MAC check pick the real
// one. Replayed or stale PDUs fail because no in-window candidate
// matches both the truncation and the MAC.
type Freshness struct {
	// Bits is how many low-order counter bits travel in the PDU
	// (1–64; SECOC profile 1 uses 8).
	Bits int
	// Window is how far ahead of the last authenticated value a
	// reconstructed candidate may be (tolerates lost PDUs).
	Window uint64

	last uint64
}

// Mask returns the bitmask selecting the transmitted low-order bits.
func (f *Freshness) Mask() uint64 {
	if f.Bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<f.Bits - 1
}

// Reconstruct searches the candidate full values in (last, last+Window]
// whose low Bits equal trunc, in increasing order, calling try on each.
// The first candidate try accepts (typically: the MAC verifies under
// it) is committed as the new last value and returned. If no candidate
// matches, the state is unchanged and ok is false.
//
// If last+Window would wrap the uint64 counter space the search range
// is empty and every PDU is rejected: a counter that large means the
// channel outlived its key, and rekeying resets the counter long
// before.
func (f *Freshness) Reconstruct(trunc uint64, try func(candidate uint64) bool) (value uint64, ok bool) {
	mask := f.Mask()
	for candidate := f.last + 1; candidate <= f.last+f.Window; candidate++ {
		if candidate&mask != trunc&mask {
			continue
		}
		if try(candidate) {
			f.last = candidate
			return candidate, true
		}
	}
	return 0, false
}

// Last returns the last authenticated full freshness value.
func (f *Freshness) Last() uint64 { return f.last }
