package secchan

// Freshness reconstructs full freshness values from the truncated
// low-order bits that travel on the wire — the AUTOSAR SECOC receiver
// algorithm, generalised. The receiver holds the last authenticated
// full value; a PDU carries only the low Bits of the sender's counter,
// and Reconstruct searches the candidates in (last, last+Window] whose
// truncation matches, letting the caller's MAC check pick the real
// one. Replayed or stale PDUs fail because no in-window candidate
// matches both the truncation and the MAC.
type Freshness struct {
	// Bits is how many low-order counter bits travel in the PDU
	// (1–64; SECOC profile 1 uses 8).
	Bits int
	// Window is how far ahead of the last authenticated value a
	// reconstructed candidate may be (tolerates lost PDUs).
	Window uint64

	last uint64
}

// Mask returns the bitmask selecting the transmitted low-order bits.
func (f *Freshness) Mask() uint64 {
	if f.Bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<f.Bits - 1
}

// Reconstruct searches the candidate full values in (last, last+Window]
// whose low Bits equal trunc, in increasing order, calling try on each.
// The first candidate try accepts (typically: the MAC verifies under
// it) is committed as the new last value and returned. If no candidate
// matches, the state is unchanged and ok is false.
//
// If last+Window would wrap the uint64 counter space the search range
// is empty and every PDU is rejected: a counter that large means the
// channel outlived its key, and rekeying resets the counter long
// before.
func (f *Freshness) Reconstruct(trunc uint64, try func(candidate uint64) bool) (value uint64, ok bool) {
	it := f.Candidates(trunc)
	for it.Next() {
		if try(it.Value()) {
			it.Commit()
			return it.Value(), true
		}
	}
	return 0, false
}

// Candidates is the iterator form of Reconstruct for hot receive
// paths: the caller drives the candidate loop and the MAC check
// itself, so nothing escapes to the heap — a rejected PDU costs zero
// allocations. Usage:
//
//	it := f.Candidates(trunc)
//	for it.Next() {
//	    if macMatches(it.Value()) {
//	        it.Commit()
//	        ...
//	    }
//	}
//
// The iteration order and window/wrap semantics are exactly those of
// Reconstruct (which is implemented on top of this).
type Candidates struct {
	f     *Freshness
	trunc uint64 // already masked
	mask  uint64
	cur   uint64 // last candidate returned; f.last before the first Next
	end   uint64 // last+Window, inclusive
}

// Candidates returns an iterator over the full values in
// (last, last+Window] whose low Bits equal trunc, smallest first.
func (f *Freshness) Candidates(trunc uint64) Candidates {
	mask := f.Mask()
	return Candidates{f: f, trunc: trunc & mask, mask: mask, cur: f.last, end: f.last + f.Window}
}

// Next advances to the next matching candidate, reporting whether one
// exists.
func (c *Candidates) Next() bool {
	for cand := c.cur + 1; cand <= c.end; cand++ {
		if cand&c.mask == c.trunc {
			c.cur = cand
			return true
		}
	}
	return false
}

// Value returns the current candidate. Valid only after Next returned
// true.
func (c *Candidates) Value() uint64 { return c.cur }

// Commit records the current candidate as the authenticated freshness
// value. Call once, after the caller's MAC check accepted it.
func (c *Candidates) Commit() { c.f.last = c.cur }

// Last returns the last authenticated full freshness value.
func (f *Freshness) Last() uint64 { return f.last }

// FirstCandidateAfter computes, in O(1), the first candidate the
// search would try from an arbitrary last value: the smallest v in
// (last, last+Window] with v's low Bits equal to trunc. It exists for
// optimistic batch verify paths, which predict each frame's winning
// candidate ahead of the serial walk (for an in-order stream the first
// candidate is the real counter) and pre-compute the MACs in bulk; the
// serial walk then only spends crypto on frames whose prediction
// missed. Near counter wrap (where last+Window would overflow) it
// reports no candidate, matching Reconstruct's empty search range.
func (f *Freshness) FirstCandidateAfter(last, trunc uint64) (uint64, bool) {
	mask := f.Mask()
	trunc &= mask
	end := last + f.Window
	if end < last || last+1 == 0 {
		return 0, false
	}
	base := last + 1
	cand := base&^mask | trunc
	if cand < base {
		next, carry := cand+mask+1, mask == ^uint64(0)
		if carry || next < cand {
			return 0, false
		}
		cand = next
	}
	if cand > end {
		return 0, false
	}
	return cand, true
}
