// Package secchan is the shared secure-channel kernel under the
// in-vehicle protocol stacks of Table I (secoc, macsec, cansec, ipsec,
// tlslite). The paper compares those protocols along the same axes —
// overhead, authenticity, confidentiality, replay protection — and
// their receive paths are instances of the same three mechanisms,
// which this package factors out:
//
//   - Window: a sliding-bitmap anti-replay window (RFC 4303 style),
//     used by the IPsec SA and the DTLS-style record layer.
//   - Counter: a strictly-increasing freshness counter with an
//     acceptance window, used by CANsec zone endpoints; LenientAccept
//     is the 802.1AE variant that tolerates bounded reordering without
//     duplicate tracking, used by MACsec receive channels.
//   - Freshness: truncated-counter reconstruction with an acceptance
//     window — the SECOC receiver's candidate search, generalised.
//
// VerifyTrunc is the constant-time truncated-MAC comparison every
// stack shares, and Suite/Registry give the experiment harness one
// generic view of a protected channel (Protect/Verify plus overhead
// and verify-failure accounting), so protocol comparisons iterate a
// registry instead of naming protocols inline.
//
// Everything here operates on uint64 sequence numbers with explicit
// wrap semantics: protocols with narrower counters (MACsec's 32-bit
// PN, CANsec's 32-bit freshness) widen before calling in, which is
// exactly what makes the near-wrap arithmetic safe — the uint32
// overflow fixed in macsec's replay check is the class of bug this
// kernel exists to centralise.
//
// Exercised by experiments tab1, fig4-fig6, exp-vehicle, exp-zc,
// ablate-mac, ablate-fv, and ablate-scale through the protocol
// packages and the suites registry.
package secchan

import "crypto/subtle"

// VerifyTrunc compares a freshly computed MAC against a received
// (possibly truncated) MAC in constant time. It returns false when the
// lengths differ; the caller truncates want to the wire length before
// comparing, so a length mismatch is a malformed input, not a timing
// oracle.
func VerifyTrunc(want, got []byte) bool {
	return len(want) == len(got) && subtle.ConstantTimeCompare(want, got) == 1
}
