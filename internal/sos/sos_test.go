package sos

import (
	"strings"
	"testing"

	"autosec/internal/sim"
)

func maas(t *testing.T) *Model {
	t.Helper()
	m, err := BuildMaaS()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildMaaSStructure(t *testing.T) {
	m := maas(t)
	if len(m.AtLevel(0)) != 1 {
		t.Errorf("level 0: %d", len(m.AtLevel(0)))
	}
	if len(m.AtLevel(1)) != 4 {
		t.Errorf("level 1: %d systems, want 4 (AV, backend, hub, platform)", len(m.AtLevel(1)))
	}
	if len(m.AtLevel(2)) != 3 {
		t.Errorf("level 2: %d systems, want 3 (vehicle OS, SDS, passenger OS)", len(m.AtLevel(2)))
	}
	if len(m.AtLevel(3)) != 5 {
		t.Errorf("level 3: %d systems", len(m.AtLevel(3)))
	}
	if !m.System("safety-fn").SafetyCritical || !m.System("act").SafetyCritical {
		t.Error("safety-critical systems not flagged")
	}
}

func TestAddSystemValidation(t *testing.T) {
	m := NewModel()
	if err := m.AddSystem(&System{ID: "", Level: 0}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := m.AddSystem(&System{ID: "root", Level: 1}); err == nil {
		t.Error("root at level 1 accepted")
	}
	if err := m.AddSystem(&System{ID: "root", Level: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddSystem(&System{ID: "root", Level: 0}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := m.AddSystem(&System{ID: "x", Level: 2, Parent: "root"}); err == nil {
		t.Error("level skip accepted")
	}
	if err := m.AddSystem(&System{ID: "y", Level: 1, Parent: "missing"}); err == nil {
		t.Error("missing parent accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	m := NewModel()
	_ = m.AddSystem(&System{ID: "a", Level: 0})
	if err := m.AddLink(&Link{From: "a", To: "missing", Propagation: 0.5}); err == nil {
		t.Error("missing endpoint accepted")
	}
	if err := m.AddLink(&Link{From: "a", To: "a", Propagation: 1.5}); err == nil {
		t.Error("propagation > 1 accepted")
	}
}

func TestAttackSurfacePerLevel(t *testing.T) {
	m := maas(t)
	reports := m.AttackSurface()
	if len(reports) != 4 {
		t.Fatalf("%d levels reported", len(reports))
	}
	// Level 1 carries the platform's outward interfaces.
	l1 := reports[1]
	if l1.ExternalInterfaces < 8 {
		t.Errorf("level 1 external interfaces = %d", l1.ExternalInterfaces)
	}
	// Sensor apertures appear at level 2 (the SDS).
	l2 := reports[2]
	if l2.ByKind[SensorInput] != 4 {
		t.Errorf("level 2 sensor interfaces = %d", l2.ByKind[SensorInput])
	}
	// The level-0 abstraction itself has no direct interfaces.
	if reports[0].Interfaces != 0 {
		t.Errorf("level 0 interfaces = %d", reports[0].Interfaces)
	}
}

func TestResponsibilityGaps(t *testing.T) {
	m := maas(t)
	unowned, cross := m.ResponsibilityGaps()
	if len(unowned) != 5 {
		t.Errorf("unowned links = %d, want 5", len(unowned))
	}
	if len(cross) < 5 {
		t.Errorf("cross-stakeholder links = %d", len(cross))
	}
	// Every unowned link in this model crosses stakeholders.
	crossSet := map[[2]string]bool{}
	for _, l := range cross {
		crossSet[[2]string{l.From, l.To}] = true
	}
	for _, l := range unowned {
		if !crossSet[[2]string{l.From, l.To}] {
			t.Errorf("unowned link %s→%s is not cross-stakeholder", l.From, l.To)
		}
	}
}

func TestCascadeFromTelematicsReachesSafety(t *testing.T) {
	m := maas(t)
	res, err := m.Cascade("backend", 4000, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCompromised <= 1 {
		t.Error("cascade never spread")
	}
	if res.SafetyCriticalProb <= 0 {
		t.Error("backend entry never reached a safety-critical system (the §VI cascade risk)")
	}
	if res.SafetyCriticalProb > 0.5 {
		t.Errorf("cascade implausibly certain: %.3f", res.SafetyCriticalProb)
	}
}

func TestCascadeSensorEntryThreatensActuation(t *testing.T) {
	m := maas(t)
	res, err := m.Cascade("sense", 4000, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// sense → plan → act is a short path with moderate probabilities.
	if res.SafetyCriticalProb < 0.15 {
		t.Errorf("sensor entry reached safety-critical with p=%.3f, expected ≳0.25", res.SafetyCriticalProb)
	}
}

func TestHardeningReducesCascade(t *testing.T) {
	before, err := maas(t).Cascade("backend", 4000, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	hardened := maas(t)
	if _, err := hardened.Harden(0.3, "ciso"); err != nil {
		t.Fatal(err)
	}
	after, err := hardened.Cascade("backend", 4000, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if after.MeanCompromised >= before.MeanCompromised {
		t.Errorf("hardening did not reduce spread: %.2f → %.2f", before.MeanCompromised, after.MeanCompromised)
	}
	if after.SafetyCriticalProb >= before.SafetyCriticalProb {
		t.Errorf("hardening did not reduce safety risk: %.3f → %.3f", before.SafetyCriticalProb, after.SafetyCriticalProb)
	}
	unowned, _ := hardened.ResponsibilityGaps()
	if len(unowned) != 0 {
		t.Errorf("hardening left %d unowned links", len(unowned))
	}
}

func TestHardenValidation(t *testing.T) {
	m := maas(t)
	if _, err := m.Harden(0, "x"); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := m.Harden(1.5, "x"); err == nil {
		t.Error("factor > 1 accepted")
	}
}

func TestCascadeValidation(t *testing.T) {
	m := maas(t)
	if _, err := m.Cascade("missing", 100, sim.NewRNG(1)); err == nil {
		t.Error("unknown entry accepted")
	}
	if _, err := m.Cascade("av", 0, sim.NewRNG(1)); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestCascadeDeterministicUnderSeed(t *testing.T) {
	a, err := maas(t).Cascade("hub", 1000, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := maas(t).Cascade("hub", 1000, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanCompromised != b.MeanCompromised || a.SafetyCriticalProb != b.SafetyCriticalProb {
		t.Error("same seed diverged")
	}
}

func TestDOTExport(t *testing.T) {
	m := maas(t)
	dot := m.DOT()
	for _, want := range []string{
		"digraph sos",
		`"maas" -> "av" [style=dashed`, // containment edge
		`"backend" -> "av"`,            // communication link
		"color=red",                    // unowned link highlighted
		"peripheries=2",                // safety-critical marker
		`label="Safety Functions`,      // node label
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if strings.Count(dot, "->") < len(m.Links())+len(m.Systems())-1 {
		t.Error("DOT edge count too low")
	}
}

func TestInterfaceKindStrings(t *testing.T) {
	for _, k := range []InterfaceKind{PhysicalPort, SensorInput, WirelessLink, BackendAPI, HumanInterface} {
		if s := k.String(); s == "" || s[0] == 'I' {
			t.Errorf("kind %d renders as %q", int(k), s)
		}
	}
}
