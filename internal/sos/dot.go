package sos

import (
	"fmt"
	"strings"
)

// DOT renders the model as a Graphviz digraph: containment as dashed
// cluster-style edges, communication links as solid edges labelled with
// propagation probability, unowned links in red, safety-critical
// systems double-bordered. Useful to visually diff the Fig. 9 model
// against the paper's diagram.
func (m *Model) DOT() string {
	var b strings.Builder
	b.WriteString("digraph sos {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"sans-serif\"];\n")
	for _, s := range m.Systems() {
		attrs := []string{fmt.Sprintf("label=\"%s\\n(L%d, %s)\"", s.Name, s.Level, s.Stakeholder)}
		if s.SafetyCritical {
			attrs = append(attrs, "peripheries=2", "color=firebrick")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", s.ID, strings.Join(attrs, ", "))
	}
	for _, s := range m.Systems() {
		if s.Parent != "" {
			fmt.Fprintf(&b, "  %q -> %q [style=dashed, arrowhead=none, color=gray];\n", s.Parent, s.ID)
		}
	}
	for _, l := range m.Links() {
		attrs := []string{fmt.Sprintf("label=\"p=%.2f\"", l.Propagation)}
		if l.SecurityOwner == "" {
			attrs = append(attrs, "color=red", "fontcolor=red")
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", l.From, l.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}
