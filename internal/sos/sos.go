// Package sos models the system-of-systems architecture of the paper's
// §VI (Fig. 9): a containment hierarchy of systems across levels 0–3,
// typed interfaces that form the attack surface, inter-system links over
// which compromise cascades, and stakeholder/responsibility annotations
// whose gaps are themselves a finding ("ambiguous roles and
// responsibilities ... hinder comprehensive risk assessments").
//
// Exercised by experiment fig9.
package sos

import (
	"fmt"
	"sort"

	"autosec/internal/sim"
)

// InterfaceKind classifies an entry point.
type InterfaceKind int

const (
	PhysicalPort   InterfaceKind = iota // OBD, debug headers, charge port
	SensorInput                         // cameras, lidar, radar apertures
	WirelessLink                        // cellular, V2X, Bluetooth, UWB
	BackendAPI                          // cloud/service interfaces
	HumanInterface                      // passenger UI, operator consoles
)

func (k InterfaceKind) String() string {
	switch k {
	case PhysicalPort:
		return "physical"
	case SensorInput:
		return "sensor"
	case WirelessLink:
		return "wireless"
	case BackendAPI:
		return "backend"
	case HumanInterface:
		return "human"
	default:
		return fmt.Sprintf("InterfaceKind(%d)", int(k))
	}
}

// Interface is one entry point of a system.
type Interface struct {
	Name string
	Kind InterfaceKind
	// External marks interfaces reachable from outside the system of
	// systems (the attack surface proper).
	External bool
}

// System is one node in the hierarchy.
type System struct {
	ID    string
	Name  string
	Level int
	// Parent is the containing system ("" for the level-0 root).
	Parent string
	// Stakeholder is the organization responsible for the system.
	Stakeholder string
	// SafetyCritical marks systems whose compromise endangers life.
	SafetyCritical bool
	Interfaces     []Interface
}

// Link is a communication/dependency edge over which compromise can
// cascade.
type Link struct {
	From, To string
	// Propagation is the probability a compromise of From spreads to To
	// in one cascade step (models how hardened the boundary is).
	Propagation float64
	// SecurityOwner is the stakeholder responsible for securing this
	// link; "" marks the ambiguous-responsibility gap the paper calls
	// out.
	SecurityOwner string
}

// Model is the complete system of systems.
type Model struct {
	systems map[string]*System
	order   []string
	links   []*Link
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{systems: make(map[string]*System)}
}

// AddSystem inserts a system. Parents must exist before children.
func (m *Model) AddSystem(s *System) error {
	if s.ID == "" {
		return fmt.Errorf("sos: system needs an ID")
	}
	if _, dup := m.systems[s.ID]; dup {
		return fmt.Errorf("sos: duplicate system %s", s.ID)
	}
	if s.Parent != "" {
		parent, ok := m.systems[s.Parent]
		if !ok {
			return fmt.Errorf("sos: parent %s of %s not found", s.Parent, s.ID)
		}
		if s.Level != parent.Level+1 {
			return fmt.Errorf("sos: %s at level %d under parent at level %d", s.ID, s.Level, parent.Level)
		}
	} else if s.Level != 0 {
		return fmt.Errorf("sos: root %s must be level 0", s.ID)
	}
	m.systems[s.ID] = s
	m.order = append(m.order, s.ID)
	return nil
}

// AddLink inserts a cascade edge between existing systems.
func (m *Model) AddLink(l *Link) error {
	if _, ok := m.systems[l.From]; !ok {
		return fmt.Errorf("sos: link from unknown system %s", l.From)
	}
	if _, ok := m.systems[l.To]; !ok {
		return fmt.Errorf("sos: link to unknown system %s", l.To)
	}
	if l.Propagation < 0 || l.Propagation > 1 {
		return fmt.Errorf("sos: propagation %f out of [0,1]", l.Propagation)
	}
	m.links = append(m.links, l)
	return nil
}

// System returns a system by ID (nil if absent).
func (m *Model) System(id string) *System { return m.systems[id] }

// Systems returns all systems in insertion order.
func (m *Model) Systems() []*System {
	out := make([]*System, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.systems[id])
	}
	return out
}

// Links returns all links.
func (m *Model) Links() []*Link { return m.links }

// AtLevel returns systems of the given level.
func (m *Model) AtLevel(level int) []*System {
	var out []*System
	for _, id := range m.order {
		if m.systems[id].Level == level {
			out = append(out, m.systems[id])
		}
	}
	return out
}

// SurfaceReport summarizes attack surface per level.
type SurfaceReport struct {
	Level              int
	Systems            int
	Interfaces         int
	ExternalInterfaces int
	ByKind             map[InterfaceKind]int
}

// AttackSurface computes the per-level surface report: the Fig. 9
// quantity "broad attack surface due to multiple physical and digital
// entry points".
func (m *Model) AttackSurface() []SurfaceReport {
	byLevel := map[int]*SurfaceReport{}
	maxLevel := 0
	for _, s := range m.Systems() {
		r, ok := byLevel[s.Level]
		if !ok {
			r = &SurfaceReport{Level: s.Level, ByKind: map[InterfaceKind]int{}}
			byLevel[s.Level] = r
		}
		if s.Level > maxLevel {
			maxLevel = s.Level
		}
		r.Systems++
		for _, itf := range s.Interfaces {
			r.Interfaces++
			if itf.External {
				r.ExternalInterfaces++
				r.ByKind[itf.Kind]++
			}
		}
	}
	var out []SurfaceReport
	for l := 0; l <= maxLevel; l++ {
		if r, ok := byLevel[l]; ok {
			out = append(out, *r)
		}
	}
	return out
}

// ResponsibilityGaps returns links without a security owner, plus links
// crossing stakeholders (where ownership is most often contested).
func (m *Model) ResponsibilityGaps() (unowned, crossStakeholder []*Link) {
	for _, l := range m.links {
		from, to := m.systems[l.From], m.systems[l.To]
		if l.SecurityOwner == "" {
			unowned = append(unowned, l)
		}
		if from.Stakeholder != to.Stakeholder {
			crossStakeholder = append(crossStakeholder, l)
		}
	}
	return unowned, crossStakeholder
}

// CascadeResult summarizes a Monte-Carlo cascade study.
type CascadeResult struct {
	Entry string
	// MeanCompromised is the expected number of compromised systems.
	MeanCompromised float64
	// SafetyCriticalProb is the probability a safety-critical system is
	// reached.
	SafetyCriticalProb float64
	// ReachedOnce lists systems compromised in ≥1 trial (sorted).
	ReachedOnce []string
}

// Cascade runs trials of probabilistic compromise propagation from the
// entry system across links (both directions are traversable: a link is
// a communication relationship).
func (m *Model) Cascade(entry string, trials int, rng *sim.RNG) (CascadeResult, error) {
	if _, ok := m.systems[entry]; !ok {
		return CascadeResult{}, fmt.Errorf("sos: unknown entry %s", entry)
	}
	if trials <= 0 {
		return CascadeResult{}, fmt.Errorf("sos: trials must be positive")
	}
	adj := map[string][]*Link{}
	for _, l := range m.links {
		adj[l.From] = append(adj[l.From], l)
		adj[l.To] = append(adj[l.To], &Link{From: l.To, To: l.From, Propagation: l.Propagation})
	}

	totalCompromised := 0
	safetyHits := 0
	reached := map[string]bool{}
	for trial := 0; trial < trials; trial++ {
		compromised := map[string]bool{entry: true}
		frontier := []string{entry}
		for len(frontier) > 0 {
			next := []string{}
			for _, id := range frontier {
				for _, l := range adj[id] {
					if compromised[l.To] {
						continue
					}
					if rng.Bool(l.Propagation) {
						compromised[l.To] = true
						next = append(next, l.To)
					}
				}
			}
			frontier = next
		}
		totalCompromised += len(compromised)
		hitSafety := false
		for id := range compromised {
			reached[id] = true
			if m.systems[id].SafetyCritical {
				hitSafety = true
			}
		}
		if hitSafety {
			safetyHits++
		}
	}
	var reachedList []string
	for id := range reached {
		reachedList = append(reachedList, id)
	}
	sort.Strings(reachedList)
	return CascadeResult{
		Entry:              entry,
		MeanCompromised:    float64(totalCompromised) / float64(trials),
		SafetyCriticalProb: float64(safetyHits) / float64(trials),
		ReachedOnce:        reachedList,
	}, nil
}

// Harden multiplies every link's propagation by factor (0 < factor ≤ 1),
// modelling a uniform segmentation/hardening investment, and assigns an
// owner to unowned links. It returns the number of links changed.
func (m *Model) Harden(factor float64, owner string) (int, error) {
	if factor <= 0 || factor > 1 {
		return 0, fmt.Errorf("sos: hardening factor %f out of (0,1]", factor)
	}
	changed := 0
	for _, l := range m.links {
		l.Propagation *= factor
		if l.SecurityOwner == "" && owner != "" {
			l.SecurityOwner = owner
		}
		changed++
	}
	return changed, nil
}
