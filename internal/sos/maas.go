package sos

// BuildMaaS constructs the Fig. 9 instance: the SAE L4 autonomous
// mobility-as-a-service platform as a four-level system of systems with
// the stakeholder split and entry points the paper describes. Link
// propagation probabilities encode the "unsynchronized development and
// integration" premise: boundaries inside one stakeholder are softer
// than contractual boundaries between stakeholders, and several
// cross-stakeholder links have no assigned security owner.
func BuildMaaS() (*Model, error) {
	m := NewModel()
	add := func(s *System) error { return m.AddSystem(s) }

	// Level 0: the platform as a whole.
	if err := add(&System{ID: "maas", Name: "AV MaaS Platform", Level: 0, Stakeholder: "consortium"}); err != nil {
		return nil, err
	}

	// Level 1: the four pillars.
	level1 := []*System{
		{ID: "av", Name: "Autonomous Vehicle", Level: 1, Parent: "maas", Stakeholder: "oem",
			Interfaces: []Interface{
				{Name: "charge-port", Kind: PhysicalPort, External: true},
				{Name: "obd", Kind: PhysicalPort, External: true},
				{Name: "cellular", Kind: WirelessLink, External: true},
				{Name: "v2x", Kind: WirelessLink, External: true},
			}},
		{ID: "backend", Name: "Cloud & Backend", Level: 1, Parent: "maas", Stakeholder: "backend-op",
			Interfaces: []Interface{
				{Name: "fleet-api", Kind: BackendAPI, External: true},
				{Name: "ota-service", Kind: BackendAPI, External: true},
				{Name: "telemetry-ingest", Kind: BackendAPI, External: true},
			}},
		{ID: "hub", Name: "Hub Infrastructure", Level: 1, Parent: "maas", Stakeholder: "hub-op",
			Interfaces: []Interface{
				{Name: "depot-wifi", Kind: WirelessLink, External: true},
				{Name: "service-terminal", Kind: PhysicalPort, External: true},
			}},
		{ID: "platform", Name: "MaaS Platform", Level: 1, Parent: "maas", Stakeholder: "maas-op",
			Interfaces: []Interface{
				{Name: "rider-app", Kind: HumanInterface, External: true},
				{Name: "booking-api", Kind: BackendAPI, External: true},
			}},
	}
	for _, s := range level1 {
		if err := add(s); err != nil {
			return nil, err
		}
	}

	// Level 2: inside the vehicle.
	level2 := []*System{
		{ID: "vehicle-os", Name: "Vehicle OS", Level: 2, Parent: "av", Stakeholder: "oem",
			Interfaces: []Interface{{Name: "diag-bt", Kind: WirelessLink, External: true}}},
		{ID: "sds", Name: "Self-Driving Stack", Level: 2, Parent: "av", Stakeholder: "sds-vendor",
			Interfaces: []Interface{
				{Name: "camera", Kind: SensorInput, External: true},
				{Name: "lidar", Kind: SensorInput, External: true},
				{Name: "radar", Kind: SensorInput, External: true},
				{Name: "gnss", Kind: SensorInput, External: true},
			}},
		{ID: "passenger-os", Name: "Passenger OS", Level: 2, Parent: "av", Stakeholder: "maas-op",
			Interfaces: []Interface{
				{Name: "cabin-tablet", Kind: HumanInterface, External: true},
				{Name: "passenger-wifi", Kind: WirelessLink, External: true},
			}},
	}
	for _, s := range level2 {
		if err := add(s); err != nil {
			return nil, err
		}
	}

	// Level 3: vehicle-OS functions and SDS pipeline.
	level3 := []*System{
		{ID: "safety-fn", Name: "Safety Functions (steer/brake/light)", Level: 3, Parent: "vehicle-os", Stakeholder: "oem", SafetyCritical: true},
		{ID: "comfort-fn", Name: "Comfort Functions (climate/seat)", Level: 3, Parent: "vehicle-os", Stakeholder: "oem"},
		{ID: "sense", Name: "Sense", Level: 3, Parent: "sds", Stakeholder: "sds-vendor"},
		{ID: "plan", Name: "Plan", Level: 3, Parent: "sds", Stakeholder: "sds-vendor"},
		{ID: "act", Name: "Act", Level: 3, Parent: "sds", Stakeholder: "sds-vendor", SafetyCritical: true},
	}
	for _, s := range level3 {
		if err := add(s); err != nil {
			return nil, err
		}
	}

	// Communication links. Same-stakeholder boundaries are softer
	// (higher propagation) than contractual ones, and some
	// cross-stakeholder links lack a security owner.
	links := []*Link{
		{From: "platform", To: "backend", Propagation: 0.35, SecurityOwner: "backend-op"},
		{From: "backend", To: "av", Propagation: 0.30, SecurityOwner: ""}, // contested: OEM vs backend-op
		{From: "hub", To: "av", Propagation: 0.25, SecurityOwner: ""},     // contested: hub-op vs OEM
		{From: "platform", To: "passenger-os", Propagation: 0.40, SecurityOwner: "maas-op"},
		{From: "av", To: "vehicle-os", Propagation: 0.55, SecurityOwner: "oem"},
		{From: "av", To: "sds", Propagation: 0.45, SecurityOwner: ""}, // retrofit boundary, contested
		{From: "av", To: "passenger-os", Propagation: 0.45, SecurityOwner: "maas-op"},
		{From: "passenger-os", To: "vehicle-os", Propagation: 0.20, SecurityOwner: ""}, // contested
		{From: "vehicle-os", To: "safety-fn", Propagation: 0.30, SecurityOwner: "oem"},
		{From: "vehicle-os", To: "comfort-fn", Propagation: 0.60, SecurityOwner: "oem"},
		{From: "sds", To: "sense", Propagation: 0.60, SecurityOwner: "sds-vendor"},
		{From: "sense", To: "plan", Propagation: 0.55, SecurityOwner: "sds-vendor"},
		{From: "plan", To: "act", Propagation: 0.50, SecurityOwner: "sds-vendor"},
		{From: "act", To: "vehicle-os", Propagation: 0.45, SecurityOwner: ""}, // drive-by-wire boundary, contested
	}
	for _, l := range links {
		if err := m.AddLink(l); err != nil {
			return nil, err
		}
	}
	return m, nil
}
