package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"autosec/internal/campaign"
	"autosec/internal/config"
	"autosec/internal/core"
	"autosec/internal/scenario"
	"autosec/internal/sim"
)

// testConfig returns a config rooted in a temp dir: a corpus with two
// known scenarios and a fresh cache.
func testConfig(t *testing.T) config.Config {
	t.Helper()
	dir := t.TempDir()
	scnDir := filepath.Join(dir, "scenarios")
	for _, name := range []string{"alpha", "beta"} {
		sp := scenario.DefaultSpec(name)
		if name == "beta" {
			sp.Attacker.Type = "replay"
		}
		folder := filepath.Join(scnDir, name)
		if err := os.MkdirAll(folder, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(folder, scenario.SpecFile), sp.MarshalINI(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := config.Default()
	cfg.ScenarioDir = scnDir
	cfg.Cache.Dir = filepath.Join(dir, "cache")
	return cfg
}

func newTestServer(t *testing.T, cfg config.Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/campaign", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthAndListings(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))

	var health struct {
		Status      string `json:"status"`
		CodeVersion string `json:"code_version"`
		Experiments int    `json:"experiments"`
		Scenarios   int    `json:"scenarios"`
		Jobs        int    `json:"jobs"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
	}
	getJSON(t, ts.URL+"/api/v1/health", &health)
	if health.Status != "ok" || health.Experiments != len(core.Experiments()) || health.Scenarios != 2 {
		t.Errorf("health = %+v", health)
	}
	if len(health.CodeVersion) != 64 {
		t.Errorf("code_version = %q, want a sha256 digest", health.CodeVersion)
	}
	// Capacity advertisement: jobs is the resolved default pool size
	// (config jobs 0 resolves to GOMAXPROCS, never reported as 0).
	if health.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", health.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}
	if health.Jobs != runtime.GOMAXPROCS(0) {
		t.Errorf("jobs = %d, want resolved default %d", health.Jobs, runtime.GOMAXPROCS(0))
	}

	var exps []struct{ ID, Source, Title string }
	getJSON(t, ts.URL+"/api/v1/experiments", &exps)
	if len(exps) != len(core.Experiments()) || exps[0].ID != "fig1" {
		t.Errorf("experiments listing: %d entries, first %+v", len(exps), exps[0])
	}

	var scns []struct{ ID, Attack string }
	getJSON(t, ts.URL+"/api/v1/scenarios", &scns)
	if len(scns) != 2 || scns[0].ID != "scn-alpha" || scns[1].Attack != "replay" {
		t.Errorf("scenario listing: %+v", scns)
	}
}

func TestCampaignRequestValidation(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))
	cases := []struct {
		name, body, wantSub string
	}{
		{"malformed", `{`, "campaign request"},
		{"unknown field", `{"idz": ["fig1"]}`, "idz"},
		{"unknown id with suggestion", `{"ids": ["fig99"]}`, "did you mean"},
		{"unknown scenario id", `{"ids": ["scn-alhpa"]}`, "scn-alpha"},
		{"seed conflict", `{"seeds": [1], "seed_count": 2}`, "mutually exclusive"},
		{"zero seed count", `{"seed_count": 0}`, "seed_count"},
		{"negative jobs", `{"jobs": -1}`, "jobs"},
		{"bad recheck", `{"recheck": 1.5}`, "recheck"},
		{"bad format", `{"format": "xml"}`, "format"},
		{"negative deadline", `{"deadline_ms": -5}`, "deadline_ms"},
		{"trailing junk", `{} {}`, "trailing"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			resp, data := postCampaign(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %s, want 400\n%s", resp.Status, data)
			}
			if !strings.Contains(string(data), tc.wantSub) {
				t.Errorf("error %s does not mention %q", data, tc.wantSub)
			}
		})
	}
}

// decodeStream splits an NDJSON body into its typed events.
func decodeStream(t *testing.T, data []byte) (types []string, cells []struct {
	ID      string       `json:"id"`
	Seed    int64        `json:"seed"`
	Metrics []sim.Metric `json:"metrics"`
	Report  string       `json:"report"`
	Error   string       `json:"error"`
}, summary string) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		types = append(types, head.Type)
		switch head.Type {
		case "cell":
			var c struct {
				ID      string       `json:"id"`
				Seed    int64        `json:"seed"`
				Metrics []sim.Metric `json:"metrics"`
				Report  string       `json:"report"`
				Error   string       `json:"error"`
			}
			if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
				t.Fatal(err)
			}
			cells = append(cells, c)
		case "summary":
			var s struct {
				Text string `json:"text"`
			}
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				t.Fatal(err)
			}
			summary = s.Text
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, cells, summary
}

func TestCampaignStreamShapeAndGridOrder(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))
	resp, data := postCampaign(t, ts,
		`{"ids": ["fig3", "exp-ids"], "seed_base": 42, "seed_count": 2, "jobs": 4, "include_reports": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s\n%s", resp.Status, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	types, cells, summary := decodeStream(t, data)
	if len(types) < 4 || types[0] != "campaign" || types[len(types)-1] != "done" {
		t.Fatalf("stream shape: %v", types)
	}
	wantOrder := []struct {
		id   string
		seed int64
	}{{"fig3", 42}, {"fig3", 43}, {"exp-ids", 42}, {"exp-ids", 43}}
	if len(cells) != len(wantOrder) {
		t.Fatalf("%d cell events, want %d", len(cells), len(wantOrder))
	}
	for i, want := range wantOrder {
		if cells[i].ID != want.id || cells[i].Seed != want.seed {
			t.Errorf("cell %d = %s/%d, want %s/%d (grid order violated)",
				i, cells[i].ID, cells[i].Seed, want.id, want.seed)
		}
		if cells[i].Report == "" {
			t.Errorf("cell %d: include_reports set but report empty", i)
		}
		if len(cells[i].Metrics) == 0 {
			t.Errorf("cell %d: no metrics", i)
		}
		if cells[i].Error != "" {
			t.Errorf("cell %d: %s", i, cells[i].Error)
		}
	}
	if !strings.HasPrefix(summary, "campaign: 2 experiments × 2 seeds = 4 cells") {
		t.Errorf("summary text: %q...", summary[:min(len(summary), 80)])
	}
}

// TestCampaignTextMatchesCLISerial pins the daemon's central byte
// contract: the text-format response equals what `avsec campaign`
// prints to stdout for the same spec, computed here through the same
// campaign.Spec the CLI builds, serially and pool-free.
func TestCampaignTextMatchesCLISerial(t *testing.T) {
	t.Parallel()
	cfg := testConfig(t)
	ts := newTestServer(t, cfg)

	ids := []string{"fig3", "exp-ids", "scn-alpha"}
	scns, err := scenario.CompileDir(cfg.ScenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]core.Experiment)
	for _, e := range scns {
		byID[e.ID] = e
	}
	serial, err := campaign.Run(campaign.Spec{
		IDs:     ids,
		Seeds:   campaign.Seeds(42, 2),
		Jobs:    1,
		Recheck: 0.25,
		RunTyped: func(id string, seed int64) (string, []sim.Metric, error) {
			var r *core.RunResult
			var err error
			if e, ok := byID[id]; ok {
				r, err = core.RunResultOf(e, seed, core.RunOptions{})
			} else {
				r, err = core.RunExperimentResult(id, seed, core.RunOptions{})
			}
			if err != nil {
				return "", nil, err
			}
			return r.Report, r.Metrics, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := serial.RenderSummary()

	for _, jobs := range []int{1, 4} {
		body := fmt.Sprintf(`{"ids": ["fig3", "exp-ids", "scn-alpha"], "seed_count": 2, "jobs": %d, "format": "text"}`, jobs)
		resp, data := postCampaign(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("jobs=%d: status %s\n%s", jobs, resp.Status, data)
		}
		if string(data) != want {
			t.Errorf("jobs=%d: text response diverged from CLI-serial bytes\n got %q\nwant %q",
				jobs, string(data), want)
		}
	}
}

// TestCampaignCacheServesIdenticalBytes pins the cache half of the
// determinism contract: a repeated identical sweep must be served from
// the result cache (observable in the stats, and in the cached flags
// of a timings-mode stream) while producing byte-identical output.
func TestCampaignCacheServesIdenticalBytes(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))
	body := `{"ids": ["fig3", "scn-beta"], "seed_count": 2, "jobs": 2}`

	_, first := postCampaign(t, ts, body)
	var before struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &before)
	if before.Stats.Stores != 4 {
		t.Errorf("first sweep stored %d entries, want 4", before.Stats.Stores)
	}

	_, second := postCampaign(t, ts, body)
	if !bytes.Equal(first, second) {
		t.Error("repeated sweep produced different stream bytes")
	}
	var after struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &after)
	if after.Stats.Hits < before.Stats.Hits+4 {
		t.Errorf("repeated sweep was not served from cache: hits %d -> %d",
			before.Stats.Hits, after.Stats.Hits)
	}
	if after.Stats.Stores != before.Stats.Stores {
		t.Errorf("repeated sweep re-stored entries: %d -> %d", before.Stats.Stores, after.Stats.Stores)
	}

	// Timings mode tells the truth about origins without changing the
	// deterministic fields: every primary execution now comes from
	// cache.
	resp, data := postCampaign(t, ts, `{"ids": ["fig3", "scn-beta"], "seed_count": 2, "jobs": 2, "timings": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timings sweep: %s", resp.Status)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	cached := 0
	for sc.Scan() {
		var ev struct {
			Type   string `json:"type"`
			Cached *bool  `json:"cached"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "cell" {
			if ev.Cached == nil || !*ev.Cached {
				t.Errorf("timings cell event not marked cached: %s", sc.Text())
			} else {
				cached++
			}
		}
	}
	if cached != 4 {
		t.Errorf("%d cached cells, want 4", cached)
	}
}

// TestCampaignCacheOptOut pins that cache=false recomputes: stores
// don't grow, hits don't grow, bytes stay identical anyway.
func TestCampaignCacheOptOut(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))
	withCache := `{"ids": ["exp-ids"], "seed_count": 1, "jobs": 1}`
	without := `{"ids": ["exp-ids"], "seed_count": 1, "jobs": 1, "cache": false}`

	_, first := postCampaign(t, ts, withCache)
	var s1 struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &s1)

	_, second := postCampaign(t, ts, without)
	if !bytes.Equal(first, second) {
		t.Error("cache=false sweep produced different bytes")
	}
	var s2 struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &s2)
	if s2.Stats != s1.Stats {
		t.Errorf("cache=false sweep touched the cache: %+v -> %+v", s1.Stats, s2.Stats)
	}
}

// TestCampaignDisabledCache pins that a server with cache.disabled
// still serves identical bytes and reports the cache as off.
func TestCampaignDisabledCache(t *testing.T) {
	t.Parallel()
	cfg := testConfig(t)
	cfg.Cache.Disabled = true
	ts := newTestServer(t, cfg)

	var doc struct {
		Enabled bool `json:"enabled"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &doc)
	if doc.Enabled {
		t.Error("cache reported enabled on a cache-disabled server")
	}
	body := `{"ids": ["fig3"], "seed_count": 1, "jobs": 1}`
	_, first := postCampaign(t, ts, body)
	_, second := postCampaign(t, ts, body)
	if !bytes.Equal(first, second) {
		t.Error("cache-disabled sweeps diverged")
	}
}

// TestCorpusSelection pins corpus=true and the empty-corpus error.
func TestCorpusSelection(t *testing.T) {
	t.Parallel()
	cfg := testConfig(t)
	ts := newTestServer(t, cfg)
	resp, data := postCampaign(t, ts, `{"corpus": true, "seed_count": 1, "jobs": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus campaign: %s\n%s", resp.Status, data)
	}
	_, cells, _ := decodeStream(t, data)
	if len(cells) != 2 || cells[0].ID != "scn-alpha" || cells[1].ID != "scn-beta" {
		t.Errorf("corpus cells: %+v", cells)
	}

	empty := config.Default()
	empty.ScenarioDir = filepath.Join(t.TempDir(), "none")
	empty.Cache.Dir = filepath.Join(t.TempDir(), "cache")
	ts2 := newTestServer(t, empty)
	resp, data = postCampaign(t, ts2, `{"corpus": true}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "no scenarios") {
		t.Errorf("empty corpus: %s\n%s", resp.Status, data)
	}
}
