package server

import (
	"reflect"
	"testing"

	"autosec/internal/ext"
)

// TestExtensionsEndpointMatchesCatalog pins the no-drift property the
// extension registry was built for: GET /api/v1/extensions serves
// ext.Catalog() verbatim — the same document `avsec ext -json` renders
// — so any binary's CLI and daemon listings are identical sets by
// construction, and the health document's extensions field is the
// catalog's fingerprint.
func TestExtensionsEndpointMatchesCatalog(t *testing.T) {
	t.Parallel()
	ts := newTestServer(t, testConfig(t))

	var got ext.CatalogDoc
	getJSON(t, ts.URL+"/api/v1/extensions", &got)

	want := ext.Catalog()
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint = %q, want %q", got.Fingerprint, want.Fingerprint)
	}
	if len(got.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex digest", got.Fingerprint)
	}
	if !reflect.DeepEqual(got.Extensions, want.Extensions) {
		t.Errorf("served catalog diverges from ext.Catalog():\n got %d entries\nwant %d entries", len(got.Extensions), len(want.Extensions))
	}

	// Every extension kind of the refactor resolves through the one
	// catalog the endpoint serves.
	kinds := map[string]bool{}
	for _, m := range got.Extensions {
		kinds[m.Kind] = true
	}
	for _, k := range []string{"suite", "attack", "defence", "detector", "gendim", "experiment"} {
		if !kinds[k] {
			t.Errorf("catalog missing kind %q", k)
		}
	}

	var health struct {
		Extensions string `json:"extensions"`
	}
	getJSON(t, ts.URL+"/api/v1/health", &health)
	if health.Extensions != want.Fingerprint {
		t.Errorf("health extensions = %q, want catalog fingerprint %q", health.Extensions, want.Fingerprint)
	}
}
