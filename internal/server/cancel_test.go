package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the process goroutine count falls back to
// at most want, dumping all stacks on timeout. The slack the callers
// pass absorbs runtime bookkeeping goroutines; anything persistent
// above that is a leaked campaign worker.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, want <= %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

// TestCampaignDeadlineCancels pins the deadline_ms field: a campaign
// whose deadline passes stops starting cells, streams a terminal error
// event naming the cancellation cause (not one line per skipped cell),
// and leaves no worker goroutines behind.
func TestCampaignDeadlineCancels(t *testing.T) {
	ts := newTestServer(t, testConfig(t))
	client := &http.Client{}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	// 400 cheap cells with a 1-cell-scale deadline: most must be skipped.
	start := time.Now()
	resp, err := client.Post(ts.URL+"/api/v1/campaign", "application/json",
		strings.NewReader(`{"ids": ["fig3", "exp-ids"], "seed_count": 200, "jobs": 2, "recheck": 0, "deadline_ms": 60}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last struct {
		Type  string `json:"type"`
		Error string `json:"error"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Type != "error" {
		t.Fatalf("terminal event type %q, want error", last.Type)
	}
	if !strings.Contains(last.Error, "deadline") {
		t.Errorf("terminal error %q does not name the deadline", last.Error)
	}
	if strings.Count(last.Error, "skipped") > 1 {
		t.Errorf("terminal error enumerates skipped cells instead of the cause: %q", last.Error)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("deadline_ms=60 campaign ran %v", elapsed)
	}
	client.CloseIdleConnections()
	waitGoroutines(t, baseline+4)
}

// TestCampaignClientDisconnectNoLeak pins request-scoped cancellation:
// when the client goes away mid-stream, the per-request worker pool
// stops promptly and every goroutine the request spawned exits.
func TestCampaignClientDisconnectNoLeak(t *testing.T) {
	ts := newTestServer(t, testConfig(t))
	client := &http.Client{}
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/v1/campaign",
		strings.NewReader(`{"ids": ["fig3", "exp-ids"], "seed_count": 200, "jobs": 2, "recheck": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read just the campaign header, then vanish mid-stream.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	client.CloseIdleConnections()
	waitGoroutines(t, baseline+4)
}
