// Package server implements the avsecd HTTP service: the fleet-scale,
// long-running counterpart of the one-shot `avsec` CLI. It accepts
// campaign specifications over HTTP/JSON, shards their (experiment ×
// seed) cells and intra-cell replicate loops across worker goroutines
// through the existing two-level campaign.Spec.Pool budget, streams
// results back incrementally as NDJSON, and serves repeated sweeps
// from the content-addressed result cache (internal/resultcache).
//
// The daemon inherits the repo's determinism contract wholesale: for
// the same campaign spec, the streamed cell events, the aggregate
// summary, and the text-format response are byte-identical at every
// worker count and on every repetition — whether a cell was computed
// or served from cache is observable only through the opt-in timings
// fields and the cache statistics endpoint, never through the result
// bytes. docs/DAEMON.md is the API reference; the cross-check test in
// this package extends TestSerialParallelCrossCheck to the
// HTTP-sharded path.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"

	"autosec/internal/config"
	"autosec/internal/core"
	"autosec/internal/ext"
	"autosec/internal/resultcache"
	"autosec/internal/scenario"
)

// Server is the avsecd HTTP service: the experiment registry, the
// scenario corpus (loaded once at startup), and the result cache.
type Server struct {
	cfg   config.Config
	cache *resultcache.Cache // nil when disabled

	// Immutable after New: the merged experiment namespace.
	registry []core.Experiment
	scnExps  map[string]core.Experiment
	scnFps   map[string]string // scenario id -> spec fingerprint
	scnList  []scenarioInfo
	allIDs   []string // registry order, then scenarios by name
}

// scenarioInfo is one corpus entry as listed by /api/v1/scenarios.
type scenarioInfo struct {
	ID      string `json:"id"`
	Attack  string `json:"attack"`
	Title   string `json:"title"`
	Replica int    `json:"replicates"`
}

// New builds a server from cfg: it loads and compiles the scenario
// corpus under cfg.ScenarioDir (a missing directory loads zero
// scenarios, like the CLI) and opens the result cache unless disabled.
func New(cfg config.Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		registry: core.Experiments(),
		scnExps:  make(map[string]core.Experiment),
		scnFps:   make(map[string]string),
	}
	for _, e := range s.registry {
		s.allIDs = append(s.allIDs, e.ID)
	}
	specs, err := scenario.LoadDir(cfg.ScenarioDir)
	if err != nil {
		return nil, fmt.Errorf("server: scenario corpus %s: %w", cfg.ScenarioDir, err)
	}
	for _, sp := range specs {
		e, err := scenario.Compile(sp)
		if err != nil {
			return nil, fmt.Errorf("server: scenario %s: %w", sp.Name, err)
		}
		title := sp.Title
		if title == "" {
			title = scenario.AutoTitle(sp)
		}
		s.scnExps[e.ID] = e
		s.scnFps[e.ID] = sp.Fingerprint()
		s.scnList = append(s.scnList, scenarioInfo{
			ID: e.ID, Attack: sp.Attacker.Type, Title: title, Replica: sp.Run.Replicates,
		})
		s.allIDs = append(s.allIDs, e.ID)
	}
	sort.Slice(s.scnList, func(i, j int) bool { return s.scnList[i].ID < s.scnList[j].ID })
	if !cfg.Cache.Disabled {
		c, err := resultcache.New(cfg.Cache.Dir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler. It is a plain ServeMux so
// tests drive it through net/http/httptest and cmd/avsecd mounts it on
// its listener unchanged.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/health", s.handleHealth)
	mux.HandleFunc("GET /api/v1/extensions", s.handleExtensions)
	mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /api/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /api/v1/cache", s.handleCacheStats)
	mux.HandleFunc("POST /api/v1/campaign", s.handleCampaign)
	return mux
}

// writeJSON renders one indented JSON document. Every non-streaming
// response goes through it, so the API is uniformly pretty-printed and
// newline-terminated (curl-friendly).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error document of every non-2xx JSON reply.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleHealth reports liveness plus the identity and capacity facts a
// fleet coordinator needs: the code version that keys the cache (two
// workers may share cached results exactly when it matches), the
// namespace sizes, and the worker's compute capacity — the resolved
// default campaign pool size (`jobs`, never 0) and `gomaxprocs` — so
// chunk assignment can be weighted toward bigger workers
// (internal/fleet, docs/FLEET.md).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Status      string `json:"status"`
		CodeVersion string `json:"code_version"`
		Extensions  string `json:"extensions"`
		Experiments int    `json:"experiments"`
		Scenarios   int    `json:"scenarios"`
		Cache       string `json:"cache"`
		Jobs        int    `json:"jobs"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
	}{
		Status:      "ok",
		CodeVersion: resultcache.CodeVersion(),
		Extensions:  ext.Fingerprint(),
		Experiments: len(s.registry),
		Scenarios:   len(s.scnList),
		Cache:       "disabled",
		Jobs:        s.cfg.Jobs,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if doc.Jobs == 0 {
		doc.Jobs = doc.GOMAXPROCS
	}
	if s.cache != nil {
		doc.Cache = s.cache.Dir()
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleExtensions serves the extension catalog: every registered
// extension of every kind in this binary, drop-ins included, plus the
// set fingerprint the fleet handshake compares. The document is
// ext.Catalog() verbatim — the same call `avsec ext -json` renders —
// so the CLI and daemon listings cannot drift.
func (s *Server) handleExtensions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ext.Catalog())
}

// handleExperiments lists the registry in paper order.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type info struct {
		ID     string `json:"id"`
		Source string `json:"source"`
		Title  string `json:"title"`
	}
	out := make([]info, 0, len(s.registry))
	for _, e := range s.registry {
		out = append(out, info{ID: e.ID, Source: e.Source, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleScenarios lists the compiled corpus in name order.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	out := s.scnList
	if out == nil {
		out = []scenarioInfo{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCacheStats reports the result-cache counters; this endpoint —
// not the campaign stream — is how callers observe whether a sweep was
// served from cache, because the stream itself must stay byte-identical
// across recomputation and replay.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Enabled bool              `json:"enabled"`
		Dir     string            `json:"dir,omitempty"`
		Stats   resultcache.Stats `json:"stats"`
	}{}
	if s.cache != nil {
		doc.Enabled = true
		doc.Dir = s.cache.Dir()
		doc.Stats = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, doc)
}

// lookupExperiment resolves an id against the merged namespace.
func (s *Server) lookupExperiment(id string) (core.Experiment, bool) {
	for _, e := range s.registry {
		if e.ID == id {
			return e, true
		}
	}
	e, ok := s.scnExps[id]
	return e, ok
}

// cellCacheKey is the content address of one (experiment, seed) cell:
// the cache scheme version, the running binary's content hash, the
// experiment id, the seed, and — for DSL scenarios — the canonical
// spec fingerprint, so an edited scenario.ini can never be served a
// stale result. Registry experiments have no spec beyond the binary,
// so their fingerprint part is empty.
func (s *Server) cellCacheKey(id string, seed int64) string {
	return resultcache.Key("avsecd-cell", "1", resultcache.CodeVersion(),
		id, strconv.FormatInt(seed, 10), s.scnFps[id])
}
