package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/resultcache"
	"autosec/internal/sim"
)

// CampaignRequest is the JSON body of POST /api/v1/campaign. Every
// field is optional; the zero request runs the full registry at the
// CLI's default grid (8 consecutive seeds from 42) with the CLI's
// default recheck fraction, so `curl -d '{}'` and `avsec campaign`
// describe the same campaign. Unknown fields are rejected.
type CampaignRequest struct {
	// IDs selects experiments (registry or scn-* ids); empty means the
	// whole registry, or the whole corpus when Corpus is set.
	IDs []string `json:"ids"`
	// Corpus replaces the default registry grid with every scenario in
	// the corpus (ids may still be given explicitly alongside).
	Corpus bool `json:"corpus"`
	// Seeds lists explicit seeds. Mutually exclusive with
	// SeedBase/SeedCount.
	Seeds []int64 `json:"seeds"`
	// SeedBase and SeedCount describe the CLI's consecutive-seed
	// schedule: SeedCount seeds starting at SeedBase. Defaults 42 / 8.
	SeedBase  *int64 `json:"seed_base"`
	SeedCount *int   `json:"seed_count"`
	// Jobs bounds this campaign's worker pool: 0 means the server
	// default (config jobs, itself 0 = GOMAXPROCS). Result bytes never
	// depend on it.
	Jobs int `json:"jobs"`
	// Recheck is the determinism self-check fraction in [0, 1];
	// nil means the CLI default 0.25.
	Recheck *float64 `json:"recheck"`
	// Cache opts this campaign out of the result cache when false;
	// nil means "use the cache if the server has one".
	Cache *bool `json:"cache"`
	// IncludeReports adds each cell's full report text to its stream
	// event (deterministic, but large).
	IncludeReports bool `json:"include_reports"`
	// Timings adds wall-clock and cache-origin fields to the stream.
	// Like the CLI's -timings flag it is opt-in because it breaks the
	// byte-identity of otherwise identical campaigns.
	Timings bool `json:"timings"`
	// DeadlineMS bounds this campaign's wall time in milliseconds; 0
	// means none. When the deadline passes (or the client disconnects),
	// cells that have not started are skipped and the stream ends with
	// an error event — the per-chunk timeout a fleet coordinator
	// (internal/fleet) uses to re-dispatch hung work elsewhere.
	DeadlineMS int `json:"deadline_ms"`
	// Format selects the response body: "ndjson" (default) streams
	// one event per line; "text" returns exactly the bytes `avsec
	// campaign` prints to stdout for the same spec.
	Format string `json:"format"`
}

// campaignPlan is a validated, fully-defaulted request.
type campaignPlan struct {
	ids     []string
	seeds   []int64
	jobs    int
	recheck float64
	cache   *resultcache.Cache // nil = don't cache this campaign
	req     CampaignRequest
}

// planCampaign validates req against the server's namespaces and fills
// defaults. All failures are reported before any work starts, so a bad
// request never occupies the pool.
func (s *Server) planCampaign(req CampaignRequest) (*campaignPlan, error) {
	p := &campaignPlan{req: req}

	switch req.Format {
	case "", "ndjson", "text":
	default:
		return nil, fmt.Errorf("format %q is not one of ndjson, text", req.Format)
	}

	// Experiment selection mirrors `avsec campaign`: explicit ids win;
	// otherwise the registry, or the corpus under corpus=true.
	switch {
	case len(req.IDs) > 0:
		for _, id := range req.IDs {
			if _, ok := s.lookupExperiment(id); !ok {
				msg := fmt.Sprintf("unknown experiment %q", id)
				if sug := core.SuggestIDs(id, s.allIDs, 3); len(sug) > 0 {
					msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(sug, ", "))
				}
				return nil, fmt.Errorf("%s", msg)
			}
		}
		p.ids = req.IDs
	case req.Corpus:
		if len(s.scnList) == 0 {
			return nil, fmt.Errorf("corpus requested but the server loaded no scenarios (scenario_dir %q)", s.cfg.ScenarioDir)
		}
		for _, si := range s.scnList {
			p.ids = append(p.ids, si.ID)
		}
	default:
		for _, e := range s.registry {
			p.ids = append(p.ids, e.ID)
		}
	}

	// Seed schedule: explicit list, or the consecutive-seed form.
	switch {
	case len(req.Seeds) > 0:
		if req.SeedBase != nil || req.SeedCount != nil {
			return nil, fmt.Errorf("seeds and seed_base/seed_count are mutually exclusive")
		}
		p.seeds = req.Seeds
	default:
		base := int64(42)
		count := 8
		if req.SeedBase != nil {
			base = *req.SeedBase
		}
		if req.SeedCount != nil {
			count = *req.SeedCount
		}
		if count < 1 {
			return nil, fmt.Errorf("seed_count must be >= 1, got %d", count)
		}
		p.seeds = campaign.Seeds(base, count)
	}

	if req.Jobs < 0 {
		return nil, fmt.Errorf("jobs must be >= 0, got %d", req.Jobs)
	}
	p.jobs = req.Jobs
	if p.jobs == 0 {
		p.jobs = s.cfg.Jobs
	}
	if p.jobs == 0 {
		p.jobs = runtime.GOMAXPROCS(0)
	}

	p.recheck = 0.25
	if req.Recheck != nil {
		p.recheck = *req.Recheck
	}
	if p.recheck < 0 || p.recheck > 1 {
		return nil, fmt.Errorf("recheck fraction %v outside [0, 1]", p.recheck)
	}

	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("deadline_ms must be >= 0, got %d", req.DeadlineMS)
	}

	p.cache = s.cache
	if req.Cache != nil && !*req.Cache {
		p.cache = nil
	}
	return p, nil
}

// cellKey identifies one grid cell in the per-campaign bookkeeping.
type cellKey struct {
	id   string
	seed int64
}

// typedRun adapts the merged experiment namespace to the campaign
// pool, with the result cache in front: a hit replays the stored
// report and metric stream (byte-identical to recomputation by the
// determinism contract); a miss computes through the shared worker
// pool and stores. origins records, per cell, whether its *first*
// execution came from cache — the recheck's second call must not
// overwrite it, so the opt-in timings fields tell the truth about
// where the primary result came from.
func (p *campaignPlan) typedRun(s *Server, pool *sim.WorkerPool, origins *sync.Map) campaign.TypedRunFunc {
	return func(id string, seed int64) (string, []sim.Metric, error) {
		var key string
		if p.cache != nil {
			key = s.cellCacheKey(id, seed)
			if e, ok := p.cache.Get(key); ok {
				origins.LoadOrStore(cellKey{id, seed}, true)
				return e.Report, e.Metrics, nil
			}
		}
		origins.LoadOrStore(cellKey{id, seed}, false)
		var r *core.RunResult
		var err error
		if e, ok := s.scnExps[id]; ok {
			r, err = core.RunResultOf(e, seed, core.RunOptions{Pool: pool})
		} else {
			r, err = core.RunExperimentResult(id, seed, core.RunOptions{Pool: pool})
		}
		if err != nil {
			return "", nil, err
		}
		if p.cache != nil {
			// A failed store only costs the next sweep a recompute.
			p.cache.Put(key, &resultcache.Entry{Report: r.Report, Metrics: r.Metrics})
		}
		return r.Report, r.Metrics, nil
	}
}

// Stream event documents. Field order is fixed by the struct layout,
// which is what makes the NDJSON stream byte-comparable across runs.
type evCampaign struct {
	Type        string   `json:"type"` // "campaign"
	Experiments []string `json:"experiments"`
	Seeds       []int64  `json:"seeds"`
	Cells       int      `json:"cells"`
	Recheck     float64  `json:"recheck"`
}

type evCell struct {
	Type    string       `json:"type"` // "cell"
	ID      string       `json:"id"`
	Seed    int64        `json:"seed"`
	Metrics []sim.Metric `json:"metrics"`
	Report  string       `json:"report,omitempty"`
	Error   string       `json:"error,omitempty"`
	// Timings-mode fields; omitted (and the stream byte-identical)
	// unless the request sets timings.
	Cached    *bool    `json:"cached,omitempty"`
	ElapsedMS *float64 `json:"elapsed_ms,omitempty"`
}

type evSummary struct {
	Type string `json:"type"` // "summary"
	Text string `json:"text"`
}

type evDone struct {
	Type        string `json:"type"` // "done"
	Cells       int    `json:"cells"`
	Rechecked   int    `json:"rechecked"`
	Divergences int    `json:"divergences"`
	// Timings-mode fields.
	CacheHits   *int     `json:"cache_hits,omitempty"`
	CacheMisses *int     `json:"cache_misses,omitempty"`
	ElapsedMS   *float64 `json:"elapsed_ms,omitempty"`
}

type evError struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// handleCampaign executes one campaign request. The NDJSON stream
// emits a campaign header, one cell event per grid cell in grid order
// (streamed as soon as the cell and its predecessors finish, however
// the pool schedules them), the aggregate summary — byte-identical to
// `avsec campaign` stdout for the same spec — and a final done event.
// The text format skips the events and returns the summary bytes
// alone.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req CampaignRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "campaign request: %v", err)
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "campaign request: trailing data after the request object")
		return
	}
	plan, err := s.planCampaign(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "campaign request: %v", err)
		return
	}

	// Request-scoped cancellation: a client disconnect cancels
	// r.Context(), and an optional deadline_ms bounds the campaign's
	// wall time. Either way the per-request pool stops starting new
	// cells immediately and the handler returns as soon as in-flight
	// cells finish — no goroutine outlives its request
	// (TestCampaignClientDisconnectNoLeak).
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	pool := sim.NewWorkerPool(plan.jobs)
	var origins sync.Map
	byID := make(map[string]core.Experiment, len(plan.ids))
	for _, id := range plan.ids {
		e, _ := s.lookupExperiment(id)
		byID[id] = e
	}
	spec := campaign.Spec{
		IDs:      plan.ids,
		Seeds:    plan.seeds,
		Jobs:     plan.jobs,
		Context:  ctx,
		Pool:     pool,
		Recheck:  plan.recheck,
		RunTyped: plan.typedRun(s, pool, &origins),
		CostHint: func(id string) int { return byID[id].Cost },
	}

	if plan.req.Format == "text" {
		res, runErr := campaign.Run(spec)
		if runErr != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				runErr = fmt.Errorf("canceled: %w", ctxErr)
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusInternalServerError)
			if res != nil {
				fmt.Fprint(w, res.RenderSummary())
			}
			fmt.Fprintf(w, "campaign failed: %v\n", runErr)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.RenderSummary())
		return
	}

	// NDJSON stream. From the first event on, the status line is
	// committed; failures surface as a terminal error event.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	emit(evCampaign{Type: "campaign", Experiments: plan.ids, Seeds: plan.seeds,
		Cells: len(plan.ids) * len(plan.seeds), Recheck: plan.recheck})
	start := time.Now()
	spec.OnCell = func(c campaign.CellResult) {
		ev := evCell{Type: "cell", ID: c.ID, Seed: c.Seed, Metrics: c.Metrics}
		if ev.Metrics == nil {
			ev.Metrics = []sim.Metric{}
		}
		if plan.req.IncludeReports {
			ev.Report = c.Report
		}
		if c.Err != nil {
			ev.Error = c.Err.Error()
		}
		if plan.req.Timings {
			cached := false
			if v, ok := origins.Load(cellKey{c.ID, c.Seed}); ok {
				cached = v.(bool)
			}
			ms := float64(c.Elapsed) / float64(time.Millisecond)
			ev.Cached = &cached
			ev.ElapsedMS = &ms
		}
		emit(ev)
	}
	res, runErr := campaign.Run(spec)
	if res != nil {
		emit(evSummary{Type: "summary", Text: res.RenderSummary()})
	}
	if runErr != nil {
		// A canceled campaign fails one joined error per skipped cell;
		// report the cause once instead of a page of "skipped" lines.
		msg := runErr.Error()
		if ctxErr := ctx.Err(); ctxErr != nil {
			msg = fmt.Sprintf("campaign canceled: %v", ctxErr)
		}
		emit(evError{Type: "error", Error: msg})
		return
	}
	done := evDone{Type: "done", Cells: len(res.Cells),
		Rechecked: res.Rechecked(), Divergences: res.Divergences()}
	if plan.req.Timings {
		hits, misses := 0, 0
		origins.Range(func(_, v any) bool {
			if v.(bool) {
				hits++
			} else {
				misses++
			}
			return true
		})
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		done.CacheHits = &hits
		done.CacheMisses = &misses
		done.ElapsedMS = &ms
	}
	emit(done)
}
