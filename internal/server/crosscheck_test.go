package server

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"testing"

	"autosec/internal/campaign"
	"autosec/internal/core"
	"autosec/internal/sim"
)

// TestSerialParallelCrossCheckHTTP extends the replicate-pool
// cross-check (internal/core's TestSerialParallelCrossCheck, same CI
// -run pattern) to the HTTP-sharded path: for the full registry, the
// daemon's campaign output must be byte-identical to `avsec campaign`
// serial output at every worker count, and a repeated identical sweep
// must be served from the result cache while producing the same bytes
// again. This is the daemon's determinism contract, end to end: cells
// and replicates shard across worker goroutines through the two-level
// pool budget, and none of it may be observable in the result.
func TestSerialParallelCrossCheckHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry HTTP cross-check is not short")
	}
	cfg := testConfig(t)
	ts := newTestServer(t, cfg)

	// The serial baseline: the exact campaign.Spec `avsec campaign
	// -seeds 2 -jobs 1` builds, run pool-free in-process.
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	serial, err := campaign.Run(campaign.Spec{
		IDs:     ids,
		Seeds:   campaign.Seeds(42, 2),
		Jobs:    1,
		Recheck: 0.25,
		RunTyped: func(id string, seed int64) (string, []sim.Metric, error) {
			r, err := core.RunExperimentResult(id, seed, core.RunOptions{})
			if err != nil {
				return "", nil, err
			}
			return r.Report, r.Metrics, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := serial.RenderSummary()

	// The sharded path at 1, 2, and GOMAXPROCS workers: every text
	// response must carry the serial bytes.
	for _, jobs := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		body := fmt.Sprintf(`{"seed_count": 2, "jobs": %d, "format": "text"}`, jobs)
		resp, data := postCampaign(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("jobs=%d: %s\n%s", jobs, resp.Status, data)
		}
		if string(data) != want {
			t.Errorf("jobs=%d: HTTP-sharded output diverged from serial CLI output\nfirst difference: %s",
				jobs, firstDiff(want, string(data)))
		}
	}

	// The NDJSON stream is likewise jobs-invariant...
	_, stream2 := postCampaign(t, ts, `{"seed_count": 2, "jobs": 2}`)
	_, streamN := postCampaign(t, ts, fmt.Sprintf(`{"seed_count": 2, "jobs": %d}`, runtime.GOMAXPROCS(0)))
	if !bytes.Equal(stream2, streamN) {
		t.Error("NDJSON stream bytes differ between worker counts")
	}

	// ...and by now every cell is cached: the repeat sweep must hit the
	// cache for all 56 cells and still produce identical bytes.
	var before struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &before)
	_, repeat := postCampaign(t, ts, `{"seed_count": 2, "jobs": 2}`)
	if !bytes.Equal(stream2, repeat) {
		t.Error("cache-served sweep bytes differ from computed sweep bytes")
	}
	var after struct {
		Stats struct{ Hits, Misses, Stores uint64 } `json:"stats"`
	}
	getJSON(t, ts.URL+"/api/v1/cache", &after)
	cells := uint64(len(ids) * 2)
	if after.Stats.Hits < before.Stats.Hits+cells {
		t.Errorf("repeat sweep recomputed instead of hitting the cache: hits %d -> %d (want >= +%d)",
			before.Stats.Hits, after.Stats.Hits, cells)
	}
	if after.Stats.Stores != before.Stats.Stores {
		t.Errorf("repeat sweep stored new entries: %d -> %d", before.Stats.Stores, after.Stats.Stores)
	}
}

// firstDiff locates the first diverging byte for a readable failure.
func firstDiff(a, b string) string {
	off := 0
	for off < len(a) && off < len(b) && a[off] == b[off] {
		off++
	}
	end := func(s string) string {
		e := off + 32
		if e > len(s) {
			e = len(s)
		}
		return s[off:e]
	}
	return fmt.Sprintf("byte %d: %q vs %q", off, end(a), end(b))
}
