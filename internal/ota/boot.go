package ota

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
)

// This file models the secure-boot chain of trust that anchors §IV-A's
// "system integrity for reconfiguration: ensuring that only trusted
// software and firmware can run": an immutable boot ROM holds the root
// public key and verifies the bootloader, which verifies the
// application; each stage refuses to hand over control to an
// unverified successor, so a persistent implant must break a signature,
// not just write flash.

// BootStage is one verified link in the chain.
type BootStage struct {
	Name  string
	Image []byte
	// Signature over sha256(Image) by the *previous* stage's signing
	// authority.
	Signature []byte
	// NextKey is the public key this stage uses to verify its
	// successor (embedded in the signed image, so it is itself
	// authenticated).
	NextKey ed25519.PublicKey
}

func stageDigest(name string, image []byte, nextKey ed25519.PublicKey) []byte {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(image)
	h.Write(nextKey)
	return h.Sum(nil)
}

// BuildStage signs a stage with the authority key that the previous
// stage trusts.
func BuildStage(authority *Signer, name string, image []byte, nextKey ed25519.PublicKey) *BootStage {
	s := &BootStage{Name: name, Image: append([]byte(nil), image...), NextKey: nextKey}
	s.Signature = ed25519.Sign(authority.priv, stageDigest(name, s.Image, nextKey))
	return s
}

// BootChain is the device's stored chain (mutable flash); the root key
// is the immutable ROM anchor.
type BootChain struct {
	RootKey ed25519.PublicKey
	Stages  []*BootStage
}

// BootResult reports how far the chain booted.
type BootResult struct {
	// Booted lists stage names that verified and ran, in order.
	Booted []string
	// HaltedAt is the first stage that failed verification ("" if the
	// whole chain booted).
	HaltedAt string
	Err      error
}

// Complete reports whether every stage booted.
func (r BootResult) Complete() bool { return r.HaltedAt == "" }

// Boot walks the chain: each stage is verified with the key provided by
// its predecessor (the ROM key for the first stage). Verification
// failure halts the boot at that stage — a fail-stop, not fail-open.
func (c *BootChain) Boot() BootResult {
	var res BootResult
	key := c.RootKey
	for _, stage := range c.Stages {
		if !ed25519.Verify(key, stageDigest(stage.Name, stage.Image, stage.NextKey), stage.Signature) {
			res.HaltedAt = stage.Name
			res.Err = fmt.Errorf("ota: boot stage %q failed verification", stage.Name)
			return res
		}
		res.Booted = append(res.Booted, stage.Name)
		key = stage.NextKey
	}
	return res
}
