// Package ota implements the over-the-air update pipeline that §IV-A's
// reconfiguration story requires in practice: signed update manifests
// with anti-rollback counters, image integrity by digest, A/B slot
// installation, and health-checked commit with automatic rollback — the
// mechanism that makes "software can be replaced, updated, or
// reconfigured after production" survive both attackers and bad
// releases.
//
// Exercised by experiment exp-ota.
package ota

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Manifest describes one update.
type Manifest struct {
	Component string
	Version   string
	// Counter is the monotonic anti-rollback counter: devices refuse
	// manifests whose counter does not exceed their installed one, so a
	// signed-but-old (vulnerable) release cannot be replayed.
	Counter   uint64
	ImageHash [32]byte
	Signature []byte
}

func (m *Manifest) tbs() []byte {
	buf := make([]byte, 0, len(m.Component)+len(m.Version)+8+32)
	buf = append(buf, m.Component...)
	buf = append(buf, 0)
	buf = append(buf, m.Version...)
	buf = append(buf, 0)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], m.Counter)
	buf = append(buf, ctr[:]...)
	buf = append(buf, m.ImageHash[:]...)
	return buf
}

// Signer is the vendor's release-signing identity.
type Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner derives a signer from a 32-byte seed.
func NewSigner(seed []byte) (*Signer, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("ota: seed must be %d bytes", ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
}

// PublicKey is the anchor provisioned into devices.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.pub }

// Release builds and signs a manifest for an image.
func (s *Signer) Release(component, version string, counter uint64, image []byte) *Manifest {
	m := &Manifest{
		Component: component,
		Version:   version,
		Counter:   counter,
		ImageHash: sha256.Sum256(image),
	}
	m.Signature = ed25519.Sign(s.priv, m.tbs())
	return m
}

// Slot is one of the device's two firmware banks.
type Slot struct {
	Version string
	Counter uint64
	Image   []byte
	Valid   bool
}

// Device is the updatable ECU with A/B slots.
type Device struct {
	Component string
	anchor    ed25519.PublicKey

	slots   [2]Slot
	active  int
	pending bool // standby installed, awaiting health-checked boot
	// Log records update lifecycle events.
	Log []string
}

// NewDevice provisions a device running the given factory image.
func NewDevice(component string, anchor ed25519.PublicKey, factory *Manifest, image []byte) (*Device, error) {
	d := &Device{Component: component, anchor: anchor}
	if err := d.verify(factory, image); err != nil {
		return nil, fmt.Errorf("ota: factory image: %w", err)
	}
	d.slots[0] = Slot{Version: factory.Version, Counter: factory.Counter, Image: append([]byte(nil), image...), Valid: true}
	d.active = 0
	return d, nil
}

// ActiveVersion returns the running firmware version.
func (d *Device) ActiveVersion() string { return d.slots[d.active].Version }

// verify checks a manifest+image pair against the anchor and rollback
// counter.
func (d *Device) verify(m *Manifest, image []byte) error {
	if m.Component != d.Component {
		return fmt.Errorf("manifest for %q, device is %q", m.Component, d.Component)
	}
	if !ed25519.Verify(d.anchor, m.tbs(), m.Signature) {
		return fmt.Errorf("manifest signature invalid")
	}
	if sha256.Sum256(image) != m.ImageHash {
		return fmt.Errorf("image digest mismatch")
	}
	return nil
}

// Install verifies and stages an update into the standby slot. It does
// not switch; Boot does, under a health check.
func (d *Device) Install(m *Manifest, image []byte) error {
	if err := d.verify(m, image); err != nil {
		d.Log = append(d.Log, "REJECT install: "+err.Error())
		return fmt.Errorf("ota: %w", err)
	}
	if m.Counter <= d.slots[d.active].Counter {
		d.Log = append(d.Log, fmt.Sprintf("REJECT rollback install (counter %d <= active %d)", m.Counter, d.slots[d.active].Counter))
		return fmt.Errorf("ota: anti-rollback: manifest counter %d not above installed %d", m.Counter, d.slots[d.active].Counter)
	}
	standby := 1 - d.active
	d.slots[standby] = Slot{Version: m.Version, Counter: m.Counter, Image: append([]byte(nil), image...), Valid: true}
	d.pending = true
	d.Log = append(d.Log, fmt.Sprintf("STAGE %s (counter %d) in slot %d", m.Version, m.Counter, standby))
	return nil
}

// Boot attempts to activate a pending update: it switches to the standby
// slot and runs the health check. On failure it rolls back to the
// previous slot and marks the bad slot invalid. It returns the running
// version after the dust settles.
func (d *Device) Boot(healthy func(image []byte) bool) string {
	if !d.pending {
		return d.ActiveVersion()
	}
	d.pending = false
	previous := d.active
	candidate := 1 - d.active
	d.active = candidate
	if healthy == nil || healthy(d.slots[candidate].Image) {
		d.Log = append(d.Log, fmt.Sprintf("COMMIT %s", d.slots[candidate].Version))
		return d.ActiveVersion()
	}
	// Watchdog rollback.
	d.active = previous
	d.slots[candidate].Valid = false
	d.Log = append(d.Log, fmt.Sprintf("ROLLBACK to %s (health check failed)", d.slots[previous].Version))
	return d.ActiveVersion()
}

// Pending reports whether a staged update awaits Boot.
func (d *Device) Pending() bool { return d.pending }
