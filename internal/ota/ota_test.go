package ota

import (
	"strings"
	"testing"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func fixture(t *testing.T) (*Signer, *Device) {
	t.Helper()
	signer, err := NewSigner(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	factoryImage := []byte("brake-ctrl firmware 1.0")
	factory := signer.Release("brake-ctrl", "1.0", 1, factoryImage)
	dev, err := NewDevice("brake-ctrl", signer.PublicKey(), factory, factoryImage)
	if err != nil {
		t.Fatal(err)
	}
	return signer, dev
}

func TestHappyPathUpdate(t *testing.T) {
	signer, dev := fixture(t)
	img := []byte("brake-ctrl firmware 2.0")
	m := signer.Release("brake-ctrl", "2.0", 2, img)
	if err := dev.Install(m, img); err != nil {
		t.Fatal(err)
	}
	if !dev.Pending() {
		t.Error("no pending update after install")
	}
	if got := dev.Boot(func([]byte) bool { return true }); got != "2.0" {
		t.Errorf("running %s after commit", got)
	}
	if dev.Pending() {
		t.Error("still pending after boot")
	}
}

func TestForgedManifestRejected(t *testing.T) {
	_, dev := fixture(t)
	attacker, err := NewSigner(seed(9))
	if err != nil {
		t.Fatal(err)
	}
	img := []byte("malware 6.6")
	m := attacker.Release("brake-ctrl", "6.6", 99, img)
	if err := dev.Install(m, img); err == nil {
		t.Error("manifest from wrong signer accepted")
	}
	if dev.ActiveVersion() != "1.0" {
		t.Error("device changed state")
	}
}

func TestCorruptImageRejected(t *testing.T) {
	signer, dev := fixture(t)
	img := []byte("brake-ctrl firmware 2.0")
	m := signer.Release("brake-ctrl", "2.0", 2, img)
	corrupted := append([]byte(nil), img...)
	corrupted[0] ^= 1
	if err := dev.Install(m, corrupted); err == nil {
		t.Error("corrupted image accepted")
	}
}

func TestAntiRollback(t *testing.T) {
	signer, dev := fixture(t)
	// Update to 2.0 / counter 2.
	img2 := []byte("fw 2.0")
	if err := dev.Install(signer.Release("brake-ctrl", "2.0", 2, img2), img2); err != nil {
		t.Fatal(err)
	}
	dev.Boot(nil)
	// An old but *validly signed* 1.5 release with counter 1: the
	// downgrade attack the counter exists to stop.
	img15 := []byte("fw 1.5 (vulnerable)")
	old := signer.Release("brake-ctrl", "1.5", 1, img15)
	if err := dev.Install(old, img15); err == nil {
		t.Error("rollback to older counter accepted")
	}
	// Equal counter also rejected.
	img2b := []byte("fw 2.0b")
	if err := dev.Install(signer.Release("brake-ctrl", "2.0b", 2, img2b), img2b); err == nil {
		t.Error("equal counter accepted")
	}
}

func TestWrongComponentRejected(t *testing.T) {
	signer, dev := fixture(t)
	img := []byte("climate fw")
	m := signer.Release("climate-ctrl", "2.0", 2, img)
	if err := dev.Install(m, img); err == nil {
		t.Error("manifest for another component accepted")
	}
}

func TestHealthCheckRollback(t *testing.T) {
	signer, dev := fixture(t)
	img := []byte("fw 2.0 that bootloops")
	if err := dev.Install(signer.Release("brake-ctrl", "2.0", 2, img), img); err != nil {
		t.Fatal(err)
	}
	got := dev.Boot(func(image []byte) bool { return false })
	if got != "1.0" {
		t.Errorf("running %s after failed health check, want 1.0", got)
	}
	logged := strings.Join(dev.Log, "\n")
	if !strings.Contains(logged, "ROLLBACK") {
		t.Errorf("rollback not logged:\n%s", logged)
	}
	// Recovery: a fixed release with a higher counter installs fine.
	img3 := []byte("fw 2.1 fixed")
	if err := dev.Install(signer.Release("brake-ctrl", "2.1", 3, img3), img3); err != nil {
		t.Fatal(err)
	}
	if got := dev.Boot(func([]byte) bool { return true }); got != "2.1" {
		t.Errorf("running %s after fixed release", got)
	}
}

func TestBootWithoutPendingIsNoOp(t *testing.T) {
	_, dev := fixture(t)
	if got := dev.Boot(nil); got != "1.0" {
		t.Errorf("idle boot changed version to %s", got)
	}
}

func TestNewDeviceValidation(t *testing.T) {
	signer, err := NewSigner(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	img := []byte("fw")
	m := signer.Release("c", "1.0", 1, img)
	if _, err := NewDevice("c", signer.PublicKey(), m, []byte("other")); err == nil {
		t.Error("factory image mismatch accepted")
	}
	if _, err := NewSigner([]byte("short")); err == nil {
		t.Error("short seed accepted")
	}
}
