package ota

import (
	"testing"
)

func buildChain(t *testing.T) (*Signer, *Signer, *BootChain) {
	t.Helper()
	rom, err := NewSigner(seed(1)) // ROM-anchored root authority
	if err != nil {
		t.Fatal(err)
	}
	osVendor, err := NewSigner(seed(2)) // bootloader's key for the app
	if err != nil {
		t.Fatal(err)
	}
	bootloader := BuildStage(rom, "bootloader", []byte("u-boot 2025.01"), osVendor.PublicKey())
	app := BuildStage(osVendor, "vehicle-os", []byte("vehicle os 4.2"), nil)
	chain := &BootChain{RootKey: rom.PublicKey(), Stages: []*BootStage{bootloader, app}}
	return rom, osVendor, chain
}

func TestChainBootsWhenIntact(t *testing.T) {
	_, _, chain := buildChain(t)
	res := chain.Boot()
	if !res.Complete() {
		t.Fatalf("halted at %q: %v", res.HaltedAt, res.Err)
	}
	if len(res.Booted) != 2 || res.Booted[0] != "bootloader" || res.Booted[1] != "vehicle-os" {
		t.Errorf("boot order %v", res.Booted)
	}
}

func TestTamperedAppHaltsAtApp(t *testing.T) {
	_, _, chain := buildChain(t)
	chain.Stages[1].Image = []byte("vehicle os 4.2 + implant")
	res := chain.Boot()
	if res.Complete() || res.HaltedAt != "vehicle-os" {
		t.Errorf("result %+v", res)
	}
	// The bootloader still ran — the halt is exactly at the bad link.
	if len(res.Booted) != 1 {
		t.Errorf("booted %v", res.Booted)
	}
}

func TestTamperedBootloaderHaltsImmediately(t *testing.T) {
	_, _, chain := buildChain(t)
	chain.Stages[0].Image = append(chain.Stages[0].Image, 0x90)
	res := chain.Boot()
	if res.Complete() || res.HaltedAt != "bootloader" || len(res.Booted) != 0 {
		t.Errorf("result %+v", res)
	}
}

func TestKeySubstitutionDetected(t *testing.T) {
	// The implant re-signs the app with its own key and swaps NextKey
	// in the bootloader stage — but NextKey is covered by the
	// bootloader's signature from the ROM authority, so the swap breaks
	// stage 1 verification.
	_, _, chain := buildChain(t)
	attacker, err := NewSigner(seed(66))
	if err != nil {
		t.Fatal(err)
	}
	chain.Stages[0].NextKey = attacker.PublicKey()
	chain.Stages[1] = BuildStage(attacker, "vehicle-os", []byte("evil os"), nil)
	res := chain.Boot()
	if res.Complete() {
		t.Fatal("key-substitution chain booted")
	}
	if res.HaltedAt != "bootloader" {
		t.Errorf("halted at %q, want bootloader (the NextKey swap breaks its signature)", res.HaltedAt)
	}
}

func TestFullReSignRequiresRootKey(t *testing.T) {
	// Even re-signing the whole chain fails without the ROM's private
	// key: the root of trust is immutable hardware.
	_, _, chain := buildChain(t)
	attacker, err := NewSigner(seed(66))
	if err != nil {
		t.Fatal(err)
	}
	chain.Stages[0] = BuildStage(attacker, "bootloader", []byte("evil loader"), attacker.PublicKey())
	chain.Stages[1] = BuildStage(attacker, "vehicle-os", []byte("evil os"), nil)
	if chain.Boot().Complete() {
		t.Fatal("attacker-signed chain booted against the ROM key")
	}
}

func TestThreeStageChain(t *testing.T) {
	rom, err := NewSigner(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	blVendor, err := NewSigner(seed(2))
	if err != nil {
		t.Fatal(err)
	}
	appVendor, err := NewSigner(seed(3))
	if err != nil {
		t.Fatal(err)
	}
	chain := &BootChain{RootKey: rom.PublicKey(), Stages: []*BootStage{
		BuildStage(rom, "spl", []byte("spl"), blVendor.PublicKey()),
		BuildStage(blVendor, "bootloader", []byte("bl"), appVendor.PublicKey()),
		BuildStage(appVendor, "app", []byte("app"), nil),
	}}
	res := chain.Boot()
	if !res.Complete() || len(res.Booted) != 3 {
		t.Errorf("three-stage boot: %+v", res)
	}
}
