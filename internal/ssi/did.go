// Package ssi implements self-sovereign identity for the
// software-defined-vehicle trust relationships of the paper's §IV:
// decentralized identifiers (DIDs) with Ed25519 keys, DID documents in
// an immutable verifiable data registry, verifiable credentials and
// presentations, multiple independent trust anchors with bounded
// accreditation chains, revocation lists, and offline verification
// bundles for the disconnected scenarios of ref [34].
//
// Timestamps are explicit int64 Unix-style seconds supplied by the
// caller (the simulation clock), never wall-clock time.
//
// Exercised by experiment fig7.
package ssi

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base32"
	"fmt"
	"sort"
	"strings"
)

// DID is a decentralized identifier, e.g. "did:auto:ABC...".
type DID string

// Method extracts the DID method ("auto", "web", ...).
func (d DID) Method() string {
	parts := strings.SplitN(string(d), ":", 3)
	if len(parts) < 3 || parts[0] != "did" {
		return ""
	}
	return parts[1]
}

// Valid reports whether the identifier is structurally a DID.
func (d DID) Valid() bool { return d.Method() != "" }

// KeyPair is an Ed25519 signing identity bound to a DID.
type KeyPair struct {
	DID     DID
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a key pair and its did:auto identifier from a
// deterministic seed (the simulation supplies seeds; production code
// would use crypto/rand).
func GenerateKeyPair(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("ssi: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	sum := sha256.Sum256(pub)
	id := base32.StdEncoding.WithPadding(base32.NoPadding).EncodeToString(sum[:16])
	return &KeyPair{
		DID:     DID("did:auto:" + id),
		Public:  pub,
		private: priv,
	}, nil
}

// WebDID derives a did:web-style identifier for the same key, anchored
// in a DNS name — the paper's point that SSI can reuse the TLS/web trust
// infrastructure.
func (k *KeyPair) WebDID(domain string) DID {
	return DID("did:web:" + domain)
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Document is a DID document: the public material a verifier resolves.
type Document struct {
	ID DID
	// PublicKey is the current verification key.
	PublicKey ed25519.PublicKey
	// Controller optionally names another DID that may rotate this
	// document's key.
	Controller DID
	// Services maps service names to endpoints (e.g. "telemetry" →
	// URL); informational.
	Services map[string]string
	// Version increments on each update.
	Version int
}

// NewDocument builds the genesis document for a key pair.
func NewDocument(k *KeyPair) *Document {
	return &Document{ID: k.DID, PublicKey: k.Public, Services: map[string]string{}, Version: 1}
}

// canonical serializes the document deterministically for hashing.
func (d *Document) canonical() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s\npk=%x\ncontroller=%s\nversion=%d\n", d.ID, d.PublicKey, d.Controller, d.Version)
	names := make([]string, 0, len(d.Services))
	for n := range d.Services {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "svc:%s=%s\n", n, d.Services[n])
	}
	return []byte(b.String())
}

// Hash returns the document digest used by the registry's chain.
func (d *Document) Hash() [32]byte { return sha256.Sum256(d.canonical()) }

// Clone deep-copies the document.
func (d *Document) Clone() *Document {
	c := *d
	c.PublicKey = append(ed25519.PublicKey(nil), d.PublicKey...)
	c.Services = make(map[string]string, len(d.Services))
	for k, v := range d.Services {
		c.Services[k] = v
	}
	return &c
}
