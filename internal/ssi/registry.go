package ssi

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
)

// Registry is the verifiable data registry of §IV: an append-only,
// hash-chained store of DID documents, "immutable, publicly available
// storage" in the paper's words. Updates append new versions; history is
// never rewritten, and the chain head authenticates the whole history.
type Registry struct {
	docs    map[DID][]*Document
	chain   [][32]byte // running hash chain over every accepted write
	head    [32]byte
	entries int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{docs: make(map[DID][]*Document)}
}

// Register appends the genesis document for a DID. It fails if the DID
// already exists (immutability) or the document is malformed.
func (r *Registry) Register(doc *Document) error {
	if !doc.ID.Valid() {
		return fmt.Errorf("ssi: invalid DID %q", doc.ID)
	}
	if len(doc.PublicKey) != ed25519.PublicKeySize {
		return fmt.Errorf("ssi: document for %s has no usable key", doc.ID)
	}
	if len(r.docs[doc.ID]) > 0 {
		return fmt.Errorf("ssi: %s already registered (registry is append-only)", doc.ID)
	}
	r.append(doc)
	return nil
}

// Update appends a new document version. The update must be signed by
// the current key (or the controller's current key) to be accepted —
// self-sovereignty means only the subject rotates its own keys.
func (r *Registry) Update(doc *Document, sig []byte) error {
	history := r.docs[doc.ID]
	if len(history) == 0 {
		return fmt.Errorf("ssi: %s not registered", doc.ID)
	}
	current := history[len(history)-1]
	if doc.Version != current.Version+1 {
		return fmt.Errorf("ssi: version %d, expected %d", doc.Version, current.Version+1)
	}
	authority := current.PublicKey
	if current.Controller != "" {
		if ctrl, err := r.Resolve(current.Controller); err == nil {
			authority = ctrl.PublicKey
		}
	}
	digest := doc.Hash()
	if !ed25519.Verify(authority, digest[:], sig) {
		return fmt.Errorf("ssi: update of %s not signed by current authority", doc.ID)
	}
	r.append(doc)
	return nil
}

func (r *Registry) append(doc *Document) {
	cp := doc.Clone()
	r.docs[cp.ID] = append(r.docs[cp.ID], cp)
	h := cp.Hash()
	mix := sha256.Sum256(append(r.head[:], h[:]...))
	r.head = mix
	r.chain = append(r.chain, mix)
	r.entries++
}

// Resolve returns the latest document for the DID.
func (r *Registry) Resolve(id DID) (*Document, error) {
	history := r.docs[id]
	if len(history) == 0 {
		return nil, fmt.Errorf("ssi: %s not found", id)
	}
	return history[len(history)-1].Clone(), nil
}

// History returns all versions (oldest first).
func (r *Registry) History(id DID) []*Document {
	history := r.docs[id]
	out := make([]*Document, len(history))
	for i, d := range history {
		out[i] = d.Clone()
	}
	return out
}

// Head returns the current chain head; two registries with the same
// writes in the same order have equal heads — the auditability property.
func (r *Registry) Head() [32]byte { return r.head }

// Entries returns the number of accepted writes.
func (r *Registry) Entries() int { return r.entries }
