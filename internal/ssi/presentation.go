package ssi

import (
	"crypto/ed25519"
	"fmt"
	"strings"
)

// Presentation is a holder's proof of possession: the holder (credential
// subject) signs a verifier-chosen challenge together with the presented
// credential IDs, so a stolen credential cannot be replayed by a party
// without the subject's key.
type Presentation struct {
	Holder      DID
	Challenge   []byte
	Credentials []*Credential
	Signature   []byte
}

// Present builds a presentation over the given credentials for a
// challenge. Every credential's subject must be the holder.
func Present(holder *KeyPair, challenge []byte, creds ...*Credential) (*Presentation, error) {
	if len(creds) == 0 {
		return nil, fmt.Errorf("ssi: presentation needs at least one credential")
	}
	for _, c := range creds {
		if c.Subject != holder.DID {
			return nil, fmt.Errorf("ssi: credential %s is about %s, not holder %s", c.ID, c.Subject, holder.DID)
		}
	}
	p := &Presentation{Holder: holder.DID, Challenge: append([]byte(nil), challenge...), Credentials: creds}
	p.Signature = holder.Sign(p.canonical())
	return p, nil
}

func (p *Presentation) canonical() []byte {
	ids := make([]string, len(p.Credentials))
	for i, c := range p.Credentials {
		ids[i] = c.ID
	}
	return []byte(fmt.Sprintf("holder=%s\nchallenge=%x\ncreds=%s\n", p.Holder, p.Challenge, strings.Join(ids, ",")))
}

// VerifyPresentation checks holder possession and every carried
// credential. The challenge must equal what the verifier issued.
func (v *Verifier) VerifyPresentation(p *Presentation, challenge []byte, now int64) error {
	if string(p.Challenge) != string(challenge) {
		return fmt.Errorf("ssi: challenge mismatch (replayed presentation?)")
	}
	doc, err := v.Registry.Resolve(p.Holder)
	if err != nil {
		return fmt.Errorf("ssi: holder unresolvable: %w", err)
	}
	if !ed25519.Verify(doc.PublicKey, p.canonical(), p.Signature) {
		return fmt.Errorf("ssi: holder signature invalid")
	}
	for _, c := range p.Credentials {
		if c.Subject != p.Holder {
			return fmt.Errorf("ssi: credential %s not about holder", c.ID)
		}
		if err := v.Verify(c, now); err != nil {
			return err
		}
	}
	return nil
}

// OfflineBundle is a pre-fetched verification context: resolved DID
// documents and revocation snapshots, usable when the registry is
// unreachable (the paper's offline scenario, ref [34]). Staleness is
// bounded by MaxAge.
type OfflineBundle struct {
	Docs        map[DID]*Document
	Revocations map[DID]*RevocationList
	FetchedAt   int64
	MaxAge      int64
	Trust       *TrustRegistry
}

// NewOfflineBundle snapshots the documents and revocation lists needed
// to verify the given credentials later, offline.
func NewOfflineBundle(v *Verifier, creds []*Credential, now, maxAge int64) (*OfflineBundle, error) {
	b := &OfflineBundle{
		Docs:        map[DID]*Document{},
		Revocations: map[DID]*RevocationList{},
		FetchedAt:   now,
		MaxAge:      maxAge,
		Trust:       v.Trust,
	}
	addDoc := func(id DID) error {
		if _, ok := b.Docs[id]; ok {
			return nil
		}
		doc, err := v.Registry.Resolve(id)
		if err != nil {
			return err
		}
		b.Docs[id] = doc
		if rl, ok := v.Revocations[id]; ok {
			b.Revocations[id] = rl
		}
		return nil
	}
	for _, c := range creds {
		if err := addDoc(c.Issuer); err != nil {
			return nil, err
		}
		if err := addDoc(c.Subject); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// VerifyOffline validates a presentation with only the bundled material.
// It fails when the bundle is older than MaxAge — stale revocation data
// must not be trusted indefinitely.
func (b *OfflineBundle) VerifyOffline(p *Presentation, challenge []byte, now int64) error {
	if now-b.FetchedAt > b.MaxAge {
		return fmt.Errorf("ssi: offline bundle stale (%ds old, max %ds)", now-b.FetchedAt, b.MaxAge)
	}
	if string(p.Challenge) != string(challenge) {
		return fmt.Errorf("ssi: challenge mismatch")
	}
	holderDoc, ok := b.Docs[p.Holder]
	if !ok {
		return fmt.Errorf("ssi: holder %s not in bundle", p.Holder)
	}
	if !ed25519.Verify(holderDoc.PublicKey, p.canonical(), p.Signature) {
		return fmt.Errorf("ssi: holder signature invalid")
	}
	for _, c := range p.Credentials {
		issuerDoc, ok := b.Docs[c.Issuer]
		if !ok {
			return fmt.Errorf("ssi: issuer %s not in bundle", c.Issuer)
		}
		if !ed25519.Verify(issuerDoc.PublicKey, c.canonical(), c.Signature) {
			return fmt.Errorf("ssi: signature invalid on %s", c.ID)
		}
		if c.ExpiresAt != 0 && now > c.ExpiresAt {
			return fmt.Errorf("ssi: credential %s expired", c.ID)
		}
		if rl, ok := b.Revocations[c.Issuer]; ok && rl.Revoked[c.ID] {
			return fmt.Errorf("ssi: credential %s revoked", c.ID)
		}
		if !b.Trust.IsAnchor(c.Type, c.Issuer) {
			return fmt.Errorf("ssi: issuer %s not a bundled anchor for %s", c.Issuer, c.Type)
		}
	}
	return nil
}
