package ssi

import (
	"crypto/ed25519"
	"fmt"
	"sort"
	"strings"
)

// Credential is a verifiable credential: a set of claims about a subject
// DID, signed by an issuer DID. The paper's use cases carry claims like
// "software approved for hardware platform X" or "contract with charging
// provider Y".
type Credential struct {
	ID        string
	Type      string // e.g. "HardwareCompatibility", "ChargingContract"
	Issuer    DID
	Subject   DID
	Claims    map[string]string
	IssuedAt  int64 // simulation seconds
	ExpiresAt int64 // 0 = never
	Signature []byte
}

// canonical is the byte string the signature covers.
func (c *Credential) canonical() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%s\ntype=%s\nissuer=%s\nsubject=%s\niat=%d\nexp=%d\n",
		c.ID, c.Type, c.Issuer, c.Subject, c.IssuedAt, c.ExpiresAt)
	keys := make([]string, 0, len(c.Claims))
	for k := range c.Claims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "claim:%s=%s\n", k, c.Claims[k])
	}
	return []byte(b.String())
}

// Issue signs the credential with the issuer's key pair. The key's DID
// must match the credential's Issuer field.
func Issue(issuer *KeyPair, c *Credential) (*Credential, error) {
	if c.Issuer != issuer.DID {
		return nil, fmt.Errorf("ssi: credential names issuer %s but key is %s", c.Issuer, issuer.DID)
	}
	if c.ID == "" || c.Type == "" || !c.Subject.Valid() {
		return nil, fmt.Errorf("ssi: credential needs ID, type, and a valid subject")
	}
	signed := *c
	signed.Claims = cloneClaims(c.Claims)
	signed.Signature = issuer.Sign(signed.canonical())
	return &signed, nil
}

func cloneClaims(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RevocationList is an issuer-published set of revoked credential IDs.
type RevocationList struct {
	Issuer  DID
	Revoked map[string]bool
	// UpdatedAt is when the issuer last published (staleness for
	// offline verification).
	UpdatedAt int64
	Signature []byte
}

// NewRevocationList creates an empty signed list.
func NewRevocationList(issuer *KeyPair, now int64) *RevocationList {
	rl := &RevocationList{Issuer: issuer.DID, Revoked: map[string]bool{}, UpdatedAt: now}
	rl.Signature = issuer.Sign(rl.canonical())
	return rl
}

// Revoke adds a credential ID and re-signs.
func (rl *RevocationList) Revoke(issuer *KeyPair, credID string, now int64) error {
	if issuer.DID != rl.Issuer {
		return fmt.Errorf("ssi: only %s may update this revocation list", rl.Issuer)
	}
	rl.Revoked[credID] = true
	rl.UpdatedAt = now
	rl.Signature = issuer.Sign(rl.canonical())
	return nil
}

func (rl *RevocationList) canonical() []byte {
	ids := make([]string, 0, len(rl.Revoked))
	for id := range rl.Revoked {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return []byte(fmt.Sprintf("issuer=%s\nupdated=%d\nrevoked=%s\n", rl.Issuer, rl.UpdatedAt, strings.Join(ids, ",")))
}

// verifySignature checks the list against the issuer's public key.
func (rl *RevocationList) verifySignature(pk ed25519.PublicKey) bool {
	return ed25519.Verify(pk, rl.canonical(), rl.Signature)
}

// TrustRegistry maps credential types to the trust anchors accepted for
// them. "Interoperable services and multiple trust anchors exist due to
// different stakeholders" — each verifier configures its own.
type TrustRegistry struct {
	anchors map[string]map[DID]bool // credential type → anchor DIDs
	// MaxChainDepth bounds accreditation chains (anchor → intermediate
	// issuer → credential).
	MaxChainDepth int
}

// NewTrustRegistry returns an empty trust configuration.
func NewTrustRegistry() *TrustRegistry {
	return &TrustRegistry{anchors: make(map[string]map[DID]bool), MaxChainDepth: 3}
}

// AddAnchor trusts the DID as a root for the given credential type.
func (tr *TrustRegistry) AddAnchor(credType string, anchor DID) {
	if tr.anchors[credType] == nil {
		tr.anchors[credType] = make(map[DID]bool)
	}
	tr.anchors[credType][anchor] = true
}

// IsAnchor reports direct trust.
func (tr *TrustRegistry) IsAnchor(credType string, did DID) bool {
	return tr.anchors[credType][did]
}

// AccreditationType is the credential type anchors use to delegate
// issuing authority to intermediates.
const AccreditationType = "Accreditation"

// Verifier validates credentials against a registry, a trust
// configuration, and revocation lists.
type Verifier struct {
	Registry *Registry
	Trust    *TrustRegistry
	// Revocations indexes the latest known list per issuer.
	Revocations map[DID]*RevocationList
	// Accreditations holds known delegation credentials, consulted when
	// an issuer is not itself an anchor.
	Accreditations []*Credential
}

// NewVerifier builds a verifier.
func NewVerifier(reg *Registry, trust *TrustRegistry) *Verifier {
	return &Verifier{Registry: reg, Trust: trust, Revocations: make(map[DID]*RevocationList)}
}

// AddRevocationList installs an issuer's list after checking its
// signature against the registry.
func (v *Verifier) AddRevocationList(rl *RevocationList) error {
	doc, err := v.Registry.Resolve(rl.Issuer)
	if err != nil {
		return err
	}
	if !rl.verifySignature(doc.PublicKey) {
		return fmt.Errorf("ssi: revocation list signature invalid for %s", rl.Issuer)
	}
	v.Revocations[rl.Issuer] = rl
	return nil
}

// Verify checks a credential completely: signature against the issuer's
// registered key, validity window at the given time, revocation, and
// issuer trust (direct anchor or accreditation chain).
func (v *Verifier) Verify(c *Credential, now int64) error {
	if err := v.verifyIntegrity(c, now); err != nil {
		return err
	}
	return v.verifyTrust(c, now, v.Trust.MaxChainDepth)
}

func (v *Verifier) verifyIntegrity(c *Credential, now int64) error {
	doc, err := v.Registry.Resolve(c.Issuer)
	if err != nil {
		return fmt.Errorf("ssi: issuer unresolvable: %w", err)
	}
	if !ed25519.Verify(doc.PublicKey, c.canonical(), c.Signature) {
		return fmt.Errorf("ssi: signature invalid on %s", c.ID)
	}
	if c.ExpiresAt != 0 && now > c.ExpiresAt {
		return fmt.Errorf("ssi: credential %s expired at %d (now %d)", c.ID, c.ExpiresAt, now)
	}
	if now < c.IssuedAt {
		return fmt.Errorf("ssi: credential %s not yet valid", c.ID)
	}
	if rl, ok := v.Revocations[c.Issuer]; ok && rl.Revoked[c.ID] {
		return fmt.Errorf("ssi: credential %s revoked", c.ID)
	}
	return nil
}

func (v *Verifier) verifyTrust(c *Credential, now int64, depth int) error {
	if v.Trust.IsAnchor(c.Type, c.Issuer) {
		return nil
	}
	if depth <= 0 {
		return fmt.Errorf("ssi: accreditation chain too deep for %s", c.ID)
	}
	// Look for an accreditation that lets c.Issuer issue c.Type.
	for _, acc := range v.Accreditations {
		if acc.Type != AccreditationType || acc.Subject != c.Issuer {
			continue
		}
		if acc.Claims["can_issue"] != c.Type {
			continue
		}
		if err := v.verifyIntegrity(acc, now); err != nil {
			continue
		}
		// The accreditation itself must chain to an anchor for the
		// accreditation type — either directly or via more hops.
		if v.Trust.IsAnchor(AccreditationType, acc.Issuer) {
			return nil
		}
		if err := v.verifyTrust(acc, now, depth-1); err == nil {
			return nil
		}
	}
	return fmt.Errorf("ssi: issuer %s not trusted for %s", c.Issuer, c.Type)
}
