package ssi

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func seed(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func kp(t *testing.T, b byte) *KeyPair {
	t.Helper()
	k, err := GenerateKeyPair(seed(b))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestGenerateKeyPairAndDID(t *testing.T) {
	k := kp(t, 1)
	if !k.DID.Valid() || k.DID.Method() != "auto" {
		t.Errorf("DID %s", k.DID)
	}
	k2 := kp(t, 1)
	if k.DID != k2.DID {
		t.Error("same seed gave different DIDs")
	}
	k3 := kp(t, 2)
	if k.DID == k3.DID {
		t.Error("different seeds gave same DID")
	}
	if _, err := GenerateKeyPair([]byte("short")); err == nil {
		t.Error("short seed accepted")
	}
	if k.WebDID("oem.example.com") != "did:web:oem.example.com" {
		t.Error("web DID wrong")
	}
}

func TestDIDValidity(t *testing.T) {
	if DID("not-a-did").Valid() {
		t.Error("junk accepted")
	}
	if !DID("did:web:example.com").Valid() {
		t.Error("did:web rejected")
	}
}

func TestRegistryImmutableGenesis(t *testing.T) {
	r := NewRegistry()
	k := kp(t, 1)
	if err := r.Register(NewDocument(k)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewDocument(k)); err == nil {
		t.Error("double registration accepted")
	}
	doc, err := r.Resolve(k.DID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc.PublicKey, k.Public) {
		t.Error("resolved key differs")
	}
	if _, err := r.Resolve("did:auto:missing"); err == nil {
		t.Error("missing DID resolved")
	}
}

func TestRegistryUpdateRequiresCurrentKey(t *testing.T) {
	r := NewRegistry()
	k := kp(t, 1)
	if err := r.Register(NewDocument(k)); err != nil {
		t.Fatal(err)
	}
	rotated := kp(t, 9)
	v2 := NewDocument(k)
	v2.PublicKey = rotated.Public
	v2.Version = 2
	digest := v2.Hash()
	// Signed by the wrong key: rejected.
	wrong := kp(t, 5)
	if err := r.Update(v2, wrong.Sign(digest[:])); err == nil {
		t.Error("update signed by stranger accepted")
	}
	// Signed by the current key: accepted.
	if err := r.Update(v2, k.Sign(digest[:])); err != nil {
		t.Fatal(err)
	}
	doc, err := r.Resolve(k.DID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc.PublicKey, rotated.Public) {
		t.Error("rotation not applied")
	}
	if len(r.History(k.DID)) != 2 {
		t.Error("history length wrong")
	}
	// Wrong version numbering rejected.
	v3 := v2.Clone()
	v3.Version = 5
	d3 := v3.Hash()
	if err := r.Update(v3, rotated.Sign(d3[:])); err == nil {
		t.Error("version skip accepted")
	}
}

func TestRegistryChainHeadDeterministic(t *testing.T) {
	build := func() [32]byte {
		r := NewRegistry()
		for b := byte(1); b <= 5; b++ {
			k, _ := GenerateKeyPair(seed(b))
			_ = r.Register(NewDocument(k))
		}
		return r.Head()
	}
	if build() != build() {
		t.Error("same writes, different heads")
	}
}

func issueCompat(t *testing.T, issuer *KeyPair, subject DID, now int64) *Credential {
	t.Helper()
	c, err := Issue(issuer, &Credential{
		ID: "cred-1", Type: "HardwareCompatibility",
		Issuer: issuer.DID, Subject: subject,
		Claims:   map[string]string{"platform": "zc-gen3", "sw": "brake-ctrl-2.1"},
		IssuedAt: now, ExpiresAt: now + 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func setupVerifier(t *testing.T, issuer *KeyPair, holder *KeyPair) *Verifier {
	t.Helper()
	r := NewRegistry()
	if err := r.Register(NewDocument(issuer)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewDocument(holder)); err != nil {
		t.Fatal(err)
	}
	tr := NewTrustRegistry()
	tr.AddAnchor("HardwareCompatibility", issuer.DID)
	return NewVerifier(r, tr)
}

func TestCredentialIssueVerify(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)
	if err := v.Verify(c, 200); err != nil {
		t.Fatal(err)
	}
}

func TestCredentialTamperRejected(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)
	c.Claims["sw"] = "malware-1.0"
	if err := v.Verify(c, 200); err == nil {
		t.Error("tampered claims accepted")
	}
}

func TestCredentialExpiry(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)
	if err := v.Verify(c, 100+3601); err == nil {
		t.Error("expired credential accepted")
	}
	if err := v.Verify(c, 50); err == nil {
		t.Error("not-yet-valid credential accepted")
	}
}

func TestCredentialRevocation(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)
	rl := NewRevocationList(oem, 100)
	if err := v.AddRevocationList(rl); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(c, 200); err != nil {
		t.Fatal(err)
	}
	if err := rl.Revoke(oem, c.ID, 300); err != nil {
		t.Fatal(err)
	}
	if err := v.AddRevocationList(rl); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(c, 400); err == nil {
		t.Error("revoked credential accepted")
	}
	// Forged revocation lists are rejected at install time.
	stranger := kp(t, 7)
	fake := NewRevocationList(stranger, 100)
	fake.Issuer = oem.DID
	if err := v.AddRevocationList(fake); err == nil {
		t.Error("forged revocation list installed")
	}
}

func TestUntrustedIssuerRejected(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	mallory := kp(t, 3)
	v := setupVerifier(t, oem, ecu)
	if err := v.Registry.Register(NewDocument(mallory)); err != nil {
		t.Fatal(err)
	}
	c, err := Issue(mallory, &Credential{
		ID: "evil", Type: "HardwareCompatibility",
		Issuer: mallory.DID, Subject: ecu.DID,
		Claims: map[string]string{}, IssuedAt: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(c, 200); err == nil {
		t.Error("credential from untrusted issuer accepted")
	}
}

func TestAccreditationChain(t *testing.T) {
	anchor := kp(t, 1) // e.g. a regulator
	supplier := kp(t, 2)
	ecu := kp(t, 3)
	r := NewRegistry()
	for _, k := range []*KeyPair{anchor, supplier, ecu} {
		if err := r.Register(NewDocument(k)); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewTrustRegistry()
	tr.AddAnchor(AccreditationType, anchor.DID)
	v := NewVerifier(r, tr)

	// The anchor accredits the supplier to issue compatibility creds.
	acc, err := Issue(anchor, &Credential{
		ID: "acc-supplier", Type: AccreditationType,
		Issuer: anchor.DID, Subject: supplier.DID,
		Claims: map[string]string{"can_issue": "HardwareCompatibility"}, IssuedAt: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v.Accreditations = append(v.Accreditations, acc)

	c, err := Issue(supplier, &Credential{
		ID: "compat-9", Type: "HardwareCompatibility",
		Issuer: supplier.DID, Subject: ecu.DID,
		Claims: map[string]string{"platform": "zc"}, IssuedAt: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(c, 100); err != nil {
		t.Fatalf("accredited issuer rejected: %v", err)
	}

	// Without the accreditation the same credential fails.
	v2 := NewVerifier(r, tr)
	if err := v2.Verify(c, 100); err == nil {
		t.Error("unaccredited issuer accepted")
	}
}

func TestPresentationProvesPossession(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	thief := kp(t, 3)
	v := setupVerifier(t, oem, ecu)
	if err := v.Registry.Register(NewDocument(thief)); err != nil {
		t.Fatal(err)
	}
	c := issueCompat(t, oem, ecu.DID, 100)

	challenge := []byte("nonce-123")
	p, err := Present(ecu, challenge, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyPresentation(p, challenge, 200); err != nil {
		t.Fatal(err)
	}
	// Wrong challenge (replay) rejected.
	if err := v.VerifyPresentation(p, []byte("other"), 200); err == nil {
		t.Error("replayed presentation accepted")
	}
	// A thief holding the credential cannot present it.
	if _, err := Present(thief, challenge, c); err == nil {
		t.Error("presentation by non-subject was built")
	}
	// Forged holder signature rejected.
	p2 := *p
	p2.Signature = thief.Sign(p2.canonical())
	if err := v.VerifyPresentation(&p2, challenge, 200); err == nil {
		t.Error("forged holder signature accepted")
	}
}

func TestOfflineBundleVerifies(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)

	bundle, err := NewOfflineBundle(v, []*Credential{c}, 150, 3600)
	if err != nil {
		t.Fatal(err)
	}
	challenge := []byte("offline-nonce")
	p, err := Present(ecu, challenge, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := bundle.VerifyOffline(p, challenge, 200); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	// Stale bundle rejected.
	if err := bundle.VerifyOffline(p, challenge, 150+3601); err == nil {
		t.Error("stale bundle accepted")
	}
}

func TestOfflineBundleRespectsSnapshottedRevocation(t *testing.T) {
	oem := kp(t, 1)
	ecu := kp(t, 2)
	v := setupVerifier(t, oem, ecu)
	c := issueCompat(t, oem, ecu.DID, 100)
	rl := NewRevocationList(oem, 100)
	if err := rl.Revoke(oem, c.ID, 110); err != nil {
		t.Fatal(err)
	}
	if err := v.AddRevocationList(rl); err != nil {
		t.Fatal(err)
	}
	bundle, err := NewOfflineBundle(v, []*Credential{c}, 150, 3600)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Present(ecu, []byte("n"), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := bundle.VerifyOffline(p, []byte("n"), 200); err == nil {
		t.Error("revoked credential accepted offline")
	}
}

func TestCanonicalFormUnambiguous(t *testing.T) {
	oem := kp(t, 1)
	f := func(k1, v1, k2, v2 string) bool {
		if strings.ContainsAny(k1+v1+k2+v2, "=\n:") || k1 == k2 {
			return true // skip delimiter collisions; claims are plain words
		}
		a := &Credential{ID: "x", Type: "T", Issuer: oem.DID, Subject: "did:auto:s",
			Claims: map[string]string{k1: v1, k2: v2}}
		b := &Credential{ID: "x", Type: "T", Issuer: oem.DID, Subject: "did:auto:s",
			Claims: map[string]string{k2: v2, k1: v1}}
		return bytes.Equal(a.canonical(), b.canonical())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIssueValidation(t *testing.T) {
	oem := kp(t, 1)
	other := kp(t, 2)
	if _, err := Issue(oem, &Credential{ID: "x", Type: "T", Issuer: other.DID, Subject: oem.DID}); err == nil {
		t.Error("issuer mismatch accepted")
	}
	if _, err := Issue(oem, &Credential{Type: "T", Issuer: oem.DID, Subject: oem.DID}); err == nil {
		t.Error("missing ID accepted")
	}
	if _, err := Issue(oem, &Credential{ID: "x", Type: "T", Issuer: oem.DID, Subject: "junk"}); err == nil {
		t.Error("invalid subject accepted")
	}
}
