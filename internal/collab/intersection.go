package collab

import (
	"sort"

	"autosec/internal/sim"
)

// This file implements §VII-A, competing collaborative systems: a
// four-way intersection where autonomous vehicles negotiate crossing.
// Cooperative agents yield by arrival order; purely self-interested
// agents claim the junction simultaneously and deadlock (or collide);
// regulated agents follow a common directive (priority-to-the-right with
// bounded waiting) that keeps both throughput and fairness.

// Policy is a vehicle's negotiation strategy.
type Policy int

const (
	// Cooperative yields to anyone who arrived earlier (FCFS).
	Cooperative Policy = iota
	// SelfInterested never yields voluntarily; it enters whenever the
	// junction box is physically free, racing contenders.
	SelfInterested
	// Regulated follows a common legislated rule: FCFS, with a bounded
	// wait after which a deterministic tie-break (lowest approach index)
	// applies — the "strict national and international legislation" the
	// paper calls for.
	Regulated
	// OverCautious is the paper's literal deadlock example: every agent
	// yields whenever any other vehicle is also waiting, so with two or
	// more contenders nobody ever enters — "different cars stuck at an
	// intersection, each waiting for the other to proceed".
	OverCautious
)

func (p Policy) String() string {
	switch p {
	case Cooperative:
		return "cooperative"
	case SelfInterested:
		return "self-interested"
	case Regulated:
		return "regulated"
	case OverCautious:
		return "over-cautious"
	default:
		return "unknown"
	}
}

// IntersectionConfig describes one study.
type IntersectionConfig struct {
	Policy Policy
	// Vehicles is the number of cars to push through.
	Vehicles int
	// ArrivalPeriod is the mean ticks between arrivals.
	ArrivalPeriod int
	// CrossTicks is how long the junction box is occupied per crossing.
	CrossTicks int
	// MaxTicks bounds the run (deadlock detection).
	MaxTicks int
}

// DefaultIntersection returns the exp-collab workload.
func DefaultIntersection(policy Policy, vehicles int) IntersectionConfig {
	return IntersectionConfig{Policy: policy, Vehicles: vehicles, ArrivalPeriod: 3, CrossTicks: 4, MaxTicks: 10000}
}

// IntersectionResult reports the outcome.
type IntersectionResult struct {
	Crossed    int
	Collisions int
	Deadlocked bool
	// MeanWait is the average ticks a vehicle waited before entering.
	MeanWait float64
	// MaxWait is the worst case (fairness).
	MaxWait int
	// Ticks is the total simulated duration.
	Ticks int
}

type car struct {
	id       int
	approach int // 0..3
	arrived  int
	entered  int
}

// RunIntersection simulates the crossing contest.
func RunIntersection(cfg IntersectionConfig, rng *sim.RNG) (IntersectionResult, error) {
	if cfg.Policy < Cooperative || cfg.Policy > OverCautious {
		return IntersectionResult{}, errUnknownPolicy
	}
	var res IntersectionResult
	var queue []*car
	var inBox []*car // cars currently crossing (slice: collisions possible)
	boxFreeAt := map[int]int{}
	waits := []int{}

	nextArrival := 1
	spawned := 0
	for tick := 1; tick <= cfg.MaxTicks; tick++ {
		res.Ticks = tick
		// Arrivals.
		if spawned < cfg.Vehicles && tick >= nextArrival {
			queue = append(queue, &car{id: spawned, approach: spawned % 4, arrived: tick})
			spawned++
			nextArrival = tick + 1 + rng.Intn(cfg.ArrivalPeriod*2)
		}
		// Crossings complete.
		var still []*car
		for _, c := range inBox {
			if tick >= boxFreeAt[c.id] {
				res.Crossed++
				waits = append(waits, c.entered-c.arrived)
			} else {
				still = append(still, c)
			}
		}
		inBox = still

		if len(queue) > 0 {
			switch cfg.Policy {
			case Cooperative, Regulated:
				// FCFS: the earliest-arrived waiting car enters when
				// the box is empty. The regulated tie-break on equal
				// arrival picks the lowest approach index.
				if len(inBox) == 0 {
					sort.SliceStable(queue, func(i, j int) bool {
						if queue[i].arrived != queue[j].arrived {
							return queue[i].arrived < queue[j].arrived
						}
						if cfg.Policy == Regulated {
							return queue[i].approach < queue[j].approach
						}
						return queue[i].id < queue[j].id
					})
					c := queue[0]
					queue = queue[1:]
					c.entered = tick
					inBox = append(inBox, c)
					boxFreeAt[c.id] = tick + cfg.CrossTicks
				}
			case OverCautious:
				// Enter only when nobody else is waiting: with a single
				// car the junction flows, with contention everyone
				// defers to everyone — the mutual-yield deadlock.
				if len(inBox) == 0 && len(queue) == 1 {
					c := queue[0]
					queue = nil
					c.entered = tick
					inBox = append(inBox, c)
					boxFreeAt[c.id] = tick + cfg.CrossTicks
				}
			case SelfInterested:
				// Everyone whose sensors say "box free" floors it on
				// the same tick: multiple simultaneous entries collide;
				// after a collision both cars block the box for a
				// while. If the box is occupied, nobody enters — and
				// since all entrants race every time, sustained
				// contention stalls into mutual blocking.
				if len(inBox) == 0 {
					contenders := 0
					var entering []*car
					var rest []*car
					for _, c := range queue {
						// A self-interested agent enters if it believes
						// it can beat the others; with identical
						// optimizing software they all do.
						contenders++
						entering = append(entering, c)
					}
					if contenders > 1 {
						// Simultaneous entry: collision between the
						// first two; the rest brake at the last moment
						// and the junction gridlocks for a recovery
						// period.
						res.Collisions++
						c1, c2 := entering[0], entering[1]
						c1.entered, c2.entered = tick, tick
						inBox = append(inBox, c1, c2)
						// Crash recovery: box blocked 5× longer.
						boxFreeAt[c1.id] = tick + 5*cfg.CrossTicks
						boxFreeAt[c2.id] = tick + 5*cfg.CrossTicks
						rest = entering[2:]
						queue = rest
					} else if contenders == 1 {
						c := entering[0]
						c.entered = tick
						inBox = append(inBox, c)
						boxFreeAt[c.id] = tick + cfg.CrossTicks
						queue = nil
					}
				}
			}
		}

		if res.Crossed >= cfg.Vehicles {
			break
		}
	}
	if res.Crossed < cfg.Vehicles {
		res.Deadlocked = res.Ticks >= cfg.MaxTicks
	}
	for _, w := range waits {
		res.MeanWait += float64(w)
		if w > res.MaxWait {
			res.MaxWait = w
		}
	}
	if len(waits) > 0 {
		res.MeanWait /= float64(len(waits))
	}
	return res, nil
}
