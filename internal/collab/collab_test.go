package collab

import (
	"testing"

	"autosec/internal/sim"
	"autosec/internal/world"
)

// platoon builds 4 member vehicles around a pedestrian and a lead car.
func platoon(t *testing.T) (*world.World, map[string]*Participant) {
	t.Helper()
	w := world.New()
	members := map[string]*Participant{}
	positions := []world.Vec2{{X: 0}, {X: 20}, {X: 40}, {X: 60}}
	for i, pos := range positions {
		id := string(rune('a' + i))
		if err := w.Add(&world.Actor{ID: id, Pos: pos, Radius: 1}); err != nil {
			t.Fatal(err)
		}
		members[id] = &Participant{ID: id, SensorRange: 50, NoiseStd: 0.1}
	}
	if err := w.Add(&world.Actor{ID: "ped", Pos: world.Vec2{X: 30, Y: 4}, Radius: 0.4}); err != nil {
		t.Fatal(err)
	}
	return w, members
}

func sharesOf(w *world.World, members map[string]*Participant, rng *sim.RNG) []Message {
	var msgs []Message
	for _, id := range []string{"a", "b", "c", "d"} {
		msgs = append(msgs, members[id].Share(w, rng))
	}
	return msgs
}

func TestBenignFusionSeesPedestrian(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(1)
	out := Fuse(w, sharesOf(w, members, rng), members, FusionConfig{RequireAuth: true, RedundancyK: 2})
	found := false
	for _, ob := range out.Accepted {
		if ob.TruthID == "ped" && ob.Support >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("pedestrian not collaboratively perceived: %+v", out.Accepted)
	}
	if out.FakeCount != 0 {
		t.Errorf("benign round accepted %d fakes", out.FakeCount)
	}
	if out.MissedReal != 0 {
		t.Errorf("benign round missed %d real objects", out.MissedReal)
	}
}

func TestExternalInjectionBlockedByAuth(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(2)
	msgs := sharesOf(w, members, rng)
	// External attacker injects a ghost without credentials.
	msgs = append(msgs, Message{Sender: "ghost-station", Authenticated: false, Claims: []Claim{
		{Sender: "ghost-station", Pos: world.Vec2{X: 30, Y: 0}},
	}})
	open := Fuse(w, msgs, members, FusionConfig{RequireAuth: false})
	if open.FakeCount == 0 {
		t.Error("open channel should accept the injected ghost")
	}
	authed := Fuse(w, msgs, members, FusionConfig{RequireAuth: true})
	if authed.FakeCount != 0 {
		t.Error("authenticated channel accepted an unauthenticated ghost")
	}
}

func TestInsiderFabricationBeatsAuthButNotRedundancy(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(3)
	fake := world.Vec2{X: 35, Y: 0}
	members["b"].Fabricate = &fake // insider with valid credentials
	msgs := sharesOf(w, members, rng)

	authOnly := Fuse(w, msgs, members, FusionConfig{RequireAuth: true})
	if authOnly.FakeCount == 0 {
		t.Error("auth alone should NOT stop an insider (the §VII-B point)")
	}
	withRedundancy := Fuse(w, msgs, members, FusionConfig{RequireAuth: true, RedundancyK: 2})
	if withRedundancy.FakeCount != 0 {
		t.Error("redundancy-2 fusion accepted the insider's fabrication")
	}
	// The real pedestrian must survive redundancy filtering.
	real := 0
	for _, ob := range withRedundancy.Accepted {
		if ob.TruthID == "ped" {
			real++
		}
	}
	if real == 0 {
		t.Error("redundancy filtering dropped the real pedestrian")
	}
}

func TestSuppressionDetectedByRedundancy(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(4)
	members["b"].Suppress = "ped" // insider hides the pedestrian
	msgs := sharesOf(w, members, rng)
	out := Fuse(w, msgs, members, FusionConfig{RequireAuth: true, RedundancyK: 2})
	// Other members still see the pedestrian: suppression by one
	// insider cannot remove a redundantly-observed object.
	found := false
	for _, ob := range out.Accepted {
		if ob.TruthID == "ped" {
			found = true
		}
	}
	if !found {
		t.Error("single insider suppressed a redundantly-visible object")
	}
}

func TestTrustTrackerConvergesOnFabricator(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(5)
	fake := world.Vec2{X: 35, Y: 0}
	members["b"].Fabricate = &fake
	tracker := NewTrustTracker()
	cfg := FusionConfig{RequireAuth: true, RedundancyK: 2}
	for round := 0; round < 10; round++ {
		tracker.Observe(w, sharesOf(w, members, rng), members, cfg)
	}
	if !tracker.Excluded("b") {
		t.Errorf("fabricator trust %.2f, not excluded after 10 rounds", tracker.Score("b"))
	}
	for _, honest := range []string{"a", "c", "d"} {
		if tracker.Excluded(honest) {
			t.Errorf("honest member %s excluded (trust %.2f)", honest, tracker.Score(honest))
		}
	}
}

func TestTrustRecovery(t *testing.T) {
	w, members := platoon(t)
	rng := sim.NewRNG(6)
	tracker := NewTrustTracker()
	cfg := FusionConfig{RequireAuth: true, RedundancyK: 2}
	// Honest rounds keep scores at 1.0.
	for round := 0; round < 5; round++ {
		tracker.Observe(w, sharesOf(w, members, rng), members, cfg)
	}
	if tracker.Score("a") < 1.0 {
		t.Errorf("honest trust dropped to %.2f", tracker.Score("a"))
	}
}

// --- intersection (§VII-A) ---

func TestCooperativeIntersectionFlows(t *testing.T) {
	res, err := RunIntersection(DefaultIntersection(Cooperative, 20), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Crossed != 20 || res.Collisions != 0 || res.Deadlocked {
		t.Errorf("cooperative: %+v", res)
	}
}

func TestSelfInterestedCausesCollisions(t *testing.T) {
	res, err := RunIntersection(DefaultIntersection(SelfInterested, 20), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Error("identical self-interested optimizers should collide contending for the box")
	}
}

func TestRegulatedMatchesCooperativeThroughputWithFairness(t *testing.T) {
	coop, err := RunIntersection(DefaultIntersection(Cooperative, 30), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RunIntersection(DefaultIntersection(Regulated, 30), sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if reg.Crossed != 30 || reg.Collisions != 0 {
		t.Errorf("regulated: %+v", reg)
	}
	if reg.Ticks > coop.Ticks*2 {
		t.Errorf("regulated throughput collapsed: %d vs %d ticks", reg.Ticks, coop.Ticks)
	}
}

func TestSelfInterestedSlowerThanCooperative(t *testing.T) {
	coop, err := RunIntersection(DefaultIntersection(Cooperative, 20), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	selfish, err := RunIntersection(DefaultIntersection(SelfInterested, 20), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if selfish.Crossed == 20 && selfish.Ticks <= coop.Ticks {
		t.Errorf("selfish (%d ticks) not slower than cooperative (%d ticks)", selfish.Ticks, coop.Ticks)
	}
}

func TestOverCautiousDeadlocks(t *testing.T) {
	// The paper's literal example: mutual yielding deadlocks as soon as
	// two vehicles contend.
	cfg := DefaultIntersection(OverCautious, 10)
	cfg.MaxTicks = 2000
	res, err := RunIntersection(cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Errorf("over-cautious fleet did not deadlock: %+v", res)
	}
	if res.Crossed >= 10 {
		t.Errorf("crossed %d despite mutual yielding", res.Crossed)
	}
	if res.Collisions != 0 {
		t.Errorf("over-cautious policy collided %d times", res.Collisions)
	}
}

func TestIntersectionValidation(t *testing.T) {
	if _, err := RunIntersection(IntersectionConfig{Policy: Policy(9)}, sim.NewRNG(1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Cooperative.String() != "cooperative" || SelfInterested.String() != "self-interested" || Regulated.String() != "regulated" {
		t.Error("policy strings")
	}
}
