// Package collab implements the paper's §VII collaboration layer:
// collaborative perception with object-list sharing between vehicles
// (ref [47]), external injection and internal data-fabrication attacks
// (ref [48]), redundancy-based misbehaviour detection, and the
// competing-collaborative-systems intersection study (§VII-A) comparing
// cooperative, self-interested, and regulated policies.
//
// Exercised by experiments exp-collab and ablate-k, and by the cross-
// layer integration test in internal/core.
package collab

import (
	"fmt"
	"sort"

	"autosec/internal/sim"
	"autosec/internal/world"
)

// Claim is one shared object observation.
type Claim struct {
	Sender string
	Pos    world.Vec2
	// TruthID is scoring-only ground truth ("" = fabricated).
	TruthID string
}

// Message is a V2X object-list share.
type Message struct {
	Sender string
	// Authenticated marks messages carrying a valid signature from a
	// credentialed member. External injections on an open channel are
	// unauthenticated; an *insider* attacker signs validly.
	Authenticated bool
	Claims        []Claim
}

// Participant is one collaborating vehicle.
type Participant struct {
	ID string
	// SensorRange bounds local perception.
	SensorRange float64
	// NoiseStd is local measurement noise.
	NoiseStd float64
	// Fabricate, when non-nil, makes this member an internal attacker
	// that appends a fabricated object at the given position.
	Fabricate *world.Vec2
	// Suppress hides a truly-sensed actor ID from this member's shares
	// (the removal variant of data fabrication).
	Suppress string

	// neighbors is Sense's reusable scratch for the world query.
	neighbors []*world.Actor
}

// Sense returns the participant's local observations.
func (p *Participant) Sense(w *world.World, rng *sim.RNG) []Claim {
	self := w.Get(p.ID)
	if self == nil {
		return nil
	}
	p.neighbors = w.NeighborsAppend(p.neighbors[:0], self.Pos, p.SensorRange, p.ID)
	var out []Claim
	for _, a := range p.neighbors {
		if a.ID == p.Suppress {
			continue
		}
		out = append(out, Claim{
			Sender:  p.ID,
			Pos:     world.Vec2{X: a.Pos.X + p.NoiseStd*rng.NormFloat64(), Y: a.Pos.Y + p.NoiseStd*rng.NormFloat64()},
			TruthID: a.ID,
		})
	}
	return out
}

// Share builds the participant's V2X message, applying insider attacks.
func (p *Participant) Share(w *world.World, rng *sim.RNG) Message {
	claims := p.Sense(w, rng)
	if p.Fabricate != nil {
		claims = append(claims, Claim{Sender: p.ID, Pos: *p.Fabricate})
	}
	return Message{Sender: p.ID, Authenticated: true, Claims: claims}
}

// FusionConfig controls the receiver-side validation.
type FusionConfig struct {
	// RequireAuth drops unauthenticated messages (defeats external
	// injection; useless against insiders).
	RequireAuth bool
	// RedundancyK requires an object be corroborated by at least K
	// independent senders whose sensor range covers it (0 disables).
	RedundancyK int
	// Gate is the association distance for corroboration.
	Gate float64
}

// FusedObject is an accepted collaborative detection.
type FusedObject struct {
	Pos     world.Vec2
	Support int
	TruthID string
}

// FusionOutcome scores the result against ground truth.
type FusionOutcome struct {
	Accepted   []FusedObject
	FakeCount  int // accepted objects with no ground truth
	RealCount  int // accepted genuine objects
	MissedReal int // genuine objects within someone's range but rejected
}

// Fuse validates and merges incoming messages at a receiving vehicle.
// senders maps participant IDs to their configurations (needed to judge
// whether a non-reporting member *should* have seen an object).
func Fuse(w *world.World, msgs []Message, senders map[string]*Participant, cfg FusionConfig) FusionOutcome {
	var claims []Claim
	for _, m := range msgs {
		if cfg.RequireAuth && !m.Authenticated {
			continue
		}
		claims = append(claims, m.Claims...)
	}

	gate := cfg.Gate
	if gate == 0 {
		gate = 3.0
	}

	// Cluster claims by proximity.
	type clusterT struct {
		claims  []Claim
		senders map[string]bool
	}
	var clusters []*clusterT
	for _, c := range claims {
		placed := false
		for _, cl := range clusters {
			if world.Dist(centroid(cl.claims), c.Pos) <= gate {
				cl.claims = append(cl.claims, c)
				cl.senders[c.Sender] = true
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &clusterT{claims: []Claim{c}, senders: map[string]bool{c.Sender: true}})
		}
	}

	var out FusionOutcome
	acceptedTruth := map[string]bool{}
	for _, cl := range clusters {
		pos := centroid(cl.claims)
		support := len(cl.senders)
		if cfg.RedundancyK > 0 {
			// Count how many members could have corroborated: those
			// whose range covers the claim. The claim needs K
			// supporters among its potential witnesses.
			witnesses := 0
			for id, p := range senders {
				self := w.Get(id)
				if self == nil {
					continue
				}
				if world.Dist(self.Pos, pos) <= p.SensorRange {
					witnesses++
				}
			}
			needed := cfg.RedundancyK
			if witnesses < needed {
				needed = witnesses // cannot demand more witnesses than exist
			}
			if needed < 1 {
				needed = 1
			}
			if support < needed {
				continue
			}
		}
		truth := majorityTruth(cl.claims)
		out.Accepted = append(out.Accepted, FusedObject{Pos: pos, Support: support, TruthID: truth})
		if truth == "" {
			out.FakeCount++
		} else {
			out.RealCount++
			acceptedTruth[truth] = true
		}
	}

	// Score misses: genuine actors inside at least one member's range
	// that did not survive fusion.
	for _, a := range w.Actors() {
		if _, isMember := senders[a.ID]; isMember {
			continue
		}
		visible := false
		for id, p := range senders {
			self := w.Get(id)
			if self != nil && world.Dist(self.Pos, a.Pos) <= p.SensorRange {
				visible = true
				break
			}
		}
		if visible && !acceptedTruth[a.ID] {
			out.MissedReal++
		}
	}
	return out
}

func centroid(claims []Claim) world.Vec2 {
	var sum world.Vec2
	for _, c := range claims {
		sum = sum.Add(c.Pos)
	}
	return sum.Scale(1 / float64(len(claims)))
}

func majorityTruth(claims []Claim) string {
	counts := map[string]int{}
	for _, c := range claims {
		counts[c.TruthID]++
	}
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	best, bestN := "", 0
	for _, id := range ids {
		if counts[id] > bestN {
			best, bestN = id, counts[id]
		}
	}
	return best
}

// TrustTracker maintains per-sender misbehaviour scores across rounds:
// a sender whose claims repeatedly fail corroboration loses trust and
// is eventually excluded — the "comprehensive intrusion detection"
// §VII-B calls for when credentials alone cannot help.
type TrustTracker struct {
	scores map[string]float64
	// Threshold below which a sender is excluded.
	Threshold float64
}

// NewTrustTracker starts everyone at full trust (1.0).
func NewTrustTracker() *TrustTracker {
	return &TrustTracker{scores: map[string]float64{}, Threshold: 0.4}
}

// Score returns a sender's current trust (default 1.0).
func (t *TrustTracker) Score(id string) float64 {
	if s, ok := t.scores[id]; ok {
		return s
	}
	return 1.0
}

// Excluded reports whether the sender has fallen below the threshold.
func (t *TrustTracker) Excluded(id string) bool { return t.Score(id) < t.Threshold }

// Observe updates trust from one round's fusion: senders whose claims
// ended in rejected single-source clusters (potential fabrications) are
// penalized; corroborated senders recover.
func (t *TrustTracker) Observe(w *world.World, msgs []Message, senders map[string]*Participant, cfg FusionConfig) {
	gate := cfg.Gate
	if gate == 0 {
		gate = 3.0
	}
	for _, m := range msgs {
		suspicious := 0
		for _, c := range m.Claims {
			// A claim is suspicious if another member covering the
			// position does not report anything near it.
			corroborated := false
			contradicted := false
			for id, p := range senders {
				if id == m.Sender {
					continue
				}
				self := w.Get(id)
				if self == nil || world.Dist(self.Pos, c.Pos) > p.SensorRange {
					continue
				}
				near := false
				for _, other := range msgs {
					if other.Sender != id {
						continue
					}
					for _, oc := range other.Claims {
						if world.Dist(oc.Pos, c.Pos) <= gate {
							near = true
							break
						}
					}
				}
				if near {
					corroborated = true
				} else {
					contradicted = true
				}
			}
			if contradicted && !corroborated {
				suspicious++
			}
		}
		cur := t.Score(m.Sender)
		if suspicious > 0 {
			cur -= 0.2 * float64(suspicious)
		} else {
			cur += 0.05
		}
		if cur > 1 {
			cur = 1
		}
		if cur < 0 {
			cur = 0
		}
		t.scores[m.Sender] = cur
	}
}

// Error values shared with the intersection sim.
var errUnknownPolicy = fmt.Errorf("collab: unknown policy")
