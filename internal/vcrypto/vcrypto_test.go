package vcrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (AES-128 key 2b7e1516...).
var rfc4493Key, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCMACRFC4493Vectors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		msg  string
		want string
	}{
		{"empty", "", "bb1d6929e95937287fa37d129b756746"},
		{"16B", "6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40B", "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411", "dfa66747de9ae63030ca32611497c827"},
		{"64B", "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710", "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tag, err := CMAC(rfc4493Key, mustHex(t, tc.msg))
			if err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(tag[:]); got != tc.want {
				t.Errorf("CMAC = %s, want %s", got, tc.want)
			}
		})
	}
}

func TestCMACRejectsBadKey(t *testing.T) {
	t.Parallel()
	if _, err := CMAC([]byte("short"), nil); err == nil {
		t.Error("bad key accepted")
	}
}

func TestTruncatedCMACLengths(t *testing.T) {
	t.Parallel()
	msg := []byte("autosec frame payload")
	for _, bits := range []int{24, 32, 64, 128} {
		mac, err := TruncatedCMAC(rfc4493Key, msg, bits)
		if err != nil {
			t.Fatal(err)
		}
		if len(mac) != bits/8 {
			t.Errorf("bits=%d: len=%d", bits, len(mac))
		}
		ok, err := VerifyTruncatedCMAC(rfc4493Key, msg, mac)
		if err != nil || !ok {
			t.Errorf("bits=%d: verify failed (%v)", bits, err)
		}
	}
}

func TestTruncatedCMACInvalidBits(t *testing.T) {
	t.Parallel()
	for _, bits := range []int{0, -8, 7, 129, 136} {
		if _, err := TruncatedCMAC(rfc4493Key, nil, bits); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
}

func TestVerifyTruncatedCMACRejectsTamper(t *testing.T) {
	t.Parallel()
	msg := []byte("engine rpm = 3000")
	mac, err := TruncatedCMAC(rfc4493Key, msg, 64)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), msg...)
	bad[0] ^= 1
	if ok, _ := VerifyTruncatedCMAC(rfc4493Key, bad, mac); ok {
		t.Error("tampered message verified")
	}
	badMac := append([]byte(nil), mac...)
	badMac[3] ^= 0x80
	if ok, _ := VerifyTruncatedCMAC(rfc4493Key, msg, badMac); ok {
		t.Error("tampered MAC verified")
	}
}

func TestCMACPropertyVerifyRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(msg []byte) bool {
		mac, err := TruncatedCMAC(rfc4493Key, msg, 64)
		if err != nil {
			return false
		}
		ok, err := VerifyTruncatedCMAC(rfc4493Key, msg, mac)
		return err == nil && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMACDistinguishesMessages(t *testing.T) {
	t.Parallel()
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ta, err1 := CMAC(rfc4493Key, a)
		tb, err2 := CMAC(rfc4493Key, b)
		return err1 == nil && err2 == nil && ta != tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveKeyDeterministicAndDistinct(t *testing.T) {
	t.Parallel()
	root := []byte("0123456789abcdef")
	a := DeriveKey(root, "macsec-sak", "link-1", 16)
	b := DeriveKey(root, "macsec-sak", "link-1", 16)
	if !bytes.Equal(a, b) {
		t.Error("same inputs gave different keys")
	}
	c := DeriveKey(root, "macsec-sak", "link-2", 16)
	if bytes.Equal(a, c) {
		t.Error("different contexts gave same key")
	}
	d := DeriveKey(root, "secoc", "link-1", 16)
	if bytes.Equal(a, d) {
		t.Error("different labels gave same key")
	}
}

func TestDeriveKeyLengths(t *testing.T) {
	t.Parallel()
	root := []byte("0123456789abcdef")
	for _, n := range []int{1, 16, 32, 33, 64, 100} {
		if got := len(DeriveKey(root, "l", "c", n)); got != n {
			t.Errorf("length %d: got %d", n, got)
		}
	}
	if DeriveKey(root, "l", "c", 0) != nil {
		t.Error("zero length should return nil")
	}
}

func TestDeriveKeyLabelContextNotConfusable(t *testing.T) {
	t.Parallel()
	// ("ab","c") must differ from ("a","bc"): the separator byte matters.
	root := []byte("0123456789abcdef")
	a := DeriveKey(root, "ab", "c", 16)
	b := DeriveKey(root, "a", "bc", 16)
	if bytes.Equal(a, b) {
		t.Error("label/context boundary ambiguous")
	}
}

func TestKeyHierarchy(t *testing.T) {
	t.Parallel()
	h, err := NewKeyHierarchy([]byte("an-oem-master-secret-with-entropy"))
	if err != nil {
		t.Fatal(err)
	}
	k1 := h.SessionKey("secoc", "ecu-7")
	k2 := h.SessionKey("secoc", "ecu-7")
	if !bytes.Equal(k1, k2) {
		t.Error("not deterministic")
	}
	if len(k1) != 16 {
		t.Errorf("session key length %d", len(k1))
	}
	if len(h.SessionKey256("macsec", "sc-1")) != 32 {
		t.Error("256-bit key wrong length")
	}
	if _, err := NewKeyHierarchy([]byte("short")); err == nil {
		t.Error("short root accepted")
	}
}

func TestGCMSealOpenRoundTrip(t *testing.T) {
	t.Parallel()
	key := DeriveKey([]byte("0123456789abcdef"), "gcm", "t", 16)
	pt := []byte("wheel speed frame")
	aad := []byte{0x88, 0xe5, 0x2c}
	sealed, err := GCMSeal(key, 0xA1B2C3D4E5F60718, 42, aad, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GCMOpen(key, 0xA1B2C3D4E5F60718, 42, aad, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("round trip = %q", got)
	}
}

func TestGCMOpenRejectsWrongPNOrAAD(t *testing.T) {
	t.Parallel()
	key := DeriveKey([]byte("0123456789abcdef"), "gcm", "t", 16)
	sealed, err := GCMSeal(key, 1, 42, []byte("aad"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GCMOpen(key, 1, 43, []byte("aad"), sealed); err == nil {
		t.Error("wrong PN accepted")
	}
	if _, err := GCMOpen(key, 2, 42, []byte("aad"), sealed); err == nil {
		t.Error("wrong SCI accepted")
	}
	if _, err := GCMOpen(key, 1, 42, []byte("AAD"), sealed); err == nil {
		t.Error("wrong AAD accepted")
	}
}

func TestGCMTagVerify(t *testing.T) {
	t.Parallel()
	key := DeriveKey([]byte("0123456789abcdef"), "gcm", "t", 16)
	msg := []byte("integrity-only frame")
	tag, err := GCMTag(key, 7, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tag) != 16 {
		t.Errorf("tag length %d, want 16", len(tag))
	}
	if !GCMVerifyTag(key, 7, 1, msg, tag) {
		t.Error("valid tag rejected")
	}
	if GCMVerifyTag(key, 7, 1, []byte("forged frame!!!!"), tag) {
		t.Error("forged message accepted")
	}
	if GCMVerifyTag(key, 7, 2, msg, tag) {
		t.Error("replayed tag with wrong PN accepted")
	}
}

func TestGCMPropertyRoundTrip(t *testing.T) {
	t.Parallel()
	key := DeriveKey([]byte("0123456789abcdef"), "gcm", "q", 16)
	f := func(pt, aad []byte, pn uint32) bool {
		sealed, err := GCMSeal(key, 5, pn, aad, pt)
		if err != nil {
			return false
		}
		got, err := GCMOpen(key, 5, pn, aad, sealed)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
