// Package vcrypto provides the cryptographic building blocks used by the
// vehicle security protocol stacks (SECOC, MACsec, CANsec, UWB STS) that
// the Go standard library does not ship directly: AES-CMAC (RFC 4493),
// a counter-mode KDF (NIST SP 800-108 style), truncated-MAC helpers with
// constant-time comparison, and a simple key-hierarchy deriver.
//
// Everything here wraps crypto/aes, crypto/hmac, and crypto/sha256 from
// the standard library; no primitives are invented.
//
// Underpins every protected-channel experiment (tab1, fig4-fig6, exp-
// vehicle, exp-zc) as the shared crypto substrate.
package vcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"sync"

	"autosec/internal/secchan"
)

// cmacState is the per-key precomputation of CMAC: the expanded AES key
// schedule and the RFC 4493 §2.3 subkeys. For 128-bit keys on AES-NI
// hardware it also carries the raw round keys the batched assembly
// kernel consumes (rkOK), since cipher.Block does not expose its
// schedule.
type cmacState struct {
	block  cipher.Block
	k1, k2 [16]byte
	rk     [176]byte
	rkOK   bool
}

// cmacCacheCap bounds the per-key state cache. Long-lived processes —
// an avsecd serving many scenario fingerprints — mint a fresh session
// key per campaign cell, and an unbounded map would retain every key
// schedule ever seen. When the cap is hit the whole map is dropped: the
// eviction is O(1), needs no access bookkeeping on the hot lookup, and
// the active keys simply re-expand on their next use (a re-derivable
// cache, so flushing changes no output bytes).
const cmacCacheCap = 256

// cmacCache memoizes cmacState per key. Protocol simulations MAC
// thousands of frames under a handful of session keys, so the AES key
// expansion and subkey derivation dominate short-message CMAC when done
// per call; caching them changes no output bytes. A plain map under an
// RWMutex (rather than sync.Map) lets the hot lookup use the compiler's
// zero-copy map[string(b)] access, so a cache hit allocates nothing.
var (
	cmacMu    sync.RWMutex
	cmacCache = map[string]*cmacState{}
)

func cmacStateFor(key []byte) (*cmacState, error) {
	cmacMu.RLock()
	st, ok := cmacCache[string(key)]
	cmacMu.RUnlock()
	if ok {
		return st, nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("vcrypto: cmac key: %w", err)
	}
	st = &cmacState{block: block}
	var l [16]byte
	block.Encrypt(l[:], l[:])
	st.k1 = dbl(l)
	st.k2 = dbl(st.k1)
	if haveCMACAsm && len(key) == 16 {
		expandAES128(key, &st.rk)
		st.rkOK = true
	}
	cmacMu.Lock()
	if exist, ok := cmacCache[string(key)]; ok {
		st = exist
	} else {
		if len(cmacCache) >= cmacCacheCap {
			cmacCache = make(map[string]*cmacState, cmacCacheCap)
		}
		cmacCache[string(key)] = st
	}
	cmacMu.Unlock()
	return st, nil
}

// cmacCacheLen exposes the live entry count (cache-bound tests).
func cmacCacheLen() int {
	cmacMu.RLock()
	defer cmacMu.RUnlock()
	return len(cmacCache)
}

// cmacBufPool recycles the chaining/output buffer pair. The slices
// handed to cipher.Block.Encrypt cross an interface boundary, so
// stack-local arrays would escape — one heap allocation per tag, twice.
// Borrowing an already-heap-resident pair instead makes CMAC
// allocation-free on the steady state, which the SECOC receiver's
// forgery-sweep reject path depends on.
var cmacBufPool = sync.Pool{New: func() any { return new([2][16]byte) }}

// CMAC computes the AES-CMAC (RFC 4493) of msg under a 16-, 24-, or
// 32-byte AES key and returns the full 16-byte tag.
func CMAC(key, msg []byte) ([16]byte, error) {
	st, err := cmacStateFor(key)
	if err != nil {
		return [16]byte{}, err
	}
	buf := cmacBufPool.Get().(*[2][16]byte)
	tag := cmacCore(st, msg, buf)
	cmacBufPool.Put(buf)
	return tag, nil
}

// cmacCore runs the RFC 4493 block chain using the caller-provided
// working pair: buf[0] is the CBC-MAC chaining value, buf[1] receives
// the final tag (copied out by value before the pool reclaims it).
func cmacCore(st *cmacState, msg []byte, buf *[2][16]byte) [16]byte {
	block, k1, k2 := st.block, st.k1, st.k2
	x := &buf[0]
	*x = [16]byte{}

	n := (len(msg) + 15) / 16 // number of blocks
	lastComplete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}

	for i := 0; i < n-1; i++ {
		xorInto(x, msg[i*16:(i+1)*16])
		block.Encrypt(x[:], x[:])
	}

	var last [16]byte
	if lastComplete {
		copy(last[:], msg[(n-1)*16:])
		for i := range last {
			last[i] ^= k1[i]
		}
	} else {
		rem := msg[(n-1)*16:]
		if len(msg) == 0 {
			rem = nil
		}
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := range last {
			last[i] ^= k2[i]
		}
	}
	for i := range x {
		x[i] ^= last[i]
	}
	block.Encrypt(buf[1][:], x[:])
	return buf[1]
}

// dbl is the GF(2^128) doubling used for CMAC subkey derivation.
func dbl(in [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 15; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[15] ^= 0x87
	}
	return out
}

func xorInto(x *[16]byte, block []byte) {
	for i := 0; i < 16; i++ {
		x[i] ^= block[i]
	}
}

// TruncatedCMAC computes an AES-CMAC and truncates it to bits (which
// must be a positive multiple of 8, at most 128). AUTOSAR SECOC commonly
// uses 24–64 bit truncation to fit CAN payloads.
func TruncatedCMAC(key, msg []byte, bits int) ([]byte, error) {
	if bits <= 0 || bits > 128 || bits%8 != 0 {
		return nil, fmt.Errorf("vcrypto: invalid truncation %d bits", bits)
	}
	tag, err := CMAC(key, msg)
	if err != nil {
		return nil, err
	}
	out := make([]byte, bits/8)
	copy(out, tag[:])
	return out, nil
}

// VerifyTruncatedCMAC recomputes the truncated CMAC of msg and compares
// it to mac in constant time.
func VerifyTruncatedCMAC(key, msg, mac []byte) (bool, error) {
	want, err := TruncatedCMAC(key, msg, len(mac)*8)
	if err != nil {
		return false, err
	}
	return secchan.VerifyTrunc(want, mac), nil
}
