//go:build !amd64

package vcrypto

// haveCMACAsm gates the AES-NI batched CMAC kernel in CMACBatch.
// Without it the scalar cmacCore loop handles every lane.
const haveCMACAsm = false

// useCMACAsm mirrors the amd64 runtime probe; constant false here so
// the batch driver compiles to the scalar loop on non-amd64 targets.
const useCMACAsm = false

// cmacSteps8 is never called when haveCMACAsm is false; this stub only
// satisfies the compiler on non-amd64 targets.
func cmacSteps8(rk *[176]byte, packed *byte, states *[8][16]byte, nsteps int) {
	panic("vcrypto: cmacSteps8 without asm kernel")
}
