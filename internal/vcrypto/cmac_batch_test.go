package vcrypto

import (
	"bytes"
	"crypto/aes"
	"fmt"
	"testing"
)

// TestExpandAES128MatchesStdlib checks the hand-rolled key schedule by
// running a single block through the assembly kernel (one lane, one
// step, pre-whitened zero state absorbs the plaintext) and comparing
// against crypto/aes. Skipped where the kernel is unavailable.
func TestExpandAES128MatchesStdlib(t *testing.T) {
	if !haveCMACAsm || !useCMACAsm {
		t.Skip("no AES-NI kernel on this target")
	}
	for _, key := range [][]byte{
		[]byte("0123456789abcdef"),
		make([]byte, 16),
		{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0x00},
	} {
		block, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		var rk [176]byte
		expandAES128(key, &rk)
		for trial := 0; trial < 4; trial++ {
			var pt [16]byte
			for i := range pt {
				pt[i] = byte(trial*31 + i*7)
			}
			var want [16]byte
			block.Encrypt(want[:], pt[:])
			var states [8][16]byte
			var packed [128]byte
			copy(packed[0:16], pt[:])
			cmacSteps8(&rk, &packed[0], &states, 1)
			if states[0] != want {
				t.Fatalf("key %x trial %d: kernel %x, stdlib %x", key, trial, states[0], want)
			}
		}
	}
}

// TestCMACBatchMatchesScalar drives the batched path over a matrix of
// batch sizes and message lengths — empty messages, block-aligned,
// ragged, mixed lengths in one batch — and requires bit-identity with
// per-message CMAC.
func TestCMACBatchMatchesScalar(t *testing.T) {
	key := []byte("0123456789abcdef")
	lengths := [][]int{
		{0},
		{16},
		{64},
		{5},
		{0, 1, 15, 16, 17, 31, 32, 33},
		{64, 64, 64, 64, 64, 64, 64, 64},
		{64, 64, 64, 64, 64, 64, 64, 64, 64}, // spills into a second group
		{100, 3, 48, 0, 255, 16, 80, 7, 129, 64, 1},
	}
	for _, lens := range lengths {
		t.Run(fmt.Sprint(lens), func(t *testing.T) {
			msgs := make([][]byte, len(lens))
			for i, n := range lens {
				msgs[i] = make([]byte, n)
				for j := range msgs[i] {
					msgs[i][j] = byte(i*37 + j)
				}
			}
			tags := make([][16]byte, len(msgs))
			if err := CMACBatch(key, msgs, tags); err != nil {
				t.Fatal(err)
			}
			for i, msg := range msgs {
				want, err := CMAC(key, msg)
				if err != nil {
					t.Fatal(err)
				}
				if tags[i] != want {
					t.Fatalf("msg %d (len %d): batch %x, scalar %x", i, len(msg), tags[i], want)
				}
			}
		})
	}
}

// TestCMACBatchShortTags rejects an undersized tag slice instead of
// writing out of bounds.
func TestCMACBatchShortTags(t *testing.T) {
	key := []byte("0123456789abcdef")
	if err := CMACBatch(key, make([][]byte, 3), make([][16]byte, 2)); err == nil {
		t.Fatal("want error for tags shorter than msgs")
	}
}

// TestCMACCacheBounded fills the per-key state cache past its cap and
// checks the flush keeps it bounded — the avsecd leak the cap exists to
// stop — and that post-flush MACs still match pre-flush ones.
func TestCMACCacheBounded(t *testing.T) {
	probe := []byte("cache-bound-probe")[:16]
	want, err := CMAC(probe, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*cmacCacheCap; i++ {
		key := []byte(fmt.Sprintf("cache-bound-%05d", i))[:16]
		if _, err := CMAC(key, []byte("msg")); err != nil {
			t.Fatal(err)
		}
		if n := cmacCacheLen(); n > cmacCacheCap {
			t.Fatalf("cmacCache grew to %d entries (cap %d)", n, cmacCacheCap)
		}
	}
	got, err := CMAC(probe, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("MAC changed across cache flush: %x vs %x", got, want)
	}
}

// TestAEADCacheBounded is the same bound check for the GCM AEAD cache.
func TestAEADCacheBounded(t *testing.T) {
	probe := []byte("aead-bound-probe!")[:16]
	want, err := GCMSeal(probe, 1, 1, nil, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*aeadCacheCap; i++ {
		key := []byte(fmt.Sprintf("aead-bound-%06d", i))[:16]
		if _, err := GCMSeal(key, 1, 1, nil, []byte("msg")); err != nil {
			t.Fatal(err)
		}
		if n := aeadCacheLen(); n > aeadCacheCap {
			t.Fatalf("aeadCache grew to %d entries (cap %d)", n, aeadCacheCap)
		}
	}
	got, err := GCMSeal(probe, 1, 1, nil, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("seal changed across cache flush")
	}
}

// FuzzCMACBatchEquivalence differentially fuzzes the batched CMAC
// (assembly kernel on amd64, scalar grouping elsewhere) against the
// scalar per-message path over arbitrary keys, batch shapes, and
// message lengths. Wired into the CI fuzz-smoke job.
func FuzzCMACBatchEquivalence(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), []byte{}, uint8(1))
	f.Add([]byte("0123456789abcdef"), []byte("hello world, this is a cmac batch"), uint8(3))
	f.Add(make([]byte, 16), bytes.Repeat([]byte{0xa5}, 200), uint8(9))
	f.Add([]byte("ffffffffffffffff"), bytes.Repeat([]byte{1}, 64), uint8(16))
	f.Fuzz(func(t *testing.T, key, pool []byte, n uint8) {
		if len(key) != 16 {
			t.Skip()
		}
		count := int(n)%17 + 1
		// Slice the fuzz pool into count messages of data-dependent
		// lengths, covering empty, ragged, and multi-block cases.
		msgs := make([][]byte, count)
		off := 0
		for i := range msgs {
			if off >= len(pool) {
				msgs[i] = nil
				continue
			}
			l := (int(pool[off]) * 7) % (len(pool) - off + 1)
			msgs[i] = pool[off : off+l]
			off += l
		}
		tags := make([][16]byte, count)
		if err := CMACBatch(key, msgs, tags); err != nil {
			t.Fatal(err)
		}
		for i, msg := range msgs {
			want, err := CMAC(key, msg)
			if err != nil {
				t.Fatal(err)
			}
			if tags[i] != want {
				t.Fatalf("msg %d (len %d): batch %x, scalar %x", i, len(msg), tags[i], want)
			}
		}
	})
}
