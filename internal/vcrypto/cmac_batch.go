package vcrypto

import (
	"fmt"
	"sync"
)

// cmacLanes is the width of the batched kernel: 8 independent CBC-MAC
// chains per assembly call, enough to cover AESENC's latency/throughput
// gap on every AES-NI core.
const cmacLanes = 8

// CMACBatch computes the AES-CMAC (RFC 4493) of every msgs[i] under one
// key, writing the full 16-byte tags into tags[i]. It is bit-identical
// to calling CMAC per message (the differential fuzzer enforces this)
// and allocation-free on the steady state; with AES-NI it pipelines up
// to 8 message chains through one AES unit, amortizing the per-call
// overhead a single latency-bound chain cannot hide.
func CMACBatch(key []byte, msgs [][]byte, tags [][16]byte) error {
	if len(tags) < len(msgs) {
		return fmt.Errorf("vcrypto: CMACBatch tags %d < msgs %d", len(tags), len(msgs))
	}
	st, err := cmacStateFor(key)
	if err != nil {
		return err
	}
	if !useCMACAsm || !st.rkOK || len(msgs) < 2 {
		buf := cmacBufPool.Get().(*[2][16]byte)
		for i, msg := range msgs {
			tags[i] = cmacCore(st, msg, buf)
		}
		cmacBufPool.Put(buf)
		return nil
	}
	sc := cmacBatchPool.Get().(*cmacBatchScratch)
	for base := 0; base < len(msgs); base += cmacLanes {
		end := base + cmacLanes
		if end > len(msgs) {
			end = len(msgs)
		}
		cmacGroup(st, msgs[base:end], tags[base:end], sc)
	}
	cmacBatchPool.Put(sc)
	return nil
}

// cmacBatchScratch holds one batch call's working memory: the packed
// [step][lane]block gather buffer the kernel streams through, and the 8
// lane states. Pooled because both cross the assembly boundary and
// would otherwise escape per call.
type cmacBatchScratch struct {
	packed []byte
	states [cmacLanes][16]byte
}

var cmacBatchPool = sync.Pool{New: func() any { return new(cmacBatchScratch) }}

// cmacGroup runs up to 8 messages through the assembly kernel. The
// gather pass lays message blocks out as [step][lane] with the RFC 4493
// §2.4 subkey fold applied to each lane's final block, so the kernel
// itself is pure block chaining. Ragged lengths are handled by cutting
// the step stream at every distinct per-lane block count: a lane's tag
// is read from its state exactly at its final step, after which the
// lane absorbs zero blocks (its state keeps being encrypted, but the
// result is never read).
func cmacGroup(st *cmacState, msgs [][]byte, tags [][16]byte, sc *cmacBatchScratch) {
	var nb [cmacLanes]int
	nsteps := 0
	for i, msg := range msgs {
		n := (len(msg) + 15) / 16
		if n == 0 {
			n = 1
		}
		nb[i] = n
		if n > nsteps {
			nsteps = n
		}
	}
	need := nsteps * cmacLanes * 16
	if cap(sc.packed) < need {
		sc.packed = make([]byte, need)
	}
	packed := sc.packed[:need]
	clear(packed)

	for i, msg := range msgs {
		n := nb[i]
		for s := 0; s < n-1; s++ {
			copy(packed[s*cmacLanes*16+i*16:], msg[s*16:(s+1)*16])
		}
		dst := packed[(n-1)*cmacLanes*16+i*16:]
		dst = dst[:16]
		if len(msg) > 0 && len(msg)%16 == 0 {
			rem := msg[(n-1)*16:]
			for j := 0; j < 16; j++ {
				dst[j] = rem[j] ^ st.k1[j]
			}
		} else {
			rem := msg[(n-1)*16:]
			copy(dst, rem)
			dst[len(rem)] = 0x80
			for j := 0; j < 16; j++ {
				dst[j] ^= st.k2[j]
			}
		}
	}

	sc.states = [cmacLanes][16]byte{}
	done := 0
	for done < nsteps {
		next := nsteps
		for i := range msgs {
			if nb[i] > done && nb[i] < next {
				next = nb[i]
			}
		}
		cmacSteps8(&st.rk, &packed[done*cmacLanes*16], &sc.states, next-done)
		for i := range msgs {
			if nb[i] == next {
				tags[i] = sc.states[i]
			}
		}
		done = next
	}
}
