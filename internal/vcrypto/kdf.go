package vcrypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// DeriveKey implements a counter-mode KDF in the style of NIST SP
// 800-108 using HMAC-SHA256 as the PRF. It derives length bytes of key
// material from a parent key, a label identifying the purpose, and a
// context binding the derivation to a session or identity.
//
// The same (key, label, context, length) always yields the same output,
// which the protocol stacks rely on for session-key agreement.
func DeriveKey(key []byte, label, context string, length int) []byte {
	if length <= 0 {
		return nil
	}
	out := make([]byte, 0, length)
	var counter uint32 = 1
	for len(out) < length {
		mac := hmac.New(sha256.New, key)
		var ctr [4]byte
		binary.BigEndian.PutUint32(ctr[:], counter)
		mac.Write(ctr[:])
		mac.Write([]byte(label))
		mac.Write([]byte{0x00})
		mac.Write([]byte(context))
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(length)*8)
		mac.Write(lenBuf[:])
		out = append(out, mac.Sum(nil)...)
		counter++
	}
	return out[:length]
}

// KeyHierarchy derives per-purpose keys from a single long-term root,
// mirroring the automotive practice of provisioning one OEM master
// secret per ECU and deriving link keys from it.
type KeyHierarchy struct {
	root []byte
}

// NewKeyHierarchy returns a hierarchy rooted at root. The root must be
// at least 16 bytes of entropy.
func NewKeyHierarchy(root []byte) (*KeyHierarchy, error) {
	if len(root) < 16 {
		return nil, fmt.Errorf("vcrypto: root key too short (%d bytes, need >=16)", len(root))
	}
	r := make([]byte, len(root))
	copy(r, root)
	return &KeyHierarchy{root: r}, nil
}

// SessionKey derives a 16-byte AES-128 session key for the named purpose
// and peer context.
func (h *KeyHierarchy) SessionKey(purpose, context string) []byte {
	return DeriveKey(h.root, purpose, context, 16)
}

// SessionKey256 derives a 32-byte AES-256 session key.
func (h *KeyHierarchy) SessionKey256(purpose, context string) []byte {
	return DeriveKey(h.root, purpose, context, 32)
}
