//go:build amd64

#include "textflag.h"

// func cmacSteps8(rk *[176]byte, packed *byte, states *[8][16]byte, nsteps int)
//
// Advances 8 independent AES-128 CBC-MAC chains by nsteps blocks each:
// per step, lane c absorbs packed[step][c] (state ^= block, then one
// full AES-128 encryption of the state). X0..X7 hold the 8 lane states
// across every step, so the only memory traffic is the packed message
// blocks and the shared round keys; the 8 AESENCs per round are
// independent, which keeps the AES units' pipelines full — a single
// chain is latency-bound on exactly these instructions.
//
// Lanes are never combined and each lane's block order is its message
// order, so every chain is bit-identical to cipher.Block.Encrypt-based
// scalar CMAC (the cmacCore fallback). The caller zero-pads inactive
// lanes; encrypting a dead lane's state is harmless garbage-in,
// garbage-ignored.
TEXT ·cmacSteps8(SB), NOSPLIT, $0-32
	MOVQ rk+0(FP), DI
	MOVQ packed+8(FP), SI
	MOVQ states+16(FP), DX
	MOVQ nsteps+24(FP), CX
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS 32(DX), X2
	MOVUPS 48(DX), X3
	MOVUPS 64(DX), X4
	MOVUPS 80(DX), X5
	MOVUPS 96(DX), X6
	MOVUPS 112(DX), X7
	TESTQ CX, CX
	JZ   store

step:
	// Absorb this step's 8 message blocks, then whiten with round key 0.
	MOVUPS (SI), X8
	MOVUPS 16(SI), X9
	MOVUPS 32(SI), X10
	MOVUPS 48(SI), X11
	PXOR   X8, X0
	PXOR   X9, X1
	PXOR   X10, X2
	PXOR   X11, X3
	MOVUPS 64(SI), X12
	MOVUPS 80(SI), X13
	MOVUPS 96(SI), X14
	MOVUPS 112(SI), X15
	PXOR   X12, X4
	PXOR   X13, X5
	PXOR   X14, X6
	PXOR   X15, X7
	ADDQ   $128, SI

	MOVUPS (DI), X8
	PXOR   X8, X0
	PXOR   X8, X1
	PXOR   X8, X2
	PXOR   X8, X3
	PXOR   X8, X4
	PXOR   X8, X5
	PXOR   X8, X6
	PXOR   X8, X7

	// Rounds 1-9: one shared round key, eight independent AESENCs.
	MOVQ $16, BX

round:
	MOVUPS (DI)(BX*1), X8
	AESENC X8, X0
	AESENC X8, X1
	AESENC X8, X2
	AESENC X8, X3
	AESENC X8, X4
	AESENC X8, X5
	AESENC X8, X6
	AESENC X8, X7
	ADDQ   $16, BX
	CMPQ   BX, $160
	JNE    round

	MOVUPS     160(DI), X8
	AESENCLAST X8, X0
	AESENCLAST X8, X1
	AESENCLAST X8, X2
	AESENCLAST X8, X3
	AESENCLAST X8, X4
	AESENCLAST X8, X5
	AESENCLAST X8, X6
	AESENCLAST X8, X7

	DECQ CX
	JNZ  step

store:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	MOVUPS X4, 64(DX)
	MOVUPS X5, 80(DX)
	MOVUPS X6, 96(DX)
	MOVUPS X7, 112(DX)
	RET

// func hasAESNI() bool
//
// CPUID leaf 1, ECX bit 25. AES-NI is not part of the amd64 baseline
// the way SSE2 is, so the build-time haveCMACAsm gate is refined by
// this one-time runtime probe.
TEXT ·hasAESNI(SB), NOSPLIT, $0-1
	MOVL  $1, AX
	XORL  CX, CX
	CPUID
	SHRL  $25, CX
	ANDL  $1, CX
	MOVB  CX, ret+0(FP)
	RET
