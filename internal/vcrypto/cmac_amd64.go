//go:build amd64

package vcrypto

// haveCMACAsm gates the AES-NI batched CMAC kernel in CMACBatch.
const haveCMACAsm = true

// useCMACAsm refines the build-time gate with the one-time CPUID probe:
// AES-NI postdates the amd64 baseline (unlike the SSE2 the uwb
// correlator leans on), so pre-2010 hardware falls back to the scalar
// path. The probe runs once at init; the batched and scalar paths are
// bit-identical either way.
var useCMACAsm = hasAESNI()

// cmacSteps8 advances 8 independent AES-128 CBC-MAC chains by nsteps
// blocks each; see cmac_amd64.s for the lane and ordering contract.
//
//go:noescape
func cmacSteps8(rk *[176]byte, packed *byte, states *[8][16]byte, nsteps int)

// hasAESNI reports whether the CPU implements the AES-NI extension.
func hasAESNI() bool
