package vcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"sync"
)

// GCMSeal encrypts and authenticates plaintext with AES-GCM under key,
// using a 12-byte nonce constructed from the 8-byte channel identifier
// and 4-byte packet number — the construction MACsec uses (SCI || PN).
// aad is additionally authenticated but not encrypted. The returned
// slice is ciphertext||tag (16-byte tag).
func GCMSeal(key []byte, sci uint64, pn uint32, aad, plaintext []byte) ([]byte, error) {
	return GCMSealInto(nil, key, sci, pn, aad, plaintext)
}

// GCMSealInto is GCMSeal appending into dst: batch protect paths hand
// in a pooled wire buffer (typically the header already written) so the
// sealed frame costs no allocation once the buffer has grown to size.
func GCMSealInto(dst, key []byte, sci uint64, pn uint32, aad, plaintext []byte) ([]byte, error) {
	aead, err := aeadFor(key)
	if err != nil {
		return nil, err
	}
	nonce := noncePool.Get().(*[12]byte)
	fillNonce(nonce, sci, pn)
	out := aead.Seal(dst, nonce[:], plaintext, aad)
	noncePool.Put(nonce)
	return out, nil
}

// GCMOpen reverses GCMSeal, returning the plaintext or an error if
// authentication fails.
func GCMOpen(key []byte, sci uint64, pn uint32, aad, sealed []byte) ([]byte, error) {
	pt, err := GCMOpenInto(nil, key, sci, pn, aad, sealed)
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// GCMOpenInto is GCMOpen appending the plaintext into dst, for verify
// paths that recycle their output buffers across a batch.
func GCMOpenInto(dst, key []byte, sci uint64, pn uint32, aad, sealed []byte) ([]byte, error) {
	aead, err := aeadFor(key)
	if err != nil {
		return nil, err
	}
	nonce := noncePool.Get().(*[12]byte)
	fillNonce(nonce, sci, pn)
	pt, err := aead.Open(dst, nonce[:], sealed, aad)
	noncePool.Put(nonce)
	if err != nil {
		return nil, fmt.Errorf("vcrypto: gcm authentication failed: %w", err)
	}
	return pt, nil
}

// GCMTag computes an authentication-only tag (integrity without
// confidentiality) by sealing an empty plaintext with msg as AAD. This
// is how MACsec integrity-only mode and CANsec authentication-only
// profiles are modelled.
func GCMTag(key []byte, sci uint64, pn uint32, msg []byte) ([]byte, error) {
	return GCMSeal(key, sci, pn, msg, nil)
}

// GCMTagInto is GCMTag appending the 16-byte tag into dst.
func GCMTagInto(dst, key []byte, sci uint64, pn uint32, msg []byte) ([]byte, error) {
	return GCMSealInto(dst, key, sci, pn, msg, nil)
}

// GCMVerifyTag checks a tag produced by GCMTag.
func GCMVerifyTag(key []byte, sci uint64, pn uint32, msg, tag []byte) bool {
	_, err := GCMOpen(key, sci, pn, msg, tag)
	return err == nil
}

// aeadCacheCap bounds the per-key AEAD cache, with the same
// flush-on-overflow policy as the CMAC state cache: drop everything,
// let live keys re-derive. See cmacCacheCap for the rationale.
const aeadCacheCap = 256

// aeadCache memoizes the AES-GCM AEAD per key. Every protected frame
// used to pay a full AES key expansion plus GCM table setup inside
// newGCM — by far the dominant cost of the MACsec/IPsec/(D)TLS/CANsec
// per-frame paths. A sealed AES-GCM AEAD is immutable after
// construction, so one instance serves concurrent sessions; caching it
// changes no output bytes.
var (
	aeadMu    sync.RWMutex
	aeadCache = map[string]cipher.AEAD{}
)

func aeadFor(key []byte) (cipher.AEAD, error) {
	aeadMu.RLock()
	aead, ok := aeadCache[string(key)]
	aeadMu.RUnlock()
	if ok {
		return aead, nil
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("vcrypto: gcm key: %w", err)
	}
	aead, err = cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	aeadMu.Lock()
	if exist, ok := aeadCache[string(key)]; ok {
		aead = exist
	} else {
		if len(aeadCache) >= aeadCacheCap {
			aeadCache = make(map[string]cipher.AEAD, aeadCacheCap)
		}
		aeadCache[string(key)] = aead
	}
	aeadMu.Unlock()
	return aead, nil
}

// aeadCacheLen exposes the live entry count (cache-bound tests).
func aeadCacheLen() int {
	aeadMu.RLock()
	defer aeadMu.RUnlock()
	return len(aeadCache)
}

// noncePool recycles nonce buffers: a stack [12]byte would escape to
// the heap through the cipher.AEAD interface call, costing one
// allocation per sealed or opened frame on the hot paths.
var noncePool = sync.Pool{New: func() any { return new([12]byte) }}

func fillNonce(nonce *[12]byte, sci uint64, pn uint32) {
	binary.BigEndian.PutUint64(nonce[0:8], sci)
	binary.BigEndian.PutUint32(nonce[8:12], pn)
}
