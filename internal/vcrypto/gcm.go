package vcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// GCMSeal encrypts and authenticates plaintext with AES-GCM under key,
// using a 12-byte nonce constructed from the 8-byte channel identifier
// and 4-byte packet number — the construction MACsec uses (SCI || PN).
// aad is additionally authenticated but not encrypted. The returned
// slice is ciphertext||tag (16-byte tag).
func GCMSeal(key []byte, sci uint64, pn uint32, aad, plaintext []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := gcmNonce(sci, pn)
	return aead.Seal(nil, nonce[:], plaintext, aad), nil
}

// GCMOpen reverses GCMSeal, returning the plaintext or an error if
// authentication fails.
func GCMOpen(key []byte, sci uint64, pn uint32, aad, sealed []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := gcmNonce(sci, pn)
	pt, err := aead.Open(nil, nonce[:], sealed, aad)
	if err != nil {
		return nil, fmt.Errorf("vcrypto: gcm authentication failed: %w", err)
	}
	return pt, nil
}

// GCMTag computes an authentication-only tag (integrity without
// confidentiality) by sealing an empty plaintext with msg as AAD. This
// is how MACsec integrity-only mode and CANsec authentication-only
// profiles are modelled.
func GCMTag(key []byte, sci uint64, pn uint32, msg []byte) ([]byte, error) {
	return GCMSeal(key, sci, pn, msg, nil)
}

// GCMVerifyTag checks a tag produced by GCMTag.
func GCMVerifyTag(key []byte, sci uint64, pn uint32, msg, tag []byte) bool {
	_, err := GCMOpen(key, sci, pn, msg, tag)
	return err == nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("vcrypto: gcm key: %w", err)
	}
	return cipher.NewGCM(block)
}

func gcmNonce(sci uint64, pn uint32) [12]byte {
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[0:8], sci)
	binary.BigEndian.PutUint32(nonce[8:12], pn)
	return nonce
}
