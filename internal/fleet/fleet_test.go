package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autosec/internal/campaign"
	"autosec/internal/config"
	"autosec/internal/core"
	"autosec/internal/fleet"
	"autosec/internal/resultcache"
	"autosec/internal/scenario"
	"autosec/internal/server"
	"autosec/internal/sim"
)

// The test grid mixes registry and scenario experiments: cheap cells,
// both namespaces, small enough to run many schedules under -race.
var testIDs = []string{"fig3", "exp-ids", "scn-alpha"}

// workerConfig builds a daemon config with the scn-alpha corpus and
// the given cache directory ("" = a private temp dir).
func workerConfig(t *testing.T, cacheDir string) config.Config {
	t.Helper()
	dir := t.TempDir()
	scnDir := filepath.Join(dir, "scenarios")
	sp := scenario.DefaultSpec("alpha")
	folder := filepath.Join(scnDir, "alpha")
	if err := os.MkdirAll(folder, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(folder, scenario.SpecFile), sp.MarshalINI(), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.ScenarioDir = scnDir
	if cacheDir == "" {
		cacheDir = filepath.Join(dir, "cache")
	}
	cfg.Cache.Dir = cacheDir
	return cfg
}

// newWorker starts one in-process avsecd worker, optionally wrapped in
// a fault-injection middleware.
func newWorker(t *testing.T, cfg config.Config, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(s.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// serialBaseline is the ground truth: the exact spec `avsec campaign`
// runs, serial and pool-free, in this process.
func serialBaseline(t *testing.T, ids []string, seeds []int64, recheck float64) *campaign.Result {
	t.Helper()
	alpha, err := scenario.Compile(scenario.DefaultSpec("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(campaign.Spec{
		IDs:     ids,
		Seeds:   seeds,
		Jobs:    1,
		Recheck: recheck,
		RunTyped: func(id string, seed int64) (string, []sim.Metric, error) {
			var r *core.RunResult
			var err error
			if id == alpha.ID {
				r, err = core.RunResultOf(alpha, seed, core.RunOptions{})
			} else {
				r, err = core.RunExperimentResult(id, seed, core.RunOptions{})
			}
			if err != nil {
				return "", nil, err
			}
			return r.Report, r.Metrics, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// cellOrder renders the OnCell observation sequence for order checks.
func cellOrder(cells []campaign.CellResult) []string {
	var out []string
	for _, c := range cells {
		out = append(out, fmt.Sprintf("%s/%d", c.ID, c.Seed))
	}
	return out
}

func cacheStats(t *testing.T, ts *httptest.Server) resultcache.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Stats resultcache.Stats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Stats
}

func firstDiff(a, b string) string {
	off := 0
	for off < len(a) && off < len(b) && a[off] == b[off] {
		off++
	}
	end := func(s string) string {
		e := off + 32
		if e > len(s) {
			e = len(s)
		}
		return s[off:e]
	}
	return fmt.Sprintf("byte %d: %q vs %q", off, end(a), end(b))
}

// TestSerialParallelCrossCheckFleet extends the serial/parallel
// cross-check (internal/core, internal/server; same CI -run pattern)
// to the fleet tier: the coordinator's merged output must be
// byte-identical to the serial CLI campaign at every worker count and
// chunk size, its OnCell stream must observe grid order, and the
// determinism self-check must survive distribution (the rendered
// header counts the same rechecked cells).
func TestSerialParallelCrossCheckFleet(t *testing.T) {
	seeds := campaign.Seeds(42, 3)
	serial := serialBaseline(t, testIDs, seeds, 0.25)
	want := serial.RenderSummary()
	wantOrder := cellOrder(serial.Cells)

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, n := range workerCounts {
		for _, chunkSize := range []int{1, 3} {
			t.Run(fmt.Sprintf("workers=%d/chunk=%d", n, chunkSize), func(t *testing.T) {
				var urls []string
				for i := 0; i < n; i++ {
					urls = append(urls, newWorker(t, workerConfig(t, ""), nil).URL)
				}
				var streamed []campaign.CellResult
				rep, err := fleet.Run(context.Background(), fleet.Config{
					Workers:   urls,
					IDs:       testIDs,
					Seeds:     seeds,
					ChunkSize: chunkSize,
					Recheck:   0.25,
					OnCell:    func(c campaign.CellResult) { streamed = append(streamed, c) },
				})
				if err != nil {
					t.Fatal(err)
				}
				got := rep.Result.RenderSummary()
				if got != want {
					t.Errorf("fleet output diverged from serial CLI output\nfirst difference: %s", firstDiff(want, got))
				}
				if o := cellOrder(streamed); !equalStrings(o, wantOrder) {
					t.Errorf("OnCell order %v, want grid order %v", o, wantOrder)
				}
				if rep.Stats.Rechecks != serial.Rechecked() {
					t.Errorf("fleet rechecked %d cells, serial rechecked %d", rep.Stats.Rechecks, serial.Rechecked())
				}
			})
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHandshakeRefusesMixedVersions pins the fleet's version
// invariant: two workers reporting different code_version values are
// refused before any work is dispatched, because shared cache keys and
// the determinism contract are only sound across identical binaries.
func TestHandshakeRefusesMixedVersions(t *testing.T) {
	t.Parallel()
	stub := func(version string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"status": "ok", "code_version": %q, "jobs": 1, "gomaxprocs": 1}`, version)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	_, err := fleet.Run(context.Background(), fleet.Config{
		Workers: []string{stub("aaa").URL, stub("bbb").URL},
		IDs:     []string{"fig3"},
		Seeds:   []int64{42},
	})
	if err == nil || !strings.Contains(err.Error(), "mixed code versions") {
		t.Fatalf("mixed-version fleet not refused: %v", err)
	}

	_, err = fleet.Run(context.Background(), fleet.Config{
		Workers: []string{stub("").URL},
		IDs:     []string{"fig3"},
		Seeds:   []int64{42},
	})
	if err == nil || !strings.Contains(err.Error(), "code_version") {
		t.Fatalf("versionless worker not refused: %v", err)
	}
}

// TestHandshakeRefusesMixedExtensions pins the second fleet invariant:
// workers running the same code version but registering different
// extension sets (one carries a drop-in the other lacks) are refused
// at handshake, before a campaign can fail mid-flight on an unknown
// suite or attack name.
func TestHandshakeRefusesMixedExtensions(t *testing.T) {
	t.Parallel()
	stub := func(extensions string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"status": "ok", "code_version": "aaa", "extensions": %q, "jobs": 1, "gomaxprocs": 1}`, extensions)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	_, err := fleet.Run(context.Background(), fleet.Config{
		Workers: []string{stub("fp-with-demo").URL, stub("fp-without-demo").URL},
		IDs:     []string{"fig3"},
		Seeds:   []int64{42},
	})
	if err == nil || !strings.Contains(err.Error(), "mixed extension sets") {
		t.Fatalf("mixed-extension fleet not refused: %v", err)
	}
}

// TestFleetCrossWorkerCacheReuse pins the shared-cache story: a second
// worker pointed at the cache directory a first worker populated
// serves the whole campaign from cache (every cell a hit, zero
// stores) and still produces the serial CLI's exact bytes.
func TestFleetCrossWorkerCacheReuse(t *testing.T) {
	seeds := campaign.Seeds(42, 3)
	want := serialBaseline(t, testIDs, seeds, 0).RenderSummary()
	sharedCache := filepath.Join(t.TempDir(), "cache")

	first := newWorker(t, workerConfig(t, sharedCache), nil)
	rep, err := fleet.Run(context.Background(), fleet.Config{
		Workers: []string{first.URL}, IDs: testIDs, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Result.RenderSummary(); got != want {
		t.Errorf("first fleet run diverged from serial output\nfirst difference: %s", firstDiff(want, got))
	}
	cells := uint64(len(testIDs) * len(seeds))
	if st := cacheStats(t, first); st.Stores < cells {
		t.Fatalf("first worker stored %d entries, want >= %d", st.Stores, cells)
	}

	// A different worker instance, same cache directory: pure replay.
	second := newWorker(t, workerConfig(t, sharedCache), nil)
	rep, err = fleet.Run(context.Background(), fleet.Config{
		Workers: []string{second.URL}, IDs: testIDs, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Result.RenderSummary(); got != want {
		t.Errorf("cache-replayed fleet run diverged from serial output\nfirst difference: %s", firstDiff(want, got))
	}
	st := cacheStats(t, second)
	if st.Hits < cells {
		t.Errorf("replay worker hit the cache %d times, want >= %d (cross-worker reuse)", st.Hits, cells)
	}
	if st.Stores != 0 {
		t.Errorf("replay worker stored %d new entries, want 0", st.Stores)
	}
}

// Fault-injection middlewares. Each wraps a healthy worker and injects
// one failure mode into its campaign endpoint.

// killStreamAfter aborts the connection of the first n campaign
// requests after `lines` complete stream lines: the
// killed-mid-stream worker.
func killStreamAfter(lines int, n int32) func(http.Handler) http.Handler {
	var used atomic.Int32
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCampaign(r) && used.Add(1) <= n {
				next.ServeHTTP(&killWriter{ResponseWriter: w, quota: lines}, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

type killWriter struct {
	http.ResponseWriter
	quota int
}

func (kw *killWriter) Write(p []byte) (int, error) {
	if kw.quota -= bytes.Count(p, []byte("\n")); kw.quota < 0 {
		panic(http.ErrAbortHandler)
	}
	return kw.ResponseWriter.Write(p)
}

func (kw *killWriter) Flush() {
	if f, ok := kw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// hangFirstCampaign never answers the first campaign request: the
// worker that hangs past every deadline.
func hangFirstCampaign() func(http.Handler) http.Handler {
	var used atomic.Bool
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCampaign(r) && used.CompareAndSwap(false, true) {
				// Drain the body so the server's background read is
				// armed: that is what turns the coordinator's client-side
				// disconnect into a context cancellation here.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// failCampaigns returns HTTP 500 for the first n campaign requests.
func failCampaigns(n int32) func(http.Handler) http.Handler {
	var used atomic.Int32
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCampaign(r) && used.Add(1) <= n {
				http.Error(w, "injected fault", http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// abortAllCampaigns kills every campaign connection: the worker that
// dies right after a clean handshake.
func abortAllCampaigns() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isCampaign(r) {
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
}

func isCampaign(r *http.Request) bool {
	return r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/campaign")
}

// TestFleetFaultInjection drives one faulty worker next to one healthy
// worker through every injected failure mode and requires the exact
// serial bytes every time: re-dispatch, straggler re-issue, and
// dedup must make worker failure invisible in the merged output.
func TestFleetFaultInjection(t *testing.T) {
	seeds := campaign.Seeds(42, 4)
	want := serialBaseline(t, testIDs, seeds, 0.25).RenderSummary()
	wantOrder := func() []string {
		return cellOrder(serialBaseline(t, testIDs, seeds, 0.25).Cells)
	}()

	cases := []struct {
		name     string
		fault    func(http.Handler) http.Handler
		timeout  time.Duration
		wantDead bool
	}{
		// Stream cut after the campaign header + one cell: the delivered
		// prefix is kept, the remainder re-dispatches.
		{name: "killed-mid-stream", fault: killStreamAfter(2, 1)},
		// First request hangs forever: the client-side chunk deadline
		// (forwarded as deadline_ms) re-queues its cells.
		{name: "hang-past-deadline", fault: hangFirstCampaign(), timeout: 2 * time.Second},
		// Two straight 500s: plain retry, worker survives.
		{name: "http-500", fault: failCampaigns(2)},
		// Every campaign connection dies after a clean handshake: the
		// worker is retired and the healthy worker absorbs the grid.
		{name: "dead-after-handshake", fault: abortAllCampaigns(), wantDead: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faulty := newWorker(t, workerConfig(t, ""), tc.fault)
			healthy := newWorker(t, workerConfig(t, ""), nil)
			var streamed []campaign.CellResult
			rep, err := fleet.Run(context.Background(), fleet.Config{
				Workers:      []string{faulty.URL, healthy.URL},
				IDs:          testIDs,
				Seeds:        seeds,
				ChunkSize:    2,
				Recheck:      0.25,
				ChunkTimeout: tc.timeout,
				OnCell:       func(c campaign.CellResult) { streamed = append(streamed, c) },
			})
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Result.RenderSummary()
			if got != want {
				t.Errorf("merged output diverged from serial under fault\nfirst difference: %s", firstDiff(want, got))
			}
			if o := cellOrder(streamed); !equalStrings(o, wantOrder) {
				t.Errorf("OnCell order %v, want grid order %v", o, wantOrder)
			}
			if tc.wantDead {
				if !rep.Workers[0].Dead {
					t.Errorf("faulty worker not retired: %+v", rep.Workers[0])
				}
			}
		})
	}
}

// TestFleetCorruptCacheEntry injects on-disk corruption into one
// worker's populated cache: the damaged entry must degrade to
// recomputation (corrupt counter, not wrong bytes), and the merged
// output must stay byte-identical.
func TestFleetCorruptCacheEntry(t *testing.T) {
	seeds := campaign.Seeds(42, 3)
	want := serialBaseline(t, testIDs, seeds, 0).RenderSummary()
	cacheDir := filepath.Join(t.TempDir(), "cache")
	worker := newWorker(t, workerConfig(t, cacheDir), nil)

	// Populate the cache, then flip bytes in the middle of one entry.
	run := func() string {
		rep, err := fleet.Run(context.Background(), fleet.Config{
			Workers: []string{worker.URL}, IDs: testIDs, Seeds: seeds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result.RenderSummary()
	}
	if got := run(); got != want {
		t.Fatalf("pre-corruption run diverged\nfirst difference: %s", firstDiff(want, got))
	}
	cache, err := resultcache.New(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := cache.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no cache entries to corrupt")
	}
	path := cache.EntryPath(keys[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	before := cacheStats(t, worker)
	if got := run(); got != want {
		t.Errorf("post-corruption run diverged\nfirst difference: %s", firstDiff(want, got))
	}
	after := cacheStats(t, worker)
	if after.Corrupt != before.Corrupt+1 {
		t.Errorf("corrupt counter %d -> %d, want exactly one detection", before.Corrupt, after.Corrupt)
	}
	if after.Stores != before.Stores+1 {
		t.Errorf("stores %d -> %d, want exactly one healing recompute", before.Stores, after.Stores)
	}
}

// TestFleetAllWorkersDead pins the abort path: when every worker dies,
// Run returns the full grid with per-cell errors instead of hanging.
func TestFleetAllWorkersDead(t *testing.T) {
	t.Parallel()
	worker := newWorker(t, workerConfig(t, ""), abortAllCampaigns())
	seeds := campaign.Seeds(42, 2)
	rep, err := fleet.Run(context.Background(), fleet.Config{
		Workers: []string{worker.URL}, IDs: []string{"fig3"}, Seeds: seeds,
	})
	if err == nil {
		t.Fatal("all-dead fleet reported success")
	}
	if rep == nil || len(rep.Result.Cells) != len(seeds) {
		t.Fatalf("all-dead fleet did not return the full grid: %+v", rep)
	}
	for _, c := range rep.Result.Cells {
		if c.Err == nil {
			t.Errorf("cell %s/%d has no error after total fleet failure", c.ID, c.Seed)
		}
	}
	if !rep.Workers[0].Dead {
		t.Errorf("failed worker not marked dead: %+v", rep.Workers[0])
	}
}

// TestFleetContextCancel pins coordinator-side cancellation: a
// canceled context fails the run with the cancellation cause instead
// of dispatching work.
func TestFleetContextCancel(t *testing.T) {
	t.Parallel()
	worker := newWorker(t, workerConfig(t, ""), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fleet.Run(ctx, fleet.Config{
		Workers: []string{worker.URL}, IDs: []string{"fig3"}, Seeds: campaign.Seeds(42, 2),
	})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("canceled fleet did not report cancellation: %v", err)
	}
}
