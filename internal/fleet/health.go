package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WorkerHealth is the handshake document a worker serves at
// GET /api/v1/health (docs/DAEMON.md). CodeVersion is the content hash
// of the worker's binary — the part of every cell cache key that makes
// cross-worker cache reuse sound — Extensions is the worker's
// extension-set fingerprint (internal/ext.Fingerprint), and
// Jobs/GOMAXPROCS advertise the worker's compute capacity for
// chunk-assignment weighting.
type WorkerHealth struct {
	Status      string `json:"status"`
	CodeVersion string `json:"code_version"`
	Extensions  string `json:"extensions"`
	Experiments int    `json:"experiments"`
	Scenarios   int    `json:"scenarios"`
	Cache       string `json:"cache"`
	Jobs        int    `json:"jobs"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
}

// Handshake probes one worker's health endpoint.
func Handshake(ctx context.Context, client *http.Client, base string) (WorkerHealth, error) {
	var h WorkerHealth
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/api/v1/health", nil)
	if err != nil {
		return h, fmt.Errorf("fleet: worker %s: %w", base, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return h, fmt.Errorf("fleet: worker %s: %w", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return h, fmt.Errorf("fleet: worker %s: health: %w", base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("fleet: worker %s: health: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("fleet: worker %s: health: %w", base, err)
	}
	if h.Status != "ok" {
		return h, fmt.Errorf("fleet: worker %s: health status %q", base, h.Status)
	}
	if h.CodeVersion == "" {
		return h, fmt.Errorf("fleet: worker %s: health reports no code_version", base)
	}
	return h, nil
}

// HandshakeAll probes every worker and enforces the fleet's version
// invariants: all workers must run the identical binary AND register
// the identical extension set. Shared content-addressed cache keys
// include the code version, so a mixed fleet would silently never
// share results — and worse, the merged grid would mix outputs of two
// different implementations. A worker missing a drop-in extension
// would instead fail mid-campaign on an unknown suite or attack name,
// so both mismatches refuse at handshake time. Workers predating the
// extensions field report it empty; the comparison still holds — an
// old worker only pairs with other old workers.
func HandshakeAll(ctx context.Context, client *http.Client, workers []string) ([]WorkerHealth, error) {
	healths := make([]WorkerHealth, len(workers))
	for i, w := range workers {
		h, err := Handshake(ctx, client, w)
		if err != nil {
			return nil, err
		}
		healths[i] = h
	}
	for i := 1; i < len(healths); i++ {
		if healths[i].CodeVersion != healths[0].CodeVersion {
			var b strings.Builder
			fmt.Fprintf(&b, "fleet: mixed code versions across workers (cache keying and determinism require one binary):")
			for j, w := range workers {
				fmt.Fprintf(&b, "\n  %s  code_version %s", w, healths[j].CodeVersion)
			}
			return nil, fmt.Errorf("%s", b.String())
		}
		if healths[i].Extensions != healths[0].Extensions {
			var b strings.Builder
			fmt.Fprintf(&b, "fleet: mixed extension sets across workers (a worker missing a drop-in would fail mid-campaign on an unknown name):")
			for j, w := range workers {
				fmt.Fprintf(&b, "\n  %s  extensions %s", w, healths[j].Extensions)
			}
			return nil, fmt.Errorf("%s", b.String())
		}
	}
	return healths, nil
}
