// Package fleet implements the campaign fleet coordinator: it shards
// one (experiment × seed) campaign across N avsecd workers and merges
// the streamed results back into exact grid order, so the merged
// output is byte-identical to a single-host serial `avsec campaign`
// run at any worker count, chunk size, and completion interleaving.
//
// The coordinator extends the repo's two-level worker budget (cells ×
// replicates, DESIGN.md §7) into a three-level one: fleet → daemon →
// replicates. Each layer is pure scheduling — none of them is
// observable in result bytes:
//
//   - The grid is partitioned into chunks (one experiment, a run of
//     seeds) dispatched as POST /api/v1/campaign requests with bounded
//     in-flight chunks per worker, weighted by the capacity each
//     worker advertises in /api/v1/health.
//   - Every worker must report the same code_version during the
//     initial handshake; the coordinator refuses a mixed fleet because
//     the shared content-addressed cache keys (and the determinism
//     contract itself) are only sound across identical binaries.
//   - Cell events are merged as they stream: each cell lands at its
//     fixed grid index, duplicates are deduped deterministically
//     (byte-identical by the determinism contract, so first-wins is
//     order-independent), and the OnCell callback observes grid order
//     exactly like campaign.Spec.OnCell.
//   - Failures are handled by re-dispatch: a worker that errors,
//     disconnects mid-stream, or exceeds the per-chunk deadline has
//     its undelivered cells re-queued to the remaining workers, and a
//     straggler-aware tail mode re-issues the last outstanding chunks
//     to idle workers. Re-execution is idempotent by cache key, so a
//     duplicated completion costs a cache hit, never a wrong byte.
//   - The determinism self-check runs at the coordinator: the same
//     deterministic cell selection as campaign.Run
//     (campaign.SelectRechecks) is re-dispatched — usually to a
//     different worker, where it is typically served from the shared
//     cache — and compared byte-for-byte, which turns the recheck into
//     a continuous cross-worker cache-integrity check.
//
// `avsec fleet` is the CLI entry point; docs/FLEET.md documents the
// topology, chunking, retry semantics, and failure model. The
// fault-injection tests in this package pin the byte-identity contract
// across killed, hung, and cache-corrupted workers.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"autosec/internal/campaign"
)

// Config describes one fleet campaign.
type Config struct {
	// Workers lists the avsecd base URLs (e.g. http://127.0.0.1:8787).
	// Required, at least one.
	Workers []string
	// IDs are the experiment identifiers in presentation order; Seeds
	// the seed schedule. The merged grid is IDs × Seeds in grid order,
	// exactly like campaign.Spec.
	IDs   []string
	Seeds []int64
	// ChunkSize is the number of seeds per dispatched chunk within one
	// experiment (a chunk is one experiment at a run of consecutive
	// schedule positions, so it maps exactly onto one worker campaign
	// request). <= 0 means the default of 4. Result bytes never depend
	// on it.
	ChunkSize int
	// InFlight bounds concurrent chunk requests per worker. <= 0
	// derives it from the worker's advertised capacity (its resolved
	// `jobs`, clamped to [1, 4]) — the capacity-weighted assignment:
	// bigger workers pull more chunks from the shared queue.
	InFlight int
	// Jobs is forwarded as each chunk request's `jobs` field; 0 lets
	// every worker use its own configured default.
	Jobs int
	// Recheck is the determinism self-check fraction in [0, 1],
	// evaluated at the coordinator with the exact cell selection
	// campaign.Run uses, so the merged header line stays
	// byte-identical to the serial CLI's. RecheckSeed 0 uses the fixed
	// default selection seed.
	Recheck     float64
	RecheckSeed int64
	// Cache forwards the per-request cache opt-out; nil leaves every
	// worker's default in place.
	Cache *bool
	// ChunkTimeout bounds one chunk dispatch; it is enforced on the
	// client side and forwarded to the worker as deadline_ms so a hung
	// worker also stops computing. 0 means none — then a worker that
	// hangs forever can only be rescued by the straggler re-issue of
	// its chunks to other workers.
	ChunkTimeout time.Duration
	// MaxAttempts bounds how often a chunk is dispatched (first try
	// included) before its undelivered cells fail permanently. <= 0
	// means the default of 3.
	MaxAttempts int
	// CostHint, like campaign.Spec.CostHint, orders primary chunks
	// highest-cost-first so long experiments start early. Purely a
	// scheduling hint.
	CostHint func(id string) int
	// OnCell, when non-nil, observes every merged cell in grid order,
	// as soon as the cell (including its recheck, when selected) and
	// all its predecessors are complete. It is called with the
	// coordinator lock held: keep it fast.
	OnCell func(campaign.CellResult)
	// Logf, when non-nil, receives scheduling diagnostics (dispatches,
	// retries, steals, worker deaths). Never required for correctness.
	Logf func(format string, args ...any)
	// Client is the HTTP client used for every request; nil uses a
	// client without a global timeout (per-chunk deadlines come from
	// ChunkTimeout).
	Client *http.Client
}

// Stats counts scheduling events of one fleet run. Purely diagnostic:
// every value may differ between two runs whose merged output is
// byte-identical.
type Stats struct {
	Cells        int // grid cells
	Rechecks     int // cells double-executed by the self-check
	Chunks       int // chunks built (primary + recheck)
	Dispatches   int // chunk executions started
	Redispatches int // executions past a chunk's first (retries + steals)
	Steals       int // straggler re-issues by idle workers
	Duplicates   int // deliveries ignored because the cell was complete
}

// WorkerStatus reports one worker's share of a fleet run.
type WorkerStatus struct {
	URL    string
	Health WorkerHealth
	Slots  int // concurrent chunk requests granted
	Chunks int // chunk executions completed without transport error
	Cells  int // cell events delivered (including duplicates)
	Fails  int // transport-level failures
	Dead   bool
}

// Report is the full outcome of a fleet run: the merged campaign
// result plus the scheduling diagnostics.
type Report struct {
	Result  *campaign.Result
	Workers []WorkerStatus
	Stats   Stats
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Run executes the fleet campaign. Like campaign.Run it always returns
// the full Report (every cell in grid order); the error joins every
// cell failure and every determinism divergence, so a non-nil error
// means the merged result must not be trusted.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers")
	}
	if len(cfg.IDs) == 0 {
		return nil, errors.New("fleet: no experiment ids")
	}
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("fleet: no seeds")
	}
	if cfg.Recheck < 0 || cfg.Recheck > 1 {
		return nil, fmt.Errorf("fleet: recheck fraction %v outside [0, 1]", cfg.Recheck)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	healths, err := HandshakeAll(ctx, cfg.Client, cfg.Workers)
	if err != nil {
		return nil, err
	}

	// The grid, in campaign.Run's order, with the identical recheck
	// selection — this is what keeps the merged RenderSummary header
	// byte-identical to the serial CLI's.
	grid := make([]campaign.CellResult, 0, len(cfg.IDs)*len(cfg.Seeds))
	for _, id := range cfg.IDs {
		for _, seed := range cfg.Seeds {
			grid = append(grid, campaign.CellResult{ID: id, Seed: seed})
		}
	}
	mask := campaign.SelectRechecks(len(grid), cfg.Recheck, cfg.RecheckSeed)
	for i, re := range mask {
		grid[i].Rechecked = re
	}

	// Primary chunks cover every cell once, in grid order, reordered
	// only by the cost hint (highest first, stable — the collector
	// re-imposes grid order on all observable output). Recheck chunks
	// cover the selected cells a second time and queue after the
	// primaries, so they overlap the grid's tail and usually land on a
	// different worker than the primary did.
	var chunks []*chunk
	for i, id := range cfg.IDs {
		var refs []cellRef
		for j, seed := range cfg.Seeds {
			refs = append(refs, cellRef{id: id, seed: seed, gi: i*len(cfg.Seeds) + j})
		}
		chunks = append(chunks, splitChunks(id, refs, cfg.ChunkSize)...)
	}
	if cfg.CostHint != nil {
		sort.SliceStable(chunks, func(a, b int) bool {
			return cfg.CostHint(chunks[a].id) > cfg.CostHint(chunks[b].id)
		})
	}
	rechecks := 0
	for i, id := range cfg.IDs {
		var refs []cellRef
		for j, seed := range cfg.Seeds {
			gi := i*len(cfg.Seeds) + j
			if mask[gi] {
				refs = append(refs, cellRef{id: id, seed: seed, gi: gi})
				rechecks++
			}
		}
		chunks = append(chunks, splitChunks(id, refs, cfg.ChunkSize)...)
	}

	s := newSched(&cfg, grid, mask, healths)
	s.stats.Cells = len(grid)
	s.stats.Rechecks = rechecks
	s.stats.Chunks = len(chunks)
	start := time.Now()
	s.run(ctx, chunks)

	rep := &Report{
		Result: &campaign.Result{
			IDs:     append([]string(nil), cfg.IDs...),
			Seeds:   append([]int64(nil), cfg.Seeds...),
			Cells:   s.grid,
			Elapsed: time.Since(start),
		},
		Stats: s.stats,
	}
	for _, w := range s.workers {
		rep.Workers = append(rep.Workers, WorkerStatus{
			URL: w.url, Health: w.health, Slots: w.slots,
			Chunks: w.chunks, Cells: w.cells, Fails: w.fails, Dead: w.dead,
		})
	}

	var errs []error
	for i := range s.grid {
		c := &s.grid[i]
		if c.Err != nil {
			errs = append(errs, fmt.Errorf("fleet: %s seed %d: %w", c.ID, c.Seed, c.Err))
		}
		if c.Diverged {
			errs = append(errs, &campaign.DivergenceError{ID: c.ID, Seed: c.Seed, First: c.Report, Second: c.RecheckReport})
		}
		if c.MetricsDiverged {
			errs = append(errs, fmt.Errorf("fleet: determinism violation: %s seed %d produced identical reports but diverging typed metrics across workers", c.ID, c.Seed))
		}
	}
	return rep, errors.Join(errs...)
}
