package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"autosec/internal/campaign"
	"autosec/internal/sim"
)

// workerFailLimit retires a worker after this many consecutive
// transport-level failures; its undelivered chunks re-queue to the
// rest of the fleet.
const workerFailLimit = 3

// maxChunkCopies caps speculative duplication of one chunk: the
// primary dispatch plus at most one straggler re-issue at a time.
const maxChunkCopies = 2

// cellRef names one execution slot of the grid: cell gi of the merged
// grid, addressed on the wire as (id, seed).
type cellRef struct {
	id   string
	seed int64
	gi   int
}

// chunk is the dispatch unit: one experiment at a run of consecutive
// schedule positions, so it maps exactly onto one worker campaign
// request {ids: [id], seeds: [...]}.
type chunk struct {
	id       string
	cells    []cellRef
	attempts int   // dispatches started (first try included)
	active   int   // dispatches currently in flight
	queued   bool  // currently in the todo queue
	lastErr  error // last transport-level failure, for the final error
}

// splitChunks cuts refs into chunks of at most size cells.
func splitChunks(id string, refs []cellRef, size int) []*chunk {
	var out []*chunk
	for len(refs) > 0 {
		n := size
		if n > len(refs) {
			n = len(refs)
		}
		out = append(out, &chunk{id: id, cells: refs[:n:n]})
		refs = refs[n:]
	}
	return out
}

type workerState struct {
	url    string
	health WorkerHealth
	slots  int
	chunks int // chunk executions completed without transport error
	cells  int // cell events delivered
	fails  int
	consec int // consecutive transport failures
	dead   bool
}

// sched is the shared scheduler state: a FIFO chunk queue plus
// per-cell delivery accounting. Every field is guarded by mu; workers
// block on cond when the queue is empty and nothing is stealable.
type sched struct {
	cfg       *Config
	grid      []campaign.CellResult
	need      []int // deliveries required per cell: 1, or 2 when rechecked
	got       []int // deliveries landed per cell (capped at need)
	remaining int   // sum over cells of need-got
	cellDone  []bool
	emitted   int // next grid index to hand to OnCell
	all       []*chunk
	todo      []*chunk
	workers   []*workerState
	alive     int
	stats     Stats
	cancelRun context.CancelFunc
	mu        sync.Mutex
	cond      *sync.Cond
}

func newSched(cfg *Config, grid []campaign.CellResult, mask []bool, healths []WorkerHealth) *sched {
	s := &sched{cfg: cfg, grid: grid}
	s.cond = sync.NewCond(&s.mu)
	s.need = make([]int, len(grid))
	s.got = make([]int, len(grid))
	s.cellDone = make([]bool, len(grid))
	for i := range grid {
		s.need[i] = 1
		if mask[i] {
			s.need[i] = 2
		}
		s.remaining += s.need[i]
	}
	for i, url := range cfg.Workers {
		slots := cfg.InFlight
		if slots <= 0 {
			// Capacity weighting: a worker advertising more jobs gets
			// more concurrent chunks, clamped so one huge worker cannot
			// hoard the whole queue against re-dispatch.
			slots = healths[i].Jobs
			if slots < 1 {
				slots = 1
			}
			if slots > 4 {
				slots = 4
			}
		}
		s.workers = append(s.workers, &workerState{url: url, health: healths[i], slots: slots})
	}
	s.alive = len(s.workers)
	return s
}

// run drives the whole dispatch: one goroutine per worker slot pulls
// chunks until every cell has all its deliveries. Returns only when
// all slot goroutines have exited.
func (s *sched) run(ctx context.Context, chunks []*chunk) {
	s.all = chunks
	for _, ch := range chunks {
		ch.queued = true
	}
	s.todo = append(s.todo, chunks...)

	// Every chunk request descends from runCtx, canceled the moment the
	// last delivery lands (or the run aborts) so in-flight requests to
	// hung workers cannot block the join below.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.mu.Lock()
	s.cancelRun = cancel
	s.mu.Unlock()

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.abortLocked(fmt.Errorf("fleet canceled: %w", context.Cause(ctx)))
			s.mu.Unlock()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for _, w := range s.workers {
		for i := 0; i < w.slots; i++ {
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				for {
					ch := s.next(w)
					if ch == nil {
						return
					}
					s.execute(runCtx, w, ch)
				}
			}(w)
		}
	}
	wg.Wait()
}

// next blocks until there is a chunk for w, the run is complete, or w
// is dead. It prefers the FIFO queue (primaries in cost order, then
// rechecks, then requeued failures); when the queue is empty it enters
// the straggler tail mode and re-issues the largest outstanding
// in-flight chunk.
func (s *sched) next(w *workerState) *chunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.remaining == 0 || w.dead {
			return nil
		}
		for len(s.todo) > 0 {
			ch := s.todo[0]
			s.todo = s.todo[1:]
			ch.queued = false
			if !s.undeliveredLocked(ch) {
				continue
			}
			if ch.attempts >= s.cfg.MaxAttempts {
				// Defensive: requeue and execute-end already gate on
				// MaxAttempts, so an exhausted chunk should not be
				// queued; fail it rather than loop.
				if ch.active == 0 {
					s.failChunkLocked(ch)
				}
				continue
			}
			ch.attempts++
			ch.active++
			if ch.attempts > 1 {
				s.stats.Redispatches++
			}
			return ch
		}
		if ch := s.stealLocked(); ch != nil {
			ch.attempts++
			ch.active++
			s.stats.Redispatches++
			s.stats.Steals++
			s.cfg.logf("fleet: idle worker %s re-issuing straggler chunk %s (%d cells)", w.url, ch.id, len(ch.cells))
			return ch
		}
		s.cond.Wait()
	}
}

// stealLocked picks the in-flight chunk with the most undelivered
// cells, if any chunk still has copy budget. This is what rescues a
// run from a worker that hangs without failing: an idle worker
// duplicates the straggler's chunk, and whichever copy finishes first
// delivers (re-execution is idempotent by cache key, duplicates are
// deduped, so speculation is invisible in result bytes).
func (s *sched) stealLocked() *chunk {
	var best *chunk
	bestN := 0
	for _, ch := range s.all {
		if ch.queued || ch.active == 0 || ch.active >= maxChunkCopies || ch.attempts >= s.cfg.MaxAttempts {
			continue
		}
		n := 0
		for _, ref := range ch.cells {
			if s.got[ref.gi] < s.need[ref.gi] {
				n++
			}
		}
		if n > bestN {
			best, bestN = ch, n
		}
	}
	return best
}

func (s *sched) undeliveredLocked(ch *chunk) bool {
	for _, ref := range ch.cells {
		if s.got[ref.gi] < s.need[ref.gi] {
			return true
		}
	}
	return false
}

// failChunkLocked records a permanent failure for every cell of ch
// that is still undelivered.
func (s *sched) failChunkLocked(ch *chunk) {
	cause := ch.lastErr
	if cause == nil {
		cause = errors.New("dispatch attempts exhausted")
	}
	for _, ref := range ch.cells {
		if s.got[ref.gi] < s.need[ref.gi] {
			s.deliverLocked(ref, cellEvent{
				Error: fmt.Sprintf("chunk failed after %d dispatch attempts: %v", ch.attempts, cause),
			}, nil, 0)
		}
	}
}

// abortLocked ends the run: every fully-undelivered cell fails with
// err, partially-delivered cells keep their primary result, and all
// in-flight requests are canceled.
func (s *sched) abortLocked(err error) {
	if s.remaining == 0 {
		return
	}
	for gi := range s.grid {
		if s.got[gi] >= s.need[gi] {
			continue
		}
		if s.got[gi] == 0 && s.grid[gi].Err == nil {
			s.grid[gi].Err = err
		}
		s.got[gi] = s.need[gi]
		s.cellDone[gi] = true
	}
	s.remaining = 0
	for s.emitted < len(s.grid) && s.cellDone[s.emitted] {
		if s.cfg.OnCell != nil {
			s.cfg.OnCell(s.grid[s.emitted])
		}
		s.emitted++
	}
	if s.cancelRun != nil {
		s.cancelRun()
	}
	s.cond.Broadcast()
}

// deliverLocked lands one cell event at its grid index. The first
// delivery fills the cell; the second (recheck or speculative
// duplicate) is the determinism comparison, exactly like the second
// execution in campaign.runCell; anything beyond need is counted and
// dropped — sound because the determinism contract makes every
// correct duplicate byte-identical, so first-wins cannot depend on
// scheduling. Completing a cell flushes the done prefix to OnCell in
// grid order.
func (s *sched) deliverLocked(ref cellRef, ev cellEvent, w *workerState, elapsed time.Duration) {
	if w != nil {
		w.cells++
	}
	if s.got[ref.gi] >= s.need[ref.gi] {
		s.stats.Duplicates++
		return
	}
	s.got[ref.gi]++
	s.remaining--
	c := &s.grid[ref.gi]
	if s.got[ref.gi] == 1 {
		c.Report = ev.Report
		c.Metrics = ev.Metrics
		c.Elapsed = elapsed
		if ev.Error != "" {
			c.Err = errors.New(ev.Error)
		}
		if c.Err != nil && s.need[ref.gi] == 2 {
			// A failed cell is not recompared; serial runCell skips the
			// recheck after a primary error too.
			s.need[ref.gi] = 1
			s.remaining--
		}
	} else {
		if ev.Error != "" {
			c.Err = fmt.Errorf("determinism recheck: %s", ev.Error)
		} else {
			if ev.Report != c.Report {
				c.Diverged = true
				c.RecheckReport = ev.Report
			}
			if !sim.MetricsEqual(c.Metrics, ev.Metrics) {
				c.MetricsDiverged = true
			}
		}
	}
	if s.got[ref.gi] >= s.need[ref.gi] {
		s.cellDone[ref.gi] = true
		for s.emitted < len(s.grid) && s.cellDone[s.emitted] {
			if s.cfg.OnCell != nil {
				s.cfg.OnCell(s.grid[s.emitted])
			}
			s.emitted++
		}
	}
	if s.remaining == 0 && s.cancelRun != nil {
		// Unblock any request still streaming to a straggler.
		s.cancelRun()
	}
}

// execute runs one dispatch of ch on w and settles the bookkeeping:
// consecutive transport failures retire the worker, undelivered cells
// re-queue (bounded by MaxAttempts), and an all-dead fleet aborts.
func (s *sched) execute(ctx context.Context, w *workerState, ch *chunk) {
	s.mu.Lock()
	// Snapshot what this dispatch still owes; a duplicated or requeued
	// chunk may find some cells already delivered by another copy.
	var cells []cellRef
	for _, ref := range ch.cells {
		if s.got[ref.gi] < s.need[ref.gi] {
			cells = append(cells, ref)
		}
	}
	if len(cells) == 0 {
		ch.active--
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.stats.Dispatches++
	s.mu.Unlock()

	terr := s.postChunk(ctx, w, ch, cells)

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.cond.Broadcast()
	ch.active--
	if s.remaining == 0 {
		// The run completed while this request was in flight (its
		// context was canceled under it); nothing left to settle.
		return
	}
	if terr != nil {
		ch.lastErr = terr
		w.fails++
		w.consec++
		s.cfg.logf("fleet: worker %s: chunk %s attempt %d failed: %v", w.url, ch.id, ch.attempts, terr)
		if w.consec >= workerFailLimit && !w.dead {
			w.dead = true
			s.alive--
			s.cfg.logf("fleet: worker %s retired after %d consecutive failures", w.url, w.consec)
		}
	} else {
		w.consec = 0
		w.chunks++
	}
	missing := false
	for _, ref := range cells {
		if s.got[ref.gi] < s.need[ref.gi] {
			missing = true
			break
		}
	}
	if missing {
		if terr == nil && ch.lastErr == nil {
			ch.lastErr = errors.New("worker stream ended before delivering every chunk cell")
		}
		switch {
		case ch.attempts >= s.cfg.MaxAttempts:
			if ch.active == 0 {
				s.failChunkLocked(ch)
			}
		case !ch.queued:
			ch.queued = true
			s.todo = append(s.todo, ch)
		}
	}
	if s.alive == 0 && s.remaining > 0 {
		s.abortLocked(errors.New("all fleet workers failed"))
	}
}

// chunkRequest is the wire form of one dispatch: the server's
// CampaignRequest restricted to the fields the coordinator drives.
// Recheck is always sent (the coordinator runs the self-check itself,
// so workers must not double-execute), and reports are always
// requested because byte-level report merge is the whole point.
type chunkRequest struct {
	IDs            []string `json:"ids"`
	Seeds          []int64  `json:"seeds"`
	Jobs           int      `json:"jobs,omitempty"`
	Recheck        float64  `json:"recheck"`
	Cache          *bool    `json:"cache,omitempty"`
	IncludeReports bool     `json:"include_reports"`
	DeadlineMS     int      `json:"deadline_ms,omitempty"`
}

// cellEvent mirrors the server's cell stream event (docs/DAEMON.md).
type cellEvent struct {
	Type    string       `json:"type"`
	ID      string       `json:"id"`
	Seed    int64        `json:"seed"`
	Metrics []sim.Metric `json:"metrics"`
	Report  string       `json:"report"`
	Error   string       `json:"error"`
}

// postChunk performs one chunk request against w and delivers its cell
// events as they stream. A non-nil error is transport-level: the
// undelivered remainder of cells is eligible for re-dispatch. Per-cell
// experiment errors are not transport errors — they are deterministic
// results and are delivered as such — but cells the worker skipped
// because its campaign was canceled are withheld for retry.
func (s *sched) postChunk(ctx context.Context, w *workerState, ch *chunk, cells []cellRef) error {
	if s.cfg.ChunkTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ChunkTimeout)
		defer cancel()
	}
	creq := chunkRequest{
		IDs:            []string{ch.id},
		Jobs:           s.cfg.Jobs,
		Cache:          s.cfg.Cache,
		IncludeReports: true,
		DeadlineMS:     int(s.cfg.ChunkTimeout / time.Millisecond),
	}
	for _, ref := range cells {
		creq.Seeds = append(creq.Seeds, ref.seed)
	}
	payload, err := json.Marshal(creq)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(w.url, "/")+"/api/v1/campaign", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}

	// Cell events arrive in the sub-request's own grid order, so a
	// FIFO queue per seed maps each event back to its grid index (and
	// stays correct even if a seed schedule repeats a seed).
	pending := make(map[int64][]cellRef, len(cells))
	for _, ref := range cells {
		pending[ref.seed] = append(pending[ref.seed], ref)
	}
	left := len(cells)
	var workerErr string
	t0 := time.Now()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return fmt.Errorf("bad stream line %.80q: %v", line, err)
		}
		switch head.Type {
		case "cell":
			var ev cellEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return fmt.Errorf("bad cell event %.80q: %v", line, err)
			}
			q := pending[ev.Seed]
			if ev.ID != ch.id || len(q) == 0 {
				return fmt.Errorf("unexpected cell %s seed %d in chunk %s stream", ev.ID, ev.Seed, ch.id)
			}
			ref := q[0]
			pending[ev.Seed] = q[1:]
			left--
			if strings.HasPrefix(ev.Error, "skipped:") {
				// The worker's campaign was canceled before this cell
				// started (deadline_ms, shutdown): not a result, leave
				// the cell undelivered so it is re-dispatched.
				continue
			}
			if len(ev.Metrics) == 0 {
				// The stream encodes nil metrics as []; restore nil so
				// the merged grid is indistinguishable from a local run.
				ev.Metrics = nil
			}
			s.mu.Lock()
			s.deliverLocked(ref, ev, w, time.Since(t0))
			s.mu.Unlock()
		case "error":
			var ev struct {
				Error string `json:"error"`
			}
			json.Unmarshal(line, &ev)
			workerErr = ev.Error
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil && left > 0 {
		return err
	}
	if workerErr != "" && left > 0 {
		return fmt.Errorf("worker reported: %s", workerErr)
	}
	return nil
}
