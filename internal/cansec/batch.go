package cansec

import (
	"encoding/binary"

	"autosec/internal/canbus"
	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Batched CANsec processing. The single-frame paths spend most of their
// time concatenating header/payload/tag slices and copying results; the
// batch forms build protected SDUs straight into caller-owned buffers
// and reuse one MAC-message scratch across the burst, byte-identical to
// looping Protect/Verify.

// ProtectBatch protects payloads in order under one priority
// identifier, returning the CANsec SDUs (the Payload of the CAN XL
// frame Protect would build — header ‖ body). dst follows the secchan
// batch contract: when long enough, SDU i is built in dst[i][:0], so a
// warmed dst keeps the path allocation-free. Freshness consumption and
// errors match a Protect loop exactly.
func (e *Endpoint) ProtectBatch(priorityID uint32, payloads, dst [][]byte) ([][]byte, error) {
	out := secchan.SizeWires(dst, len(payloads))
	sci := uint64(e.zone.ID)<<16 | uint64(e.nodeID)
	hdr := e.hdrBuf[:]
	for i, payload := range payloads {
		e.sendFV++
		w := out[i][:0]
		binary.BigEndian.PutUint16(hdr[0:2], e.zone.ID)
		binary.BigEndian.PutUint16(hdr[2:4], e.nodeID)
		binary.BigEndian.PutUint32(hdr[4:8], e.sendFV)
		w = append(w, hdr...)

		var err error
		if e.zone.Mode == AuthEncrypt {
			w, err = vcrypto.GCMSealInto(w, e.zone.key, sci, e.sendFV, hdr, payload)
		} else {
			msg := append(append(e.macMsg[:0], hdr...), payload...)
			e.macMsg = msg[:0]
			w = append(w, payload...)
			w, err = vcrypto.GCMTagInto(w, e.zone.key, sci, e.sendFV, msg)
		}
		if err != nil {
			return out[:i], err
		}
		// Protect validates the assembled CAN XL frame; replicate its
		// checks, building the frame only on the cold error path.
		if priorityID > 0x7FF || len(w) > canbus.XL.MaxPayload() {
			f := &canbus.Frame{ID: priorityID, Format: canbus.XL, SDUType: canbus.SDUCANsec, Payload: w}
			return out[:i], f.Validate()
		}
		out[i] = w
	}
	return out, nil
}

// VerifyBatch verifies CANsec SDUs (CAN XL frame payloads carrying the
// SDUCANsec type, as ProtectBatch emits) in order, writing one verdict
// per SDU. Verdicts, freshness commits, and errors match a Verify loop
// over the equivalent frames exactly; accepted payloads are built in
// the verdicts' reusable backings.
func (e *Endpoint) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = secchan.SizeVerdicts(verdicts, len(wires))
	for i, w := range wires {
		pt, err := e.verifySDU(verdicts[i].Payload[:0], w)
		if err != nil {
			pt = nil
		}
		verdicts[i].Payload, verdicts[i].Err = pt, err
	}
	return verdicts
}

// verifySDU is the shared verification core: it checks one CANsec SDU
// (frame payload) and appends the authenticated payload to dst. Verify
// wraps it with the frame-level SDU-type check.
func (e *Endpoint) verifySDU(dst, sdu []byte) ([]byte, error) {
	if len(sdu) < Overhead {
		return nil, errFrameTooShort()
	}
	hdr := sdu[:headerLen]
	zoneID := binary.BigEndian.Uint16(hdr[0:2])
	src := binary.BigEndian.Uint16(hdr[2:4])
	fv := binary.BigEndian.Uint32(hdr[4:8])
	if zoneID != e.zone.ID {
		return nil, errWrongZone(zoneID, e.zone.ID)
	}
	ctr := e.peer(src)
	if !ctr.Accept(uint64(fv)) {
		last := uint32(ctr.Last())
		return nil, errStaleFreshness(fv, last, last+e.Window)
	}

	sci := uint64(zoneID)<<16 | uint64(src)
	body := sdu[headerLen:]
	var payload []byte
	var err error
	if e.zone.Mode == AuthEncrypt {
		payload, err = vcrypto.GCMOpenInto(dst, e.zone.key, sci, fv, hdr, body)
		if err != nil {
			return nil, err
		}
	} else {
		if len(body) < tagLen {
			return nil, errShortAuthBody()
		}
		pt := body[:len(body)-tagLen]
		tag := body[len(body)-tagLen:]
		msg := append(append(e.macMsg[:0], hdr...), pt...)
		e.macMsg = msg[:0]
		if !vcrypto.GCMVerifyTag(e.zone.key, sci, fv, msg, tag) {
			return nil, errBadTag()
		}
		payload = append(dst, pt...)
	}
	ctr.Commit(uint64(fv))
	return payload, nil
}
