// Package cansec implements a CANsec model after the CiA 613-2 working
// draft the paper cites ([19]): link-layer security for CAN XL,
// "inspired by MACsec". Nodes belong to a secure zone sharing a zone
// key; each protected frame carries the zone id, a 32-bit freshness
// counter, and an AES-GCM tag (with optional encryption), all inside a
// CAN XL frame whose SDU type marks it as CANsec.
//
// Exercised by experiment tab1.
package cansec

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/canbus"
	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// header: zoneID(2) srcNode(2) freshness(4)
const headerLen = 8
const tagLen = 16

// Overhead is the bytes CANsec adds to each protected payload.
const Overhead = headerLen + tagLen

// Mode selects confidentiality.
type Mode int

const (
	// AuthOnly authenticates the payload (plaintext on the bus).
	AuthOnly Mode = iota
	// AuthEncrypt authenticates and encrypts.
	AuthEncrypt
)

// Zone is a CANsec secure zone: the set of nodes sharing one key.
type Zone struct {
	ID   uint16
	Mode Mode
	key  []byte
}

// NewZone creates a secure zone with the given 16-byte key.
func NewZone(id uint16, mode Mode, key []byte) (*Zone, error) {
	if len(key) != 16 {
		return nil, fmt.Errorf("cansec: zone key must be 16 bytes")
	}
	return &Zone{ID: id, Mode: mode, key: append([]byte(nil), key...)}, nil
}

// Endpoint is one node's CANsec state within a zone.
type Endpoint struct {
	zone   *Zone
	nodeID uint16
	sendFV uint32
	peerFV map[uint16]*secchan.Counter // freshness state per sender
	Window uint32                      // acceptance window above peer counter

	macMsg []byte // scratch for the header‖payload MAC message
	// ProtectBatch header scratch: a stack array would escape to the
	// heap through the AEAD's aad argument, an allocation per frame.
	hdrBuf [headerLen]byte
}

// NewEndpoint creates a node endpoint in the zone. nodeID must be unique
// within the zone (it scopes the freshness space).
func NewEndpoint(zone *Zone, nodeID uint16) *Endpoint {
	return &Endpoint{zone: zone, nodeID: nodeID, peerFV: make(map[uint16]*secchan.Counter), Window: 1024}
}

// peer returns the freshness counter for a sending node, created on
// first contact and kept in sync with the endpoint's Window setting.
func (e *Endpoint) peer(src uint16) *secchan.Counter {
	c, ok := e.peerFV[src]
	if !ok {
		c = &secchan.Counter{}
		e.peerFV[src] = c
	}
	c.Window = uint64(e.Window)
	return c
}

// Protect wraps payload into a CANsec-protected CAN XL frame with the
// given priority identifier.
func (e *Endpoint) Protect(priorityID uint32, payload []byte) (*canbus.Frame, error) {
	e.sendFV++
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint16(hdr[0:2], e.zone.ID)
	binary.BigEndian.PutUint16(hdr[2:4], e.nodeID)
	binary.BigEndian.PutUint32(hdr[4:8], e.sendFV)

	sci := uint64(e.zone.ID)<<16 | uint64(e.nodeID)
	var body []byte
	var err error
	if e.zone.Mode == AuthEncrypt {
		body, err = vcrypto.GCMSeal(e.zone.key, sci, e.sendFV, hdr, payload)
	} else {
		var tag []byte
		tag, err = vcrypto.GCMTag(e.zone.key, sci, e.sendFV, append(append([]byte(nil), hdr...), payload...))
		body = append(append([]byte(nil), payload...), tag...)
	}
	if err != nil {
		return nil, err
	}
	f := &canbus.Frame{
		ID:      priorityID,
		Format:  canbus.XL,
		SDUType: canbus.SDUCANsec,
		Payload: append(hdr, body...),
	}
	return f, f.Validate()
}

// Verify checks a CANsec frame and returns the authenticated payload.
// The verification core is shared with VerifyBatch (see batch.go).
func (e *Endpoint) Verify(f *canbus.Frame) ([]byte, error) {
	if f.SDUType != canbus.SDUCANsec {
		return nil, fmt.Errorf("cansec: SDU type %#x is not CANsec", f.SDUType)
	}
	return e.verifySDU(nil, f.Payload)
}

// Verification errors, shared by the single-frame and batched paths so
// both report identical failures.
func errFrameTooShort() error { return fmt.Errorf("cansec: frame too short") }
func errWrongZone(got, want uint16) error {
	return fmt.Errorf("cansec: zone %d, expected %d", got, want)
}
func errStaleFreshness(fv, lo, hi uint32) error {
	return fmt.Errorf("cansec: freshness %d outside (%d, %d]", fv, lo, hi)
}
func errShortAuthBody() error { return fmt.Errorf("cansec: short auth body") }
func errBadTag() error        { return fmt.Errorf("cansec: tag verification failed") }
