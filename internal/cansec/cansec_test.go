package cansec

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/canbus"
)

var key = []byte("zone-key-16bytes")

func zonePair(t *testing.T, mode Mode) (*Endpoint, *Endpoint) {
	t.Helper()
	z, err := NewZone(7, mode, key)
	if err != nil {
		t.Fatal(err)
	}
	return NewEndpoint(z, 1), NewEndpoint(z, 2)
}

func TestProtectVerifyAuthOnly(t *testing.T) {
	t.Parallel()
	a, b := zonePair(t, AuthOnly)
	f, err := a.Protect(0x100, []byte("wheel speeds"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != canbus.XL || f.SDUType != canbus.SDUCANsec {
		t.Errorf("frame meta %+v", f)
	}
	if !bytes.Contains(f.Payload, []byte("wheel speeds")) {
		t.Error("auth-only mode should not encrypt")
	}
	got, err := b.Verify(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "wheel speeds" {
		t.Errorf("payload %q", got)
	}
}

func TestProtectVerifyEncrypted(t *testing.T) {
	t.Parallel()
	a, b := zonePair(t, AuthEncrypt)
	f, err := a.Protect(0x100, []byte("secret diagnostic"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(f.Payload, []byte("secret")) {
		t.Error("plaintext visible in encrypted mode")
	}
	got, err := b.Verify(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "secret diagnostic" {
		t.Errorf("payload %q", got)
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	t.Parallel()
	a, b := zonePair(t, AuthOnly)
	f, err := a.Protect(0x100, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(f); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(f); err == nil {
		t.Error("replay accepted")
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	t.Parallel()
	for _, mode := range []Mode{AuthOnly, AuthEncrypt} {
		a, b := zonePair(t, mode)
		f, err := a.Protect(0x100, []byte("brake"))
		if err != nil {
			t.Fatal(err)
		}
		f.Payload[headerLen] ^= 0x40
		if _, err := b.Verify(f); err == nil {
			t.Errorf("mode %v: tampered frame accepted", mode)
		}
	}
}

func TestVerifyRejectsWrongZone(t *testing.T) {
	t.Parallel()
	a, _ := zonePair(t, AuthOnly)
	z2, err := NewZone(8, AuthOnly, key)
	if err != nil {
		t.Fatal(err)
	}
	other := NewEndpoint(z2, 3)
	f, err := a.Protect(0x100, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Verify(f); err == nil {
		t.Error("cross-zone frame accepted")
	}
}

func TestVerifyRejectsForgedKey(t *testing.T) {
	t.Parallel()
	_, b := zonePair(t, AuthOnly)
	zAtt, err := NewZone(7, AuthOnly, []byte("attacker-key-16b"))
	if err != nil {
		t.Fatal(err)
	}
	att := NewEndpoint(zAtt, 1)
	f, err := att.Protect(0x100, []byte("forged"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(f); err == nil {
		t.Error("forged frame under wrong zone key accepted")
	}
}

func TestPerSenderFreshnessSpaces(t *testing.T) {
	t.Parallel()
	z, err := NewZone(7, AuthOnly, key)
	if err != nil {
		t.Fatal(err)
	}
	a, b, rx := NewEndpoint(z, 1), NewEndpoint(z, 2), NewEndpoint(z, 3)
	fa, err := a.Protect(0x100, []byte("from-a"))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Protect(0x100, []byte("from-b"))
	if err != nil {
		t.Fatal(err)
	}
	// Both senders are at FV=1; the receiver must track them separately.
	if _, err := rx.Verify(fa); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Verify(fb); err != nil {
		t.Errorf("second sender's FV=1 rejected: %v", err)
	}
}

func TestWindowBoundsLoss(t *testing.T) {
	t.Parallel()
	a, b := zonePair(t, AuthOnly)
	b.Window = 4
	var f *canbus.Frame
	var err error
	for i := 0; i < 10; i++ {
		f, err = a.Protect(0x100, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Verify(f); err == nil {
		t.Error("frame beyond loss window accepted")
	}
}

func TestVerifyRejectsNonCANsecSDU(t *testing.T) {
	t.Parallel()
	_, b := zonePair(t, AuthOnly)
	f := &canbus.Frame{ID: 1, Format: canbus.XL, SDUType: canbus.SDUData, Payload: make([]byte, 64)}
	if _, err := b.Verify(f); err == nil {
		t.Error("plain SDU accepted")
	}
	short := &canbus.Frame{ID: 1, Format: canbus.XL, SDUType: canbus.SDUCANsec, Payload: make([]byte, 4)}
	if _, err := b.Verify(short); err == nil {
		t.Error("short frame accepted")
	}
}

func TestNewZoneValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewZone(1, AuthOnly, []byte("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	t.Parallel()
	a, b := zonePair(t, AuthEncrypt)
	f := func(payload []byte) bool {
		if len(payload) > 2048-Overhead {
			payload = payload[:2048-Overhead]
		}
		fr, err := a.Protect(0x200, payload)
		if err != nil {
			return false
		}
		got, err := b.Verify(fr)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
