package ipsec

import (
	"encoding/binary"

	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Batched ESP processing, the tlslite pattern at the network layer:
// packets build into caller-owned buffers, and an in-order burst clears
// the anti-replay window with one batched screen. Byte-identical to
// looping Encapsulate/Decapsulate — same packets, same sequence and
// window movements, same errors (including stopping a batch at the
// sequence-exhaustion point exactly where the loop would).

// EncapsulateBatch protects inner packets in order. dst follows the
// secchan batch contract: when long enough, packet i is built in
// dst[i][:0], so a warmed dst keeps encapsulation allocation-free.
func (sa *SA) EncapsulateBatch(inners, dst [][]byte) ([][]byte, error) {
	out := secchan.SizeWires(dst, len(inners))
	hdr := sa.hdrBuf[:]
	for i, inner := range inners {
		if sa.sendSeq == ^uint32(0) {
			return out[:i], errSeqExhausted()
		}
		sa.sendSeq++
		pkt := out[i][:0]
		binary.BigEndian.PutUint32(hdr[0:4], sa.SPI)
		binary.BigEndian.PutUint32(hdr[4:8], sa.sendSeq)
		pkt = append(pkt, hdr...)
		pkt, err := vcrypto.GCMSealInto(pkt, sa.key, uint64(sa.SPI), sa.sendSeq, hdr, inner)
		if err != nil {
			return out[:i], err
		}
		out[i] = pkt
	}
	return out, nil
}

// DecapsulateBatch verifies ESP packets in order, writing one verdict
// per packet. Well-formed bursts with matching SPIs and strictly
// ascending sequence numbers take the batched-screen fast path (sound
// for the same reason as tlslite's: earlier, smaller marks cannot
// invalidate later checks the screen already passed); anything else
// falls back to the frame-at-a-time path. Window state and verdicts
// equal a Decapsulate loop exactly.
func (sa *SA) DecapsulateBatch(pkts [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = secchan.SizeVerdicts(verdicts, len(pkts))
	n := len(pkts)
	if n == 0 {
		return verdicts
	}
	if cap(sa.batchSeqs) < n {
		sa.batchSeqs = make([]uint64, n)
		sa.batchOK = make([]bool, n)
	}
	seqs, oks := sa.batchSeqs[:n], sa.batchOK[:n]

	fast := true
	prev := uint64(0)
	for i, pkt := range pkts {
		if len(pkt) < Overhead || binary.BigEndian.Uint32(pkt[0:4]) != sa.SPI {
			fast = false
			break
		}
		seq := uint64(binary.BigEndian.Uint32(pkt[4:8]))
		seqs[i] = seq
		fast = fast && (i == 0 || seq > prev)
		prev = seq
	}
	if fast {
		sa.replay.Size = sa.WindowSize
		sa.replay.CheckBatch(seqs, oks)
		for _, ok := range oks {
			fast = fast && ok
		}
	}
	if !fast {
		for i, pkt := range pkts {
			verdicts[i].Payload, verdicts[i].Err = sa.Decapsulate(pkt)
		}
		return verdicts
	}

	for i, pkt := range pkts {
		inner, err := vcrypto.GCMOpenInto(verdicts[i].Payload[:0], sa.key,
			uint64(sa.SPI), uint32(seqs[i]), pkt[:8], pkt[8:])
		if err != nil {
			verdicts[i].Payload, verdicts[i].Err = nil, err
			continue
		}
		sa.replay.Mark(seqs[i])
		verdicts[i].Payload, verdicts[i].Err = inner, nil
	}
	return verdicts
}
