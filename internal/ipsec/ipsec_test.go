package ipsec

import (
	"bytes"
	"testing"
	"testing/quick"
)

var key = []byte("ipsec-sa-key-16b")

func saPair(t *testing.T) (*SA, *SA) {
	t.Helper()
	tx, err := NewSA(0x1001, key)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSA(0x1001, key)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestEncapDecapRoundTrip(t *testing.T) {
	tx, rx := saPair(t)
	pkt, err := tx.Encapsulate([]byte("inner ip packet"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != len("inner ip packet")+Overhead {
		t.Errorf("packet length %d", len(pkt))
	}
	got, err := rx.Decapsulate(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "inner ip packet" {
		t.Errorf("inner %q", got)
	}
}

func TestDecapRejectsReplay(t *testing.T) {
	tx, rx := saPair(t)
	pkt, err := tx.Encapsulate([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Decapsulate(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Decapsulate(pkt); err == nil {
		t.Error("replay accepted")
	}
}

func TestDecapWindowReorder(t *testing.T) {
	tx, rx := saPair(t)
	var pkts [][]byte
	for i := 0; i < 10; i++ {
		p, err := tx.Encapsulate([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	if _, err := rx.Decapsulate(pkts[9]); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{5, 2, 8, 0} {
		if _, err := rx.Decapsulate(pkts[i]); err != nil {
			t.Errorf("in-window packet %d rejected: %v", i, err)
		}
	}
	for _, i := range []int{9, 5, 2, 8, 0} {
		if _, err := rx.Decapsulate(pkts[i]); err == nil {
			t.Errorf("replayed packet %d accepted", i)
		}
	}
}

func TestDecapRejectsBeyondWindow(t *testing.T) {
	tx, rx := saPair(t)
	rx.WindowSize = 8
	first, err := tx.Encapsulate([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	var last []byte
	for i := 0; i < 20; i++ {
		last, err = tx.Encapsulate([]byte("later"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rx.Decapsulate(last); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Decapsulate(first); err == nil {
		t.Error("packet far below window accepted")
	}
}

func TestDecapRejectsWrongSPIAndTamper(t *testing.T) {
	tx, _ := saPair(t)
	other, err := NewSA(0x2002, key)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := tx.Encapsulate([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Decapsulate(pkt); err == nil {
		t.Error("wrong SPI accepted")
	}
	_, rx := saPair(t)
	bad := append([]byte(nil), pkt...)
	bad[10] ^= 1
	if _, err := rx.Decapsulate(bad); err == nil {
		t.Error("tampered packet accepted")
	}
	if _, err := rx.Decapsulate([]byte{1, 2}); err == nil {
		t.Error("short packet accepted")
	}
}

func TestNewSAValidation(t *testing.T) {
	if _, err := NewSA(1, []byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewSA(1, make([]byte, 32)); err != nil {
		t.Errorf("32-byte key rejected: %v", err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	tx, rx := saPair(t)
	f := func(inner []byte) bool {
		pkt, err := tx.Encapsulate(inner)
		if err != nil {
			return false
		}
		got, err := rx.Decapsulate(pkt)
		return err == nil && bytes.Equal(got, inner)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
