// Package ipsec implements an ESP-style network-layer tunnel for
// Table I's IPsec row: security associations identified by SPI, 32-bit
// sequence numbers with a sliding anti-replay window, and AES-GCM
// protection of the encapsulated inner packet (tunnel mode). As with
// package tlslite, the goal is a faithful protocol *shape* — header
// overhead, SA state, replay semantics — for the IVN comparisons, not
// an RFC 4303 implementation.
//
// Exercised by experiment tab1.
package ipsec

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Overhead is the bytes ESP adds: SPI(4) + Seq(4) + ICV/tag(16).
const Overhead = 8 + 16

// SA is one direction of a security association.
type SA struct {
	SPI     uint32
	key     []byte
	sendSeq uint32

	replay secchan.Window
	// WindowSize is the anti-replay window (default 64, RFC minimum 32).
	WindowSize uint32

	// DecapsulateBatch scratch (sequence burst and screen results).
	batchSeqs []uint64
	batchOK   []bool
	// EncapsulateBatch header scratch: a stack array would escape to the
	// heap through the AEAD's aad argument, an allocation per packet.
	hdrBuf [8]byte
}

// errSeqExhausted is the sequence-space error shared by the single and
// batched encapsulation paths.
func errSeqExhausted() error {
	return fmt.Errorf("ipsec: sequence space exhausted; rekey the SA")
}

// NewSA creates a security association with the given 16- or 32-byte
// key.
func NewSA(spi uint32, key []byte) (*SA, error) {
	if len(key) != 16 && len(key) != 32 {
		return nil, fmt.Errorf("ipsec: key must be 16 or 32 bytes, got %d", len(key))
	}
	return &SA{SPI: spi, key: append([]byte(nil), key...), WindowSize: 64}, nil
}

// Encapsulate protects an inner packet into an ESP packet.
func (sa *SA) Encapsulate(inner []byte) ([]byte, error) {
	if sa.sendSeq == ^uint32(0) {
		return nil, errSeqExhausted()
	}
	sa.sendSeq++
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:4], sa.SPI)
	binary.BigEndian.PutUint32(hdr[4:8], sa.sendSeq)
	ct, err := vcrypto.GCMSeal(sa.key, uint64(sa.SPI), sa.sendSeq, hdr, inner)
	if err != nil {
		return nil, err
	}
	return append(hdr, ct...), nil
}

// Decapsulate verifies an ESP packet and returns the inner packet.
func (sa *SA) Decapsulate(pkt []byte) ([]byte, error) {
	if len(pkt) < Overhead {
		return nil, fmt.Errorf("ipsec: packet shorter than ESP overhead")
	}
	spi := binary.BigEndian.Uint32(pkt[0:4])
	seq := binary.BigEndian.Uint32(pkt[4:8])
	if spi != sa.SPI {
		return nil, fmt.Errorf("ipsec: SPI %#x does not match SA %#x", spi, sa.SPI)
	}
	// WindowSize is public and may be tuned after NewSA; sync it into
	// the kernel window before every check.
	sa.replay.Size = sa.WindowSize
	if !sa.replay.Check(uint64(seq)) {
		return nil, fmt.Errorf("ipsec: anti-replay rejected seq %d", seq)
	}
	inner, err := vcrypto.GCMOpen(sa.key, uint64(sa.SPI), seq, pkt[:8], pkt[8:])
	if err != nil {
		return nil, err
	}
	sa.replay.Mark(uint64(seq))
	return inner, nil
}
