package ipsec

import (
	"bytes"
	"testing"
)

// TestEncapsulateBatchStopsAtExhaustion drives a batch across the
// sequence-space cliff and checks it behaves exactly like the loop:
// the frames before exhaustion are returned, the error matches, and a
// twin SA looping Encapsulate produces identical packets.
func TestEncapsulateBatchStopsAtExhaustion(t *testing.T) {
	key := []byte("0123456789abcdef")
	batch, err := NewSA(7, key)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewSA(7, key)
	if err != nil {
		t.Fatal(err)
	}
	batch.sendSeq = ^uint32(0) - 2
	serial.sendSeq = ^uint32(0) - 2

	inners := [][]byte{{1}, {2}, {3}, {4}, {5}}
	pkts, batchErr := batch.EncapsulateBatch(inners, nil)
	if batchErr == nil {
		t.Fatal("want exhaustion error")
	}
	var serialPkts [][]byte
	var serialErr error
	for _, in := range inners {
		p, err := serial.Encapsulate(in)
		if err != nil {
			serialErr = err
			break
		}
		serialPkts = append(serialPkts, p)
	}
	if serialErr == nil || serialErr.Error() != batchErr.Error() {
		t.Fatalf("errors diverge: batch %v, serial %v", batchErr, serialErr)
	}
	if len(pkts) != len(serialPkts) {
		t.Fatalf("batch protected %d packets, serial %d", len(pkts), len(serialPkts))
	}
	for i := range pkts {
		if !bytes.Equal(pkts[i], serialPkts[i]) {
			t.Fatalf("packet %d: batch %x, serial %x", i, pkts[i], serialPkts[i])
		}
	}
	if batch.sendSeq != serial.sendSeq {
		t.Fatalf("sendSeq diverges: %d vs %d", batch.sendSeq, serial.sendSeq)
	}
}

// TestDecapsulateBatchFallback delivers an out-of-order burst — the
// shape that must take the frame-at-a-time path — and checks verdicts
// and window state against a serial twin.
func TestDecapsulateBatchFallback(t *testing.T) {
	key := []byte("0123456789abcdef")
	send, _ := NewSA(9, key)
	batch, _ := NewSA(9, key)
	serial, _ := NewSA(9, key)

	var wires [][]byte
	for i := 0; i < 8; i++ {
		p, err := send.Encapsulate([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, p)
	}
	// Reordered with a duplicate and a corrupted packet.
	bad := append([]byte(nil), wires[5]...)
	bad[len(bad)-1] ^= 1
	burst := [][]byte{wires[1], wires[0], wires[3], wires[1], bad, wires[7]}

	verdicts := batch.DecapsulateBatch(burst, nil)
	for i, w := range burst {
		pt, err := serial.Decapsulate(w)
		if gotOK, wantOK := verdicts[i].Err == nil, err == nil; gotOK != wantOK {
			t.Fatalf("packet %d: batch err=%v, serial err=%v", i, verdicts[i].Err, err)
		}
		if err == nil && !bytes.Equal(verdicts[i].Payload, pt) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
	if batch.replay != serial.replay {
		t.Fatalf("window state diverges: %+v vs %+v", batch.replay, serial.replay)
	}
}
