package config

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestParseEmptyYieldsDefaults(t *testing.T) {
	t.Parallel()
	for _, data := range []string{"", "   \n\t", "{}"} {
		cfg, err := Parse([]byte(data))
		if err != nil {
			t.Fatalf("Parse(%q): %v", data, err)
		}
		if cfg != Default() {
			t.Errorf("Parse(%q) = %+v, want defaults %+v", data, cfg, Default())
		}
	}
}

func TestParsePartialFillsDefaults(t *testing.T) {
	t.Parallel()
	cfg, err := Parse([]byte(`{"addr": ":9000", "cache": {"disabled": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":9000" {
		t.Errorf("Addr = %q, want :9000", cfg.Addr)
	}
	if !cfg.Cache.Disabled {
		t.Error("Cache.Disabled = false, want true")
	}
	// Every field the document did not mention keeps its default.
	def := Default()
	if cfg.Jobs != def.Jobs || cfg.ScenarioDir != def.ScenarioDir ||
		cfg.MaxBodyBytes != def.MaxBodyBytes || cfg.ReadHeaderTimeoutMS != def.ReadHeaderTimeoutMS {
		t.Errorf("unset fields drifted from defaults: %+v", cfg)
	}
	// Nested partial: cache.disabled was set, cache.dir was not.
	if cfg.Cache.Dir != def.Cache.Dir {
		t.Errorf("Cache.Dir = %q, want default %q", cfg.Cache.Dir, def.Cache.Dir)
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, data, wantSub string
	}{
		{"malformed JSON", `{"addr": `, "config:"},
		{"wrong type", `{"jobs": "four"}`, "config:"},
		{"unknown field", `{"adddr": ":9000"}`, "adddr"},
		{"unknown nested field", `{"cache": {"path": "x"}}`, "path"},
		{"trailing document", `{} {}`, "trailing data"},
		{"negative jobs", `{"jobs": -1}`, "jobs must be >= 0"},
		{"empty addr", `{"addr": "  "}`, "addr must be non-empty"},
		{"cache dir empty while enabled", `{"cache": {"dir": ""}}`, "cache.dir"},
		{"zero body bound", `{"max_body_bytes": 0}`, "max_body_bytes"},
		{"zero header timeout", `{"read_header_timeout_ms": -5}`, "read_header_timeout_ms"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := Parse([]byte(tc.data))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.data, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateCollectsEveryProblem(t *testing.T) {
	t.Parallel()
	cfg := Config{Addr: "", Jobs: -2, MaxBodyBytes: 0, ReadHeaderTimeoutMS: 0}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate on a broken config succeeded")
	}
	for _, want := range []string{"addr", "jobs", "cache.dir", "max_body_bytes", "read_header_timeout_ms"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestLoad(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "avsecd.json")
	if err := os.WriteFile(path, []byte(`{"jobs": 3, "scenario_dir": "corpus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Jobs != 3 || cfg.ScenarioDir != "corpus" {
		t.Errorf("Load = %+v, want jobs=3 scenario_dir=corpus", cfg)
	}

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load on a missing file succeeded, want error")
	}

	// A parse error names the file so the operator knows which input
	// was bad.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nope": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(bad)
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("Load(bad.json) error %v does not name the file", err)
	}
}

func TestDefaultJobsMeansGOMAXPROCS(t *testing.T) {
	t.Parallel()
	// The contract "0 = GOMAXPROCS" is resolved by the server, not
	// here; this pins that the default really is the sentinel and that
	// GOMAXPROCS is a sane pool size on this machine.
	if Default().Jobs != 0 {
		t.Errorf("Default().Jobs = %d, want 0", Default().Jobs)
	}
	if runtime.GOMAXPROCS(0) < 1 {
		t.Fatal("GOMAXPROCS < 1")
	}
}
