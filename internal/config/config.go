// Package config loads and validates the avsecd daemon configuration.
//
// The daemon is configured by one JSON document (conventionally
// avsecd.json) whose every field is optional: absent fields keep their
// defaults, so a partial file like {"addr": ":9000"} is a complete
// configuration. Decoding is strict — unknown fields are rejected with
// the offending name, so a typoed key fails loudly at startup instead
// of silently running with a default. The zero-dependency, one-file
// loader follows the pattern the ROADMAP names for the fleet-scale
// service (stdlib only, cmd/avsecd is the single entry point).
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Config is the avsecd daemon configuration. The JSON field names are
// the documented schema (docs/DAEMON.md "Configuration").
type Config struct {
	// Addr is the listen address, host:port. The port may be 0 to let
	// the kernel choose (the daemon announces the resolved address on
	// startup, which is how the CI smoke script finds it).
	Addr string `json:"addr"`
	// Jobs is the default worker-pool size for campaign requests that
	// do not set their own: 0 means GOMAXPROCS. Requests may lower or
	// raise it per campaign; output bytes never depend on it.
	Jobs int `json:"jobs"`
	// ScenarioDir is the scenario corpus directory resolved for scn-*
	// experiment ids (missing directory = zero scenarios, same as the
	// CLI's -scenarios flag).
	ScenarioDir string `json:"scenario_dir"`
	// Cache configures the content-addressed result cache.
	Cache CacheConfig `json:"cache"`
	// MaxBodyBytes bounds the size of a campaign request body.
	MaxBodyBytes int64 `json:"max_body_bytes"`
	// ReadHeaderTimeoutMS is the HTTP server's read-header timeout in
	// milliseconds (slow-loris protection).
	ReadHeaderTimeoutMS int `json:"read_header_timeout_ms"`
}

// CacheConfig configures the result cache (internal/resultcache).
type CacheConfig struct {
	// Dir is the cache directory, created on demand.
	Dir string `json:"dir"`
	// Disabled turns the cache off entirely; every campaign cell is
	// recomputed. Individual requests can also opt out per campaign.
	Disabled bool `json:"disabled"`
}

// Default returns the configuration the daemon runs with when no file
// and no flags are given.
func Default() Config {
	return Config{
		Addr:                "127.0.0.1:8787",
		Jobs:                0,
		ScenarioDir:         "scenarios",
		Cache:               CacheConfig{Dir: "avsecd.cache"},
		MaxBodyBytes:        1 << 20, // 1 MiB: campaign specs are small
		ReadHeaderTimeoutMS: 5000,
	}
}

// Parse decodes a JSON configuration document over the defaults:
// absent fields keep their default values, unknown fields are an
// error, and the result is validated. An empty document (or one that
// is only whitespace) yields the defaults.
func Parse(data []byte) (Config, error) {
	cfg := Default()
	if len(bytes.TrimSpace(data)) == 0 {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	// A second document in the same file is a mistake, not extra input.
	if dec.More() {
		return Config{}, fmt.Errorf("config: trailing data after the configuration object")
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Load reads and parses the configuration file at path. A missing file
// is an error: pointing the daemon at a file that does not exist is a
// deployment mistake, not a request for defaults (start without
// -config for defaults).
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	cfg, err := Parse(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks the configuration's invariants. It is called by
// Parse and again by the daemon after flag overrides.
func (c *Config) Validate() error {
	var errs []string
	if strings.TrimSpace(c.Addr) == "" {
		errs = append(errs, "addr must be non-empty")
	}
	if c.Jobs < 0 {
		errs = append(errs, fmt.Sprintf("jobs must be >= 0 (0 = GOMAXPROCS), got %d", c.Jobs))
	}
	if !c.Cache.Disabled && strings.TrimSpace(c.Cache.Dir) == "" {
		errs = append(errs, "cache.dir must be non-empty unless cache.disabled is true")
	}
	if c.MaxBodyBytes <= 0 {
		errs = append(errs, fmt.Sprintf("max_body_bytes must be > 0, got %d", c.MaxBodyBytes))
	}
	if c.ReadHeaderTimeoutMS <= 0 {
		errs = append(errs, fmt.Sprintf("read_header_timeout_ms must be > 0, got %d", c.ReadHeaderTimeoutMS))
	}
	if len(errs) > 0 {
		return fmt.Errorf("config: %s", strings.Join(errs, "; "))
	}
	return nil
}
