// Package canbus models the Controller Area Network family used inside
// vehicles — Classic CAN (ISO 11898 / Bosch 2.0), CAN FD, and CAN XL —
// at frame and arbitration level: priority-based CSMA/CR arbitration,
// broadcast delivery, wire-time accounting, error counters with bus-off,
// and the attack primitives the paper's §III builds on (masquerade,
// flooding, targeted error injection). The defining vulnerability the
// paper highlights — *no sender authentication* — is inherent in the
// model: any node may transmit any identifier.
//
// Exercised by the IVN experiments fig3-fig6, tab1, exp-ids, exp-
// vehicle, and exp-zc.
package canbus

import (
	"encoding/binary"
	"fmt"
)

// Format selects the CAN generation of a frame.
type Format int

const (
	// Classic is CAN 2.0: up to 8 data bytes at the nominal bit rate.
	Classic Format = iota
	// FD is CAN FD: up to 64 data bytes, faster data phase.
	FD
	// XL is CAN XL: up to 2048 data bytes, fastest data phase, and an
	// SDU-type field that higher layers (CANsec, CANAL) use.
	XL
)

func (f Format) String() string {
	switch f {
	case Classic:
		return "CAN"
	case FD:
		return "CAN FD"
	case XL:
		return "CAN XL"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// MaxPayload returns the maximum data length for the format.
func (f Format) MaxPayload() int {
	switch f {
	case Classic:
		return 8
	case FD:
		return 64
	case XL:
		return 2048
	default:
		return 0
	}
}

// SDU types for CAN XL frames (CiA 611-1 assigns content types; the two
// the model needs are "classic payload" and "tunnelled Ethernet").
const (
	SDUData     = 0x01 // plain application payload
	SDUEthernet = 0x05 // tunnelled Ethernet frame (used by CANAL)
	SDUCANsec   = 0x41 // CANsec-protected PDU
)

// Frame is one CAN frame of any generation.
type Frame struct {
	ID       uint32 // 11-bit (Classic/FD) or priority ID (XL)
	Format   Format
	SDUType  uint8 // CAN XL only
	Payload  []byte
	SourceID string // simulation-only bookkeeping: which node really sent it.
	// SourceID models the forensic ground truth that real CAN lacks on
	// the wire; receivers must never consult it for authentication —
	// that is exactly the vulnerability. IDS components may use it only
	// to *score* detectors against ground truth.
}

// Validate checks structural invariants.
func (f *Frame) Validate() error {
	if f.Format != XL && f.ID > 0x7FF {
		return fmt.Errorf("canbus: 11-bit identifier overflow: %#x", f.ID)
	}
	if f.Format == XL && f.ID > 0x7FF {
		return fmt.Errorf("canbus: XL priority identifier overflow: %#x", f.ID)
	}
	if len(f.Payload) > f.Format.MaxPayload() {
		return fmt.Errorf("canbus: %s payload %d bytes exceeds %d", f.Format, len(f.Payload), f.Format.MaxPayload())
	}
	return nil
}

// WireBits estimates the number of bits the frame occupies on the wire,
// including overhead (SOF, identifier, control, CRC, ACK, EOF) and a
// stuffing allowance. The constants follow the frame format definitions
// closely enough for comparative overhead experiments.
func (f *Frame) WireBits() int {
	n := len(f.Payload)
	switch f.Format {
	case Classic:
		// 1 SOF + 11 ID + 1 RTR + 6 control + 8n data + 15 CRC + 3 ACK/EOF≈10
		base := 44 + 8*n
		return base + base/10 // ~10% stuff bits
	case FD:
		base := 60 + 8*n + crcLenFD(n)
		return base + base/12
	case XL:
		// CAN XL header is larger (priority + control + SDU type + SEC
		// bit + length + header CRC) but amortizes over big payloads.
		base := 130 + 8*n + 32
		return base + base/20
	default:
		return 0
	}
}

func crcLenFD(n int) int {
	if n <= 16 {
		return 17
	}
	return 21
}

// Marshal encodes the frame for MAC computation and tunnelling: a fixed
// header (ID, format, SDU type, length) followed by the payload. This is
// a simulation serialization, not the wire bit format.
func (f *Frame) Marshal() []byte {
	buf := make([]byte, 8+len(f.Payload))
	binary.BigEndian.PutUint32(buf[0:4], f.ID)
	buf[4] = byte(f.Format)
	buf[5] = f.SDUType
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(f.Payload)))
	copy(buf[8:], f.Payload)
	return buf
}

// Unmarshal decodes a frame serialized by Marshal.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("canbus: short frame: %d bytes", len(data))
	}
	n := int(binary.BigEndian.Uint16(data[6:8]))
	if len(data) < 8+n {
		return nil, fmt.Errorf("canbus: truncated payload: have %d want %d", len(data)-8, n)
	}
	f := &Frame{
		ID:      binary.BigEndian.Uint32(data[0:4]),
		Format:  Format(data[4]),
		SDUType: data[5],
		Payload: append([]byte(nil), data[8:8+n]...),
	}
	return f, f.Validate()
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return &c
}
