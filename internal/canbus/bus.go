package canbus

import (
	"fmt"
	"sort"

	"autosec/internal/sim"
)

// BitRates for the bus phases, in bits per virtual second.
type BitRates struct {
	NominalBps int // arbitration phase (all formats)
	DataBps    int // data phase (FD/XL switch to this)
}

// DefaultBitRates returns typical automotive rates: 500 kbit/s nominal,
// 2 Mbit/s FD data phase, 10 Mbit/s XL data phase is set per bus.
func DefaultBitRates() BitRates {
	return BitRates{NominalBps: 500_000, DataBps: 2_000_000}
}

// Node is anything attached to a bus. Receive is called for every frame
// the bus delivers (CAN is a broadcast medium); it must not block.
type Node interface {
	// NodeID returns the simulation identity (harness bookkeeping).
	NodeID() string
	// Receive handles a delivered frame at virtual time now.
	Receive(k *sim.Kernel, f *Frame)
}

// busOffThreshold is the transmit error counter value at which a node
// enters bus-off, per ISO 11898-1.
const busOffThreshold = 256

// pendingTx is a queued transmission attempt.
type pendingTx struct {
	frame  *Frame
	sender string
	queued sim.Time
	seq    int
}

// Bus is a broadcast CAN segment with priority arbitration. All frames
// queued by attached nodes contend; at each idle point the lowest
// identifier wins, exactly the CSMA/CR behaviour masquerade and
// priority-flood attacks exploit.
type Bus struct {
	name    string
	rates   BitRates
	kernel  *sim.Kernel
	nodes   []Node
	queue   []*pendingTx
	busy    bool
	seq     int
	tec     map[string]int  // transmit error counters
	busOff  map[string]bool // nodes locked out after TEC overflow
	taps    []func(f *Frame)
	sabotor func(f *Frame) bool // error-injection attacker hook
}

// NewBus creates a bus bound to a kernel.
func NewBus(name string, rates BitRates, k *sim.Kernel) *Bus {
	return &Bus{
		name:   name,
		rates:  rates,
		kernel: k,
		tec:    make(map[string]int),
		busOff: make(map[string]bool),
	}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Attach adds a node to the bus.
func (b *Bus) Attach(n Node) { b.nodes = append(b.nodes, n) }

// Tap registers an observer invoked for every delivered frame (used by
// IDS components; a real IDS is just another node listening).
func (b *Bus) Tap(fn func(f *Frame)) { b.taps = append(b.taps, fn) }

// SetErrorInjector installs an attacker hook that may corrupt a frame in
// flight: returning true marks the frame as hit by an error flag, which
// charges the *transmitter's* error counter — the mechanism behind
// bus-off attacks on victim ECUs.
func (b *Bus) SetErrorInjector(fn func(f *Frame) bool) { b.sabotor = fn }

// IsBusOff reports whether a node has been forced off the bus.
func (b *Bus) IsBusOff(nodeID string) bool { return b.busOff[nodeID] }

// TEC returns a node's transmit error counter.
func (b *Bus) TEC(nodeID string) int { return b.tec[nodeID] }

// Send queues a frame for transmission from the named sender. The frame
// is validated; the sender string is recorded as ground truth. Actual
// delivery happens via the kernel after arbitration and wire time.
func (b *Bus) Send(sender string, f *Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if b.busOff[sender] {
		return fmt.Errorf("canbus: node %s is bus-off", sender)
	}
	cp := f.Clone()
	cp.SourceID = sender
	b.queue = append(b.queue, &pendingTx{frame: cp, sender: sender, queued: b.kernel.Now(), seq: b.seq})
	b.seq++
	if !b.busy {
		b.arbitrate()
	}
	return nil
}

// arbitrate picks the highest-priority queued frame and schedules its
// completion. Lowest identifier wins; ties (same ID from different
// nodes, the masquerade situation) resolve by queue order, modelling a
// bit-identical arbitration field where neither party backs off.
func (b *Bus) arbitrate() {
	if len(b.queue) == 0 {
		b.busy = false
		return
	}
	b.busy = true
	sort.SliceStable(b.queue, func(i, j int) bool {
		if b.queue[i].frame.ID != b.queue[j].frame.ID {
			return b.queue[i].frame.ID < b.queue[j].frame.ID
		}
		return b.queue[i].seq < b.queue[j].seq
	})
	tx := b.queue[0]
	b.queue = b.queue[1:]

	dur := b.wireTime(tx.frame)
	b.kernel.After(dur, fmt.Sprintf("can/%s/deliver id=%#x", b.name, tx.frame.ID), func(k *sim.Kernel) {
		b.complete(k, tx)
	})
}

// complete finishes a transmission: either the error injector destroys
// it (charging the sender's TEC) or it is delivered to every node.
func (b *Bus) complete(k *sim.Kernel, tx *pendingTx) {
	m := k.Metrics()
	if b.sabotor != nil && b.sabotor(tx.frame) {
		b.tec[tx.sender] += 8 // TEC penalty per ISO 11898-1
		m.Inc("canbus."+b.name+".errors", 1)
		if b.tec[tx.sender] >= busOffThreshold && !b.busOff[tx.sender] {
			b.busOff[tx.sender] = true
			m.Inc("canbus."+b.name+".busoff", 1)
		}
		// A real controller retransmits automatically until bus-off.
		if !b.busOff[tx.sender] {
			b.queue = append(b.queue, tx)
		}
		b.arbitrate()
		return
	}
	if b.tec[tx.sender] > 0 {
		b.tec[tx.sender]-- // successful transmission decrements TEC
	}
	m.Inc("canbus."+b.name+".delivered", 1)
	m.Inc("canbus."+b.name+".bits", int64(tx.frame.WireBits()))
	m.Observe("canbus."+b.name+".latency_us", float64(k.Now()-tx.queued)/float64(sim.Microsecond))
	for _, tap := range b.taps {
		tap(tx.frame)
	}
	for _, n := range b.nodes {
		if n.NodeID() == tx.sender {
			continue // a CAN controller does not receive its own frame
		}
		n.Receive(k, tx.frame)
	}
	b.arbitrate()
}

// wireTime computes how long the frame occupies the bus.
func (b *Bus) wireTime(f *Frame) sim.Time {
	bits := f.WireBits()
	// Arbitration+control portion at nominal rate, data at data rate
	// for FD/XL. Approximate the split: header bits at nominal.
	headerBits := 44
	if f.Format != Classic {
		dataBits := 8 * len(f.Payload)
		headerNs := int64(headerBits) * int64(sim.Second) / int64(b.rates.NominalBps)
		dataNs := int64(bits-headerBits-dataBits)*int64(sim.Second)/int64(b.rates.NominalBps) +
			int64(dataBits)*int64(sim.Second)/int64(b.rates.DataBps)
		return sim.Time(headerNs + dataNs)
	}
	return sim.Time(int64(bits) * int64(sim.Second) / int64(b.rates.NominalBps))
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc struct {
	ID string
	Fn func(k *sim.Kernel, f *Frame)
}

func (n *NodeFunc) NodeID() string { return n.ID }

func (n *NodeFunc) Receive(k *sim.Kernel, f *Frame) {
	if n.Fn != nil {
		n.Fn(k, f)
	}
}
