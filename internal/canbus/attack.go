package canbus

import (
	"autosec/internal/sim"
)

// Masquerader is the paper's headline CAN attack: because the bus has no
// sender authentication, a compromised node transmits frames carrying a
// safety-critical identifier (e.g. the engine controller's) and every
// receiver treats them as genuine.
type Masquerader struct {
	Bus      *Bus
	NodeName string // the attacker's real node id (ground truth only)
	TargetID uint32 // identifier being impersonated
	Format   Format
	Payload  []byte
	PeriodUs int64 // injection period in microseconds
	Count    int   // number of frames to inject
}

// Start schedules the injection campaign on the kernel.
func (m *Masquerader) Start(k *sim.Kernel) {
	period := sim.Time(m.PeriodUs) * sim.Microsecond
	for i := 0; i < m.Count; i++ {
		k.After(period*sim.Time(i+1), "attack/masquerade", func(k *sim.Kernel) {
			f := &Frame{ID: m.TargetID, Format: m.Format, Payload: m.Payload}
			if err := m.Bus.Send(m.NodeName, f); err == nil {
				k.Metrics().Inc("attack.masquerade.injected", 1)
			}
		})
	}
}

// Flooder performs a priority-flood denial of service: a stream of
// highest-priority (lowest identifier) frames that win every arbitration
// round and starve legitimate traffic.
type Flooder struct {
	Bus      *Bus
	NodeName string
	Format   Format
	PeriodUs int64
	Count    int
}

// Start schedules the flood.
func (fl *Flooder) Start(k *sim.Kernel) {
	period := sim.Time(fl.PeriodUs) * sim.Microsecond
	payload := make([]byte, 8)
	for i := 0; i < fl.Count; i++ {
		k.After(period*sim.Time(i+1), "attack/flood", func(k *sim.Kernel) {
			f := &Frame{ID: 0x000, Format: fl.Format, Payload: payload}
			if err := fl.Bus.Send(fl.NodeName, f); err == nil {
				k.Metrics().Inc("attack.flood.injected", 1)
			}
		})
	}
}

// BusOffAttacker uses the error-injection hook to corrupt every frame a
// victim transmits, driving the victim's transmit error counter to the
// bus-off limit — a targeted denial of service against one ECU.
type BusOffAttacker struct {
	VictimID uint32 // frames with this identifier get corrupted
}

// Install arms the attack on the bus.
func (a *BusOffAttacker) Install(b *Bus) {
	b.SetErrorInjector(func(f *Frame) bool {
		return f.ID == a.VictimID
	})
}
