package canbus

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestFormatMaxPayload(t *testing.T) {
	cases := map[Format]int{Classic: 8, FD: 64, XL: 2048}
	for f, want := range cases {
		if got := f.MaxPayload(); got != want {
			t.Errorf("%v.MaxPayload() = %d, want %d", f, got, want)
		}
	}
}

func TestFrameValidate(t *testing.T) {
	good := &Frame{ID: 0x123, Format: Classic, Payload: make([]byte, 8)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	tooBig := &Frame{ID: 0x123, Format: Classic, Payload: make([]byte, 9)}
	if err := tooBig.Validate(); err == nil {
		t.Error("oversize classic payload accepted")
	}
	badID := &Frame{ID: 0x800, Format: FD}
	if err := badID.Validate(); err == nil {
		t.Error("12-bit identifier accepted")
	}
	xl := &Frame{ID: 0x100, Format: XL, Payload: make([]byte, 2048)}
	if err := xl.Validate(); err != nil {
		t.Errorf("2048-byte XL frame rejected: %v", err)
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{ID: 0x2A5, Format: XL, SDUType: SDUEthernet, Payload: []byte("tunnelled ethernet bytes")}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || got.Format != f.Format || got.SDUType != f.SDUType || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameMarshalPropertyRoundTrip(t *testing.T) {
	f := func(id uint16, payload []byte) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		orig := &Frame{ID: uint32(id % 0x800), Format: FD, Payload: payload}
		got, err := Unmarshal(orig.Marshal())
		return err == nil && got.ID == orig.ID && bytes.Equal(got.Payload, orig.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	f := &Frame{ID: 1, Format: Classic, Payload: []byte{1, 2, 3, 4}}
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-2]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestWireBitsMonotoneInPayload(t *testing.T) {
	for _, format := range []Format{Classic, FD, XL} {
		prev := 0
		for n := 0; n <= format.MaxPayload(); n += 8 {
			f := &Frame{ID: 1, Format: format, Payload: make([]byte, n)}
			bits := f.WireBits()
			if bits <= prev && n > 0 {
				t.Errorf("%v: WireBits not increasing at %d bytes", format, n)
			}
			prev = bits
		}
	}
}

func TestXLAmortizesHeaderOverhead(t *testing.T) {
	// Per-byte cost of a full XL frame must be far below classic CAN's.
	classic := &Frame{ID: 1, Format: Classic, Payload: make([]byte, 8)}
	xl := &Frame{ID: 1, Format: XL, Payload: make([]byte, 2048)}
	classicPerByte := float64(classic.WireBits()) / 8
	xlPerByte := float64(xl.WireBits()) / 2048
	if xlPerByte > classicPerByte/1.2 {
		t.Errorf("XL per-byte %.2f bits vs classic %.2f bits", xlPerByte, classicPerByte)
	}
}

func TestBusDeliversToAllButSender(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	got := map[string]int{}
	for _, id := range []string{"a", "b", "c"} {
		id := id
		b.Attach(&NodeFunc{ID: id, Fn: func(_ *sim.Kernel, f *Frame) { got[id]++ }})
	}
	if err := b.Send("a", &Frame{ID: 0x10, Format: Classic, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got["a"] != 0 || got["b"] != 1 || got["c"] != 1 {
		t.Errorf("delivery = %v", got)
	}
}

func TestBusArbitrationPriorityOrder(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	var order []uint32
	b.Attach(&NodeFunc{ID: "rx", Fn: func(_ *sim.Kernel, f *Frame) { order = append(order, f.ID) }})
	// Queue three frames "simultaneously"; despite send order the bus
	// must deliver by identifier priority after the first wins.
	k.Schedule(0, "enqueue", func(k *sim.Kernel) {
		_ = b.Send("n1", &Frame{ID: 0x300, Format: Classic, Payload: []byte{1}})
		_ = b.Send("n2", &Frame{ID: 0x100, Format: Classic, Payload: []byte{2}})
		_ = b.Send("n3", &Frame{ID: 0x200, Format: Classic, Payload: []byte{3}})
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// First send grabbed the idle bus (0x300), then priority order.
	want := []uint32{0x300, 0x100, 0x200}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

func TestBusLatencyAccountsForWireTime(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	b.Attach(&NodeFunc{ID: "rx"})
	var doneAt sim.Time
	b.Tap(func(f *Frame) { doneAt = k.Now() })
	if err := b.Send("tx", &Frame{ID: 1, Format: Classic, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// 8-byte classic frame ≈ 118 bits at 500 kbit/s ≈ 237 µs.
	if doneAt < 150*sim.Microsecond || doneAt > 400*sim.Microsecond {
		t.Errorf("wire time %v outside plausible classic CAN range", doneAt)
	}
}

func TestMasqueradeIsIndistinguishableOnWire(t *testing.T) {
	// The §III vulnerability: receivers accept the attacker's frame as
	// the engine controller's, because nothing on the wire names the
	// sender.
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	var seen []*Frame
	b.Attach(&NodeFunc{ID: "brake-ecu", Fn: func(_ *sim.Kernel, f *Frame) { seen = append(seen, f) }})
	const engineID = 0x0C0
	(&Masquerader{
		Bus: b, NodeName: "infotainment", TargetID: engineID,
		Format: Classic, Payload: []byte{0xFF, 0xFF}, PeriodUs: 100, Count: 5,
	}).Start(k)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(seen))
	}
	for _, f := range seen {
		if f.ID != engineID {
			t.Errorf("frame ID %#x", f.ID)
		}
		// Ground truth says infotainment, but the receiving ECU has no
		// wire-level field to check — the ID is the only "identity".
		if f.SourceID != "infotainment" {
			t.Errorf("ground truth = %q", f.SourceID)
		}
	}
	if k.Metrics().Counter("attack.masquerade.injected") != 5 {
		t.Error("attack counter not recorded")
	}
}

func TestFloodStarvesLowPriorityTraffic(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	var victimDelivered []sim.Time
	b.Tap(func(f *Frame) {
		if f.ID == 0x400 {
			victimDelivered = append(victimDelivered, k.Now())
		}
	})
	b.Attach(&NodeFunc{ID: "rx"})
	// Legitimate node sends one frame at t=1ms.
	k.Schedule(sim.Millisecond, "victim-send", func(k *sim.Kernel) {
		_ = b.Send("victim", &Frame{ID: 0x400, Format: Classic, Payload: make([]byte, 8)})
	})
	// Flood from t=0 with a period shorter than a frame's wire time, so
	// the queue always holds a higher-priority frame.
	(&Flooder{Bus: b, NodeName: "attacker", Format: Classic, PeriodUs: 100, Count: 100}).Start(k)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(victimDelivered) != 1 {
		t.Fatalf("victim frame delivered %d times", len(victimDelivered))
	}
	// Without the flood the frame would complete ~240µs after 1ms. The
	// flood (100 frames × ~237µs each) must delay it drastically.
	if victimDelivered[0] < 5*sim.Millisecond {
		t.Errorf("victim frame at %v; flood failed to starve it", victimDelivered[0])
	}
}

func TestBusOffAttackLocksVictimOut(t *testing.T) {
	k := sim.NewKernel(1)
	k.SetEventLimit(100000)
	b := NewBus("b", DefaultBitRates(), k)
	b.Attach(&NodeFunc{ID: "rx"})
	(&BusOffAttacker{VictimID: 0x0C0}).Install(b)
	// Victim periodically transmits; every frame is corrupted, TEC
	// climbs by 8 per attempt with automatic retransmission.
	k.Schedule(0, "victim", func(k *sim.Kernel) {
		_ = b.Send("engine", &Frame{ID: 0x0C0, Format: Classic, Payload: []byte{1}})
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if !b.IsBusOff("engine") {
		t.Errorf("victim TEC=%d, not bus-off", b.TEC("engine"))
	}
	if err := b.Send("engine", &Frame{ID: 0x0C0, Format: Classic, Payload: []byte{1}}); err == nil {
		t.Error("bus-off node allowed to transmit")
	}
}

func TestTECRecoversOnSuccess(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	b.Attach(&NodeFunc{ID: "rx"})
	hits := 0
	b.SetErrorInjector(func(f *Frame) bool {
		hits++
		return hits <= 3 // corrupt the first three attempts only
	})
	_ = b.Send("ecu", &Frame{ID: 0x50, Format: Classic, Payload: []byte{1}})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// 3 corruptions (+24) then success (−1) = 23.
	if got := b.TEC("ecu"); got != 23 {
		t.Errorf("TEC = %d, want 23", got)
	}
}

func TestSendValidates(t *testing.T) {
	k := sim.NewKernel(1)
	b := NewBus("b", DefaultBitRates(), k)
	if err := b.Send("x", &Frame{ID: 0x1000, Format: Classic}); err == nil {
		t.Error("invalid frame accepted by Send")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := &Frame{ID: 1, Format: Classic, Payload: []byte{1, 2}}
	c := f.Clone()
	c.Payload[0] = 9
	if f.Payload[0] != 1 {
		t.Error("Clone shares payload storage")
	}
}
