package canbus

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the frame decoder against malformed inputs: it
// must never panic, and anything it accepts must re-marshal to an
// equivalent frame.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Frame{ID: 0x123, Format: Classic, Payload: []byte{1, 2, 3}}).Marshal())
	f.Add((&Frame{ID: 0x1, Format: XL, SDUType: SDUEthernet, Payload: make([]byte, 100)}).Marshal())
	f.Add([]byte{0, 0, 0, 1, 9, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		round, err := Unmarshal(fr.Marshal())
		if err != nil {
			t.Fatalf("accepted frame failed round trip: %v", err)
		}
		if round.ID != fr.ID || round.Format != fr.Format || !bytes.Equal(round.Payload, fr.Payload) {
			t.Fatal("round trip not stable")
		}
	})
}
