package scenario

import (
	"autosec/internal/canbus"
	"autosec/internal/core"
	"autosec/internal/ext"
	"autosec/internal/sim"
)

// AttackBehaviour interprets one attacker type inside the traffic
// loop of simulateTraffic. One behaviour instance drives one
// replicate, so implementations may keep per-replicate state; they
// must draw randomness only from the step's RNG.
type AttackBehaviour interface {
	// Deliver handles the victim's protected frame on an attacking
	// step: tamper with it, withhold it, or leave it alone. Returning
	// true means the behaviour owned delivery; false falls through to
	// the normal verify-and-deliver path.
	Deliver(st *TrafficStep) bool
	// Inject runs after delivery and late-frame release on an attacking
	// step — the hook for adding frames on top of the victim's traffic.
	Inject(st *TrafficStep)
}

// AttackSpec is the registered form of one attacker type (ext kind
// "attack"). Exactly one of New/Run drives execution: New builds the
// per-replicate traffic behaviour (nil for AttackNone, which stages
// nothing), Run replaces the traffic interpreter with a whole-run
// body (the kill chain).
type AttackSpec struct {
	// New builds the behaviour driving one replicate; called once per
	// replicate before its traffic loop starts.
	New func(sp *Spec) AttackBehaviour
	// Run, when non-nil, interprets the scenario without the traffic
	// loop.
	Run func(sp *Spec, rc *core.RunContext) (string, error)
}

// Attacks is the attack-type extension registry. The paper's taxonomy
// registers below in canonical order; drop-in attacks register from
// their own file (see internal/ext/demo) and become stageable from
// scenario.ini [attacker] sections — without entering AttackTypes(),
// the corpus generator's mutation vocabulary.
var Attacks = ext.NewRegistry[AttackSpec]("attack")

func init() {
	reg := func(rank int, name, desc, paper string, s AttackSpec) {
		Attacks.Register(ext.Meta{Name: name, Description: desc, Paper: paper,
			Caps: []string{ext.CapCore}, Rank: rank}, s)
	}
	reg(1, AttackNone, "clean traffic baseline: no attacker, IDS alerts are all false positives",
		"§III baseline", AttackSpec{})
	reg(2, AttackReplay, "re-inject a captured protected frame Offset periods after capture",
		"§IV replay; probes the suites' anti-replay windows", AttackSpec{
			New: func(*Spec) AttackBehaviour { return replayAttack{} }})
	reg(3, AttackForge, "MITM-tamper the victim's frame, guessing the (truncated) MAC",
		"§IV forgery; the SECOC mac_bits acceptance boundary", AttackSpec{
			New: func(*Spec) AttackBehaviour { return forgeAttack{} }})
	reg(4, AttackMasquerade, "inject crafted frames under the victim's CAN identifier",
		"§IV masquerade; caught by EASI-style sender identification [52]", AttackSpec{
			New: func(*Spec) AttackBehaviour { return masqueradeAttack{} }})
	reg(5, AttackFlood, "burst-inject frames each attacked period (bus-load DoS)",
		"§IV flooding; the interval detector's injection signature", AttackSpec{
			New: func(*Spec) AttackBehaviour { return floodAttack{} }})
	reg(6, AttackDelay, "withhold frames and release them Offset periods late",
		"§IV jam-and-release; probes replay-window edges from inside", AttackSpec{
			New: func(*Spec) AttackBehaviour { return delayAttack{} }})
	reg(7, AttackKillChain, "the Fig. 8 telemetry-cloud kill chain vs a defence subset",
		"Fig. 8; §VI fleet-wide breach", AttackSpec{Run: runKillChain})
}

// AttackTypes lists every built-in attacker type in canonical order —
// the core-capped slice of the extension registry, and the vocabulary
// the corpus generator mutates over.
func AttackTypes() []string {
	return Attacks.NamesWith(ext.CapCore)
}

// TrafficStep is the per-step view a behaviour manipulates. The
// exported fields are read-only context; all effect on the replicate's
// counters and the IDS taps goes through the methods, which reproduce
// the accounting of the built-in attacks exactly — a drop-in attack
// composed from them stays inside the determinism contract for free.
type TrafficStep struct {
	// Spec is the scenario under interpretation.
	Spec *Spec
	// RNG is the replicate's random stream.
	RNG *sim.RNG
	// Step is the current period index; Now its bus time.
	Step int
	Now  sim.Time
	// Period is the victim stream's transmission period.
	Period sim.Time
	// Wire is the victim's protected frame of this period.
	Wire []byte

	res          *trial
	suite        interface{ Verify([]byte) ([]byte, error) }
	history      [][]byte
	delayed      map[int][][]byte
	observe      func(step int, at sim.Time, f *canbus.Frame)
	victimID     uint32
	attackerNode string
}

// Withhold removes the victim's frame from the bus this step and
// schedules it to re-appear at the given later step, where it probes
// the suite's replay window as late traffic.
func (st *TrafficStep) Withhold(releaseStep int) {
	st.delayed[releaseStep] = append(st.delayed[releaseStep], st.Wire)
}

// DeliverAttack presents wire to the receiver in place of the victim's
// frame: counted as injected, acceptance counts as both an accepted
// attack and a delivered frame, rejection as a verify failure; the IDS
// taps see one attacker transmission at the frame's nominal time.
func (st *TrafficStep) DeliverAttack(wire []byte) bool {
	st.res.injected++
	_, err := st.suite.Verify(wire)
	if err == nil {
		st.res.attackAccepted++
		st.res.delivered++
	} else {
		st.res.verifyFailed++
	}
	st.ObserveAttacker(st.Now)
	return err == nil
}

// InjectWire offers one extra frame on top of the victim's traffic at
// time at: counted as injected, acceptance as an accepted attack; the
// IDS taps see one attacker transmission at at.
func (st *TrafficStep) InjectWire(wire []byte, at sim.Time) bool {
	st.res.injected++
	ok := false
	if _, err := st.suite.Verify(wire); err == nil {
		st.res.attackAccepted++
		ok = true
	}
	st.ObserveAttacker(at)
	return ok
}

// CountInjected records an attack frame that never reaches the suite —
// pure bus pressure, as in flooding.
func (st *TrafficStep) CountInjected() { st.res.injected++ }

// ObserveAttacker shows the IDS taps one attacker transmission under
// the victim's identifier at time at.
func (st *TrafficStep) ObserveAttacker(at sim.Time) {
	st.observe(st.Step, at, &canbus.Frame{ID: st.victimID, Format: canbus.FD, SourceID: st.attackerNode})
}

// History returns the victim's protected wire captured at an earlier
// step, or nil when idx predates the run.
func (st *TrafficStep) History(idx int) []byte {
	if idx < 0 || idx >= len(st.history) {
		return nil
	}
	return st.history[idx]
}

// --- built-in behaviours ---

type replayAttack struct{}

func (replayAttack) Deliver(*TrafficStep) bool { return false }
func (replayAttack) Inject(st *TrafficStep) {
	if idx := st.Step - st.Spec.Attacker.Offset; idx >= 0 {
		st.InjectWire(st.History(idx), st.Now+st.Period/2)
	}
}

type forgeAttack struct{}

func (forgeAttack) Deliver(st *TrafficStep) bool {
	// Flip a payload bit and guess the tag. With a truncated MAC (SECOC
	// mac_bits) the guess lands with probability 2^-bits — the
	// detection/acceptance boundary the generator searches.
	tampered := append([]byte(nil), st.Wire...)
	tampered[len(tampered)/2] ^= 0x04
	tag := forgedTagBytes(st.Spec)
	if tag > len(tampered) {
		tag = len(tampered)
	}
	st.RNG.Bytes(tampered[len(tampered)-tag:])
	st.DeliverAttack(tampered)
	return true
}
func (forgeAttack) Inject(*TrafficStep) {}

type masqueradeAttack struct{}

func (masqueradeAttack) Deliver(*TrafficStep) bool { return false }
func (masqueradeAttack) Inject(st *TrafficStep) {
	fake := make([]byte, len(st.Wire))
	st.RNG.Bytes(fake)
	st.InjectWire(fake, st.Now+st.Period/2)
}

type floodAttack struct{}

func (floodAttack) Deliver(*TrafficStep) bool { return false }
func (floodAttack) Inject(st *TrafficStep) {
	rate := st.Spec.Attacker.Rate
	for j := 0; j < rate; j++ {
		st.CountInjected()
		st.ObserveAttacker(st.Now + sim.Time(j+1)*st.Period/sim.Time(rate+1))
	}
}

type delayAttack struct{}

func (delayAttack) Deliver(st *TrafficStep) bool {
	// Jam-and-release: the receiver sees nothing now; the frame
	// re-appears Offset periods later, probing the replay window.
	st.Withhold(st.Step + st.Spec.Attacker.Offset)
	return true
}
func (delayAttack) Inject(*TrafficStep) {}
