package scenario

import (
	"fmt"
	"strings"

	"autosec/internal/canbus"
	"autosec/internal/core"
	"autosec/internal/ids"
	"autosec/internal/killchain"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
	"autosec/internal/secoc"
	"autosec/internal/sim"
	"autosec/internal/telemetry"
	"autosec/internal/vcrypto"
)

// IDPrefix namespaces compiled scenario experiment ids so they can
// never collide with registry experiments ("scn-<name>").
const IDPrefix = "scn-"

// warmupSteps is the detector training window at the start of every
// traffic scenario: both detectors observe only legitimate traffic for
// this many periods, so attacks effectively start no earlier.
const warmupSteps = 16

// Compile validates the spec and turns it into a runnable experiment.
// The result runs through the exact paths registry experiments use
// (core.RunResultOf, avsec run/campaign), with the same determinism
// contract: same spec + seed ⇒ byte-identical report, metrics, and
// trace at any worker-pool size.
func Compile(sp *Spec) (core.Experiment, error) {
	if err := sp.Validate(); err != nil {
		return core.Experiment{}, err
	}
	sp = sp.Clone() // the experiment must not alias caller-mutable state
	title := sp.Title
	if title == "" {
		title = AutoTitle(sp)
	}
	// Validate resolved the type already; Lookup cannot fail here.
	atk, err := Attacks.Lookup(sp.Attacker.Type)
	if err != nil {
		return core.Experiment{}, fmt.Errorf("scenario: [attacker] %w", err)
	}
	run := func(rc *core.RunContext) (string, error) {
		if atk.Run != nil {
			return atk.Run(sp, rc)
		}
		return runTraffic(sp, rc)
	}
	return core.Experiment{
		ID:     IDPrefix + sp.Name,
		Title:  title,
		Source: "scenario",
		Run:    run,
		// Relative wall-time rank for the campaign scheduler: traffic
		// scenarios scale with observed frames × replicates.
		Cost: sp.World.Frames * sp.World.Zones * sp.World.EndpointsPerZone * sp.Run.Replicates / 1000,
	}, nil
}

// AutoTitle derives the standard one-line title from the spec fields.
func AutoTitle(sp *Spec) string {
	if sp.Attacker.Type == AttackKillChain {
		return fmt.Sprintf("kill chain vs %d defences", len(sp.KillChain.Defences))
	}
	return fmt.Sprintf("%s under %s", sp.Protocol.Suite, sp.Attacker.Type)
}

// trial is one replicate's folded outcome. Replicate functions write
// only their own index; all aggregation happens after the join.
type trial struct {
	sent           int // victim frames offered to the channel
	delivered      int // victim frames verified on time
	verifyFailed   int // victim frames the receiver rejected
	lateAccepted   int // delayed frames inside the replay window
	lateRejected   int // delayed frames outside it
	injected       int // attack frames offered to the receiver
	attackAccepted int // attack frames the suite accepted
	alerts         int // IDS alerts in the attack window
	falseAlerts    int // IDS alerts before the attack started
	firstDetect    int // periods from attack start to first alert; -1 = none
}

// runTraffic interprets every non-kill-chain attacker type: a victim
// stream protected by the configured suite, background endpoints per
// zone, the attacker injecting/tampering per its type, and the IDS
// detectors observing every bus arrival.
func runTraffic(sp *Spec, rc *core.RunContext) (string, error) {
	rng := rc.RNG()
	trials := make([]trial, sp.Run.Replicates)
	err := rc.Replicates(sp.Run.Replicates, rng, func(i int, r *sim.RNG) error {
		t, err := simulateTraffic(sp, r)
		trials[i] = t
		return err
	})
	if err != nil {
		return "", err
	}

	// Fold in index order; every published number is a pure function of
	// the joined trials.
	var sum trial
	detected, detectSum := 0, 0
	for _, t := range trials {
		sum.sent += t.sent
		sum.delivered += t.delivered
		sum.verifyFailed += t.verifyFailed
		sum.lateAccepted += t.lateAccepted
		sum.lateRejected += t.lateRejected
		sum.injected += t.injected
		sum.attackAccepted += t.attackAccepted
		sum.alerts += t.alerts
		sum.falseAlerts += t.falseAlerts
		if t.firstDetect >= 0 {
			detected++
			detectSum += t.firstDetect
		}
	}
	n := float64(len(trials))
	ratio := func(num, den int) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	meanDetect := 0.0
	if detected > 0 {
		meanDetect = float64(detectSum) / float64(detected)
	}

	tb := rc.Table(fmt.Sprintf("scenario %s — %s vs %s (%d replicates)",
		sp.Name, sp.Protocol.Suite, sp.Attacker.Type, sp.Run.Replicates),
		"metric", "value")
	tb.AddRow("delivered-rate", ratio(sum.delivered, sum.sent))
	tb.AddRow("verify-reject-rate", ratio(sum.verifyFailed, sum.sent))
	tb.AddRow("late-accept-rate", ratio(sum.lateAccepted, sum.lateAccepted+sum.lateRejected))
	tb.AddRow("attack-accept-rate", ratio(sum.attackAccepted, sum.injected))
	tb.AddRow("injected-per-replicate", float64(sum.injected)/n)
	tb.AddRow("detection-rate", float64(detected)/n)
	tb.AddRow("mean-periods-to-detect", meanDetect)
	tb.AddRow("alerts-per-replicate", float64(sum.alerts)/n)
	tb.AddRow("false-alerts-per-replicate", float64(sum.falseAlerts)/n)

	var b strings.Builder
	b.WriteString(tb.String())
	entry, _, _ := suites.Suites.Get(sp.Protocol.Suite)
	auth, conf, replay := entry.Props.YesNo()
	fmt.Fprintf(&b, "\nworld: %d zones × %d endpoints, %d frames of %d B every %d µs; attacker in zone %d\n",
		sp.World.Zones, sp.World.EndpointsPerZone, sp.World.Frames, sp.World.FrameBytes,
		sp.World.PeriodUS, sp.Attacker.Zone)
	fmt.Fprintf(&b, "suite %s: auth=%s conf=%s replay-protection=%s; ids enabled=%v tolerance=%g radius=%g\n",
		sp.Protocol.Suite, auth, conf, replay, sp.IDS.Enabled, sp.IDS.Tolerance, sp.IDS.MatchRadius)
	return b.String(), nil
}

// trafficDetectors names the registered detectors the traffic loop
// taps, in observation order: the two in-vehicle detectors of the
// paper's §VIII. The entropy and busload detectors stay out of the
// scenario tap chain (the exp-ids engine exercises them) so the
// byte-pinned scenario goldens do not depend on their alert streams.
var trafficDetectors = []string{"interval", "sender-id"}

// simulateTraffic runs one replicate on its own RNG stream. It must
// draw randomness only from r and touch no shared state. The attack
// behaviour is resolved from the attack registry; the detector chain
// from the detector registry.
func simulateTraffic(sp *Spec, r *sim.RNG) (trial, error) {
	res := trial{firstDetect: -1}

	entry, err := suites.Lookup(sp.Protocol.Suite)
	if err != nil {
		return res, err
	}
	key := vcrypto.DeriveKey([]byte("scenario:"+sp.Name), "suite-key", sp.Protocol.Suite, 16)
	suite, err := entry.New(secchan.Params{Key: key, RNG: r, MACBits: sp.Protocol.MACBits})
	if err != nil {
		return res, err
	}

	const victimID uint32 = 0x100
	victimNode := "z0-e0"
	attackerNode := fmt.Sprintf("z%d-attacker", sp.Attacker.Zone)
	period := sim.Time(sp.World.PeriodUS) * sim.Microsecond

	// Detector chain: constructors claiming CapRNG get a fork of the
	// replicate RNG (exactly one fork per claiming detector, so the
	// draw stream does not depend on the RNG-free detectors in the
	// chain); detectors exposing the Enroller interface get the victim
	// stream enrolled and every physical node profiled for attribution.
	var detectors []ids.Detector
	if sp.IDS.Enabled {
		params := ids.DetectorParams{
			Tolerance:   sp.IDS.Tolerance,
			MinSamples:  8,
			MatchRadius: sp.IDS.MatchRadius,
			NoiseStd:    sp.IDS.NoiseStd,
		}
		for _, name := range trafficDetectors {
			ctor, meta, ok := ids.Detectors.Get(name)
			if !ok {
				return res, fmt.Errorf("scenario: detector %q not registered", name)
			}
			p := params
			if meta.Has(ids.CapRNG) {
				p.RNG = r.Fork()
			}
			d := ctor(p)
			if en, isEnroller := d.(ids.Enroller); isEnroller {
				en.Enroll(victimID, victimNode)
				for z := 0; z < sp.World.Zones; z++ {
					for e := 0; e < sp.World.EndpointsPerZone; e++ {
						en.KnowNode(fmt.Sprintf("z%d-e%d", z, e))
					}
				}
				en.KnowNode(attackerNode)
			}
			detectors = append(detectors, d)
		}
	}

	atk, err := Attacks.Lookup(sp.Attacker.Type)
	if err != nil {
		return res, err
	}
	var behaviour AttackBehaviour
	if atk.New != nil {
		behaviour = atk.New(sp)
	}

	attackStart := sp.Attacker.Start
	if attackStart < warmupSteps {
		attackStart = warmupSteps
	}
	observe := func(step int, at sim.Time, f *canbus.Frame) {
		if len(detectors) == 0 {
			return
		}
		alerts := 0
		for _, d := range detectors {
			if a := d.Observe(at, f); a != nil {
				alerts++
			}
		}
		if alerts == 0 {
			return
		}
		if behaviour != nil && step >= attackStart {
			res.alerts += alerts
			if res.firstDetect < 0 {
				res.firstDetect = step - attackStart
			}
		} else {
			res.falseAlerts += alerts
		}
	}
	frameFrom := func(id uint32, node string) *canbus.Frame {
		return &canbus.Frame{ID: id, Format: canbus.FD, SourceID: node}
	}

	delayed := make(map[int][][]byte) // release step → withheld wires
	payload := make([]byte, sp.World.FrameBytes)
	st := &TrafficStep{
		Spec:         sp,
		RNG:          r,
		Period:       period,
		res:          &res,
		suite:        suite,
		history:      make([][]byte, 0, sp.World.Frames), // victim wire history
		delayed:      delayed,
		observe:      observe,
		victimID:     victimID,
		attackerNode: attackerNode,
	}

	for step := 0; step < sp.World.Frames; step++ {
		now := sim.Time(step) * period
		if step == warmupSteps {
			for _, d := range detectors {
				d.EndTraining()
			}
		}

		// Background endpoints keep their periodic streams alive so the
		// interval detector has a trained baseline per identifier.
		for z := 0; z < sp.World.Zones; z++ {
			for e := 0; e < sp.World.EndpointsPerZone; e++ {
				if z == 0 && e == 0 {
					continue // the victim stream is handled below
				}
				id := uint32(0x200 + z*16 + e)
				observe(step, now, frameFrom(id, fmt.Sprintf("z%d-e%d", z, e)))
			}
		}

		attacking := behaviour != nil &&
			step >= attackStart && (step-attackStart)%sp.Attacker.Every == 0

		// The victim's protected frame for this period.
		r.Bytes(payload)
		wire, err := suite.Protect(payload)
		if err != nil {
			return res, fmt.Errorf("%s Protect: %w", sp.Protocol.Suite, err)
		}
		wireCopy := append([]byte(nil), wire...)
		st.history = append(st.history, wireCopy)
		res.sent++
		st.Step, st.Now, st.Wire = step, now, wireCopy

		// The behaviour may own delivery (tamper, withhold); otherwise
		// the frame verifies and delivers normally.
		if !(attacking && behaviour.Deliver(st)) {
			if _, err := suite.Verify(wire); err == nil {
				res.delivered++
			} else {
				res.verifyFailed++
			}
			observe(step, now, frameFrom(victimID, victimNode))
		}

		// Withheld frames due this period arrive after the live frame,
		// so their counters are Offset behind the receiver's high-water
		// mark: inside the suite's window they are accepted late,
		// outside they are dropped.
		for j, w := range delayed[step] {
			if _, err := suite.Verify(w); err == nil {
				res.lateAccepted++
			} else {
				res.lateRejected++
			}
			observe(step, now+sim.Time(j+1), frameFrom(victimID, attackerNode))
		}
		delete(delayed, step)

		// Injections on top of the victim's own traffic.
		if attacking {
			behaviour.Inject(st)
		}
	}
	return res, nil
}

// forgedTagBytes is how many trailing wire bytes the forger randomizes:
// the truncated SECOC tag when that suite is configured, a fixed 4-byte
// guess window otherwise.
func forgedTagBytes(sp *Spec) int {
	if sp.Protocol.Suite == "SECOC" {
		cfg := secoc.DefaultConfig(1)
		if sp.Protocol.MACBits != 0 {
			cfg.MACBits = sp.Protocol.MACBits
		}
		return (cfg.MACBits + 7) / 8
	}
	return 4
}

// runKillChain interprets the AttackKillChain type: the Fig. 8
// telemetry-cloud chain against the configured defence subset, fleet
// size scaled from the world topology.
func runKillChain(sp *Spec, rc *core.RunContext) (string, error) {
	defs := sp.KillChain.Defences
	cfg, err := killchain.ConfigFor(defs)
	if err != nil {
		return "", err
	}
	fleet := 20 * sp.World.Zones * sp.World.EndpointsPerZone
	points := 8 + sp.World.FrameBytes

	rng := rc.RNG()
	reps := make([]*killchain.Report, sp.Run.Replicates)
	err = rc.Replicates(sp.Run.Replicates, rng, func(i int, r *sim.RNG) error {
		cloud := telemetry.NewCloud(cfg, fleet, points, r)
		reps[i] = killchain.Run(cloud)
		return nil
	})
	if err != nil {
		return "", err
	}

	// The chain is deterministic given the config; replicates vary only
	// the fleet data. Aggregate stage depth and breach size.
	stageSum, breached, recSum, vehSum := 0, 0, 0, 0
	for _, rep := range reps {
		stageSum += stageReached(rep)
		if rep.Breached {
			breached++
			recSum += rep.RecordsExfiltrated
			vehSum += rep.VehiclesAffected
		}
	}
	n := float64(len(reps))
	tb := rc.Table(fmt.Sprintf("scenario %s — kill chain vs %d defences (%d replicates)",
		sp.Name, len(defs), sp.Run.Replicates),
		"metric", "value")
	tb.AddRow("stage-reached", float64(stageSum)/n)
	tb.AddRow("breach-rate", float64(breached)/n)
	tb.AddRow("records-exfiltrated", float64(recSum)/n)
	tb.AddRow("vehicles-affected", float64(vehSum)/n)
	tb.AddRow("defences-deployed", len(defs))

	var b strings.Builder
	b.WriteString(tb.String())
	names := "(none)"
	if len(sp.KillChain.Defences) > 0 {
		names = strings.Join(sp.KillChain.Defences, ", ")
	}
	fmt.Fprintf(&b, "\ndefences: %s\nchain trace of replicate 0:\n%s", names, reps[0].String())
	return b.String(), nil
}

// stageReached counts completed chain links (6 = full breach).
func stageReached(rep *killchain.Report) int {
	if rep.Breached {
		return 6
	}
	if f := rep.FailedAt(); f >= 0 {
		return f
	}
	return len(rep.Stages)
}
