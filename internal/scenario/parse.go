package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SpecFile is the canonical file name inside each scenario folder.
const SpecFile = "scenario.ini"

// ParseError is a positioned scenario.ini parse failure. Malformed
// input never panics — it always lands here, with the 1-based line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scenario.ini:%d: %s", e.Line, e.Msg)
}

func perr(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// field describes one serializable key of a section: how to print the
// current value and how to assign a parsed one. Parse and Marshal share
// this table, which is what makes the round-trip guarantee structural
// rather than hand-kept.
type field struct {
	key   string
	get   func(s *Spec) string
	set   func(s *Spec, line int, raw string) error
	write func(s *Spec) bool // nil = always serialize
}

// section groups fields under their [name] in canonical order.
type sections []struct {
	name   string
	fields []field
}

func intField(key string, p func(s *Spec) *int) field {
	return field{
		key: key,
		get: func(s *Spec) string { return strconv.Itoa(*p(s)) },
		set: func(s *Spec, line int, raw string) error {
			v, err := strconv.Atoi(raw)
			if err != nil {
				return perr(line, "key %q: %q is not an integer", key, raw)
			}
			*p(s) = v
			return nil
		},
	}
}

func floatField(key string, p func(s *Spec) *float64) field {
	return field{
		key: key,
		get: func(s *Spec) string { return strconv.FormatFloat(*p(s), 'g', -1, 64) },
		set: func(s *Spec, line int, raw string) error {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return perr(line, "key %q: %q is not a number", key, raw)
			}
			*p(s) = v
			return nil
		},
	}
}

func boolField(key string, p func(s *Spec) *bool) field {
	return field{
		key: key,
		get: func(s *Spec) string { return strconv.FormatBool(*p(s)) },
		set: func(s *Spec, line int, raw string) error {
			switch raw {
			case "true":
				*p(s) = true
			case "false":
				*p(s) = false
			default:
				return perr(line, "key %q: %q is not true/false", key, raw)
			}
			return nil
		},
	}
}

func stringField(key string, p func(s *Spec) *string) field {
	return field{
		key: key,
		get: func(s *Spec) string { return *p(s) },
		set: func(s *Spec, line int, raw string) error {
			*p(s) = raw
			return nil
		},
	}
}

// specSections is the single source of truth for the scenario.ini
// format: every section and key, in canonical serialization order.
func specSections() sections {
	return sections{
		{"scenario", []field{
			stringField("name", func(s *Spec) *string { return &s.Name }),
			stringField("title", func(s *Spec) *string { return &s.Title }),
		}},
		{"world", []field{
			intField("zones", func(s *Spec) *int { return &s.World.Zones }),
			intField("endpoints_per_zone", func(s *Spec) *int { return &s.World.EndpointsPerZone }),
			intField("frames", func(s *Spec) *int { return &s.World.Frames }),
			intField("frame_bytes", func(s *Spec) *int { return &s.World.FrameBytes }),
			intField("period_us", func(s *Spec) *int { return &s.World.PeriodUS }),
		}},
		{"attacker", []field{
			stringField("type", func(s *Spec) *string { return &s.Attacker.Type }),
			intField("zone", func(s *Spec) *int { return &s.Attacker.Zone }),
			intField("start", func(s *Spec) *int { return &s.Attacker.Start }),
			intField("every", func(s *Spec) *int { return &s.Attacker.Every }),
			intField("offset", func(s *Spec) *int { return &s.Attacker.Offset }),
			intField("rate", func(s *Spec) *int { return &s.Attacker.Rate }),
		}},
		{"protocol", []field{
			stringField("suite", func(s *Spec) *string { return &s.Protocol.Suite }),
			intField("mac_bits", func(s *Spec) *int { return &s.Protocol.MACBits }),
		}},
		{"ids", []field{
			boolField("enabled", func(s *Spec) *bool { return &s.IDS.Enabled }),
			floatField("tolerance", func(s *Spec) *float64 { return &s.IDS.Tolerance }),
			floatField("match_radius", func(s *Spec) *float64 { return &s.IDS.MatchRadius }),
			floatField("noise_std", func(s *Spec) *float64 { return &s.IDS.NoiseStd }),
		}},
		{"killchain", []field{
			{
				key: "defences",
				get: func(s *Spec) string { return strings.Join(s.KillChain.Defences, ", ") },
				set: func(s *Spec, line int, raw string) error {
					s.KillChain.Defences = nil
					if raw == "" {
						return nil
					}
					for _, part := range strings.Split(raw, ",") {
						part = strings.TrimSpace(part)
						if part == "" {
							return perr(line, "key %q: empty defence name in list", "defences")
						}
						s.KillChain.Defences = append(s.KillChain.Defences, part)
					}
					return nil
				},
				// The section only appears for kill-chain scenarios; a
				// trailing empty list would serialize ambiguously.
				write: func(s *Spec) bool { return s.Attacker.Type == AttackKillChain },
			},
		}},
		{"run", []field{
			intField("replicates", func(s *Spec) *int { return &s.Run.Replicates }),
		}},
	}
}

// MarshalINI renders the spec in canonical scenario.ini form. The
// output is byte-stable: Parse(MarshalINI(s)) reproduces s exactly, and
// MarshalINI(Parse(b)) is the canonical form of any accepted b.
func (s *Spec) MarshalINI() []byte {
	var b strings.Builder
	b.WriteString("# avsec scenario — see docs/SCENARIOS.md for the format.\n")
	for _, sec := range specSections() {
		var lines []string
		for _, f := range sec.fields {
			if f.write != nil && !f.write(s) {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s = %s", f.key, f.get(s)))
		}
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n[%s]\n", sec.name)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// Fingerprint returns a hex SHA-256 digest of the spec's canonical
// scenario.ini form. Because the canonical form is a fixed point of
// marshal∘parse, two specs fingerprint equal exactly when they are the
// same scenario, regardless of comment or ordering differences in the
// files they were parsed from. The avsecd result cache folds this into
// its content address, so editing a scenario invalidates its cached
// results the same way rebuilding the binary does.
func (s *Spec) Fingerprint() string {
	sum := sha256.Sum256(s.MarshalINI())
	return hex.EncodeToString(sum[:])
}

// Parse reads a scenario.ini document into a Spec. Unknown sections or
// keys, duplicates, and malformed values are positioned errors; absent
// keys keep their DefaultSpec value. Parse never panics on any input.
func Parse(data []byte) (*Spec, error) {
	s := DefaultSpec("unnamed")
	s.Name = "" // the file must say; the default would mask a missing name
	s.Title = ""

	secs := specSections()
	fieldsOf := make(map[string]map[string]field, len(secs))
	for _, sec := range secs {
		m := make(map[string]field, len(sec.fields))
		for _, f := range sec.fields {
			m[f.key] = f
		}
		fieldsOf[sec.name] = m
	}

	current := "" // active section name; "" = before any header
	seenSection := map[string]bool{}
	seenKey := map[string]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		ln := i + 1
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, ";") {
			continue
		}
		if strings.HasPrefix(t, "[") {
			if !strings.HasSuffix(t, "]") {
				return nil, perr(ln, "unterminated section header %q", t)
			}
			name := strings.TrimSpace(t[1 : len(t)-1])
			if _, ok := fieldsOf[name]; !ok {
				return nil, perr(ln, "unknown section %q", name)
			}
			if seenSection[name] {
				return nil, perr(ln, "duplicate section [%s]", name)
			}
			seenSection[name] = true
			current = name
			continue
		}
		eq := strings.Index(t, "=")
		if eq < 0 {
			return nil, perr(ln, "expected 'key = value' or a [section] header, got %q", t)
		}
		if current == "" {
			return nil, perr(ln, "key before any [section] header")
		}
		key := strings.TrimSpace(t[:eq])
		val := strings.TrimSpace(t[eq+1:])
		f, ok := fieldsOf[current][key]
		if !ok {
			return nil, perr(ln, "unknown key %q in section [%s] (known: %s)", key, current, knownKeys(secs, current))
		}
		full := current + "." + key
		if seenKey[full] {
			return nil, perr(ln, "duplicate key %q in section [%s]", key, current)
		}
		seenKey[full] = true
		if err := f.set(s, ln, val); err != nil {
			return nil, err
		}
	}
	if s.Name == "" {
		return nil, perr(1, "missing required key: [scenario] name")
	}
	if seenSection["killchain"] && s.Attacker.Type != AttackKillChain {
		return nil, perr(1, "[killchain] section requires attacker type %q, not %q", AttackKillChain, s.Attacker.Type)
	}
	return s, nil
}

// knownKeys lists a section's keys for error messages, sorted.
func knownKeys(secs sections, name string) string {
	for _, sec := range secs {
		if sec.name != name {
			continue
		}
		keys := make([]string, len(sec.fields))
		for i, f := range sec.fields {
			keys[i] = f.key
		}
		sort.Strings(keys)
		return strings.Join(keys, ", ")
	}
	return ""
}
