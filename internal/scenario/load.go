package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"autosec/internal/core"
)

// LoadDir reads every scenario folder under dir (dir/<name>/scenario.ini,
// the SysImpactCV per-scenario layout), validating each spec and
// requiring the [scenario] name to match its folder. A missing dir is
// not an error — it loads zero scenarios, so CLI callers can always
// point at the conventional "scenarios" directory. Specs return sorted
// by name; entries that are not scenario folders (MANIFEST.ini,
// INDEX.md, golden files) are ignored.
func LoadDir(dir string) ([]*Spec, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var specs []*Spec
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name(), SpecFile)
		data, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue // a folder without a spec is not a scenario
		}
		if err != nil {
			return nil, err
		}
		sp, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if sp.Name != e.Name() {
			return nil, fmt.Errorf("%s: scenario name %q does not match its folder %q", path, sp.Name, e.Name())
		}
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// CompileDir loads and compiles every scenario under dir, returning the
// experiments in name order.
func CompileDir(dir string) ([]core.Experiment, error) {
	specs, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	exps := make([]core.Experiment, len(specs))
	for i, sp := range specs {
		e, err := Compile(sp)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sp.Name, err)
		}
		exps[i] = e
	}
	return exps, nil
}
