package scenario

import (
	"fmt"
	"strings"
	"testing"

	"autosec/internal/core"
	"autosec/internal/killchain"
	"autosec/internal/secchan/suites"
)

// TestRegisteredNamesRoundTripThroughDSL is the cross-kind property
// test of the extension registry: EVERY registered suite, attack, and
// defence name — not a hardcoded list — survives a full scenario.ini
// round trip (marshal → parse) and compiles into a runnable
// experiment. A drop-in registered from any linked-in package is
// covered automatically, so "registered" and "stageable from the DSL"
// can never drift apart.
func TestRegisteredNamesRoundTripThroughDSL(t *testing.T) {
	t.Parallel()

	roundTrip := func(t *testing.T, sp *Spec) *Spec {
		t.Helper()
		got, err := Parse(sp.MarshalINI())
		if err != nil {
			t.Fatalf("parse after marshal: %v", err)
		}
		if _, err := Compile(got); err != nil {
			t.Fatalf("compile: %v", err)
		}
		return got
	}

	for _, name := range suites.Suites.Names() {
		t.Run("suite/"+name, func(t *testing.T) {
			sp := DefaultSpec("rt-suite")
			sp.Protocol.Suite = name
			if got := roundTrip(t, sp); got.Protocol.Suite != name {
				t.Errorf("suite %q became %q", name, got.Protocol.Suite)
			}
		})
	}

	for _, name := range Attacks.Names() {
		t.Run("attack/"+name, func(t *testing.T) {
			sp := DefaultSpec("rt-attack")
			sp.Attacker.Type = name
			if name == AttackKillChain {
				sp.KillChain.Defences = []string{"least-privilege"}
			}
			if got := roundTrip(t, sp); got.Attacker.Type != name {
				t.Errorf("attack %q became %q", name, got.Attacker.Type)
			}
		})
	}

	for _, name := range killchain.Extensions.Names() {
		t.Run("defence/"+name, func(t *testing.T) {
			sp := DefaultSpec("rt-defence")
			sp.Attacker.Type = AttackKillChain
			sp.KillChain.Defences = []string{name}
			got := roundTrip(t, sp)
			if len(got.KillChain.Defences) != 1 || got.KillChain.Defences[0] != name {
				t.Errorf("defences %v survived as %v", sp.KillChain.Defences, got.KillChain.Defences)
			}
		})
	}
}

// TestRegisteredAttacksRun goes one step past compiling: every
// registered attack behaviour actually executes a (tiny) replicate
// set without error and reports under the scenario's name.
func TestRegisteredAttacksRun(t *testing.T) {
	t.Parallel()
	for _, name := range Attacks.Names() {
		t.Run(name, func(t *testing.T) {
			sp := DefaultSpec(fmt.Sprintf("run-%s", strings.ToLower(name)))
			sp.Attacker.Type = name
			sp.Run.Replicates = 1
			if name == AttackKillChain {
				sp.KillChain.Defences = []string{"secret-scrubbing"}
			}
			e, err := Compile(sp)
			if err != nil {
				t.Fatal(err)
			}
			out, err := e.Run(core.NewRunContext(7))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, sp.Name) {
				t.Errorf("report does not name scenario %q:\n%s", sp.Name, out)
			}
		})
	}
}
