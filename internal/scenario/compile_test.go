package scenario

import (
	"runtime"
	"strings"
	"testing"

	"autosec/internal/core"
	"autosec/internal/sim"
)

// sampleSpecs returns one runnable spec per attack type, spanning every
// interpreter path: traffic loop with each attacker behaviour plus the
// kill-chain branch, across two different suites.
func sampleSpecs(t *testing.T) []*Spec {
	t.Helper()
	var specs []*Spec
	for _, typ := range AttackTypes() {
		sp := DefaultSpec("xc-" + typ)
		sp.Attacker.Type = typ
		switch typ {
		case AttackDelay:
			sp.Protocol.Suite = "IPsec ESP" // bitmap window → late accepts
		case AttackForge:
			sp.Protocol.MACBits = 8 // truncated MAC → guessable
		case AttackKillChain:
			sp.KillChain.Defences = []string{"disable-heapdump"}
		}
		sp.Title = AutoTitle(sp)
		if err := sp.Validate(); err != nil {
			t.Fatalf("sample %s: %v", typ, err)
		}
		specs = append(specs, sp)
	}
	return specs
}

// TestCompileDeterminism: the same spec at the same seed produces
// byte-identical reports and metric streams across repeated runs.
func TestCompileDeterminism(t *testing.T) {
	for _, sp := range sampleSpecs(t) {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			e, err := Compile(sp)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			a, err := core.RunResultOf(e, 42, core.RunOptions{})
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			b, err := core.RunResultOf(e, 42, core.RunOptions{})
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if a.Report != b.Report {
				t.Error("report not deterministic across runs")
			}
			if len(a.Metrics) == 0 {
				t.Error("scenario published no metrics")
			}
		})
	}
}

// TestScenarioSerialParallelCrossCheck extends the repo's
// serial/parallel cross-check invariant to DSL scenarios: every sample
// scenario must produce byte-identical reports and bit-identical typed
// metrics whether its replicate loops run serially (nil pool) or over a
// pool of 1, 2, or GOMAXPROCS workers.
func TestScenarioSerialParallelCrossCheck(t *testing.T) {
	const seed = 42
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, sp := range sampleSpecs(t) {
		sp := sp
		sp.Run.Replicates = 4 // enough fan-out for the pool to matter
		t.Run(sp.Name, func(t *testing.T) {
			t.Parallel()
			e, err := Compile(sp)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			base, err := core.RunResultOf(e, seed, core.RunOptions{})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, workers := range counts {
				res, err := core.RunResultOf(e, seed, core.RunOptions{Pool: sim.NewWorkerPool(workers)})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Report != base.Report {
					t.Errorf("workers=%d: report diverged from serial run", workers)
				}
				if len(res.Metrics) != len(base.Metrics) {
					t.Fatalf("workers=%d: %d metrics, serial had %d", workers, len(res.Metrics), len(base.Metrics))
				}
				for i := range base.Metrics {
					if res.Metrics[i] != base.Metrics[i] {
						t.Errorf("workers=%d: metric %d = %+v, serial had %+v",
							workers, i, res.Metrics[i], base.Metrics[i])
					}
				}
			}
		})
	}
}

// TestCompileRejectsInvalid: Compile re-validates, so a mutated-invalid
// spec cannot reach the runner.
func TestCompileRejectsInvalid(t *testing.T) {
	sp := DefaultSpec("bad")
	sp.World.Zones = 99
	if _, err := Compile(sp); err == nil {
		t.Error("Compile accepted an invalid spec")
	}
}

// TestCompileID pins the experiment-id convention scenarios are
// addressed by on the CLI.
func TestCompileID(t *testing.T) {
	e, err := Compile(DefaultSpec("baseline"))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if e.ID != IDPrefix+"baseline" {
		t.Errorf("ID = %q, want %q", e.ID, IDPrefix+"baseline")
	}
	if e.Source != "scenario" {
		t.Errorf("Source = %q, want scenario", e.Source)
	}
}

// TestDelayLateAccepts pins that the delay attacker actually probes the
// replay-window boundary: IPsec ESP's 64-deep bitmap accepts an unseen
// late frame within the window, while SECOC's strict monotone counter
// never accepts anything behind its high-water mark.
func TestDelayLateAccepts(t *testing.T) {
	run := func(suite string, offset int) float64 {
		name := strings.ToLower(strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
				return r
			}
			return '-'
		}, suite))
		sp := DefaultSpec("late-" + name)
		sp.Attacker.Type = AttackDelay
		sp.Attacker.Offset = offset
		sp.Protocol.Suite = suite
		e, err := Compile(sp)
		if err != nil {
			t.Fatalf("Compile(%s): %v", suite, err)
		}
		res, err := core.RunResultOf(e, 42, core.RunOptions{})
		if err != nil {
			t.Fatalf("run(%s): %v", suite, err)
		}
		for _, m := range res.Metrics {
			if m.Name == "late-accept-rate/value" {
				return m.Value
			}
		}
		t.Fatalf("%s: no late-accept-rate metric", suite)
		return 0
	}
	if got := run("SECOC", 8); got != 0 {
		t.Errorf("SECOC late-accept-rate = %v, want 0 (strict counter)", got)
	}
	if got := run("IPsec ESP", 8); got <= 0 {
		t.Errorf("IPsec ESP late-accept-rate = %v, want > 0 (bitmap window)", got)
	}
}
