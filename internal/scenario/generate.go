package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"autosec/internal/core"
	"autosec/internal/ext"
	"autosec/internal/killchain"
	"autosec/internal/secchan/suites"
	"autosec/internal/sim"
)

// covSeed is the fixed evaluation seed of the generator: every
// candidate spec is executed once at this seed and its published
// metrics become coverage signals. One fixed seed keeps generation a
// pure function of GenConfig.
const covSeed = 9

// manifestVersion guards the corpus format: bump it when the generator
// or serialization changes incompatibly, so `avsec gen -check` fails
// loudly instead of diffing noise.
const manifestVersion = 1

// GenConfig parameterises one corpus generation. Generation is a pure
// function of this struct — the same config reproduces the committed
// corpus byte for byte on any machine at any -jobs count.
type GenConfig struct {
	// Seed drives every mutation decision.
	Seed int64
	// Target is how many scenarios to accept into the corpus.
	Target int
	// MaxIters bounds the search (0 = 64 × Target).
	MaxIters int
}

// Corpus is a generated scenario set plus its coverage account.
type Corpus struct {
	Cfg GenConfig
	// Specs are the accepted scenarios, named gen-0000… in acceptance
	// order.
	Specs []*Spec
	// Keys are the distinct coverage keys the corpus reached, sorted.
	Keys []string
	// Iters is how many candidate evaluations the search consumed.
	Iters int
}

// bucket maps a rate metric onto the three coverage-relevant outcomes:
// the all/zero boundaries are exactly the detection/non-detection and
// accept/reject edges the generator hunts for.
func bucket(v float64) string {
	switch {
	case v <= 0:
		return "zero"
	case v >= 1:
		return "all"
	default:
		return "partial"
	}
}

// coverageKeys derives the coverage signals of one evaluated candidate
// by folding every registered coverage dimension over its spec and
// metrics: which attack/suite pairing ran, which kill-chain stage the
// attacker reached, which side of the detection boundary the IDS
// landed on, whether the replay window let late traffic through.
// Coverage is set-semantic, so dimension iteration order is free.
func coverageKeys(sp *Spec, metrics []sim.Metric) []string {
	m := make(map[string]float64, len(metrics))
	for _, mt := range metrics {
		m[mt.Name] = mt.Value
	}
	var keys []string
	GenDims.Each(func(_ ext.Meta, d GenDim) {
		keys = append(keys, d.Keys(sp, m)...)
	})
	return keys
}

// baseSpecs are the search's starting population: one tuned spec per
// attack type, each already sitting near an interesting boundary
// (truncated MAC for forgery, small offsets for window edges).
func baseSpecs() []*Spec {
	var out []*Spec
	for _, typ := range AttackTypes() {
		sp := DefaultSpec("base-" + typ)
		sp.Attacker.Type = typ
		switch typ {
		case AttackForge:
			sp.Protocol.MACBits = 8
		case AttackReplay:
			sp.Attacker.Offset = 4
		case AttackDelay:
			sp.Attacker.Offset = 8
		case AttackKillChain:
			sp.KillChain.Defences = nil
		}
		sp.Title = AutoTitle(sp)
		out = append(out, sp)
	}
	return out
}

// pickInt returns one of the given values.
func pickInt(r *sim.RNG, vs []int) int { return vs[r.Intn(len(vs))] }

func pickFloat(r *sim.RNG, vs []float64) float64 { return vs[r.Intn(len(vs))] }

// mutations is the fixed operator table of the search. Each operator
// moves one knob to a value chosen from a set that includes the
// documented boundary points (replay-window edges at 31/32/33 and
// 63/64/65, MAC truncations, detector tolerances either side of the
// period-halving signature).
func mutations() []func(*Spec, *sim.RNG) {
	suiteNames := suites.Registry().Names()
	defNames := killchain.DefenceNames()
	return []func(*Spec, *sim.RNG){
		func(s *Spec, r *sim.RNG) { s.Protocol.Suite = suiteNames[r.Intn(len(suiteNames))] },
		func(s *Spec, r *sim.RNG) { s.Protocol.MACBits = pickInt(r, []int{0, 8, 16, 24, 32, 64}) },
		func(s *Spec, r *sim.RNG) {
			s.Attacker.Offset = pickInt(r, []int{1, 2, 4, 8, 16, 31, 32, 33, 63, 64, 65, 127, 128})
		},
		func(s *Spec, r *sim.RNG) { s.World.Frames = pickInt(r, []int{64, 96, 128, 192, 256, 384}) },
		func(s *Spec, r *sim.RNG) { s.World.Zones = 1 + r.Intn(4) },
		func(s *Spec, r *sim.RNG) { s.World.EndpointsPerZone = 1 + r.Intn(6) },
		func(s *Spec, r *sim.RNG) { s.World.FrameBytes = pickInt(r, []int{4, 8, 16, 32}) },
		func(s *Spec, r *sim.RNG) { s.World.PeriodUS = pickInt(r, []int{2000, 5000, 10000, 20000}) },
		func(s *Spec, r *sim.RNG) {
			s.IDS.Tolerance = pickFloat(r, []float64{0.3, 0.45, 0.5, 0.55, 0.7, 0.9})
		},
		func(s *Spec, r *sim.RNG) {
			s.IDS.MatchRadius = pickFloat(r, []float64{0.05, 0.1, 0.2, 0.25, 0.3, 0.5, 1.0})
		},
		func(s *Spec, r *sim.RNG) {
			s.IDS.NoiseStd = pickFloat(r, []float64{0, 0.01, 0.03, 0.08, 0.15})
		},
		func(s *Spec, r *sim.RNG) { s.IDS.Enabled = !s.IDS.Enabled },
		func(s *Spec, r *sim.RNG) { s.Run.Replicates = pickInt(r, []int{2, 3, 4}) },
		func(s *Spec, r *sim.RNG) { s.Attacker.Every = pickInt(r, []int{1, 2, 3, 4, 8}) },
		func(s *Spec, r *sim.RNG) { s.Attacker.Start = pickInt(r, []int{0, 16, 32, 48, 64}) },
		func(s *Spec, r *sim.RNG) { s.Attacker.Rate = pickInt(r, []int{1, 2, 4, 8, 16}) },
		func(s *Spec, r *sim.RNG) { s.Attacker.Zone = r.Intn(6) },
		func(s *Spec, r *sim.RNG) {
			types := AttackTypes()
			s.Attacker.Type = types[r.Intn(len(types))]
			resampleDefences(s, r, defNames)
		},
		func(s *Spec, r *sim.RNG) { resampleDefences(s, r, defNames) },
	}
}

// resampleDefences draws a fresh defence subset for kill-chain specs
// (and clears it otherwise, keeping the spec valid).
func resampleDefences(s *Spec, r *sim.RNG, defNames []string) {
	s.KillChain.Defences = nil
	if s.Attacker.Type != AttackKillChain {
		return
	}
	for _, name := range defNames {
		if r.Bool(0.5) {
			s.KillChain.Defences = append(s.KillChain.Defences, name)
		}
	}
}

// repair clamps cross-field constraints a single-knob mutation can
// break, so every candidate reaches Validate well-formed.
func repair(s *Spec) {
	if s.Attacker.Zone >= s.World.Zones {
		s.Attacker.Zone = s.World.Zones - 1
	}
	if s.Attacker.Start >= s.World.Frames {
		s.Attacker.Start = s.World.Frames - 1
	}
	if s.Attacker.Type != AttackKillChain {
		s.KillChain.Defences = nil
	}
	s.Title = AutoTitle(s)
}

// Generate runs the coverage-guided search: starting from one base
// spec per attack type, it mutates accepted specs and keeps candidates
// that light up a coverage key no earlier scenario reached (with a
// low-rate exploration quota so the corpus also densifies already-seen
// regions until Target is met). Every accepted spec validates, runs,
// and is named gen-NNNN in acceptance order.
func Generate(cfg GenConfig) (*Corpus, error) {
	if cfg.Target < 1 {
		return nil, fmt.Errorf("scenario: generate target %d < 1", cfg.Target)
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 64 * cfg.Target
	}
	rng := sim.NewRNG(cfg.Seed)
	muts := mutations()
	covered := make(map[string]bool)
	var keys []string
	c := &Corpus{Cfg: GenConfig{Seed: cfg.Seed, Target: cfg.Target, MaxIters: maxIters}}

	accept := func(sp *Spec, ks []string) {
		sp.Name = fmt.Sprintf("gen-%04d", len(c.Specs))
		c.Specs = append(c.Specs, sp)
		for _, k := range ks {
			if !covered[k] {
				covered[k] = true
				keys = append(keys, k)
			}
		}
	}

	evaluate := func(sp *Spec) ([]string, error) {
		e, err := Compile(sp)
		if err != nil {
			return nil, err
		}
		res, err := core.RunResultOf(e, covSeed, core.RunOptions{})
		if err != nil {
			return nil, err
		}
		return coverageKeys(sp, res.Metrics), nil
	}

	// Seed the population: the bases always enter the corpus, so every
	// attack type is represented even at tiny targets.
	for _, sp := range baseSpecs() {
		if len(c.Specs) >= cfg.Target {
			break
		}
		ks, err := evaluate(sp)
		if err != nil {
			return nil, fmt.Errorf("scenario: base %s: %w", sp.Attacker.Type, err)
		}
		accept(sp, ks)
	}

	for c.Iters = 0; len(c.Specs) < cfg.Target && c.Iters < maxIters; c.Iters++ {
		parent := c.Specs[rng.Intn(len(c.Specs))]
		cand := parent.Clone()
		for n := 1 + rng.Intn(3); n > 0; n-- {
			muts[rng.Intn(len(muts))](cand, rng)
		}
		repair(cand)
		if err := cand.Validate(); err != nil {
			// A mutation combination outside the repairable envelope;
			// skip it — determinism is unaffected, the draw sequence
			// already advanced.
			continue
		}
		ks, err := evaluate(cand)
		if err != nil {
			return nil, fmt.Errorf("scenario: candidate eval: %w", err)
		}
		fresh := false
		for _, k := range ks {
			if !covered[k] {
				fresh = true
				break
			}
		}
		// Exploration quota: every 7th iteration may accept a
		// no-new-coverage candidate, so the corpus reaches Target even
		// after the coverage frontier saturates.
		if fresh || c.Iters%7 == 6 {
			accept(cand, ks)
		}
	}
	if len(c.Specs) < cfg.Target {
		return nil, fmt.Errorf("scenario: search exhausted %d iterations with %d/%d scenarios",
			maxIters, len(c.Specs), cfg.Target)
	}
	sort.Strings(keys)
	c.Keys = keys
	return c, nil
}

// ManifestFile records the generator inputs inside the corpus — the
// single source `avsec gen -check` regenerates from.
const ManifestFile = "MANIFEST.ini"

// IndexFile is the generated human-readable corpus index.
const IndexFile = "INDEX.md"

// Files renders the corpus as its on-disk layout: one folder per
// scenario holding scenario.ini, plus the manifest and the index. The
// map is path → exact file bytes.
func (c *Corpus) Files() map[string][]byte {
	files := make(map[string][]byte, len(c.Specs)+2)
	for _, sp := range c.Specs {
		files[sp.Name+"/"+SpecFile] = sp.MarshalINI()
	}
	var m strings.Builder
	m.WriteString("# avsec scenario corpus manifest — regenerate with `avsec gen`.\n")
	m.WriteString("# CI re-runs the generator from this seed and diffs byte-for-byte.\n\n")
	m.WriteString("[generator]\n")
	fmt.Fprintf(&m, "version = %d\n", manifestVersion)
	fmt.Fprintf(&m, "seed = %d\n", c.Cfg.Seed)
	fmt.Fprintf(&m, "target = %d\n", c.Cfg.Target)
	fmt.Fprintf(&m, "max_iters = %d\n", c.Cfg.MaxIters)
	fmt.Fprintf(&m, "count = %d\n", len(c.Specs))
	fmt.Fprintf(&m, "coverage_keys = %d\n", len(c.Keys))
	fmt.Fprintf(&m, "iterations = %d\n", c.Iters)
	files[ManifestFile] = []byte(m.String())
	files[IndexFile] = []byte(c.IndexMarkdown())
	return files
}

// IndexMarkdown renders the corpus index: a per-scenario table plus the
// sorted coverage-key account. Regenerated by `avsec gen`; CI diffs it
// the same way EXPERIMENTS.md is kept fresh.
func (c *Corpus) IndexMarkdown() string {
	var b strings.Builder
	b.WriteString("# Scenario corpus index\n\n")
	fmt.Fprintf(&b, "Generated by `avsec gen -seed %d -target %d` — do not edit by hand;\n",
		c.Cfg.Seed, c.Cfg.Target)
	b.WriteString("`avsec gen -check` regenerates the corpus from MANIFEST.ini and fails\non any byte difference.\n\n")
	fmt.Fprintf(&b, "%d scenarios, %d coverage keys, %d search iterations.\n\n",
		len(c.Specs), len(c.Keys), c.Iters)
	b.WriteString("| scenario | attack | suite | ids | replicates | title |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, sp := range c.Specs {
		suite := sp.Protocol.Suite
		if sp.Attacker.Type == AttackKillChain {
			suite = "—"
		}
		ids := "off"
		if sp.IDS.Enabled {
			ids = "on"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %d | %s |\n",
			sp.Name, sp.Attacker.Type, suite, ids, sp.Run.Replicates, sp.Title)
	}
	b.WriteString("\n## Coverage keys\n\n")
	for _, k := range c.Keys {
		fmt.Fprintf(&b, "- `%s`\n", k)
	}
	return b.String()
}

// ParseManifest reads the generator inputs back out of MANIFEST.ini.
func ParseManifest(data []byte) (GenConfig, error) {
	var cfg GenConfig
	inSection := false
	version := -1
	for i, line := range strings.Split(string(data), "\n") {
		ln := i + 1
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		if t == "[generator]" {
			inSection = true
			continue
		}
		if strings.HasPrefix(t, "[") {
			return cfg, fmt.Errorf("%s:%d: unknown section %q", ManifestFile, ln, t)
		}
		if !inSection {
			return cfg, fmt.Errorf("%s:%d: key before [generator]", ManifestFile, ln)
		}
		eq := strings.Index(t, "=")
		if eq < 0 {
			return cfg, fmt.Errorf("%s:%d: expected 'key = value'", ManifestFile, ln)
		}
		key := strings.TrimSpace(t[:eq])
		val := strings.TrimSpace(t[eq+1:])
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("%s:%d: key %q: %q is not an integer", ManifestFile, ln, key, val)
		}
		switch key {
		case "version":
			version = int(n)
		case "seed":
			cfg.Seed = n
		case "target":
			cfg.Target = int(n)
		case "max_iters":
			cfg.MaxIters = int(n)
		case "count", "coverage_keys", "iterations":
			// Informational outputs; regeneration recomputes them.
		default:
			return cfg, fmt.Errorf("%s:%d: unknown key %q", ManifestFile, ln, key)
		}
	}
	if version != manifestVersion {
		return cfg, fmt.Errorf("%s: version %d, this tool writes %d — regenerate the corpus", ManifestFile, version, manifestVersion)
	}
	if cfg.Target < 1 {
		return cfg, fmt.Errorf("%s: missing or invalid target", ManifestFile)
	}
	return cfg, nil
}
