package scenario

import (
	"fmt"

	"autosec/internal/ext"
)

// GenDim is one coverage dimension of the corpus generator (ext kind
// "gendim"): it derives zero or more coverage keys from an evaluated
// candidate's spec and published metrics. Coverage is set-semantic —
// the generator dedups keys and sorts the final account — so a
// dimension only has to produce a stable key set, not a stable order.
//
// Registering a new dimension changes which candidates count as fresh
// coverage and therefore regenerates the corpus; unlike the other
// kinds there is no cap that shields the goldens, which is why the
// built-ins below are the only dimensions a released binary registers
// (and why `avsec gen -check` exists).
type GenDim struct {
	// Keys derives the dimension's coverage keys; m maps metric name to
	// value.
	Keys func(sp *Spec, m map[string]float64) []string
}

// GenDims is the coverage-dimension extension registry.
var GenDims = ext.NewRegistry[GenDim]("gendim")

func init() {
	reg := func(rank int, name, desc string, keys func(*Spec, map[string]float64) []string) {
		GenDims.Register(ext.Meta{Name: name, Description: desc,
			Paper: "coverage-guided corpus search over the §III/§IV scenario space",
			Caps:  []string{ext.CapCore}, Rank: rank}, GenDim{Keys: keys})
	}
	reg(1, "attack-type", "which attacker type the candidate stages",
		func(sp *Spec, _ map[string]float64) []string {
			return []string{"attack:" + sp.Attacker.Type}
		})
	reg(2, "killchain-depth", "kill-chain stage reached, breach outcome, and defence count",
		func(sp *Spec, m map[string]float64) []string {
			if sp.Attacker.Type != AttackKillChain {
				return nil
			}
			return []string{
				fmt.Sprintf("kc:stage:%d", int(m["stage-reached/value"])),
				"kc:breached:" + bucket(m["breach-rate/value"]),
				fmt.Sprintf("kc:ndef:%d", len(sp.KillChain.Defences)),
			}
		})
	reg(3, "suite-pairing", "which suite ran and which suite×attack pairing it exercised",
		func(sp *Spec, _ map[string]float64) []string {
			if sp.Attacker.Type == AttackKillChain {
				return nil
			}
			s := sp.Protocol.Suite
			return []string{"suite:" + s, "pair:" + s + "+" + sp.Attacker.Type}
		})
	reg(4, "acceptance-boundaries", "attack-accept, late-accept, and detection rate buckets",
		func(sp *Spec, m map[string]float64) []string {
			if sp.Attacker.Type == AttackKillChain {
				return nil
			}
			t := sp.Attacker.Type
			return []string{
				"accept:" + t + ":" + bucket(m["attack-accept-rate/value"]),
				"late:" + sp.Protocol.Suite + ":" + bucket(m["late-accept-rate/value"]),
				"detect:" + t + ":" + bucket(m["detection-rate/value"]),
			}
		})
	reg(5, "false-positives", "whether the IDS raised alerts before the attack started",
		func(sp *Spec, m map[string]float64) []string {
			if sp.Attacker.Type == AttackKillChain {
				return nil
			}
			if m["false-alerts-per-replicate/value"] > 0 {
				return []string{"fp:some"}
			}
			return []string{"fp:none"}
		})
}
