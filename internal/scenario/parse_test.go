package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestRoundTripDefault pins the structural round-trip guarantee on the
// canonical baseline: Parse(MarshalINI(s)) == s.
func TestRoundTripDefault(t *testing.T) {
	sp := DefaultSpec("baseline")
	got, err := Parse(sp.MarshalINI())
	if err != nil {
		t.Fatalf("Parse(MarshalINI(default)): %v", err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, sp)
	}
}

// TestRoundTripKillChain covers the write-gated [killchain] section.
func TestRoundTripKillChain(t *testing.T) {
	sp := DefaultSpec("kc")
	sp.Attacker.Type = AttackKillChain
	sp.KillChain.Defences = []string{"disable-heapdump", "least-privilege"}
	got, err := Parse(sp.MarshalINI())
	if err != nil {
		t.Fatalf("Parse(MarshalINI(killchain)): %v", err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, sp)
	}
	if !bytes.Contains(sp.MarshalINI(), []byte("[killchain]")) {
		t.Error("killchain spec did not serialize its [killchain] section")
	}
	if bytes.Contains(DefaultSpec("x").MarshalINI(), []byte("[killchain]")) {
		t.Error("non-killchain spec serialized a [killchain] section")
	}
}

// TestParseMinimal: absent keys keep their DefaultSpec values; only the
// name is required.
func TestParseMinimal(t *testing.T) {
	got, err := Parse([]byte("[scenario]\nname = tiny\n"))
	if err != nil {
		t.Fatalf("Parse minimal: %v", err)
	}
	want := DefaultSpec("tiny")
	want.Title = ""
	if !reflect.DeepEqual(got, want) {
		t.Errorf("minimal parse:\n got %+v\nwant %+v", got, want)
	}
}

// TestParseErrors pins that malformed input yields a positioned
// *ParseError naming the right line — never a panic, never a bare error.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  int
		frag  string
	}{
		{"unknown section", "[scenario]\nname = a\n[warp]\n", 3, `unknown section "warp"`},
		{"unknown key", "[scenario]\nname = a\n[world]\nwarp = 9\n", 4, `unknown key "warp"`},
		{"duplicate section", "[scenario]\nname = a\n[world]\n[world]\n", 4, "duplicate section"},
		{"duplicate key", "[scenario]\nname = a\nname = b\n", 3, "duplicate key"},
		{"key before section", "name = a\n", 1, "before any [section]"},
		{"unterminated header", "[scenario\n", 1, "unterminated section header"},
		{"bad int", "[scenario]\nname = a\n[world]\nzones = two\n", 4, "not an integer"},
		{"bad float", "[scenario]\nname = a\n[ids]\ntolerance = hot\n", 4, "not a number"},
		{"bad bool", "[scenario]\nname = a\n[ids]\nenabled = yes\n", 4, "not true/false"},
		{"no equals", "[scenario]\nname = a\njunk line\n", 3, "expected 'key = value'"},
		{"missing name", "[world]\nzones = 2\n", 1, "missing required key"},
		{"empty defence", "[scenario]\nname = a\n[attacker]\ntype = killchain\n[killchain]\ndefences = a,,b\n", 6, "empty defence name"},
		{"killchain wrong type", "[scenario]\nname = a\n[killchain]\ndefences =\n", 1, "[killchain] section requires attacker type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.input))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v, want *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (error: %v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Msg, tc.frag) {
				t.Errorf("error %q does not mention %q", pe.Msg, tc.frag)
			}
		})
	}
}

// TestMarshalCanonical pins the exact serialized form of the baseline,
// so the committed corpus format cannot drift silently.
func TestMarshalCanonical(t *testing.T) {
	want := `# avsec scenario — see docs/SCENARIOS.md for the format.

[scenario]
name = baseline
title = SECOC baseline (no attack)

[world]
zones = 2
endpoints_per_zone = 3
frames = 128
frame_bytes = 16
period_us = 10000

[attacker]
type = none
zone = 0
start = 32
every = 2
offset = 8
rate = 4

[protocol]
suite = SECOC
mac_bits = 0

[ids]
enabled = true
tolerance = 0.5
match_radius = 0.25
noise_std = 0.03

[run]
replicates = 2
`
	if got := string(DefaultSpec("baseline").MarshalINI()); got != want {
		t.Errorf("canonical form drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// FuzzScenarioRoundTrip is the satellite fuzz target: any input either
// fails with a positioned *ParseError (no panic) or parses to a spec
// whose canonical re-serialization parses back identically — and whose
// canonical form is a fixed point of Marshal∘Parse.
func FuzzScenarioRoundTrip(f *testing.F) {
	f.Add(string(DefaultSpec("seed-a").MarshalINI()))
	kc := DefaultSpec("seed-kc")
	kc.Attacker.Type = AttackKillChain
	kc.KillChain.Defences = []string{"secret-scrubbing"}
	f.Add(string(kc.MarshalINI()))
	f.Add("[scenario]\nname = tiny\n")
	f.Add("[scenario]\nname = a\n[ids]\ntolerance = 1e-3\nnoise_std = 0.125\n")
	f.Add("name = early\n")
	f.Add("[scenario\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		sp, err := Parse([]byte(input))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned parse error: %v", err)
			}
			if pe.Line < 1 {
				t.Fatalf("parse error with line %d < 1: %v", pe.Line, pe)
			}
			return
		}
		canon := sp.MarshalINI()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\ninput: %q\ncanonical:\n%s", err, input, canon)
		}
		if !reflect.DeepEqual(again, sp) {
			t.Fatalf("round trip diverged for %q:\n got %+v\nwant %+v", input, again, sp)
		}
		if c2 := again.MarshalINI(); !bytes.Equal(c2, canon) {
			t.Fatalf("canonical form is not a fixed point:\n first %q\nsecond %q", canon, c2)
		}
	})
}
