package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateAllValid is the satellite property: for a spread of
// seeds, every generated spec validates, compiles, carries a unique
// name, and every attack type is represented.
func TestGenerateAllValid(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1234} {
		c, err := Generate(GenConfig{Seed: seed, Target: 24})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Specs) != 24 {
			t.Fatalf("seed %d: %d specs, want 24", seed, len(c.Specs))
		}
		names := make(map[string]bool)
		types := make(map[string]bool)
		for _, sp := range c.Specs {
			if err := sp.Validate(); err != nil {
				t.Errorf("seed %d: %s: %v", seed, sp.Name, err)
			}
			if names[sp.Name] {
				t.Errorf("seed %d: duplicate name %s", seed, sp.Name)
			}
			names[sp.Name] = true
			types[sp.Attacker.Type] = true
			if _, err := Compile(sp); err != nil {
				t.Errorf("seed %d: %s does not compile: %v", seed, sp.Name, err)
			}
		}
		for _, typ := range AttackTypes() {
			if !types[typ] {
				t.Errorf("seed %d: attack type %s missing from corpus", seed, typ)
			}
		}
	}
}

// TestGenerateDeterministic: the same config yields byte-identical
// corpus files on repeated runs — the invariant `avsec gen -check`
// leans on.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 7, Target: 16}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Files(), b.Files()
	if len(fa) != len(fb) {
		t.Fatalf("file counts differ: %d vs %d", len(fa), len(fb))
	}
	for p, da := range fa {
		if !bytes.Equal(da, fb[p]) {
			t.Errorf("file %s differs between identical-config runs", p)
		}
	}
	if len(fa) != 16+2 {
		t.Errorf("corpus has %d files, want 16 scenarios + manifest + index", len(fa))
	}
}

// TestGenerateCoverageGrowth: the search reaches boundary coverage a
// single base spec cannot — both sides of the detection boundary and
// at least one non-trivial kill-chain stage.
func TestGenerateCoverageGrowth(t *testing.T) {
	c, err := Generate(GenConfig{Seed: 7, Target: 48})
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[string]bool, len(c.Keys))
	for _, k := range c.Keys {
		keys[k] = true
	}
	for _, want := range []string{"attack:replay", "attack:killchain", "fp:none"} {
		if !keys[want] {
			t.Errorf("coverage key %q not reached; got %v", want, c.Keys)
		}
	}
	kcStages := 0
	for k := range keys {
		if len(k) > 9 && k[:9] == "kc:stage:" {
			kcStages++
		}
	}
	if kcStages < 2 {
		t.Errorf("only %d distinct kill-chain stages covered, want ≥ 2; keys: %v", kcStages, c.Keys)
	}
}

// TestWriteCheckCorpus round-trips a corpus through disk: a fresh
// write passes CheckCorpus; any byte edit, extra file, or deletion
// fails it.
func TestWriteCheckCorpus(t *testing.T) {
	dir := t.TempDir()
	c, err := Generate(GenConfig{Seed: 3, Target: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCorpus(dir); err != nil {
		t.Fatal(err)
	}
	if err := CheckCorpus(dir); err != nil {
		t.Fatalf("fresh corpus failed check: %v", err)
	}

	// The committed corpus layout must load through the normal
	// scenario loader and compile end to end.
	specs, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir on corpus: %v", err)
	}
	if len(specs) != 12 {
		t.Errorf("LoadDir found %d scenarios, want 12", len(specs))
	}

	// Golden aggregates are allowed to ride along.
	if err := writeFile(t, dir, "GOLDEN.campaign.txt", "golden\n"); err != nil {
		t.Fatal(err)
	}
	if err := CheckCorpus(dir); err != nil {
		t.Fatalf("corpus with golden file failed check: %v", err)
	}

	// A stray file fails.
	if err := writeFile(t, dir, "NOTES.txt", "scribble\n"); err != nil {
		t.Fatal(err)
	}
	if err := CheckCorpus(dir); err == nil {
		t.Error("CheckCorpus accepted a stray file")
	}
	rm(t, dir, "NOTES.txt")

	// A hand-edited scenario fails.
	name := c.Specs[0].Name + "/" + SpecFile
	if err := writeFile(t, dir, name, "# edited\n"); err != nil {
		t.Fatal(err)
	}
	if err := CheckCorpus(dir); err == nil {
		t.Error("CheckCorpus accepted a hand-edited scenario")
	}
}

func writeFile(t *testing.T, dir, rel, content string) error {
	t.Helper()
	return os.WriteFile(filepath.Join(dir, filepath.FromSlash(rel)), []byte(content), 0o644)
}

func rm(t *testing.T, dir, rel string) {
	t.Helper()
	if err := os.Remove(filepath.Join(dir, filepath.FromSlash(rel))); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateStats logs the corpus shape at the committed
// configuration so reviewers can see the coverage account without
// running `avsec gen` (enable with -v).
func TestGenerateStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation; skipped in -short")
	}
	c, err := Generate(GenConfig{Seed: 7, Target: 112})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("specs=%d coverage_keys=%d iterations=%d", len(c.Specs), len(c.Keys), c.Iters)
	for _, k := range c.Keys {
		t.Logf("  %s", k)
	}
}
