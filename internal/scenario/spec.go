// Package scenario is the declarative layer over the experiment
// harness: a Spec describes one simulated attack scenario — world
// topology, attacker placement and type, the protecting Table I suite
// from the secchan/suites registry, IDS thresholds, replicate counts —
// in a per-folder scenario.ini format (one folder per scenario, in the
// SysImpactCV style), and the interpreter in compile.go turns it into a
// runnable core.Experiment with full sim.Metric/trace output. On top
// of that, generate.go grows a corpus of scenarios by coverage-guided
// mutation (kill-chain stages reached, detection/non-detection
// boundaries, replay-window edges).
//
// The byte-determinism contract of the repo applies to every scenario:
// the same spec run at the same seed produces identical reports,
// metrics, and traces at any worker-pool size, and the same generator
// seed reproduces the committed corpus byte for byte (`avsec gen
// -check` in CI).
package scenario

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"autosec/internal/killchain"
	"autosec/internal/secchan/suites"
)

// Attack types a scenario can stage. All but AttackKillChain drive
// in-vehicle traffic through the protecting suite with IDS taps; the
// kill chain runs the Fig. 8 telemetry-cloud chain instead.
const (
	AttackNone       = "none"       // clean traffic baseline
	AttackReplay     = "replay"     // re-inject a captured protected frame
	AttackForge      = "forge"      // MITM-tamper frames, guessing the (truncated) MAC
	AttackMasquerade = "masquerade" // inject crafted frames under the victim's CAN id
	AttackFlood      = "flood"      // burst-inject frames each period
	AttackDelay      = "delay"      // withhold frames, release them offset periods late
	AttackKillChain  = "killchain"  // Fig. 8 cloud kill chain vs a defence subset
)

// Spec is one declarative scenario. The zero value is not valid;
// construct with DefaultSpec and override fields (or parse a
// scenario.ini).
type Spec struct {
	// Name is the scenario id — also its folder name under scenarios/
	// and its experiment id prefix-free form (lowercase, digits, '-').
	Name string
	// Title is the one-line human description shown by `avsec list`.
	Title string

	World    World
	Attacker Attacker
	Protocol Protocol
	IDS      IDS
	// KillChain configures the AttackKillChain type and must be empty
	// for every other attacker type.
	KillChain KillChain
	Run       RunCfg
}

// World is the simulated topology and traffic shape.
type World struct {
	// Zones is the number of IVN zones (1–6).
	Zones int
	// EndpointsPerZone is how many ECUs emit background traffic per
	// zone (1–8). The victim stream is zone 0, endpoint 0.
	EndpointsPerZone int
	// Frames is how many periods the scenario simulates (32–1024).
	Frames int
	// FrameBytes is the protected payload size (1–32).
	FrameBytes int
	// PeriodUS is the victim stream's transmission period in
	// microseconds (100–100000).
	PeriodUS int
}

// Attacker is the adversary placement and behaviour.
type Attacker struct {
	// Type is one of AttackTypes().
	Type string
	// Zone places the attacker's physical node (0 ≤ Zone < Zones).
	Zone int
	// Start is the first attacked period (detectors always finish
	// their training window first; see compile.go).
	Start int
	// Every attacks one period in Every (1–64).
	Every int
	// Offset is the replay capture age / delay release distance in
	// periods (1–512) — the knob that probes replay-window edges.
	Offset int
	// Rate is the flood burst size per attacked period (1–16).
	Rate int
}

// Protocol selects the protecting secure-channel suite.
type Protocol struct {
	// Suite is a name from suites.Registry() (e.g. "SECOC", "MACsec").
	Suite string
	// MACBits overrides the SECOC MAC truncation (0 = profile default;
	// multiple of 8, 8–128). Ignored by fixed-tag suites — the knob
	// that probes forgery-acceptance boundaries.
	MACBits int
}

// IDS configures the detection layer observing the bus.
type IDS struct {
	// Enabled turns both detectors on.
	Enabled bool
	// Tolerance is the interval detector's anomaly fraction in (0, 1):
	// an arrival below Tolerance × learned period is flagged.
	Tolerance float64
	// MatchRadius is the sender-identifier fingerprint acceptance
	// radius in (0, 2].
	MatchRadius float64
	// NoiseStd is the analog measurement noise in [0, 0.3].
	NoiseStd float64
}

// KillChain parameterises the AttackKillChain scenario type.
type KillChain struct {
	// Defences names the deployed killchain defences (killchain
	// .ParseDefence names), deduplicated, in deployment order.
	Defences []string
}

// RunCfg is the statistical envelope.
type RunCfg struct {
	// Replicates is the Monte-Carlo replicate count (1–16); replicates
	// fan out over the run's worker pool deterministically.
	Replicates int
}

// DefaultSpec returns a valid baseline scenario: a clean two-zone
// world protected by SECOC with both detectors on.
func DefaultSpec(name string) *Spec {
	return &Spec{
		Name:  name,
		Title: "SECOC baseline (no attack)",
		World: World{
			Zones:            2,
			EndpointsPerZone: 3,
			Frames:           128,
			FrameBytes:       16,
			PeriodUS:         10000,
		},
		Attacker: Attacker{
			Type:   AttackNone,
			Zone:   0,
			Start:  32,
			Every:  2,
			Offset: 8,
			Rate:   4,
		},
		Protocol: Protocol{Suite: "SECOC", MACBits: 0},
		IDS:      IDS{Enabled: true, Tolerance: 0.5, MatchRadius: 0.25, NoiseStd: 0.03},
		Run:      RunCfg{Replicates: 2},
	}
}

// nameRe is folder-name-safe: scenarios live in scenarios/<Name>/.
var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// Validate checks every field against its documented range. The
// returned error names the offending section and key, so CLI users see
// exactly which scenario.ini line to fix.
func (s *Spec) Validate() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: [scenario] name %q must match %s", s.Name, nameRe)
	}
	if s.Title != strings.TrimSpace(s.Title) || strings.ContainsAny(s.Title, "\n\r") {
		return fmt.Errorf("scenario: [scenario] title %q must be a single trimmed line", s.Title)
	}
	if err := intIn("world", "zones", s.World.Zones, 1, 6); err != nil {
		return err
	}
	if err := intIn("world", "endpoints_per_zone", s.World.EndpointsPerZone, 1, 8); err != nil {
		return err
	}
	if err := intIn("world", "frames", s.World.Frames, 32, 1024); err != nil {
		return err
	}
	if err := intIn("world", "frame_bytes", s.World.FrameBytes, 1, 32); err != nil {
		return err
	}
	if err := intIn("world", "period_us", s.World.PeriodUS, 100, 100000); err != nil {
		return err
	}

	if _, err := Attacks.Lookup(s.Attacker.Type); err != nil {
		return fmt.Errorf("scenario: [attacker] %w", err)
	}
	if err := intIn("attacker", "zone", s.Attacker.Zone, 0, s.World.Zones-1); err != nil {
		return err
	}
	if err := intIn("attacker", "start", s.Attacker.Start, 0, s.World.Frames-1); err != nil {
		return err
	}
	if err := intIn("attacker", "every", s.Attacker.Every, 1, 64); err != nil {
		return err
	}
	if err := intIn("attacker", "offset", s.Attacker.Offset, 1, 512); err != nil {
		return err
	}
	if err := intIn("attacker", "rate", s.Attacker.Rate, 1, 16); err != nil {
		return err
	}

	if _, err := suites.Lookup(s.Protocol.Suite); err != nil {
		return fmt.Errorf("scenario: [protocol] %w", err)
	}
	if mb := s.Protocol.MACBits; mb != 0 && (mb < 8 || mb > 128 || mb%8 != 0) {
		return fmt.Errorf("scenario: [protocol] mac_bits %d must be 0 or a multiple of 8 in [8, 128]", mb)
	}

	if !inRange(s.IDS.Tolerance, 0, 1, false) {
		return fmt.Errorf("scenario: [ids] tolerance %v outside (0, 1)", s.IDS.Tolerance)
	}
	if !inRange(s.IDS.MatchRadius, 0, 2, true) {
		return fmt.Errorf("scenario: [ids] match_radius %v outside (0, 2]", s.IDS.MatchRadius)
	}
	if math.IsNaN(s.IDS.NoiseStd) || s.IDS.NoiseStd < 0 || s.IDS.NoiseStd > 0.3 {
		return fmt.Errorf("scenario: [ids] noise_std %v outside [0, 0.3]", s.IDS.NoiseStd)
	}

	if s.Attacker.Type == AttackKillChain {
		seen := make(map[string]bool)
		for _, name := range s.KillChain.Defences {
			if _, err := killchain.Extensions.Lookup(name); err != nil {
				return fmt.Errorf("scenario: [killchain] %w", err)
			}
			if seen[name] {
				return fmt.Errorf("scenario: [killchain] defence %q listed twice", name)
			}
			seen[name] = true
		}
	} else if len(s.KillChain.Defences) > 0 {
		return fmt.Errorf("scenario: [killchain] defences require attacker type %q, not %q", AttackKillChain, s.Attacker.Type)
	}

	if err := intIn("run", "replicates", s.Run.Replicates, 1, 16); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the spec (mutation fodder for the
// generator).
func (s *Spec) Clone() *Spec {
	c := *s
	c.KillChain.Defences = append([]string(nil), s.KillChain.Defences...)
	return &c
}

func intIn(section, key string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("scenario: [%s] %s %d outside [%d, %d]", section, key, v, lo, hi)
	}
	return nil
}

// inRange checks lo < v < hi (or ≤ hi when incHi); NaN always fails.
func inRange(v, lo, hi float64, incHi bool) bool {
	if math.IsNaN(v) {
		return false
	}
	if incHi {
		return v > lo && v <= hi
	}
	return v > lo && v < hi
}
