package ivn

import (
	"fmt"

	"autosec/internal/canbus"
	"autosec/internal/ethernet"
	"autosec/internal/macsec"
	"autosec/internal/secoc"
	"autosec/internal/sim"
	"autosec/internal/vcrypto"
)

// This file runs the *whole* Fig. 3 vehicle at once — both zones live on
// one kernel with concurrent flows, including a cross-zone flow routed
// through the central computer — rather than one scenario in isolation.
// It is the integration fixture for the network layer: CAN zone with
// SECOC (the S1 stack), 10BASE-T1S zone with end-to-end MACsec (the S2
// stack), and attackers on both buses at the same time.

// FlowStats summarizes one application flow.
type FlowStats struct {
	Name      string
	Sent      int
	Delivered int
	P50Us     float64
}

// VehicleResult is the combined run outcome.
type VehicleResult struct {
	Flows []FlowStats
	// Attack outcomes across both zones.
	ForgeriesAttempted, ForgeriesAccepted int
	WireBytes                             int64
}

// flowState tracks one flow's bookkeeping.
type flowState struct {
	name    string
	tracker *flowTracker
	sent    int
}

func newFlow(name string) *flowState {
	return &flowState{name: name, tracker: newFlowTracker()}
}

func (f *flowState) stats() FlowStats {
	return FlowStats{Name: f.name, Sent: f.sent, Delivered: f.tracker.count(), P50Us: f.tracker.summary().P50}
}

// RunFullVehicle executes the combined topology for cfg.Messages
// messages per flow.
func RunFullVehicle(cfg Config) (*VehicleResult, error) {
	k := cfg.newKernel()
	res := &VehicleResult{}

	flowCAN := newFlow("ecu1→cc (SECOC+MACsec)")
	flowT1S := newFlow("ep1→cc (MACsec e2e)")
	flowCross := newFlow("ecu2→ep2 (SECOC e2e via CC)")

	// --- keys ---
	secocCC, err := secoc.NewSender(secoc.DefaultConfig(0x0100), secocKey)
	if err != nil {
		return nil, err
	}
	recvCC, err := secoc.NewReceiver(secoc.DefaultConfig(0x0100), secocKey)
	if err != nil {
		return nil, err
	}
	crossKey := vcrypto.DeriveKey(rootKey, "secoc", "ecu2-ep2", 16)
	crossSend, err := secoc.NewSender(secoc.DefaultConfig(0x0200), crossKey)
	if err != nil {
		return nil, err
	}
	crossRecv, err := secoc.NewReceiver(secoc.DefaultConfig(0x0200), crossKey)
	if err != nil {
		return nil, err
	}
	forger, err := secoc.NewSender(secoc.DefaultConfig(0x0100), wrongKey)
	if err != nil {
		return nil, err
	}

	sciZCL := macsec.SCIFromMAC(zcUpMAC, 1)
	sciCC := macsec.SCIFromMAC(ccMAC, 1)
	sciEP := macsec.SCIFromMAC(epMAC, 1)
	zclSecY, err := macsec.NewSecY(macsec.Confidential, sciZCL, hopSAKcc, 0)
	if err != nil {
		return nil, err
	}
	ccHopSecY, err := macsec.NewSecY(macsec.Confidential, sciCC, hopSAKcc, 0)
	if err != nil {
		return nil, err
	}
	if err := ccHopSecY.AddPeer(sciZCL, hopSAKcc, 0); err != nil {
		return nil, err
	}
	epSecY, err := macsec.NewSecY(macsec.Confidential, sciEP, e2eSAK, 0)
	if err != nil {
		return nil, err
	}
	ccE2ESecY, err := macsec.NewSecY(macsec.Confidential, sciCC, e2eSAK, 0)
	if err != nil {
		return nil, err
	}
	if err := ccE2ESecY.AddPeer(sciEP, e2eSAK, 0); err != nil {
		return nil, err
	}
	attSecY, err := macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(attMAC, 1), wrongSAK, 0)
	if err != nil {
		return nil, err
	}

	// --- topology: zone L (CAN) ---
	busL := canbus.NewBus("zone-l", canRates, k)

	// --- topology: zone R (10BASE-T1S) ---
	segR := ethernet.NewMultidrop("zone-r", k)

	// --- central computer and its two links ---
	var linkL, linkR *ethernet.Link
	var zcRDownID int

	cc := &ethernet.PortFunc{MAC: ccMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		switch f.EtherType {
		case ethernet.EtherTypeMACsec:
			// Try the zone-L hop channel first, then the e2e channel.
			if inner, err := ccHopSecY.Verify(f); err == nil {
				cf, err := canbus.Unmarshal(inner.Payload)
				if err != nil {
					return
				}
				switch cf.ID {
				case 0x100: // ecu1 → CC
					payload, err := recvCC.Verify(cf.Payload)
					if err != nil {
						return
					}
					if seq, ok := seqOf(payload); ok {
						if seq >= attackSeqBase {
							res.ForgeriesAccepted++
							return
						}
						flowCAN.tracker.delivered(seq, k.Now(), len(payload))
					}
				case 0x200: // ecu2 → ep2, routed onward into zone R
					fwd := &ethernet.Frame{Dst: epMAC, Src: ccMAC, EtherType: ethernet.EtherTypeApp, Payload: cf.Payload}
					_ = linkR.Send(ccMAC, fwd)
				}
				return
			}
			if inner, err := ccE2ESecY.Verify(f); err == nil {
				if seq, ok := seqOf(inner.Payload); ok {
					if seq >= attackSeqBase {
						res.ForgeriesAccepted++
						return
					}
					flowT1S.tracker.delivered(seq, k.Now(), len(inner.Payload))
				}
			}
		}
	}}

	zcLUp := &ethernet.PortFunc{MAC: zcUpMAC}
	linkL = ethernet.NewLink("zcl-cc", backbone, k, zcLUp, cc)

	// Zone controller L: CAN → MACsec'd Ethernet uplink.
	busL.Attach(&canbus.NodeFunc{ID: "zc-l", Fn: func(k *sim.Kernel, f *canbus.Frame) {
		ef := &ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeApp, Payload: f.Marshal()}
		sec, err := zclSecY.Protect(ef)
		if err != nil {
			return
		}
		_ = linkL.Send(zcUpMAC, sec)
	}})
	busL.Attach(&canbus.NodeFunc{ID: "ecu-1"})
	busL.Attach(&canbus.NodeFunc{ID: "ecu-2"})
	busL.Attach(&canbus.NodeFunc{ID: "attacker-l"})

	// Zone controller R bridges the CC link and the multidrop.
	zcRUp := &ethernet.PortFunc{MAC: zcUpMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		// CC → zone R: forward onto the multidrop.
		_ = segR.Send(zcRDownID, f)
	}}
	linkR = ethernet.NewLink("zcr-cc", backbone, k, zcRUp, cc)
	zcRDown := &ethernet.PortFunc{MAC: zcMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		// Zone R → CC: forward ciphertext unchanged (e2e).
		if f.Dst == ccMAC {
			_ = linkR.Send(zcUpMAC, f)
		}
	}}
	zcRDownID = segR.Attach(zcRDown)

	// Endpoint ep2 receives the routed cross-zone flow.
	ep2 := &ethernet.PortFunc{MAC: epMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		if f.EtherType != ethernet.EtherTypeApp || f.Dst != epMAC {
			return
		}
		payload, err := crossRecv.Verify(f.Payload)
		if err != nil {
			return
		}
		if seq, ok := seqOf(payload); ok {
			if seq >= attackSeqBase {
				res.ForgeriesAccepted++
				return
			}
			flowCross.tracker.delivered(seq, k.Now(), len(payload))
		}
	}}
	epID := segR.Attach(ep2)
	attRID := segR.Attach(&ethernet.PortFunc{MAC: attMAC})

	// --- workload ---
	period := sim.Time(cfg.PeriodUs) * sim.Microsecond
	for i := 0; i < cfg.Messages; i++ {
		seq := uint32(i + 1)
		// Flow 1: ecu1 → CC over CAN (SECOC).
		k.Schedule(period*sim.Time(i+1), "ecu1-send", func(k *sim.Kernel) {
			pdu, err := secocCC.Protect(payloadWithSeq(seq, cfg.PayloadBytes))
			if err != nil {
				return
			}
			flowCAN.sent++
			flowCAN.tracker.sent(seq, k.Now())
			_ = busL.Send("ecu-1", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: pdu})
		})
		// Flow 2: ep1 → CC over T1S (MACsec e2e). ep1 shares the epMAC
		// port for simplicity; a separate flow tracker keeps it honest.
		k.Schedule(period*sim.Time(i+1)+50*sim.Microsecond, "ep1-send", func(k *sim.Kernel) {
			f := &ethernet.Frame{Dst: ccMAC, Src: epMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := epSecY.Protect(f)
			if err != nil {
				return
			}
			flowT1S.sent++
			flowT1S.tracker.sent(seq, k.Now())
			_ = segR.Send(epID, sec)
		})
		// Flow 3: ecu2 → ep2 cross-zone (SECOC e2e, routed by CC).
		k.Schedule(period*sim.Time(i+1)+100*sim.Microsecond, "ecu2-send", func(k *sim.Kernel) {
			pdu, err := crossSend.Protect(payloadWithSeq(seq, cfg.PayloadBytes))
			if err != nil {
				return
			}
			flowCross.sent++
			flowCross.tracker.sent(seq, k.Now())
			_ = busL.Send("ecu-2", &canbus.Frame{ID: 0x200, Format: canbus.Classic, Payload: pdu})
		})
	}
	// Attacks on both zones concurrently.
	for i := 0; i < cfg.Forgeries; i++ {
		seq := attackSeqBase + uint32(i)
		k.Schedule(period*sim.Time(i+1)+30*sim.Microsecond, "forge-can", func(k *sim.Kernel) {
			pdu, err := forger.Protect(payloadWithSeq(seq, cfg.PayloadBytes))
			if err != nil {
				return
			}
			res.ForgeriesAttempted++
			_ = busL.Send("attacker-l", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: pdu})
		})
		k.Schedule(period*sim.Time(i+1)+60*sim.Microsecond, "forge-t1s", func(k *sim.Kernel) {
			f := &ethernet.Frame{Dst: ccMAC, Src: attMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := attSecY.Protect(f)
			if err != nil {
				return
			}
			res.ForgeriesAttempted++
			_ = segR.Send(attRID, sec)
		})
	}

	if err := k.Run(0); err != nil {
		return nil, err
	}
	res.Flows = []FlowStats{flowCAN.stats(), flowT1S.stats(), flowCross.stats()}
	res.WireBytes = wireBytes(k)
	return res, nil
}

// String renders the combined result.
func (r *VehicleResult) String() string {
	out := ""
	for _, f := range r.Flows {
		out += fmt.Sprintf("%-28s %d/%d delivered, p50 %.1f µs\n", f.Name, f.Delivered, f.Sent, f.P50Us)
	}
	out += fmt.Sprintf("forgeries accepted: %d/%d; total wire bytes: %d\n",
		r.ForgeriesAccepted, r.ForgeriesAttempted, r.WireBytes)
	return out
}
