package ivn

import (
	"bytes"
	"fmt"

	"autosec/internal/ethernet"
	"autosec/internal/macsec"
	"autosec/internal/secoc"
)

// This file answers the question behind the paper's S1/S2 key-placement
// discussion with an executable result: *what can an attacker who owns
// the zone controller actually do* under each scenario's key layout?
// Two capabilities are probed with the real protocol implementations:
//
//   - read: can the ZC recover application plaintext from a message in
//     flight?
//   - forge: can the ZC fabricate an application message the central
//     computer accepts as authentic?

// CompromiseResult reports the probe outcomes for one scenario.
type CompromiseResult struct {
	Scenario         string
	KeysAtZC         int
	PlaintextVisible bool
	ForgeryAccepted  bool
}

func (r CompromiseResult) String() string {
	return fmt.Sprintf("%-8s keysZC=%d plaintext=%v forgery=%v",
		r.Scenario, r.KeysAtZC, r.PlaintextVisible, r.ForgeryAccepted)
}

// RunZCCompromise probes all scenarios with a compromised zone
// controller. The secret application payload is marker; detection is by
// substring (the payload travels verbatim inside the protocol stacks).
func RunZCCompromise() ([]CompromiseResult, error) {
	marker := []byte("SECRET-steering-setpoint-42")
	var out []CompromiseResult

	// --- S1: SECOC end-to-end, MACsec on the hop; ZC holds the hop SAK. ---
	s1, err := probeS1(marker)
	if err != nil {
		return nil, err
	}
	out = append(out, s1)

	// --- S2 point-to-point: ZC holds both hop SAKs. ---
	s2p, err := probeS2P2P(marker)
	if err != nil {
		return nil, err
	}
	out = append(out, s2p)

	// --- S2 end-to-end / S3: ZC holds nothing. ---
	for _, name := range []string{"S2-e2e", "S3"} {
		e2e, err := probeE2E(name, marker)
		if err != nil {
			return nil, err
		}
		out = append(out, e2e)
	}
	return out, nil
}

func probeS1(marker []byte) (CompromiseResult, error) {
	res := CompromiseResult{Scenario: "S1", KeysAtZC: 2}
	cfg := secoc.DefaultConfig(0x0100)
	ecu, err := secoc.NewSender(cfg, secocKey)
	if err != nil {
		return res, err
	}
	cc, err := secoc.NewReceiver(cfg, secocKey)
	if err != nil {
		return res, err
	}
	pdu, err := ecu.Protect(marker)
	if err != nil {
		return res, err
	}
	// The ZC legitimately holds the hop MACsec SAK; after unwrapping the
	// hop protection it sees the SECOC PDU. SECOC is authentication-
	// only, so the payload is right there.
	res.PlaintextVisible = bytes.Contains(pdu, marker)

	// Forgery: the ZC can wrap anything in valid hop MACsec, but the
	// inner SECOC MAC needs the e2e key the ZC does not have. Try the
	// best it can do: splice a forged payload into a captured PDU.
	forged := append([]byte(nil), pdu...)
	copy(forged, []byte("EVIL-steering-setpoint-99"))
	if _, err := cc.Verify(forged); err == nil {
		res.ForgeryAccepted = true
	}
	// Consume the original legitimately so the receiver state advances.
	if _, err := cc.Verify(pdu); err != nil {
		return res, fmt.Errorf("ivn: S1 probe: legitimate PDU rejected: %w", err)
	}
	return res, nil
}

func probeS2P2P(marker []byte) (CompromiseResult, error) {
	res := CompromiseResult{Scenario: "S2-p2p", KeysAtZC: 2}
	sciEP := macsec.SCIFromMAC(epMAC, 1)
	sciZC := macsec.SCIFromMAC(zcUpMAC, 1)

	ep, err := macsec.NewSecY(macsec.Confidential, sciEP, hopSAKzc, 0)
	if err != nil {
		return res, err
	}
	// The compromised ZC: it owns both hop channels by design.
	zcDown, err := macsec.NewSecY(macsec.Confidential, sciZC, hopSAKzc, 0)
	if err != nil {
		return res, err
	}
	if err := zcDown.AddPeer(sciEP, hopSAKzc, 0); err != nil {
		return res, err
	}
	zcUp, err := macsec.NewSecY(macsec.Confidential, sciZC, hopSAKcc, 0)
	if err != nil {
		return res, err
	}
	cc, err := macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(ccMAC, 1), hopSAKcc, 0)
	if err != nil {
		return res, err
	}
	if err := cc.AddPeer(sciZC, hopSAKcc, 0); err != nil {
		return res, err
	}

	sec, err := ep.Protect(&ethernet.Frame{Dst: ccMAC, Src: epMAC, EtherType: ethernet.EtherTypeApp, Payload: marker})
	if err != nil {
		return res, err
	}
	inner, err := zcDown.Verify(sec)
	if err == nil && bytes.Contains(inner.Payload, marker) {
		res.PlaintextVisible = true
	}
	// Forgery: the ZC protects its own fabrication with the uplink SAK.
	forged, err := zcUp.Protect(&ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeApp, Payload: []byte("EVIL-brake-command")})
	if err != nil {
		return res, err
	}
	if _, err := cc.Verify(forged); err == nil {
		res.ForgeryAccepted = true
	}
	return res, nil
}

func probeE2E(name string, marker []byte) (CompromiseResult, error) {
	res := CompromiseResult{Scenario: name, KeysAtZC: 0}
	sciEP := macsec.SCIFromMAC(epMAC, 1)
	ep, err := macsec.NewSecY(macsec.Confidential, sciEP, e2eSAK, 0)
	if err != nil {
		return res, err
	}
	cc, err := macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(ccMAC, 1), e2eSAK, 0)
	if err != nil {
		return res, err
	}
	if err := cc.AddPeer(sciEP, e2eSAK, 0); err != nil {
		return res, err
	}
	sec, err := ep.Protect(&ethernet.Frame{Dst: ccMAC, Src: epMAC, EtherType: ethernet.EtherTypeApp, Payload: marker})
	if err != nil {
		return res, err
	}
	// The ZC has no key: it sees only ciphertext.
	res.PlaintextVisible = bytes.Contains(sec.Payload, marker)
	// Forgery with a key the ZC could plausibly have (the wrong one).
	zcForge, err := macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(zcUpMAC, 1), wrongSAK, 0)
	if err != nil {
		return res, err
	}
	forged, err := zcForge.Protect(&ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeApp, Payload: []byte("EVIL")})
	if err != nil {
		return res, err
	}
	if _, err := cc.Verify(forged); err == nil {
		res.ForgeryAccepted = true
	}
	return res, nil
}
