// Package ivn composes the in-vehicle network of the paper's Fig. 3 —
// a central computing unit, zone controllers, and endpoints attached
// via CAN or 10BASE-T1S — and implements the three security-stack
// scenarios of §III-A:
//
//	S1 (Fig. 4): AUTOSAR SECOC end-to-end over CAN, MACsec on the
//	    zone-controller↔central-computing Ethernet hop.
//	S2 (Fig. 5): homogeneous Ethernet; MACsec either end-to-end or
//	    point-to-point per hop.
//	S3 (Fig. 6): CANAL tunnels Ethernet+MACsec end-to-end across CAN XL,
//	    with MKA key agreement.
//
// Each scenario runner builds the topology on a fresh kernel, drives a
// periodic sensor flow from an endpoint to the central computer, lets a
// compromised node attempt forgery and replay, and reports latency,
// wire overhead, key storage, and crypto-processing load — the
// quantities behind the trade-offs the paper describes qualitatively.
//
// Exercised by experiments fig3-fig6, exp-vehicle, exp-zc, and ablate-
// scale.
package ivn

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/canbus"
	"autosec/internal/ethernet"
	"autosec/internal/sim"
	"autosec/internal/vcrypto"
)

// Config drives a scenario run.
type Config struct {
	Seed     int64
	Messages int   // legitimate messages end-to-end
	PeriodUs int64 // sending period
	// PayloadBytes is the application payload size (clamped to what the
	// scenario's lowest-layer frame can carry).
	PayloadBytes int
	// Forgeries is the number of attacker injection attempts.
	Forgeries int
	// Replays is the number of attacker replay attempts (captured
	// legitimate traffic re-sent).
	Replays int
	// Tracer, when non-nil, is attached to the scenario's simulation
	// kernel so scheduled/executed events and metric samples land in
	// the run's structured trace.
	Tracer sim.Tracer
}

// newKernel builds the scenario kernel, attaching the configured tracer.
func (cfg Config) newKernel() *sim.Kernel {
	k := sim.NewKernel(cfg.Seed)
	if cfg.Tracer != nil {
		k.SetTracer(cfg.Tracer)
	}
	return k
}

// DefaultConfig returns the workload used by the Fig. 4–6 experiments.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, Messages: 200, PeriodUs: 500, PayloadBytes: 4, Forgeries: 50, Replays: 50}
}

// Result summarizes one scenario run.
type Result struct {
	Scenario  string
	Delivered int
	Sent      int

	LatencyUs sim.Summary

	// WireBytes is the total bytes that crossed any medium; AppBytes is
	// the useful application payload delivered. OverheadRatio is
	// wire/app.
	WireBytes     int64
	AppBytes      int64
	OverheadRatio float64

	// KeysAtZC counts long-term/session keys the zone controller must
	// store; CryptoOpsAtZC counts per-message protect/verify operations
	// it performs (the "security processing" burden of S1/S2-p2p).
	KeysAtZC      int
	CryptoOpsAtZC int

	ForgeriesAttempted int
	ForgeriesAccepted  int
	ReplaysAttempted   int
	ReplaysAccepted    int
}

// String renders a compact report line.
func (r Result) String() string {
	return fmt.Sprintf("%-12s delivered=%d/%d lat(p50)=%.1fµs overhead=%.2fx keysZC=%d opsZC=%d forged=%d/%d replayed=%d/%d",
		r.Scenario, r.Delivered, r.Sent, r.LatencyUs.P50, r.OverheadRatio,
		r.KeysAtZC, r.CryptoOpsAtZC,
		r.ForgeriesAccepted, r.ForgeriesAttempted, r.ReplaysAccepted, r.ReplaysAttempted)
}

// common keys for the simulated vehicle; a real vehicle provisions these
// per pairing, here they are fixture constants derived from one root.
var (
	rootKey   = []byte("vehicle-root-provisioning-secret")
	secocKey  = vcrypto.DeriveKey(rootKey, "secoc", "ecu1-cc", 16)
	linkCAK   = vcrypto.DeriveKey(rootKey, "mka-cak", "backbone", 16)
	wrongKey  = vcrypto.DeriveKey(rootKey, "attacker", "guess", 16)
	e2eSAK    = vcrypto.DeriveKey(rootKey, "macsec-sak", "ep-cc", 16)
	hopSAKzc  = vcrypto.DeriveKey(rootKey, "macsec-sak", "ep-zc", 16)
	hopSAKcc  = vcrypto.DeriveKey(rootKey, "macsec-sak", "zc-cc", 16)
	wrongSAK  = vcrypto.DeriveKey(rootKey, "attacker-sak", "guess", 16)
	ecuMAC    = ethernet.MAC{0x02, 0, 0, 0, 0, 0x10}
	epMAC     = ethernet.MAC{0x02, 0, 0, 0, 0, 0x20}
	attMAC    = ethernet.MAC{0x02, 0, 0, 0, 0, 0x66}
	zcMAC     = ethernet.MAC{0x02, 0, 0, 0, 0, 0x01}
	zcUpMAC   = ethernet.MAC{0x02, 0, 0, 0, 0, 0x02}
	ccMAC     = ethernet.MAC{0x02, 0, 0, 0, 0, 0xCC}
	backbone  = int64(1_000_000_000) // 1 Gbit/s ZC↔CC links
	canRates  = canbus.DefaultBitRates()
	xlRates   = canbus.BitRates{NominalBps: 500_000, DataBps: 10_000_000}
	seqHeader = 4 // every app payload starts with a uint32 sequence
)

// flowTracker correlates sent sequence numbers with receive times.
type flowTracker struct {
	sendTime map[uint32]sim.Time
	received map[uint32]bool
	lat      []float64
	appBytes int64
}

func newFlowTracker() *flowTracker {
	return &flowTracker{sendTime: make(map[uint32]sim.Time), received: make(map[uint32]bool)}
}

func (t *flowTracker) sent(seq uint32, at sim.Time) { t.sendTime[seq] = at }

func (t *flowTracker) delivered(seq uint32, at sim.Time, payloadLen int) {
	if t.received[seq] {
		return
	}
	if sent, ok := t.sendTime[seq]; ok {
		t.received[seq] = true
		t.lat = append(t.lat, float64(at-sent)/float64(sim.Microsecond))
		t.appBytes += int64(payloadLen)
	}
}

func (t *flowTracker) count() int { return len(t.lat) }

func (t *flowTracker) summary() sim.Summary {
	m := sim.NewMetrics()
	for _, v := range t.lat {
		m.Observe("lat", v)
	}
	return m.Summarize("lat")
}

func payloadWithSeq(seq uint32, size int) []byte {
	if size < seqHeader {
		size = seqHeader
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint32(p, seq)
	return p
}

func seqOf(payload []byte) (uint32, bool) {
	if len(payload) < seqHeader {
		return 0, false
	}
	return binary.BigEndian.Uint32(payload), true
}

// wireBytes sums every medium's byte counters from the kernel metrics.
func wireBytes(k *sim.Kernel) int64 {
	var total int64
	m := k.Metrics()
	for _, name := range m.CounterNames() {
		if hasSuffix(name, ".bytes") {
			total += m.Counter(name)
		}
		if hasSuffix(name, ".bits") {
			total += m.Counter(name) / 8
		}
	}
	return total
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

func finalize(r *Result, k *sim.Kernel, t *flowTracker) {
	r.Delivered = t.count()
	r.LatencyUs = t.summary()
	r.WireBytes = wireBytes(k)
	r.AppBytes = t.appBytes
	if r.AppBytes > 0 {
		r.OverheadRatio = float64(r.WireBytes) / float64(r.AppBytes)
	}
}
