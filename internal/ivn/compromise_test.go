package ivn

import (
	"testing"
)

func TestZCCompromiseOutcomes(t *testing.T) {
	results, err := RunZCCompromise()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompromiseResult{}
	for _, r := range results {
		byName[r.Scenario] = r
	}

	// S1: SECOC is auth-only → payload readable at the ZC; the e2e MAC
	// stops forgery.
	s1 := byName["S1"]
	if !s1.PlaintextVisible {
		t.Error("S1: SECOC is authentication-only; the ZC must see plaintext")
	}
	if s1.ForgeryAccepted {
		t.Error("S1: ZC forged an end-to-end authenticated payload")
	}

	// S2-p2p: the ZC owns both hops → total compromise.
	s2p := byName["S2-p2p"]
	if !s2p.PlaintextVisible || !s2p.ForgeryAccepted {
		t.Errorf("S2-p2p compromised ZC should read AND forge: %+v", s2p)
	}

	// e2e designs: the ZC can do neither.
	for _, name := range []string{"S2-e2e", "S3"} {
		r := byName[name]
		if r.PlaintextVisible {
			t.Errorf("%s: plaintext visible to a keyless ZC", name)
		}
		if r.ForgeryAccepted {
			t.Errorf("%s: forgery accepted from a keyless ZC", name)
		}
		if r.KeysAtZC != 0 {
			t.Errorf("%s: keys at ZC = %d", name, r.KeysAtZC)
		}
	}
}

func TestCompromiseResultString(t *testing.T) {
	results, err := RunZCCompromise()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.String() == "" {
			t.Error("empty report line")
		}
	}
}
