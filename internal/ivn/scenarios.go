package ivn

import (
	"fmt"

	"autosec/internal/canal"
	"autosec/internal/canbus"
	"autosec/internal/ethernet"
	"autosec/internal/macsec"
	"autosec/internal/secoc"
	"autosec/internal/sim"
)

// attackSeqBase marks attacker-originated sequence numbers so the
// central computer can classify what its security stack let through.
const attackSeqBase = uint32(1) << 31

// RunBaseline builds the Fig. 3 topology with *no* security stack: raw
// CAN into a zone-controller gateway, raw Ethernet to the central
// computer. Every masquerade and replay succeeds — the starting point
// the paper's Table I protocols exist to fix.
func RunBaseline(cfg Config) (Result, error) {
	k := cfg.newKernel()
	res := Result{Scenario: "baseline", Sent: cfg.Messages}
	tracker := newFlowTracker()

	bus := canbus.NewBus("zone-l", canRates, k)

	var zcToCC *ethernet.Link
	cc := &ethernet.PortFunc{MAC: ccMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		cf, err := canbus.Unmarshal(f.Payload)
		if err != nil {
			return
		}
		seq, ok := seqOf(cf.Payload)
		if !ok {
			return
		}
		switch {
		case seq >= attackSeqBase:
			res.ForgeriesAccepted++
		case tracker.received[seq]:
			res.ReplaysAccepted++
		default:
			tracker.delivered(seq, k.Now(), len(cf.Payload))
		}
	}}

	zcUp := &ethernet.PortFunc{MAC: zcUpMAC}
	zcToCC = ethernet.NewLink("zc-cc", backbone, k, zcUp, cc)

	// Zone controller: plain gateway CAN → Ethernet.
	zc := &canbus.NodeFunc{ID: "zc", Fn: func(k *sim.Kernel, f *canbus.Frame) {
		ef := &ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeApp, Payload: f.Marshal()}
		_ = zcToCC.Send(zcUpMAC, ef)
	}}
	bus.Attach(zc)
	bus.Attach(&canbus.NodeFunc{ID: "ecu-1"})
	bus.Attach(&canbus.NodeFunc{ID: "attacker"})

	// Legitimate periodic flow.
	var captured []*canbus.Frame
	bus.Tap(func(f *canbus.Frame) {
		if f.SourceID == "ecu-1" && len(captured) < cfg.Replays {
			captured = append(captured, f.Clone())
		}
	})
	period := sim.Time(cfg.PeriodUs) * sim.Microsecond
	for i := 0; i < cfg.Messages; i++ {
		seq := uint32(i + 1)
		k.Schedule(period*sim.Time(i+1), "ecu-send", func(k *sim.Kernel) {
			tracker.sent(seq, k.Now())
			_ = bus.Send("ecu-1", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: payloadWithSeq(seq, cfg.PayloadBytes)})
		})
	}
	// Masquerade: attacker uses the same identifier; without
	// authentication the gateway and CC cannot tell.
	for i := 0; i < cfg.Forgeries; i++ {
		seq := attackSeqBase + uint32(i)
		k.Schedule(period*sim.Time(i+1)+37*sim.Microsecond, "attack-forge", func(k *sim.Kernel) {
			res.ForgeriesAttempted++
			_ = bus.Send("attacker", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: payloadWithSeq(seq, cfg.PayloadBytes)})
		})
	}
	// Replays after the legitimate flow finishes.
	replayStart := period * sim.Time(cfg.Messages+2)
	for i := 0; i < cfg.Replays; i++ {
		i := i
		k.Schedule(replayStart+period*sim.Time(i+1), "attack-replay", func(k *sim.Kernel) {
			if i < len(captured) {
				res.ReplaysAttempted++
				_ = bus.Send("attacker", captured[i].Clone())
			}
		})
	}

	if err := k.Run(0); err != nil {
		return res, err
	}
	finalize(&res, k, tracker)
	return res, nil
}

// RunS1 implements Fig. 4: SECOC protects the PDU end-to-end
// (ECU→central computer) while MACsec protects the zone-controller↔CC
// Ethernet hop. The zone controller carries MACsec session keys and
// performs security processing per message — the S1 costs the paper
// lists — and SECOC provides authenticity only.
func RunS1(cfg Config) (Result, error) {
	k := cfg.newKernel()
	res := Result{Scenario: "S1", Sent: cfg.Messages}
	tracker := newFlowTracker()

	secocCfg := secoc.DefaultConfig(0x0100)
	sender, err := secoc.NewSender(secocCfg, secocKey)
	if err != nil {
		return res, err
	}
	receiver, err := secoc.NewReceiver(secocCfg, secocKey)
	if err != nil {
		return res, err
	}
	forger, err := secoc.NewSender(secocCfg, wrongKey)
	if err != nil {
		return res, err
	}

	sciZC := macsec.SCIFromMAC(zcUpMAC, 1)
	sciCC := macsec.SCIFromMAC(ccMAC, 1)
	zcSecY, err := macsec.NewSecY(macsec.Confidential, sciZC, hopSAKcc, 0)
	if err != nil {
		return res, err
	}
	ccSecY, err := macsec.NewSecY(macsec.Confidential, sciCC, hopSAKcc, 0)
	if err != nil {
		return res, err
	}
	if err := ccSecY.AddPeer(sciZC, hopSAKcc, 0); err != nil {
		return res, err
	}
	if err := zcSecY.AddPeer(sciCC, hopSAKcc, 0); err != nil {
		return res, err
	}
	res.KeysAtZC = 2 // MACsec SAK + the CAK it was agreed from

	bus := canbus.NewBus("zone-l", canRates, k)

	var zcToCC *ethernet.Link
	cc := &ethernet.PortFunc{MAC: ccMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		inner, err := ccSecY.Verify(f)
		if err != nil {
			return // hop protection rejected the frame
		}
		cf, err := canbus.Unmarshal(inner.Payload)
		if err != nil {
			return
		}
		payload, err := receiver.Verify(cf.Payload)
		if err != nil {
			return // SECOC rejected: forgery or replay
		}
		seq, ok := seqOf(payload)
		if !ok {
			return
		}
		switch {
		case seq >= attackSeqBase:
			res.ForgeriesAccepted++
		case tracker.received[seq]:
			res.ReplaysAccepted++
		default:
			tracker.delivered(seq, k.Now(), len(payload))
		}
	}}
	zcUp := &ethernet.PortFunc{MAC: zcUpMAC}
	zcToCC = ethernet.NewLink("zc-cc", backbone, k, zcUp, cc)

	zc := &canbus.NodeFunc{ID: "zc", Fn: func(k *sim.Kernel, f *canbus.Frame) {
		ef := &ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeApp, Payload: f.Marshal()}
		sec, err := zcSecY.Protect(ef)
		if err != nil {
			return
		}
		res.CryptoOpsAtZC++
		_ = zcToCC.Send(zcUpMAC, sec)
	}}
	bus.Attach(zc)
	bus.Attach(&canbus.NodeFunc{ID: "ecu-1"})
	bus.Attach(&canbus.NodeFunc{ID: "attacker"})

	var captured []*canbus.Frame
	bus.Tap(func(f *canbus.Frame) {
		if f.SourceID == "ecu-1" && len(captured) < cfg.Replays {
			captured = append(captured, f.Clone())
		}
	})

	period := sim.Time(cfg.PeriodUs) * sim.Microsecond
	for i := 0; i < cfg.Messages; i++ {
		seq := uint32(i + 1)
		k.Schedule(period*sim.Time(i+1), "ecu-send", func(k *sim.Kernel) {
			pdu, err := sender.Protect(payloadWithSeq(seq, cfg.PayloadBytes))
			if err != nil {
				return
			}
			tracker.sent(seq, k.Now())
			_ = bus.Send("ecu-1", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: pdu})
		})
	}
	for i := 0; i < cfg.Forgeries; i++ {
		seq := attackSeqBase + uint32(i)
		k.Schedule(period*sim.Time(i+1)+37*sim.Microsecond, "attack-forge", func(k *sim.Kernel) {
			pdu, err := forger.Protect(payloadWithSeq(seq, cfg.PayloadBytes))
			if err != nil {
				return
			}
			res.ForgeriesAttempted++
			_ = bus.Send("attacker", &canbus.Frame{ID: 0x100, Format: canbus.Classic, Payload: pdu})
		})
	}
	replayStart := period * sim.Time(cfg.Messages+2)
	for i := 0; i < cfg.Replays; i++ {
		i := i
		k.Schedule(replayStart+period*sim.Time(i+1), "attack-replay", func(k *sim.Kernel) {
			if i < len(captured) {
				res.ReplaysAttempted++
				_ = bus.Send("attacker", captured[i].Clone())
			}
		})
	}

	if err := k.Run(0); err != nil {
		return res, err
	}
	finalize(&res, k, tracker)
	return res, nil
}

// S2Mode selects end-to-end (Fig. 5 ①) or point-to-point (Fig. 5 ②)
// MACsec deployment.
type S2Mode int

const (
	// S2EndToEnd runs one MACsec channel endpoint↔CC; the zone
	// controller forwards ciphertext and stores no keys.
	S2EndToEnd S2Mode = iota
	// S2PointToPoint runs MACsec per hop; the zone controller verifies
	// and re-protects every frame and stores a key per hop.
	S2PointToPoint
)

// RunS2 implements Fig. 5: a homogeneous Ethernet path — endpoint on a
// 10BASE-T1S multidrop segment, zone controller, central computer.
func RunS2(cfg Config, mode S2Mode) (Result, error) {
	k := cfg.newKernel()
	name := "S2-e2e"
	if mode == S2PointToPoint {
		name = "S2-p2p"
	}
	res := Result{Scenario: name, Sent: cfg.Messages}
	tracker := newFlowTracker()

	sciEP := macsec.SCIFromMAC(epMAC, 1)
	sciZC := macsec.SCIFromMAC(zcUpMAC, 1)
	sciAtt := macsec.SCIFromMAC(attMAC, 1)

	var epSecY, zcDownSecY, zcUpSecY, ccSecY *macsec.SecY
	var err error
	switch mode {
	case S2EndToEnd:
		if epSecY, err = macsec.NewSecY(macsec.Confidential, sciEP, e2eSAK, 0); err != nil {
			return res, err
		}
		if ccSecY, err = macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(ccMAC, 1), e2eSAK, 0); err != nil {
			return res, err
		}
		if err = ccSecY.AddPeer(sciEP, e2eSAK, 0); err != nil {
			return res, err
		}
		res.KeysAtZC = 0
	case S2PointToPoint:
		if epSecY, err = macsec.NewSecY(macsec.Confidential, sciEP, hopSAKzc, 0); err != nil {
			return res, err
		}
		if zcDownSecY, err = macsec.NewSecY(macsec.Confidential, sciZC, hopSAKzc, 0); err != nil {
			return res, err
		}
		if err = zcDownSecY.AddPeer(sciEP, hopSAKzc, 0); err != nil {
			return res, err
		}
		if zcUpSecY, err = macsec.NewSecY(macsec.Confidential, sciZC, hopSAKcc, 0); err != nil {
			return res, err
		}
		if ccSecY, err = macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(ccMAC, 1), hopSAKcc, 0); err != nil {
			return res, err
		}
		if err = ccSecY.AddPeer(sciZC, hopSAKcc, 0); err != nil {
			return res, err
		}
		res.KeysAtZC = 2
	}

	attSecY, err := macsec.NewSecY(macsec.Confidential, sciAtt, wrongSAK, 0)
	if err != nil {
		return res, err
	}

	classify := func(k *sim.Kernel, inner *ethernet.Frame) {
		seq, ok := seqOf(inner.Payload)
		if !ok {
			return
		}
		switch {
		case seq >= attackSeqBase:
			res.ForgeriesAccepted++
		case tracker.received[seq]:
			res.ReplaysAccepted++
		default:
			tracker.delivered(seq, k.Now(), len(inner.Payload))
		}
	}

	var zcToCC *ethernet.Link
	cc := &ethernet.PortFunc{MAC: ccMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		inner, err := ccSecY.Verify(f)
		if err != nil {
			return
		}
		classify(k, inner)
	}}
	zcUpPort := &ethernet.PortFunc{MAC: zcUpMAC}
	zcToCC = ethernet.NewLink("zc-cc", backbone, k, zcUpPort, cc)

	seg := ethernet.NewMultidrop("zone-r", k)
	zcDown := &ethernet.PortFunc{MAC: zcMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		switch mode {
		case S2EndToEnd:
			// Forward ciphertext unchanged; the paper notes this also
			// means the intermediate cannot rewrite header fields.
			fwd := f.Clone()
			_ = zcToCC.Send(zcUpMAC, fwd)
		case S2PointToPoint:
			inner, err := zcDownSecY.Verify(f)
			if err != nil {
				return
			}
			res.CryptoOpsAtZC++
			up := &ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: inner.EtherType, Payload: inner.Payload}
			sec, err := zcUpSecY.Protect(up)
			if err != nil {
				return
			}
			res.CryptoOpsAtZC++
			_ = zcToCC.Send(zcUpMAC, sec)
		}
	}}
	seg.Attach(zcDown)
	epID := seg.Attach(&ethernet.PortFunc{MAC: epMAC})
	attID := seg.Attach(&ethernet.PortFunc{MAC: attMAC})

	var captured []*ethernet.Frame
	seg.Tap(func(f *ethernet.Frame) {
		if f.Src == epMAC && len(captured) < cfg.Replays {
			captured = append(captured, f.Clone())
		}
	})

	period := sim.Time(cfg.PeriodUs) * sim.Microsecond
	for i := 0; i < cfg.Messages; i++ {
		seq := uint32(i + 1)
		k.Schedule(period*sim.Time(i+1), "ep-send", func(k *sim.Kernel) {
			f := &ethernet.Frame{Dst: ccMAC, Src: epMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := epSecY.Protect(f)
			if err != nil {
				return
			}
			tracker.sent(seq, k.Now())
			_ = seg.Send(epID, sec)
		})
	}
	for i := 0; i < cfg.Forgeries; i++ {
		seq := attackSeqBase + uint32(i)
		k.Schedule(period*sim.Time(i+1)+23*sim.Microsecond, "attack-forge", func(k *sim.Kernel) {
			f := &ethernet.Frame{Dst: ccMAC, Src: attMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := attSecY.Protect(f)
			if err != nil {
				return
			}
			res.ForgeriesAttempted++
			_ = seg.Send(attID, sec)
		})
	}
	replayStart := period * sim.Time(cfg.Messages+2)
	for i := 0; i < cfg.Replays; i++ {
		i := i
		k.Schedule(replayStart+period*sim.Time(i+1), "attack-replay", func(k *sim.Kernel) {
			if i < len(captured) {
				res.ReplaysAttempted++
				_ = seg.Send(attID, captured[i].Clone())
			}
		})
	}

	if err := k.Run(0); err != nil {
		return res, err
	}
	finalize(&res, k, tracker)
	return res, nil
}

// RunS3 implements Fig. 6: the endpoint sits on CAN XL, but MACsec and
// MKA run end-to-end between the endpoint and the central computer
// through the CAN Adaptation Layer. The zone controller reassembles and
// forwards tunnelled Ethernet frames without holding any keys.
func RunS3(cfg Config) (Result, error) {
	k := cfg.newKernel()
	res := Result{Scenario: "S3", Sent: cfg.Messages}
	tracker := newFlowTracker()

	// --- MKA over the tunnel establishes the end-to-end SAK. ---
	ccPart, err := macsec.NewParticipant("cc", "canal-ca", linkCAK, 1)
	if err != nil {
		return res, err
	}
	ecuPart, err := macsec.NewParticipant("ecu", "canal-ca", linkCAK, 10)
	if err != nil {
		return res, err
	}

	sciECU := macsec.SCIFromMAC(ecuMAC, 1)
	sciCC := macsec.SCIFromMAC(ccMAC, 1)
	var ecuSecY, ccSecY *macsec.SecY

	// Adapters: one per tunnel endpoint plus the ZC's two gateways.
	ecuAdapter := canal.NewAdapter(1, canbus.XL, 0x180)
	zcUpAdapter := canal.NewAdapter(1, canbus.XL, 0x180)   // reassembles ECU→CC
	zcDownAdapter := canal.NewAdapter(1, canbus.XL, 0x181) // segments CC→ECU
	ecuDownAdapter := canal.NewAdapter(1, canbus.XL, 0x181)
	attAdapter := canal.NewAdapter(1, canbus.XL, 0x180)

	attSecY, err := macsec.NewSecY(macsec.Confidential, macsec.SCIFromMAC(attMAC, 1), wrongSAK, 0)
	if err != nil {
		return res, err
	}

	bus := canbus.NewBus("zone-xl", xlRates, k)

	classify := func(k *sim.Kernel, inner *ethernet.Frame) {
		seq, ok := seqOf(inner.Payload)
		if !ok {
			return
		}
		switch {
		case seq >= attackSeqBase:
			res.ForgeriesAccepted++
		case tracker.received[seq]:
			res.ReplaysAccepted++
		default:
			tracker.delivered(seq, k.Now(), len(inner.Payload))
		}
	}

	var zcToCC *ethernet.Link
	cc := &ethernet.PortFunc{MAC: ccMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		if f.EtherType != ethernet.EtherTypeMACsec {
			return
		}
		if ccSecY == nil {
			return
		}
		inner, err := ccSecY.Verify(f)
		if err != nil {
			return
		}
		classify(k, inner)
	}}
	zcUpPort := &ethernet.PortFunc{MAC: zcUpMAC, Fn: func(k *sim.Kernel, f *ethernet.Frame) {
		// CC → ECU direction: segment into the tunnel.
		segs, err := zcDownAdapter.Segment(f)
		if err != nil {
			return
		}
		for _, s := range segs {
			_ = bus.Send("zc", s)
		}
	}}
	zcToCC = ethernet.NewLink("zc-cc", backbone, k, zcUpPort, cc)

	// Zone controller on the CAN XL bus: reassemble uplink tunnels.
	zcNode := &canbus.NodeFunc{ID: "zc", Fn: func(k *sim.Kernel, f *canbus.Frame) {
		ef, err := zcUpAdapter.Accept(f)
		if err != nil || ef == nil {
			return
		}
		_ = zcToCC.Send(zcUpMAC, ef)
	}}
	bus.Attach(zcNode)

	// ECU node: receives downlink tunnel segments (MKA distribution).
	ecuNode := &canbus.NodeFunc{ID: "ecu-1", Fn: func(k *sim.Kernel, f *canbus.Frame) {
		ef, err := ecuDownAdapter.Accept(f)
		if err != nil || ef == nil {
			return
		}
		if ef.EtherType == ethernet.EtherTypeMKA {
			pdu, err := macsec.UnmarshalMKPDU(ef.Payload)
			if err != nil {
				return
			}
			if err := ecuPart.AcceptSAK(pdu); err != nil {
				return
			}
			ecuSecY, err = macsec.NewSecY(macsec.Confidential, sciECU, ecuPart.SAK(), 0)
			if err != nil {
				return
			}
			_ = ecuSecY.AddPeer(sciCC, ecuPart.SAK(), 0)
		}
	}}
	bus.Attach(ecuNode)
	bus.Attach(&canbus.NodeFunc{ID: "attacker"})

	var captured []*canbus.Frame
	bus.Tap(func(f *canbus.Frame) {
		if f.SourceID == "ecu-1" && len(captured) < cfg.Replays {
			captured = append(captured, f.Clone())
		}
	})

	// Key server distributes the SAK at t=0 through the tunnel.
	k.Schedule(0, "mka-distribute", func(k *sim.Kernel) {
		pdu, err := ccPart.DistributeSAK(1)
		if err != nil {
			return
		}
		var mkErr error
		ccSecY, mkErr = macsec.NewSecY(macsec.Confidential, sciCC, ccPart.SAK(), 0)
		if mkErr != nil {
			return
		}
		_ = ccSecY.AddPeer(sciECU, ccPart.SAK(), 0)
		ef := &ethernet.Frame{Dst: ecuMAC, Src: ccMAC, EtherType: ethernet.EtherTypeMKA, Payload: pdu.Marshal()}
		// CC reaches the zone through its link; the link callback
		// segments into the downlink tunnel.
		_ = zcToCC.Send(ccMAC, ef)
	})

	period := sim.Time(cfg.PeriodUs) * sim.Microsecond
	for i := 0; i < cfg.Messages; i++ {
		seq := uint32(i + 1)
		k.Schedule(period*sim.Time(i+1), "ecu-send", func(k *sim.Kernel) {
			if ecuSecY == nil {
				return // SAK not yet installed
			}
			f := &ethernet.Frame{Dst: ccMAC, Src: ecuMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := ecuSecY.Protect(f)
			if err != nil {
				return
			}
			segs, err := ecuAdapter.Segment(sec)
			if err != nil {
				return
			}
			tracker.sent(seq, k.Now())
			for _, s := range segs {
				_ = bus.Send("ecu-1", s)
			}
		})
	}
	for i := 0; i < cfg.Forgeries; i++ {
		seq := attackSeqBase + uint32(i)
		k.Schedule(period*sim.Time(i+1)+23*sim.Microsecond, "attack-forge", func(k *sim.Kernel) {
			f := &ethernet.Frame{Dst: ccMAC, Src: attMAC, EtherType: ethernet.EtherTypeApp, Payload: payloadWithSeq(seq, cfg.PayloadBytes)}
			sec, err := attSecY.Protect(f)
			if err != nil {
				return
			}
			segs, err := attAdapter.Segment(sec)
			if err != nil {
				return
			}
			res.ForgeriesAttempted++
			for _, s := range segs {
				_ = bus.Send("attacker", s)
			}
		})
	}
	replayStart := period * sim.Time(cfg.Messages+2)
	for i := 0; i < cfg.Replays; i++ {
		i := i
		k.Schedule(replayStart+period*sim.Time(i+1), "attack-replay", func(k *sim.Kernel) {
			if i < len(captured) {
				res.ReplaysAttempted++
				_ = bus.Send("attacker", captured[i].Clone())
			}
		})
	}

	if err := k.Run(0); err != nil {
		return res, err
	}
	finalize(&res, k, tracker)
	res.KeysAtZC = 0 // end-to-end: the gateway never sees a key
	return res, nil
}

// RunAll executes baseline, S1, S2 (both modes), and S3 with the same
// workload and returns the results in presentation order.
func RunAll(cfg Config) ([]Result, error) {
	var out []Result
	runners := []func(Config) (Result, error){
		RunBaseline,
		RunS1,
		func(c Config) (Result, error) { return RunS2(c, S2EndToEnd) },
		func(c Config) (Result, error) { return RunS2(c, S2PointToPoint) },
		RunS3,
	}
	for _, run := range runners {
		r, err := run(cfg)
		if err != nil {
			return out, fmt.Errorf("ivn: %s: %w", r.Scenario, err)
		}
		out = append(out, r)
	}
	return out, nil
}
