package ivn

import (
	"testing"
)

func smallConfig() Config {
	return Config{Seed: 1, Messages: 40, PeriodUs: 500, PayloadBytes: 4, Forgeries: 10, Replays: 10}
}

func TestBaselineDeliversAndIsDefenseless(t *testing.T) {
	res, err := RunBaseline(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Errorf("delivered %d/40", res.Delivered)
	}
	if res.ForgeriesAccepted != res.ForgeriesAttempted || res.ForgeriesAttempted == 0 {
		t.Errorf("baseline should accept all forgeries: %d/%d", res.ForgeriesAccepted, res.ForgeriesAttempted)
	}
	if res.ReplaysAccepted != res.ReplaysAttempted || res.ReplaysAttempted == 0 {
		t.Errorf("baseline should accept all replays: %d/%d", res.ReplaysAccepted, res.ReplaysAttempted)
	}
	if res.KeysAtZC != 0 || res.CryptoOpsAtZC != 0 {
		t.Error("baseline should need no keys or crypto at the zone controller")
	}
}

func TestS1BlocksForgeryAndReplay(t *testing.T) {
	res, err := RunS1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Errorf("delivered %d/40", res.Delivered)
	}
	if res.ForgeriesAccepted != 0 {
		t.Errorf("S1 accepted %d forgeries", res.ForgeriesAccepted)
	}
	if res.ReplaysAccepted != 0 {
		t.Errorf("S1 accepted %d replays", res.ReplaysAccepted)
	}
	if res.ForgeriesAttempted == 0 || res.ReplaysAttempted == 0 {
		t.Error("attacks did not run")
	}
	if res.KeysAtZC == 0 {
		t.Error("S1's zone controller must store hop keys (the paper's stated disadvantage)")
	}
	if res.CryptoOpsAtZC == 0 {
		t.Error("S1's zone controller must perform security processing")
	}
}

func TestS2EndToEndKeepsZoneControllerKeyless(t *testing.T) {
	res, err := RunS2(smallConfig(), S2EndToEnd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Errorf("delivered %d/40", res.Delivered)
	}
	if res.KeysAtZC != 0 || res.CryptoOpsAtZC != 0 {
		t.Errorf("e2e MACsec should leave ZC keyless: keys=%d ops=%d", res.KeysAtZC, res.CryptoOpsAtZC)
	}
	if res.ForgeriesAccepted != 0 || res.ReplaysAccepted != 0 {
		t.Errorf("S2-e2e accepted attacks: forged=%d replayed=%d", res.ForgeriesAccepted, res.ReplaysAccepted)
	}
}

func TestS2PointToPointLoadsZoneController(t *testing.T) {
	res, err := RunS2(smallConfig(), S2PointToPoint)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Errorf("delivered %d/40", res.Delivered)
	}
	if res.KeysAtZC != 2 {
		t.Errorf("p2p ZC keys = %d, want 2", res.KeysAtZC)
	}
	if res.CryptoOpsAtZC < 2*40 {
		t.Errorf("p2p ZC crypto ops = %d, want ≥80 (verify+protect per message)", res.CryptoOpsAtZC)
	}
	if res.ForgeriesAccepted != 0 || res.ReplaysAccepted != 0 {
		t.Errorf("S2-p2p accepted attacks: forged=%d replayed=%d", res.ForgeriesAccepted, res.ReplaysAccepted)
	}
}

func TestS3TunnelsMACsecEndToEndOverCANXL(t *testing.T) {
	res, err := RunS3(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 40 {
		t.Errorf("delivered %d/40", res.Delivered)
	}
	if res.KeysAtZC != 0 {
		t.Errorf("S3 ZC keys = %d, want 0 (end-to-end via CANAL)", res.KeysAtZC)
	}
	if res.ForgeriesAccepted != 0 || res.ReplaysAccepted != 0 {
		t.Errorf("S3 accepted attacks: forged=%d replayed=%d", res.ForgeriesAccepted, res.ReplaysAccepted)
	}
}

func TestRunAllProducesFiveScenarios(t *testing.T) {
	results, err := RunAll(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	wantOrder := []string{"baseline", "S1", "S2-e2e", "S2-p2p", "S3"}
	for i, r := range results {
		if r.Scenario != wantOrder[i] {
			t.Errorf("result %d = %s, want %s", i, r.Scenario, wantOrder[i])
		}
		if r.String() == "" {
			t.Error("empty report line")
		}
	}
}

func TestSecuredScenariosCostMoreWireBytesThanBaseline(t *testing.T) {
	cfg := smallConfig()
	cfg.Forgeries, cfg.Replays = 0, 0 // compare goodput overhead only
	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := RunS1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.OverheadRatio <= base.OverheadRatio {
		t.Errorf("S1 overhead %.2f not above baseline %.2f", s1.OverheadRatio, base.OverheadRatio)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := RunS1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunS1(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// S2 p2p adds a decrypt/re-encrypt hop; its latency should be at
	// least that of e2e. (Crypto time is not modelled, but the frame
	// format differences and identical paths make them comparable.)
	cfg := smallConfig()
	cfg.Forgeries, cfg.Replays = 0, 0
	e2e, err := RunS2(cfg, S2EndToEnd)
	if err != nil {
		t.Fatal(err)
	}
	p2p, err := RunS2(cfg, S2PointToPoint)
	if err != nil {
		t.Fatal(err)
	}
	if e2e.LatencyUs.P50 <= 0 || p2p.LatencyUs.P50 <= 0 {
		t.Errorf("latencies not recorded: %v %v", e2e.LatencyUs.P50, p2p.LatencyUs.P50)
	}
}
