package ivn

import (
	"fmt"

	"autosec/internal/canal"
	"autosec/internal/canbus"
	"autosec/internal/ethernet"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
)

// ScalingRow quantifies how a scenario's costs grow with the number of
// endpoints behind one zone controller — the dimension along which the
// paper's S1/S2/S3 trade-offs actually diverge in a real vehicle (a few
// endpoints per zone today, dozens in zonal consolidations).
type ScalingRow struct {
	Scenario string
	// KeysZC / KeysCC: session keys stored at the zone controller and
	// central computer.
	KeysZC int
	KeysCC int
	// OpsZCPerMsg: security operations the ZC performs per forwarded
	// message.
	OpsZCPerMsg int
	// BytesPerMsg: security + adaptation overhead bytes added to one
	// application message end to end (measured from the protocol
	// implementations on a sample payload).
	BytesPerMsg int
}

// Scaling computes the cost model for n endpoints in one zone. Byte
// overheads are measured, not assumed: each protocol's Protect runs on
// a payloadBytes-sized message.
func Scaling(n, payloadBytes int) ([]ScalingRow, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ivn: endpoints must be positive, got %d", n)
	}
	payload := make([]byte, payloadBytes)
	reg := suites.Registry()

	// Measured overheads: each suite protects a payload-sized message
	// and the wire expansion is observed, not assumed.
	measure := func(name string, key []byte) (int, []byte, error) {
		e, err := reg.Find(name)
		if err != nil {
			return 0, nil, err
		}
		s, err := e.New(secchan.Params{Key: key})
		if err != nil {
			return 0, nil, err
		}
		// Batch entry point: dispatches to the suite's native batched
		// fast path, byte-identical to Protect.
		wires, err := secchan.ProtectBatch(s, [][]byte{payload}, nil)
		if err != nil {
			return 0, nil, err
		}
		return len(wires[0]) - len(payload), wires[0], nil
	}

	secocOverhead, _, err := measure("SECOC", secocKey)
	if err != nil {
		return nil, err
	}
	macsecOverhead, macsecWire, err := measure("MACsec", hopSAKcc)
	if err != nil {
		return nil, err
	}

	// Measured CANAL segmentation overhead for a MACsec frame of this
	// size over CAN XL. The adapter segments the full Ethernet wire
	// image, so rebuild the frame around the protected payload.
	sec := &ethernet.Frame{Dst: ccMAC, Src: zcUpMAC, EtherType: ethernet.EtherTypeMACsec, Payload: macsecWire}
	adapter := canal.NewAdapter(1, canbus.XL, 0x100)
	canalOverhead, err := adapter.SegmentOverheadBytes(len(sec.Marshal()))
	if err != nil {
		return nil, err
	}

	return []ScalingRow{
		{
			// S1: SECOC end-to-end per endpoint stream; one MACsec hop
			// ZC↔CC shared by all streams. The CC stores a SECOC key
			// per endpoint plus the hop SAK.
			Scenario:    "S1",
			KeysZC:      2, // hop SAK + CAK, independent of n
			KeysCC:      n + 1,
			OpsZCPerMsg: 1, // MACsec protect on forward
			BytesPerMsg: secocOverhead + macsecOverhead,
		},
		{
			// S2 end-to-end: one MACsec channel per endpoint,
			// terminating at the CC; the ZC forwards ciphertext.
			Scenario:    "S2-e2e",
			KeysZC:      0,
			KeysCC:      n,
			OpsZCPerMsg: 0,
			BytesPerMsg: macsecOverhead,
		},
		{
			// S2 point-to-point: a hop SAK per endpoint at the ZC plus
			// the uplink SAK; the CC only holds the uplink.
			Scenario:    "S2-p2p",
			KeysZC:      n + 1,
			KeysCC:      1,
			OpsZCPerMsg: 2, // verify + re-protect
			BytesPerMsg: macsecOverhead,
		},
		{
			// S3: MACsec end-to-end through CANAL; keys as S2-e2e, plus
			// per-message adaptation overhead on the CAN XL leg.
			Scenario:    "S3",
			KeysZC:      0,
			KeysCC:      n,
			OpsZCPerMsg: 0,
			BytesPerMsg: macsecOverhead + canalOverhead,
		},
	}, nil
}
