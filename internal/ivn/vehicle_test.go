package ivn

import (
	"strings"
	"testing"
)

func TestFullVehicleAllFlowsDeliver(t *testing.T) {
	cfg := Config{Seed: 3, Messages: 50, PeriodUs: 500, PayloadBytes: 4, Forgeries: 20}
	res, err := RunFullVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("%d flows", len(res.Flows))
	}
	for _, f := range res.Flows {
		if f.Sent != 50 {
			t.Errorf("%s sent %d", f.Name, f.Sent)
		}
		if f.Delivered != 50 {
			t.Errorf("%s delivered %d/%d", f.Name, f.Delivered, f.Sent)
		}
		if f.P50Us <= 0 {
			t.Errorf("%s latency not recorded", f.Name)
		}
	}
}

func TestFullVehicleBlocksConcurrentAttacksOnBothZones(t *testing.T) {
	cfg := Config{Seed: 3, Messages: 50, PeriodUs: 500, PayloadBytes: 4, Forgeries: 25}
	res, err := RunFullVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgeriesAttempted != 50 { // 25 per zone
		t.Errorf("attempted %d, want 50", res.ForgeriesAttempted)
	}
	if res.ForgeriesAccepted != 0 {
		t.Errorf("accepted %d forgeries", res.ForgeriesAccepted)
	}
}

func TestFullVehicleCrossZoneLatencyHigherThanLocal(t *testing.T) {
	cfg := Config{Seed: 5, Messages: 50, PeriodUs: 500, PayloadBytes: 4}
	res, err := RunFullVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var canLat, crossLat float64
	for _, f := range res.Flows {
		if strings.HasPrefix(f.Name, "ecu1") {
			canLat = f.P50Us
		}
		if strings.HasPrefix(f.Name, "ecu2") {
			crossLat = f.P50Us
		}
	}
	// The cross-zone flow traverses CAN + two Ethernet links + the T1S
	// segment: strictly more hops than the CAN→CC flow.
	if crossLat <= canLat {
		t.Errorf("cross-zone p50 %.1f µs not above single-zone %.1f µs", crossLat, canLat)
	}
}

func TestFullVehicleDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, Messages: 30, PeriodUs: 500, PayloadBytes: 4, Forgeries: 10}
	a, err := RunFullVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFullVehicle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}
