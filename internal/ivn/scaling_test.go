package ivn

import (
	"testing"
)

func TestScalingShapes(t *testing.T) {
	rows, err := Scaling(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScalingRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	// S1: ZC keys constant; CC keys grow with endpoints.
	if byName["S1"].KeysZC != 2 || byName["S1"].KeysCC != 65 {
		t.Errorf("S1 keys: %+v", byName["S1"])
	}
	// S2-p2p: key burden concentrates at the ZC.
	if byName["S2-p2p"].KeysZC != 65 || byName["S2-p2p"].KeysCC != 1 {
		t.Errorf("S2-p2p keys: %+v", byName["S2-p2p"])
	}
	// e2e variants leave the ZC keyless and op-free.
	for _, name := range []string{"S2-e2e", "S3"} {
		if byName[name].KeysZC != 0 || byName[name].OpsZCPerMsg != 0 {
			t.Errorf("%s not keyless at ZC: %+v", name, byName[name])
		}
	}
	// S3 pays adaptation bytes over S2-e2e.
	if byName["S3"].BytesPerMsg <= byName["S2-e2e"].BytesPerMsg {
		t.Errorf("S3 bytes %d not above S2-e2e %d", byName["S3"].BytesPerMsg, byName["S2-e2e"].BytesPerMsg)
	}
	// SECOC's overhead is small: S1 total per-message bytes stay below
	// S3's (auth-only + hop MACsec vs e2e MACsec + CANAL).
	if byName["S1"].BytesPerMsg >= byName["S3"].BytesPerMsg {
		t.Errorf("S1 bytes %d vs S3 %d", byName["S1"].BytesPerMsg, byName["S3"].BytesPerMsg)
	}
}

func TestScalingMonotoneInEndpoints(t *testing.T) {
	small, err := Scaling(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Scaling(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if big[i].KeysZC < small[i].KeysZC || big[i].KeysCC < small[i].KeysCC {
			t.Errorf("%s keys shrank with scale", small[i].Scenario)
		}
		if big[i].BytesPerMsg != small[i].BytesPerMsg {
			t.Errorf("%s per-message bytes depend on fleet size", small[i].Scenario)
		}
	}
}

func TestScalingValidation(t *testing.T) {
	if _, err := Scaling(0, 4); err == nil {
		t.Error("zero endpoints accepted")
	}
}
