package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// serialReplicates is the loop Replicates replaces: fork per iteration,
// run in order. The reference for every bit-identity assertion below.
func serialReplicates(n int, rng *RNG, fn func(i int, rng *RNG) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i, rng.Fork()); err != nil {
			return err
		}
	}
	return nil
}

// replicateDraws runs a small variable-length random walk per replicate
// and records a stream fingerprint per index.
func replicateDraws(i int, rng *RNG, out []uint64) error {
	steps := 3 + rng.Intn(13)
	var acc uint64
	for s := 0; s < steps; s++ {
		acc = acc*0x9E3779B9 + rng.Uint64()
	}
	out[i] = acc
	return nil
}

func TestReplicatesBitIdenticalToSerialLoop(t *testing.T) {
	const n = 37
	want := make([]uint64, n)
	ref := NewRNG(99)
	if err := serialReplicates(n, ref, func(i int, r *RNG) error {
		return replicateDraws(i, r, want)
	}); err != nil {
		t.Fatal(err)
	}
	wantParent := ref.Uint64() // parent stream must be consumed identically

	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0), 32} {
		var pool *WorkerPool
		if workers > 0 {
			pool = NewWorkerPool(workers)
		}
		got := make([]uint64, n)
		parent := NewRNG(99)
		if err := pool.Replicates(n, parent, func(i int, r *RNG) error {
			return replicateDraws(i, r, got)
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: replicate %d diverged: %x vs %x", workers, i, got[i], want[i])
			}
		}
		if p := parent.Uint64(); p != wantParent {
			t.Fatalf("workers=%d: parent stream diverged after Replicates: %x vs %x", workers, p, wantParent)
		}
	}
}

func TestReplicatesNilPoolSerial(t *testing.T) {
	var pool *WorkerPool
	if pool.Size() != 1 {
		t.Fatalf("nil pool size = %d, want 1", pool.Size())
	}
	if pool.TryAcquire() {
		t.Fatal("nil pool must not hand out slots")
	}
	pool.Acquire() // must not block or panic
	pool.Release()
	n := 0
	if err := pool.Replicates(5, NewRNG(1), func(i int, r *RNG) error {
		if i != n {
			t.Fatalf("nil pool ran out of order: got %d want %d", i, n)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ran %d replicates, want 5", n)
	}
}

func TestReplicatesReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("replicate 3 failed")
	for _, workers := range []int{1, 4} {
		pool := NewWorkerPool(workers)
		err := pool.Replicates(16, NewRNG(7), func(i int, r *RNG) error {
			if i >= 3 {
				return fmt.Errorf("replicate %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

func TestReplicatesConcurrencyBounded(t *testing.T) {
	pool := NewWorkerPool(3)
	var cur, max atomic.Int64
	if err := pool.Replicates(64, NewRNG(5), func(i int, r *RNG) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		// Draw a little to give workers a chance to overlap.
		for s := 0; s < 100; s++ {
			r.Uint64()
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Caller's implicit slot + at most 2 borrowed (one pool slot is
	// never borrowed because borrowing stops at n-1... the bound that
	// matters: never more than pool size + 1 concurrent replicates).
	if got := max.Load(); got > 4 {
		t.Fatalf("observed %d concurrent replicates, budget allows at most 4", got)
	}
}

func TestReplicatesSlotsReturned(t *testing.T) {
	pool := NewWorkerPool(4)
	for round := 0; round < 3; round++ {
		if err := pool.Replicates(8, NewRNG(int64(round+1)), func(i int, r *RNG) error {
			r.Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// All four slots must be home again.
	for i := 0; i < 4; i++ {
		if !pool.TryAcquire() {
			t.Fatalf("slot %d not returned to the pool", i)
		}
	}
	if pool.TryAcquire() {
		t.Fatal("pool handed out a fifth slot")
	}
	for i := 0; i < 4; i++ {
		pool.Release()
	}
}

func TestDefaultPoolSizedToGOMAXPROCS(t *testing.T) {
	if got, want := DefaultPool().Size(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("DefaultPool size = %d, want %d", got, want)
	}
	if DefaultPool() != DefaultPool() {
		t.Fatal("DefaultPool must be a singleton")
	}
}
