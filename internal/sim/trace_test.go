package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestKernelTraceEvents checks that a traced kernel emits schedule,
// exec, cancel, counter, and series events with virtual timestamps and
// RNG draw checkpoints.
func TestKernelTraceEvents(t *testing.T) {
	t.Parallel()
	tr := NewRingTracer(64)
	k := NewKernel(7)
	k.SetTracer(tr)

	k.Schedule(10, "a", func(k *Kernel) {
		k.RNG().Uint64()
		k.Metrics().Inc("hits", 1)
		k.Metrics().Observe("lat", 3.5)
	})
	doomed := k.Schedule(20, "doomed", func(*Kernel) {})
	k.Cancel(doomed)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	want := map[string]int{"schedule": 2, "cancel": 1, "exec": 1, "counter": 1, "series": 1}
	for kind, n := range want {
		if kinds[kind] != n {
			t.Errorf("kind %q: got %d events, want %d (all: %v)", kind, kinds[kind], n, kinds)
		}
	}
	for _, ev := range tr.Events() {
		if ev.Kind == "exec" {
			if ev.T != 10 || ev.Name != "a" || ev.Draws != 1 {
				t.Errorf("exec event = %+v, want T=10 Name=a Draws=1", ev)
			}
		}
		if ev.Kind == "counter" && (ev.T != 10 || ev.Value != 1) {
			t.Errorf("counter event = %+v, want T=10 Value=1", ev)
		}
	}
}

// TestTraceDeterminism runs the same seeded simulation twice through a
// JSONL tracer and requires byte-identical streams.
func TestTraceDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []byte {
		var buf bytes.Buffer
		tr := NewJSONLTracer(&buf)
		k := NewKernel(99)
		k.SetTracer(tr)
		var tick func(k *Kernel)
		tick = func(k *Kernel) {
			k.Metrics().Observe("v", k.RNG().Float64())
			if k.Now() < 100 {
				k.After(10, "tick", tick)
			}
		}
		k.After(10, "tick", tick)
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("traces diverge:\n%s\nvs\n%s", a, b)
	}
	// Every line must be valid JSON with a kind.
	for _, line := range strings.Split(strings.TrimSpace(string(a)), "\n") {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if ev.Kind == "" {
			t.Fatalf("line %q missing kind", line)
		}
	}
}

// TestRingTracerWrap checks ring-buffer retention and drop accounting.
func TestRingTracerWrap(t *testing.T) {
	t.Parallel()
	tr := NewRingTracer(3)
	for i := 0; i < 5; i++ {
		tr.Trace(TraceEvent{Seq: i})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Fatalf("ring retained %+v, want seqs 2..4", evs)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestNilTracerFastPath: an untraced kernel must behave identically to
// a traced one (minus the trace) — this is a smoke check that the nil
// guards cover every hook.
func TestNilTracerFastPath(t *testing.T) {
	t.Parallel()
	run := func(trace bool) (Time, uint64) {
		k := NewKernel(5)
		if trace {
			k.SetTracer(NewRingTracer(8))
		}
		k.Schedule(1, "x", func(k *Kernel) { k.RNG().Uint64() })
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.RNG().Draws()
	}
	at, ad := run(true)
	bt, bd := run(false)
	if at != bt || ad != bd {
		t.Fatalf("traced (%v,%d) != untraced (%v,%d)", at, ad, bt, bd)
	}
}
