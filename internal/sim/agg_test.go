package sim

import (
	"math"
	"testing"
)

func TestAggEmpty(t *testing.T) {
	t.Parallel()
	var a Agg
	if a.N() != 0 || a.Min() != 0 || a.Max() != 0 || a.Mean() != 0 || a.Spread() != 0 {
		t.Errorf("zero Agg not all-zero: %+v", a)
	}
}

func TestAggStats(t *testing.T) {
	t.Parallel()
	var a Agg
	for _, v := range []float64{3, -1, 4, 1.5, 0.5} {
		a.Add(v)
	}
	if a.N() != 5 {
		t.Errorf("N = %d, want 5", a.N())
	}
	if a.Min() != -1 || a.Max() != 4 {
		t.Errorf("min/max = %v/%v, want -1/4", a.Min(), a.Max())
	}
	if math.Abs(a.Mean()-1.6) > 1e-12 {
		t.Errorf("mean = %v, want 1.6", a.Mean())
	}
	if a.Spread() != 5 {
		t.Errorf("spread = %v, want 5", a.Spread())
	}
}

func TestAggSingleNegative(t *testing.T) {
	t.Parallel()
	var a Agg
	a.Add(-2.5)
	if a.Min() != -2.5 || a.Max() != -2.5 || a.Mean() != -2.5 || a.Spread() != 0 {
		t.Errorf("single-sample Agg wrong: %+v", a)
	}
}

func TestFormatG(t *testing.T) {
	t.Parallel()
	cases := map[float64]string{
		1:        "1",
		0.5:      "0.5",
		166.4:    "166.4",
		2.33e-10: "2.33e-10",
	}
	for v, want := range cases {
		if got := FormatG(v); got != want {
			t.Errorf("FormatG(%v) = %q, want %q", v, got, want)
		}
	}
}
