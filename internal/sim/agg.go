package sim

import "strconv"

// Agg is a streaming min/mean/max accumulator for aggregating one metric
// across many simulation runs (e.g. the same attack-success rate measured
// at N different seeds). The zero value is ready to use. Add order does
// not affect Min, Max, or N; Mean is a plain running sum, so callers that
// need bit-identical means across runs must feed samples in a fixed
// order.
type Agg struct {
	n        int
	sum      float64
	min, max float64
}

// Add records one sample.
func (a *Agg) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.sum += v
	a.n++
}

// N returns the number of samples recorded.
func (a *Agg) N() int { return a.n }

// Min returns the smallest sample (0 if empty).
func (a *Agg) Min() float64 { return a.min }

// Max returns the largest sample (0 if empty).
func (a *Agg) Max() float64 { return a.max }

// Mean returns the arithmetic mean (0 if empty).
func (a *Agg) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Spread returns Max − Min: a cheap dispersion indicator that is exactly
// zero when a metric is seed-invariant.
func (a *Agg) Spread() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max - a.min
}

// FormatG renders v in compact %g form with enough digits to be stable
// and diffable in golden reports (strconv 'g', precision 6).
func FormatG(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
