package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMetricSetNamingAndOrder(t *testing.T) {
	t.Parallel()
	ms := NewMetricSet()
	ms.Add("x", 1)
	ms.Add("y", 2)
	ms.Add("x", 3)
	ms.Add("x", 4)
	got := ms.Metrics()
	want := []Metric{{"x", 1}, {"y", 2}, {"x#2", 3}, {"x#3", 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("metric %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMetricSetNilSafe(t *testing.T) {
	t.Parallel()
	var ms *MetricSet
	ms.Add("ignored", 1) // must not panic
	if ms.Len() != 0 || ms.Metrics() != nil {
		t.Fatal("nil MetricSet must be inert")
	}
}

func TestMetricSetJSONAndCSV(t *testing.T) {
	t.Parallel()
	ms := NewMetricSet()
	ms.Add("plain", 1.5)
	ms.Add("with,comma", 2)
	var js bytes.Buffer
	if err := ms.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded []Metric
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output invalid: %v\n%s", err, js.String())
	}
	if len(decoded) != 2 || decoded[0].Name != "plain" || decoded[0].Value != 1.5 {
		t.Fatalf("decoded %v", decoded)
	}
	var cs bytes.Buffer
	if err := ms.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if len(lines) != 3 || lines[0] != "name,value" || lines[1] != "plain,1.5" || lines[2] != `"with,comma",2` {
		t.Fatalf("CSV = %q", cs.String())
	}
}

func TestBoundTablePublishesRenderedCells(t *testing.T) {
	t.Parallel()
	ms := NewMetricSet()
	tb := NewTable("t", "scenario", "delivered", "p50", "note")
	tb.BindMetrics(ms)
	tb.AddRow("base", "95/100", 301.05, "text")
	tb.AddRow("s1", "100/100", 344.5, "-")
	_ = tb.String()
	_ = tb.String() // second render must not duplicate
	got := ms.Metrics()
	want := []Metric{
		{"base/delivered", 0.95}, {"base/p50", 301.05},
		{"s1/delivered", 1}, {"s1/p50", 344.5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Name != want[i].Name || !closeEnough(got[i].Value, want[i].Value) {
			t.Errorf("metric %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestParseMetricNumber(t *testing.T) {
	t.Parallel()
	cases := []struct {
		tok string
		v   float64
		ok  bool
	}{
		{"166.4", 166.4, true},
		{"2.33e-10", 2.33e-10, true},
		{"40/40", 1, true},
		{"0/40", 0, true},
		{"(3),", 3, true},
		{"-", 0, false},
		{"V2X", 0, false},
		{"10B-T1S", 0, false},
		{"a/b", 0, false},
	}
	for _, c := range cases {
		v, ok := ParseMetricNumber(c.tok)
		if ok != c.ok || (ok && !closeEnough(v, c.v)) {
			t.Errorf("ParseMetricNumber(%q) = %v,%v want %v,%v", c.tok, v, ok, c.v, c.ok)
		}
	}
}
