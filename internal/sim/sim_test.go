package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.Schedule(30, "c", func(*Kernel) { got = append(got, "c") })
	k.Schedule(10, "a", func(*Kernel) { got = append(got, "a") })
	k.Schedule(20, "b", func(*Kernel) { got = append(got, "b") })
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAmongEqualTimestamps(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, "e", func(*Kernel) { got = append(got, i) })
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestKernelAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.Schedule(100, "outer", func(k *Kernel) {
		k.After(50, "inner", func(k *Kernel) { at = k.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Errorf("inner ran at %v, want 150", at)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(100, "x", func(k *Kernel) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.Schedule(50, "past", func(*Kernel) {})
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10, "x", func(*Kernel) { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event still fired")
	}
}

func TestKernelHorizonStopsEarly(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(1000, "late", func(*Kernel) { fired = true })
	if err := k.Run(500); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event past horizon fired")
	}
	if k.Now() != 500 {
		t.Errorf("Now = %v, want horizon 500", k.Now())
	}
}

func TestKernelHorizonKeepsEventPending(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(1000, "late", func(*Kernel) { fired = true })
	if err := k.Run(500); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event past horizon fired early")
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d after bounded Run, want 1 (event must stay queued)", k.Pending())
	}
	if err := k.Run(2000); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event dropped by earlier bounded Run; it must fire once the horizon allows")
	}
	if k.Now() != 1000 {
		t.Errorf("Now = %v, want 1000", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), "e", func(k *Kernel) {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("processed %d events after Stop, want 3", count)
	}
}

func TestKernelEventLimit(t *testing.T) {
	k := NewKernel(1)
	k.SetEventLimit(5)
	var loop func(k *Kernel)
	loop = func(k *Kernel) { k.After(1, "loop", loop) }
	k.After(1, "loop", loop)
	if err := k.Run(0); err == nil {
		t.Error("runaway schedule did not hit event limit")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == r.Uint64() {
		t.Error("zero-seeded RNG appears constant")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values in 1000 draws", len(seen))
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// TestRNGNormFillMatchesNormFloat64 pins the bulk and scalar normal
// generators to one stream: any slicing of the sequence into NormFill
// chunks (odd lengths force the spare cache across call boundaries)
// must reproduce the per-call sequence bit for bit.
func TestRNGNormFillMatchesNormFloat64(t *testing.T) {
	const total = 257
	ref := NewRNG(21)
	want := make([]float64, total)
	for i := range want {
		want[i] = ref.NormFloat64()
	}
	for _, chunks := range [][]int{{total}, {1, 2, 3, 251}, {7, 7, 7, 236}, {256, 1}, {2, 255}} {
		r := NewRNG(21)
		got := make([]float64, 0, total)
		for _, n := range chunks {
			buf := make([]float64, n)
			r.NormFill(buf)
			got = append(got, buf...)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("chunks %v: sample %d = %v, want %v", chunks, i, got[i], want[i])
			}
		}
	}
	// Interleaving scalar and bulk calls continues the same stream.
	r := NewRNG(21)
	got := make([]float64, 0, total)
	for len(got) < total {
		if len(got)%3 == 0 {
			got = append(got, r.NormFloat64())
		} else {
			buf := make([]float64, 5)
			r.NormFill(buf)
			got = append(got, buf...)
		}
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("interleaved: sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	r2 := NewRNG(21)
	r2.NormFill(nil)
	if r2.Draws() != 0 {
		t.Error("NormFill(nil) consumed draws")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(5)
	child := r.Fork()
	// Parent continues a different stream than the child.
	diff := false
	for i := 0; i < 10; i++ {
		if r.Uint64() != child.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Error("forked stream identical to parent")
	}
}

func TestRNGBytesFillsAll(t *testing.T) {
	r := NewRNG(13)
	b := make([]byte, 37)
	r.Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Error("Bytes left buffer all zero")
	}
}

func TestMetricsCountersAndSeries(t *testing.T) {
	m := NewMetrics()
	m.Inc("frames", 3)
	m.Inc("frames", 2)
	if got := m.Counter("frames"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	for i := 1; i <= 100; i++ {
		m.Observe("lat", float64(i))
	}
	s := m.Summarize("lat")
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean < 50 || s.Mean > 51 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	if s.P50 < 49 || s.P50 > 52 {
		t.Errorf("p50 = %v", s.P50)
	}
}

func TestMetricsEmptySummary(t *testing.T) {
	m := NewMetrics()
	if s := m.Summarize("missing"); s.N != 0 {
		t.Errorf("empty series summary N = %d", s.N)
	}
}

func TestMetricsStringStableOrder(t *testing.T) {
	m := NewMetrics()
	m.Inc("b", 1)
	m.Inc("a", 1)
	m.Observe("z", 1)
	m.Observe("y", 1)
	if m.String() != m.String() {
		t.Error("String not stable")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	out := tb.String()
	if out == "" || tb.Rows() != 2 {
		t.Fatalf("unexpected table: %q", out)
	}
	for _, want := range []string{"demo", "alpha", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
