package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Metrics is a registry of named counters, gauges, and sample series.
// It is not safe for concurrent use; simulations are single-goroutine by
// design (the kernel serializes all events).
type Metrics struct {
	counters map[string]int64
	series   map[string][]float64
	tracer   Tracer
	now      func() Time
}

// bindTrace mirrors every Inc and Observe into tr as "counter" and
// "series" trace events stamped with now(). Called by Kernel.SetTracer.
func (m *Metrics) bindTrace(tr Tracer, now func() Time) {
	m.tracer = tr
	m.now = now
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		series:   make(map[string][]float64),
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) {
	m.counters[name] += delta
	if m.tracer != nil {
		m.tracer.Trace(TraceEvent{T: m.now(), Kind: "counter", Name: name, Value: float64(delta)})
	}
}

// Counter returns the value of the named counter (0 if never set).
func (m *Metrics) Counter(name string) int64 { return m.counters[name] }

// Observe appends a sample to the named series.
func (m *Metrics) Observe(name string, v float64) {
	m.series[name] = append(m.series[name], v)
	if m.tracer != nil {
		m.tracer.Trace(TraceEvent{T: m.now(), Kind: "series", Name: name, Value: v})
	}
}

// Series returns the raw samples of the named series.
func (m *Metrics) Series(name string) []float64 { return m.series[name] }

// Summary describes a sample series.
type Summary struct {
	N              int
	Min, Max, Mean float64
	P50, P95, P99  float64
	StdDev         float64
}

// Summarize computes order statistics for the named series. A series
// with no samples yields a zero Summary.
func (m *Metrics) Summarize(name string) Summary {
	s := m.series[name]
	if len(s) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	sum, sumSq := 0.0, 0.0
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		P50:    q(0.50),
		P95:    q(0.95),
		P99:    q(0.99),
		StdDev: math.Sqrt(variance),
	}
}

// CounterNames returns all counter names in sorted order.
func (m *Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns all series names in sorted order.
func (m *Metrics) SeriesNames() []string {
	names := make([]string, 0, len(m.series))
	for k := range m.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders all counters and series summaries, one per line, in a
// stable order suitable for golden comparisons in tests.
func (m *Metrics) String() string {
	var b strings.Builder
	for _, name := range m.CounterNames() {
		fmt.Fprintf(&b, "counter %-40s %d\n", name, m.counters[name])
	}
	for _, name := range m.SeriesNames() {
		s := m.Summarize(name)
		fmt.Fprintf(&b, "series  %-40s n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f\n",
			name, s.N, s.Mean, s.P50, s.P95, s.Max)
	}
	return b.String()
}

// Reset clears all counters and series.
func (m *Metrics) Reset() {
	m.counters = make(map[string]int64)
	m.series = make(map[string][]float64)
}
