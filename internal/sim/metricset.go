package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metric is one named numeric observation published by an experiment.
// It is the typed counterpart of a number appearing in a report: rate
// cells of the form "a/b" are published as the fraction a/b so that
// attack-success and delivery rates aggregate naturally across seeds.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// MetricSet is an ordered collection of typed metrics with the same
// naming discipline the legacy report scraper uses: a name repeated
// within one set gets a "#2", "#3", ... suffix, so metrics align
// one-to-one across seeds of the same experiment. The zero value and
// the nil pointer are both usable; Add on a nil set is a no-op, which
// is the zero-cost path when structured capture is disabled.
type MetricSet struct {
	metrics []Metric
	seen    map[string]int
	tracer  Tracer
	now     func() Time
}

// NewMetricSet returns an empty set.
func NewMetricSet() *MetricSet { return &MetricSet{} }

// BindTrace mirrors every subsequent Add into tr as a "metric" trace
// event, stamped with now() if non-nil.
func (ms *MetricSet) BindTrace(tr Tracer, now func() Time) {
	if ms == nil {
		return
	}
	ms.tracer = tr
	ms.now = now
}

// Add publishes one metric. Repeated names get an ordinal suffix.
func (ms *MetricSet) Add(name string, v float64) {
	if ms == nil {
		return
	}
	if ms.seen == nil {
		ms.seen = make(map[string]int)
	}
	ms.seen[name]++
	if n := ms.seen[name]; n > 1 {
		name += "#" + strconv.Itoa(n)
	}
	ms.metrics = append(ms.metrics, Metric{Name: name, Value: v})
	if ms.tracer != nil {
		var t Time
		if ms.now != nil {
			t = ms.now()
		}
		ms.tracer.Trace(TraceEvent{T: t, Kind: "metric", Name: name, Value: v})
	}
}

// Len reports the number of metrics published so far.
func (ms *MetricSet) Len() int {
	if ms == nil {
		return 0
	}
	return len(ms.metrics)
}

// Metrics returns the published metrics in publication order.
func (ms *MetricSet) Metrics() []Metric {
	if ms == nil {
		return nil
	}
	return append([]Metric(nil), ms.metrics...)
}

// WriteJSON writes the metrics as a JSON array, one stable-ordered
// object per metric, indented for readability. Output is deterministic.
func (ms *MetricSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	m := ms.Metrics()
	if m == nil {
		m = []Metric{}
	}
	return enc.Encode(m)
}

// WriteCSV writes the metrics as "name,value" CSV rows with a header.
// Names containing commas or quotes are quoted per RFC 4180.
func (ms *MetricSet) WriteCSV(w io.Writer) error {
	return WriteMetricsCSV(w, ms.Metrics())
}

// WriteMetricsCSV writes an already-collected metric slice as the same
// "name,value" CSV document MetricSet.WriteCSV produces.
func WriteMetricsCSV(w io.Writer, metrics []Metric) error {
	if _, err := io.WriteString(w, "name,value\n"); err != nil {
		return err
	}
	for _, m := range metrics {
		name := m.Name
		if strings.ContainsAny(name, ",\"\n") {
			name = `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
		}
		if _, err := fmt.Fprintf(w, "%s,%s\n", name, FormatJSONNumber(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// MetricsEqual reports exact equality of two metric streams — same
// names, same order, bit-identical values. The determinism contract
// promises bit-identical metrics, not approximate ones, so this is the
// one shared definition of "the same stream" used by the campaign
// recheck, the result cache, and the daemon cross-checks.
func MetricsEqual(a, b []Metric) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatJSONNumber renders v the way encoding/json does, so CSV and
// JSON exports of the same metric are textually consistent.
func FormatJSONNumber(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// ParseMetricNumber parses a report token as a metric value: a plain
// float ("166.4", "2.33e-10") or an integer rate "a/b" (returned as the
// fraction a/b). Surrounding punctuation from prose ("(", "),", "×",
// ...) is stripped; tokens that are not purely numeric ("V2X",
// "10B-T1S", "-") are rejected. This is the single definition shared by
// the typed table capture and the legacy report scraper, so both paths
// agree on what counts as a number.
func ParseMetricNumber(tok string) (float64, bool) {
	tok = strings.Trim(tok, "(){}[],;:×%")
	if tok == "" {
		return 0, false
	}
	if num, den, ok := strings.Cut(tok, "/"); ok {
		a, errA := strconv.ParseInt(num, 10, 64)
		b, errB := strconv.ParseInt(den, 10, 64)
		if errA != nil || errB != nil || b <= 0 {
			return 0, false
		}
		return float64(a) / float64(b), true
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
