// Deterministic intra-experiment parallelism: a bounded, shareable
// worker budget (WorkerPool) and a replicate fan-out runner
// (WorkerPool.Replicates) that is bit-identical to the serial loop it
// replaces, by construction:
//
//  1. The per-replicate RNGs are forked from the parent *serially, in
//     index order*, before any work is dispatched — so the parent
//     stream is consumed exactly as a serial fork-per-iteration loop
//     would consume it, and every replicate sees the same stream
//     regardless of scheduling.
//  2. Replicates only write to index-addressed state; Replicates joins
//     every replicate before returning, so the caller reads results
//     (and renders tables) in index order no matter which worker ran
//     what.
//
// A single pool can be shared across nesting levels: the campaign
// runner sizes one pool to its -jobs budget, each cell holds one slot
// while it runs, and the replicate fan-out inside a cell borrows only
// slots that are currently idle (TryAcquire). When the grid drains down
// to one straggler cell, the idle cell workers' slots are picked up by
// that cell's replicate loops — the two-level parallelism shares one
// global budget instead of oversubscribing. See docs/PERFORMANCE.md,
// "Two-level parallelism".
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerPool is a bounded budget of execution slots shared by every
// level of parallelism that references it. The zero value is not
// usable; construct with NewWorkerPool. A nil *WorkerPool is valid
// everywhere and means "no extra workers": Replicates degrades to the
// plain serial loop.
type WorkerPool struct {
	slots chan struct{}
}

// NewWorkerPool returns a pool with n slots (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Size reports the pool's total slot budget.
func (p *WorkerPool) Size() int {
	if p == nil {
		return 1
	}
	return cap(p.slots)
}

// Acquire blocks until a slot is free and claims it. Callers that hold
// a slot for the duration of a work item (e.g. one campaign cell) make
// the budget global: nested fan-out can only borrow what is idle.
// A nil pool is a no-op.
func (p *WorkerPool) Acquire() {
	if p == nil {
		return
	}
	<-p.slots
}

// TryAcquire claims a slot only if one is immediately free. A nil pool
// always reports false.
func (p *WorkerPool) TryAcquire() bool {
	if p == nil {
		return false
	}
	select {
	case <-p.slots:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by Acquire or TryAcquire. A nil pool
// is a no-op.
func (p *WorkerPool) Release() {
	if p == nil {
		return
	}
	p.slots <- struct{}{}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *WorkerPool
)

// DefaultPool returns the process-wide pool, sized to GOMAXPROCS at
// first use. It backs entry points that have no caller-provided budget
// (e.g. core.RunExperiment); callers that coordinate several levels of
// parallelism should size their own pool instead.
func DefaultPool() *WorkerPool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewWorkerPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}

// Replicates runs n independent Monte-Carlo replicates of fn, fanning
// them out over whatever slots of the pool are currently idle, and
// returns only after every replicate has finished ("join before any
// table row is written"). The caller's own slot is implicit: the
// calling goroutine always executes replicates itself, so progress
// never depends on borrowing.
//
// Determinism contract: fn(i, r) must draw randomness only from r (the
// i-th serial fork of rng) and must confine writes to state owned by
// index i. Under that contract the observable output is bit-identical
// for every pool size, including nil. The first error by replicate
// index is returned; all n replicates run regardless, so the
// side-effect surface does not depend on scheduling.
func (p *WorkerPool) Replicates(n int, rng *RNG, fn func(i int, rng *RNG) error) error {
	if n <= 0 {
		return nil
	}
	// Serial pre-fork in index order: the parent stream is consumed
	// exactly as the serial fork-per-iteration loop consumed it.
	rngs := make([]*RNG, n)
	for i := range rngs {
		rngs[i] = rng.Fork()
	}

	// Borrow idle slots, never more than the n-1 replicates the calling
	// goroutine won't need to run itself.
	extra := 0
	for extra < n-1 && p.TryAcquire() {
		extra++
	}
	if extra == 0 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i, rngs[i]); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i, rngs[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			defer p.Release()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
