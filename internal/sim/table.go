package sim

import (
	"fmt"
	"strings"
)

// Table is a tiny text-table builder used by the experiment harness to
// print figure/table reproductions in a stable, diffable format. A
// table bound to a MetricSet additionally publishes every numeric cell
// as a typed metric when it is first rendered, named
// "<row label>/<column header>" — the same naming the campaign report
// scraper derives from the rendered text, so the typed and scraped
// metric streams align.
type Table struct {
	title     string
	headers   []string
	rows      [][]string
	ms        *MetricSet
	published bool
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// BindMetrics attaches ms; on first render the table publishes its
// numeric cells into it. A nil ms disables publication.
func (t *Table) BindMetrics(ms *MetricSet) { t.ms = ms }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// publish emits every numeric cell of every row as a typed metric, in
// row-major order, exactly once. Values are taken from the rendered
// cell text via ParseMetricNumber, so the published value is precisely
// the number the report displays (and the one the legacy scraper would
// recover).
func (t *Table) publish() {
	if t.ms == nil || t.published {
		return
	}
	t.published = true
	for _, row := range t.rows {
		if len(row) < 2 {
			continue
		}
		label := row[0]
		for i := 1; i < len(row) && i < len(t.headers); i++ {
			if v, ok := ParseMetricNumber(row[i]); ok {
				t.ms.Add(label+"/"+t.headers[i], v)
			}
		}
	}
}

// String renders the table with aligned columns. If the table is bound
// to a MetricSet, the first render publishes the numeric cells.
func (t *Table) String() string {
	t.publish()
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
