package sim

import (
	"fmt"
	"strings"
)

// Table is a tiny text-table builder used by the experiment harness to
// print figure/table reproductions in a stable, diffable format.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
