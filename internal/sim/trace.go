package sim

import (
	"encoding/json"
	"io"
)

// TraceEvent is one structured observation of simulation internals. All
// timestamps are virtual (kernel time, nanoseconds); a trace therefore
// contains no wall-clock data and is byte-identical across runs with the
// same seed — traces are part of the deterministic surface.
//
// Kind values and their populated fields:
//
//	run-start  Name=experiment id, Value=seed
//	run-end    Name=experiment id, Draws=total RNG draws
//	schedule   T=now, Name=event name, Seq=event sequence, At=due time
//	exec       T=due time, Name=event name, Seq, Draws=cumulative kernel
//	           RNG draw count after the handler ran (the RNG checkpoint)
//	cancel     T=now, Name=event name, Seq
//	counter    T=now, Name=counter name, Value=delta
//	series     T=now, Name=series name, Value=sample
//	metric     T=now, Name=published metric name, Value=metric value
//	rng        T=now, Draws=cumulative draw count checkpoint
//
// Zero-valued fields are omitted from the JSONL encoding; an absent
// field reads as 0.
type TraceEvent struct {
	T     Time    `json:"t"`
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	Seq   int     `json:"seq,omitempty"`
	At    Time    `json:"at,omitempty"`
	Value float64 `json:"value,omitempty"`
	Draws uint64  `json:"draws,omitempty"`
}

// Tracer receives trace events. Implementations must be cheap: the
// kernel emits one event per scheduled and per executed event. A nil
// Tracer everywhere means tracing is disabled and costs one pointer
// comparison per hook (the nil-tracer fast path).
type Tracer interface {
	Trace(ev TraceEvent)
}

// RingTracer retains the most recent Cap events in memory. It is the
// cheap always-on option: attach it to a kernel and inspect the tail
// after a failure without paying for serialization.
type RingTracer struct {
	buf     []TraceEvent
	next    int
	wrapped bool
	dropped int
}

// NewRingTracer returns a tracer retaining the last cap events.
func NewRingTracer(cap int) *RingTracer {
	if cap < 1 {
		cap = 1
	}
	return &RingTracer{buf: make([]TraceEvent, cap)}
}

// Trace records ev, overwriting the oldest event when full.
func (r *RingTracer) Trace(ev TraceEvent) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the retained events in arrival order.
func (r *RingTracer) Events() []TraceEvent {
	if !r.wrapped {
		return append([]TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events were overwritten after the ring
// filled.
func (r *RingTracer) Dropped() int { return r.dropped }

// JSONLTracer streams every event to w as one JSON object per line
// (JSON Lines). Encoding uses the TraceEvent field order, so the byte
// stream is deterministic. Write errors are sticky: the first one is
// retained, subsequent events are dropped, and Err reports it.
type JSONLTracer struct {
	w   io.Writer
	n   int
	err error
}

// NewJSONLTracer returns a tracer streaming to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: w}
}

// Trace encodes ev as one JSON line.
func (t *JSONLTracer) Trace(ev TraceEvent) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Count reports the number of events written.
func (t *JSONLTracer) Count() int { return t.n }

// Err returns the first write or encoding error, if any.
func (t *JSONLTracer) Err() error { return t.err }

// MultiTracer fans events out to several tracers.
type MultiTracer []Tracer

// Trace forwards ev to every non-nil tracer.
func (m MultiTracer) Trace(ev TraceEvent) {
	for _, t := range m {
		if t != nil {
			t.Trace(ev)
		}
	}
}
