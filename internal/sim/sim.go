// Package sim provides a deterministic discrete-event simulation kernel
// used by every substrate in autosec: a virtual clock, a priority event
// queue, a seeded pseudo-random source, and metric recorders.
//
// Determinism is a hard requirement: two runs with the same seed and the
// same event schedule must produce identical results, because the
// experiment harness compares attack success rates across defence
// configurations. No simulation path may consult wall-clock time.
//
// Every registry experiment runs on this kernel; the structured trace
// facility (Tracer, TraceEvent) is documented in docs/OBSERVABILITY.md.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual simulation timestamp measured in nanoseconds from the
// start of the run. It is deliberately a distinct type from time.Time so
// that wall-clock values cannot leak into simulation logic.
type Time int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts the virtual timestamp into a time.Duration for
// human-readable reporting only.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string {
	return time.Duration(t).String()
}

// Event is a unit of scheduled work. Run executes at the event's due
// time with the kernel as argument so handlers can schedule follow-ups.
type Event struct {
	At   Time
	Name string
	Run  func(k *Kernel)

	seq int // tiebreak: FIFO among equal timestamps
	idx int // heap index
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     int
	rng     *RNG
	metrics *Metrics
	stopped bool
	limit   int // safety cap on processed events; 0 = unlimited
	handled int
	tracer  Tracer
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:     NewRNG(seed),
		metrics: NewMetrics(),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Metrics returns the kernel's metric registry.
func (k *Kernel) Metrics() *Metrics { return k.metrics }

// SetEventLimit caps the number of events the kernel will process before
// Run returns with an error; a guard against runaway schedules in tests.
func (k *Kernel) SetEventLimit(n int) { k.limit = n }

// SetTracer attaches a structured tracer. The kernel then emits one
// event per Schedule, per executed event (carrying the cumulative RNG
// draw count as a determinism checkpoint), and per Cancel, and the
// metric registry mirrors every Inc/Observe. A nil tracer disables all
// of it; the disabled cost is a single nil comparison per hook.
func (k *Kernel) SetTracer(t Tracer) {
	k.tracer = t
	k.metrics.bindTrace(t, k.Now)
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (k *Kernel) Tracer() Tracer { return k.tracer }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling in
// the past is an error that panics: it always indicates a logic bug in a
// protocol model, never a recoverable condition.
func (k *Kernel) Schedule(at Time, name string, fn func(k *Kernel)) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, at, k.now))
	}
	e := &Event{At: at, Name: name, Run: fn, seq: k.seq}
	k.seq++
	heap.Push(&k.queue, e)
	if k.tracer != nil {
		k.tracer.Trace(TraceEvent{T: k.now, Kind: "schedule", Name: name, Seq: e.seq, At: at})
	}
	return e
}

// After enqueues fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, name string, fn func(k *Kernel)) *Event {
	return k.Schedule(k.now+d, name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(k.queue) || k.queue[e.idx] != e {
		return
	}
	heap.Remove(&k.queue, e.idx)
	e.idx = -1
	if k.tracer != nil {
		k.tracer.Trace(TraceEvent{T: k.now, Kind: "cancel", Name: e.Name, Seq: e.seq})
	}
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run processes events in timestamp order until the queue is empty, the
// horizon is exceeded, or Stop is called. A horizon of 0 means no bound.
// Events beyond the horizon stay queued, so a later Run with a larger
// horizon still fires them.
func (k *Kernel) Run(horizon Time) error {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		// Peek before popping: an event past the horizon must remain
		// pending, not be silently dropped.
		if horizon > 0 && k.queue[0].At > horizon {
			k.now = horizon
			return nil
		}
		e := heap.Pop(&k.queue).(*Event)
		e.idx = -1
		k.now = e.At
		e.Run(k)
		k.handled++
		if k.tracer != nil {
			k.tracer.Trace(TraceEvent{T: k.now, Kind: "exec", Name: e.Name, Seq: e.seq, Draws: k.rng.Draws()})
		}
		if k.limit > 0 && k.handled >= k.limit {
			return fmt.Errorf("sim: event limit %d reached at %v (last %q)", k.limit, k.now, e.Name)
		}
	}
	return nil
}

// Pending reports the number of events still queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// Processed reports the number of events handled so far.
func (k *Kernel) Processed() int { return k.handled }

// RNG is a deterministic pseudo-random source (splitmix64 core with a
// xorshift finisher). It is intentionally independent from math/rand so
// that library-version changes can never silently alter experiment
// outputs.
type RNG struct {
	state uint64
	draws uint64
	// Box–Muller produces normals in pairs; the second of each pair is
	// cached here so consecutive NormFloat64 calls consume one pair of
	// uniforms instead of two. Part of the seeded stream state: the
	// normal sequence is a pure function of the seed either way.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped to a
// fixed non-zero constant so the zero seed is still usable.
func NewRNG(seed int64) *RNG {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &RNG{state: s}
}

// Draws reports the number of 64-bit words drawn so far. It is the
// cheapest possible determinism checkpoint: two runs of the same seed
// must show identical draw counts at identical virtual times, so a
// divergence pins the first event that consumed randomness differently.
func (r *RNG) Draws() uint64 { return r.draws }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.draws++
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal sample via Box–Muller. Each
// pair of uniforms yields two normals (radius·cos, then radius·sin);
// the sine partner is cached and returned by the next call, halving the
// Sqrt/Log/trig work per sample on noise-heavy paths.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	r.spare, r.hasSpare = rad*sin, true
	return rad * cos
}

// NormFill fills dst with standard normal samples, drawing exactly the
// stream successive NormFloat64 calls would produce — bulk callers
// (e.g. per-sample channel noise) switch between the two freely without
// perturbing determinism. The win over a NormFloat64 loop is keeping
// the pair generation in one tight loop: no per-sample call overhead or
// spare-cache round trip.
func (r *RNG) NormFill(dst []float64) {
	i := 0
	if r.hasSpare && len(dst) > 0 {
		r.hasSpare = false
		dst[0] = r.spare
		i = 1
	}
	for ; i+1 < len(dst); i += 2 {
		u1 := r.Float64()
		for u1 == 0 {
			u1 = r.Float64()
		}
		u2 := r.Float64()
		rad := math.Sqrt(-2 * math.Log(u1))
		sin, cos := math.Sincos(2 * math.Pi * u2)
		dst[i] = rad * cos
		dst[i+1] = rad * sin
	}
	if i < len(dst) {
		dst[i] = r.NormFloat64() // odd tail: partner goes to the spare
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// Fork derives an independent generator from this one, for components
// that need their own stream without perturbing the parent sequence.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0xD1B54A32D192ED03}
}
