package ext

import (
	"sort"
	"strings"
)

// SuggestNames returns up to max candidates closest to the misspelled
// name by Damerau–Levenshtein distance, nearest first, ties in slice
// order. Candidates further than half their length away are omitted:
// past that point the suggestion is noise, not help. This is the one
// did-you-mean kernel of the repo — registry lookups of every kind,
// the experiment/scenario id resolvers (via core.SuggestIDs), and the
// daemon's request validation all route through it.
func SuggestNames(name string, candidates []string, max int) []string {
	type cand struct {
		id   string
		dist int
		pos  int
	}
	var cands []cand
	for pos, cid := range candidates {
		d := editDistance(name, cid)
		limit := len(cid) / 2
		if limit < 2 {
			limit = 2
		}
		if d <= limit || strings.HasPrefix(cid, name) {
			cands = append(cands, cand{cid, d, pos})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// editDistance computes the Damerau–Levenshtein distance (insertions,
// deletions, substitutions, adjacent transpositions) between a and b.
func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			min := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < min {
				min = v // insertion
			}
			if v := prev[j-1] + cost; v < min {
				min = v // substitution
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < min {
					min = v // transposition
				}
			}
			cur[j] = min
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}
