package demo

import (
	"strings"
	"testing"

	"autosec/internal/core"
	"autosec/internal/scenario"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
)

// TestDropInsResolveByName pins the one-file drop-in property: with
// this package linked in, both demo extensions resolve through the
// same registries the built-ins use.
func TestDropInsResolveByName(t *testing.T) {
	entry, err := suites.Lookup("noop-mac")
	if err != nil {
		t.Fatalf("noop-mac not registered: %v", err)
	}
	if entry.Props.Replay || entry.Props.Conf || !entry.Props.Auth {
		t.Errorf("noop-mac properties = %+v, want auth-only", entry.Props)
	}
	if _, err := scenario.Attacks.Lookup("jam"); err != nil {
		t.Fatalf("jam not registered: %v", err)
	}
}

// TestDropInsStayOutOfCanonicalLists pins the goldens-safety contract:
// demo registrations claim no "core"/"table1" capability, so the
// canonical ordered lists that feed byte-pinned outputs are exactly
// what they are without this package.
func TestDropInsStayOutOfCanonicalLists(t *testing.T) {
	for _, e := range suites.Registry() {
		if e.Name == "noop-mac" {
			t.Error("noop-mac leaked into the Table I registry")
		}
	}
	for _, name := range scenario.AttackTypes() {
		if name == "jam" {
			t.Error("jam leaked into the canonical attack-type list")
		}
	}
	m, ok := suites.Suites.Meta("noop-mac")
	if !ok || len(m.Caps) != 0 {
		t.Errorf("noop-mac caps = %v, want none (ok=%v)", m.Caps, ok)
	}
}

// TestNoopMACRoundTrip exercises the demo suite directly: protect then
// verify round-trips, tampering fails, and — the deliberate weakness —
// anyone can mint a valid tag without a key.
func TestNoopMACRoundTrip(t *testing.T) {
	s, err := newNoopMAC(secchan.Params{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("zonal telemetry frame")
	wire, err := s.Protect(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(payload)+tagLen {
		t.Fatalf("wire length %d, want payload+%d", len(wire), tagLen)
	}
	got, err := s.Verify(wire)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("verify = %q, %v", got, err)
	}
	tampered := append([]byte(nil), wire...)
	tampered[0] ^= 0x01
	if _, err := s.Verify(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered wire verified: %v", err)
	}
	if _, err := s.Verify(wire[:tagLen-1]); err == nil {
		t.Error("short wire verified")
	}

	// The unkeyed weakness: a fresh suite instance (no shared state, no
	// key) verifies another instance's wire.
	other, _ := newNoopMAC(secchan.Params{})
	if _, err := other.Verify(wire); err != nil {
		t.Errorf("unkeyed tag not verifiable cross-instance: %v", err)
	}
}

// TestDemoScenariosLoadAndCompile walks the package's own scenario
// corpus through the standard load/compile path — the same path the
// daemon takes at startup when pointed at this directory.
func TestDemoScenariosLoadAndCompile(t *testing.T) {
	specs, err := scenario.LoadDir("scenario")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("loaded %d demo scenarios, want 2", len(specs))
	}
	for _, sp := range specs {
		e, err := scenario.Compile(sp)
		if err != nil {
			t.Fatalf("compile %s: %v", sp.Name, err)
		}
		out, err := e.Run(core.NewRunContext(42))
		if err != nil {
			t.Fatalf("run %s: %v", sp.Name, err)
		}
		if !strings.Contains(out, sp.Name) {
			t.Errorf("%s report does not name the scenario:\n%s", sp.Name, out)
		}
	}
}
