// Package demo is the worked example of the extension kernel's
// "adding one is one file" property: this single file registers a
// drop-in channel suite ("noop-mac") and a drop-in attack behaviour
// ("jam"), and a binary that blank-imports the package can stage both
// from a scenario.ini by name — CLI, daemon, and fleet included.
//
// Neither registration claims the "core" or "table1" capability, so
// the canonical lists feeding the byte-pinned goldens (Table I rows,
// AttackTypes, the corpus generator's vocabulary) are unchanged by
// linking this package in; only the extension-set fingerprint moves,
// which is exactly what the fleet handshake checks.
//
// The suite is deliberately weak — an unkeyed checksum with no replay
// protection — so demo scenarios show the failure modes the real
// Table I suites exist to prevent.
package demo

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/ext"
	"autosec/internal/scenario"
	"autosec/internal/secchan"
	"autosec/internal/secchan/suites"
)

func init() {
	suites.Suites.Register(ext.Meta{
		Name:        "noop-mac",
		Description: "drop-in demo: unkeyed FNV tag, no confidentiality, no replay window",
		Paper:       "none — extension demo (docs/EXTENSIONS.md)",
		Rank:        100,
	}, secchan.Entry{
		Name:  "noop-mac",
		Layer: "7 application",
		Media: "any",
		Paper: "none — extension demo",
		Props: secchan.Properties{Auth: true, Conf: false, Replay: false},
		New:   newNoopMAC,
	})

	scenario.Attacks.Register(ext.Meta{
		Name:        "jam",
		Description: "drop-in demo: blind RF jamming — the victim's frames never arrive",
		Paper:       "none — extension demo (docs/EXTENSIONS.md)",
		Rank:        100,
	}, scenario.AttackSpec{
		New: func(*scenario.Spec) scenario.AttackBehaviour { return jamAttack{} },
	})
}

// tagLen is the demo suite's checksum size on the wire.
const tagLen = 4

// noopMAC is the demo suite: payload ‖ FNV-1a(payload). Anyone can
// forge a valid tag and any old frame re-verifies, which is the point:
// its scenarios light up the accept/replay boundaries immediately.
type noopMAC struct {
	stats secchan.Stats
}

func newNoopMAC(secchan.Params) (secchan.Suite, error) { return &noopMAC{}, nil }

func (n *noopMAC) Name() string                   { return "noop-mac" }
func (n *noopMAC) Layer() string                  { return "7 application" }
func (n *noopMAC) Media() string                  { return "any" }
func (n *noopMAC) OverheadBytes() int             { return tagLen }
func (n *noopMAC) Properties() secchan.Properties { return secchan.Properties{Auth: true} }
func (n *noopMAC) Stats() *secchan.Stats          { return &n.stats }

func (n *noopMAC) Protect(payload []byte) ([]byte, error) {
	wire := make([]byte, len(payload)+tagLen)
	copy(wire, payload)
	binary.BigEndian.PutUint32(wire[len(payload):], fnv32(payload))
	n.stats.RecordProtect(len(payload), len(wire))
	return wire, nil
}

func (n *noopMAC) Verify(wire []byte) ([]byte, error) {
	if len(wire) < tagLen {
		n.stats.RecordVerify(false)
		return nil, fmt.Errorf("noop-mac: wire shorter than its %d-byte tag", tagLen)
	}
	payload := wire[:len(wire)-tagLen]
	if binary.BigEndian.Uint32(wire[len(payload):]) != fnv32(payload) {
		n.stats.RecordVerify(false)
		return nil, fmt.Errorf("noop-mac: checksum mismatch")
	}
	n.stats.RecordVerify(true)
	return payload, nil
}

func fnv32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// jamAttack drops the victim's frame on every attacked step: the
// receiver sees nothing, and the IDS taps see one attacker
// transmission (the jamming burst) in its place.
type jamAttack struct{}

func (jamAttack) Deliver(st *scenario.TrafficStep) bool {
	st.ObserveAttacker(st.Now)
	return true
}

func (jamAttack) Inject(*scenario.TrafficStep) {}
