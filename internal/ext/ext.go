// Package ext is the repo-wide extension registry kernel: every
// pluggable unit of the simulation — channel suites (Table I),
// scenario attack behaviours, kill-chain defences (Fig. 8), IDS
// detectors (§VIII), scenario-generator coverage dimensions, and the
// experiment catalog itself — registers here under a (kind, name) key
// with uniform metadata. The daemon (`GET /api/v1/extensions`), the
// CLI (`avsec ext`), and the docs layer all render from this one
// catalog, and the fleet health handshake folds Fingerprint() into its
// compatibility check, so two workers whose binaries register
// different extension sets refuse to form a fleet.
//
// Adding an extension is a one-file drop-in: register it from an init
// function and blank-import the file's package from the binaries that
// should carry it (internal/ext/demo is the worked example; see
// docs/EXTENSIONS.md).
//
// Determinism contract: iteration order is (Rank, Name) — stable under
// any registration interleaving, including concurrent init — and the
// "core" capability marks the built-in entries whose canonical lists
// (Table I rows, attack-type order, defence order) feed the
// byte-pinned goldens and the corpus generator. Drop-in extensions
// never enter those lists, so registering one cannot move a golden
// byte.
package ext

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CapCore marks a built-in entry: one whose membership in canonical
// ordered lists (Table I rows, AttackTypes, DefenceNames) is part of
// the byte-pinned output contract. Drop-in extensions must not claim
// it.
const CapCore = "core"

// Meta is the uniform metadata every registered extension carries.
// The JSON shape is shared by `avsec ext -json` and the daemon's
// GET /api/v1/extensions, which is what keeps the two listings
// identical by construction.
type Meta struct {
	// Kind is the registry's kind; Register stamps it, so literals in
	// registration calls may leave it empty.
	Kind string `json:"kind"`
	// Name is the lookup key, unique within the kind.
	Name string `json:"name"`
	// Description is the one-line summary `avsec ext` prints.
	Description string `json:"description,omitempty"`
	// Paper cites the paper artefact the extension models (Table I row,
	// figure, section).
	Paper string `json:"paper,omitempty"`
	// Caps are free-form capability flags ("core", "table1", "batch",
	// "rng", ...) the shim layers filter on.
	Caps []string `json:"caps,omitempty"`
	// Rank orders iteration: lower first, ties broken by Name. Built-ins
	// use it to preserve canonical paper order; drop-ins default to 0
	// and land in name order among themselves.
	Rank int `json:"rank,omitempty"`
}

// Has reports whether the entry claims a capability flag.
func (m Meta) Has(cap string) bool {
	for _, c := range m.Caps {
		if c == cap {
			return true
		}
	}
	return false
}

// entry pairs metadata with the registered value.
type entry[T any] struct {
	meta  Meta
	value T
}

// Registry is one kind's typed extension table. The zero value is not
// usable; construct with NewRegistry, which also enters the registry
// into the package-level kinds catalog. All methods are safe for
// concurrent use.
type Registry[T any] struct {
	kind    string
	mu      sync.RWMutex
	entries map[string]entry[T]
}

// lister is the type-erased view the kinds catalog keeps per registry.
type lister interface {
	kindName() string
	metas() []Meta
}

var (
	kindsMu sync.RWMutex
	kinds   = map[string]lister{}
)

// NewRegistry creates the registry for one extension kind and enters
// it into the global kinds catalog. Two registries for the same kind
// are a wiring bug and panic at init time.
func NewRegistry[T any](kind string) *Registry[T] {
	if kind == "" {
		panic("ext: NewRegistry with empty kind")
	}
	r := &Registry[T]{kind: kind, entries: map[string]entry[T]{}}
	kindsMu.Lock()
	defer kindsMu.Unlock()
	if _, dup := kinds[kind]; dup {
		panic(fmt.Sprintf("ext: duplicate registry for kind %q", kind))
	}
	kinds[kind] = r
	return r
}

// Kind returns the registry's kind name.
func (r *Registry[T]) Kind() string { return r.kind }

func (r *Registry[T]) kindName() string { return r.kind }

// Register enters one extension. Empty names and name collisions are
// wiring bugs, caught at init time by panic — a collision silently
// shadowing a built-in would corrupt the byte-determinism contract,
// so it must never load.
func (r *Registry[T]) Register(m Meta, v T) {
	if m.Name == "" {
		panic(fmt.Sprintf("ext: register %s with empty name", r.kind))
	}
	m.Kind = r.kind
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[m.Name]; dup {
		panic(fmt.Sprintf("ext: duplicate %s %q", r.kind, m.Name))
	}
	r.entries[m.Name] = entry[T]{meta: m, value: v}
}

// Lookup resolves a name to its registered value. Unknown names error
// with did-you-mean suggestions and the full vocabulary, so every
// declarative caller (DSL, CLI, HTTP API) is self-diagnosing.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		return e.value, nil
	}
	var zero T
	names := r.Names()
	msg := fmt.Sprintf("unknown %s %q", r.kind, name)
	if sug := SuggestNames(name, names, 3); len(sug) > 0 {
		msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(sug, ", "))
	}
	return zero, fmt.Errorf("%s — known: %s", msg, strings.Join(names, ", "))
}

// Get returns the value and metadata of a registered name without the
// suggestion machinery.
func (r *Registry[T]) Get(name string) (T, Meta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e.value, e.meta, ok
}

// Meta returns a registered entry's metadata.
func (r *Registry[T]) Meta(name string) (Meta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e.meta, ok
}

// Len reports how many extensions the kind holds.
func (r *Registry[T]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Metas lists every entry's metadata in (Rank, Name) order — the
// deterministic iteration order of the kind.
func (r *Registry[T]) Metas() []Meta {
	r.mu.RLock()
	out := make([]Meta, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.meta)
	}
	r.mu.RUnlock()
	sortMetas(out)
	return out
}

func (r *Registry[T]) metas() []Meta { return r.Metas() }

// Names lists every registered name in (Rank, Name) order.
func (r *Registry[T]) Names() []string {
	return metaNames(r.Metas())
}

// NamesWith lists the names of entries claiming a capability, in
// (Rank, Name) order — how the shim layers derive their canonical
// built-in lists (e.g. Table I rows are NamesWith("table1")).
func (r *Registry[T]) NamesWith(cap string) []string {
	all := r.Metas()
	out := make([]string, 0, len(all))
	for _, m := range all {
		if m.Has(cap) {
			out = append(out, m.Name)
		}
	}
	return out
}

// Each calls fn for every entry in (Rank, Name) order.
func (r *Registry[T]) Each(fn func(Meta, T)) {
	metas := r.Metas()
	r.mu.RLock()
	es := make([]entry[T], 0, len(metas))
	for _, m := range metas {
		es = append(es, r.entries[m.Name])
	}
	r.mu.RUnlock()
	for _, e := range es {
		fn(e.meta, e.value)
	}
}

func sortMetas(ms []Meta) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Rank != ms[j].Rank {
			return ms[i].Rank < ms[j].Rank
		}
		return ms[i].Name < ms[j].Name
	})
}

func metaNames(ms []Meta) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

// Kinds lists every registered kind, sorted.
func Kinds() []string {
	kindsMu.RLock()
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	kindsMu.RUnlock()
	sort.Strings(out)
	return out
}

// All lists every extension of every kind: kinds sorted, entries in
// each kind's (Rank, Name) order. This is the one catalog `avsec ext`
// and `GET /api/v1/extensions` both render, which is what makes their
// listings identical by construction.
func All() []Meta {
	kindsMu.RLock()
	ls := make([]lister, 0, len(kinds))
	for _, l := range kinds {
		ls = append(ls, l)
	}
	kindsMu.RUnlock()
	sort.Slice(ls, func(i, j int) bool { return ls[i].kindName() < ls[j].kindName() })
	var out []Meta
	for _, l := range ls {
		out = append(out, l.metas()...)
	}
	return out
}

// CatalogDoc is the catalog document `avsec ext -json` emits and the
// daemon serves verbatim at GET /api/v1/extensions. Both render it
// from Catalog(), which is what keeps the two listings identical by
// construction. Fingerprint always digests the FULL extension set,
// even when a caller narrows Extensions to one kind for display.
type CatalogDoc struct {
	Fingerprint string `json:"fingerprint"`
	Extensions  []Meta `json:"extensions"`
}

// Catalog returns the full extension catalog document.
func Catalog() CatalogDoc {
	metas := All()
	if metas == nil {
		metas = []Meta{}
	}
	return CatalogDoc{Fingerprint: Fingerprint(), Extensions: metas}
}

// Fingerprint digests the full extension set — kind, name, and
// capability flags of every entry, in catalog order — as a hex
// SHA-256. Two binaries fingerprint equal exactly when they register
// the same extension sets; the fleet health handshake compares it so
// a worker missing a drop-in extension is refused before it can fail
// mid-campaign on an unknown name.
func Fingerprint() string {
	h := sha256.New()
	for _, m := range All() {
		fmt.Fprintf(h, "%s/%s[%s]\n", m.Kind, m.Name, strings.Join(m.Caps, ","))
	}
	return hex.EncodeToString(h.Sum(nil))
}
