package ext

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// newTestRegistry builds a registry without entering the global kinds
// catalog, so tests can create as many as they like without tripping
// the duplicate-kind panic.
func newTestRegistry[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, entries: map[string]entry[T]{}}
}

func TestRegisterLookup(t *testing.T) {
	t.Parallel()
	r := newTestRegistry[int]("widget")
	r.Register(Meta{Name: "alpha", Description: "first", Paper: "§I", Caps: []string{CapCore}}, 1)
	r.Register(Meta{Name: "beta"}, 2)

	v, err := r.Lookup("alpha")
	if err != nil || v != 1 {
		t.Fatalf("Lookup(alpha) = %v, %v", v, err)
	}
	m, ok := r.Meta("alpha")
	if !ok || m.Kind != "widget" || m.Paper != "§I" || !m.Has(CapCore) {
		t.Fatalf("Meta(alpha) = %+v, %v — want kind stamped and caps kept", m, ok)
	}
	if _, _, ok := r.Get("gamma"); ok {
		t.Fatal("Get(gamma) found an unregistered entry")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestLookupUnknownSuggests(t *testing.T) {
	t.Parallel()
	r := newTestRegistry[string]("suite")
	r.Register(Meta{Name: "SECOC"}, "")
	r.Register(Meta{Name: "MACsec"}, "")
	_, err := r.Lookup("SECOD")
	if err == nil {
		t.Fatal("Lookup(SECOD) succeeded")
	}
	msg := err.Error()
	for _, want := range []string{`unknown suite "SECOD"`, "did you mean SECOC", "known: "} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestCollisionPanics(t *testing.T) {
	t.Parallel()
	r := newTestRegistry[int]("widget")
	r.Register(Meta{Name: "alpha"}, 1)
	mustPanic(t, "duplicate name", func() { r.Register(Meta{Name: "alpha"}, 2) })
	mustPanic(t, "empty name", func() { r.Register(Meta{}, 3) })
}

func TestDuplicateKindPanics(t *testing.T) {
	t.Parallel()
	NewRegistry[int]("ext-test-dup-kind")
	mustPanic(t, "duplicate kind", func() { NewRegistry[string]("ext-test-dup-kind") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestDeterministicOrderUnderConcurrentRegistration registers entries
// from many goroutines in scrambled order and checks the iteration
// order is the (Rank, Name) order regardless — the property the
// byte-determinism contract needs from init-time registration.
func TestDeterministicOrderUnderConcurrentRegistration(t *testing.T) {
	t.Parallel()
	names := []string{"echo", "alpha", "delta", "bravo", "charlie", "foxtrot"}
	want := []string{"charlie", "alpha", "bravo", "delta", "echo", "foxtrot"}
	for trial := 0; trial < 8; trial++ {
		r := newTestRegistry[int]("widget")
		var wg sync.WaitGroup
		for i, n := range names {
			wg.Add(1)
			go func(i int, n string) {
				defer wg.Done()
				rank := 1
				if n == "charlie" {
					rank = 0 // rank beats name
				}
				r.Register(Meta{Name: n, Rank: rank}, i)
			}(i, n)
		}
		wg.Wait()
		if got := r.Names(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Names() = %v, want %v", trial, got, want)
		}
	}
}

func TestNamesWithFiltersByCap(t *testing.T) {
	t.Parallel()
	r := newTestRegistry[int]("suite")
	r.Register(Meta{Name: "SECOC", Rank: 1, Caps: []string{"table1", CapCore}}, 0)
	r.Register(Meta{Name: "noop-mac", Rank: 100}, 0)
	r.Register(Meta{Name: "MACsec", Rank: 4, Caps: []string{"table1", CapCore}}, 0)
	if got := r.NamesWith("table1"); !reflect.DeepEqual(got, []string{"SECOC", "MACsec"}) {
		t.Errorf("NamesWith(table1) = %v", got)
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"SECOC", "MACsec", "noop-mac"}) {
		t.Errorf("Names() = %v", got)
	}
}

func TestEachVisitsInOrder(t *testing.T) {
	t.Parallel()
	r := newTestRegistry[int]("widget")
	r.Register(Meta{Name: "b", Rank: 2}, 20)
	r.Register(Meta{Name: "a", Rank: 1}, 10)
	var names []string
	var vals []int
	r.Each(func(m Meta, v int) { names = append(names, m.Name); vals = append(vals, v) })
	if !reflect.DeepEqual(names, []string{"a", "b"}) || !reflect.DeepEqual(vals, []int{10, 20}) {
		t.Errorf("Each visited %v %v", names, vals)
	}
}

// TestSuggestNamesQuality pins the suggestion ranking: typos resolve
// to their nearest neighbour first, prefixes always qualify, and
// garbage yields nothing.
func TestSuggestNamesQuality(t *testing.T) {
	t.Parallel()
	names := []string{"replay", "forge", "masquerade", "flood", "delay", "killchain"}
	if got := SuggestNames("reply", names, 3); len(got) == 0 || got[0] != "replay" {
		t.Errorf("SuggestNames(reply) = %v, want replay first", got)
	}
	if got := SuggestNames("dely", names, 3); len(got) == 0 || got[0] != "delay" {
		t.Errorf("SuggestNames(dely) = %v, want delay first", got)
	}
	// Adjacent transposition counts as one edit (Damerau).
	if got := SuggestNames("ofrge", names, 3); len(got) == 0 || got[0] != "forge" {
		t.Errorf("SuggestNames(ofrge) = %v, want forge first", got)
	}
	if got := SuggestNames("kill", names, 3); len(got) != 1 || got[0] != "killchain" {
		t.Errorf("SuggestNames(prefix kill) = %v, want killchain", got)
	}
	if got := SuggestNames("zzzzzzzzzz", names, 3); len(got) != 0 {
		t.Errorf("SuggestNames(garbage) = %v, want none", got)
	}
	if got := SuggestNames("relay", names, 1); len(got) != 1 {
		t.Errorf("SuggestNames max=1 returned %v", got)
	}
}

func TestFingerprintTracksRegistrations(t *testing.T) {
	t.Parallel()
	// The fingerprint is a pure function of the registered set; two
	// calls agree, and it has sha256-hex shape.
	f1, f2 := Fingerprint(), Fingerprint()
	if f1 != f2 {
		t.Fatalf("Fingerprint unstable: %q vs %q", f1, f2)
	}
	if len(f1) != 64 {
		t.Fatalf("Fingerprint %q is not sha256 hex", f1)
	}
	// Registering into a fresh kind changes the catalog digest.
	r := NewRegistry[int]("ext-test-fingerprint")
	r.Register(Meta{Name: "probe"}, 1)
	if f3 := Fingerprint(); f3 == f1 {
		t.Error("Fingerprint unchanged after registering a new extension")
	}
}
