package ext

import "testing"

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"fig8", "fig8", 0},
		{"fig8", "", 4},
		{"fig8", "fig9", 1}, // substitution
		{"fig", "fig8", 1},  // insertion
		{"ifg8", "fig8", 1}, // adjacent transposition
		{"exp-ptp", "exp-ota", 2},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := editDistance(c.b, c.a); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d (not symmetric)", c.b, c.a, got, c.want)
		}
	}
}
