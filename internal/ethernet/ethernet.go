// Package ethernet models automotive Ethernet for the in-vehicle
// network of the paper's §III: standard frames with optional VLAN tags,
// full-duplex point-to-point links (zone controller ↔ central compute),
// a learning switch, and 10BASE-T1S multidrop segments with PLCA
// (Physical Layer Collision Avoidance) round-robin transmit
// opportunities, which is what lets several endpoints share one
// unshielded twisted pair.
//
// Exercised by experiments fig3-fig6, tab1, exp-vehicle, and exp-zc.
package ethernet

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/sim"
)

// MAC is a 6-byte hardware address.
type MAC [6]byte

// Broadcast is the all-ones destination.
var Broadcast = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// ParseMAC builds a MAC from 6 bytes.
func ParseMAC(b ...byte) (MAC, error) {
	var m MAC
	if len(b) != 6 {
		return m, fmt.Errorf("ethernet: MAC needs 6 bytes, got %d", len(b))
	}
	copy(m[:], b)
	return m, nil
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherTypes the model uses.
const (
	EtherTypeIPv4   = 0x0800
	EtherTypeVLAN   = 0x8100
	EtherTypeMACsec = 0x88E5
	EtherTypeMKA    = 0x888E // EAPOL, carries MKA
	EtherTypeApp    = 0x9000 // simulation application payload
)

// Frame is an Ethernet II frame.
type Frame struct {
	Dst, Src  MAC
	VLAN      uint16 // 0 = untagged
	EtherType uint16
	Payload   []byte
}

// MinPayload and MaxPayload bound standard frame sizes.
const (
	MinPayload = 0 // the model does not pad
	MaxPayload = 1500
)

// Validate checks size constraints.
func (f *Frame) Validate() error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("ethernet: payload %d exceeds MTU %d", len(f.Payload), MaxPayload)
	}
	return nil
}

// WireBytes returns the frame's on-wire size including header, optional
// VLAN tag, FCS, preamble, and inter-frame gap.
func (f *Frame) WireBytes() int {
	n := 14 + len(f.Payload) + 4 // header + payload + FCS
	if f.VLAN != 0 {
		n += 4
	}
	return n + 8 + 12 // preamble/SFD + IFG
}

// Marshal serializes the frame (simulation format, header then payload).
func (f *Frame) Marshal() []byte {
	buf := make([]byte, 16+len(f.Payload))
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], f.VLAN)
	binary.BigEndian.PutUint16(buf[14:16], f.EtherType)
	copy(buf[16:], f.Payload)
	return buf
}

// Unmarshal reverses Marshal.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("ethernet: short frame %d bytes", len(data))
	}
	f := &Frame{
		VLAN:      binary.BigEndian.Uint16(data[12:14]),
		EtherType: binary.BigEndian.Uint16(data[14:16]),
		Payload:   append([]byte(nil), data[16:]...),
	}
	copy(f.Dst[:], data[0:6])
	copy(f.Src[:], data[6:12])
	return f, f.Validate()
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return &c
}

// Port is anything that can accept a frame delivery.
type Port interface {
	PortMAC() MAC
	Receive(k *sim.Kernel, f *Frame)
}

// PortFunc adapts a function to Port.
type PortFunc struct {
	MAC MAC
	Fn  func(k *sim.Kernel, f *Frame)
}

func (p *PortFunc) PortMAC() MAC { return p.MAC }
func (p *PortFunc) Receive(k *sim.Kernel, f *Frame) {
	if p.Fn != nil {
		p.Fn(k, f)
	}
}

// Link is a full-duplex point-to-point Ethernet link between two ports.
type Link struct {
	name   string
	bps    int64
	kernel *sim.Kernel
	a, b   Port
	taps   []func(f *Frame)
}

// NewLink creates a link at the given bit rate connecting a and b.
func NewLink(name string, bps int64, k *sim.Kernel, a, b Port) *Link {
	return &Link{name: name, bps: bps, kernel: k, a: a, b: b}
}

// Tap registers a frame observer (IDS, measurement).
func (l *Link) Tap(fn func(f *Frame)) { l.taps = append(l.taps, fn) }

// Send transmits f from the port identified by from to the opposite end
// after the serialization delay.
func (l *Link) Send(from MAC, f *Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var dst Port
	switch from {
	case l.a.PortMAC():
		dst = l.b
	case l.b.PortMAC():
		dst = l.a
	default:
		return fmt.Errorf("ethernet: %v is not attached to link %s", from, l.name)
	}
	cp := f.Clone()
	dur := sim.Time(int64(cp.WireBytes()*8) * int64(sim.Second) / l.bps)
	l.kernel.After(dur, "eth/"+l.name+"/deliver", func(k *sim.Kernel) {
		k.Metrics().Inc("ethernet."+l.name+".frames", 1)
		k.Metrics().Inc("ethernet."+l.name+".bytes", int64(cp.WireBytes()))
		for _, tap := range l.taps {
			tap(cp)
		}
		dst.Receive(k, cp)
	})
	return nil
}
