package ethernet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the Ethernet frame decoder.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Frame{Dst: MAC{1}, Src: MAC{2}, EtherType: EtherTypeApp, Payload: []byte("x")}).Marshal())
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		round, err := Unmarshal(fr.Marshal())
		if err != nil {
			t.Fatalf("accepted frame failed round trip: %v", err)
		}
		if round.Dst != fr.Dst || round.EtherType != fr.EtherType || !bytes.Equal(round.Payload, fr.Payload) {
			t.Fatal("round trip not stable")
		}
	})
}
