package ethernet

import (
	"fmt"

	"autosec/internal/sim"
)

// Multidrop is a 10BASE-T1S segment (IEEE 802.3cg): several endpoints
// share one 10 Mbit/s single-pair bus. PLCA (Physical Layer Collision
// Avoidance) hands out transmit opportunities round-robin by node index,
// so access latency is bounded and deterministic — but, like CAN, the
// medium is a broadcast wire with no sender authentication, which is why
// the paper pairs it with MACsec in scenarios S2/S3.
type Multidrop struct {
	name    string
	bps     int64
	kernel  *sim.Kernel
	nodes   []Port
	queues  [][]*Frame
	cycling bool
	taps    []func(f *Frame)
	// BeaconNs is the per-node transmit-opportunity overhead when a
	// node has nothing to send (the PLCA silence slot).
	BeaconNs int64
}

// NewMultidrop creates an empty 10BASE-T1S segment.
func NewMultidrop(name string, k *sim.Kernel) *Multidrop {
	return &Multidrop{name: name, bps: 10_000_000, kernel: k, BeaconNs: 2000}
}

// Attach adds a node; its PLCA ID is its attach order.
func (m *Multidrop) Attach(p Port) int {
	m.nodes = append(m.nodes, p)
	m.queues = append(m.queues, nil)
	return len(m.nodes) - 1
}

// Tap registers a frame observer.
func (m *Multidrop) Tap(fn func(f *Frame)) { m.taps = append(m.taps, fn) }

// Send queues a frame from the node with the given PLCA id.
func (m *Multidrop) Send(plcaID int, f *Frame) error {
	if plcaID < 0 || plcaID >= len(m.nodes) {
		return fmt.Errorf("ethernet: plca id %d out of range", plcaID)
	}
	if err := f.Validate(); err != nil {
		return err
	}
	m.queues[plcaID] = append(m.queues[plcaID], f.Clone())
	if !m.cycling {
		m.cycling = true
		m.kernel.After(0, "t1s/"+m.name+"/cycle", func(k *sim.Kernel) { m.cycle(k, 0) })
	}
	return nil
}

// cycle runs PLCA transmit opportunities starting at node idx.
func (m *Multidrop) cycle(k *sim.Kernel, idx int) {
	// Stop when all queues are drained.
	empty := true
	for _, q := range m.queues {
		if len(q) > 0 {
			empty = false
			break
		}
	}
	if empty {
		m.cycling = false
		return
	}
	next := (idx + 1) % len(m.nodes)
	if len(m.queues[idx]) == 0 {
		// Silent transmit opportunity: just the beacon delay.
		k.After(sim.Time(m.BeaconNs), "t1s/"+m.name+"/to", func(k *sim.Kernel) { m.cycle(k, next) })
		return
	}
	f := m.queues[idx][0]
	m.queues[idx] = m.queues[idx][1:]
	dur := sim.Time(int64(f.WireBytes()*8) * int64(sim.Second) / m.bps)
	sender := m.nodes[idx].PortMAC()
	k.After(dur, "t1s/"+m.name+"/deliver", func(k *sim.Kernel) {
		k.Metrics().Inc("t1s."+m.name+".frames", 1)
		k.Metrics().Inc("t1s."+m.name+".bytes", int64(f.WireBytes()))
		for _, tap := range m.taps {
			tap(f)
		}
		for i, n := range m.nodes {
			if n.PortMAC() == sender && i == idx {
				continue
			}
			n.Receive(k, f)
		}
		m.cycle(k, next)
	})
}

// Switch is a learning Ethernet switch connecting point-to-point links.
// Each attached port is one switch interface; the switch learns source
// MACs and forwards to the learned port, flooding unknowns.
type Switch struct {
	name   string
	kernel *sim.Kernel
	ports  []*switchPort
	table  map[MAC]int
}

type switchPort struct {
	sw   *Switch
	idx  int
	mac  MAC
	peer *Link
}

func (p *switchPort) PortMAC() MAC { return p.mac }

func (p *switchPort) Receive(k *sim.Kernel, f *Frame) {
	p.sw.forward(k, p.idx, f)
}

// NewSwitch creates a switch.
func NewSwitch(name string, k *sim.Kernel) *Switch {
	return &Switch{name: name, kernel: k, table: make(map[MAC]int)}
}

// AddPort creates a new switch interface with the given MAC and returns
// it; connect it to a Link.
func (s *Switch) AddPort(mac MAC) Port {
	p := &switchPort{sw: s, idx: len(s.ports), mac: mac}
	s.ports = append(s.ports, p)
	return p
}

// BindLink tells the switch which link serves the i-th port.
func (s *Switch) BindLink(portIndex int, l *Link) error {
	if portIndex < 0 || portIndex >= len(s.ports) {
		return fmt.Errorf("ethernet: switch port %d out of range", portIndex)
	}
	s.ports[portIndex].peer = l
	return nil
}

func (s *Switch) forward(k *sim.Kernel, inPort int, f *Frame) {
	s.table[f.Src] = inPort
	k.Metrics().Inc("switch."+s.name+".forwarded", 1)
	if out, ok := s.table[f.Dst]; ok && f.Dst != Broadcast {
		s.transmit(out, f)
		return
	}
	for i := range s.ports {
		if i != inPort {
			s.transmit(i, f)
		}
	}
}

func (s *Switch) transmit(portIndex int, f *Frame) {
	p := s.ports[portIndex]
	if p.peer == nil {
		return
	}
	// Errors here mean an unbound or mis-wired topology; surface them
	// in metrics rather than silently dropping.
	if err := p.peer.Send(p.mac, f); err != nil {
		s.kernel.Metrics().Inc("switch."+s.name+".txerror", 1)
	}
}
