package ethernet

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func mac(last byte) MAC { return MAC{0x02, 0, 0, 0, 0, last} }

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC(1, 2, 3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "01:02:03:04:05:06" {
		t.Errorf("String = %s", m)
	}
	if _, err := ParseMAC(1, 2); err == nil {
		t.Error("short MAC accepted")
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := &Frame{Dst: mac(1), Src: mac(2), VLAN: 100, EtherType: EtherTypeApp, Payload: []byte("zonal data")}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.VLAN != 100 || got.EtherType != EtherTypeApp || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFrameMarshalProperty(t *testing.T) {
	f := func(payload []byte, vlan uint16, et uint16) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		orig := &Frame{Dst: mac(9), Src: mac(8), VLAN: vlan, EtherType: et, Payload: payload}
		got, err := Unmarshal(orig.Marshal())
		return err == nil && got.VLAN == vlan && got.EtherType == et && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameValidateMTU(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayload+1)}
	if err := f.Validate(); err == nil {
		t.Error("jumbo payload accepted")
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestWireBytesVLANTag(t *testing.T) {
	plain := &Frame{Payload: make([]byte, 100)}
	tagged := &Frame{VLAN: 5, Payload: make([]byte, 100)}
	if tagged.WireBytes() != plain.WireBytes()+4 {
		t.Errorf("VLAN tag cost %d", tagged.WireBytes()-plain.WireBytes())
	}
}

func TestLinkDeliversToOppositeEnd(t *testing.T) {
	k := sim.NewKernel(1)
	var gotAtB *Frame
	a := &PortFunc{MAC: mac(1)}
	b := &PortFunc{MAC: mac(2), Fn: func(_ *sim.Kernel, f *Frame) { gotAtB = f }}
	l := NewLink("l", 1_000_000_000, k, a, b)
	if err := l.Send(mac(1), &Frame{Dst: mac(2), Src: mac(1), EtherType: EtherTypeApp, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if gotAtB == nil || string(gotAtB.Payload) != "hi" {
		t.Fatalf("delivery failed: %+v", gotAtB)
	}
}

func TestLinkRejectsForeignSender(t *testing.T) {
	k := sim.NewKernel(1)
	l := NewLink("l", 1e9, k, &PortFunc{MAC: mac(1)}, &PortFunc{MAC: mac(2)})
	if err := l.Send(mac(9), &Frame{}); err == nil {
		t.Error("foreign port allowed to transmit")
	}
}

func TestLinkSerializationDelayScalesWithSize(t *testing.T) {
	k := sim.NewKernel(1)
	var smallAt, bigAt sim.Time
	rx := &PortFunc{MAC: mac(2), Fn: func(k *sim.Kernel, f *Frame) {
		if len(f.Payload) < 100 {
			smallAt = k.Now()
		} else {
			bigAt = k.Now()
		}
	}}
	l := NewLink("l", 100_000_000, k, &PortFunc{MAC: mac(1)}, rx)
	_ = l.Send(mac(1), &Frame{Dst: mac(2), Src: mac(1), Payload: make([]byte, 10)})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	k2 := sim.NewKernel(1)
	l2 := NewLink("l", 100_000_000, k2, &PortFunc{MAC: mac(1)}, rx)
	_ = l2.Send(mac(1), &Frame{Dst: mac(2), Src: mac(1), Payload: make([]byte, 1400)})
	if err := k2.Run(0); err != nil {
		t.Fatal(err)
	}
	if bigAt <= smallAt {
		t.Errorf("1400B at %v not slower than 10B at %v", bigAt, smallAt)
	}
}

func TestMultidropBroadcastsToOthers(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMultidrop("seg", k)
	got := map[byte]int{}
	var ids []int
	for i := byte(1); i <= 3; i++ {
		i := i
		ids = append(ids, m.Attach(&PortFunc{MAC: mac(i), Fn: func(_ *sim.Kernel, f *Frame) { got[i]++ }}))
	}
	if err := m.Send(ids[0], &Frame{Dst: Broadcast, Src: mac(1), Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 || got[2] != 1 || got[3] != 1 {
		t.Errorf("delivery = %v", got)
	}
}

func TestMultidropPLCARoundRobinFairness(t *testing.T) {
	// With PLCA, two saturating senders alternate; neither starves.
	k := sim.NewKernel(1)
	m := NewMultidrop("seg", k)
	var order []byte
	rxID := m.Attach(&PortFunc{MAC: mac(9), Fn: func(_ *sim.Kernel, f *Frame) { order = append(order, f.Src[5]) }})
	_ = rxID
	a := m.Attach(&PortFunc{MAC: mac(1)})
	b := m.Attach(&PortFunc{MAC: mac(2)})
	for i := 0; i < 5; i++ {
		_ = m.Send(a, &Frame{Dst: mac(9), Src: mac(1), Payload: make([]byte, 50)})
		_ = m.Send(b, &Frame{Dst: mac(9), Src: mac(2), Payload: make([]byte, 50)})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("delivered %d frames", len(order))
	}
	// Strict alternation after the first opportunity.
	for i := 2; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("PLCA did not alternate: %v", order)
		}
	}
}

func TestMultidropSendValidation(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMultidrop("seg", k)
	if err := m.Send(0, &Frame{}); err == nil {
		t.Error("send with no nodes accepted")
	}
	id := m.Attach(&PortFunc{MAC: mac(1)})
	if err := m.Send(id, &Frame{Payload: make([]byte, MaxPayload+1)}); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	k := sim.NewKernel(1)
	sw := NewSwitch("sw", k)

	hostA := &PortFunc{MAC: mac(1)}
	hostB := &PortFunc{MAC: mac(2)}
	var atA, atB int
	hostA.Fn = func(_ *sim.Kernel, f *Frame) { atA++ }
	hostB.Fn = func(_ *sim.Kernel, f *Frame) { atB++ }

	pA := sw.AddPort(mac(0xA))
	pB := sw.AddPort(mac(0xB))
	linkA := NewLink("a", 1e9, k, hostA, pA)
	linkB := NewLink("b", 1e9, k, hostB, pB)
	if err := sw.BindLink(0, linkA); err != nil {
		t.Fatal(err)
	}
	if err := sw.BindLink(1, linkB); err != nil {
		t.Fatal(err)
	}

	// A sends to B (unknown → flood, B learns), then B replies
	// (unicast, no flood back beyond A's port).
	_ = linkA.Send(mac(1), &Frame{Dst: mac(2), Src: mac(1), Payload: []byte("hello")})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if atB != 1 {
		t.Fatalf("B received %d", atB)
	}
	_ = linkB.Send(mac(2), &Frame{Dst: mac(1), Src: mac(2), Payload: []byte("reply")})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if atA != 1 {
		t.Errorf("A received %d after learned unicast", atA)
	}
}

func TestSwitchBindLinkRange(t *testing.T) {
	k := sim.NewKernel(1)
	sw := NewSwitch("sw", k)
	if err := sw.BindLink(0, nil); err == nil {
		t.Error("out-of-range port bind accepted")
	}
}
