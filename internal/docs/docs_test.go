package docs

import (
	"fmt"
	"strings"
	"testing"

	"autosec/internal/core"
)

// collect runs every registry experiment once at seed 42 and returns
// the metrics map the generator consumes — the same path `avsec expmd`
// takes.
func collect(t *testing.T) Metrics {
	t.Helper()
	metrics := make(Metrics)
	for _, e := range core.Experiments() {
		r, err := core.RunExperimentResult(e.ID, 42, core.RunOptions{})
		if err != nil {
			t.Fatalf("run %s: %v", e.ID, err)
		}
		m := make(map[string]float64, len(r.Metrics))
		for _, mt := range r.Metrics {
			m[mt.Name] = mt.Value
		}
		metrics[e.ID] = m
	}
	return metrics
}

func TestExperimentsMarkdownCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	out, err := ExperimentsMarkdown(collect(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range core.Experiments() {
		heading := fmt.Sprintf("%s — %s (%s)", e.ID, e.Title, e.Source)
		single := strings.Contains(out, "## "+heading)
		mentioned := strings.Contains(out, e.ID)
		if !single && !mentioned {
			t.Errorf("generated document never mentions experiment %s", e.ID)
		}
	}
	if strings.Contains(out, "{{m:") {
		t.Errorf("generated document contains an unresolved placeholder")
	}
	if strings.Contains(out, "<!-- section:") {
		t.Errorf("generated document leaks a section marker")
	}
	if !strings.Contains(out, "go run ./cmd/avsec expmd > EXPERIMENTS.md") {
		t.Errorf("generated document does not record its regeneration command")
	}
}

func TestExperimentsMarkdownDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	m := collect(t)
	a, err := ExperimentsMarkdown(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExperimentsMarkdown(m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two generations from the same metrics differ")
	}
}

func TestExperimentsMarkdownRejectsUnknownMetric(t *testing.T) {
	// Empty metrics: the first placeholder the template interpolates
	// must produce a hard error, not silently render "{{m:...}}".
	_, err := ExperimentsMarkdown(Metrics{})
	if err == nil {
		t.Fatal("expected an error for a template placeholder with no matching metric")
	}
	if !strings.Contains(err.Error(), "publishes no metric") {
		t.Fatalf("unexpected error: %v", err)
	}
}
