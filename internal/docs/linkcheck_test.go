package docs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks is the CI doc-link checker: every relative markdown
// link and every backtick-quoted repo path in README.md, DESIGN.md,
// and docs/*.md must resolve to a real file or directory. Writing docs
// that name moved or deleted files is how a docs tree rots; this test
// makes the rot a red build instead of a reader's dead end.
func TestDocLinks(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	files := []string{"README.md", "DESIGN.md"}
	docGlob, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docGlob) == 0 {
		t.Fatal("no docs/*.md files found")
	}
	for _, p := range docGlob {
		rel, err := filepath.Rel(root, p)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, rel)
	}

	for _, rel := range files {
		rel := rel
		t.Run(rel, func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(filepath.Join(root, rel))
			if err != nil {
				t.Fatal(err)
			}
			checkMarkdownLinks(t, root, rel, string(data))
			checkBacktickPaths(t, root, string(data))
		})
	}
}

// mdLink matches [text](target); targets with schemes or pure anchors
// are skipped by the caller.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func checkMarkdownLinks(t *testing.T, root, rel, body string) {
	t.Helper()
	dir := filepath.Dir(rel)
	for _, m := range mdLink.FindAllStringSubmatch(body, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue // pure in-document anchor
		}
		resolved := filepath.Join(root, dir, target)
		if _, err := os.Stat(resolved); err != nil {
			t.Errorf("link %q does not resolve (from %s): %v", m[1], rel, err)
		}
	}
}

// backtickPath matches `...` spans that look like repo paths: at least
// one slash, made only of path-safe characters, rooted in a known
// top-level directory or ending in a doc/script extension. Spans with
// placeholders (<date>, *, $) or flag syntax are not paths and are
// ignored.
var backtickSpan = regexp.MustCompile("`([^`\n]+)`")

var pathLike = regexp.MustCompile(`^[A-Za-z0-9_./-]+$`)

// topLevel names the directories whose paths docs are expected to
// reference; a backticked `foo/bar` outside these is likely prose
// (e.g. `a/b` rate notation) and is left alone.
var topLevel = map[string]bool{
	"cmd": true, "docs": true, "examples": true, "internal": true,
	"scenarios": true, "scripts": true,
}

func checkBacktickPaths(t *testing.T, root, body string) {
	t.Helper()
	for _, m := range backtickSpan.FindAllStringSubmatch(body, -1) {
		span := m[1]
		if !strings.Contains(span, "/") || !pathLike.MatchString(span) {
			continue
		}
		first, _, _ := strings.Cut(span, "/")
		isDoc := strings.HasSuffix(span, ".md") || strings.HasSuffix(span, ".sh") ||
			strings.HasSuffix(span, ".txt") || strings.HasSuffix(span, ".ini")
		if !topLevel[first] && !isDoc {
			continue
		}
		// `internal/secchan/suites` style package paths and file paths
		// both resolve with a plain stat; `internal/sim.RNG` style Go
		// symbol references resolve via their package directory.
		if _, err := os.Stat(filepath.Join(root, span)); err != nil {
			if pkg, _, ok := strings.Cut(span, "."); ok {
				if _, pkgErr := os.Stat(filepath.Join(root, pkg)); pkgErr == nil {
					continue
				}
			}
			t.Errorf("backticked path %q does not resolve: %v", span, err)
		}
	}
}
