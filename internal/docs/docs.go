// Package docs generates EXPERIMENTS.md — the paper-claim-vs-measured
// table — from the experiment registry in internal/core and the typed
// metric stream of a deterministic seed-42 run, so the document cannot
// silently drift from what the code produces. The prose lives in the
// embedded template experiments.src.md; structure and numbers are
// machine-checked:
//
//   - Every `<!-- section: <ids...> -->` marker must name registered
//     experiment ids (or "-" for static prose). Single-id sections get
//     their `## id — Title (Source)` heading generated from the
//     registry; multi-id sections carry their own heading in the body.
//   - Generation fails unless the template's sections cover the
//     registry exactly — adding an experiment without documenting it
//     (or documenting a removed one) breaks `avsec expmd` and the CI
//     doc-freshness job.
//   - `{{m:NAME}}` / `{{m:ID:NAME}}` placeholders are substituted with
//     the named typed metric's value; an unknown name is an error.
//
// Regenerate the checked-in document with:
//
//	go run ./cmd/avsec expmd > EXPERIMENTS.md
package docs

import (
	_ "embed"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"autosec/internal/core"
)

//go:embed experiments.src.md
var experimentsTemplate string

// Metrics maps experiment id → metric name → value, as published by a
// typed run (core.RunExperimentResult) of each experiment.
type Metrics map[string]map[string]float64

var (
	sectionRe     = regexp.MustCompile(`^<!-- section: (.+?) -->$`)
	placeholderRe = regexp.MustCompile(`\{\{m:([^{}]+)\}\}`)
)

// ExperimentsMarkdown renders the EXPERIMENTS.md document. metrics must
// hold the typed metrics of every experiment the template interpolates
// from; ids and coverage are validated against core.Experiments().
func ExperimentsMarkdown(metrics Metrics) (string, error) {
	byID := make(map[string]core.Experiment)
	for _, e := range core.Experiments() {
		byID[e.ID] = e
	}
	covered := make(map[string]bool)

	var b strings.Builder
	current := "" // single experiment id of the section being rendered
	for i, line := range strings.Split(experimentsTemplate, "\n") {
		if m := sectionRe.FindStringSubmatch(line); m != nil {
			ids := strings.Fields(m[1])
			if len(ids) == 1 && ids[0] == "-" {
				current = "" // static prose: no heading, no coverage
				continue
			}
			for _, id := range ids {
				if _, ok := byID[id]; !ok {
					return "", fmt.Errorf("docs: template line %d: unknown experiment id %q", i+1, id)
				}
				if covered[id] {
					return "", fmt.Errorf("docs: template line %d: experiment %q documented twice", i+1, id)
				}
				covered[id] = true
			}
			if len(ids) == 1 {
				current = ids[0]
				e := byID[current]
				fmt.Fprintf(&b, "## %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
			} else {
				current = "" // body supplies its own heading
			}
			continue
		}
		resolved, err := substitute(line, current, byID, metrics)
		if err != nil {
			return "", fmt.Errorf("docs: template line %d: %w", i+1, err)
		}
		b.WriteString(resolved)
		b.WriteString("\n")
	}

	var missing []string
	for id := range byID {
		if !covered[id] {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return "", fmt.Errorf("docs: registry experiments not documented in the template: %s",
			strings.Join(missing, ", "))
	}
	return strings.TrimRight(b.String(), "\n") + "\n", nil
}

// substitute resolves every {{m:...}} placeholder in one template line.
// An unqualified {{m:NAME}} refers to the current single-experiment
// section; {{m:ID:NAME}} names any experiment explicitly.
func substitute(line, current string, byID map[string]core.Experiment, metrics Metrics) (string, error) {
	var firstErr error
	out := placeholderRe.ReplaceAllStringFunc(line, func(match string) string {
		content := placeholderRe.FindStringSubmatch(match)[1]
		id, name := current, content
		if pre, rest, ok := strings.Cut(content, ":"); ok {
			if _, known := byID[pre]; known {
				id, name = pre, rest
			}
		}
		if id == "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("placeholder %s outside a single-experiment section needs an explicit {{m:ID:NAME}}", match)
			}
			return match
		}
		v, ok := metrics[id][name]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("placeholder %s: experiment %q publishes no metric %q", match, id, name)
			}
			return match
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	})
	return out, firstErr
}
