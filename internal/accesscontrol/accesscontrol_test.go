package accesscontrol

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestGFFieldAxioms(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and distributivity over XOR.
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			return false
		}
		// Division inverts multiplication for non-zero divisors.
		if b != 0 && gfDiv(gfMul(a, b), b) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if gfMul(1, 0x53) != 0x53 {
		t.Error("1 is not the multiplicative identity")
	}
	// AES reference: 0x53 · 0xCA = 0x01.
	if gfMul(0x53, 0xCA) != 0x01 {
		t.Errorf("0x53*0xCA = %#x, want 0x01", gfMul(0x53, 0xCA))
	}
}

func TestSplitCombineRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	secret := []byte("16-byte-data-key")
	shares, err := Split(secret, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("%d shares", len(shares))
	}
	// Any 3 shares reconstruct.
	for _, idx := range [][]int{{0, 1, 2}, {2, 3, 4}, {0, 2, 4}, {4, 1, 3}} {
		subset := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
		got, err := Combine(subset)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Errorf("subset %v reconstructed %x", idx, got)
		}
	}
}

func TestBelowThresholdRevealsNothing(t *testing.T) {
	// Information-theoretic property: with t−1 shares, every candidate
	// secret byte is equally consistent. We check the practical
	// consequence — 2 of 3 shares reconstruct to the wrong value, and
	// across many splits the "reconstruction" of a fixed secret byte is
	// roughly uniform.
	rng := sim.NewRNG(2)
	counts := map[byte]int{}
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		secret := []byte{0xAB}
		shares, err := Split(secret, 3, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Combine(shares[:2]) // below threshold
		if err != nil {
			t.Fatal(err)
		}
		counts[got[0]]++
	}
	if counts[0xAB] > rounds/32 {
		t.Errorf("below-threshold reconstruction hit the secret %d/%d times", counts[0xAB], rounds)
	}
	if len(counts) < 128 {
		t.Errorf("below-threshold values cover only %d of 256 bytes — not uniform", len(counts))
	}
}

func TestSplitValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Split([]byte("x"), 3, 1, rng); err == nil {
		t.Error("threshold 1 accepted")
	}
	if _, err := Split([]byte("x"), 2, 3, rng); err == nil {
		t.Error("t > n accepted")
	}
	if _, err := Split(nil, 3, 2, rng); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := Split([]byte("x"), 256, 2, rng); err == nil {
		t.Error("n > 255 accepted")
	}
}

func TestCombineValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	shares, err := Split([]byte("secret"), 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(shares[:1]); err == nil {
		t.Error("single share accepted")
	}
	if _, err := Combine([]Share{shares[0], shares[0]}); err == nil {
		t.Error("duplicate shares accepted")
	}
	bad := []Share{shares[0], {X: 0, Y: shares[1].Y}}
	if _, err := Combine(bad); err == nil {
		t.Error("x=0 share accepted")
	}
	mismatch := []Share{shares[0], {X: 9, Y: []byte{1}}}
	if _, err := Combine(mismatch); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPropertySplitCombineAnySecret(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(secret []byte, tRaw, extra uint8) bool {
		if len(secret) == 0 {
			secret = []byte{0}
		}
		if len(secret) > 64 {
			secret = secret[:64]
		}
		tr := int(tRaw%5) + 2  // 2..6
		n := tr + int(extra%5) // t..t+4
		shares, err := Split(secret, n, tr, rng)
		if err != nil {
			return false
		}
		got, err := Combine(shares[:tr])
		return err == nil && bytes.Equal(got, secret)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- the SeeMQTT-style flow ---

func setupFlow(t *testing.T) (*Owner, []*Keyholder, *SealedMessage) {
	t.Helper()
	rng := sim.NewRNG(7)
	owner := NewOwner("vehicle-7", rng)
	holders := []*Keyholder{NewKeyholder("kh-oem"), NewKeyholder("kh-insurer"), NewKeyholder("kh-authority")}
	msg, err := owner.Publish([]byte("crash report: 48 km/h, brake applied"), holders, 2,
		[]string{"workshop-42"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return owner, holders, msg
}

func TestAuthorizedConsumerRetrieves(t *testing.T) {
	_, holders, msg := setupFlow(t)
	payload, err := Retrieve(msg, "workshop-42", holders, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(payload, []byte("crash report")) {
		t.Errorf("payload %q", payload)
	}
}

func TestUnauthorizedConsumerDenied(t *testing.T) {
	_, holders, msg := setupFlow(t)
	if _, err := Retrieve(msg, "data-broker-inc", holders, 100); err == nil {
		t.Error("unauthorized consumer got the payload")
	}
}

func TestPolicyExpiry(t *testing.T) {
	_, holders, msg := setupFlow(t)
	if _, err := Retrieve(msg, "workshop-42", holders, 1001); err == nil {
		t.Error("expired grant honoured")
	}
}

func TestRevocationAtKeyholders(t *testing.T) {
	_, holders, msg := setupFlow(t)
	for _, h := range holders {
		h.Revoke(msg.ID, "workshop-42")
	}
	if _, err := Retrieve(msg, "workshop-42", holders, 100); err == nil {
		t.Error("revoked consumer got the payload")
	}
}

func TestSingleCompromisedKeyholderInsufficient(t *testing.T) {
	// Threshold 2 of 3: one compromised keyholder releases its share to
	// the attacker, but one share reveals nothing and the other two
	// enforce policy.
	_, holders, msg := setupFlow(t)
	holders[0].Compromised = true
	if _, err := Retrieve(msg, "attacker", holders, 100); err == nil {
		t.Error("one compromised keyholder sufficed below threshold")
	}
	// Two compromised holders reach the threshold — the design's stated
	// trust assumption, verified from the attack side.
	holders[1].Compromised = true
	if _, err := Retrieve(msg, "attacker", holders, 100); err != nil {
		t.Error("threshold-many compromised holders should break it (trust assumption)")
	}
}

func TestPublishValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	owner := NewOwner("v", rng)
	if _, err := owner.Publish([]byte("x"), []*Keyholder{NewKeyholder("a")}, 2, nil, 0); err == nil {
		t.Error("holders below threshold accepted")
	}
}

func TestBrokerNeverSeesPlaintextKey(t *testing.T) {
	// The sealed message (what the broker stores) must not decrypt on
	// its own and must not contain the payload.
	_, _, msg := setupFlow(t)
	if bytes.Contains(msg.Ciphertext, []byte("crash report")) {
		t.Error("payload visible in sealed message")
	}
}
