package accesscontrol

import (
	"fmt"
	"sort"

	"autosec/internal/sim"
	"autosec/internal/vcrypto"
)

// This file builds the SeeMQTT-style end-to-end flow on top of Shamir
// sharing: a data owner encrypts a payload under a one-time key, splits
// the key among independent keyholders, and attaches a policy. Each
// keyholder independently evaluates the policy before releasing its
// share to a requester; the broker in the middle never sees the key.

// Policy is the owner's access rule: the set of consumer identities
// allowed, plus an expiry.
type Policy struct {
	Allowed   map[string]bool
	ExpiresAt int64 // simulation seconds; 0 = never
}

// Allows evaluates the policy.
func (p *Policy) Allows(consumer string, now int64) bool {
	if p.ExpiresAt != 0 && now > p.ExpiresAt {
		return false
	}
	return p.Allowed[consumer]
}

// SealedMessage is the published object: ciphertext plus metadata. The
// key itself exists only as shares at the keyholders.
type SealedMessage struct {
	ID         string
	Owner      string
	Ciphertext []byte
	Threshold  int
	Holders    []string
}

// Keyholder is one trusted share custodian (e.g. operated by a distinct
// stakeholder).
type Keyholder struct {
	Name     string
	shares   map[string]Share   // message ID → share
	policies map[string]*Policy // message ID → policy copy
	// Compromised simulates a keyholder under attacker control: it
	// releases shares to anyone.
	Compromised bool
	// Released counts share handouts (audit).
	Released int
}

// NewKeyholder creates an empty custodian.
func NewKeyholder(name string) *Keyholder {
	return &Keyholder{Name: name, shares: map[string]Share{}, policies: map[string]*Policy{}}
}

// store is called by the owner during publication.
func (k *Keyholder) store(msgID string, share Share, policy *Policy) {
	k.shares[msgID] = share
	k.policies[msgID] = policy
}

// Request asks the keyholder for its share of a message.
func (k *Keyholder) Request(msgID, consumer string, now int64) (Share, error) {
	share, ok := k.shares[msgID]
	if !ok {
		return Share{}, fmt.Errorf("accesscontrol: %s has no share of %s", k.Name, msgID)
	}
	if !k.Compromised {
		policy := k.policies[msgID]
		if policy == nil || !policy.Allows(consumer, now) {
			return Share{}, fmt.Errorf("accesscontrol: %s denies %s access to %s", k.Name, consumer, msgID)
		}
	}
	k.Released++
	return share, nil
}

// Revoke removes the owner's grant at this keyholder.
func (k *Keyholder) Revoke(msgID, consumer string) {
	if p := k.policies[msgID]; p != nil {
		delete(p.Allowed, consumer)
	}
}

// Owner publishes protected messages.
type Owner struct {
	Name string
	rng  *sim.RNG
	seq  int
}

// NewOwner creates a publisher.
func NewOwner(name string, rng *sim.RNG) *Owner {
	return &Owner{Name: name, rng: rng}
}

// Publish encrypts payload under a fresh key, splits the key t-of-n
// among the holders, installs an independent policy copy at each, and
// returns the sealed message.
func (o *Owner) Publish(payload []byte, holders []*Keyholder, t int, allowed []string, expiresAt int64) (*SealedMessage, error) {
	if len(holders) < t {
		return nil, fmt.Errorf("accesscontrol: %d holders below threshold %d", len(holders), t)
	}
	key := make([]byte, 16)
	o.rng.Bytes(key)
	o.seq++
	msgID := fmt.Sprintf("%s/%d", o.Name, o.seq)

	ct, err := vcrypto.GCMSeal(key, 0, uint32(o.seq), []byte(msgID), payload)
	if err != nil {
		return nil, err
	}
	shares, err := Split(key, len(holders), t, o.rng)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(holders))
	for i, h := range holders {
		// Every keyholder gets an independent policy copy, so a single
		// tampered holder cannot widen access for the others.
		policy := &Policy{Allowed: map[string]bool{}, ExpiresAt: expiresAt}
		for _, c := range allowed {
			policy.Allowed[c] = true
		}
		h.store(msgID, shares[i], policy)
		names[i] = h.Name
	}
	sort.Strings(names)
	return &SealedMessage{ID: msgID, Owner: o.Name, Ciphertext: ct, Threshold: t, Holders: names}, nil
}

// Retrieve is the consumer side: collect shares from the given holders,
// reconstruct the key, decrypt. It returns the payload or an error
// naming what failed (policy denial, not enough shares, bad key).
func Retrieve(msg *SealedMessage, consumer string, holders []*Keyholder, now int64) ([]byte, error) {
	var got []Share
	var denials []string
	for _, h := range holders {
		share, err := h.Request(msg.ID, consumer, now)
		if err != nil {
			denials = append(denials, h.Name)
			continue
		}
		got = append(got, share)
		if len(got) == msg.Threshold {
			break
		}
	}
	if len(got) < msg.Threshold {
		return nil, fmt.Errorf("accesscontrol: only %d of %d required shares (denied by %v)", len(got), msg.Threshold, denials)
	}
	key, err := Combine(got)
	if err != nil {
		return nil, err
	}
	var seq uint32
	fmt.Sscanf(msg.ID[len(msg.Owner)+1:], "%d", &seq)
	payload, err := vcrypto.GCMOpen(key, 0, seq, []byte(msg.ID), msg.Ciphertext)
	if err != nil {
		return nil, fmt.Errorf("accesscontrol: reconstructed key failed to decrypt: %w", err)
	}
	return payload, nil
}
