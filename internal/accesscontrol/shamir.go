// Package accesscontrol implements the controlled-access mechanism the
// paper's §VIII calls for — "data owners retain the rights to grant or
// restrict access" across "ecosystems involving multiple owners and
// stakeholders" — following the SeeMQTT design it cites (ref [54]):
// the data key is split with Shamir secret sharing among independent
// keyholders, each of which releases its share only if the owner's
// policy authorizes the requester. No keyholder alone (nor any
// coalition below the threshold) learns anything about the key.
//
// Exercised by experiment exp-access.
package accesscontrol

import (
	"fmt"

	"autosec/internal/sim"
)

// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11B),
// using log/exp tables built from generator 3.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 3 = x ^ (x<<1 mod poly)
		y := x << 1
		if x&0x80 != 0 {
			y ^= 0x1B
		}
		x ^= y
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("accesscontrol: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// Share is one Shamir share of a secret: an x coordinate and one y byte
// per secret byte.
type Share struct {
	X byte
	Y []byte
}

// Split shares secret into n shares with reconstruction threshold t.
// It evaluates a fresh random polynomial of degree t−1 per secret byte.
func Split(secret []byte, n, t int, rng *sim.RNG) ([]Share, error) {
	if t < 2 || t > n || n > 255 {
		return nil, fmt.Errorf("accesscontrol: invalid threshold %d of %d", t, n)
	}
	if len(secret) == 0 {
		return nil, fmt.Errorf("accesscontrol: empty secret")
	}
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Y: make([]byte, len(secret))}
	}
	coeffs := make([]byte, t)
	for byteIdx, s := range secret {
		coeffs[0] = s
		for j := 1; j < t; j++ {
			coeffs[j] = byte(rng.Uint64())
		}
		// The top coefficient must be non-zero for true degree t−1;
		// a zero top coefficient would silently lower the threshold.
		for coeffs[t-1] == 0 {
			coeffs[t-1] = byte(rng.Uint64())
		}
		for i := range shares {
			x := shares[i].X
			// Horner evaluation.
			y := coeffs[t-1]
			for j := t - 2; j >= 0; j-- {
				y = gfMul(y, x) ^ coeffs[j]
			}
			shares[i].Y[byteIdx] = y
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least t distinct shares via
// Lagrange interpolation at x=0. Fewer than t shares (or duplicates)
// fail; t wrong shares yield garbage, not an error — verify the result
// at a higher layer (e.g. by decrypting with it).
func Combine(shares []Share) ([]byte, error) {
	if len(shares) < 2 {
		return nil, fmt.Errorf("accesscontrol: need at least 2 shares")
	}
	seen := map[byte]bool{}
	length := len(shares[0].Y)
	for _, s := range shares {
		if s.X == 0 {
			return nil, fmt.Errorf("accesscontrol: share with x=0")
		}
		if seen[s.X] {
			return nil, fmt.Errorf("accesscontrol: duplicate share x=%d", s.X)
		}
		seen[s.X] = true
		if len(s.Y) != length {
			return nil, fmt.Errorf("accesscontrol: inconsistent share lengths")
		}
	}
	secret := make([]byte, length)
	for byteIdx := 0; byteIdx < length; byteIdx++ {
		var acc byte
		for i, si := range shares {
			// Lagrange basis at x=0: Π_{j≠i} x_j / (x_j − x_i); in
			// GF(2^8) subtraction is XOR, so x_j − x_i = x_j ^ x_i.
			num, den := byte(1), byte(1)
			for j, sj := range shares {
				if i == j {
					continue
				}
				num = gfMul(num, sj.X)
				den = gfMul(den, sj.X^si.X)
			}
			acc ^= gfMul(si.Y[byteIdx], gfDiv(num, den))
		}
		secret[byteIdx] = acc
	}
	return secret, nil
}
