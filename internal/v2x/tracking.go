package v2x

import (
	"fmt"
	"sort"
)

// This file quantifies the privacy side of pseudonyms: a passive
// eavesdropper collects broadcast messages and links them by pseudonym
// ID. The longer a pseudonym lives, the longer the trajectory segment
// the adversary reconstructs. Rotation bounds segment length — the same
// data-minimization philosophy as the paper's §V-C, applied at the
// collaboration layer.

// Observation is one overheard (pseudonym, timestamp) pair.
type Observation struct {
	PseudonymID uint64
	Timestamp   int64
}

// TrackingReport summarizes what a pseudonym-linking adversary learns.
type TrackingReport struct {
	// Segments is the number of distinct trajectory segments (one per
	// pseudonym seen).
	Segments int
	// LongestSegmentS is the longest continuously-linkable span in
	// seconds.
	LongestSegmentS int64
	// MeanSegmentS is the average linkable span.
	MeanSegmentS float64
	// CoverageS is the total observed span.
	CoverageS int64
}

// LinkByPseudonym runs the adversary over a single vehicle's overheard
// transmissions.
func LinkByPseudonym(obs []Observation) TrackingReport {
	if len(obs) == 0 {
		return TrackingReport{}
	}
	spans := map[uint64][2]int64{}
	minTS, maxTS := obs[0].Timestamp, obs[0].Timestamp
	for _, o := range obs {
		if o.Timestamp < minTS {
			minTS = o.Timestamp
		}
		if o.Timestamp > maxTS {
			maxTS = o.Timestamp
		}
		s, ok := spans[o.PseudonymID]
		if !ok {
			spans[o.PseudonymID] = [2]int64{o.Timestamp, o.Timestamp}
			continue
		}
		if o.Timestamp < s[0] {
			s[0] = o.Timestamp
		}
		if o.Timestamp > s[1] {
			s[1] = o.Timestamp
		}
		spans[o.PseudonymID] = s
	}
	var rep TrackingReport
	rep.Segments = len(spans)
	rep.CoverageS = maxTS - minTS
	total := int64(0)
	ids := make([]uint64, 0, len(spans))
	for id := range spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := spans[id]
		length := s[1] - s[0]
		total += length
		if length > rep.LongestSegmentS {
			rep.LongestSegmentS = length
		}
	}
	rep.MeanSegmentS = float64(total) / float64(len(spans))
	return rep
}

// String renders the report.
func (r TrackingReport) String() string {
	return fmt.Sprintf("segments=%d longest=%ds mean=%.1fs of %ds observed",
		r.Segments, r.LongestSegmentS, r.MeanSegmentS, r.CoverageS)
}
