package v2x

import (
	"testing"

	"autosec/internal/sim"
	"autosec/internal/world"
)

func seed32(b byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	return s
}

func authority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(seed32(1))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIssueRequiresEnrollment(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(1)
	if _, err := a.IssuePseudonyms("ghost-car", 3, 0, 300, rng); err == nil {
		t.Error("unenrolled vehicle got pseudonyms")
	}
	a.Enroll("av-1")
	ps, err := a.IssuePseudonyms("av-1", 3, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("%d pseudonyms", len(ps))
	}
	// Consecutive validity windows.
	for i, p := range ps {
		if p.NotBefore != int64(i)*300 || p.NotAfter != int64(i+1)*300 {
			t.Errorf("pseudonym %d window [%d,%d]", i, p.NotBefore, p.NotAfter)
		}
	}
	if _, err := a.IssuePseudonyms("av-1", 0, 0, 300, rng); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := NewAuthority([]byte("short")); err == nil {
		t.Error("short seed accepted")
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(2)
	a.Enroll("av-1")
	ps, err := a.IssuePseudonyms("av-1", 1, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Sign(ps[0], world.Vec2{X: 10, Y: 5}, 13.9, 42, []byte("cam"))
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Root: a.PublicKey(), IsRevoked: a.Revoked, MaxAge: 10}
	if err := v.Verify(m, 45); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejections(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(3)
	a.Enroll("av-1")
	ps, err := a.IssuePseudonyms("av-1", 2, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Root: a.PublicKey(), IsRevoked: a.Revoked, MaxAge: 10}

	m, err := Sign(ps[0], world.Vec2{X: 1}, 5, 42, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}

	// Tampered payload.
	bad := *m
	bad.Payload = []byte("y")
	if err := v.Verify(&bad, 45); err == nil {
		t.Error("tampered message accepted")
	}
	// Outside the pseudonym's validity window.
	if err := v.Verify(m, 9999); err == nil {
		t.Error("expired pseudonym accepted")
	}
	// Stale message.
	if err := v.Verify(m, 60); err == nil {
		t.Error("stale message accepted")
	}
	// Future-dated message.
	future, err := Sign(ps[0], world.Vec2{}, 5, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(future, 100); err == nil {
		t.Error("future message accepted")
	}
	// Self-signed pseudonym (not from the authority).
	rogue, err := NewAuthority(seed32(9))
	if err != nil {
		t.Fatal(err)
	}
	rogue.Enroll("evil")
	rp, err := rogue.IssuePseudonyms("evil", 1, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Sign(rp[0], world.Vec2{}, 5, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(rm, 45); err == nil {
		t.Error("pseudonym from a different authority accepted")
	}
	// No pseudonym at all.
	if err := v.Verify(&Message{}, 45); err == nil {
		t.Error("bare message accepted")
	}
}

func TestEscrowResolutionAndRevocation(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(4)
	a.Enroll("av-7")
	ps, err := a.IssuePseudonyms("av-7", 5, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Misbehaviour reported under pseudonym 3 → resolve → revoke all.
	vehicle, err := a.Resolve(ps[2].ID)
	if err != nil {
		t.Fatal(err)
	}
	if vehicle != "av-7" {
		t.Errorf("resolved %q", vehicle)
	}
	if n := a.RevokeVehicle(vehicle); n != 5 {
		t.Errorf("revoked %d pseudonyms, want all 5", n)
	}
	v := &Verifier{Root: a.PublicKey(), IsRevoked: a.Revoked, MaxAge: 10}
	m, err := Sign(ps[0], world.Vec2{}, 5, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(m, 45); err == nil {
		t.Error("revoked pseudonym accepted")
	}
	if _, err := a.Resolve(99999); err == nil {
		t.Error("unknown pseudonym resolved")
	}
	// Double revocation is idempotent.
	if n := a.RevokeVehicle("av-7"); n != 0 {
		t.Errorf("second revocation touched %d", n)
	}
}

func TestSignRequiresOwnPseudonym(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(5)
	a.Enroll("av-1")
	ps, err := a.IssuePseudonyms("av-1", 1, 0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A received pseudonym (as it would arrive in a message) has no
	// private key: nobody else can sign under it.
	stolen := *ps[0]
	stolen.priv = nil
	if _, err := Sign(&stolen, world.Vec2{}, 5, 1, nil); err == nil {
		t.Error("signed under a pseudonym without its key")
	}
}

func TestTrackingRotationBoundsLinkage(t *testing.T) {
	a := authority(t)
	rng := sim.NewRNG(6)
	a.Enroll("av-1")

	// One hour of driving, CAM every 10 s.
	drive := func(lifetime int64) TrackingReport {
		n := int(3600 / lifetime)
		if n < 1 {
			n = 1
		}
		ps, err := a.IssuePseudonyms("av-1", n, 0, lifetime, rng)
		if err != nil {
			t.Fatal(err)
		}
		var obs []Observation
		for ts := int64(0); ts < 3600; ts += 10 {
			idx := int(ts / lifetime)
			if idx >= len(ps) {
				idx = len(ps) - 1
			}
			obs = append(obs, Observation{PseudonymID: ps[idx].ID, Timestamp: ts})
		}
		return LinkByPseudonym(obs)
	}

	noRotation := drive(3600)
	fastRotation := drive(300)
	if noRotation.Segments != 1 || noRotation.LongestSegmentS < 3500 {
		t.Errorf("no rotation: %+v", noRotation)
	}
	if fastRotation.Segments < 10 {
		t.Errorf("fast rotation produced only %d segments", fastRotation.Segments)
	}
	if fastRotation.LongestSegmentS >= noRotation.LongestSegmentS/5 {
		t.Errorf("rotation did not shorten linkable span: %d vs %d",
			fastRotation.LongestSegmentS, noRotation.LongestSegmentS)
	}
}

func TestLinkByPseudonymEmpty(t *testing.T) {
	if rep := LinkByPseudonym(nil); rep.Segments != 0 {
		t.Error("empty observations produced segments")
	}
	if s := LinkByPseudonym([]Observation{{PseudonymID: 1, Timestamp: 5}}).String(); s == "" {
		t.Error("empty report string")
	}
}
