// Package v2x implements the authenticated V2X messaging layer that
// §VII-B presupposes ("implementing secure communication protocols
// between autonomous systems"): an enrollment authority, short-lived
// pseudonym certificates, signed CAM-style messages, verification, and
// the privacy machinery around pseudonyms — rotation against trajectory
// linkage, and escrowed resolution so a misbehaving vehicle's
// pseudonyms can be traced and revoked without making everyone
// permanently trackable.
//
// Exercised by experiment exp-v2x and the cross-layer integration test
// in internal/core.
package v2x

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"

	"autosec/internal/sim"
	"autosec/internal/world"
)

// Authority is the combined enrollment + pseudonym CA (real deployments
// split these; the trust structure is the same).
type Authority struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	// escrow maps pseudonym ID → enrolled vehicle ID, sealed to the
	// misbehaviour-resolution role.
	escrow map[uint64]string
	// revoked pseudonym IDs.
	revoked map[uint64]bool
	// enrolled long-term identities.
	enrolled map[string]bool
	nextID   uint64
}

// NewAuthority creates an authority from a deterministic seed.
func NewAuthority(seed []byte) (*Authority, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("v2x: authority seed must be %d bytes", ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Authority{
		pub:      priv.Public().(ed25519.PublicKey),
		priv:     priv,
		escrow:   map[uint64]string{},
		revoked:  map[uint64]bool{},
		enrolled: map[string]bool{},
	}, nil
}

// PublicKey returns the trust root every receiver provisions.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Enroll registers a long-term vehicle identity.
func (a *Authority) Enroll(vehicleID string) {
	a.enrolled[vehicleID] = true
}

// Pseudonym is a short-lived signing credential carrying no vehicle
// identity.
type Pseudonym struct {
	ID        uint64
	PublicKey ed25519.PublicKey
	NotBefore int64
	NotAfter  int64
	Signature []byte // authority's signature over the fields above

	priv ed25519.PrivateKey
}

func pseudonymTBS(id uint64, pub ed25519.PublicKey, nb, na int64) []byte {
	buf := make([]byte, 8+8+8+len(pub))
	binary.BigEndian.PutUint64(buf[0:8], id)
	binary.BigEndian.PutUint64(buf[8:16], uint64(nb))
	binary.BigEndian.PutUint64(buf[16:24], uint64(na))
	copy(buf[24:], pub)
	return buf
}

// IssuePseudonyms issues a batch of n pseudonym certificates to an
// enrolled vehicle, each valid for lifetime seconds starting at
// consecutive windows from start. The pseudonym→vehicle mapping goes to
// escrow only.
func (a *Authority) IssuePseudonyms(vehicleID string, n int, start, lifetime int64, rng *sim.RNG) ([]*Pseudonym, error) {
	if !a.enrolled[vehicleID] {
		return nil, fmt.Errorf("v2x: %s is not enrolled", vehicleID)
	}
	if n <= 0 || lifetime <= 0 {
		return nil, fmt.Errorf("v2x: need positive batch size and lifetime")
	}
	out := make([]*Pseudonym, n)
	for i := range out {
		seed := make([]byte, ed25519.SeedSize)
		rng.Bytes(seed)
		priv := ed25519.NewKeyFromSeed(seed)
		a.nextID++
		p := &Pseudonym{
			ID:        a.nextID,
			PublicKey: priv.Public().(ed25519.PublicKey),
			NotBefore: start + int64(i)*lifetime,
			NotAfter:  start + int64(i+1)*lifetime,
			priv:      priv,
		}
		p.Signature = ed25519.Sign(a.priv, pseudonymTBS(p.ID, p.PublicKey, p.NotBefore, p.NotAfter))
		a.escrow[p.ID] = vehicleID
		out[i] = p
	}
	return out, nil
}

// Resolve is the escrowed misbehaviour-resolution operation: map a
// pseudonym back to the enrolled vehicle. In deployments this requires
// the misbehaviour authority's quorum; here it is explicit and audited
// by the caller.
func (a *Authority) Resolve(pseudonymID uint64) (string, error) {
	v, ok := a.escrow[pseudonymID]
	if !ok {
		return "", fmt.Errorf("v2x: unknown pseudonym %d", pseudonymID)
	}
	return v, nil
}

// RevokeVehicle revokes every pseudonym escrowed to the vehicle.
func (a *Authority) RevokeVehicle(vehicleID string) int {
	n := 0
	for id, v := range a.escrow {
		if v == vehicleID && !a.revoked[id] {
			a.revoked[id] = true
			n++
		}
	}
	return n
}

// Revoked reports pseudonym revocation state (distributed to receivers
// as a CRL).
func (a *Authority) Revoked(pseudonymID uint64) bool { return a.revoked[pseudonymID] }

// Message is a signed CAM-style basic safety message.
type Message struct {
	Pseudonym *Pseudonym
	Pos       world.Vec2
	SpeedMS   float64
	Timestamp int64
	Payload   []byte
	Signature []byte
}

func messageTBS(m *Message) []byte {
	buf := make([]byte, 8+8*3+len(m.Payload))
	binary.BigEndian.PutUint64(buf[0:8], m.Pseudonym.ID)
	binary.BigEndian.PutUint64(buf[8:16], uint64(int64(m.Pos.X*1000)))
	binary.BigEndian.PutUint64(buf[16:24], uint64(int64(m.Pos.Y*1000)))
	binary.BigEndian.PutUint64(buf[24:32], uint64(m.Timestamp))
	copy(buf[32:], m.Payload)
	return buf
}

// Sign builds a signed message under the pseudonym.
func Sign(p *Pseudonym, pos world.Vec2, speed float64, ts int64, payload []byte) (*Message, error) {
	if p.priv == nil {
		return nil, fmt.Errorf("v2x: pseudonym %d has no private key (not ours)", p.ID)
	}
	m := &Message{Pseudonym: p, Pos: pos, SpeedMS: speed, Timestamp: ts, Payload: append([]byte(nil), payload...)}
	m.Signature = ed25519.Sign(p.priv, messageTBS(m))
	return m, nil
}

// Verifier validates incoming messages against the authority root and a
// revocation view.
type Verifier struct {
	Root ed25519.PublicKey
	// IsRevoked consults the receiver's CRL view.
	IsRevoked func(pseudonymID uint64) bool
	// MaxAge bounds message freshness in seconds.
	MaxAge int64
}

// Verify checks certificate, validity window, revocation, freshness,
// and message signature.
func (v *Verifier) Verify(m *Message, now int64) error {
	p := m.Pseudonym
	if p == nil {
		return fmt.Errorf("v2x: message without pseudonym")
	}
	if !ed25519.Verify(v.Root, pseudonymTBS(p.ID, p.PublicKey, p.NotBefore, p.NotAfter), p.Signature) {
		return fmt.Errorf("v2x: pseudonym %d not issued by the trusted authority", p.ID)
	}
	if now < p.NotBefore || now > p.NotAfter {
		return fmt.Errorf("v2x: pseudonym %d outside validity [%d,%d] at %d", p.ID, p.NotBefore, p.NotAfter, now)
	}
	if v.IsRevoked != nil && v.IsRevoked(p.ID) {
		return fmt.Errorf("v2x: pseudonym %d revoked", p.ID)
	}
	if v.MaxAge > 0 && (now-m.Timestamp > v.MaxAge || m.Timestamp > now) {
		return fmt.Errorf("v2x: stale or future message (ts=%d now=%d)", m.Timestamp, now)
	}
	if !ed25519.Verify(p.PublicKey, messageTBS(m), m.Signature) {
		return fmt.Errorf("v2x: message signature invalid")
	}
	return nil
}
