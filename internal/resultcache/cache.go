// Package resultcache is the content-addressed result cache behind the
// avsecd campaign daemon: one entry per (experiment, seed, code
// version) holds the run's report bytes and typed sim.Metric stream,
// so a repeated sweep of an unchanged binary is served from disk
// instead of recomputed.
//
// The cache is safe to trust precisely because the sim kernel is
// deterministic: the same experiment at the same seed under the same
// code produces byte-identical output, so replaying a stored result is
// indistinguishable from recomputation. Everything in the design
// defends that equivalence:
//
//   - Keys are SHA-256 digests over length-prefixed parts (experiment
//     id, seed, code version, and — for DSL scenarios — the canonical
//     scenario.ini bytes), so no concatenation of distinct inputs can
//     collide and a changed binary or edited scenario can never serve
//     a stale result.
//   - Entries embed a SHA-256 checksum of their payload; a flipped bit
//     or truncated file is detected on read, counted, deleted, and
//     reported as a miss — corruption degrades to recomputation, never
//     to wrong bytes.
//   - Writes are atomic (temp file + rename in the same directory), so
//     concurrent readers see either the whole entry or none of it, and
//     a crash mid-write cannot leave a half-entry behind.
//
// Metric values survive the JSON round trip bit-exactly: encoding/json
// renders float64 with the shortest representation that parses back to
// the same bits. Entries whose metrics cannot be marshalled (NaN/Inf)
// are rejected at Put, which no experiment produces.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autosec/internal/sim"
)

// Entry is one cached run result: exactly what the campaign runner
// needs to treat the cell as executed.
type Entry struct {
	// Report is the run's rendered report, byte-for-byte.
	Report string `json:"report"`
	// Metrics is the run's typed metric stream, in publication order.
	Metrics []sim.Metric `json:"metrics"`
}

// envelope is the on-disk format: the payload plus its checksum. Key
// is stored for operator-facing debuggability (an entry names what it
// is) and cross-checked on read so a file renamed onto the wrong key
// cannot be served.
type envelope struct {
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Stats counts cache outcomes since the process started. Counters only
// ever increase; they feed the daemon's /api/v1/cache endpoint and the
// CI smoke check that a repeated sweep really was served from cache.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stores  uint64 `json:"stores"`
	Corrupt uint64 `json:"corrupt"`
}

// Cache is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use.
type Cache struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	stores  atomic.Uint64
	corrupt atomic.Uint64
}

// New opens (creating if needed) a cache rooted at dir.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Key derives the content address for a sequence of parts. Each part
// is length-prefixed before hashing, so ("ab", "c") and ("a", "bc")
// address different entries — the key is a function of the parts, not
// of their concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		io.WriteString(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps a key to its file, sharded by the first key byte so one
// directory never accumulates every entry.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// EntryPath returns the file that holds (or would hold) key's entry.
// Tooling and test hook: the fleet fault-injection tests corrupt an
// entry in place through it to prove that on-disk corruption degrades
// to recomputation, never to wrong bytes.
func (c *Cache) EntryPath(key string) string { return c.path(key) }

// Entries lists the key of every entry currently on disk, in
// unspecified order. Tooling and test hook; the store may change
// concurrently, so the listing is only a snapshot.
func (c *Cache) Entries() ([]string, error) {
	var keys []string
	err := filepath.WalkDir(c.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		keys = append(keys, strings.TrimSuffix(d.Name(), ".json"))
		return nil
	})
	return keys, err
}

// Get returns the entry stored under key, or ok=false on a miss. A
// corrupt entry (unreadable JSON, checksum mismatch, wrong embedded
// key) is counted, deleted, and reported as a miss: the caller
// recomputes and the next Put heals the cache.
func (c *Cache) Get(key string) (*Entry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.discardCorrupt(key)
		return nil, false
	}
	if env.Key != key || env.Sum != payloadSum(env.Payload) {
		c.discardCorrupt(key)
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(env.Payload, &e); err != nil {
		c.discardCorrupt(key)
		return nil, false
	}
	c.hits.Add(1)
	return &e, true
}

// discardCorrupt counts and removes a damaged entry, then records the
// miss the caller observes.
func (c *Cache) discardCorrupt(key string) {
	c.corrupt.Add(1)
	c.misses.Add(1)
	os.Remove(c.path(key))
}

// Put stores e under key atomically: the entry is serialized to a
// temporary file in the destination directory and renamed into place,
// so a concurrent Get sees either the complete entry or a miss.
func (c *Cache) Put(key string, e *Entry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	data, err := json.Marshal(envelope{Key: key, Sum: payloadSum(payload), Payload: payload})
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	c.stores.Add(1)
	return nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Stores:  c.stores.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// payloadSum is the checksum embedded next to a payload.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// codeVersion memoizes CodeVersion: the binary does not change while
// the process runs.
var codeVersion struct {
	once sync.Once
	v    string
}

// CodeVersion identifies the code the current process is running: the
// SHA-256 of the executable file itself, making the cache key
// content-addressed all the way down — any rebuild that changes a
// single byte of the binary invalidates every prior entry, with no
// version constant to forget to bump. When the executable cannot be
// read (platform without os.Executable, deleted-while-running), it
// degrades to a process-unique token, so the cache still works within
// the process but can never serve a prior process's entries to code it
// could not identify.
func CodeVersion() string {
	codeVersion.once.Do(func() {
		codeVersion.v = fmt.Sprintf("unversioned-%d-%d", os.Getpid(), time.Now().UnixNano())
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		codeVersion.v = hex.EncodeToString(h.Sum(nil))
	})
	return codeVersion.v
}
