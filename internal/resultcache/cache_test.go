package resultcache

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"autosec/internal/sim"
)

func testEntry(i int) *Entry {
	return &Entry{
		Report: fmt.Sprintf("report %d\nwith a table │ and unicode ═══\n", i),
		Metrics: []sim.Metric{
			{Name: "rate", Value: float64(i) / 7},
			{Name: "err-m", Value: -0.1234567890123456789 * float64(i)},
			{Name: "tiny", Value: 2.2250738585072014e-308},
		},
	}
}

func TestKeyIsPositionalAndCollisionFree(t *testing.T) {
	t.Parallel()
	if Key("a", "b") == Key("ab") || Key("ab", "c") == Key("a", "bc") {
		t.Error("length prefixing failed: distinct part splits share a key")
	}
	if Key("x") != Key("x") {
		t.Error("Key is not deterministic")
	}
	if len(Key()) != 64 {
		t.Errorf("Key() = %q, want 64 hex chars", Key())
	}
}

func TestPutGetRoundTripIsExact(t *testing.T) {
	t.Parallel()
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("exp", "42", "v1")
	want := testEntry(3)
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on an empty cache hit")
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Report != want.Report {
		t.Errorf("report changed through the cache:\n got %q\nwant %q", got.Report, want.Report)
	}
	if !sim.MetricsEqual(got.Metrics, want.Metrics) {
		t.Errorf("metrics changed through the cache:\n got %+v\nwant %+v", got.Metrics, want.Metrics)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 store, 0 corrupt", s)
	}
}

func TestPutRejectsUnmarshalableMetrics(t *testing.T) {
	t.Parallel()
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Report: "r", Metrics: []sim.Metric{{Name: "nan", Value: math.NaN()}}}
	if err := c.Put(Key("k"), e); err == nil {
		t.Error("Put with a NaN metric succeeded, want error")
	}
	if _, ok := c.Get(Key("k")); ok {
		t.Error("rejected Put left a readable entry behind")
	}
}

// entryFile locates the single cache file under the root, failing if
// the layout assumption (dir/<shard>/<key>.json) breaks.
func entryFile(t *testing.T, c *Cache, key string) string {
	t.Helper()
	path := filepath.Join(c.Dir(), key[:2], key+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected entry file: %v", err)
	}
	return path
}

func TestCorruptionIsDetectedDeletedAndCounted(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"flipped payload byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte inside the payload's report text (well past
			// the envelope prefix) without breaking JSON syntax.
			i := strings.Index(string(data), "report")
			if i < 0 {
				t.Fatal("payload text not found")
			}
			data[i] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated file", func(t *testing.T, path string) {
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"entry renamed onto the wrong key", func(t *testing.T, path string) {
			// Keep the file internally consistent but serve it under a
			// different address: the embedded-key check must refuse.
			other := Key("some", "other", "cell")
			dst := filepath.Join(filepath.Dir(filepath.Dir(path)), other[:2], other+".json")
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.Rename(path, dst); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c, err := New(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := Key("exp-ids", "7", "v1")
			if err := c.Put(key, testEntry(1)); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, c, key)
			tc.corrupt(t, path)

			lookup := key
			if tc.name == "entry renamed onto the wrong key" {
				lookup = Key("some", "other", "cell")
			}
			if _, ok := c.Get(lookup); ok {
				t.Fatal("Get served a corrupt entry")
			}
			if s := c.Stats(); s.Corrupt != 1 {
				t.Errorf("corrupt count = %d, want 1 (stats %+v)", s.Corrupt, s)
			}
			// The damaged file is gone: the next Get is a plain miss.
			if _, ok := c.Get(lookup); ok {
				t.Fatal("corrupt entry survived its detection")
			}
			if s := c.Stats(); s.Corrupt != 1 {
				t.Errorf("second Get re-counted corruption: %+v", s)
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	t.Parallel()
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const keys = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				k := Key("cell", fmt.Sprint((w+round)%keys))
				want := testEntry((w + round) % keys)
				if err := c.Put(k, want); err != nil {
					errs <- err
					return
				}
				got, ok := c.Get(k)
				if !ok {
					continue // another writer may be mid-rename; a miss is legal, wrong bytes are not
				}
				if got.Report != want.Report || !sim.MetricsEqual(got.Metrics, want.Metrics) {
					errs <- fmt.Errorf("worker %d round %d: cache served wrong bytes", w, round)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := c.Stats(); s.Corrupt != 0 {
		t.Errorf("concurrent use produced %d corrupt reads (stats %+v)", s.Corrupt, s)
	}
}

func TestCodeVersionIsStableAndSpecific(t *testing.T) {
	t.Parallel()
	v1, v2 := CodeVersion(), CodeVersion()
	if v1 != v2 {
		t.Errorf("CodeVersion not stable within a process: %q vs %q", v1, v2)
	}
	// Under `go test` the executable is the test binary, which is
	// always hashable, so we must get a real digest, not the fallback.
	if len(v1) != 64 {
		t.Errorf("CodeVersion = %q, want a sha256 hex digest of the test binary", v1)
	}
}

func TestNewValidatesDir(t *testing.T) {
	t.Parallel()
	if _, err := New(""); err == nil {
		t.Error("New(\"\") succeeded, want error")
	}
	// A nested, not-yet-existing path is created on demand.
	dir := filepath.Join(t.TempDir(), "a", "b", "cache")
	if _, err := New(dir); err != nil {
		t.Errorf("New on a nested fresh path: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("cache root was not created: %v", err)
	}
}
