package macsec

import (
	"testing"

	"autosec/internal/ethernet"
	"autosec/internal/vcrypto"
)

// FuzzVerify throws arbitrary bytes at the MACsec receive path: it must
// reject everything not produced by Protect, without panicking.
func FuzzVerify(f *testing.F) {
	key := vcrypto.DeriveKey([]byte("fuzz-cak-material"), "sak", "f", 16)
	sciA := SCIFromMAC(ethernet.MAC{2, 0, 0, 0, 0, 1}, 1)
	rx, err := NewSecY(Confidential, SCIFromMAC(ethernet.MAC{2, 0, 0, 0, 0, 2}, 1), key, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := rx.AddPeer(sciA, key, 0); err != nil {
		f.Fatal(err)
	}
	tx, err := NewSecY(Confidential, sciA, key, 0)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := tx.Protect(&ethernet.Frame{
		Dst: ethernet.MAC{2, 0, 0, 0, 0, 2}, Src: ethernet.MAC{2, 0, 0, 0, 0, 1},
		EtherType: ethernet.EtherTypeApp, Payload: []byte("seed"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Payload)
	f.Add([]byte{})
	f.Add(make([]byte, secTAGLen))
	f.Fuzz(func(t *testing.T, payload []byte) {
		frame := &ethernet.Frame{
			Dst: ethernet.MAC{2, 0, 0, 0, 0, 2}, Src: ethernet.MAC{2, 0, 0, 0, 0, 1},
			EtherType: ethernet.EtherTypeMACsec, Payload: payload,
		}
		// Must never panic; mutated inputs must not verify (the seed
		// input may verify once, then its PN is consumed).
		_, _ = rx.Verify(frame)
	})
}

// FuzzUnmarshalMKPDU hardens the key-agreement PDU parser.
func FuzzUnmarshalMKPDU(f *testing.F) {
	p, err := NewParticipant("srv", "ca", []byte("pre-shared-cak-16bytes!"), 1)
	if err != nil {
		f.Fatal(err)
	}
	pdu, err := p.DistributeSAK(1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pdu.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 2, 'c', 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalMKPDU(data)
		if err != nil {
			return
		}
		// Anything parsed must survive a marshal round trip.
		round, err := UnmarshalMKPDU(parsed.Marshal())
		if err != nil {
			t.Fatalf("accepted PDU failed round trip: %v", err)
		}
		if round.CKN != parsed.CKN || round.SAKID != parsed.SAKID {
			t.Fatal("round trip not stable")
		}
	})
}
