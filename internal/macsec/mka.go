package macsec

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"autosec/internal/vcrypto"
)

// This file models MACsec Key Agreement (IEEE 802.1X MKA, paper ref
// [25]) closely enough for the S2/S3 experiments: participants share a
// connectivity association key (CAK); the elected key server derives a
// SAK and distributes it wrapped and authenticated with keys derived
// from the CAK. A participant holding the wrong CAK can neither forge
// MKPDUs nor unwrap the SAK.

// CAKName identifies a connectivity association (the CKN of 802.1X).
type CAKName string

// Participant is one MKA peer.
type Participant struct {
	Name     string
	ckn      CAKName
	cak      []byte
	ick, kek []byte // ICV key and key-encryption key, derived from CAK
	priority uint8
	sak      []byte
	sakID    uint32
}

// NewParticipant creates an MKA participant from the pre-shared CAK.
// Lower priority value wins key-server election.
func NewParticipant(name string, ckn CAKName, cak []byte, priority uint8) (*Participant, error) {
	if len(cak) < 16 {
		return nil, fmt.Errorf("macsec: CAK must be at least 16 bytes")
	}
	return &Participant{
		Name:     name,
		ckn:      ckn,
		cak:      append([]byte(nil), cak...),
		ick:      vcrypto.DeriveKey(cak, "mka-ick", string(ckn), 16),
		kek:      vcrypto.DeriveKey(cak, "mka-kek", string(ckn), 16),
		priority: priority,
	}, nil
}

// MKPDU is a key-distribution message.
type MKPDU struct {
	CKN        CAKName
	ServerName string
	SAKID      uint32
	WrappedSAK []byte // SAK encrypted under the KEK
	ICV        []byte // authentication tag under the ICK
}

// ElectKeyServer returns the participant with the lowest priority
// (ties by name, as 802.1X breaks ties by SCI).
func ElectKeyServer(peers []*Participant) (*Participant, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("macsec: no participants")
	}
	best := peers[0]
	for _, p := range peers[1:] {
		if p.priority < best.priority || (p.priority == best.priority && p.Name < best.Name) {
			best = p
		}
	}
	return best, nil
}

// DistributeSAK has the key server generate SAK number sakID and build
// the MKPDU that carries it.
func (p *Participant) DistributeSAK(sakID uint32) (*MKPDU, error) {
	sak := vcrypto.DeriveKey(p.cak, "mka-sak", fmt.Sprintf("%s/%d", p.ckn, sakID), 16)
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], sakID)
	wrapped, err := vcrypto.GCMSeal(p.kek, 0, sakID, []byte(p.ckn), sak)
	if err != nil {
		return nil, err
	}
	icvMsg := append(append([]byte(p.ckn), idBuf[:]...), wrapped...)
	icv, err := vcrypto.GCMTag(p.ick, 0, sakID, icvMsg)
	if err != nil {
		return nil, err
	}
	p.sak = sak
	p.sakID = sakID
	return &MKPDU{CKN: p.ckn, ServerName: p.Name, SAKID: sakID, WrappedSAK: wrapped, ICV: icv}, nil
}

// AcceptSAK verifies an MKPDU and installs the carried SAK. It fails for
// participants holding a different CAK.
func (p *Participant) AcceptSAK(pdu *MKPDU) error {
	if pdu.CKN != p.ckn {
		return fmt.Errorf("macsec: MKPDU for CKN %q, have %q", pdu.CKN, p.ckn)
	}
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], pdu.SAKID)
	icvMsg := append(append([]byte(pdu.CKN), idBuf[:]...), pdu.WrappedSAK...)
	if !vcrypto.GCMVerifyTag(p.ick, 0, pdu.SAKID, icvMsg, pdu.ICV) {
		return fmt.Errorf("macsec: MKPDU ICV invalid (CAK mismatch or tamper)")
	}
	sak, err := vcrypto.GCMOpen(p.kek, 0, pdu.SAKID, []byte(pdu.CKN), pdu.WrappedSAK)
	if err != nil {
		return fmt.Errorf("macsec: SAK unwrap failed: %w", err)
	}
	p.sak = sak
	p.sakID = pdu.SAKID
	return nil
}

// SAK returns the installed session key (nil if none yet).
func (p *Participant) SAK() []byte { return p.sak }

// SAKID returns the installed SAK's identifier.
func (p *Participant) SAKID() uint32 { return p.sakID }

// SharesSAK reports whether two participants hold the same session key.
func SharesSAK(a, b *Participant) bool {
	return a.sak != nil && bytes.Equal(a.sak, b.sak)
}

// Marshal serializes the MKPDU for transport (e.g. through a CANAL
// tunnel in scenario S3).
func (p *MKPDU) Marshal() []byte {
	out := make([]byte, 0, 16+len(p.CKN)+len(p.ServerName)+len(p.WrappedSAK)+len(p.ICV))
	put := func(b []byte) {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(b)))
		out = append(out, l[:]...)
		out = append(out, b...)
	}
	put([]byte(p.CKN))
	put([]byte(p.ServerName))
	var id [4]byte
	binary.BigEndian.PutUint32(id[:], p.SAKID)
	out = append(out, id[:]...)
	put(p.WrappedSAK)
	put(p.ICV)
	return out
}

// UnmarshalMKPDU reverses Marshal.
func UnmarshalMKPDU(data []byte) (*MKPDU, error) {
	var pdu MKPDU
	take := func() ([]byte, error) {
		if len(data) < 2 {
			return nil, fmt.Errorf("macsec: truncated MKPDU")
		}
		n := int(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
		if len(data) < n {
			return nil, fmt.Errorf("macsec: truncated MKPDU field")
		}
		f := data[:n]
		data = data[n:]
		return f, nil
	}
	ckn, err := take()
	if err != nil {
		return nil, err
	}
	pdu.CKN = CAKName(ckn)
	name, err := take()
	if err != nil {
		return nil, err
	}
	pdu.ServerName = string(name)
	if len(data) < 4 {
		return nil, fmt.Errorf("macsec: truncated MKPDU SAK id")
	}
	pdu.SAKID = binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if pdu.WrappedSAK, err = take(); err != nil {
		return nil, err
	}
	if pdu.ICV, err = take(); err != nil {
		return nil, err
	}
	pdu.WrappedSAK = append([]byte(nil), pdu.WrappedSAK...)
	pdu.ICV = append([]byte(nil), pdu.ICV...)
	return &pdu, nil
}
