package macsec

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/ethernet"
	"autosec/internal/vcrypto"
)

var sak = vcrypto.DeriveKey([]byte("test-cak-material"), "sak", "t", 16)

func macA() ethernet.MAC { return ethernet.MAC{2, 0, 0, 0, 0, 0xA} }
func macB() ethernet.MAC { return ethernet.MAC{2, 0, 0, 0, 0, 0xB} }

func securedPair(t *testing.T, mode Mode) (*SecY, *SecY) {
	t.Helper()
	sciA := SCIFromMAC(macA(), 1)
	sciB := SCIFromMAC(macB(), 1)
	a, err := NewSecY(mode, sciA, sak, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecY(mode, sciB, sak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(sciB, sak, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(sciA, sak, 0); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func appFrame(payload string) *ethernet.Frame {
	return &ethernet.Frame{
		Dst: macB(), Src: macA(),
		EtherType: ethernet.EtherTypeApp,
		Payload:   []byte(payload),
	}
}

func TestProtectVerifyConfidential(t *testing.T) {
	a, b := securedPair(t, Confidential)
	sec, err := a.Protect(appFrame("steering torque"))
	if err != nil {
		t.Fatal(err)
	}
	if sec.EtherType != ethernet.EtherTypeMACsec {
		t.Errorf("ethertype %#x", sec.EtherType)
	}
	if bytes.Contains(sec.Payload, []byte("steering")) {
		t.Error("plaintext visible in confidential mode")
	}
	got, err := b.Verify(sec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "steering torque" || got.EtherType != ethernet.EtherTypeApp {
		t.Errorf("restored %+v", got)
	}
}

func TestProtectVerifyIntegrityOnly(t *testing.T) {
	a, b := securedPair(t, IntegrityOnly)
	sec, err := a.Protect(appFrame("visible but authenticated"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sec.Payload, []byte("visible but authenticated")) {
		t.Error("integrity-only mode should not encrypt")
	}
	got, err := b.Verify(sec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "visible but authenticated" {
		t.Errorf("restored %q", got.Payload)
	}
}

func TestVerifyRejectsTamperBothModes(t *testing.T) {
	for _, mode := range []Mode{Confidential, IntegrityOnly} {
		a, b := securedPair(t, mode)
		sec, err := a.Protect(appFrame("brake command"))
		if err != nil {
			t.Fatal(err)
		}
		sec.Payload[secTAGLen+1] ^= 0x01
		if _, err := b.Verify(sec); err == nil {
			t.Errorf("%v: tampered frame accepted", mode)
		}
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	a, b := securedPair(t, Confidential)
	sec, err := a.Protect(appFrame("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(sec); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(sec); err == nil {
		t.Error("replayed frame accepted")
	}
}

func TestReplayWindowAllowsBoundedReorder(t *testing.T) {
	a, b := securedPair(t, Confidential)
	b.ReplayWindow = 4
	f1, _ := a.Protect(appFrame("1"))
	f2, _ := a.Protect(appFrame("2"))
	f3, _ := a.Protect(appFrame("3"))
	if _, err := b.Verify(f3); err != nil {
		t.Fatal(err)
	}
	// PN 1 and 2 are within window 4 of highPN 3.
	if _, err := b.Verify(f1); err != nil {
		t.Errorf("in-window reorder rejected: %v", err)
	}
	if _, err := b.Verify(f2); err != nil {
		t.Errorf("in-window reorder rejected: %v", err)
	}
}

func TestVerifyRejectsUnknownSCI(t *testing.T) {
	a, _ := securedPair(t, Confidential)
	stranger, err := NewSecY(Confidential, SCIFromMAC(ethernet.MAC{9, 9, 9, 9, 9, 9}, 1), sak, 0)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := stranger.Protect(appFrame("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(sec); err == nil {
		t.Error("frame from unregistered channel accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	sciA := SCIFromMAC(macA(), 1)
	attacker, err := NewSecY(Confidential, sciA, vcrypto.DeriveKey([]byte("other"), "sak", "x", 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSecY(Confidential, SCIFromMAC(macB(), 1), sak, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(sciA, sak, 0); err != nil {
		t.Fatal(err)
	}
	forged, err := attacker.Protect(appFrame("spoof"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(forged); err == nil {
		t.Error("frame under wrong SAK accepted")
	}
}

func TestRekeyAdvancesANAndResetsPN(t *testing.T) {
	a, b := securedPair(t, Confidential)
	f1, _ := a.Protect(appFrame("pre"))
	if _, err := b.Verify(f1); err != nil {
		t.Fatal(err)
	}
	newSAK := vcrypto.DeriveKey([]byte("test-cak-material"), "sak", "t2", 16)
	if err := a.RekeyTx(newSAK); err != nil {
		t.Fatal(err)
	}
	if a.NextPN() != 1 {
		t.Errorf("PN after rekey = %d", a.NextPN())
	}
	// Receiver must install the new key+AN to keep verifying.
	if err := b.AddPeer(SCIFromMAC(macA(), 1), newSAK, 1); err != nil {
		t.Fatal(err)
	}
	f2, err := a.Protect(appFrame("post"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Verify(f2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "post" {
		t.Errorf("post-rekey payload %q", got.Payload)
	}
}

func TestNeedRekeyPolicy(t *testing.T) {
	a, _ := securedPair(t, Confidential)
	if a.NeedRekey(0.75) {
		t.Error("fresh channel demands rekey")
	}
	// Driving 3 billion Protect calls is impractical; check the
	// boundary arithmetic with a tiny fraction instead.
	if _, err := a.Protect(appFrame("x")); err != nil {
		t.Fatal(err)
	}
	if !a.NeedRekey(1e-10) {
		t.Error("threshold arithmetic wrong")
	}
}

func TestOverheadConstant(t *testing.T) {
	a, _ := securedPair(t, Confidential)
	f := appFrame("12345678")
	sec, err := a.Protect(f)
	if err != nil {
		t.Fatal(err)
	}
	// inner = ethertype(2)+payload; MACsec payload = SecTAG + sealed.
	gotOverhead := len(sec.Payload) - len(f.Payload)
	if gotOverhead != Overhead+2 {
		t.Errorf("overhead = %d, want %d", gotOverhead, Overhead+2)
	}
}

func TestPropertyRoundTripAnyPayload(t *testing.T) {
	a, b := securedPair(t, Confidential)
	f := func(payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		fr := &ethernet.Frame{Dst: macB(), Src: macA(), EtherType: ethernet.EtherTypeApp, Payload: payload}
		sec, err := a.Protect(fr)
		if err != nil {
			return false
		}
		got, err := b.Verify(sec)
		return err == nil && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSecYValidation(t *testing.T) {
	if _, err := NewSecY(Confidential, 1, []byte("short"), 0); err == nil {
		t.Error("short SAK accepted")
	}
	s, _ := NewSecY(Confidential, 1, sak, 0)
	if err := s.AddPeer(2, []byte("short"), 0); err == nil {
		t.Error("short peer SAK accepted")
	}
	if err := s.RekeyTx([]byte("short")); err == nil {
		t.Error("short rekey SAK accepted")
	}
}

func TestVerifyNonMACsecFrame(t *testing.T) {
	a, _ := securedPair(t, Confidential)
	if _, err := a.Verify(appFrame("plain")); err == nil {
		t.Error("plain frame accepted by Verify")
	}
}

// --- MKA ---

func TestMKADistributeAndAccept(t *testing.T) {
	cak := []byte("pre-shared-cak-16bytes!")
	server, err := NewParticipant("cc", "ca-1", cak, 1)
	if err != nil {
		t.Fatal(err)
	}
	peer, err := NewParticipant("zc-left", "ca-1", cak, 10)
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := server.DistributeSAK(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.AcceptSAK(pdu); err != nil {
		t.Fatal(err)
	}
	if !SharesSAK(server, peer) {
		t.Error("participants do not share the SAK")
	}
	if peer.SAKID() != 1 {
		t.Errorf("SAKID = %d", peer.SAKID())
	}
}

func TestMKARejectsWrongCAK(t *testing.T) {
	server, _ := NewParticipant("cc", "ca-1", []byte("pre-shared-cak-16bytes!"), 1)
	rogue, _ := NewParticipant("rogue", "ca-1", []byte("a-different-cak-yes-sir"), 5)
	pdu, err := server.DistributeSAK(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.AcceptSAK(pdu); err == nil {
		t.Error("participant with wrong CAK obtained the SAK")
	}
	if SharesSAK(server, rogue) {
		t.Error("rogue shares SAK")
	}
}

func TestMKARejectsWrongCKNAndTamper(t *testing.T) {
	cak := []byte("pre-shared-cak-16bytes!")
	server, _ := NewParticipant("cc", "ca-1", cak, 1)
	other, _ := NewParticipant("p", "ca-2", cak, 2)
	pdu, err := server.DistributeSAK(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AcceptSAK(pdu); err == nil {
		t.Error("cross-CKN MKPDU accepted")
	}
	peer, _ := NewParticipant("p2", "ca-1", cak, 2)
	pdu.WrappedSAK[0] ^= 1
	if err := peer.AcceptSAK(pdu); err == nil {
		t.Error("tampered MKPDU accepted")
	}
}

func TestMKAElection(t *testing.T) {
	a, _ := NewParticipant("a", "ca", []byte("pre-shared-cak-16bytes!"), 5)
	b, _ := NewParticipant("b", "ca", []byte("pre-shared-cak-16bytes!"), 2)
	c, _ := NewParticipant("c", "ca", []byte("pre-shared-cak-16bytes!"), 2)
	srv, err := ElectKeyServer([]*Participant{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Name != "b" {
		t.Errorf("elected %s, want b (lowest priority, name tiebreak)", srv.Name)
	}
	if _, err := ElectKeyServer(nil); err == nil {
		t.Error("empty election succeeded")
	}
}

func TestMKAValidation(t *testing.T) {
	if _, err := NewParticipant("x", "ca", []byte("short"), 1); err == nil {
		t.Error("short CAK accepted")
	}
}
