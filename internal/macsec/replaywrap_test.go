package macsec

import (
	"fmt"
	"testing"
)

// TestPNAcceptableNearWrap pins the replay-window comparison at the top
// of the 32-bit PN space. The original expression computed
// pn+ReplayWindow in uint32, which wraps for PNs within ReplayWindow of
// 2^32 and rejected exactly the fresh frames sent while a loaded
// channel approaches PN exhaustion (the moment MKA must rekey).
func TestPNAcceptableNearWrap(t *testing.T) {
	const max = ^uint32(0)
	cases := []struct {
		name   string
		window uint32
		highPN uint32
		pn     uint32
		want   bool
	}{
		// The regression: pn+window wrapped to a small value in uint32,
		// so these fresh above-high PNs were rejected.
		{"fresh PN at top of space", 10, max - 5, max, true},
		{"fresh PN equals max", 4, max - 1, max, true},
		{"in-window reorder near wrap", 10, max, max - 5, true},
		// Semantics that must survive the fix.
		{"stale below window near wrap", 10, max, max - 10, false},
		{"window edge accepted", 10, max, max - 9, true},
		{"zero PN never acceptable", 10, max - 5, 0, false},
		{"strict mode above high", 0, max - 1, max, true},
		{"strict mode replay", 0, max, max, false},
		// Ordinary mid-range behaviour, unchanged.
		{"mid-range fresh", 4, 100, 101, true},
		{"mid-range in window", 4, 100, 97, true},
		{"mid-range stale", 4, 100, 96, false},
	}
	for _, tc := range cases {
		s := &SecY{ReplayWindow: tc.window}
		ch := &rxChannel{highPN: tc.highPN}
		if got := s.pnAcceptable(ch, tc.pn); got != tc.want {
			t.Errorf("%s: pnAcceptable(high=%d, pn=%d, window=%d) = %v, want %v",
				tc.name, tc.highPN, tc.pn, tc.window, got, tc.want)
		}
	}
}

// TestVerifyAcceptsFrameNearPNWrap drives the same regression through
// the full Verify path: a receive channel whose high PN sits near the
// top of the space must still accept the next protected frames.
func TestVerifyAcceptsFrameNearPNWrap(t *testing.T) {
	a, b := securedPair(t, Confidential)
	b.ReplayWindow = 8
	// Fast-forward both sides to the top of the PN space: the sender's
	// next PN and the receiver's record of it.
	const nearTop = ^uint32(0) - 3
	a.nexPN = nearTop
	b.peers[a.sci].highPN = nearTop - 1

	for i := 0; i < 3; i++ {
		sec, err := a.Protect(appFrame(fmt.Sprintf("wrap-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Verify(sec); err != nil {
			t.Fatalf("frame %d near PN wrap rejected: %v", i, err)
		}
	}
}
