// Package macsec implements IEEE 802.1AE MACsec (paper ref [20]) for the
// in-vehicle Ethernet links of §III: per-channel AES-GCM protection with
// a SecTAG carrying the packet number, strict replay protection, both
// confidentiality and integrity-only modes, and an MKA-style key
// agreement (paper ref [25]) that derives and distributes session keys
// (SAKs) from a pre-shared connectivity association key (CAK).
//
// Exercised by experiments tab1, fig4-fig6, exp-vehicle, and exp-zc.
package macsec

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/ethernet"
	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Mode selects the protection applied to the user data.
type Mode int

const (
	// Confidential encrypts and authenticates (TCI E=1, C=1).
	Confidential Mode = iota
	// IntegrityOnly authenticates without encrypting (E=0).
	IntegrityOnly
)

func (m Mode) String() string {
	if m == Confidential {
		return "confidential"
	}
	return "integrity-only"
}

// SecTAG is the MACsec security tag.
type SecTAG struct {
	AN  uint8  // association number (0–3)
	PN  uint32 // packet number
	SCI uint64 // secure channel identifier
	Enc bool   // E bit: payload encrypted
}

const secTAGLen = 14 // simplified fixed-length tag: flags+AN, PN, SCI
const icvLen = 16

// Overhead is the total bytes MACsec adds to a frame's payload (SecTAG
// plus ICV). The EtherType change is not counted (same width).
const Overhead = secTAGLen + icvLen

func (t *SecTAG) marshal() []byte {
	buf := make([]byte, secTAGLen)
	flags := t.AN & 0x03
	if t.Enc {
		flags |= 0x08
	}
	buf[0] = flags
	binary.BigEndian.PutUint32(buf[2:6], t.PN)
	binary.BigEndian.PutUint64(buf[6:14], t.SCI)
	return buf
}

func parseSecTAG(b []byte) (*SecTAG, error) {
	var t SecTAG
	if err := parseSecTAGInto(b, &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// parseSecTAGInto is the allocation-free form of parseSecTAG for the
// batch verify path.
func parseSecTAGInto(b []byte, t *SecTAG) error {
	if len(b) < secTAGLen {
		return fmt.Errorf("macsec: short SecTAG")
	}
	t.AN = b[0] & 0x03
	t.Enc = b[0]&0x08 != 0
	t.PN = binary.BigEndian.Uint32(b[2:6])
	t.SCI = binary.BigEndian.Uint64(b[6:14])
	return nil
}

// SCIFromMAC builds a secure channel identifier from a MAC and port id,
// as 802.1AE does.
func SCIFromMAC(mac ethernet.MAC, port uint16) uint64 {
	var b [8]byte
	copy(b[:6], mac[:])
	binary.BigEndian.PutUint16(b[6:], port)
	return binary.BigEndian.Uint64(b[:])
}

// SecY is a MACsec entity on one port: it protects egress frames on its
// transmit secure channel and verifies ingress frames from known peer
// channels.
type SecY struct {
	mode  Mode
	sci   uint64
	an    uint8
	sak   []byte
	nexPN uint32
	// rx state per peer SCI
	peers map[uint64]*rxChannel
	// ReplayWindow 0 means strict in-order; >0 tolerates reordering.
	ReplayWindow uint32

	// Batch-path scratch (see batch.go): inner frame, AAD, and
	// integrity-only MAC message buffers reused across frames.
	innerBuf []byte
	aadBuf   []byte
	msgBuf   []byte
}

type rxChannel struct {
	sak    []byte
	an     uint8
	highPN uint32
}

// NewSecY creates a MACsec entity for a transmit channel identified by
// sci, initially keyed with sak under association number an.
func NewSecY(mode Mode, sci uint64, sak []byte, an uint8) (*SecY, error) {
	if len(sak) != 16 && len(sak) != 32 {
		return nil, fmt.Errorf("macsec: SAK must be 16 or 32 bytes, got %d", len(sak))
	}
	return &SecY{
		mode: mode, sci: sci, an: an & 3,
		sak:   append([]byte(nil), sak...),
		nexPN: 1,
		peers: make(map[uint64]*rxChannel),
	}, nil
}

// AddPeer registers a receive channel keyed with the peer's SAK.
func (s *SecY) AddPeer(sci uint64, sak []byte, an uint8) error {
	if len(sak) != 16 && len(sak) != 32 {
		return fmt.Errorf("macsec: peer SAK length %d", len(sak))
	}
	s.peers[sci] = &rxChannel{sak: append([]byte(nil), sak...), an: an & 3}
	return nil
}

// RekeyTx installs a new transmit SAK under the next association number
// and resets the packet number — the operation MKA performs as PN
// exhaustion approaches.
func (s *SecY) RekeyTx(sak []byte) error {
	if len(sak) != 16 && len(sak) != 32 {
		return fmt.Errorf("macsec: SAK length %d", len(sak))
	}
	s.sak = append([]byte(nil), sak...)
	s.an = (s.an + 1) & 3
	s.nexPN = 1
	return nil
}

// NextPN exposes the transmit packet number (for rekey policy tests).
func (s *SecY) NextPN() uint32 { return s.nexPN }

// NeedRekey reports whether the transmit packet number has crossed the
// given fraction of its space — the trigger MKA uses to distribute a
// fresh SAK before PN exhaustion would halt transmission.
func (s *SecY) NeedRekey(fraction float64) bool {
	if fraction <= 0 {
		fraction = 0.75
	}
	return float64(s.nexPN) >= fraction*float64(^uint32(0))
}

// Protect wraps an Ethernet frame in MACsec: the original EtherType and
// payload become the secure data; the SecTAG is authenticated as
// associated data together with the MAC addresses.
func (s *SecY) Protect(f *ethernet.Frame) (*ethernet.Frame, error) {
	if s.nexPN == 0 {
		return nil, fmt.Errorf("macsec: transmit PN exhausted; rekey required")
	}
	tag := &SecTAG{AN: s.an, PN: s.nexPN, SCI: s.sci, Enc: s.mode == Confidential}
	s.nexPN++

	inner := make([]byte, 2+len(f.Payload))
	binary.BigEndian.PutUint16(inner[0:2], f.EtherType)
	copy(inner[2:], f.Payload)

	aad := buildAAD(f.Dst, f.Src, tag)
	var body []byte
	var err error
	if s.mode == Confidential {
		body, err = vcrypto.GCMSeal(s.sak, tag.SCI, tag.PN, aad, inner)
	} else {
		var icv []byte
		icv, err = vcrypto.GCMTag(s.sak, tag.SCI, tag.PN, append(aad, inner...))
		body = append(append([]byte(nil), inner...), icv...)
	}
	if err != nil {
		return nil, err
	}

	out := &ethernet.Frame{
		Dst: f.Dst, Src: f.Src, VLAN: f.VLAN,
		EtherType: ethernet.EtherTypeMACsec,
		Payload:   append(tag.marshal(), body...),
	}
	return out, out.Validate()
}

// Verify unwraps a MACsec frame from a registered peer, enforcing
// replay protection, and returns the restored inner frame.
func (s *SecY) Verify(f *ethernet.Frame) (*ethernet.Frame, error) {
	if f.EtherType != ethernet.EtherTypeMACsec {
		return nil, fmt.Errorf("macsec: not a MACsec frame (ethertype %#x)", f.EtherType)
	}
	tag, err := parseSecTAG(f.Payload)
	if err != nil {
		return nil, err
	}
	ch, ok := s.peers[tag.SCI]
	if !ok {
		return nil, fmt.Errorf("macsec: unknown SCI %#x", tag.SCI)
	}
	if tag.AN != ch.an {
		return nil, fmt.Errorf("macsec: association number %d, expected %d", tag.AN, ch.an)
	}
	// Replay check before crypto, per 802.1AE.
	if !s.pnAcceptable(ch, tag.PN) {
		return nil, fmt.Errorf("macsec: replay: PN %d not above %d (window %d)", tag.PN, ch.highPN, s.ReplayWindow)
	}

	body := f.Payload[secTAGLen:]
	aad := buildAAD(f.Dst, f.Src, tag)
	var inner []byte
	if tag.Enc {
		inner, err = vcrypto.GCMOpen(ch.sak, tag.SCI, tag.PN, aad, body)
		if err != nil {
			return nil, err
		}
	} else {
		if len(body) < icvLen {
			return nil, fmt.Errorf("macsec: short integrity frame")
		}
		inner = body[:len(body)-icvLen]
		icv := body[len(body)-icvLen:]
		if !vcrypto.GCMVerifyTag(ch.sak, tag.SCI, tag.PN, append(aad, inner...), icv) {
			return nil, fmt.Errorf("macsec: ICV verification failed")
		}
	}
	if len(inner) < 2 {
		return nil, fmt.Errorf("macsec: inner frame too short")
	}
	if tag.PN > ch.highPN {
		ch.highPN = tag.PN
	}
	out := &ethernet.Frame{
		Dst: f.Dst, Src: f.Src, VLAN: f.VLAN,
		EtherType: binary.BigEndian.Uint16(inner[0:2]),
		Payload:   append([]byte(nil), inner[2:]...),
	}
	return out, nil
}

// pnAcceptable applies the 802.1AE replay check through the secchan
// kernel, which computes it in 64 bits — in uint32 arithmetic
// pn+window wraps for PNs within window of 2^32, rejecting exactly the
// fresh frames sent as the channel approaches PN exhaustion (the
// moment MKA rekeys under load).
func (s *SecY) pnAcceptable(ch *rxChannel, pn uint32) bool {
	return secchan.LenientAccept(uint64(ch.highPN), uint64(pn), uint64(s.ReplayWindow))
}

func buildAAD(dst, src ethernet.MAC, tag *SecTAG) []byte {
	aad := make([]byte, 0, 12+secTAGLen)
	aad = append(aad, dst[:]...)
	aad = append(aad, src[:]...)
	aad = append(aad, tag.marshal()...)
	return aad
}
