package macsec

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/ethernet"
	"autosec/internal/vcrypto"
)

// Allocation-free SecY fast paths for batch processing. The single
// frame Protect/Verify build a SecTAG slice, an AAD slice, an inner
// frame, and an output frame per call; at Table I's frame rates those
// allocations dominate the non-crypto cost. ProtectPayload and
// VerifyPayload perform the same protocol steps — same PN movement,
// same replay discipline, same errors — but assemble everything in the
// SecY's scratch and the caller's destination buffer. The secchan suite
// adapter drives them per batch; the frame-based Protect/Verify remain
// the general API.

// appendMarshal appends the SecTAG wire form to dst (the allocation-free
// form of marshal).
func (t *SecTAG) appendMarshal(dst []byte) []byte {
	var buf [secTAGLen]byte
	flags := t.AN & 0x03
	if t.Enc {
		flags |= 0x08
	}
	buf[0] = flags
	binary.BigEndian.PutUint32(buf[2:6], t.PN)
	binary.BigEndian.PutUint64(buf[6:14], t.SCI)
	return append(dst, buf[:]...)
}

// appendAAD appends the associated data (MACs ‖ SecTAG) to dst, the
// allocation-free form of buildAAD.
func appendAAD(dst []byte, dstMAC, srcMAC ethernet.MAC, tag *SecTAG) []byte {
	dst = append(dst, dstMAC[:]...)
	dst = append(dst, srcMAC[:]...)
	return tag.appendMarshal(dst)
}

// ProtectPayload protects f exactly as Protect does but returns only
// the MACsec frame payload (SecTAG ‖ body), built in dst's backing
// array. The emitted bytes, PN consumption, and errors are identical to
// Protect's.
func (s *SecY) ProtectPayload(dst []byte, f *ethernet.Frame) ([]byte, error) {
	if s.nexPN == 0 {
		return nil, fmt.Errorf("macsec: transmit PN exhausted; rekey required")
	}
	tag := SecTAG{AN: s.an, PN: s.nexPN, SCI: s.sci, Enc: s.mode == Confidential}
	s.nexPN++

	inner := s.innerBuf[:0]
	var et [2]byte
	binary.BigEndian.PutUint16(et[:], f.EtherType)
	inner = append(append(inner, et[:]...), f.Payload...)
	s.innerBuf = inner[:0]

	aad := appendAAD(s.aadBuf[:0], f.Dst, f.Src, &tag)
	s.aadBuf = aad[:0]

	out := tag.appendMarshal(dst[:0])
	var err error
	if s.mode == Confidential {
		out, err = vcrypto.GCMSealInto(out, s.sak, tag.SCI, tag.PN, aad, inner)
	} else {
		msg := append(append(s.msgBuf[:0], aad...), inner...)
		s.msgBuf = msg[:0]
		out = append(out, inner...)
		out, err = vcrypto.GCMTagInto(out, s.sak, tag.SCI, tag.PN, msg)
	}
	if err != nil {
		return nil, err
	}
	// Protect validates the wrapped frame; only the payload size check
	// can fire, and only for oversized input (cold path).
	if len(out) > ethernet.MaxPayload {
		bad := ethernet.Frame{EtherType: ethernet.EtherTypeMACsec, Payload: out}
		return nil, bad.Validate()
	}
	return out, nil
}

// VerifyPayload verifies one MACsec frame payload (wire) received on a
// frame addressed dstMAC←srcMAC with the MACsec EtherType, appending
// the restored inner payload (what follows the inner EtherType) to dst.
// Replay discipline, highPN movement, and errors are identical to
// Verify's.
func (s *SecY) VerifyPayload(dst []byte, dstMAC, srcMAC ethernet.MAC, wire []byte) ([]byte, error) {
	var tag SecTAG
	if err := parseSecTAGInto(wire, &tag); err != nil {
		return nil, err
	}
	ch, ok := s.peers[tag.SCI]
	if !ok {
		return nil, fmt.Errorf("macsec: unknown SCI %#x", tag.SCI)
	}
	if tag.AN != ch.an {
		return nil, fmt.Errorf("macsec: association number %d, expected %d", tag.AN, ch.an)
	}
	if !s.pnAcceptable(ch, tag.PN) {
		return nil, fmt.Errorf("macsec: replay: PN %d not above %d (window %d)", tag.PN, ch.highPN, s.ReplayWindow)
	}

	body := wire[secTAGLen:]
	aad := appendAAD(s.aadBuf[:0], dstMAC, srcMAC, &tag)
	s.aadBuf = aad[:0]
	var inner []byte
	if tag.Enc {
		opened, err := vcrypto.GCMOpenInto(s.innerBuf[:0], ch.sak, tag.SCI, tag.PN, aad, body)
		if err != nil {
			return nil, err
		}
		inner = opened
		s.innerBuf = inner[:0]
	} else {
		if len(body) < icvLen {
			return nil, fmt.Errorf("macsec: short integrity frame")
		}
		inner = body[:len(body)-icvLen]
		icv := body[len(body)-icvLen:]
		msg := append(append(s.msgBuf[:0], aad...), inner...)
		s.msgBuf = msg[:0]
		if !vcrypto.GCMVerifyTag(ch.sak, tag.SCI, tag.PN, msg, icv) {
			return nil, fmt.Errorf("macsec: ICV verification failed")
		}
	}
	if len(inner) < 2 {
		return nil, fmt.Errorf("macsec: inner frame too short")
	}
	if tag.PN > ch.highPN {
		ch.highPN = tag.PN
	}
	return append(dst, inner[2:]...), nil
}
