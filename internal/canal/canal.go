// Package canal implements the CAN Adaptation Layer of the paper's
// scenario S3 (Fig. 6): inspired by the ATM Adaptation Layer, it
// segments Ethernet frames (including MACsec-protected ones and MKA key
// agreement PDUs) into CAN XL frames and reassembles them at the far
// end, so end-to-end Ethernet-layer security can reach endpoints that
// sit on a CAN bus. With CAN XL's 2048-byte payloads most automotive
// Ethernet frames fit in a single segment; classic CAN/FD would need
// many.
//
// Exercised by experiments fig6, ablate-canal, and ablate-scale.
package canal

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/canbus"
	"autosec/internal/ethernet"
)

// segment header: streamID(2) frameSeq(2) segIndex(1) flags(1) totalLen(2)
const headerLen = 8

const flagLast = 0x01

// Adapter segments and reassembles Ethernet frames over CAN frames of a
// chosen format. One Adapter per endpoint per direction-pair.
type Adapter struct {
	// StreamID distinguishes tunnels sharing a bus.
	StreamID uint16
	// Format is the CAN generation used for segments (XL recommended).
	Format canbus.Format
	// PriorityID is the CAN identifier used for segment frames.
	PriorityID uint32
	// MaxSegmentPayload optionally lowers the per-frame payload (for
	// ablation studies); 0 means the format's maximum.
	MaxSegmentPayload int

	frameSeq   uint16
	reassembly map[uint16]*partial // keyed by frame sequence
}

type partial struct {
	segments map[int][]byte
	total    int
	haveLast bool
	lastIdx  int
}

// NewAdapter returns an adapter tunnelling over the given CAN format.
func NewAdapter(streamID uint16, format canbus.Format, priorityID uint32) *Adapter {
	return &Adapter{
		StreamID:   streamID,
		Format:     format,
		PriorityID: priorityID,
		reassembly: make(map[uint16]*partial),
	}
}

// segmentPayload returns the usable payload bytes per CAN frame.
func (a *Adapter) segmentPayload() (int, error) {
	max := a.Format.MaxPayload() - headerLen
	if a.MaxSegmentPayload > 0 && a.MaxSegmentPayload < max {
		max = a.MaxSegmentPayload
	}
	if max <= 0 {
		return 0, fmt.Errorf("canal: %v payload too small for segment header", a.Format)
	}
	return max, nil
}

// Segment splits an Ethernet frame into CAN frames ready for the bus.
func (a *Adapter) Segment(ef *ethernet.Frame) ([]*canbus.Frame, error) {
	if err := ef.Validate(); err != nil {
		return nil, err
	}
	chunk, err := a.segmentPayload()
	if err != nil {
		return nil, err
	}
	data := ef.Marshal()
	if len(data) > 0xFFFF {
		return nil, fmt.Errorf("canal: frame too large: %d", len(data))
	}
	a.frameSeq++
	seq := a.frameSeq

	var out []*canbus.Frame
	for idx, off := 0, 0; off < len(data); idx, off = idx+1, off+chunk {
		if idx > 0xFF {
			return nil, fmt.Errorf("canal: frame needs more than 256 segments")
		}
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		hdr := make([]byte, headerLen)
		binary.BigEndian.PutUint16(hdr[0:2], a.StreamID)
		binary.BigEndian.PutUint16(hdr[2:4], seq)
		hdr[4] = byte(idx)
		if end == len(data) {
			hdr[5] |= flagLast
		}
		binary.BigEndian.PutUint16(hdr[6:8], uint16(len(data)))
		f := &canbus.Frame{
			ID:      a.PriorityID,
			Format:  a.Format,
			SDUType: canbus.SDUEthernet,
			Payload: append(hdr, data[off:end]...),
		}
		if err := f.Validate(); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Accept feeds one received CAN frame into reassembly. It returns the
// completed Ethernet frame when the last missing segment arrives, or
// nil if more segments are needed. Frames for other streams return nil
// without error (another adapter owns them).
func (a *Adapter) Accept(cf *canbus.Frame) (*ethernet.Frame, error) {
	if cf.SDUType != canbus.SDUEthernet {
		return nil, nil
	}
	if len(cf.Payload) < headerLen {
		return nil, fmt.Errorf("canal: segment shorter than header")
	}
	stream := binary.BigEndian.Uint16(cf.Payload[0:2])
	if stream != a.StreamID {
		return nil, nil
	}
	seq := binary.BigEndian.Uint16(cf.Payload[2:4])
	idx := int(cf.Payload[4])
	last := cf.Payload[5]&flagLast != 0
	total := int(binary.BigEndian.Uint16(cf.Payload[6:8]))
	body := cf.Payload[headerLen:]

	p, ok := a.reassembly[seq]
	if !ok {
		p = &partial{segments: make(map[int][]byte), total: total}
		a.reassembly[seq] = p
	}
	if p.total != total {
		delete(a.reassembly, seq)
		return nil, fmt.Errorf("canal: inconsistent total length in stream %d seq %d", stream, seq)
	}
	p.segments[idx] = append([]byte(nil), body...)
	if last {
		p.haveLast = true
		p.lastIdx = idx
	}
	if !p.haveLast {
		return nil, nil
	}
	// Try assembly: all indices 0..lastIdx present.
	var buf []byte
	for i := 0; i <= p.lastIdx; i++ {
		seg, ok := p.segments[i]
		if !ok {
			return nil, nil // still missing a middle segment
		}
		buf = append(buf, seg...)
	}
	delete(a.reassembly, seq)
	if len(buf) != p.total {
		return nil, fmt.Errorf("canal: reassembled %d bytes, header said %d", len(buf), p.total)
	}
	return ethernet.Unmarshal(buf)
}

// Pending reports how many frames are partially reassembled (leak and
// loss diagnostics).
func (a *Adapter) Pending() int { return len(a.reassembly) }

// SegmentOverheadBytes reports the tunnel overhead for a frame of the
// given marshalled size: header bytes per segment.
func (a *Adapter) SegmentOverheadBytes(frameBytes int) (int, error) {
	chunk, err := a.segmentPayload()
	if err != nil {
		return 0, err
	}
	nSegs := (frameBytes + chunk - 1) / chunk
	return nSegs * headerLen, nil
}
