package canal

import (
	"testing"

	"autosec/internal/canbus"
	"autosec/internal/ethernet"
)

// FuzzAccept feeds arbitrary segment payloads into the reassembler: no
// input may panic it or make it emit a frame that was never segmented.
func FuzzAccept(f *testing.F) {
	tx := NewAdapter(1, canbus.XL, 0x100)
	segs, err := tx.Segment(&ethernet.Frame{
		Dst: ethernet.MAC{1}, Src: ethernet.MAC{2},
		EtherType: ethernet.EtherTypeApp, Payload: []byte("seed payload"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(segs[0].Payload)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 1, 0, flagLast, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rx := NewAdapter(1, canbus.XL, 0x100)
		frame := &canbus.Frame{ID: 0x100, Format: canbus.XL, SDUType: canbus.SDUEthernet, Payload: payload}
		// Must not panic; errors and nil results are both fine.
		_, _ = rx.Accept(frame)
	})
}
