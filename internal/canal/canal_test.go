package canal

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/canbus"
	"autosec/internal/ethernet"
)

func ethFrame(n int) *ethernet.Frame {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &ethernet.Frame{
		Dst: ethernet.MAC{2, 0, 0, 0, 0, 1}, Src: ethernet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: ethernet.EtherTypeApp, Payload: payload,
	}
}

func TestSingleSegmentOverXL(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.XL, 0x200)
	rx := NewAdapter(1, canbus.XL, 0x200)
	segs, err := tx.Segment(ethFrame(1400))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("1400-byte frame needed %d XL segments, want 1", len(segs))
	}
	got, err := rx.Accept(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || !bytes.Equal(got.Payload, ethFrame(1400).Payload) {
		t.Error("reassembly mismatch")
	}
}

func TestMultiSegmentOverFD(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.FD, 0x200)
	rx := NewAdapter(1, canbus.FD, 0x200)
	orig := ethFrame(500)
	segs, err := tx.Segment(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 9 { // (500+16)/56
		t.Fatalf("only %d FD segments", len(segs))
	}
	var got *ethernet.Frame
	for _, s := range segs {
		f, err := rx.Accept(s)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			got = f
		}
	}
	if got == nil {
		t.Fatal("frame never completed")
	}
	if !bytes.Equal(got.Payload, orig.Payload) || got.EtherType != orig.EtherType || got.Dst != orig.Dst {
		t.Error("reassembled frame differs")
	}
	if rx.Pending() != 0 {
		t.Errorf("pending = %d after completion", rx.Pending())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.FD, 0x200)
	rx := NewAdapter(1, canbus.FD, 0x200)
	segs, err := tx.Segment(ethFrame(300))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in reverse.
	var got *ethernet.Frame
	for i := len(segs) - 1; i >= 0; i-- {
		f, err := rx.Accept(segs[i])
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			got = f
		}
	}
	if got == nil || !bytes.Equal(got.Payload, ethFrame(300).Payload) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestMissingSegmentNeverCompletes(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.FD, 0x200)
	rx := NewAdapter(1, canbus.FD, 0x200)
	segs, err := tx.Segment(ethFrame(300))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		if i == 2 {
			continue // drop one middle segment
		}
		f, err := rx.Accept(s)
		if err != nil {
			t.Fatal(err)
		}
		if f != nil {
			t.Fatal("frame completed despite missing segment")
		}
	}
	if rx.Pending() != 1 {
		t.Errorf("pending = %d, want 1", rx.Pending())
	}
}

func TestForeignStreamIgnored(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.XL, 0x200)
	rx := NewAdapter(2, canbus.XL, 0x200)
	segs, err := tx.Segment(ethFrame(100))
	if err != nil {
		t.Fatal(err)
	}
	f, err := rx.Accept(segs[0])
	if err != nil || f != nil {
		t.Errorf("foreign stream: f=%v err=%v", f, err)
	}
	// Non-Ethernet SDU also ignored.
	plain := &canbus.Frame{ID: 1, Format: canbus.XL, SDUType: canbus.SDUData, Payload: make([]byte, 32)}
	f, err = rx.Accept(plain)
	if err != nil || f != nil {
		t.Errorf("plain SDU: f=%v err=%v", f, err)
	}
}

func TestInterleavedFramesReassemble(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.FD, 0x200)
	rx := NewAdapter(1, canbus.FD, 0x200)
	f1 := ethFrame(200)
	f2 := ethFrame(250)
	s1, err := tx.Segment(f1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tx.Segment(f2)
	if err != nil {
		t.Fatal(err)
	}
	var done []*ethernet.Frame
	maxLen := len(s1)
	if len(s2) > maxLen {
		maxLen = len(s2)
	}
	for i := 0; i < maxLen; i++ {
		for _, segs := range [][]*canbus.Frame{s1, s2} {
			if i < len(segs) {
				f, err := rx.Accept(segs[i])
				if err != nil {
					t.Fatal(err)
				}
				if f != nil {
					done = append(done, f)
				}
			}
		}
	}
	if len(done) != 2 {
		t.Fatalf("completed %d frames, want 2", len(done))
	}
}

func TestSegmentOversizeErrors(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(1, canbus.XL, 0x200)
	bad := ethFrame(ethernet.MaxPayload + 1)
	if _, err := tx.Segment(bad); err == nil {
		t.Error("oversize Ethernet frame accepted")
	}
}

func TestAcceptMalformedSegment(t *testing.T) {
	t.Parallel()
	rx := NewAdapter(1, canbus.XL, 0x200)
	short := &canbus.Frame{ID: 1, Format: canbus.XL, SDUType: canbus.SDUEthernet, Payload: []byte{1, 2}}
	if _, err := rx.Accept(short); err == nil {
		t.Error("short segment accepted")
	}
}

func TestSegmentOverheadBytes(t *testing.T) {
	t.Parallel()
	a := NewAdapter(1, canbus.XL, 0x200)
	oh, err := a.SegmentOverheadBytes(1516)
	if err != nil {
		t.Fatal(err)
	}
	if oh != headerLen { // one segment
		t.Errorf("overhead %d", oh)
	}
	fd := NewAdapter(1, canbus.FD, 0x200)
	oh, err = fd.SegmentOverheadBytes(1516)
	if err != nil {
		t.Fatal(err)
	}
	if oh < 27*headerLen {
		t.Errorf("FD overhead %d too low", oh)
	}
}

func TestMaxSegmentPayloadAblation(t *testing.T) {
	t.Parallel()
	a := NewAdapter(1, canbus.XL, 0x200)
	a.MaxSegmentPayload = 64
	segs, err := a.Segment(ethFrame(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 { // 216 marshalled bytes / 64
		t.Errorf("%d segments with 64-byte chunks", len(segs))
	}
}

func TestPropertyRoundTripAnyPayload(t *testing.T) {
	t.Parallel()
	tx := NewAdapter(3, canbus.FD, 0x100)
	rx := NewAdapter(3, canbus.FD, 0x100)
	f := func(payload []byte) bool {
		if len(payload) > ethernet.MaxPayload {
			payload = payload[:ethernet.MaxPayload]
		}
		orig := &ethernet.Frame{Dst: ethernet.MAC{1}, Src: ethernet.MAC{2}, EtherType: 0x9999, Payload: payload}
		segs, err := tx.Segment(orig)
		if err != nil {
			return false
		}
		var got *ethernet.Frame
		for _, s := range segs {
			g, err := rx.Accept(s)
			if err != nil {
				return false
			}
			if g != nil {
				got = g
			}
		}
		return got != nil && bytes.Equal(got.Payload, payload) && got.EtherType == 0x9999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
