package charging

import (
	"testing"

	"autosec/internal/ssi"
)

func kp(t *testing.T, b byte) *ssi.KeyPair {
	t.Helper()
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	k, err := ssi.GenerateKeyPair(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// --- PKI flow ---

type pkiFixture struct {
	root     *CA
	emsp     *CA
	carKey   *ssi.KeyPair
	contract *Certificate
	station  *Station
}

func buildPKI(t *testing.T) *pkiFixture {
	t.Helper()
	f := &pkiFixture{}
	f.root = NewRootCA("v2g-root", kp(t, 1), 10000)
	f.emsp = f.root.IssueSubCA("emsp-green", kp(t, 2), 8000)
	f.carKey = kp(t, 3)
	f.contract = f.emsp.IssueLeaf("contract-007", f.carKey, 5000)
	f.station = &Station{
		ID: "cp-1", Mode: PKIMode,
		Roots: map[string]*Certificate{"v2g-root": f.root.Cert},
	}
	return f
}

func TestPKIAuthorizeSucceeds(t *testing.T) {
	f := buildPKI(t)
	req := &PKIRequest{Contract: f.contract, Intermediates: []*Certificate{f.emsp.Cert}, Key: f.carKey}
	if err := f.station.AuthorizePKI(req, 100); err != nil {
		t.Fatal(err)
	}
}

func TestPKIRejectsUntrustedRoot(t *testing.T) {
	f := buildPKI(t)
	otherRoot := NewRootCA("rogue-root", kp(t, 9), 10000)
	otherEMSP := otherRoot.IssueSubCA("rogue-emsp", kp(t, 10), 8000)
	leaf := otherEMSP.IssueLeaf("contract-evil", f.carKey, 5000)
	req := &PKIRequest{Contract: leaf, Intermediates: []*Certificate{otherEMSP.Cert}, Key: f.carKey}
	if err := f.station.AuthorizePKI(req, 100); err == nil {
		t.Error("chain to untrusted root accepted")
	}
}

func TestPKIRejectsExpiredAndBrokenChain(t *testing.T) {
	f := buildPKI(t)
	req := &PKIRequest{Contract: f.contract, Intermediates: []*Certificate{f.emsp.Cert}, Key: f.carKey}
	if err := f.station.AuthorizePKI(req, 5001); err == nil {
		t.Error("expired contract accepted")
	}
	if err := f.station.AuthorizePKI(&PKIRequest{Contract: f.contract, Key: f.carKey}, 100); err == nil {
		t.Error("chain without intermediate accepted")
	}
	// Tampered leaf.
	bad := *f.contract
	bad.Subject = "contract-stolen"
	if err := f.station.AuthorizePKI(&PKIRequest{Contract: &bad, Intermediates: []*Certificate{f.emsp.Cert}, Key: f.carKey}, 100); err == nil {
		t.Error("tampered certificate accepted")
	}
}

func TestPKIRejectsStolenContractWithoutKey(t *testing.T) {
	f := buildPKI(t)
	thief := kp(t, 11)
	req := &PKIRequest{Contract: f.contract, Intermediates: []*Certificate{f.emsp.Cert}, Key: thief}
	if err := f.station.AuthorizePKI(req, 100); err == nil {
		t.Error("possession check failed to catch a stolen certificate")
	}
}

// --- SSI flow ---

type ssiFixture struct {
	emsp     *ssi.KeyPair
	car      *ssi.KeyPair
	reg      *ssi.Registry
	verifier *ssi.Verifier
	contract *ssi.Credential
	station  *Station
}

func buildSSI(t *testing.T) *ssiFixture {
	t.Helper()
	f := &ssiFixture{emsp: kp(t, 1), car: kp(t, 2), reg: ssi.NewRegistry()}
	for _, k := range []*ssi.KeyPair{f.emsp, f.car} {
		if err := f.reg.Register(ssi.NewDocument(k)); err != nil {
			t.Fatal(err)
		}
	}
	trust := ssi.NewTrustRegistry()
	trust.AddAnchor(ContractCredentialType, f.emsp.DID)
	f.verifier = ssi.NewVerifier(f.reg, trust)
	var err error
	f.contract, err = ssi.Issue(f.emsp, &ssi.Credential{
		ID: "contract-ssi-1", Type: ContractCredentialType,
		Issuer: f.emsp.DID, Subject: f.car.DID,
		Claims: map[string]string{"tariff": "green-night"}, IssuedAt: 0, ExpiresAt: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.station = &Station{ID: "cp-2", Mode: SSIMode, Verifier: f.verifier}
	return f
}

func TestSSIAuthorizeAndReceipt(t *testing.T) {
	f := buildSSI(t)
	receipt, err := f.station.AuthorizeSSI(f.car, f.contract, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReceipt(receipt, f.reg); err != nil {
		t.Fatal(err)
	}
	// Tampered receipt rejected.
	receipt.EnergyKWh = 1.0
	if err := VerifyReceipt(receipt, f.reg); err == nil {
		t.Error("tampered receipt accepted")
	}
}

func TestReceiptLedgerRejectsReplayAndForgery(t *testing.T) {
	f := buildSSI(t)
	ledger := NewReceiptLedger(f.reg)
	r1, err := f.station.AuthorizeSSI(f.car, f.contract, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Settle(r1); err != nil {
		t.Fatal(err)
	}
	if ledger.TotalKWh != 42.0 {
		t.Errorf("billed %.1f kWh", ledger.TotalKWh)
	}
	// Replay of the same receipt: rejected, no double billing.
	if err := ledger.Settle(r1); err == nil {
		t.Error("duplicate receipt settled")
	}
	if ledger.TotalKWh != 42.0 {
		t.Errorf("double-billed: %.1f kWh", ledger.TotalKWh)
	}
	// A new session settles fine.
	r2, err := f.station.AuthorizeSSI(f.car, f.contract, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Settle(r2); err != nil {
		t.Fatal(err)
	}
	if ledger.TotalKWh != 84.0 {
		t.Errorf("billed %.1f kWh after two sessions", ledger.TotalKWh)
	}
	// Inflated receipt: signature breaks.
	r2.EnergyKWh = 999
	if err := ledger.Settle(r2); err == nil {
		t.Error("tampered receipt settled")
	}
}

func TestSSIRejectsUntrustedEMSP(t *testing.T) {
	f := buildSSI(t)
	rogue := kp(t, 9)
	if err := f.reg.Register(ssi.NewDocument(rogue)); err != nil {
		t.Fatal(err)
	}
	evil, err := ssi.Issue(rogue, &ssi.Credential{
		ID: "evil", Type: ContractCredentialType,
		Issuer: rogue.DID, Subject: f.car.DID,
		Claims: map[string]string{}, IssuedAt: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.station.AuthorizeSSI(f.car, evil, 100); err == nil {
		t.Error("contract from unanchored eMSP accepted")
	}
}

func TestSSIRejectsStolenContract(t *testing.T) {
	f := buildSSI(t)
	thief := kp(t, 12)
	if err := f.reg.Register(ssi.NewDocument(thief)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.station.AuthorizeSSI(thief, f.contract, 100); err == nil {
		t.Error("thief charged on a stolen contract credential")
	}
}

func TestSSIOfflineAuthorization(t *testing.T) {
	f := buildSSI(t)
	bundle, err := ssi.NewOfflineBundle(f.verifier, []*ssi.Credential{f.contract}, 100, 3600)
	if err != nil {
		t.Fatal(err)
	}
	f.station.Offline = bundle
	if _, err := f.station.AuthorizeSSI(f.car, f.contract, 200); err != nil {
		t.Fatalf("offline authorization failed: %v", err)
	}
	// Stale bundle fails closed.
	if _, err := f.station.AuthorizeSSI(f.car, f.contract, 100+3601); err == nil {
		t.Error("stale offline bundle accepted")
	}
}

func TestSSIRevokedContractRejected(t *testing.T) {
	f := buildSSI(t)
	rl := ssi.NewRevocationList(f.emsp, 0)
	if err := rl.Revoke(f.emsp, f.contract.ID, 50); err != nil {
		t.Fatal(err)
	}
	if err := f.verifier.AddRevocationList(rl); err != nil {
		t.Fatal(err)
	}
	if _, err := f.station.AuthorizeSSI(f.car, f.contract, 100); err == nil {
		t.Error("revoked contract accepted")
	}
}

func TestModeEnforcement(t *testing.T) {
	f := buildSSI(t)
	if err := f.station.AuthorizePKI(&PKIRequest{}, 1); err == nil {
		t.Error("PKI request accepted by SSI station")
	}
	p := buildPKI(t)
	if _, err := p.station.AuthorizeSSI(kp(t, 3), nil, 1); err == nil {
		t.Error("SSI request accepted by PKI station")
	}
}

func TestRoamingSetupScaling(t *testing.T) {
	// The §IV-C interoperability claim: PKI roaming scales as a
	// product, SSI as a sum.
	if RoamingSetupSteps(PKIMode, 10, 8) != 80 {
		t.Error("PKI roaming steps")
	}
	if RoamingSetupSteps(SSIMode, 10, 8) != 18 {
		t.Error("SSI roaming steps")
	}
	for _, n := range []int{3, 5, 20} {
		if RoamingSetupSteps(SSIMode, n, n) >= RoamingSetupSteps(PKIMode, n, n) {
			t.Errorf("n=%d: SSI not cheaper", n)
		}
	}
}
