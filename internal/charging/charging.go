// Package charging implements the paper's §IV-C distributed charging
// use case: plug-and-charge authorization between an electric vehicle,
// a charge point operator (CPO), and an e-mobility service provider
// (eMSP), in two designs the paper contrasts —
//
//   - a hierarchical ISO-15118-style PKI (root CA → eMSP sub-CA →
//     contract certificate), where roaming means cross-loading CA trees;
//   - an SSI design (ref [32]) where the contract is a verifiable
//     credential, roaming is adding a trust anchor (or accepting an
//     accreditation), and offline authorization works from a bundle
//     (ref [34]).
//
// No registry experiment drives this package yet; the §IV-C properties
// are verified by its own test suite.
package charging

import (
	"crypto/ed25519"
	"fmt"

	"autosec/internal/ssi"
)

// ContractCredentialType is the SSI credential type for charging
// contracts.
const ContractCredentialType = "ChargingContract"

// --- ISO-15118-style PKI flow ---

// Certificate is a minimal X.509-like certificate: a public key bound
// to a name by an issuer's signature.
type Certificate struct {
	Subject   string
	PublicKey ed25519.PublicKey
	Issuer    string
	// NotAfter is the expiry (simulation seconds).
	NotAfter  int64
	Signature []byte
}

func (c *Certificate) tbs() []byte {
	return []byte(fmt.Sprintf("subject=%s\npk=%x\nissuer=%s\nnotAfter=%d\n", c.Subject, c.PublicKey, c.Issuer, c.NotAfter))
}

// CA is a certificate authority (the V2G root or an eMSP sub-CA).
type CA struct {
	Name string
	key  *ssi.KeyPair
	Cert *Certificate
}

// NewRootCA creates a self-signed root.
func NewRootCA(name string, key *ssi.KeyPair, notAfter int64) *CA {
	ca := &CA{Name: name, key: key}
	cert := &Certificate{Subject: name, PublicKey: key.Public, Issuer: name, NotAfter: notAfter}
	cert.Signature = key.Sign(cert.tbs())
	ca.Cert = cert
	return ca
}

// IssueSubCA signs a subordinate CA certificate.
func (ca *CA) IssueSubCA(name string, key *ssi.KeyPair, notAfter int64) *CA {
	sub := &CA{Name: name, key: key}
	cert := &Certificate{Subject: name, PublicKey: key.Public, Issuer: ca.Name, NotAfter: notAfter}
	cert.Signature = ca.key.Sign(cert.tbs())
	sub.Cert = cert
	return sub
}

// IssueLeaf signs an end-entity (contract) certificate.
func (ca *CA) IssueLeaf(subject string, key *ssi.KeyPair, notAfter int64) *Certificate {
	cert := &Certificate{Subject: subject, PublicKey: key.Public, Issuer: ca.Name, NotAfter: notAfter}
	cert.Signature = ca.key.Sign(cert.tbs())
	return cert
}

// VerifyChain validates leaf → intermediates → a trusted root at the
// given time. roots maps root names to their certificates.
func VerifyChain(leaf *Certificate, intermediates []*Certificate, roots map[string]*Certificate, now int64) error {
	chain := append([]*Certificate{leaf}, intermediates...)
	for i, cert := range chain {
		if now > cert.NotAfter {
			return fmt.Errorf("charging: certificate %s expired", cert.Subject)
		}
		var issuerKey ed25519.PublicKey
		if i+1 < len(chain) {
			if chain[i+1].Subject != cert.Issuer {
				return fmt.Errorf("charging: chain break at %s (issuer %s, next is %s)", cert.Subject, cert.Issuer, chain[i+1].Subject)
			}
			issuerKey = chain[i+1].PublicKey
		} else {
			root, ok := roots[cert.Issuer]
			if !ok {
				return fmt.Errorf("charging: root %q not trusted", cert.Issuer)
			}
			if now > root.NotAfter {
				return fmt.Errorf("charging: root %s expired", root.Subject)
			}
			issuerKey = root.PublicKey
		}
		if !ed25519.Verify(issuerKey, cert.tbs(), cert.Signature) {
			return fmt.Errorf("charging: bad signature on %s", cert.Subject)
		}
	}
	return nil
}

// --- the charge point ---

// AuthzMode selects the trust machinery a station runs.
type AuthzMode int

const (
	// PKIMode is the ISO-15118-style certificate flow.
	PKIMode AuthzMode = iota
	// SSIMode is the verifiable-credential flow.
	SSIMode
)

// Station is a charge point operated by a CPO.
type Station struct {
	ID   string
	Mode AuthzMode

	// PKI state: trusted roots (must include every eMSP's root or the
	// common V2G root that signed it).
	Roots map[string]*Certificate

	// SSI state.
	Verifier *ssi.Verifier
	// Offline, when non-nil, replaces online verification (network
	// outage at the station).
	Offline *ssi.OfflineBundle

	sessions int
}

// SessionReceipt records an authorized charging session; it is signed by
// the vehicle so the eMSP can bill against repudiation.
type SessionReceipt struct {
	Station   string
	Vehicle   ssi.DID
	EnergyKWh float64
	At        int64
	Signature []byte
}

func (r *SessionReceipt) tbs() []byte {
	return []byte(fmt.Sprintf("station=%s\nvehicle=%s\nkwh=%.3f\nat=%d\n", r.Station, r.Vehicle, r.EnergyKWh, r.At))
}

// PKIRequest is what the vehicle presents in PKI mode.
type PKIRequest struct {
	Contract      *Certificate
	Intermediates []*Certificate
	// key proves possession of the contract certificate's key.
	Key *ssi.KeyPair
}

// AuthorizePKI runs the certificate flow.
func (s *Station) AuthorizePKI(req *PKIRequest, now int64) error {
	if s.Mode != PKIMode {
		return fmt.Errorf("charging: station %s is not in PKI mode", s.ID)
	}
	if err := VerifyChain(req.Contract, req.Intermediates, s.Roots, now); err != nil {
		return err
	}
	// Possession: sign a station nonce.
	nonce := []byte(fmt.Sprintf("%s:%d:%d", s.ID, now, s.sessions))
	sig := req.Key.Sign(nonce)
	if !ed25519.Verify(req.Contract.PublicKey, nonce, sig) {
		return fmt.Errorf("charging: contract key possession failed")
	}
	s.sessions++
	return nil
}

// AuthorizeSSI runs the verifiable-credential flow (online or offline).
func (s *Station) AuthorizeSSI(vehicle *ssi.KeyPair, contract *ssi.Credential, now int64) (*SessionReceipt, error) {
	if s.Mode != SSIMode {
		return nil, fmt.Errorf("charging: station %s is not in SSI mode", s.ID)
	}
	challenge := []byte(fmt.Sprintf("%s:%d:%d", s.ID, now, s.sessions))
	pres, err := ssi.Present(vehicle, challenge, contract)
	if err != nil {
		return nil, err
	}
	if s.Offline != nil {
		if err := s.Offline.VerifyOffline(pres, challenge, now); err != nil {
			return nil, err
		}
	} else {
		if s.Verifier == nil {
			return nil, fmt.Errorf("charging: station %s has no verifier", s.ID)
		}
		if err := s.Verifier.VerifyPresentation(pres, challenge, now); err != nil {
			return nil, err
		}
	}
	s.sessions++
	receipt := &SessionReceipt{Station: s.ID, Vehicle: vehicle.DID, EnergyKWh: 42.0, At: now}
	receipt.Signature = vehicle.Sign(receipt.tbs())
	return receipt, nil
}

// VerifyReceipt lets the eMSP check a billing record.
func VerifyReceipt(r *SessionReceipt, reg *ssi.Registry) error {
	doc, err := reg.Resolve(r.Vehicle)
	if err != nil {
		return err
	}
	if !ed25519.Verify(doc.PublicKey, r.tbs(), r.Signature) {
		return fmt.Errorf("charging: receipt signature invalid")
	}
	return nil
}

// ReceiptLedger is the eMSP's billing book: it verifies receipts and
// refuses duplicates, so a charge point operator (or a network attacker
// replaying the settlement feed) cannot bill one session twice.
type ReceiptLedger struct {
	reg  *ssi.Registry
	seen map[string]bool
	// TotalKWh accumulates billed energy.
	TotalKWh float64
}

// NewReceiptLedger builds a ledger resolving identities from reg.
func NewReceiptLedger(reg *ssi.Registry) *ReceiptLedger {
	return &ReceiptLedger{reg: reg, seen: map[string]bool{}}
}

// Settle verifies and books one receipt.
func (l *ReceiptLedger) Settle(r *SessionReceipt) error {
	if err := VerifyReceipt(r, l.reg); err != nil {
		return err
	}
	key := fmt.Sprintf("%s|%s|%d", r.Station, r.Vehicle, r.At)
	if l.seen[key] {
		return fmt.Errorf("charging: receipt for %s at %s t=%d already settled", r.Vehicle, r.Station, r.At)
	}
	l.seen[key] = true
	l.TotalKWh += r.EnergyKWh
	return nil
}

// RoamingSetupSteps quantifies the interoperability cost the paper
// discusses: how many configuration actions are needed so vehicles of
// nEMSPs can charge at stations of nCPOs.
//
// In the PKI design every CPO must install every eMSP's root (or
// cross-signed tree): nCPOs × nEMSPs actions. In the SSI design each CPO
// adds one trust-registry anchor per eMSP too — but anchors are
// use-case-independent documents in the shared registry, so the paper's
// observed win is that ONE registry entry per eMSP serves all CPOs:
// nEMSPs + nCPOs actions (publish + subscribe).
func RoamingSetupSteps(mode AuthzMode, nCPOs, nEMSPs int) int {
	if mode == PKIMode {
		return nCPOs * nEMSPs
	}
	return nCPOs + nEMSPs
}
