package ranging

import (
	"math"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestSSTWRExactWithPerfectClocks(t *testing.T) {
	cfg := TWRConfig{DistanceM: 37.5, ReplyDelayNs: 1000}
	got, err := SSTWR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-37.5) > 1e-9 {
		t.Errorf("SSTWR = %v, want 37.5", got)
	}
}

func TestSSTWRDriftErrorGrowsWithReplyDelay(t *testing.T) {
	base := TWRConfig{DistanceM: 10, ReplyDelayNs: 1000, Responder: Clock{DriftPPM: 20}}
	short, err := SSTWR(base)
	if err != nil {
		t.Fatal(err)
	}
	long := base
	long.ReplyDelayNs = 1e6 // 1 ms turnaround
	longEst, err := SSTWR(long)
	if err != nil {
		t.Fatal(err)
	}
	errShort := math.Abs(short - 10)
	errLong := math.Abs(longEst - 10)
	if errLong < 10*errShort {
		t.Errorf("drift error short=%.4f long=%.4f; long reply delay should dominate", errShort, errLong)
	}
}

func TestDSTWRCancelsDrift(t *testing.T) {
	cfg := TWRConfig{
		DistanceM:    25,
		ReplyDelayNs: 1e6,
		Initiator:    Clock{DriftPPM: 15},
		Responder:    Clock{DriftPPM: -20},
	}
	ss, err := SSTWR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DSTWR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds-25) > math.Abs(ss-25)/10 {
		t.Errorf("DS-TWR error %.4f not ≪ SS-TWR error %.4f", math.Abs(ds-25), math.Abs(ss-25))
	}
	if math.Abs(ds-25) > 0.05 {
		t.Errorf("DS-TWR error %.4f m too large", math.Abs(ds-25))
	}
}

func TestRelayOnlyEnlargesToFDistance(t *testing.T) {
	// The PKES insight: a relay adds path delay, so ToF ranging through
	// a relay reports a *larger* distance, never a smaller one.
	f := func(extra uint16) bool {
		cfg := TWRConfig{DistanceM: 5, ReplyDelayNs: 1000, ExtraPathNs: float64(extra)}
		got, err := SSTWR(cfg)
		return err == nil && got >= 5-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTWRRejectsNegativeInputs(t *testing.T) {
	if _, err := SSTWR(TWRConfig{DistanceM: -1}); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := DSTWR(TWRConfig{DistanceM: 1, ExtraPathNs: -5}); err == nil {
		t.Error("negative relay delay accepted (faster-than-light)")
	}
}

func TestBoundingBenignAcceptsAtTrueDistance(t *testing.T) {
	rng := sim.NewRNG(1)
	cfg := BoundingConfig{Rounds: 32, TrueDistanceM: 2, MaxBitErrors: 0}
	res, err := RunBounding(cfg, NoFraud, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.BitErrors != 0 {
		t.Errorf("benign rejected: %+v", res)
	}
	if math.Abs(res.DistanceM-2) > 1e-9 {
		t.Errorf("distance %v, want 2", res.DistanceM)
	}
}

func TestBoundingMafiaGuessRarelyAccepted(t *testing.T) {
	rng := sim.NewRNG(3)
	cfg := BoundingConfig{Rounds: 32, TrueDistanceM: 500, AttackerDistanceM: 2, MaxBitErrors: 0}
	accepted := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		res, err := RunBounding(cfg, MafiaFraudGuess, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepted++
		}
	}
	// Theory: 2^-32 — we expect zero in 2000 trials.
	if accepted != 0 {
		t.Errorf("mafia fraud accepted %d/%d with 32 rounds", accepted, trials)
	}
}

func TestBoundingPreAskBeatsGuessButStillFails(t *testing.T) {
	rng := sim.NewRNG(5)
	cfg := BoundingConfig{Rounds: 16, TrueDistanceM: 500, AttackerDistanceM: 2, MaxBitErrors: 0}
	guessAcc, preAskAcc := 0, 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		g, err := RunBounding(cfg, MafiaFraudGuess, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.Accepted {
			guessAcc++
		}
		p, err := RunBounding(cfg, MafiaFraudPreAsk, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.Accepted {
			preAskAcc++
		}
	}
	// (3/4)^16 ≈ 1.0%, (1/2)^16 ≈ 0.0015%.
	if preAskAcc <= guessAcc {
		t.Errorf("pre-ask (%d) should beat guessing (%d)", preAskAcc, guessAcc)
	}
	if float64(preAskAcc)/trials > 0.03 {
		t.Errorf("pre-ask acceptance %.4f too high vs theory ~0.01", float64(preAskAcc)/trials)
	}
}

func TestBoundingSimulationMatchesTheory(t *testing.T) {
	rng := sim.NewRNG(7)
	cfg := BoundingConfig{Rounds: 8, TrueDistanceM: 100, AttackerDistanceM: 1, MaxBitErrors: 1}
	const trials = 20000
	acc := 0
	for i := 0; i < trials; i++ {
		res, err := RunBounding(cfg, MafiaFraudGuess, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			acc++
		}
	}
	want := FraudSuccessProbability(MafiaFraudGuess, 8, 1) // C(8,0)+C(8,1) over 2^8 = 9/256
	got := float64(acc) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("simulated acceptance %.4f vs theory %.4f", got, want)
	}
}

func TestFraudSuccessProbabilityTheory(t *testing.T) {
	if p := FraudSuccessProbability(NoFraud, 32, 0); p != 1 {
		t.Errorf("benign probability %v", p)
	}
	p := FraudSuccessProbability(MafiaFraudGuess, 8, 0)
	if math.Abs(p-1.0/256) > 1e-12 {
		t.Errorf("guess p = %v, want 1/256", p)
	}
	p = FraudSuccessProbability(MafiaFraudPreAsk, 4, 0)
	want := math.Pow(0.75, 4)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("pre-ask p = %v, want %v", p, want)
	}
	// Monotone in tolerated errors.
	if FraudSuccessProbability(MafiaFraudGuess, 16, 2) <= FraudSuccessProbability(MafiaFraudGuess, 16, 0) {
		t.Error("probability not monotone in tolerated errors")
	}
	// Decreasing in rounds.
	if FraudSuccessProbability(MafiaFraudGuess, 32, 0) >= FraudSuccessProbability(MafiaFraudGuess, 8, 0) {
		t.Error("probability not decreasing in rounds")
	}
}

func TestRunBoundingValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := RunBounding(BoundingConfig{Rounds: 0}, NoFraud, rng); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := RunBounding(BoundingConfig{Rounds: 4}, FraudStrategy(99), rng); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestFraudStrategyString(t *testing.T) {
	for s, want := range map[FraudStrategy]string{
		NoFraud: "benign", MafiaFraudGuess: "mafia-guess",
		MafiaFraudPreAsk: "mafia-preask", DistanceFraud: "distance-fraud",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
