// Package ranging implements the protocol layer above the UWB PHY:
// single-sided and double-sided two-way ranging (SS-TWR, DS-TWR) with
// clock-drift modelling, and Brands–Chaum-style rapid-bit-exchange
// distance bounding with the classic fraud strategies. Where package uwb
// models what one radio observation can be made to say, this package
// models what a *protocol* concludes from message round trips.
//
// Exercised by experiments fig2 and ablate-sts.
package ranging

import (
	"fmt"

	"autosec/internal/uwb"
)

// NsPerMetre is the one-way propagation time for one metre.
const NsPerMetre = 1 / uwb.SpeedOfLight

// Clock models a device oscillator: reading a true time t yields
// t·(1+DriftPPM·1e-6). Offsets cancel in round-trip protocols, so only
// drift matters for TWR error.
type Clock struct {
	DriftPPM float64
}

// Elapsed converts a true duration in ns to what this clock measures.
func (c Clock) Elapsed(trueNs float64) float64 {
	return trueNs * (1 + c.DriftPPM*1e-6)
}

// TWRConfig describes a two-way ranging exchange between an initiator
// (e.g. the vehicle) and a responder (e.g. the key fob).
type TWRConfig struct {
	DistanceM    float64
	ReplyDelayNs float64 // responder processing time between RX and TX
	Initiator    Clock
	Responder    Clock
	// ExtraPathNs is attacker-induced additional one-way delay (a relay
	// inserts cable/processing latency; it can never be negative —
	// signals do not travel faster than light).
	ExtraPathNs float64
}

func (c *TWRConfig) validate() error {
	if c.DistanceM < 0 {
		return fmt.Errorf("ranging: negative distance %f", c.DistanceM)
	}
	if c.ExtraPathNs < 0 {
		return fmt.Errorf("ranging: relay cannot remove propagation delay (ExtraPathNs=%f)", c.ExtraPathNs)
	}
	return nil
}

// SSTWR performs single-sided two-way ranging: the initiator measures
// the round-trip time, subtracts the responder's declared reply delay,
// and halves the remainder. Responder clock drift scales the (long)
// reply delay and is the dominant error term — the reason 802.15.4z
// deployments prefer DS-TWR.
func SSTWR(cfg TWRConfig) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	tof := cfg.DistanceM*NsPerMetre + cfg.ExtraPathNs
	trueRound := 2*tof + cfg.ReplyDelayNs
	measuredRound := cfg.Initiator.Elapsed(trueRound)
	declaredReply := cfg.Responder.Elapsed(cfg.ReplyDelayNs)
	est := (measuredRound - declaredReply) / 2
	return est / NsPerMetre, nil
}

// DSTWR performs double-sided two-way ranging (two round trips, one
// initiated by each side), which cancels first-order clock drift:
// tof ≈ (Ra·Rb − Da·Db) / (Ra + Rb + Da + Db).
func DSTWR(cfg TWRConfig) (float64, error) {
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	tof := cfg.DistanceM*NsPerMetre + cfg.ExtraPathNs
	// Round A: initiator → responder → initiator.
	ra := cfg.Initiator.Elapsed(2*tof + cfg.ReplyDelayNs)
	da := cfg.Responder.Elapsed(cfg.ReplyDelayNs)
	// Round B: responder → initiator → responder.
	rb := cfg.Responder.Elapsed(2*tof + cfg.ReplyDelayNs)
	db := cfg.Initiator.Elapsed(cfg.ReplyDelayNs)
	est := (ra*rb - da*db) / (ra + rb + da + db)
	return est / NsPerMetre, nil
}
