package ranging

import (
	"fmt"

	"autosec/internal/sim"
)

// This file implements Brands–Chaum-style rapid bit exchange distance
// bounding (paper ref [5]): the verifier sends n single-bit challenges;
// the prover must answer each with a response derived from a shared
// secret within a tight time bound. The verifier upper-bounds the
// prover's distance from the slowest round trip and rejects the session
// if any response bit is wrong.

// FraudStrategy enumerates the classic attacks on distance bounding.
type FraudStrategy int

const (
	// NoFraud is the benign prover at its true distance.
	NoFraud FraudStrategy = iota
	// MafiaFraudGuess: a man-in-the-middle near the verifier answers
	// challenges itself by guessing each response bit (success 1/2 per
	// round) so the far-away honest prover appears close.
	MafiaFraudGuess
	// MafiaFraudPreAsk: the MITM queries the honest prover with a
	// guessed challenge *before* relaying; if the verifier's real
	// challenge matches the guess the relayed answer is correct,
	// otherwise the MITM guesses (success 3/4 per round).
	MafiaFraudPreAsk
	// DistanceFraud: the (dishonest) prover itself sends responses
	// early, before seeing the challenge, guessing challenge-dependent
	// bits (success 1/2 per round for a proper challenge-response
	// function).
	DistanceFraud
)

func (f FraudStrategy) String() string {
	switch f {
	case NoFraud:
		return "benign"
	case MafiaFraudGuess:
		return "mafia-guess"
	case MafiaFraudPreAsk:
		return "mafia-preask"
	case DistanceFraud:
		return "distance-fraud"
	default:
		return fmt.Sprintf("FraudStrategy(%d)", int(f))
	}
}

// BoundingConfig describes a distance-bounding session.
type BoundingConfig struct {
	Rounds int
	// TrueDistanceM is the honest prover's actual distance.
	TrueDistanceM float64
	// AttackerDistanceM is where the attacker's radio sits (the
	// distance the verifier would conclude if every response were
	// accepted from the attacker).
	AttackerDistanceM float64
	// ProcessingNs is the prover's per-round turnaround (ideally ~0 for
	// rapid bit exchange hardware).
	ProcessingNs float64
	// MaxBitErrors tolerated before the session is rejected.
	MaxBitErrors int
}

// BoundingResult is the verifier's conclusion.
type BoundingResult struct {
	Accepted  bool
	DistanceM float64 // upper bound concluded by the verifier
	BitErrors int
	Strategy  FraudStrategy
}

// RunBounding executes one distance-bounding session under the given
// fraud strategy using the deterministic RNG for all guesses.
func RunBounding(cfg BoundingConfig, strategy FraudStrategy, rng *sim.RNG) (BoundingResult, error) {
	if cfg.Rounds <= 0 {
		return BoundingResult{}, fmt.Errorf("ranging: bounding needs rounds > 0, got %d", cfg.Rounds)
	}
	res := BoundingResult{Strategy: strategy}

	var perRoundDistance float64
	switch strategy {
	case NoFraud:
		perRoundDistance = cfg.TrueDistanceM
	case MafiaFraudGuess, MafiaFraudPreAsk, DistanceFraud:
		perRoundDistance = cfg.AttackerDistanceM
	default:
		return BoundingResult{}, fmt.Errorf("ranging: unknown strategy %v", strategy)
	}

	for i := 0; i < cfg.Rounds; i++ {
		correct := true
		switch strategy {
		case NoFraud:
			// Honest prover computes the true response.
		case MafiaFraudGuess, DistanceFraud:
			correct = rng.Bool(0.5)
		case MafiaFraudPreAsk:
			correct = rng.Bool(0.75)
		}
		if !correct {
			res.BitErrors++
		}
	}

	rtt := 2*perRoundDistance*NsPerMetre + cfg.ProcessingNs
	res.DistanceM = (rtt - cfg.ProcessingNs) / 2 / NsPerMetre
	res.Accepted = res.BitErrors <= cfg.MaxBitErrors
	return res, nil
}

// FraudSuccessProbability returns the analytic acceptance probability of
// a fraud strategy for n rounds and k tolerated errors, used to check
// the simulation against theory.
func FraudSuccessProbability(strategy FraudStrategy, rounds, maxErrors int) float64 {
	var p float64
	switch strategy {
	case NoFraud:
		return 1
	case MafiaFraudGuess, DistanceFraud:
		p = 0.5
	case MafiaFraudPreAsk:
		p = 0.75
	default:
		return 0
	}
	// P(errors <= maxErrors), errors ~ Binomial(rounds, 1-p).
	q := 1 - p
	total := 0.0
	for k := 0; k <= maxErrors && k <= rounds; k++ {
		total += binomialPMF(rounds, k, q)
	}
	return total
}

func binomialPMF(n, k int, p float64) float64 {
	// Compute C(n,k) p^k (1-p)^(n-k) iteratively to avoid overflow.
	c := 1.0
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
	}
	pk := 1.0
	for i := 0; i < k; i++ {
		pk *= p
	}
	qnk := 1.0
	for i := 0; i < n-k; i++ {
		qnk *= 1 - p
	}
	return c * pk * qnk
}
