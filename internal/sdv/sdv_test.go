package sdv

import (
	"strings"
	"testing"

	"autosec/internal/ssi"
)

// fixture builds the Fig. 7 cast: an OEM (trust anchor for platform
// attestation), a software vendor (trust anchor for approvals and
// compatibility), two hardware nodes, one brake-control component.
type fixture struct {
	oem, vendor *ssi.KeyPair
	verifier    *ssi.Verifier
	mgr         *Manager
	nodeA       *HardwareNode
	nodeB       *HardwareNode
	brake       *SoftwareComponent
	revocations *ssi.RevocationList
}

func seedKP(t *testing.T, b byte) *ssi.KeyPair {
	t.Helper()
	s := make([]byte, 32)
	for i := range s {
		s[i] = b
	}
	k, err := ssi.GenerateKeyPair(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func build(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{oem: seedKP(t, 1), vendor: seedKP(t, 2)}
	reg := ssi.NewRegistry()
	trust := ssi.NewTrustRegistry()
	trust.AddAnchor(CredPlatformAttest, f.oem.DID)
	trust.AddAnchor(CredSoftwareApproval, f.vendor.DID)
	trust.AddAnchor(CredHardwareCompat, f.vendor.DID)
	for _, k := range []*ssi.KeyPair{f.oem, f.vendor} {
		if err := reg.Register(ssi.NewDocument(k)); err != nil {
			t.Fatal(err)
		}
	}
	f.verifier = ssi.NewVerifier(reg, trust)
	f.revocations = ssi.NewRevocationList(f.vendor, 0)
	if err := f.verifier.AddRevocationList(f.revocations); err != nil {
		t.Fatal(err)
	}
	f.mgr = NewManager(f.verifier)

	newNode := func(id string, b byte, platform string, capacity int) *HardwareNode {
		k := seedKP(t, b)
		if err := reg.Register(ssi.NewDocument(k)); err != nil {
			t.Fatal(err)
		}
		att, err := ssi.Issue(f.oem, &ssi.Credential{
			ID: "att-" + id, Type: CredPlatformAttest,
			Issuer: f.oem.DID, Subject: k.DID,
			Claims: map[string]string{"platform": platform}, IssuedAt: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := &HardwareNode{ID: id, Identity: k, Platform: platform, Capacity: capacity, Attestation: att}
		if err := f.mgr.AddNode(n); err != nil {
			t.Fatal(err)
		}
		return n
	}
	f.nodeA = newNode("node-a", 10, "zc-gen3", 10)
	f.nodeB = newNode("node-b", 11, "zc-gen3", 10)

	ck := seedKP(t, 20)
	if err := reg.Register(ssi.NewDocument(ck)); err != nil {
		t.Fatal(err)
	}
	f.brake = &SoftwareComponent{ID: "brake-ctrl", Identity: ck, Version: "2.1", Units: 4}
	f.brake.Approval = f.issueApproval(t, ck.DID, "2.1", "appr-2.1")
	f.brake.Compat = []*ssi.Credential{f.issueCompat(t, ck.DID, "2.1", "zc-gen3", "compat-2.1")}
	if err := f.mgr.AddComponent(f.brake); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *fixture) issueApproval(t *testing.T, subject ssi.DID, version, id string) *ssi.Credential {
	t.Helper()
	c, err := ssi.Issue(f.vendor, &ssi.Credential{
		ID: id, Type: CredSoftwareApproval,
		Issuer: f.vendor.DID, Subject: subject,
		Claims: map[string]string{"version": version}, IssuedAt: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (f *fixture) issueCompat(t *testing.T, subject ssi.DID, version, platform, id string) *ssi.Credential {
	t.Helper()
	c, err := ssi.Issue(f.vendor, &ssi.Credential{
		ID: id, Type: CredHardwareCompat,
		Issuer: f.vendor.DID, Subject: subject,
		Claims: map[string]string{"version": version, "platform": platform}, IssuedAt: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlaceWithFullMutualAuth(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	if f.mgr.PlacementOf("brake-ctrl") != "node-a" {
		t.Error("placement not recorded")
	}
	if f.nodeA.Free() != 6 {
		t.Errorf("capacity accounting: free=%d", f.nodeA.Free())
	}
}

func TestPlaceRejectsUnapprovedSoftware(t *testing.T) {
	f := build(t)
	f.brake.Approval = nil
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("unapproved software placed")
	}
}

func TestPlaceRejectsWrongPlatform(t *testing.T) {
	f := build(t)
	f.nodeA.Platform = "infotainment-gen1"
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("incompatible platform accepted")
	}
}

func TestPlaceRejectsUnattestedHardware(t *testing.T) {
	f := build(t)
	f.nodeA.Attestation = nil
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("unattested (counterfeit) node accepted")
	}
}

func TestPlaceRejectsForeignAttestation(t *testing.T) {
	// Node B's attestation moved to node A: proof-of-possession or the
	// subject check must catch it.
	f := build(t)
	f.nodeA.Attestation = f.nodeB.Attestation
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("node accepted with another node's attestation")
	}
}

func TestPlaceRejectsVersionMismatch(t *testing.T) {
	f := build(t)
	f.brake.Version = "9.9" // binary swapped, credentials stale
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("version mismatch accepted")
	}
}

func TestPlaceRejectsInsufficientCapacity(t *testing.T) {
	f := build(t)
	f.nodeA.Capacity = 2
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err == nil {
		t.Error("overcommitted node accepted")
	}
}

func TestFailoverRelocatesWithReauthorization(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	relocated, stranded, err := f.mgr.FailNode("node-a", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(relocated) != 1 || relocated[0] != "brake-ctrl" || len(stranded) != 0 {
		t.Fatalf("relocated=%v stranded=%v", relocated, stranded)
	}
	if f.mgr.PlacementOf("brake-ctrl") != "node-b" {
		t.Errorf("component on %s", f.mgr.PlacementOf("brake-ctrl"))
	}
}

func TestFailoverStrandsWhenNoAuthorizedNode(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	f.nodeB.Platform = "infotainment-gen1" // only alternative is incompatible
	_, stranded, err := f.mgr.FailNode("node-a", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 1 {
		t.Errorf("stranded=%v", stranded)
	}
	if f.mgr.PlacementOf("brake-ctrl") != "" {
		t.Error("component placed on incompatible node")
	}
}

func TestUpdateAcceptsApprovedVersion(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	appr := f.issueApproval(t, f.brake.Identity.DID, "2.2", "appr-2.2")
	compat := []*ssi.Credential{f.issueCompat(t, f.brake.Identity.DID, "2.2", "zc-gen3", "compat-2.2")}
	if err := f.mgr.Update("brake-ctrl", "2.2", appr, compat, 300); err != nil {
		t.Fatal(err)
	}
	if f.brake.Version != "2.2" {
		t.Error("version not updated")
	}
}

func TestUpdateRevokedApprovalRollsBack(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	appr := f.issueApproval(t, f.brake.Identity.DID, "2.2", "appr-2.2")
	compat := []*ssi.Credential{f.issueCompat(t, f.brake.Identity.DID, "2.2", "zc-gen3", "compat-2.2")}
	// The release is compromised: vendor revokes the approval.
	if err := f.revocations.Revoke(f.vendor, "appr-2.2", 250); err != nil {
		t.Fatal(err)
	}
	if err := f.verifier.AddRevocationList(f.revocations); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Update("brake-ctrl", "2.2", appr, compat, 300); err == nil {
		t.Fatal("revoked update accepted")
	}
	if f.brake.Version != "2.1" {
		t.Errorf("rollback failed: version %s", f.brake.Version)
	}
	if f.mgr.PlacementOf("brake-ctrl") != "node-a" {
		t.Error("rollback did not restore placement")
	}
	foundRollback := false
	for _, l := range f.mgr.Log {
		if strings.HasPrefix(l, "ROLLBACK") {
			foundRollback = true
		}
	}
	if !foundRollback {
		t.Error("rollback not logged")
	}
}

func TestManagerValidation(t *testing.T) {
	f := build(t)
	if err := f.mgr.AddNode(f.nodeA); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := f.mgr.AddComponent(f.brake); err == nil {
		t.Error("duplicate component accepted")
	}
	if err := f.mgr.Place("missing", "node-a", 1); err == nil {
		t.Error("unknown component placed")
	}
	if err := f.mgr.Place("brake-ctrl", "missing", 1); err == nil {
		t.Error("unknown node accepted")
	}
	if _, _, err := f.mgr.FailNode("missing", 1); err == nil {
		t.Error("unknown node failed")
	}
	if err := f.mgr.Update("brake-ctrl", "x", nil, nil, 1); err == nil {
		t.Error("update of unplaced component accepted")
	}
}

func TestDoublePlacementRejected(t *testing.T) {
	f := build(t)
	if err := f.mgr.Place("brake-ctrl", "node-a", 100); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Place("brake-ctrl", "node-b", 100); err == nil {
		t.Error("double placement accepted")
	}
}

// --- data chains (§IV-B) ---

func TestChainMultiAuthorVerify(t *testing.T) {
	f := build(t)
	chain := NewChain()
	sensorVendor := f.brake.Identity
	if _, err := chain.Append(sensorVendor, "sensor-log", []byte("lidar frame 1"), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Append(f.oem, "crash-report", []byte("airbag deployed"), 11); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Append(f.vendor, "scenario", []byte("cut-in at 20m"), 12); err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 3 {
		t.Fatalf("len %d", chain.Len())
	}
	if bad, err := VerifyChain(chain, f.verifier.Registry); bad != -1 {
		t.Fatalf("intact chain flagged at %d: %v", bad, err)
	}
}

func TestChainDetectsPayloadTamper(t *testing.T) {
	f := build(t)
	chain := NewChain()
	if _, err := chain.Append(f.oem, "crash-report", []byte("speed 48 km/h"), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Append(f.oem, "crash-report", []byte("brake applied"), 11); err != nil {
		t.Fatal(err)
	}
	chain.Records()[0].Payload = []byte("speed 30 km/h") // forge the history
	bad, _ := VerifyChain(chain, f.verifier.Registry)
	if bad != 0 && bad != 1 {
		t.Errorf("tamper not detected (bad=%d)", bad)
	}
}

func TestChainDetectsReordering(t *testing.T) {
	f := build(t)
	chain := NewChain()
	for i := 0; i < 3; i++ {
		if _, err := chain.Append(f.oem, "log", []byte{byte(i)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := chain.Records()
	recs[1], recs[2] = recs[2], recs[1]
	if bad, _ := VerifyChain(chain, f.verifier.Registry); bad == -1 {
		t.Error("reordered chain verified")
	}
}

func TestChainRejectsUnknownAuthor(t *testing.T) {
	f := build(t)
	stranger := seedKP(t, 99) // never registered
	chain := NewChain()
	if _, err := chain.Append(stranger, "log", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if bad, _ := VerifyChain(chain, f.verifier.Registry); bad != 0 {
		t.Error("unknown author accepted")
	}
}

func TestChainAppendValidation(t *testing.T) {
	f := build(t)
	chain := NewChain()
	if _, err := chain.Append(f.oem, "", []byte("x"), 1); err == nil {
		t.Error("empty kind accepted")
	}
}
