package sdv

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"

	"autosec/internal/ssi"
)

// This file implements §IV-B, data integrity and protection: crash
// reports, logs, and scenario data assembled from records authored by
// components of *different vendors*, each signed by its author and
// hash-linked to its predecessor so the composite document is tamper-
// evident end-to-end ("such signed documents need to be linked").

// Record is one signed entry in a data chain.
type Record struct {
	Author    ssi.DID
	Kind      string // "crash-report", "sensor-log", "scenario", ...
	Payload   []byte
	Timestamp int64
	PrevHash  [32]byte
	Signature []byte
}

func (r *Record) digest() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "author=%s\nkind=%s\nts=%d\nprev=%x\n", r.Author, r.Kind, r.Timestamp, r.PrevHash)
	h.Write(r.Payload)
	return h.Sum(nil)
}

// Hash returns the record's chain hash.
func (r *Record) Hash() [32]byte {
	var out [32]byte
	copy(out[:], r.digest())
	return out
}

// Chain is an append-only, multi-author signed log.
type Chain struct {
	records []*Record
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{} }

// Append signs a new record with the author's key and links it to the
// chain head.
func (c *Chain) Append(author *ssi.KeyPair, kind string, payload []byte, ts int64) (*Record, error) {
	if kind == "" {
		return nil, fmt.Errorf("sdv: record needs a kind")
	}
	r := &Record{
		Author: author.DID, Kind: kind,
		Payload:   append([]byte(nil), payload...),
		Timestamp: ts,
	}
	if len(c.records) > 0 {
		r.PrevHash = c.records[len(c.records)-1].Hash()
	}
	r.Signature = author.Sign(r.digest())
	c.records = append(c.records, r)
	return r, nil
}

// Records returns the chain contents (shared structure; callers must
// not mutate).
func (c *Chain) Records() []*Record { return c.records }

// Len returns the number of records.
func (c *Chain) Len() int { return len(c.records) }

// VerifyChain checks every record's signature against the registry and
// the hash links between records. It returns the index of the first bad
// record, or -1 when the chain is intact.
func VerifyChain(c *Chain, reg *ssi.Registry) (int, error) {
	var prev [32]byte
	for i, r := range c.records {
		if r.PrevHash != prev {
			return i, fmt.Errorf("sdv: record %d broken link", i)
		}
		doc, err := reg.Resolve(r.Author)
		if err != nil {
			return i, fmt.Errorf("sdv: record %d author unresolvable: %w", i, err)
		}
		if !ed25519.Verify(doc.PublicKey, r.digest(), r.Signature) {
			return i, fmt.Errorf("sdv: record %d signature invalid", i)
		}
		prev = r.Hash()
	}
	return -1, nil
}
