// Package sdv models the software-defined vehicle of the paper's §IV:
// an agnostic hardware platform running relocatable software components,
// where every placement, update, or failover is gated by zero-trust
// mutual authentication (ref [29]) built on SSI credentials — software
// proves it is approved and compatible, hardware proves it is genuine
// and capable, and the stakeholders issuing those proofs are different
// companies with different trust anchors (Fig. 7).
//
// Exercised by experiment fig7.
package sdv

import (
	"fmt"
	"sort"

	"autosec/internal/ssi"
)

// Credential types used by the SDV trust fabric.
const (
	CredSoftwareApproval = "SoftwareApproval"      // vendor/OEM approves a software release
	CredHardwareCompat   = "HardwareCompatibility" // software release ↔ platform binding
	CredPlatformAttest   = "PlatformAttestation"   // hardware node is genuine
	CredCloudService     = "CloudServiceBinding"   // cloud endpoint identity
)

// HardwareNode is one computing platform in the vehicle.
type HardwareNode struct {
	ID       string
	Identity *ssi.KeyPair
	Platform string // platform family, e.g. "zc-gen3"
	Capacity int    // schedulable units
	// Attestation proves the node is genuine hardware.
	Attestation *ssi.Credential

	used int
}

// Free returns remaining capacity.
func (n *HardwareNode) Free() int { return n.Capacity - n.used }

// SoftwareComponent is a relocatable function (brake control, climate,
// perception...).
type SoftwareComponent struct {
	ID       string
	Identity *ssi.KeyPair
	Version  string
	Units    int // capacity units required
	// Approval is the vendor's release approval; Compat binds the
	// release to platform families via the claim "platform".
	Approval *ssi.Credential
	Compat   []*ssi.Credential
}

// Manager performs zero-trust placement and reconfiguration.
type Manager struct {
	Verifier *ssi.Verifier
	nodes    map[string]*HardwareNode
	comps    map[string]*SoftwareComponent
	// placement maps component → node.
	placement map[string]string
	// Log records every decision for audit.
	Log []string
}

// NewManager builds a manager around an SSI verifier.
func NewManager(v *ssi.Verifier) *Manager {
	return &Manager{
		Verifier:  v,
		nodes:     make(map[string]*HardwareNode),
		comps:     make(map[string]*SoftwareComponent),
		placement: make(map[string]string),
	}
}

// AddNode registers a hardware node.
func (m *Manager) AddNode(n *HardwareNode) error {
	if _, dup := m.nodes[n.ID]; dup {
		return fmt.Errorf("sdv: duplicate node %s", n.ID)
	}
	m.nodes[n.ID] = n
	return nil
}

// AddComponent registers a software component.
func (m *Manager) AddComponent(c *SoftwareComponent) error {
	if _, dup := m.comps[c.ID]; dup {
		return fmt.Errorf("sdv: duplicate component %s", c.ID)
	}
	m.comps[c.ID] = c
	return nil
}

// PlacementOf returns the node currently hosting the component ("" if
// unplaced).
func (m *Manager) PlacementOf(compID string) string { return m.placement[compID] }

// authorize performs the zero-trust mutual check for placing comp on
// node at the given time. Both directions must pass:
//
//   - the platform verifies the software: approval credential valid and
//     a compatibility credential names the node's platform family;
//   - the software (vendor policy) verifies the platform: attestation
//     credential valid and issued by a trusted anchor.
func (m *Manager) authorize(comp *SoftwareComponent, node *HardwareNode, now int64) error {
	if comp.Approval == nil {
		return fmt.Errorf("sdv: %s has no approval credential", comp.ID)
	}
	if err := m.Verifier.Verify(comp.Approval, now); err != nil {
		return fmt.Errorf("sdv: software approval: %w", err)
	}
	if comp.Approval.Subject != comp.Identity.DID {
		return fmt.Errorf("sdv: approval credential is about %s, not %s", comp.Approval.Subject, comp.Identity.DID)
	}
	if comp.Approval.Claims["version"] != comp.Version {
		return fmt.Errorf("sdv: approval covers version %q, component is %q", comp.Approval.Claims["version"], comp.Version)
	}

	compat := false
	for _, c := range comp.Compat {
		if c.Claims["platform"] != node.Platform || c.Claims["version"] != comp.Version {
			continue
		}
		if err := m.Verifier.Verify(c, now); err != nil {
			continue
		}
		compat = true
		break
	}
	if !compat {
		return fmt.Errorf("sdv: no valid compatibility credential for %s on platform %s", comp.ID, node.Platform)
	}

	if node.Attestation == nil {
		return fmt.Errorf("sdv: node %s has no platform attestation", node.ID)
	}
	if err := m.Verifier.Verify(node.Attestation, now); err != nil {
		return fmt.Errorf("sdv: platform attestation: %w", err)
	}
	if node.Attestation.Subject != node.Identity.DID {
		return fmt.Errorf("sdv: attestation is about %s, not node %s", node.Attestation.Subject, node.Identity.DID)
	}

	// Proof of possession both ways: each side signs the other's
	// challenge, so stolen credentials without keys are useless.
	challenge := []byte(fmt.Sprintf("place:%s@%s:%d", comp.ID, node.ID, now))
	pComp, err := ssi.Present(comp.Identity, challenge, comp.Approval)
	if err != nil {
		return fmt.Errorf("sdv: component possession proof: %w", err)
	}
	if err := m.Verifier.VerifyPresentation(pComp, challenge, now); err != nil {
		return fmt.Errorf("sdv: component possession proof: %w", err)
	}
	pNode, err := ssi.Present(node.Identity, challenge, node.Attestation)
	if err != nil {
		return fmt.Errorf("sdv: node possession proof: %w", err)
	}
	if err := m.Verifier.VerifyPresentation(pNode, challenge, now); err != nil {
		return fmt.Errorf("sdv: node possession proof: %w", err)
	}
	return nil
}

// Place deploys a component onto a specific node after mutual
// authentication and capacity checks.
func (m *Manager) Place(compID, nodeID string, now int64) error {
	comp, ok := m.comps[compID]
	if !ok {
		return fmt.Errorf("sdv: unknown component %s", compID)
	}
	node, ok := m.nodes[nodeID]
	if !ok {
		return fmt.Errorf("sdv: unknown node %s", nodeID)
	}
	if cur := m.placement[compID]; cur != "" {
		return fmt.Errorf("sdv: %s already placed on %s", compID, cur)
	}
	if node.Free() < comp.Units {
		return fmt.Errorf("sdv: node %s has %d free units, need %d", nodeID, node.Free(), comp.Units)
	}
	if err := m.authorize(comp, node, now); err != nil {
		m.Log = append(m.Log, fmt.Sprintf("DENY place %s on %s: %v", compID, nodeID, err))
		return err
	}
	node.used += comp.Units
	m.placement[compID] = nodeID
	m.Log = append(m.Log, fmt.Sprintf("PLACE %s on %s", compID, nodeID))
	return nil
}

// FailNode marks a node failed and reconfigures: every hosted component
// is re-placed on the best alternative that passes mutual
// authentication. Components with no authorized home are left unplaced
// and reported.
func (m *Manager) FailNode(nodeID string, now int64) (relocated, stranded []string, err error) {
	failed, ok := m.nodes[nodeID]
	if !ok {
		return nil, nil, fmt.Errorf("sdv: unknown node %s", nodeID)
	}
	delete(m.nodes, nodeID)
	m.Log = append(m.Log, fmt.Sprintf("FAIL node %s", nodeID))

	var displaced []string
	for comp, node := range m.placement {
		if node == nodeID {
			displaced = append(displaced, comp)
		}
	}
	sort.Strings(displaced)
	_ = failed

	for _, compID := range displaced {
		delete(m.placement, compID)
		comp := m.comps[compID]
		target := ""
		// Deterministic candidate order: by free capacity desc, id asc.
		ids := make([]string, 0, len(m.nodes))
		for id := range m.nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			a, b := m.nodes[ids[i]], m.nodes[ids[j]]
			if a.Free() != b.Free() {
				return a.Free() > b.Free()
			}
			return ids[i] < ids[j]
		})
		for _, id := range ids {
			if m.nodes[id].Free() < comp.Units {
				continue
			}
			if err := m.authorize(comp, m.nodes[id], now); err != nil {
				continue
			}
			target = id
			break
		}
		if target == "" {
			stranded = append(stranded, compID)
			m.Log = append(m.Log, fmt.Sprintf("STRAND %s (no authorized node)", compID))
			continue
		}
		m.nodes[target].used += comp.Units
		m.placement[compID] = target
		relocated = append(relocated, compID)
		m.Log = append(m.Log, fmt.Sprintf("RELOCATE %s to %s", compID, target))
	}
	return relocated, stranded, nil
}

// Update swaps a component to a new version: the placement is dropped,
// the component's version/credentials replaced, and placement re-run.
// The zero-trust property means an update whose approval was revoked
// (compromised release) cannot land anywhere.
func (m *Manager) Update(compID, newVersion string, approval *ssi.Credential, compat []*ssi.Credential, now int64) error {
	comp, ok := m.comps[compID]
	if !ok {
		return fmt.Errorf("sdv: unknown component %s", compID)
	}
	prevNode := m.placement[compID]
	if prevNode == "" {
		return fmt.Errorf("sdv: %s is not placed", compID)
	}
	// Stage the new version.
	old := *comp
	m.nodes[prevNode].used -= comp.Units
	delete(m.placement, compID)
	comp.Version = newVersion
	comp.Approval = approval
	comp.Compat = compat

	if err := m.Place(compID, prevNode, now); err != nil {
		// Roll back to the previous, still-approved version.
		*comp = old
		if placeErr := m.Place(compID, prevNode, now); placeErr != nil {
			return fmt.Errorf("sdv: update rejected (%v) and rollback failed: %w", err, placeErr)
		}
		m.Log = append(m.Log, fmt.Sprintf("ROLLBACK %s to %s", compID, old.Version))
		return fmt.Errorf("sdv: update rejected: %w", err)
	}
	m.Log = append(m.Log, fmt.Sprintf("UPDATE %s to %s", compID, newVersion))
	return nil
}
