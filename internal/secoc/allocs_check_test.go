package secoc

import "testing"

// TestVerifyRejectPathAllocs pins the allocation-free reject path: the
// MAC-truncation ablation feeds each receiver tens of thousands of
// forged PDUs, so a rejected Verify must not allocate (scratch MAC
// buffers, sentinel error, and the secchan candidate iterator all live
// on the stack or in the receiver).
func TestVerifyRejectPathAllocs(t *testing.T) {
	cfg := DefaultConfig(1)
	key := []byte("0123456789abcdef")
	s, _ := NewSender(cfg, key)
	r, _ := NewReceiver(cfg, key)
	pdu, _ := s.Protect([]byte{1, 2, 3, 4})
	forged := append([]byte(nil), pdu...)
	forged[len(forged)-1] ^= 0xff
	n := testing.AllocsPerRun(1000, func() {
		if _, err := r.Verify(forged); err == nil {
			t.Fatal("forgery accepted")
		}
	})
	if n > 0 {
		t.Errorf("rejected Verify allocates %v per op, want 0", n)
	}
}
