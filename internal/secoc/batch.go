package secoc

import (
	"encoding/binary"

	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Batched SECOC endpoints. SECOC is the one Table I suite whose
// per-frame crypto is a CMAC, and CBC-MAC chains are serial *within* a
// message but independent *across* messages — so a batch of PDUs can
// pipeline through the AES-NI kernel in vcrypto (8 MAC chains per
// call) where the single-frame path runs one chain at a time. The
// batch endpoints are contractually byte-identical to a loop over
// Protect/Verify: same wires, same counter movements, same errors.

// batchScratch holds the reusable arenas of one endpoint's batch path:
// the MAC messages (data-ID ‖ payload ‖ full freshness) are laid out
// back to back in one buffer, so a warmed endpoint protects or
// verifies a whole batch without allocating.
type batchScratch struct {
	arena []byte
	msgs  [][]byte
	tags  [][16]byte
	// VerifyBatch predictions: per frame, up to two candidate guesses
	// and the indices of their precomputed tags in tags (-1 = none).
	candA, candB []uint64
	idxA, idxB   []int
}

// layout resizes the scratch to hold nMsgs MAC messages of totalLen
// total bytes and per-frame prediction slots for n frames, reusing
// backing arrays across batches.
func (b *batchScratch) layout(n, nMsgs, totalLen int) {
	if cap(b.arena) < totalLen {
		b.arena = make([]byte, totalLen)
	}
	b.arena = b.arena[:totalLen]
	if cap(b.msgs) < nMsgs {
		b.msgs = make([][]byte, nMsgs)
		b.tags = make([][16]byte, nMsgs)
	}
	b.msgs = b.msgs[:nMsgs]
	b.tags = b.tags[:nMsgs]
	if cap(b.candA) < n {
		b.candA = make([]uint64, n)
		b.candB = make([]uint64, n)
		b.idxA = make([]int, n)
		b.idxB = make([]int, n)
	}
	b.candA = b.candA[:n]
	b.candB = b.candB[:n]
	b.idxA = b.idxA[:n]
	b.idxB = b.idxB[:n]
}

// ProtectBatch builds the secured PDUs for payloads in order, consuming
// one freshness value per payload — byte-identical to calling Protect
// in a loop, but with all MACs computed through vcrypto.CMACBatch. dst
// follows the secchan batch contract: when long enough, wire i is built
// in dst[i][:0], so a warmed dst keeps the path allocation-free.
func (s *Sender) ProtectBatch(payloads, dst [][]byte) ([][]byte, error) {
	out := secchan.SizeWires(dst, len(payloads))
	n := len(payloads)
	if n == 0 {
		return out, nil
	}

	total := 0
	for _, p := range payloads {
		total += 2 + len(p) + 8
	}
	sc := &s.batch
	sc.layout(n, n, total)

	off := 0
	for i, p := range payloads {
		msg := sc.arena[off : off+2+len(p)+8]
		off += len(msg)
		binary.BigEndian.PutUint16(msg[0:2], s.cfg.DataID)
		copy(msg[2:], p)
		binary.BigEndian.PutUint64(msg[2+len(p):], s.fv+uint64(i)+1)
		sc.msgs[i] = msg
	}
	if err := vcrypto.CMACBatch(s.key, sc.msgs, sc.tags); err != nil {
		// A Protect loop would consume one freshness value before
		// hitting the same key error on its first MAC.
		s.fv++
		return out[:0], err
	}

	fvBytes := s.cfg.FreshnessBits / 8
	macBytes := s.cfg.MACBits / 8
	for i, p := range payloads {
		s.fv++
		w := out[i][:0]
		w = append(w, p...)
		var fvBuf [8]byte
		binary.BigEndian.PutUint64(fvBuf[:], s.fv)
		w = append(w, fvBuf[8-fvBytes:]...)
		w = append(w, sc.tags[i][:macBytes]...)
		out[i] = w
	}
	return out, nil
}

// VerifyBatch checks a batch of secured PDUs, writing one verdict per
// frame. It is the optimistic counterpart of Verify: phase one predicts
// each frame's winning freshness candidate in O(1) and computes all
// predicted MACs in one CMACBatch call; phase two is the authoritative
// serial candidate walk of Verify, which reuses a precomputed tag
// whenever the iterator lands on a predicted candidate and falls back
// to the scalar MAC otherwise. Predictions therefore only move crypto
// into the batched kernel — acceptance, counter commits, and errors are
// decided exactly as a Verify loop would decide them, whatever the
// prediction quality.
//
// Two guesses cover the hot traffic shapes: candidate A assumes every
// earlier frame in the batch accepted (the honest in-order stream,
// where the first in-window candidate is the sender's real counter);
// candidate B assumes every earlier frame rejected (the MAC ablation's
// forgery floods, where the receiver state never moves). Mixed
// accept/reject bursts degrade to the scalar path for the frames whose
// guesses miss — never to a wrong answer.
func (r *Receiver) VerifyBatch(wires [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = secchan.SizeVerdicts(verdicts, len(wires))
	n := len(wires)
	if n == 0 {
		return verdicts
	}
	oh := r.cfg.Overhead()
	fvBytes := r.cfg.FreshnessBits / 8
	macBytes := r.cfg.MACBits / 8

	total := 0
	for _, pdu := range wires {
		if len(pdu) >= oh {
			total += 2 * (2 + len(pdu) - oh + 8)
		}
	}
	sc := &r.batch
	sc.layout(n, 2*n, total)

	startLast := r.fresh.Last()
	chainLast := startLast
	off, nMsg := 0, 0
	layMsg := func(payload []byte, cand uint64) int {
		msg := sc.arena[off : off+2+len(payload)+8]
		off += len(msg)
		binary.BigEndian.PutUint16(msg[0:2], r.cfg.DataID)
		copy(msg[2:], payload)
		binary.BigEndian.PutUint64(msg[2+len(payload):], cand)
		sc.msgs[nMsg] = msg
		nMsg++
		return nMsg - 1
	}
	for i, pdu := range wires {
		sc.idxA[i], sc.idxB[i] = -1, -1
		if len(pdu) < oh {
			continue
		}
		payload := pdu[:len(pdu)-oh]
		trunc := truncFV(pdu[len(pdu)-oh : len(pdu)-oh+fvBytes])
		if cand, ok := r.fresh.FirstCandidateAfter(chainLast, trunc); ok {
			sc.candA[i] = cand
			sc.idxA[i] = layMsg(payload, cand)
			chainLast = cand
		}
		if cand, ok := r.fresh.FirstCandidateAfter(startLast, trunc); ok && (sc.idxA[i] < 0 || cand != sc.candA[i]) {
			sc.candB[i] = cand
			sc.idxB[i] = layMsg(payload, cand)
		}
	}
	if vcrypto.CMACBatch(r.key, sc.msgs[:nMsg], sc.tags[:nMsg]) != nil {
		// Unreachable with a validated 16-byte key; the serial walk
		// below still produces the exact Verify outcomes without
		// predictions.
		for i := range wires {
			sc.idxA[i], sc.idxB[i] = -1, -1
		}
	}

	// Phase 2: the authoritative serial walk.
	for i, pdu := range wires {
		if len(pdu) < oh {
			verdicts[i].Payload, verdicts[i].Err = r.Verify(pdu)
			continue
		}
		payload := pdu[:len(pdu)-oh]
		trunc := truncFV(pdu[len(pdu)-oh : len(pdu)-oh+fvBytes])
		mac := pdu[len(pdu)-macBytes:]

		accepted := false
		var frameErr error
		it := r.fresh.Candidates(trunc)
		for it.Next() {
			var want []byte
			if sc.idxA[i] >= 0 && it.Value() == sc.candA[i] {
				want = sc.tags[sc.idxA[i]][:macBytes]
			} else if sc.idxB[i] >= 0 && it.Value() == sc.candB[i] {
				want = sc.tags[sc.idxB[i]][:macBytes]
			} else {
				w, err := r.mac.compute(r.key, r.cfg, payload, it.Value())
				if err != nil {
					frameErr = err
					break
				}
				want = w
			}
			if secchan.VerifyTrunc(want[:macBytes], mac) {
				it.Commit()
				verdicts[i].Payload = append(verdicts[i].Payload[:0], payload...)
				verdicts[i].Err = nil
				accepted = true
				break
			}
		}
		if !accepted {
			if frameErr == nil {
				frameErr = errVerifyFailed
			}
			verdicts[i].Payload, verdicts[i].Err = nil, frameErr
		}
	}
	return verdicts
}

// truncFV folds the big-endian truncated freshness bytes into a value.
func truncFV(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
