package secoc

import (
	"bytes"
	"testing"
	"testing/quick"
)

var key = []byte("secoc-128bit-key")

func pair(t *testing.T, cfg Config) (*Sender, *Receiver) {
	t.Helper()
	s, err := NewSender(cfg, key)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(cfg, key)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestProtectVerifyRoundTrip(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x10))
	payload := []byte{0x12, 0x34, 0x56}
	pdu, err := s.Protect(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdu) != len(payload)+DefaultConfig(0x10).Overhead() {
		t.Errorf("PDU length %d", len(pdu))
	}
	got, err := r.Verify(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %x", got)
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x10))
	pdu, err := s.Protect([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(pdu); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(pdu); err == nil {
		t.Error("replayed PDU accepted")
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x10))
	pdu, err := s.Protect([]byte{0x01, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), pdu...)
	bad[0] ^= 0xFF
	if _, err := r.Verify(bad); err == nil {
		t.Error("tampered payload accepted")
	}
}

func TestVerifyRejectsWrongDataID(t *testing.T) {
	t.Parallel()
	s, _ := pair(t, DefaultConfig(0x10))
	_, r2 := pair(t, DefaultConfig(0x11))
	pdu, err := s.Protect([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Verify(pdu); err == nil {
		t.Error("cross-stream PDU accepted (data ID not bound)")
	}
}

func TestVerifyToleratesLossWithinWindow(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x10))
	// Drop 10 PDUs, then deliver the 11th: within window 64.
	var pdu []byte
	var err error
	for i := 0; i < 11; i++ {
		pdu, err = s.Protect([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Verify(pdu); err != nil {
		t.Errorf("in-window PDU after loss rejected: %v", err)
	}
	if r.LastFV() != 11 {
		t.Errorf("receiver FV = %d, want 11", r.LastFV())
	}
}

func TestVerifyRejectsBeyondWindow(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig(0x10)
	cfg.AcceptWindow = 4
	s, r := pair(t, cfg)
	var pdu []byte
	var err error
	for i := 0; i < 10; i++ { // 10 > window 4
		pdu, err = s.Protect([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Verify(pdu); err == nil {
		t.Error("PDU beyond freshness window accepted")
	}
}

func TestOutOfOrderOlderPDURejected(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x10))
	p1, _ := s.Protect([]byte{1})
	p2, _ := s.Protect([]byte{2})
	if _, err := r.Verify(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(p1); err == nil {
		t.Error("older PDU accepted after newer (replay direction)")
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{DataID: 1, MACBits: 0, FreshnessBits: 8},
		{DataID: 1, MACBits: 7, FreshnessBits: 8},
		{DataID: 1, MACBits: 136, FreshnessBits: 8},
		{DataID: 1, MACBits: 24, FreshnessBits: 0},
		{DataID: 1, MACBits: 24, FreshnessBits: 72},
	}
	for i, cfg := range bad {
		if _, err := NewSender(cfg, key); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSender(DefaultConfig(1), []byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewReceiver(DefaultConfig(1), []byte("short")); err == nil {
		t.Error("short key accepted by receiver")
	}
}

func TestVerifyShortPDU(t *testing.T) {
	t.Parallel()
	_, r := pair(t, DefaultConfig(1))
	if _, err := r.Verify([]byte{1, 2}); err == nil {
		t.Error("short PDU accepted")
	}
}

func TestOverheadMatchesConfig(t *testing.T) {
	t.Parallel()
	cfg := Config{DataID: 1, MACBits: 64, FreshnessBits: 16, AcceptWindow: 16}
	if cfg.Overhead() != 10 {
		t.Errorf("overhead = %d, want 10", cfg.Overhead())
	}
}

func TestPropertyProtectVerifyStream(t *testing.T) {
	t.Parallel()
	s, r := pair(t, DefaultConfig(0x42))
	f := func(payload []byte) bool {
		pdu, err := s.Protect(payload)
		if err != nil {
			return false
		}
		got, err := r.Verify(pdu)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForgeryWithoutKeyFails(t *testing.T) {
	t.Parallel()
	_, r := pair(t, DefaultConfig(0x10))
	attacker, err := NewSender(DefaultConfig(0x10), []byte("wrong-key-123456"))
	if err != nil {
		t.Fatal(err)
	}
	forged, err := attacker.Protect([]byte{0xDE, 0xAD})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Verify(forged); err == nil {
		t.Error("forged PDU under wrong key accepted")
	}
}
