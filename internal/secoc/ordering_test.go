package secoc

import (
	"testing"
	"testing/quick"
)

// TestPropertyLossyInOrderDeliveryExactlyOnce pins the core freshness
// invariant under arbitrary loss patterns: every PDU that arrives in
// order within the window verifies exactly once, and re-delivery of any
// accepted PDU always fails.
func TestPropertyLossyInOrderDeliveryExactlyOnce(t *testing.T) {
	t.Parallel()
	f := func(lossPattern []bool) bool {
		if len(lossPattern) > 60 {
			lossPattern = lossPattern[:60]
		}
		cfg := DefaultConfig(0x77)
		sender, err := NewSender(cfg, key)
		if err != nil {
			return false
		}
		recv, err := NewReceiver(cfg, key)
		if err != nil {
			return false
		}
		var accepted [][]byte
		lossStreak := 0
		for i, lost := range lossPattern {
			pdu, err := sender.Protect([]byte{byte(i)})
			if err != nil {
				return false
			}
			if lost {
				lossStreak++
				if uint64(lossStreak) >= cfg.AcceptWindow {
					// Beyond the window the receiver legitimately
					// desynchronizes; the property only covers
					// in-window loss.
					return true
				}
				continue
			}
			lossStreak = 0
			if _, err := recv.Verify(pdu); err != nil {
				return false // in-window delivery must verify
			}
			accepted = append(accepted, pdu)
		}
		// Exactly-once: replaying anything accepted fails.
		for _, pdu := range accepted {
			if _, err := recv.Verify(pdu); err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
