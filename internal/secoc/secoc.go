// Package secoc implements AUTOSAR Secure Onboard Communication
// (paper ref [18]): authentication of PDUs on CAN or Ethernet with a
// truncated AES-CMAC and a freshness value to stop replay. The secured
// PDU layout follows the specification: payload ‖ truncated freshness ‖
// truncated MAC, where the MAC covers data-ID ‖ payload ‖ full
// freshness. SECOC provides *authenticity only* — no confidentiality —
// which is one of the S1 disadvantages the paper lists.
//
// Exercised by experiments tab1, fig4, exp-vehicle, ablate-mac, and
// ablate-fv.
package secoc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Config fixes the profile of a SECOC channel.
type Config struct {
	// DataID distinguishes message streams; it is bound into the MAC.
	DataID uint16
	// MACBits is the truncated MAC length (24–64 typical; profile 1
	// uses 24 bits on classic CAN, larger on FD/Ethernet).
	MACBits int
	// FreshnessBits is how many low-order freshness bits travel in the
	// PDU (profile 1 uses 8).
	FreshnessBits int
	// AcceptWindow is how far ahead of the receiver's counter a
	// reconstructed freshness value may be (tolerates lost PDUs).
	AcceptWindow uint64
}

// DefaultConfig is SECOC profile-1-like: 24-bit MAC, 8 freshness bits,
// window 64 — sized to fit alongside data in small CAN payloads.
func DefaultConfig(dataID uint16) Config {
	return Config{DataID: dataID, MACBits: 24, FreshnessBits: 8, AcceptWindow: 64}
}

func (c Config) validate() error {
	if c.MACBits <= 0 || c.MACBits > 128 || c.MACBits%8 != 0 {
		return fmt.Errorf("secoc: MAC bits %d", c.MACBits)
	}
	if c.FreshnessBits <= 0 || c.FreshnessBits > 64 || c.FreshnessBits%8 != 0 {
		return fmt.Errorf("secoc: freshness bits %d", c.FreshnessBits)
	}
	return nil
}

// Overhead returns the bytes SECOC adds to each payload.
func (c Config) Overhead() int { return c.FreshnessBits/8 + c.MACBits/8 }

// Sender protects outgoing PDUs. Not safe for concurrent use (each
// stream belongs to one simulated ECU task).
type Sender struct {
	cfg   Config
	key   []byte
	fv    uint64 // full monotonic freshness counter
	mac   macScratch
	batch batchScratch
}

// NewSender creates a protecting endpoint.
func NewSender(cfg Config, key []byte) (*Sender, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("secoc: key must be 16 bytes")
	}
	return &Sender{cfg: cfg, key: append([]byte(nil), key...)}, nil
}

// Protect builds the secured PDU for payload, consuming one freshness
// value.
func (s *Sender) Protect(payload []byte) ([]byte, error) {
	s.fv++
	mac, err := s.mac.compute(s.key, s.cfg, payload, s.fv)
	if err != nil {
		return nil, err
	}
	fvBytes := s.cfg.FreshnessBits / 8
	out := make([]byte, 0, len(payload)+s.cfg.Overhead())
	out = append(out, payload...)
	var fvBuf [8]byte
	binary.BigEndian.PutUint64(fvBuf[:], s.fv)
	out = append(out, fvBuf[8-fvBytes:]...)
	out = append(out, mac...)
	return out, nil
}

// FV exposes the current counter (tests, persistence).
func (s *Sender) FV() uint64 { return s.fv }

// Receiver verifies secured PDUs.
type Receiver struct {
	cfg   Config
	key   []byte
	fresh secchan.Freshness
	mac   macScratch
	batch batchScratch
}

// NewReceiver creates a verifying endpoint.
func NewReceiver(cfg Config, key []byte) (*Receiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(key) != 16 {
		return nil, fmt.Errorf("secoc: key must be 16 bytes")
	}
	return &Receiver{
		cfg:   cfg,
		key:   append([]byte(nil), key...),
		fresh: secchan.Freshness{Bits: cfg.FreshnessBits, Window: cfg.AcceptWindow},
	}, nil
}

// Verify checks a secured PDU and returns the authenticated payload.
// The receiver reconstructs the full freshness value from the truncated
// bits via the secchan kernel's candidate search — forward from its own
// counter within the acceptance window; replayed or stale PDUs fail
// because no in-window counter matches both the truncated bits and the
// MAC.
func (r *Receiver) Verify(pdu []byte) ([]byte, error) {
	oh := r.cfg.Overhead()
	if len(pdu) < oh {
		return nil, fmt.Errorf("secoc: PDU shorter than overhead (%d < %d)", len(pdu), oh)
	}
	fvBytes := r.cfg.FreshnessBits / 8
	payload := pdu[:len(pdu)-oh]
	fvTrunc := pdu[len(pdu)-oh : len(pdu)-oh+fvBytes]
	mac := pdu[len(pdu)-r.cfg.MACBits/8:]

	var truncVal uint64
	for _, b := range fvTrunc {
		truncVal = truncVal<<8 | uint64(b)
	}

	// The iterator form keeps the reject path allocation-free: the
	// ablation sweeps feed this receiver thousands of forgeries, and a
	// Reconstruct closure would escape to the heap on every PDU.
	it := r.fresh.Candidates(truncVal)
	for it.Next() {
		want, err := r.mac.compute(r.key, r.cfg, payload, it.Value())
		if err != nil {
			return nil, err
		}
		if secchan.VerifyTrunc(want, mac) {
			it.Commit()
			return append([]byte(nil), payload...), nil
		}
	}
	return nil, errVerifyFailed
}

// errVerifyFailed is a sentinel: Verify rejects thousands of forged or
// replayed PDUs per ablation sweep, and formatting a fresh error for
// each dominated the package's allocations.
var errVerifyFailed = errors.New("secoc: verification failed (replay, forgery, or window exceeded)")

// LastFV exposes the receiver's counter.
func (r *Receiver) LastFV() uint64 { return r.fresh.Last() }

// macScratch holds the reusable message and tag buffers of one
// endpoint, so the per-PDU MAC computation allocates nothing. Endpoints
// are documented as single-task objects, so the buffers need no lock.
type macScratch struct {
	buf []byte
}

// compute returns the truncated CMAC over data-ID || payload || full
// freshness. The result aliases the endpoint's scratch buffer and is
// only valid until the next compute call; both call sites either copy
// it (Protect appends) or finish with it immediately (Verify compares).
func (m *macScratch) compute(key []byte, cfg Config, payload []byte, fv uint64) ([]byte, error) {
	n := 2 + len(payload) + 8
	macBytes := cfg.MACBits / 8
	if cap(m.buf) < n+macBytes {
		m.buf = make([]byte, n+macBytes)
	}
	msg := m.buf[:n]
	binary.BigEndian.PutUint16(msg[0:2], cfg.DataID)
	copy(msg[2:], payload)
	binary.BigEndian.PutUint64(msg[2+len(payload):], fv)
	tag, err := vcrypto.CMAC(key, msg)
	if err != nil {
		return nil, err
	}
	mac := m.buf[n : n+macBytes]
	copy(mac, tag[:])
	return mac, nil
}
