package tara

// BuildVehicleTARA constructs the worked analysis for the paper's
// autonomous vehicle, with one threat scenario per major attack the
// substrates implement. Treatments reference the defence IDs of
// internal/core's catalog, tying the regulatory worksheet to the
// technical controls; treated=false produces the pre-hardening
// worksheet.
func BuildVehicleTARA(treated bool) (*Analysis, error) {
	a := NewAnalysis()

	assets := []*Asset{
		{ID: "entry", Name: "Vehicle entry/start function", Property: Integrity},
		{ID: "ranging", Name: "Collision-avoidance ranging", Property: Integrity},
		{ID: "canbus", Name: "Safety-critical CAN traffic", Property: Integrity},
		{ID: "platform", Name: "Software platform integrity", Property: Integrity},
		{ID: "telemetry", Name: "Fleet telemetry data", Property: Confidentiality},
		{ID: "timebase", Name: "Synchronized time base", Property: Integrity},
		{ID: "v2xfeed", Name: "Collaborative perception feed", Property: Integrity},
	}
	for _, as := range assets {
		if err := a.AddAsset(as); err != nil {
			return nil, err
		}
	}

	reduce := func(steps int, control string) (int, string) {
		if !treated {
			return 0, ""
		}
		return steps, control
	}

	scenarios := []*ThreatScenario{
		func() *ThreatScenario {
			red, ctl := reduce(2, "D-uwb-tof / D-dist-bound")
			return &ThreatScenario{
				ID: "TS-relay", Name: "Relay attack unlocks and starts the vehicle", Asset: "entry",
				Impact: Impact{Safety: Negligible, Financial: Major, Operational: Moderate, Privacy: Negligible},
				Paths: []Feasibility{
					{ElapsedTime: 0, Expertise: 2, Knowledge: 0, Window: 1, Equipment: 4}, // commodity relay rig
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(2, "D-enlarge-guard / D-fusion")
			return &ThreatScenario{
				ID: "TS-enlarge", Name: "Distance enlargement hides a lead vehicle", Asset: "ranging",
				Impact: Impact{Safety: Severe, Financial: Moderate, Operational: Moderate, Privacy: Negligible},
				Paths: []Feasibility{
					{ElapsedTime: 4, Expertise: 6, Knowledge: 3, Window: 4, Equipment: 7}, // SDR + real-time DSP
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(3, "D-secoc / D-macsec / D-ids")
			return &ThreatScenario{
				ID: "TS-masq", Name: "CAN masquerade commands braking/steering", Asset: "canbus",
				Impact: Impact{Safety: Severe, Financial: Major, Operational: Major, Privacy: Negligible},
				Paths: []Feasibility{
					{ElapsedTime: 4, Expertise: 3, Knowledge: 3, Window: 1, Equipment: 4},  // physical access via OBD
					{ElapsedTime: 10, Expertise: 6, Knowledge: 7, Window: 0, Equipment: 4}, // remote via telematics
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(2, "D-ssi-reconfig / D-ota")
			return &ThreatScenario{
				ID: "TS-malware", Name: "Unauthorized software installed on the platform", Asset: "platform",
				Impact: Impact{Safety: Severe, Financial: Major, Operational: Major, Privacy: Major},
				Paths: []Feasibility{
					{ElapsedTime: 10, Expertise: 6, Knowledge: 7, Window: 4, Equipment: 4},
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(3, "D-no-debug / D-secret-store / D-least-priv")
			return &ThreatScenario{
				ID: "TS-breach", Name: "Fleet telemetry exfiltration via cloud misconfiguration", Asset: "telemetry",
				Impact: Impact{Safety: Negligible, Financial: Major, Operational: Moderate, Privacy: Severe},
				Paths: []Feasibility{
					{ElapsedTime: 1, Expertise: 3, Knowledge: 0, Window: 0, Equipment: 0}, // the incident: trivially feasible
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(2, "D-ptpsec")
			return &ThreatScenario{
				ID: "TS-delay", Name: "Time delay attack skews the vehicle time base", Asset: "timebase",
				Impact: Impact{Safety: Major, Financial: Moderate, Operational: Major, Privacy: Negligible},
				Paths: []Feasibility{
					{ElapsedTime: 4, Expertise: 6, Knowledge: 3, Window: 4, Equipment: 4},
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
		func() *ThreatScenario {
			red, ctl := reduce(2, "D-v2x-auth / D-misbehaviour")
			return &ThreatScenario{
				ID: "TS-fabricate", Name: "Insider fabricates collaborative perception objects", Asset: "v2xfeed",
				Impact: Impact{Safety: Severe, Financial: Moderate, Operational: Major, Privacy: Negligible},
				Paths: []Feasibility{
					{ElapsedTime: 7, Expertise: 6, Knowledge: 3, Window: 0, Equipment: 4},
				},
				Reduction: red, Treatment: ctl,
			}
		}(),
	}
	for _, s := range scenarios {
		if err := a.AddScenario(s); err != nil {
			return nil, err
		}
	}
	return a, nil
}
