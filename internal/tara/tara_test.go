package tara

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestImpactOverallIsMax(t *testing.T) {
	i := Impact{Safety: Negligible, Financial: Major, Operational: Moderate, Privacy: Severe}
	if i.Overall() != Severe {
		t.Errorf("overall %v", i.Overall())
	}
	if (Impact{}).Overall() != Negligible {
		t.Error("zero impact not negligible")
	}
}

func TestFeasibilityBanding(t *testing.T) {
	cases := []struct {
		f    Feasibility
		want FeasibilityRating
	}{
		{Feasibility{}, HighFeasibility},                                                            // 0 points
		{Feasibility{ElapsedTime: 10, Expertise: 3}, HighFeasibility},                               // 13
		{Feasibility{ElapsedTime: 10, Expertise: 4}, MediumFeasibility},                             // 14
		{Feasibility{ElapsedTime: 10, Expertise: 6, Knowledge: 3}, MediumFeasibility},               // 19
		{Feasibility{ElapsedTime: 10, Expertise: 6, Knowledge: 4}, LowFeasibility},                  // 20
		{Feasibility{ElapsedTime: 19, Expertise: 8, Knowledge: 11, Window: 10}, VeryLowFeasibility}, // 48
	}
	for _, tc := range cases {
		if got := tc.f.Rating(); got != tc.want {
			t.Errorf("%+v → %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestRiskMatrixMonotone(t *testing.T) {
	// Risk must be monotone non-decreasing in both impact and
	// feasibility.
	f := func(i1, i2, f1, f2 uint8) bool {
		ia, ib := ImpactRating(i1%4), ImpactRating(i2%4)
		fa, fb := FeasibilityRating(f1%4), FeasibilityRating(f2%4)
		if ia <= ib && fa <= fb {
			return Risk(ia, fa) <= Risk(ib, fb)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Risk(Severe, HighFeasibility) != 5 {
		t.Error("worst case not 5")
	}
	if Risk(Negligible, HighFeasibility) != 1 {
		t.Error("negligible impact must be risk 1")
	}
}

func TestTreatmentDecisions(t *testing.T) {
	if TreatmentDecision(1) != "retain" {
		t.Error("risk 1")
	}
	if TreatmentDecision(3) != "reduce/share" {
		t.Error("risk 3")
	}
	if TreatmentDecision(5) != "reduce (mandatory)" {
		t.Error("risk 5")
	}
}

func TestScenarioUsesEasiestPath(t *testing.T) {
	s := &ThreatScenario{
		Paths: []Feasibility{
			{ElapsedTime: 19, Expertise: 8, Knowledge: 11, Window: 10, Equipment: 9}, // very hard
			{ElapsedTime: 0, Expertise: 2},                                           // easy
		},
	}
	if s.FeasibilityRating() != HighFeasibility {
		t.Errorf("scenario rating %v; easiest path must win", s.FeasibilityRating())
	}
	s.Reduction = 2
	if s.FeasibilityRating() != LowFeasibility {
		t.Errorf("treated rating %v", s.FeasibilityRating())
	}
	s.Reduction = 99
	if s.FeasibilityRating() != VeryLowFeasibility {
		t.Error("reduction must clamp at very-low")
	}
}

func TestAnalysisValidation(t *testing.T) {
	a := NewAnalysis()
	if err := a.AddAsset(&Asset{}); err == nil {
		t.Error("empty asset ID accepted")
	}
	if err := a.AddAsset(&Asset{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddAsset(&Asset{ID: "x"}); err == nil {
		t.Error("duplicate asset accepted")
	}
	if err := a.AddScenario(&ThreatScenario{ID: "s", Asset: "missing", Paths: []Feasibility{{}}}); err == nil {
		t.Error("unknown asset accepted")
	}
	if err := a.AddScenario(&ThreatScenario{ID: "s", Asset: "x"}); err == nil {
		t.Error("scenario without paths accepted")
	}
	if err := a.AddScenario(&ThreatScenario{Asset: "x", Paths: []Feasibility{{}}}); err == nil {
		t.Error("scenario without ID accepted")
	}
}

func TestVehicleTARAUntreatedHasMandatoryReductions(t *testing.T) {
	a, err := BuildVehicleTARA(false)
	if err != nil {
		t.Fatal(err)
	}
	rows := a.Worksheet()
	if len(rows) != 7 {
		t.Fatalf("%d scenarios", len(rows))
	}
	// Worksheet is sorted by risk descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Risk > rows[i-1].Risk {
			t.Fatal("worksheet not sorted by risk")
		}
	}
	residual := a.ResidualAboveThreshold(3)
	if len(residual) < 2 {
		t.Errorf("untreated vehicle has only %d mandatory-reduction risks", len(residual))
	}
	// The breach scenario (trivially feasible, severe privacy) must top
	// the pre-treatment list alongside the masquerade.
	if rows[0].Risk != 5 {
		t.Errorf("top risk %d, want 5", rows[0].Risk)
	}
}

func TestVehicleTARATreatmentReducesRisk(t *testing.T) {
	before, err := BuildVehicleTARA(false)
	if err != nil {
		t.Fatal(err)
	}
	after, err := BuildVehicleTARA(true)
	if err != nil {
		t.Fatal(err)
	}
	sumBefore, sumAfter := 0, 0
	for _, r := range before.Worksheet() {
		sumBefore += int(r.Risk)
	}
	for _, r := range after.Worksheet() {
		sumAfter += int(r.Risk)
		if r.Treatment == "" {
			t.Errorf("treated worksheet row %q without control", r.Scenario)
		}
	}
	if sumAfter >= sumBefore {
		t.Errorf("treatment did not reduce aggregate risk: %d → %d", sumBefore, sumAfter)
	}
	if len(after.ResidualAboveThreshold(3)) != 0 {
		t.Errorf("mandatory reductions remain after treatment: %v", after.ResidualAboveThreshold(3))
	}
}

func TestSummaryRenders(t *testing.T) {
	a, err := BuildVehicleTARA(true)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Summary()
	if !strings.Contains(s, "risk=") || !strings.Contains(s, "masquerade") {
		t.Errorf("summary:\n%s", s)
	}
}
