// Package tara implements an ISO/SAE 21434-style Threat Analysis and
// Risk Assessment: the regulatory machinery the paper's §VI says the
// MaaS ecosystem struggles to operate ("increasing regulatory demands
// further complicate the landscape", "hinder comprehensive risk
// assessments"). Assets carry cybersecurity properties; damage scenarios
// rate impact on four categories; threat scenarios carry attack paths
// whose feasibility is scored by attack potential; the risk matrix
// combines the two and drives treatment decisions.
//
// Exercised by experiment exp-tara.
package tara

import (
	"fmt"
	"sort"
	"strings"
)

// Property is a cybersecurity property of an asset.
type Property int

const (
	Confidentiality Property = iota
	Integrity
	Availability
)

func (p Property) String() string {
	switch p {
	case Confidentiality:
		return "confidentiality"
	case Integrity:
		return "integrity"
	case Availability:
		return "availability"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// ImpactRating follows 21434's four-step scale.
type ImpactRating int

const (
	Negligible ImpactRating = iota
	Moderate
	Major
	Severe
)

func (r ImpactRating) String() string {
	return [...]string{"negligible", "moderate", "major", "severe"}[r]
}

// Impact rates one damage scenario across the standard's four
// categories; the overall rating is the maximum.
type Impact struct {
	Safety      ImpactRating
	Financial   ImpactRating
	Operational ImpactRating
	Privacy     ImpactRating
}

// Overall is the worst category.
func (i Impact) Overall() ImpactRating {
	max := i.Safety
	for _, r := range []ImpactRating{i.Financial, i.Operational, i.Privacy} {
		if r > max {
			max = r
		}
	}
	return max
}

// Feasibility factors follow the attack-potential approach (21434
// Annex G / Common Criteria): each factor contributes points; more
// points = harder attack = lower feasibility.
type Feasibility struct {
	ElapsedTime int // 0 (≤1 day) … 19 (>6 months)
	Expertise   int // 0 (layman) … 8 (multiple experts)
	Knowledge   int // 0 (public) … 11 (strictly confidential)
	Window      int // 0 (unlimited) … 10 (difficult)
	Equipment   int // 0 (standard) … 9 (multiple bespoke)
}

// FeasibilityRating is the four-step scale.
type FeasibilityRating int

const (
	VeryLowFeasibility FeasibilityRating = iota
	LowFeasibility
	MediumFeasibility
	HighFeasibility
)

func (f FeasibilityRating) String() string {
	return [...]string{"very-low", "low", "medium", "high"}[f]
}

// Rating maps total attack potential to feasibility per the standard's
// banding: ≤13 high, 14–19 medium, 20–24 low, ≥25 very low.
func (f Feasibility) Rating() FeasibilityRating {
	total := f.ElapsedTime + f.Expertise + f.Knowledge + f.Window + f.Equipment
	switch {
	case total <= 13:
		return HighFeasibility
	case total <= 19:
		return MediumFeasibility
	case total <= 24:
		return LowFeasibility
	default:
		return VeryLowFeasibility
	}
}

// Asset is something worth protecting.
type Asset struct {
	ID       string
	Name     string
	Property Property
}

// ThreatScenario is one way a damage scenario can be realized.
type ThreatScenario struct {
	ID     string
	Name   string
	Asset  string
	Impact Impact
	// Paths are alternative attack paths; the scenario's feasibility is
	// the highest (easiest path wins, per the standard).
	Paths []Feasibility
	// Treated marks scenarios addressed by a cybersecurity control;
	// treatment lowers the retained feasibility by the given factor
	// steps.
	Treatment string
	Reduction int // feasibility steps removed by the treatment
}

// FeasibilityRating returns the scenario's (post-treatment) rating.
func (t *ThreatScenario) FeasibilityRating() FeasibilityRating {
	best := VeryLowFeasibility
	for _, p := range t.Paths {
		if r := p.Rating(); r > best {
			best = r
		}
	}
	reduced := int(best) - t.Reduction
	if reduced < 0 {
		reduced = 0
	}
	return FeasibilityRating(reduced)
}

// RiskValue is the 1–5 scale of the standard's risk matrix.
type RiskValue int

// Risk combines impact and feasibility through the 21434 risk matrix.
func Risk(impact ImpactRating, feasibility FeasibilityRating) RiskValue {
	// Matrix rows: impact (negligible..severe); columns: feasibility
	// (very-low..high). Values follow the standard's example matrix.
	matrix := [4][4]RiskValue{
		{1, 1, 1, 1}, // negligible
		{1, 2, 2, 3}, // moderate
		{1, 2, 3, 4}, // major
		{2, 3, 4, 5}, // severe
	}
	return matrix[impact][feasibility]
}

// TreatmentDecision per risk value: 1 retain, 2–3 reduce or share,
// 4–5 reduce (or avoid the function entirely).
func TreatmentDecision(r RiskValue) string {
	switch {
	case r <= 1:
		return "retain"
	case r <= 3:
		return "reduce/share"
	default:
		return "reduce (mandatory)"
	}
}

// Analysis is a complete TARA worksheet.
type Analysis struct {
	assets    map[string]*Asset
	scenarios []*ThreatScenario
}

// NewAnalysis returns an empty worksheet.
func NewAnalysis() *Analysis {
	return &Analysis{assets: map[string]*Asset{}}
}

// AddAsset registers an asset.
func (a *Analysis) AddAsset(asset *Asset) error {
	if asset.ID == "" {
		return fmt.Errorf("tara: asset needs an ID")
	}
	if _, dup := a.assets[asset.ID]; dup {
		return fmt.Errorf("tara: duplicate asset %s", asset.ID)
	}
	a.assets[asset.ID] = asset
	return nil
}

// AddScenario registers a threat scenario against an existing asset.
func (a *Analysis) AddScenario(s *ThreatScenario) error {
	if s.ID == "" {
		return fmt.Errorf("tara: scenario needs an ID")
	}
	if _, ok := a.assets[s.Asset]; !ok {
		return fmt.Errorf("tara: scenario %s references unknown asset %s", s.ID, s.Asset)
	}
	if len(s.Paths) == 0 {
		return fmt.Errorf("tara: scenario %s has no attack paths", s.ID)
	}
	a.scenarios = append(a.scenarios, s)
	return nil
}

// Row is one line of the risk worksheet.
type Row struct {
	Scenario    string
	Asset       string
	Impact      ImpactRating
	Feasibility FeasibilityRating
	Risk        RiskValue
	Decision    string
	Treatment   string
}

// Worksheet computes the risk table, ordered by risk descending then ID.
func (a *Analysis) Worksheet() []Row {
	rows := make([]Row, 0, len(a.scenarios))
	for _, s := range a.scenarios {
		impact := s.Impact.Overall()
		feas := s.FeasibilityRating()
		r := Risk(impact, feas)
		rows = append(rows, Row{
			Scenario:    s.Name,
			Asset:       a.assets[s.Asset].Name,
			Impact:      impact,
			Feasibility: feas,
			Risk:        r,
			Decision:    TreatmentDecision(r),
			Treatment:   s.Treatment,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Risk != rows[j].Risk {
			return rows[i].Risk > rows[j].Risk
		}
		return rows[i].Scenario < rows[j].Scenario
	})
	return rows
}

// ResidualAboveThreshold lists scenarios whose (post-treatment) risk
// still demands reduction — the compliance gap list.
func (a *Analysis) ResidualAboveThreshold(threshold RiskValue) []Row {
	var out []Row
	for _, r := range a.Worksheet() {
		if r.Risk > threshold {
			out = append(out, r)
		}
	}
	return out
}

// Summary renders the worksheet compactly.
func (a *Analysis) Summary() string {
	var b strings.Builder
	for _, r := range a.Worksheet() {
		fmt.Fprintf(&b, "risk=%d %-9s feas=%-8s %-45s → %s\n",
			r.Risk, r.Impact, r.Feasibility, r.Scenario, r.Decision)
	}
	return b.String()
}
