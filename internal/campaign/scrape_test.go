package campaign

import (
	"math"
	"testing"
)

const sampleReport = `== Fig. 2 — UWB ranging modes under attack ==
mode  receiver       attack      accepted  dist-manipulated  mean-err-m
----  -------------  ----------  --------  ----------------  ----------
HRP   naive          none        40/40     0/40              -0.042
HRP   secure         ghost-peak  0/40      0/40              0.000
LRP   commitment     ED/LC       0/40      0/40              -

distance bounding (32 rounds): mafia-fraud guess acceptance theory 2.33e-10, pre-ask 1.00e-04
undefended posture: 21 cross-layer attack paths to safety impact, e.g.
  T-3rdparty → T-remote-entry → T-malware
synergy check: deploying {SECOC, MACsec, V2X auth, misbehaviour detection} without key management leaves 4 of them ineffective
context: classic CAN frame 118 wire bits
no numbers here: only words
`

func metricsByName(ms []Metric) map[string]float64 {
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out
}

func TestScrapeTableRows(t *testing.T) {
	t.Parallel()
	got := metricsByName(Scrape(sampleReport))
	cases := map[string]float64{
		"HRP/accepted":         1,      // 40/40
		"HRP/dist-manipulated": 0,      // 0/40
		"HRP/mean-err-m":       -0.042, // plain float
		"HRP/accepted#2":       0,      // second HRP row, deduplicated
		"LRP/accepted":         0,
	}
	for name, want := range cases {
		v, ok := got[name]
		if !ok {
			t.Errorf("metric %q not scraped; have %v", name, got)
			continue
		}
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
	// The "-" cell must not produce a metric.
	if _, ok := got["LRP/mean-err-m"]; ok {
		t.Error(`"-" cell scraped as a number`)
	}
}

func TestScrapeKeyValueLines(t *testing.T) {
	t.Parallel()
	got := metricsByName(Scrape(sampleReport))
	if v := got["distance bounding (32 rounds)"]; v != 2.33e-10 {
		t.Errorf("scientific-notation value = %v, want 2.33e-10", v)
	}
	if v := got["undefended posture"]; v != 21 {
		t.Errorf("undefended posture = %v, want 21", v)
	}
	// "V2X" and "{SECOC," must not parse; the first true number is 4.
	if v := got["synergy check"]; v != 4 {
		t.Errorf("synergy check = %v, want 4", v)
	}
	if v := got["context"]; v != 118 {
		t.Errorf("context = %v, want 118", v)
	}
	if _, ok := got["no numbers here"]; ok {
		t.Error("line without numbers produced a metric")
	}
}

func TestScrapeOrderStable(t *testing.T) {
	t.Parallel()
	a := Scrape(sampleReport)
	b := Scrape(sampleReport)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order unstable at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestParseNumber(t *testing.T) {
	t.Parallel()
	accept := map[string]float64{
		"40/40":     1,
		"0/40":      0,
		"3/4":       0.75,
		"166.400":   166.4,
		"2.33e-10":  2.33e-10,
		"(21)":      21,
		"1.00e-04,": 1e-4,
		"-0.042":    -0.042,
	}
	for tok, want := range accept {
		v, ok := parseNumber(tok)
		if !ok || math.Abs(v-want) > 1e-15 {
			t.Errorf("parseNumber(%q) = %v, %v; want %v, true", tok, v, ok, want)
		}
	}
	for _, tok := range []string{"-", "yes", "V2X", "10B-T1S", "a/b", "1/0", "", "e.g."} {
		if v, ok := parseNumber(tok); ok {
			t.Errorf("parseNumber(%q) accepted as %v", tok, v)
		}
	}
}
