package campaign

import (
	"regexp"
	"strconv"
	"strings"

	"autosec/internal/sim"
)

// Metric is one named numeric value extracted from an experiment run —
// either scraped from the report text or published directly as a typed
// sim.Metric. Rate cells of the form "a/b" are recorded as the fraction
// a/b, so attack-success and delivery rates aggregate naturally across
// seeds. The alias keeps the scraper fallback and the typed path
// structurally identical.
type Metric = sim.Metric

// Scrape extracts metrics from a report in the format the experiment
// harness emits: sim.Table blocks ("== title ==" then a header row, a
// dashed separator, and aligned rows until a blank line) plus free-form
// "key: value" lines. Table cells become "<row label>/<column>" metrics;
// key lines contribute the first number after the colon. Names repeated
// within one report get a "#2", "#3", ... suffix so metrics align
// one-to-one across seeds. The result order follows the report, making
// downstream aggregation deterministic.
func Scrape(report string) []Metric {
	var (
		metrics []Metric
		seen    = map[string]int{}
	)
	add := func(name string, v float64) {
		seen[name]++
		if n := seen[name]; n > 1 {
			name += "#" + strconv.Itoa(n)
		}
		metrics = append(metrics, Metric{Name: name, Value: v})
	}

	lines := strings.Split(report, "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if isTableTitle(line) {
			// Expect header + separator; otherwise treat as prose.
			if i+2 < len(lines) && isSeparator(lines[i+2]) {
				headers := splitColumns(lines[i+1])
				i += 3
				for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
					scrapeRow(lines[i], headers, add)
					i++
				}
				continue
			}
		}
		scrapeKeyValue(line, add)
	}
	return metrics
}

// isTableTitle reports whether line is a sim.Table title ("== t ==").
func isTableTitle(line string) bool {
	t := strings.TrimSpace(line)
	return strings.HasPrefix(t, "== ") && strings.HasSuffix(t, " ==") && len(t) > 6
}

// isSeparator reports whether line is a table's dashed header underline.
func isSeparator(line string) bool {
	t := strings.TrimSpace(line)
	if t == "" {
		return false
	}
	for _, r := range t {
		if r != '-' && r != ' ' {
			return false
		}
	}
	return strings.Contains(t, "-")
}

// columnSplit matches the ≥2-space gaps sim.Table renders between
// columns (cell text itself only ever contains single spaces).
var columnSplit = regexp.MustCompile(`\s{2,}`)

func splitColumns(line string) []string {
	return columnSplit.Split(strings.TrimSpace(line), -1)
}

// scrapeRow converts a table data row into metrics named
// "<row label>/<column header>".
func scrapeRow(line string, headers []string, add func(string, float64)) {
	cells := splitColumns(line)
	if len(cells) < 2 {
		return
	}
	label := cells[0]
	for j := 1; j < len(cells) && j < len(headers); j++ {
		if v, ok := parseNumber(cells[j]); ok {
			add(label+"/"+headers[j], v)
		}
	}
}

// scrapeKeyValue extracts the first number after the first colon of a
// prose line, named by the text before the colon.
func scrapeKeyValue(line string, add func(string, float64)) {
	idx := strings.Index(line, ":")
	if idx <= 0 {
		return
	}
	key := strings.TrimSpace(line[:idx])
	if key == "" {
		return
	}
	for _, tok := range strings.Fields(line[idx+1:]) {
		if v, ok := parseNumber(tok); ok {
			add(key, v)
			return
		}
	}
}

// parseNumber parses a numeric report token. It is the scraper's view
// of sim.ParseMetricNumber — the one shared definition of "numeric"
// that bound tables also use when publishing typed metrics, which is
// what keeps the scraped and typed streams cell-for-cell identical.
func parseNumber(tok string) (float64, bool) {
	return sim.ParseMetricNumber(tok)
}
