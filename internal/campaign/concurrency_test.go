package campaign_test

// These tests drive the campaign pool against the real experiment
// registry to prove the registry and the sim kernel are safe to run
// concurrently (run with -race), and that the aggregate output is
// independent of the worker count on real reports, not just stubs.

import (
	"testing"

	"autosec/internal/campaign"
	"autosec/internal/core"
)

// TestConcurrentRunExperimentAllIDs fans every registry experiment out
// over an oversubscribed pool at once. Any shared package-level state in
// internal/core or internal/sim would surface here under -race.
func TestConcurrentRunExperimentAllIDs(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full-registry campaign in -short mode")
	}
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	res, err := campaign.Run(campaign.Spec{
		IDs:   ids,
		Seeds: []int64{42},
		Jobs:  8,
		Run:   core.RunExperiment,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Cells {
		if res.Cells[i].Report == "" {
			t.Errorf("%s produced an empty report under concurrency", res.Cells[i].ID)
		}
	}
}

// TestCampaignJobsIndependenceRealExperiments checks the acceptance
// property end-to-end on a fast subset of real experiments: serial and
// parallel campaigns render byte-identical aggregate tables, and the
// determinism self-check stays quiet.
func TestCampaignJobsIndependenceRealExperiments(t *testing.T) {
	t.Parallel()
	ids := []string{"fig4", "fig6", "exp-ids", "exp-vehicle", "exp-v2x", "ablate-fv"}
	render := func(jobs int) string {
		res, err := campaign.Run(campaign.Spec{
			IDs:     ids,
			Seeds:   campaign.Seeds(42, 3),
			Jobs:    jobs,
			Recheck: 0.5,
			Run:     core.RunExperiment,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rechecked() == 0 {
			t.Fatal("self-check rechecked no cells")
		}
		return res.RenderSummary()
	}
	if serial, parallel := render(1), render(8); serial != parallel {
		t.Errorf("aggregate tables depend on worker count:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}
