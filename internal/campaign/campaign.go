// Package campaign runs multi-seed experiment campaigns: it fans an
// (experiment, seed) grid out over a bounded worker pool, collects the
// per-run reports and timings, aggregates rate-style metrics across
// seeds, and — crucially — double-executes a configurable fraction of
// cells with the same seed, failing loudly on any byte-level report
// divergence. That turns the sim kernel's "same seed ⇒ identical
// output" contract from a comment into a continuously exercised
// invariant.
//
// The package is deliberately generic: it depends only on a RunFunc
// (id, seed) → report, so the experiment registry in internal/core, a
// test stub, or any future workload can be campaigned identically. All
// rendered output is a pure function of the collected reports, so the
// aggregate tables are byte-identical regardless of the worker count.
//
// Drives `avsec all` and `avsec campaign` over every registry
// experiment; the typed-vs-scraped cross-check test pins both
// aggregation paths to each other.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"autosec/internal/sim"
)

// RunFunc produces the report of one experiment at one seed. It must be
// safe for concurrent use: the pool calls it from many goroutines.
type RunFunc func(id string, seed int64) (string, error)

// TypedRunFunc produces both the report and the run's typed metrics.
// Campaigns prefer it over RunFunc when set: aggregation then consumes
// structured sim.Metric values instead of scraping the report text.
// It must be safe for concurrent use.
type TypedRunFunc func(id string, seed int64) (string, []sim.Metric, error)

// defaultRecheckSeed drives the deterministic selection of which cells
// get the double-execution self-check. Fixed so that a given grid always
// rechecks the same cells, independent of worker count or wall clock.
const defaultRecheckSeed int64 = 0x5EEDC4EC

// Spec describes a campaign.
type Spec struct {
	// IDs are the experiment identifiers, in presentation order.
	IDs []string
	// Seeds are the simulation seeds each experiment runs at.
	Seeds []int64
	// Jobs bounds the worker pool; <= 0 means GOMAXPROCS.
	Jobs int
	// Recheck is the fraction of grid cells in [0, 1] that are executed
	// twice with the same seed for the determinism self-check. When
	// positive, at least one cell is always rechecked.
	Recheck float64
	// RecheckSeed seeds the cell-selection RNG; 0 uses a fixed default.
	RecheckSeed int64
	// Run executes one cell. Required unless RunTyped is set.
	Run RunFunc
	// RunTyped, when non-nil, is used instead of Run and additionally
	// yields the run's typed metrics, which aggregation prefers over
	// report scraping (the scraper remains the fallback for cells
	// without typed metrics).
	RunTyped TypedRunFunc
	// OnCell, when non-nil, is called from Run's goroutine for every
	// completed cell in grid order (experiment-major, then seed), as soon
	// as the cell and all its predecessors have finished. This gives
	// callers streaming, ordered output from an out-of-order pool.
	OnCell func(CellResult)
	// CostHint, when non-nil, returns a relative cost rank for an
	// experiment id (higher = slower). The pool dispatches
	// highest-cost-first so a long cell starts early instead of
	// straggling alone at the end of the campaign. Purely a scheduling
	// hint: results, streaming order, and rendered output are identical
	// for any hint (or none).
	CostHint func(id string) int
	// Context, when non-nil, cancels the campaign: cells that have not
	// started when it is done are skipped with the context's error
	// instead of executed, so the pool drains promptly (bounded by the
	// cells already in flight — a running cell is pure computation and
	// finishes). Run still returns the full grid; skipped cells carry
	// their error like any other failed cell.
	Context context.Context
	// Pool, when non-nil, is the global worker budget the campaign
	// shares with intra-cell replicate fan-out: each cell holds one
	// slot for its whole execution, so nested sim.Replicates calls
	// inside the cell can only borrow slots that are currently idle.
	// Size it to Jobs (and route the same pool into the RunFunc, e.g.
	// via core.RunOptions.Pool) to keep the two-level cells ×
	// replicates parallelism inside one -jobs budget; once the grid
	// drains to a last straggler cell, the idle workers' slots are
	// donated to that cell's replicate loops. Purely a scheduling
	// device: rendered output is identical with or without it.
	Pool *sim.WorkerPool
}

// CellResult is the outcome of one (experiment, seed) run.
type CellResult struct {
	ID     string
	Seed   int64
	Report string
	// Metrics holds the run's typed metrics when the campaign ran with
	// a TypedRunFunc; nil means aggregation falls back to scraping.
	Metrics []sim.Metric
	Err     error
	// Elapsed is the wall time of the primary execution (reporting only;
	// it never feeds rendered tables, which must stay deterministic).
	Elapsed time.Duration
	// Rechecked reports whether the determinism self-check re-ran this
	// cell; Diverged is set when the two reports differ, and
	// RecheckReport then holds the second, conflicting report.
	// MetricsDiverged is set when the reports agree but the typed
	// metric streams do not — a contract violation the scraper path
	// could never observe.
	Rechecked       bool
	Diverged        bool
	MetricsDiverged bool
	RecheckReport   string
}

// Result is a completed campaign.
type Result struct {
	IDs   []string
	Seeds []int64
	// Cells holds every outcome in grid order: Cells[i*len(Seeds)+j] is
	// experiment IDs[i] at seed Seeds[j].
	Cells []CellResult
	// Elapsed is the campaign wall time (reporting only).
	Elapsed time.Duration
}

// DivergenceError reports a violated determinism contract: the same
// (experiment, seed) cell produced two different reports.
type DivergenceError struct {
	ID            string
	Seed          int64
	First, Second string
}

func (e *DivergenceError) Error() string {
	off := 0
	for off < len(e.First) && off < len(e.Second) && e.First[off] == e.Second[off] {
		off++
	}
	return fmt.Sprintf("campaign: determinism violation: %s seed %d produced diverging reports (first difference at byte %d: %q vs %q)",
		e.ID, e.Seed, off, excerpt(e.First, off), excerpt(e.Second, off))
}

// excerpt returns a short window of s around offset off for diagnostics.
func excerpt(s string, off int) string {
	end := off + 24
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

// Seeds returns n consecutive seeds starting at base, the conventional
// seed schedule for `avsec campaign`.
func Seeds(base int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = base + int64(i)
	}
	return s
}

// SelectRechecks returns the deterministic recheck mask for a grid of n
// cells in grid order: mask[i] is true when cell i is double-executed
// by the determinism self-check. seed 0 uses the fixed default, so the
// same (grid size, fraction) always selects the same cells — the
// property that lets a distributed coordinator (internal/fleet)
// reproduce exactly the cells a serial campaign.Run would recheck and
// keep its rendered header byte-identical. When fraction is positive,
// at least one cell is always selected.
func SelectRechecks(n int, fraction float64, seed int64) []bool {
	mask := make([]bool, n)
	if fraction <= 0 || n == 0 {
		return mask
	}
	if seed == 0 {
		seed = defaultRecheckSeed
	}
	rng := sim.NewRNG(seed)
	any := false
	for i := range mask {
		if rng.Bool(fraction) {
			mask[i] = true
			any = true
		}
	}
	if !any {
		mask[0] = true
	}
	return mask
}

// Run executes the campaign grid. It always returns the full Result
// (every cell that ran, in grid order); the error joins every cell
// failure and every determinism divergence, so a non-nil error means
// the campaign must not be trusted.
func Run(spec Spec) (*Result, error) {
	if spec.Run == nil && spec.RunTyped == nil {
		return nil, errors.New("campaign: Spec.Run or Spec.RunTyped is required")
	}
	if len(spec.IDs) == 0 {
		return nil, errors.New("campaign: no experiment ids")
	}
	if len(spec.Seeds) == 0 {
		return nil, errors.New("campaign: no seeds")
	}
	if spec.Recheck < 0 || spec.Recheck > 1 {
		return nil, fmt.Errorf("campaign: recheck fraction %v outside [0, 1]", spec.Recheck)
	}

	// Build the grid and pre-select recheck cells deterministically, in
	// grid order, before any work is dispatched: the selection must not
	// depend on scheduling.
	grid := make([]CellResult, 0, len(spec.IDs)*len(spec.Seeds))
	for _, id := range spec.IDs {
		for _, seed := range spec.Seeds {
			grid = append(grid, CellResult{ID: id, Seed: seed})
		}
	}
	for i, re := range SelectRechecks(len(grid), spec.Recheck, spec.RecheckSeed) {
		grid[i].Rechecked = re
	}

	jobs := spec.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(grid) {
		jobs = len(grid)
	}

	// Dispatch order: grid order, unless a cost hint says some
	// experiments run long — then longest-known-first, so the pool's
	// tail is short cells instead of one straggler. Stable sort keeps
	// grid order within equal cost; the collector below re-imposes grid
	// order on all observable output either way.
	order := make([]int, len(grid))
	for i := range order {
		order[i] = i
	}
	if spec.CostHint != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return spec.CostHint(grid[order[a]].ID) > spec.CostHint(grid[order[b]].ID)
		})
	}

	ctx := spec.Context
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	tasks := make(chan int, len(grid))
	for _, i := range order {
		tasks <- i
	}
	close(tasks)
	done := make(chan int, len(grid))
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				// A done context skips every cell that has not started:
				// the queue drains without executing, so cancellation
				// latency is bounded by the cells already in flight.
				if err := ctx.Err(); err != nil {
					grid[i].Err = fmt.Errorf("skipped: %w", err)
					done <- i
					continue
				}
				// Hold one budget slot per cell so replicate fan-out
				// inside the cell borrows only idle capacity.
				spec.Pool.Acquire()
				if err := ctx.Err(); err != nil {
					grid[i].Err = fmt.Errorf("skipped: %w", err)
				} else {
					runCell(&spec, &grid[i])
				}
				spec.Pool.Release()
				done <- i
			}
		}()
	}

	// Collect in the caller's goroutine, flushing the completed prefix so
	// OnCell observes grid order regardless of completion order.
	completed := make([]bool, len(grid))
	next := 0
	for range grid {
		completed[<-done] = true
		for next < len(grid) && completed[next] {
			if spec.OnCell != nil {
				spec.OnCell(grid[next])
			}
			next++
		}
	}
	wg.Wait()

	res := &Result{
		IDs:     append([]string(nil), spec.IDs...),
		Seeds:   append([]int64(nil), spec.Seeds...),
		Cells:   grid,
		Elapsed: time.Since(start),
	}
	var errs []error
	for i := range grid {
		c := &grid[i]
		if c.Err != nil {
			errs = append(errs, fmt.Errorf("campaign: %s seed %d: %w", c.ID, c.Seed, c.Err))
		}
		if c.Diverged {
			errs = append(errs, &DivergenceError{ID: c.ID, Seed: c.Seed, First: c.Report, Second: c.RecheckReport})
		}
		if c.MetricsDiverged {
			errs = append(errs, fmt.Errorf("campaign: determinism violation: %s seed %d produced identical reports but diverging typed metrics", c.ID, c.Seed))
		}
	}
	return res, errors.Join(errs...)
}

// runCell executes one cell, including its optional determinism
// recheck. With a typed runner the recheck covers the metric stream as
// well as the report bytes.
func runCell(spec *Spec, c *CellResult) {
	run := func() (string, []sim.Metric, error) {
		if spec.RunTyped != nil {
			return spec.RunTyped(c.ID, c.Seed)
		}
		report, err := spec.Run(c.ID, c.Seed)
		return report, nil, err
	}
	t0 := time.Now()
	c.Report, c.Metrics, c.Err = run()
	c.Elapsed = time.Since(t0)
	if c.Err != nil || !c.Rechecked {
		return
	}
	second, secondMetrics, err := run()
	if err != nil {
		c.Err = fmt.Errorf("determinism recheck: %w", err)
		return
	}
	if second != c.Report {
		c.Diverged = true
		c.RecheckReport = second
	}
	if !sim.MetricsEqual(c.Metrics, secondMetrics) {
		c.MetricsDiverged = true
	}
}

// Rechecked counts the cells the determinism self-check double-executed.
func (r *Result) Rechecked() int {
	n := 0
	for i := range r.Cells {
		if r.Cells[i].Rechecked {
			n++
		}
	}
	return n
}

// Divergences counts the cells whose recheck produced a different
// report or a different typed metric stream.
func (r *Result) Divergences() int {
	n := 0
	for i := range r.Cells {
		if r.Cells[i].Diverged || r.Cells[i].MetricsDiverged {
			n++
		}
	}
	return n
}

// Cell returns the result for experiment i, seed j in grid order.
func (r *Result) Cell(i, j int) *CellResult {
	return &r.Cells[i*len(r.Seeds)+j]
}
