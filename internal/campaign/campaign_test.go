package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeRun is a deterministic stand-in experiment: its report carries a
// table plus key:value lines derived from (id, seed).
func fakeRun(id string, seed int64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s report ==\n", id)
	fmt.Fprintf(&b, "scenario  delivered  p50-lat-µs\n")
	fmt.Fprintf(&b, "--------  ---------  ----------\n")
	fmt.Fprintf(&b, "%s  %d/10  %d.500\n", id, seed%11, seed)
	fmt.Fprintf(&b, "\nattack paths: %d remain\n", seed*2)
	return b.String(), nil
}

func TestSeedsHelper(t *testing.T) {
	t.Parallel()
	s := Seeds(42, 3)
	if len(s) != 3 || s[0] != 42 || s[1] != 43 || s[2] != 44 {
		t.Fatalf("Seeds(42, 3) = %v", s)
	}
	if got := Seeds(7, 0); len(got) != 0 {
		t.Fatalf("Seeds(7, 0) = %v", got)
	}
}

func TestSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []Spec{
		{},                                 // no Run
		{Run: fakeRun},                     // no ids
		{Run: fakeRun, IDs: []string{"a"}}, // no seeds
		{Run: fakeRun, IDs: []string{"a"}, Seeds: Seeds(1, 1), Recheck: 1.5}, // bad fraction
	}
	for i, spec := range cases {
		if _, err := Run(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestGridOrderAndCellLookup(t *testing.T) {
	t.Parallel()
	res, err := Run(Spec{
		IDs:   []string{"alpha", "beta"},
		Seeds: []int64{1, 2, 3},
		Jobs:  4,
		Run:   fakeRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	for i, id := range res.IDs {
		for j, seed := range res.Seeds {
			c := res.Cell(i, j)
			if c.ID != id || c.Seed != seed {
				t.Errorf("Cell(%d,%d) = %s/%d, want %s/%d", i, j, c.ID, c.Seed, id, seed)
			}
			if c.Report == "" || c.Err != nil {
				t.Errorf("cell %s/%d incomplete", id, seed)
			}
		}
	}
}

// TestJobsIndependence is the core determinism property: a pool that
// completes cells in scrambled order must render byte-identical output
// to a serial run, and emit OnCell callbacks in grid order.
func TestJobsIndependence(t *testing.T) {
	t.Parallel()
	ids := []string{"a", "b", "c", "d"}
	seeds := Seeds(10, 5)
	// Delay inversely related to grid position so late cells finish first.
	slowRun := func(id string, seed int64) (string, error) {
		time.Sleep(time.Duration(20-seed) * time.Millisecond)
		return fakeRun(id, seed)
	}
	render := func(jobs int) (string, []string) {
		var order []string
		res, err := Run(Spec{
			IDs: ids, Seeds: seeds, Jobs: jobs, Recheck: 0.3, Run: slowRun,
			OnCell: func(c CellResult) { order = append(order, fmt.Sprintf("%s/%d", c.ID, c.Seed)) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RenderSummary(), order
	}
	serialOut, serialOrder := render(1)
	parOut, parOrder := render(8)
	if serialOut != parOut {
		t.Errorf("summary differs between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
	}
	if len(parOrder) != len(ids)*len(seeds) {
		t.Fatalf("OnCell fired %d times, want %d", len(parOrder), len(ids)*len(seeds))
	}
	for i := range serialOrder {
		if serialOrder[i] != parOrder[i] {
			t.Fatalf("OnCell order diverged at %d: %s vs %s", i, serialOrder[i], parOrder[i])
		}
	}
	want := fmt.Sprintf("%s/%d", ids[0], seeds[0])
	if parOrder[0] != want {
		t.Errorf("first OnCell = %s, want %s", parOrder[0], want)
	}
}

func TestRecheckSelectionDeterministicAndBounded(t *testing.T) {
	t.Parallel()
	spec := Spec{IDs: []string{"a", "b", "c"}, Seeds: Seeds(1, 20), Recheck: 0.25, Run: fakeRun}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Jobs = 7
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rechecked() == 0 {
		t.Error("positive recheck fraction selected no cells")
	}
	if a.Rechecked() == len(a.Cells) {
		t.Errorf("fraction 0.25 rechecked all %d cells", len(a.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].Rechecked != b.Cells[i].Rechecked {
			t.Fatalf("recheck selection differs at cell %d across worker counts", i)
		}
	}
	// Full recheck double-executes every cell.
	spec.Recheck = 1
	var calls atomic.Int64
	spec.Run = func(id string, seed int64) (string, error) {
		calls.Add(1)
		return fakeRun(id, seed)
	}
	c, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rechecked() != len(c.Cells) {
		t.Errorf("recheck 1.0: %d/%d cells rechecked", c.Rechecked(), len(c.Cells))
	}
	if got := calls.Load(); got != int64(2*len(c.Cells)) {
		t.Errorf("recheck 1.0 made %d calls, want %d", got, 2*len(c.Cells))
	}
}

func TestDivergenceDetection(t *testing.T) {
	t.Parallel()
	// A runner that violates the determinism contract for one cell: the
	// second execution of ("bad", 2) yields a different report.
	var mu sync.Mutex
	runs := map[string]int{}
	badRun := func(id string, seed int64) (string, error) {
		mu.Lock()
		key := fmt.Sprintf("%s/%d", id, seed)
		runs[key]++
		n := runs[key]
		mu.Unlock()
		if id == "bad" && seed == 2 && n > 1 {
			return "nondeterministic output", nil
		}
		return fakeRun(id, seed)
	}
	res, err := Run(Spec{
		IDs:     []string{"ok", "bad"},
		Seeds:   []int64{1, 2},
		Recheck: 1, // recheck everything so the bad cell is caught
		Run:     badRun,
	})
	if err == nil {
		t.Fatal("divergence not reported as error")
	}
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("error is not a DivergenceError: %v", err)
	}
	if div.ID != "bad" || div.Seed != 2 {
		t.Errorf("divergence attributed to %s/%d, want bad/2", div.ID, div.Seed)
	}
	if !strings.Contains(err.Error(), "determinism violation") {
		t.Errorf("error message lacks diagnosis: %v", err)
	}
	if res.Divergences() != 1 {
		t.Errorf("Divergences() = %d, want 1", res.Divergences())
	}
}

func TestCellErrorsJoined(t *testing.T) {
	t.Parallel()
	failSeed3 := func(id string, seed int64) (string, error) {
		if seed == 3 {
			return "", fmt.Errorf("boom at %s", id)
		}
		return fakeRun(id, seed)
	}
	res, err := Run(Spec{IDs: []string{"x", "y"}, Seeds: []int64{1, 3}, Run: failSeed3})
	if err == nil {
		t.Fatal("cell failures not surfaced")
	}
	for _, id := range []string{"x", "y"} {
		if !strings.Contains(err.Error(), "boom at "+id) {
			t.Errorf("joined error missing failure of %s: %v", id, err)
		}
	}
	// Healthy cells still delivered their reports.
	if res.Cell(0, 0).Err != nil || res.Cell(0, 0).Report == "" {
		t.Error("successful cell lost its report")
	}
	// Failed cells are excluded from aggregation.
	for _, es := range res.Summaries() {
		if es.Runs != 1 {
			t.Errorf("%s: Runs = %d, want 1", es.ID, es.Runs)
		}
	}
}

func TestRenderSummaryAggregates(t *testing.T) {
	t.Parallel()
	res, err := Run(Spec{IDs: []string{"exp"}, Seeds: []int64{1, 2, 3}, Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	out := res.RenderSummary()
	if !strings.Contains(out, "campaign: 1 experiments × 3 seeds = 3 cells") {
		t.Errorf("header missing:\n%s", out)
	}
	// "attack paths: N remain" has N = 2, 4, 6 across the seeds.
	for _, want := range []string{"attack paths", "2", "4", "6"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	sums := res.Summaries()
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	var found bool
	for _, m := range sums[0].Metrics {
		if m.Name == "attack paths" {
			found = true
			if m.Agg.N() != 3 || m.Agg.Min() != 2 || m.Agg.Max() != 6 || m.Agg.Mean() != 4 {
				t.Errorf("attack paths agg wrong: n=%d min=%v mean=%v max=%v",
					m.Agg.N(), m.Agg.Min(), m.Agg.Mean(), m.Agg.Max())
			}
		}
	}
	if !found {
		t.Error("attack paths metric not aggregated")
	}
}

func TestElapsedRecordedButNotRendered(t *testing.T) {
	t.Parallel()
	res, err := Run(Spec{IDs: []string{"exp"}, Seeds: []int64{1}, Run: func(id string, seed int64) (string, error) {
		time.Sleep(2 * time.Millisecond)
		return fakeRun(id, seed)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Elapsed <= 0 || res.Elapsed <= 0 {
		t.Error("timings not collected")
	}
	if strings.Contains(res.RenderSummary(), "ms") {
		t.Error("wall-clock leaked into the deterministic summary")
	}
}

// TestCostHintDispatchesLongestFirst pins the scheduling contract: with
// a cost hint and one worker, high-cost experiments execute first, while
// every observable output — OnCell order and the rendered summary —
// stays in grid order, byte-identical to an unhinted run.
func TestCostHintDispatchesLongestFirst(t *testing.T) {
	t.Parallel()
	ids := []string{"cheap", "mid", "slow"}
	seeds := Seeds(1, 2)
	cost := map[string]int{"cheap": 1, "mid": 10, "slow": 100}

	var mu sync.Mutex
	var execOrder []string
	recordingRun := func(id string, seed int64) (string, error) {
		mu.Lock()
		execOrder = append(execOrder, fmt.Sprintf("%s/%d", id, seed))
		mu.Unlock()
		return fakeRun(id, seed)
	}
	var cellOrder []string
	res, err := Run(Spec{
		IDs: ids, Seeds: seeds, Jobs: 1, Run: recordingRun,
		CostHint: func(id string) int { return cost[id] },
		OnCell:   func(c CellResult) { cellOrder = append(cellOrder, fmt.Sprintf("%s/%d", c.ID, c.Seed)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantExec := []string{"slow/1", "slow/2", "mid/1", "mid/2", "cheap/1", "cheap/2"}
	for i := range wantExec {
		if execOrder[i] != wantExec[i] {
			t.Fatalf("dispatch order = %v, want %v", execOrder, wantExec)
		}
	}
	wantCells := []string{"cheap/1", "cheap/2", "mid/1", "mid/2", "slow/1", "slow/2"}
	for i := range wantCells {
		if cellOrder[i] != wantCells[i] {
			t.Fatalf("OnCell order = %v, want grid order %v", cellOrder, wantCells)
		}
	}
	unhinted, err := Run(Spec{IDs: ids, Seeds: seeds, Jobs: 1, Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if res.RenderSummary() != unhinted.RenderSummary() {
		t.Error("cost hint changed the rendered summary")
	}
}

func TestSlowestCellsOrderAndTies(t *testing.T) {
	t.Parallel()
	res := &Result{
		IDs: []string{"a", "b"}, Seeds: []int64{1, 2},
		Cells: []CellResult{
			{ID: "a", Seed: 1, Elapsed: 5 * time.Millisecond},
			{ID: "a", Seed: 2, Elapsed: 30 * time.Millisecond},
			{ID: "b", Seed: 1, Elapsed: 5 * time.Millisecond},
			{ID: "b", Seed: 2, Elapsed: 90 * time.Millisecond},
		},
		Elapsed: 130 * time.Millisecond,
	}
	top := res.SlowestCells(3)
	if len(top) != 3 || top[0].ID != "b" || top[0].Seed != 2 || top[1].ID != "a" || top[1].Seed != 2 {
		t.Fatalf("SlowestCells(3) = %v/%v, %v/%v, %v/%v",
			top[0].ID, top[0].Seed, top[1].ID, top[1].Seed, top[2].ID, top[2].Seed)
	}
	// Equal-time cells keep grid order: a/1 before b/1.
	if top[2].ID != "a" || top[2].Seed != 1 {
		t.Errorf("tie broken out of grid order: got %s/%d", top[2].ID, top[2].Seed)
	}
	if got := res.SlowestCells(99); len(got) != 4 {
		t.Errorf("SlowestCells over-request returned %d cells", len(got))
	}
	out := res.RenderTimings(2)
	if !strings.Contains(out, "b seed 2") || !strings.Contains(out, "a seed 2") {
		t.Errorf("RenderTimings missing slowest cells: %q", out)
	}
	if strings.Contains(out, "a seed 1") {
		t.Errorf("RenderTimings(2) rendered more than two cells: %q", out)
	}
}

// TestWriteJSONTimingsOptIn: the default JSON document must stay free
// of wall-clock data (it is diffed across worker counts); the timing
// section appears only through the explicit opt-in writer.
func TestWriteJSONTimingsOptIn(t *testing.T) {
	t.Parallel()
	res, err := Run(Spec{IDs: []string{"x", "y"}, Seeds: Seeds(1, 3), Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	var plain, timed strings.Builder
	if err := res.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSONWithTimings(&timed); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "timings") {
		t.Error("default JSON document contains wall-clock timings")
	}
	if n := strings.Count(timed.String(), "elapsed_ms"); n != 6 {
		t.Errorf("timed JSON has %d elapsed_ms entries, want 6", n)
	}
}
