package campaign_test

import (
	"math"
	"testing"

	"autosec/internal/campaign"
	"autosec/internal/core"
)

// valuesClose compares a typed metric value against its scraped twin.
// Table cells match exactly by construction (both sides parse the same
// rendered text through sim.ParseMetricNumber); prose mirrors publish
// the full-precision value while the report renders a formatted one
// (%.2e and friends), so a small relative tolerance is allowed.
func valuesClose(typed, scraped float64) bool {
	if typed == scraped {
		return true
	}
	diff := math.Abs(typed - scraped)
	if diff <= 1e-9 {
		return true
	}
	scale := math.Max(math.Abs(typed), math.Abs(scraped))
	return diff <= 5e-3*scale
}

// TestTypedMetricsMatchScraperAllExperiments is the cross-check behind
// the typed-metrics migration: for every registry experiment, the typed
// sim.Metric stream published during the run must agree with what the
// legacy scraper extracts from the same run's report — same names, same
// order, same values. A mismatch means an experiment publishes numbers
// its report does not show (or vice versa), which would silently change
// campaign aggregates depending on which path ran.
func TestTypedMetricsMatchScraperAllExperiments(t *testing.T) {
	for _, e := range core.Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := core.RunExperimentResult(e.ID, 42, core.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			scraped := campaign.Scrape(res.Report)
			typed := res.Metrics
			n := len(typed)
			if len(scraped) < n {
				n = len(scraped)
			}
			for i := 0; i < n; i++ {
				if typed[i].Name != scraped[i].Name {
					t.Fatalf("metric %d: typed name %q, scraped name %q", i, typed[i].Name, scraped[i].Name)
				}
				if !valuesClose(typed[i].Value, scraped[i].Value) {
					t.Errorf("metric %d (%s): typed %v, scraped %v", i, typed[i].Name, typed[i].Value, scraped[i].Value)
				}
			}
			if len(typed) != len(scraped) {
				t.Fatalf("typed stream has %d metrics, scraper found %d\ntyped tail: %v\nscraped tail: %v",
					len(typed), len(scraped), tailOf(typed, n), tailOf(scraped, n))
			}
		})
	}
}

func tailOf(m []campaign.Metric, from int) []campaign.Metric {
	if from >= len(m) {
		return nil
	}
	return m[from:]
}

// TestCampaignTypedAggregatesMatchScraped runs the same grid twice —
// once through the typed runner, once through the legacy report-only
// runner — and asserts the aggregated summaries agree. This is the
// end-to-end guarantee that switching campaign aggregation to typed
// metrics does not move any reported number.
func TestCampaignTypedAggregatesMatchScraped(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry campaign cross-check is not short")
	}
	ids := make([]string, 0, len(core.Experiments()))
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	seeds := []int64{42, 43}

	typedRes, err := campaign.Run(campaign.Spec{
		IDs: ids, Seeds: seeds, Recheck: 0,
		RunTyped: func(id string, seed int64) (string, []campaign.Metric, error) {
			r, err := core.RunExperimentResult(id, seed, core.RunOptions{})
			if err != nil {
				return "", nil, err
			}
			return r.Report, r.Metrics, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	scrapedRes, err := campaign.Run(campaign.Spec{
		IDs: ids, Seeds: seeds, Recheck: 0,
		Run: core.RunExperiment,
	})
	if err != nil {
		t.Fatal(err)
	}

	typed := typedRes.Summaries()
	scraped := scrapedRes.Summaries()
	if len(typed) != len(scraped) {
		t.Fatalf("summary count: typed %d, scraped %d", len(typed), len(scraped))
	}
	for i := range typed {
		ts, ss := typed[i], scraped[i]
		if ts.ID != ss.ID || ts.Runs != ss.Runs {
			t.Fatalf("summary %d: typed %s/%d runs, scraped %s/%d runs", i, ts.ID, ts.Runs, ss.ID, ss.Runs)
		}
		if len(ts.Metrics) != len(ss.Metrics) {
			t.Fatalf("%s: typed aggregates %d metrics, scraped %d", ts.ID, len(ts.Metrics), len(ss.Metrics))
		}
		for j := range ts.Metrics {
			tm, sm := ts.Metrics[j], ss.Metrics[j]
			if tm.Name != sm.Name {
				t.Fatalf("%s metric %d: typed %q, scraped %q", ts.ID, j, tm.Name, sm.Name)
			}
			if tm.Agg.N() != sm.Agg.N() ||
				!valuesClose(tm.Agg.Min(), sm.Agg.Min()) ||
				!valuesClose(tm.Agg.Mean(), sm.Agg.Mean()) ||
				!valuesClose(tm.Agg.Max(), sm.Agg.Max()) {
				t.Errorf("%s %s: typed agg (n=%d min=%v mean=%v max=%v) vs scraped (n=%d min=%v mean=%v max=%v)",
					ts.ID, tm.Name,
					tm.Agg.N(), tm.Agg.Min(), tm.Agg.Mean(), tm.Agg.Max(),
					sm.Agg.N(), sm.Agg.Min(), sm.Agg.Mean(), sm.Agg.Max())
			}
		}
	}
}
