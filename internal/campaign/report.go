package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"autosec/internal/sim"
)

// MetricSummary is one metric aggregated across a campaign's seeds.
type MetricSummary struct {
	Name string
	Agg  sim.Agg
}

// ExperimentSummary aggregates every scraped metric of one experiment
// across all seeds it ran at.
type ExperimentSummary struct {
	ID      string
	Runs    int // successful cells that contributed metrics
	Metrics []MetricSummary
}

// Summaries merges each experiment's metrics across seeds. Cells run
// with a typed runner contribute their structured sim.Metric values
// directly; cells without typed metrics fall back to scraping the
// report text. Metric order follows first appearance in seed order, so
// the output is a pure function of the collected cells — independent
// of how many workers produced them.
func (r *Result) Summaries() []ExperimentSummary {
	out := make([]ExperimentSummary, 0, len(r.IDs))
	for i, id := range r.IDs {
		es := ExperimentSummary{ID: id}
		index := map[string]int{}
		for j := range r.Seeds {
			c := r.Cell(i, j)
			if c.Err != nil {
				continue
			}
			es.Runs++
			metrics := c.Metrics
			if metrics == nil {
				metrics = Scrape(c.Report)
			}
			for _, m := range metrics {
				k, ok := index[m.Name]
				if !ok {
					k = len(es.Metrics)
					index[m.Name] = k
					es.Metrics = append(es.Metrics, MetricSummary{Name: m.Name})
				}
				es.Metrics[k].Agg.Add(m.Value)
			}
		}
		out = append(out, es)
	}
	return out
}

// RenderSummary renders the campaign's aggregate tables: a one-line
// header with grid and self-check totals, then one min/mean/max/spread
// table per experiment. The output contains no wall-clock data and is
// byte-identical for any worker count.
func (r *Result) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d experiments × %d seeds = %d cells, %d rechecked, %d divergences\n",
		len(r.IDs), len(r.Seeds), len(r.Cells), r.Rechecked(), r.Divergences())
	for _, es := range r.Summaries() {
		b.WriteByte('\n')
		tb := sim.NewTable(fmt.Sprintf("campaign — %s (%d/%d runs)", es.ID, es.Runs, len(r.Seeds)),
			"metric", "n", "min", "mean", "max", "spread")
		for _, m := range es.Metrics {
			tb.AddRow(m.Name, m.Agg.N(),
				sim.FormatG(m.Agg.Min()), sim.FormatG(m.Agg.Mean()),
				sim.FormatG(m.Agg.Max()), sim.FormatG(m.Agg.Spread()))
		}
		b.WriteString(tb.String())
	}
	return b.String()
}

// jsonSummary mirrors ExperimentSummary with flattened aggregates for
// machine consumption.
type jsonSummary struct {
	ID      string       `json:"id"`
	Runs    int          `json:"runs"`
	Metrics []jsonMetric `json:"metrics"`
}

type jsonMetric struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Spread float64 `json:"spread"`
}

// WriteJSON writes the campaign's aggregate results as one indented
// JSON document: the grid shape, the self-check totals, and the
// per-experiment metric aggregates. Like RenderSummary, the output
// contains no wall-clock data and is byte-identical for any worker
// count.
func (r *Result) WriteJSON(w io.Writer) error {
	doc := struct {
		Experiments []string      `json:"experiments"`
		Seeds       []int64       `json:"seeds"`
		Cells       int           `json:"cells"`
		Rechecked   int           `json:"rechecked"`
		Divergences int           `json:"divergences"`
		Summaries   []jsonSummary `json:"summaries"`
	}{
		Experiments: r.IDs,
		Seeds:       r.Seeds,
		Cells:       len(r.Cells),
		Rechecked:   r.Rechecked(),
		Divergences: r.Divergences(),
	}
	for _, es := range r.Summaries() {
		js := jsonSummary{ID: es.ID, Runs: es.Runs, Metrics: []jsonMetric{}}
		for _, m := range es.Metrics {
			js.Metrics = append(js.Metrics, jsonMetric{
				Name: m.Name, N: m.Agg.N(),
				Min: m.Agg.Min(), Mean: m.Agg.Mean(),
				Max: m.Agg.Max(), Spread: m.Agg.Spread(),
			})
		}
		doc.Summaries = append(doc.Summaries, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
