package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"autosec/internal/sim"
)

// MetricSummary is one metric aggregated across a campaign's seeds.
type MetricSummary struct {
	Name string
	Agg  sim.Agg
}

// ExperimentSummary aggregates every scraped metric of one experiment
// across all seeds it ran at.
type ExperimentSummary struct {
	ID      string
	Runs    int // successful cells that contributed metrics
	Metrics []MetricSummary
}

// Summaries merges each experiment's metrics across seeds. Cells run
// with a typed runner contribute their structured sim.Metric values
// directly; cells without typed metrics fall back to scraping the
// report text. Metric order follows first appearance in seed order, so
// the output is a pure function of the collected cells — independent
// of how many workers produced them.
func (r *Result) Summaries() []ExperimentSummary {
	out := make([]ExperimentSummary, 0, len(r.IDs))
	for i, id := range r.IDs {
		es := ExperimentSummary{ID: id}
		index := map[string]int{}
		for j := range r.Seeds {
			c := r.Cell(i, j)
			if c.Err != nil {
				continue
			}
			es.Runs++
			metrics := c.Metrics
			if metrics == nil {
				metrics = Scrape(c.Report)
			}
			for _, m := range metrics {
				k, ok := index[m.Name]
				if !ok {
					k = len(es.Metrics)
					index[m.Name] = k
					es.Metrics = append(es.Metrics, MetricSummary{Name: m.Name})
				}
				es.Metrics[k].Agg.Add(m.Value)
			}
		}
		out = append(out, es)
	}
	return out
}

// RenderSummary renders the campaign's aggregate tables: a one-line
// header with grid and self-check totals, then one min/mean/max/spread
// table per experiment. The output contains no wall-clock data and is
// byte-identical for any worker count.
func (r *Result) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d experiments × %d seeds = %d cells, %d rechecked, %d divergences\n",
		len(r.IDs), len(r.Seeds), len(r.Cells), r.Rechecked(), r.Divergences())
	for _, es := range r.Summaries() {
		b.WriteByte('\n')
		tb := sim.NewTable(fmt.Sprintf("campaign — %s (%d/%d runs)", es.ID, es.Runs, len(r.Seeds)),
			"metric", "n", "min", "mean", "max", "spread")
		for _, m := range es.Metrics {
			tb.AddRow(m.Name, m.Agg.N(),
				sim.FormatG(m.Agg.Min()), sim.FormatG(m.Agg.Mean()),
				sim.FormatG(m.Agg.Max()), sim.FormatG(m.Agg.Spread()))
		}
		b.WriteString(tb.String())
	}
	return b.String()
}

// SlowestCells returns the n cells with the largest primary-execution
// wall time, slowest first, ties broken by grid order. Wall-clock data
// never feeds the deterministic tables; this accessor exists for the
// timing diagnostics on stderr and the opt-in JSON timing section.
func (r *Result) SlowestCells(n int) []*CellResult {
	idx := make([]int, len(r.Cells))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Cells[idx[a]].Elapsed > r.Cells[idx[b]].Elapsed
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]*CellResult, 0, n)
	for _, i := range idx[:n] {
		out = append(out, &r.Cells[i])
	}
	return out
}

// RenderTimings renders a one-line wall-clock diagnosis: campaign total
// and the n slowest cells. Unlike RenderSummary this is explicitly
// non-deterministic (it exists to spot stragglers and feed CostHint
// tables), so callers must keep it out of any output that is compared
// across runs — the CLI prints it to stderr only.
func (r *Result) RenderTimings(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "timing: %d cells in %v wall; slowest:", len(r.Cells), r.Elapsed.Round(time.Millisecond))
	for i, c := range r.SlowestCells(n) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, " %s seed %d (%v)", c.ID, c.Seed, c.Elapsed.Round(time.Millisecond))
	}
	b.WriteByte('\n')
	return b.String()
}

// jsonSummary mirrors ExperimentSummary with flattened aggregates for
// machine consumption.
type jsonSummary struct {
	ID      string       `json:"id"`
	Runs    int          `json:"runs"`
	Metrics []jsonMetric `json:"metrics"`
}

type jsonMetric struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Spread float64 `json:"spread"`
}

// jsonTiming is one cell's wall time in the opt-in timing section.
type jsonTiming struct {
	ID        string  `json:"id"`
	Seed      int64   `json:"seed"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WriteJSON writes the campaign's aggregate results as one indented
// JSON document: the grid shape, the self-check totals, and the
// per-experiment metric aggregates. Like RenderSummary, the output
// contains no wall-clock data and is byte-identical for any worker
// count.
func (r *Result) WriteJSON(w io.Writer) error {
	return r.writeJSON(w, false)
}

// WriteJSONWithTimings is WriteJSON plus a "timings" section carrying
// every cell's wall time in grid order. The section is opt-in because
// it breaks the byte-identity the plain document guarantees.
func (r *Result) WriteJSONWithTimings(w io.Writer) error {
	return r.writeJSON(w, true)
}

func (r *Result) writeJSON(w io.Writer, timings bool) error {
	doc := struct {
		Experiments []string      `json:"experiments"`
		Seeds       []int64       `json:"seeds"`
		Cells       int           `json:"cells"`
		Rechecked   int           `json:"rechecked"`
		Divergences int           `json:"divergences"`
		Summaries   []jsonSummary `json:"summaries"`
		Timings     []jsonTiming  `json:"timings,omitempty"`
	}{
		Experiments: r.IDs,
		Seeds:       r.Seeds,
		Cells:       len(r.Cells),
		Rechecked:   r.Rechecked(),
		Divergences: r.Divergences(),
	}
	for _, es := range r.Summaries() {
		js := jsonSummary{ID: es.ID, Runs: es.Runs, Metrics: []jsonMetric{}}
		for _, m := range es.Metrics {
			js.Metrics = append(js.Metrics, jsonMetric{
				Name: m.Name, N: m.Agg.N(),
				Min: m.Agg.Min(), Mean: m.Agg.Mean(),
				Max: m.Agg.Max(), Spread: m.Agg.Spread(),
			})
		}
		doc.Summaries = append(doc.Summaries, js)
	}
	if timings {
		for i := range r.Cells {
			c := &r.Cells[i]
			doc.Timings = append(doc.Timings, jsonTiming{
				ID: c.ID, Seed: c.Seed,
				ElapsedMS: float64(c.Elapsed) / float64(time.Millisecond),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
