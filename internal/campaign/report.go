package campaign

import (
	"fmt"
	"strings"

	"autosec/internal/sim"
)

// MetricSummary is one metric aggregated across a campaign's seeds.
type MetricSummary struct {
	Name string
	Agg  sim.Agg
}

// ExperimentSummary aggregates every scraped metric of one experiment
// across all seeds it ran at.
type ExperimentSummary struct {
	ID      string
	Runs    int // successful cells that contributed metrics
	Metrics []MetricSummary
}

// Summaries scrapes every successful cell's report and merges metrics
// across seeds, per experiment. Metric order follows first appearance in
// seed order, so the output is a pure function of the reports —
// independent of how many workers produced them.
func (r *Result) Summaries() []ExperimentSummary {
	out := make([]ExperimentSummary, 0, len(r.IDs))
	for i, id := range r.IDs {
		es := ExperimentSummary{ID: id}
		index := map[string]int{}
		for j := range r.Seeds {
			c := r.Cell(i, j)
			if c.Err != nil {
				continue
			}
			es.Runs++
			for _, m := range Scrape(c.Report) {
				k, ok := index[m.Name]
				if !ok {
					k = len(es.Metrics)
					index[m.Name] = k
					es.Metrics = append(es.Metrics, MetricSummary{Name: m.Name})
				}
				es.Metrics[k].Agg.Add(m.Value)
			}
		}
		out = append(out, es)
	}
	return out
}

// RenderSummary renders the campaign's aggregate tables: a one-line
// header with grid and self-check totals, then one min/mean/max/spread
// table per experiment. The output contains no wall-clock data and is
// byte-identical for any worker count.
func (r *Result) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d experiments × %d seeds = %d cells, %d rechecked, %d divergences\n",
		len(r.IDs), len(r.Seeds), len(r.Cells), r.Rechecked(), r.Divergences())
	for _, es := range r.Summaries() {
		b.WriteByte('\n')
		tb := sim.NewTable(fmt.Sprintf("campaign — %s (%d/%d runs)", es.ID, es.Runs, len(r.Seeds)),
			"metric", "n", "min", "mean", "max", "spread")
		for _, m := range es.Metrics {
			tb.AddRow(m.Name, m.Agg.N(),
				sim.FormatG(m.Agg.Min()), sim.FormatG(m.Agg.Mean()),
				sim.FormatG(m.Agg.Max()), sim.FormatG(m.Agg.Spread()))
		}
		b.WriteString(tb.String())
	}
	return b.String()
}
