package tlslite

import (
	"bytes"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

var psk = []byte("pre-shared-key-for-ecu-to-cloud!")

func TestHandshakeAndRecordRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Seal([]byte("diagnostic upload"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len("diagnostic upload")+RecordOverhead {
		t.Errorf("record length %d", len(rec))
	}
	got, err := s.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "diagnostic upload" {
		t.Errorf("payload %q", got)
	}
	// And the reverse direction with distinct keys.
	rec2, err := s.Seal([]byte("ack"))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c.Open(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "ack" {
		t.Errorf("reverse payload %q", got2)
	}
}

func TestHandshakeRejectsPSKMismatch(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, _, err := Handshake(psk, []byte("a-completely-different-psk-here!"), rng); err == nil {
		t.Error("mismatched PSKs completed handshake")
	}
	if _, _, err := Handshake([]byte("short"), psk, rng); err == nil {
		t.Error("short PSK accepted")
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	rng := sim.NewRNG(2)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(rec); err == nil {
		t.Error("replayed record accepted")
	}
}

func TestOpenAllowsReorderWithinWindow(t *testing.T) {
	rng := sim.NewRNG(3)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	var recs [][]byte
	for i := 0; i < 5; i++ {
		r, err := c.Seal([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	// Deliver 5th then the rest out of order.
	if _, err := s.Open(recs[4]); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 0, 3, 2} {
		if _, err := s.Open(recs[i]); err != nil {
			t.Errorf("in-window record %d rejected: %v", i, err)
		}
	}
	// Now each of them replayed must fail.
	for i := range recs {
		if _, err := s.Open(recs[i]); err == nil {
			t.Errorf("replay of record %d accepted", i)
		}
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	rng := sim.NewRNG(4)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Seal([]byte("important"))
	if err != nil {
		t.Fatal(err)
	}
	rec[14] ^= 1
	if _, err := s.Open(rec); err == nil {
		t.Error("tampered record accepted")
	}
	if _, err := s.Open([]byte{1, 2, 3}); err == nil {
		t.Error("short record accepted")
	}
}

func TestDirectionKeysAreIndependent(t *testing.T) {
	rng := sim.NewRNG(5)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Seal([]byte("c2s"))
	if err != nil {
		t.Fatal(err)
	}
	// The client must not accept its own c2s record as s2c traffic.
	if _, err := c.Open(rec); err == nil {
		t.Error("reflected record accepted (direction keys shared)")
	}
	_ = s
}

func TestPropertyRoundTrip(t *testing.T) {
	rng := sim.NewRNG(6)
	c, s, err := Handshake(psk, psk, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte) bool {
		if len(payload) > 16384 {
			payload = payload[:16384]
		}
		rec, err := c.Seal(payload)
		if err != nil {
			return false
		}
		got, err := s.Open(rec)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
