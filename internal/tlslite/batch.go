package tlslite

import (
	"encoding/binary"

	"autosec/internal/secchan"
	"autosec/internal/vcrypto"
)

// Batched record protection. AES-GCM gives these paths no cross-frame
// crypto to merge, so the batch forms win by stripping the per-record
// fixed costs instead: records are sealed straight into caller-owned
// buffers (no header, ciphertext, or concatenation allocations) and a
// burst of in-order records clears the replay window with one batched
// screen instead of a check per frame. Both are byte-identical to
// looping Seal/Open — same records, same sequence movements, same
// window state, same errors.

// SealBatch protects payloads in order, one record per payload. dst
// follows the secchan batch contract: when long enough, record i is
// built in dst[i][:0], so a warmed dst keeps sealing allocation-free.
func (s *Session) SealBatch(payloads, dst [][]byte) ([][]byte, error) {
	out := secchan.SizeWires(dst, len(payloads))
	hdr := s.hdrBuf[:]
	for i, p := range payloads {
		s.sendSeq++
		hdr[0] = 23 // application data
		binary.BigEndian.PutUint16(hdr[1:3], 1)
		binary.BigEndian.PutUint64(hdr[3:11], s.sendSeq)
		binary.BigEndian.PutUint16(hdr[11:13], uint16(len(p)))
		rec := append(out[i][:0], hdr...)
		rec, err := vcrypto.GCMSealInto(rec, s.sendKey, uint64(s.role), uint32(s.sendSeq), hdr, p)
		if err != nil {
			return out[:i], err
		}
		out[i] = rec
	}
	return out, nil
}

// OpenBatch verifies records in order, writing one verdict per record.
// When every record is well formed and the sequence numbers are
// strictly ascending — the honest in-order stream the experiments
// replay — the replay checks collapse into one Window.CheckBatch screen
// (sound there: marking an earlier, smaller sequence can only raise the
// high mark below the later ones and set bitmap bits they do not
// occupy), and payloads decrypt into the verdicts' reusable backings.
// Any other shape takes the frame-at-a-time path. Either way the
// verdicts and window transitions equal an Open loop exactly.
func (s *Session) OpenBatch(records [][]byte, verdicts []secchan.Verdict) []secchan.Verdict {
	verdicts = secchan.SizeVerdicts(verdicts, len(records))
	n := len(records)
	if n == 0 {
		return verdicts
	}
	if cap(s.batchSeqs) < n {
		s.batchSeqs = make([]uint64, n)
		s.batchOK = make([]bool, n)
	}
	seqs, oks := s.batchSeqs[:n], s.batchOK[:n]

	fast := true
	prev := uint64(0)
	for i, rec := range records {
		if len(rec) < RecordOverhead {
			fast = false
			break
		}
		seq := binary.BigEndian.Uint64(rec[3:11])
		seqs[i] = seq
		fast = fast && (i == 0 || seq > prev)
		prev = seq
	}
	if fast {
		s.replay.CheckBatch(seqs, oks)
		for _, ok := range oks {
			fast = fast && ok
		}
	}
	if !fast {
		for i, rec := range records {
			verdicts[i].Payload, verdicts[i].Err = s.Open(rec)
		}
		return verdicts
	}

	peer := Client
	if s.role == Client {
		peer = Server
	}
	for i, rec := range records {
		pt, err := vcrypto.GCMOpenInto(verdicts[i].Payload[:0], s.recvKey,
			uint64(peer), uint32(seqs[i]), rec[:13], rec[13:])
		if err != nil {
			verdicts[i].Payload, verdicts[i].Err = nil, err
			continue
		}
		s.replay.Mark(seqs[i])
		verdicts[i].Payload, verdicts[i].Err = pt, nil
	}
	return verdicts
}
