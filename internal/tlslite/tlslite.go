// Package tlslite implements a minimal (D)TLS-style secure channel for
// Table I's transport-layer row: a pre-shared-key handshake with mutual
// key confirmation, per-direction AES-GCM record protection with
// explicit sequence numbers (the DTLS variant, so records survive loss
// and reordering on datagram transports), and replay detection.
//
// It is intentionally not an implementation of RFC 5246/9147 — the IVN
// experiments need the *shape* of a transport-layer channel (handshake
// round trips, per-record overhead, replay window semantics) to compare
// against SECOC, MACsec, IPsec, and CANsec on the same links.
//
// Exercised by experiment tab1.
package tlslite

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/secchan"
	"autosec/internal/sim"
	"autosec/internal/vcrypto"
)

// RecordOverhead is the bytes added to each protected record: a 13-byte
// header (type, epoch, 8-byte sequence, length) plus the 16-byte tag.
const RecordOverhead = 13 + 16

// HandshakeMessages is the number of flights the PSK handshake needs.
const HandshakeMessages = 3 // ClientHello, ServerHello+Finished, Finished

// Role distinguishes the two sides' key directions.
type Role int

const (
	Client Role = iota
	Server
)

// Session is one side of an established channel.
type Session struct {
	role    Role
	sendKey []byte
	recvKey []byte
	sendSeq uint64
	replay  secchan.Window // DTLS sliding window over the 64 records below the highest seq

	// OpenBatch scratch (sequence burst and screen results).
	batchSeqs []uint64
	batchOK   []bool
	// SealBatch header scratch: a stack array would escape to the heap
	// through the AEAD's aad argument, costing an allocation per batch.
	hdrBuf [13]byte
}

// Handshake derives a connected client/server session pair from a
// pre-shared key and the two parties' nonces, mutually confirming key
// possession. It fails if the sides hold different PSKs.
func Handshake(clientPSK, serverPSK []byte, rng *sim.RNG) (*Session, *Session, error) {
	if len(clientPSK) < 16 || len(serverPSK) < 16 {
		return nil, nil, fmt.Errorf("tlslite: PSK must be at least 16 bytes")
	}
	clientNonce := make([]byte, 16)
	serverNonce := make([]byte, 16)
	rng.Bytes(clientNonce)
	rng.Bytes(serverNonce)
	transcript := string(clientNonce) + "|" + string(serverNonce)

	c2s := vcrypto.DeriveKey(clientPSK, "tls-c2s", transcript, 16)
	s2c := vcrypto.DeriveKey(clientPSK, "tls-s2c", transcript, 16)
	sC2s := vcrypto.DeriveKey(serverPSK, "tls-c2s", transcript, 16)
	sS2c := vcrypto.DeriveKey(serverPSK, "tls-s2c", transcript, 16)

	// Finished verification: each side proves it derived the same keys.
	clientFin, err := vcrypto.GCMTag(c2s, 0, 0, []byte("finished:"+transcript))
	if err != nil {
		return nil, nil, err
	}
	if !vcrypto.GCMVerifyTag(sC2s, 0, 0, []byte("finished:"+transcript), clientFin) {
		return nil, nil, fmt.Errorf("tlslite: handshake failed: PSK mismatch")
	}

	client := &Session{role: Client, sendKey: c2s, recvKey: s2c, replay: secchan.Window{Size: 64}}
	server := &Session{role: Server, sendKey: sS2c, recvKey: sC2s, replay: secchan.Window{Size: 64}}
	return client, server, nil
}

// Seal protects a payload into a record.
func (s *Session) Seal(payload []byte) ([]byte, error) {
	s.sendSeq++
	hdr := make([]byte, 13)
	hdr[0] = 23 // application data
	binary.BigEndian.PutUint16(hdr[1:3], 1)
	binary.BigEndian.PutUint64(hdr[3:11], s.sendSeq)
	binary.BigEndian.PutUint16(hdr[11:13], uint16(len(payload)))
	ct, err := vcrypto.GCMSeal(s.sendKey, uint64(s.role), uint32(s.sendSeq), hdr, payload)
	if err != nil {
		return nil, err
	}
	return append(hdr, ct...), nil
}

// Open verifies a record, enforcing the DTLS sliding replay window, and
// returns the payload.
func (s *Session) Open(record []byte) ([]byte, error) {
	if len(record) < RecordOverhead {
		return nil, fmt.Errorf("tlslite: record too short")
	}
	hdr := record[:13]
	seq := binary.BigEndian.Uint64(hdr[3:11])
	if !s.replay.Check(seq) {
		return nil, fmt.Errorf("tlslite: replayed or too-old record seq %d", seq)
	}
	peer := Client
	if s.role == Client {
		peer = Server
	}
	pt, err := vcrypto.GCMOpen(s.recvKey, uint64(peer), uint32(seq), hdr, record[13:])
	if err != nil {
		return nil, err
	}
	s.replay.Mark(seq)
	return pt, nil
}
