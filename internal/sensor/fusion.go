package sensor

import (
	"autosec/internal/sim"
	"autosec/internal/world"
)

// FusionPolicy decides which detections become believed obstacles.
type FusionPolicy int

const (
	// NaiveFusion believes every detection from any single modality —
	// the configuration the spoofing literature attacks.
	NaiveFusion FusionPolicy = iota
	// ConsensusFusion requires at least two modalities to agree on an
	// object (association within a gate) before believing it; defeats
	// single-modality ghosts but not multi-modality removal.
	ConsensusFusion
	// VerifiedFusion is ConsensusFusion plus cooperative two-way
	// ranging confirmation for transponder-equipped traffic, with a
	// fail-safe rule: if ranging *rejects* its integrity checks, the
	// object is assumed present (attack ⇒ caution, §II-B).
	VerifiedFusion
)

func (p FusionPolicy) String() string {
	switch p {
	case NaiveFusion:
		return "naive"
	case ConsensusFusion:
		return "consensus"
	case VerifiedFusion:
		return "verified"
	default:
		return "unknown"
	}
}

// Obstacle is a fused, believed object.
type Obstacle struct {
	Pos      world.Vec2
	Range    float64
	Sources  int
	Verified bool
	TruthID  string
}

// associationGate is the distance within which detections are considered
// the same physical object.
const associationGate = 2.5

// Fuse applies the policy to raw detections. For VerifiedFusion it
// additionally issues ranging exchanges through the suite.
func (s *Suite) Fuse(w *world.World, dets []Detection, policy FusionPolicy, att *Attack, rng *sim.RNG) []Obstacle {
	clusters := clusterDetections(dets)
	var out []Obstacle
	for _, c := range clusters {
		ob := Obstacle{Pos: c.centroid(), Range: c.minRange(), Sources: c.modalities(), TruthID: c.truthID()}
		switch policy {
		case NaiveFusion:
			out = append(out, ob)
		case ConsensusFusion:
			if ob.Sources >= 2 {
				out = append(out, ob)
			}
		case VerifiedFusion:
			if ob.Sources < 2 {
				continue
			}
			// Confirm cooperative traffic by secure ranging; objects
			// without transponders (pedestrians, debris) stay believed
			// on consensus alone.
			if truth := w.Get(ob.TruthID); ob.TruthID != "" && truth != nil && truth.Transponder {
				m, err := s.RangeTo(w, ob.TruthID, att, rng)
				if err == nil {
					if m.Accepted {
						ob.Range = m.MeasuredDistanceM
						ob.Verified = true
					} else {
						// Integrity check failed: fail safe — keep the
						// consensus range and flag the object.
						ob.Verified = false
					}
				}
			}
			out = append(out, ob)
		}
	}
	return out
}

// cluster groups detections of one physical (or ghost) object. sum is
// the running position total over dets, maintained on append in the
// same left-to-right order the old per-call summation used, so the
// centroid stays bit-identical while the O(members) recomputation per
// association test disappears.
type cluster struct {
	dets []Detection
	sum  world.Vec2
}

func clusterDetections(dets []Detection) []*cluster {
	var clusters []*cluster
	for _, d := range dets {
		placed := false
		for _, c := range clusters {
			if world.Dist(c.centroid(), d.Pos) <= associationGate {
				c.dets = append(c.dets, d)
				c.sum = c.sum.Add(d.Pos)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{dets: []Detection{d}, sum: d.Pos})
		}
	}
	return clusters
}

func (c *cluster) centroid() world.Vec2 {
	return c.sum.Scale(1 / float64(len(c.dets)))
}

func (c *cluster) minRange() float64 {
	min := c.dets[0].Range
	for _, d := range c.dets[1:] {
		if d.Range < min {
			min = d.Range
		}
	}
	return min
}

func (c *cluster) modalities() int {
	seen := map[Modality]bool{}
	for _, d := range c.dets {
		seen[d.Modality] = true
	}
	return len(seen)
}

func (c *cluster) truthID() string {
	// Majority ground truth within the cluster; ghosts have "".
	counts := map[string]int{}
	for _, d := range c.dets {
		counts[d.TruthID]++
	}
	best, bestN := "", 0
	for id, n := range counts {
		if n > bestN {
			best, bestN = id, n
		}
	}
	return best
}

// EncounterConfig describes one car-following scenario: the ego closes
// on a slower lead vehicle and must brake on sensor evidence.
type EncounterConfig struct {
	Policy       FusionPolicy
	Attack       *Attack
	EgoSpeed     float64 // m/s
	LeadSpeed    float64 // m/s
	InitialGapM  float64
	BrakeDecel   float64 // m/s²
	BrakeRangeM  float64 // brake when a believed obstacle is nearer
	StepS        float64
	MaxSteps     int
	SecureRanges bool
}

// DefaultEncounter is the workload of experiment exp-ca.
func DefaultEncounter(policy FusionPolicy, att *Attack) EncounterConfig {
	return EncounterConfig{
		Policy: policy, Attack: att,
		EgoSpeed: 25, LeadSpeed: 10, InitialGapM: 80,
		BrakeDecel: 8, BrakeRangeM: 45,
		StepS: 0.1, MaxSteps: 200, SecureRanges: true,
	}
}

// EncounterResult reports what happened.
type EncounterResult struct {
	Collided bool
	Braked   bool
	// FalseBrake is set when the ego braked with no real obstacle in
	// braking range (ghost-induced).
	FalseBrake bool
	FinalGapM  float64
}

// CutInConfig describes the two-lane cut-in scenario: a vehicle in the
// adjacent lane merges into the ego's lane at a short gap — the
// encounter where late detection is most punishing, and where §II-B's
// object-removal attack is most dangerous (the merging car must be seen
// *before* it is directly ahead).
type CutInConfig struct {
	Policy FusionPolicy
	Attack *Attack
	// EgoSpeed and CutterSpeed in m/s; the cutter is slower, so the gap
	// closes after the merge.
	EgoSpeed    float64
	CutterSpeed float64
	// MergeGapM is the longitudinal gap at which the cutter starts
	// merging.
	MergeGapM   float64
	BrakeDecel  float64
	BrakeRangeM float64
	StepS       float64
	MaxSteps    int
}

// DefaultCutIn is the exp-ca cut-in workload.
func DefaultCutIn(policy FusionPolicy, att *Attack) CutInConfig {
	return CutInConfig{
		Policy: policy, Attack: att,
		EgoSpeed: 25, CutterSpeed: 15, MergeGapM: 35,
		BrakeDecel: 8, BrakeRangeM: 45,
		StepS: 0.1, MaxSteps: 200,
	}
}

// RunCutIn simulates one cut-in and reports the outcome. The ego brakes
// only for believed obstacles in its own lane (|Y| < laneHalfWidth), so
// the cutter matters exactly from the moment it crosses over.
func RunCutIn(cfg CutInConfig, key []byte, rng *sim.RNG) (EncounterResult, error) {
	const laneHalfWidth = 1.8
	w := world.New()
	ego := &world.Actor{ID: "ego", Pos: world.Vec2{}, Vel: world.Vec2{X: cfg.EgoSpeed}, Radius: 1.0, Transponder: true}
	cutter := &world.Actor{
		ID:  "lead", // reuses the attackable ID so Attack{RemoveID:"lead"} applies
		Pos: world.Vec2{X: cfg.MergeGapM + 40, Y: 3.5}, Vel: world.Vec2{X: cfg.CutterSpeed},
		Radius: 1.0, Transponder: true,
	}
	if err := w.Add(ego); err != nil {
		return EncounterResult{}, err
	}
	if err := w.Add(cutter); err != nil {
		return EncounterResult{}, err
	}

	suite := NewSuite("ego", key)
	var res EncounterResult
	merging := false
	for step := 0; step < cfg.MaxSteps; step++ {
		// Start the lane change when the gap closes to MergeGapM.
		gap := cutter.Pos.X - ego.Pos.X
		if !merging && gap <= cfg.MergeGapM {
			merging = true
			cutter.Vel.Y = -2.0
		}
		if merging && cutter.Pos.Y <= 0 {
			cutter.Pos.Y = 0
			cutter.Vel.Y = 0
		}

		dets := suite.Sense(w, cfg.Attack, rng)
		obstacles := suite.Fuse(w, dets, cfg.Policy, cfg.Attack, rng)
		shouldBrake := false
		for _, ob := range obstacles {
			inLane := ob.Pos.Y > -laneHalfWidth && ob.Pos.Y < laneHalfWidth
			if inLane && ob.Pos.X > ego.Pos.X && ob.Range <= cfg.BrakeRangeM {
				shouldBrake = true
			}
		}
		if shouldBrake {
			res.Braked = true
			v := ego.Vel.X - cfg.BrakeDecel*cfg.StepS
			if v < cfg.CutterSpeed {
				v = cfg.CutterSpeed // match the cutter's speed, no need to stop
			}
			ego.Vel.X = v
		}
		w.Step(cfg.StepS)
		if len(w.Collisions()) > 0 {
			res.Collided = true
			break
		}
	}
	res.FinalGapM = world.Dist(ego.Pos, cutter.Pos)
	return res, nil
}

// RunEncounter simulates one encounter and returns the outcome.
func RunEncounter(cfg EncounterConfig, key []byte, rng *sim.RNG) (EncounterResult, error) {
	w := world.New()
	ego := &world.Actor{ID: "ego", Pos: world.Vec2{}, Vel: world.Vec2{X: cfg.EgoSpeed}, Radius: 1.0, Transponder: true}
	lead := &world.Actor{ID: "lead", Pos: world.Vec2{X: cfg.InitialGapM}, Vel: world.Vec2{X: cfg.LeadSpeed}, Radius: 1.0, Transponder: true}
	if err := w.Add(ego); err != nil {
		return EncounterResult{}, err
	}
	if err := w.Add(lead); err != nil {
		return EncounterResult{}, err
	}

	suite := NewSuite("ego", key)
	suite.SecureRanging = cfg.SecureRanges

	var res EncounterResult
	for step := 0; step < cfg.MaxSteps; step++ {
		dets := suite.Sense(w, cfg.Attack, rng)
		obstacles := suite.Fuse(w, dets, cfg.Policy, cfg.Attack, rng)

		shouldBrake := false
		nearestReal := world.Dist(ego.Pos, lead.Pos)
		for _, ob := range obstacles {
			if ob.Pos.X > ego.Pos.X && ob.Range <= cfg.BrakeRangeM {
				shouldBrake = true
				if ob.TruthID == "" && nearestReal > cfg.BrakeRangeM {
					res.FalseBrake = true
				}
			}
		}
		if shouldBrake {
			res.Braked = true
			v := ego.Vel.X - cfg.BrakeDecel*cfg.StepS
			if v < 0 {
				v = 0
			}
			ego.Vel.X = v
		}
		w.Step(cfg.StepS)
		if len(w.Collisions()) > 0 {
			res.Collided = true
			break
		}
		if ego.Vel.X == 0 {
			break
		}
	}
	res.FinalGapM = world.Dist(ego.Pos, lead.Pos)
	return res, nil
}
