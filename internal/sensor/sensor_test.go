package sensor

import (
	"testing"

	"autosec/internal/sim"
	"autosec/internal/world"
)

var key = []byte("ranging-key-16by")

func buildWorld(t *testing.T) *world.World {
	t.Helper()
	w := world.New()
	for _, a := range []*world.Actor{
		{ID: "ego", Pos: world.Vec2{}, Radius: 1, Transponder: true},
		{ID: "lead", Pos: world.Vec2{X: 40}, Radius: 1, Transponder: true},
		{ID: "ped", Pos: world.Vec2{X: 30, Y: 5}, Radius: 0.4},
	} {
		if err := w.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestSenseSeesAllModalitiesAllActors(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	dets := s.Sense(w, nil, sim.NewRNG(1))
	// 2 visible actors × 3 modalities.
	if len(dets) != 6 {
		t.Fatalf("detections = %d, want 6", len(dets))
	}
	perMod := map[Modality]int{}
	for _, d := range dets {
		perMod[d.Modality]++
		if d.TruthID == "" {
			t.Error("benign detection without ground truth")
		}
	}
	for _, m := range []Modality{Lidar, Radar, Camera} {
		if perMod[m] != 2 {
			t.Errorf("%v saw %d", m, perMod[m])
		}
	}
}

func TestRemovalAttackHidesFromOneModality(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	att := &Attack{Target: Lidar, RemoveID: "lead"}
	dets := s.Sense(w, att, sim.NewRNG(1))
	for _, d := range dets {
		if d.Modality == Lidar && d.TruthID == "lead" {
			t.Error("removed object still visible to lidar")
		}
	}
}

func TestGhostInjection(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	g := world.Vec2{X: 20}
	att := &Attack{Target: Radar, GhostAt: &g}
	dets := s.Sense(w, att, sim.NewRNG(1))
	found := false
	for _, d := range dets {
		if d.Modality == Radar && d.TruthID == "" {
			found = true
		}
	}
	if !found {
		t.Error("ghost not injected")
	}
}

func TestRangeToBenign(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	m, err := s.RangeTo(w, "lead", nil, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Accepted {
		t.Fatalf("benign ranging rejected: %s", m.Reason)
	}
	if m.ErrorM() > 1 || m.ErrorM() < -1 {
		t.Errorf("ranging error %.2f m", m.ErrorM())
	}
}

func TestRangeToRejectsEnlargementWhenSecure(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	att := &Attack{EnlargeM: 30}
	rng := sim.NewRNG(3)
	rejected := 0
	for i := 0; i < 20; i++ {
		m, err := s.RangeTo(w, "lead", att, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Accepted || m.ErrorM() < 10 {
			rejected++
		}
	}
	if rejected < 15 {
		t.Errorf("secure ranging caught only %d/20 enlargements", rejected)
	}
}

func TestRangeToNoTransponder(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	if _, err := s.RangeTo(w, "ped", nil, sim.NewRNG(1)); err == nil {
		t.Error("ranging to non-transponder target succeeded")
	}
	if _, err := s.RangeTo(w, "missing", nil, sim.NewRNG(1)); err == nil {
		t.Error("ranging to unknown actor succeeded")
	}
}

func TestNaiveFusionBelievesGhost(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	rng := sim.NewRNG(4)
	g := world.Vec2{X: 20}
	att := &Attack{Target: Radar, GhostAt: &g}
	dets := s.Sense(w, att, rng)
	obs := s.Fuse(w, dets, NaiveFusion, att, rng)
	ghostBelieved := false
	for _, ob := range obs {
		if ob.TruthID == "" {
			ghostBelieved = true
		}
	}
	if !ghostBelieved {
		t.Error("naive fusion rejected the ghost (should believe it)")
	}
}

func TestConsensusFusionRejectsSingleModalityGhost(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	rng := sim.NewRNG(4)
	g := world.Vec2{X: 20}
	att := &Attack{Target: Radar, GhostAt: &g}
	dets := s.Sense(w, att, rng)
	obs := s.Fuse(w, dets, ConsensusFusion, att, rng)
	for _, ob := range obs {
		if ob.TruthID == "" {
			t.Error("consensus fusion believed a single-modality ghost")
		}
	}
	// Real objects must survive.
	if len(obs) < 2 {
		t.Errorf("consensus fusion kept only %d objects", len(obs))
	}
}

func TestVerifiedFusionConfirmsTransponderTraffic(t *testing.T) {
	w := buildWorld(t)
	s := NewSuite("ego", key)
	rng := sim.NewRNG(5)
	dets := s.Sense(w, nil, rng)
	obs := s.Fuse(w, dets, VerifiedFusion, nil, rng)
	verified := false
	for _, ob := range obs {
		if ob.TruthID == "lead" && ob.Verified {
			verified = true
		}
	}
	if !verified {
		t.Error("lead vehicle not ranging-verified")
	}
}

func TestEncounterBenignNoCollision(t *testing.T) {
	for _, policy := range []FusionPolicy{NaiveFusion, ConsensusFusion, VerifiedFusion} {
		res, err := RunEncounter(DefaultEncounter(policy, nil), key, sim.NewRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		if res.Collided {
			t.Errorf("policy %v: benign encounter collided", policy)
		}
		if !res.Braked {
			t.Errorf("policy %v: never braked", policy)
		}
	}
}

func TestEncounterRemovalAttackCausesCollisionOnNaive(t *testing.T) {
	// Remove the lead from all three modalities? The literature attacks
	// one modality; naive fusion still brakes on the others. The
	// dangerous configuration the paper warns about is a single-sensor
	// (lidar-only-trusting) system; model that by removing from lidar
	// and checking consensus behaviour below. For naive fusion we show
	// the *ghost* failure instead: phantom braking.
	g := world.Vec2{X: 20}
	att := &Attack{Target: Radar, GhostAt: &g}
	cfg := DefaultEncounter(NaiveFusion, att)
	cfg.InitialGapM = 300 // no real obstacle anywhere near braking range
	res, err := RunEncounter(cfg, key, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.FalseBrake {
		t.Error("naive fusion did not phantom-brake on the ghost")
	}
	cfg.Policy = ConsensusFusion
	res, err = RunEncounter(cfg, key, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseBrake {
		t.Error("consensus fusion phantom-braked on a single-modality ghost")
	}
}

func TestCutInBenignNoCollision(t *testing.T) {
	for _, policy := range []FusionPolicy{NaiveFusion, ConsensusFusion, VerifiedFusion} {
		res, err := RunCutIn(DefaultCutIn(policy, nil), key, sim.NewRNG(31))
		if err != nil {
			t.Fatal(err)
		}
		if res.Collided {
			t.Errorf("policy %v: benign cut-in collided", policy)
		}
		if !res.Braked {
			t.Errorf("policy %v: never reacted to the cut-in", policy)
		}
	}
}

func TestCutInFullRemovalCausesCollision(t *testing.T) {
	// If an attacker could remove the cutter from ALL modalities there
	// is nothing fusion can do — verify the scenario is actually
	// dangerous by disabling perception of the cutter entirely.
	cfg := DefaultCutIn(ConsensusFusion, nil)
	cfg.BrakeRangeM = 0 // equivalent: never believe anything
	res, err := RunCutIn(cfg, key, sim.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collided {
		t.Error("blind ego did not collide — scenario not forcing")
	}
}

func TestCutInSingleModalityRemovalAbsorbed(t *testing.T) {
	att := &Attack{Target: Lidar, RemoveID: "lead"}
	res, err := RunCutIn(DefaultCutIn(ConsensusFusion, att), key, sim.NewRNG(33))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided {
		t.Error("consensus fusion collided under single-modality removal")
	}
}

func TestCutInDeterministic(t *testing.T) {
	a, err := RunCutIn(DefaultCutIn(VerifiedFusion, nil), key, sim.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCutIn(DefaultCutIn(VerifiedFusion, nil), key, sim.NewRNG(34))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEncounterDeterministic(t *testing.T) {
	a, err := RunEncounter(DefaultEncounter(VerifiedFusion, nil), key, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEncounter(DefaultEncounter(VerifiedFusion, nil), key, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestModalityAndPolicyStrings(t *testing.T) {
	if Lidar.String() != "lidar" || Ranging.String() != "ranging" {
		t.Error("modality strings")
	}
	if NaiveFusion.String() != "naive" || VerifiedFusion.String() != "verified" {
		t.Error("policy strings")
	}
}
