// Package sensor implements the collision-avoidance sensing stack of the
// paper's §II-B: LiDAR, radar, and camera models observing the shared
// 2-D world; spoofing and object-removal attacks on them (refs [9]–[11]);
// a cooperative two-way-ranging channel (UWB / 5G PRS) with physical-
// layer integrity checks (refs [12], [13]); and fusion policies from
// naive single-source trust to ranging-verified fail-safe fusion.
//
// Exercised by experiment exp-ca.
package sensor

import (
	"fmt"

	"autosec/internal/sim"
	"autosec/internal/uwb"
	"autosec/internal/world"
)

// Modality identifies the sensing technology.
type Modality int

const (
	Lidar Modality = iota
	Radar
	Camera
	Ranging // cooperative UWB / 5G-PRS two-way ranging
)

func (m Modality) String() string {
	switch m {
	case Lidar:
		return "lidar"
	case Radar:
		return "radar"
	case Camera:
		return "camera"
	case Ranging:
		return "ranging"
	default:
		return fmt.Sprintf("Modality(%d)", int(m))
	}
}

// Detection is one sensed object.
type Detection struct {
	Modality Modality
	// Pos is the estimated position (world frame).
	Pos world.Vec2
	// Range is the estimated distance from the ego vehicle.
	Range float64
	// TruthID is ground-truth bookkeeping for scoring: the actor this
	// detection corresponds to, or "" for a ghost. Fusion policies must
	// not read it.
	TruthID string
	// Verified marks detections confirmed by integrity-checked ranging.
	Verified bool
}

// Attack mutates a modality's detection list. It models physical-channel
// adversaries: ghost object injection and object removal.
type Attack struct {
	// RemoveID hides this actor from the modality (e.g. LiDAR physical
	// removal attack, ref [11]).
	RemoveID string
	// GhostAt injects a fake object at this position (e.g. mmWave
	// reflect-array spoofing, ref [9]).
	GhostAt *world.Vec2
	// Target limits the attack to one modality.
	Target Modality
	// EnlargeM shifts the ranging-channel distance by this many metres
	// (distance enlargement, §II-B's "particularly dangerous" case).
	EnlargeM float64
}

// Suite is the ego vehicle's sensor set.
type Suite struct {
	EgoID string
	// MaxRange bounds every modality.
	MaxRange float64
	// NoiseStd is the per-axis position noise of lidar/radar/camera.
	NoiseStd float64
	// RangingKey is the STS/ranging key shared with transponder-equipped
	// actors.
	RangingKey []byte
	// SecureRanging enables the integrity-checked receiver; without it
	// the ranging channel trusts the naive first-path estimate.
	SecureRanging bool

	session uint32
	// ranging is the persistent UWB session RangeTo reconfigures per
	// call: keeping it (and its scratch arena) across measurements makes
	// repeated ranging allocation-free.
	ranging uwb.Session
	// neighbors is Sense's scratch for the world neighbourhood query,
	// reused across ticks so the per-tick query is allocation-free.
	neighbors []*world.Actor
}

// NewSuite returns a sensor suite with automotive-plausible defaults.
func NewSuite(egoID string, key []byte) *Suite {
	return &Suite{EgoID: egoID, MaxRange: 150, NoiseStd: 0.15, RangingKey: key, SecureRanging: true}
}

// Sense runs all passive modalities (lidar, radar, camera) under the
// given attack (nil for benign) and returns the raw detections.
func (s *Suite) Sense(w *world.World, att *Attack, rng *sim.RNG) []Detection {
	ego := w.Get(s.EgoID)
	if ego == nil {
		return nil
	}
	// One neighbourhood scan serves all three modalities: the world does
	// not move mid-Sense, so the per-modality queries were identical.
	s.neighbors = w.NeighborsAppend(s.neighbors[:0], ego.Pos, s.MaxRange, s.EgoID)
	var out []Detection
	for _, m := range []Modality{Lidar, Radar, Camera} {
		for _, a := range s.neighbors {
			if att != nil && att.Target == m && att.RemoveID == a.ID {
				continue // removed from this modality's view
			}
			noisy := world.Vec2{
				X: a.Pos.X + s.NoiseStd*rng.NormFloat64(),
				Y: a.Pos.Y + s.NoiseStd*rng.NormFloat64(),
			}
			out = append(out, Detection{
				Modality: m,
				Pos:      noisy,
				Range:    world.Dist(ego.Pos, noisy),
				TruthID:  a.ID,
			})
		}
		if att != nil && att.Target == m && att.GhostAt != nil {
			g := *att.GhostAt
			out = append(out, Detection{Modality: m, Pos: g, Range: world.Dist(ego.Pos, g)})
		}
	}
	return out
}

// RangeTo performs cooperative two-way ranging to a transponder-equipped
// actor through the UWB physical layer, applying the attack's distance
// enlargement if any. It returns the measurement (which carries its own
// acceptance verdict).
func (s *Suite) RangeTo(w *world.World, targetID string, att *Attack, rng *sim.RNG) (uwb.Measurement, error) {
	ego := w.Get(s.EgoID)
	target := w.Get(targetID)
	if ego == nil || target == nil {
		return uwb.Measurement{}, fmt.Errorf("sensor: unknown actor for ranging")
	}
	if !target.Transponder {
		return uwb.Measurement{}, fmt.Errorf("sensor: %s has no ranging transponder", targetID)
	}
	s.session++
	sess := &s.ranging
	sess.Key = s.RangingKey
	sess.Session = s.session
	sess.Pulses = 256
	sess.Channel = uwb.Channel{DistanceM: world.Dist(ego.Pos, target.Pos), NoiseStd: 0.2}
	sess.Secure = s.SecureRanging
	sess.Config = uwb.DefaultSecureConfig()
	sess.NaiveThreshold = 0.4
	var attacker uwb.Attacker
	if att != nil && att.EnlargeM > 0 {
		attacker = &uwb.JamReplayAttacker{
			DelaySamples: uwb.MetresToSamples(att.EnlargeM),
			JamStd:       1.2,
			ReplayGain:   3,
		}
	}
	return sess.Measure(attacker, rng)
}
