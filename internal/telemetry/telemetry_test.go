package telemetry

import (
	"strings"
	"testing"

	"autosec/internal/sim"
)

func newCloud(cfg Config) *Cloud {
	return NewCloud(cfg, 50, 20, sim.NewRNG(1))
}

func TestFleetConstruction(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if c.Fleet() != 50 {
		t.Errorf("fleet %d", c.Fleet())
	}
	if c.TotalRecords() != 1000 {
		t.Errorf("records %d", c.TotalRecords())
	}
}

func TestProbeUnknownPath404(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if status, _ := c.Probe("/nonexistent"); status != 404 {
		t.Errorf("status %d", status)
	}
}

func TestProbeHeapDumpExposure(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	status, body := c.Probe("/actuator/heapdump")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if !strings.Contains(body, "accessKey") {
		t.Error("exposed dump should contain the credential")
	}

	hardened := newCloud(Config{HeapDumpExposed: false})
	if status, _ := hardened.Probe("/actuator/heapdump"); status == 200 {
		t.Error("disabled heap dump still served")
	}
}

func TestHeapDumpWithoutSecretsInMemory(t *testing.T) {
	t.Parallel()
	cfg := WorstCase()
	cfg.SecretsInMemory = false
	c := newCloud(cfg)
	_, body := c.Probe("/actuator/heapdump")
	if strings.Contains(body, "accessKey") {
		t.Error("scrubbed process still leaks credentials")
	}
}

func TestEnumerationDefence(t *testing.T) {
	t.Parallel()
	open := newCloud(WorstCase())
	if got := open.EnumeratePaths(64); len(got) < 5 {
		t.Errorf("undefended enumeration found only %d paths", len(got))
	}
	cfg := WorstCase()
	cfg.EnumerationDefended = true
	defended := newCloud(cfg)
	if got := defended.EnumeratePaths(64); len(got) > 1 {
		t.Errorf("defended enumeration leaked %d paths", len(got))
	}
}

func TestEnumerationBudget(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if got := c.EnumeratePaths(2); len(got) != 2 {
		t.Errorf("budget ignored: %d", len(got))
	}
}

func TestMintTokenScopes(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if _, err := c.MintToken("wrong", ""); err == nil {
		t.Error("invalid key minted a token")
	}
	tok, err := c.MintToken("AKIA-MASTER-0xFLEET", "")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Fetch(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != c.TotalRecords() {
		t.Errorf("fleet token fetched %d of %d", len(recs), c.TotalRecords())
	}
}

func TestLeastPrivilegeBlocksFleetScope(t *testing.T) {
	t.Parallel()
	cfg := WorstCase()
	cfg.MasterKeyOverPrivileged = false
	c := newCloud(cfg)
	if _, err := c.MintToken("AKIA-MASTER-0xFLEET", ""); err == nil {
		t.Error("fleet-wide token minted despite least privilege")
	}
	// Single-VIN scope still works (the app needs it to function).
	tok, err := c.MintToken("AKIA-MASTER-0xFLEET", "WVWZZZ0000000")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Fetch(tok)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Errorf("single-VIN fetch got %d", len(recs))
	}
}

func TestMintTokenUnknownVIN(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if _, err := c.MintToken("AKIA-MASTER-0xFLEET", "UNKNOWN"); err == nil {
		t.Error("unknown VIN scope accepted")
	}
}

func TestFetchInvalidToken(t *testing.T) {
	t.Parallel()
	c := newCloud(WorstCase())
	if _, err := c.Fetch("junk"); err == nil {
		t.Error("invalid token accepted")
	}
}

func TestLocationPrecision(t *testing.T) {
	t.Parallel()
	precise := newCloud(WorstCase())
	tok, _ := precise.MintToken("AKIA-MASTER-0xFLEET", "")
	recs, _ := precise.Fetch(tok)
	if p := LocationPrecisionM(recs); p != 10 {
		t.Errorf("precise precision %v", p)
	}
	cfg := WorstCase()
	cfg.CoarseLocation = true
	coarse := newCloud(cfg)
	tok2, _ := coarse.MintToken("AKIA-MASTER-0xFLEET", "")
	recs2, _ := coarse.Fetch(tok2)
	if p := LocationPrecisionM(recs2); p != 1000 {
		t.Errorf("coarse precision %v", p)
	}
	if LocationPrecisionM(nil) != 0 {
		t.Error("empty precision")
	}
}
